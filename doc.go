// Package repro is a pure-Go reproduction of "Optimus-CC: Efficient Large
// NLP Model Training with 3D Parallelism Aware Communication Compression"
// (ASPLOS 2023).
//
// The repository contains two complementary substrates — a real training
// stack for a scaled stand-in language model (internal/tensor, model,
// data, train) that reproduces every model-quality result, and a
// calibrated discrete-event cluster simulator (internal/cluster, simnet,
// pipeline, sim) that reproduces every timing result — plus the Optimus-CC
// technique layer itself (internal/core, compress), the rank-based
// collective-communication runtime (internal/collective) that executes
// and accounts the ring all-reduces the cost models only predict, and an
// experiment harness (internal/experiments) that regenerates each table
// and figure.
//
// See README.md for a guided tour (quickstart, package map, and the
// pooled zero-allocation compression API) and CHANGES.md for the per-PR
// change log. The root-level benchmarks (bench_test.go) regenerate each
// artifact:
//
//	go test -bench=Fig3 -benchtime=1x .
//	go test -bench=. -benchmem ./...
package repro
