// Package repro is a pure-Go reproduction of "Optimus-CC: Efficient Large
// NLP Model Training with 3D Parallelism Aware Communication Compression"
// (ASPLOS 2023).
//
// The repository contains two complementary substrates — a real training
// stack for a scaled stand-in language model (internal/tensor, model,
// data, train) that reproduces every model-quality result, and a
// calibrated discrete-event cluster simulator (internal/cluster, simnet,
// pipeline, sim) that reproduces every timing result — plus the Optimus-CC
// technique layer itself (internal/core, compress — with a name→factory
// compressor registry), the compiled communication/compression plan
// (internal/plan: plan.Compile turns a core.Config + grid into the one
// immutable artifact of per-edge §5.2 actions, per-stage §7 DP-sync
// actions, and the §6 embedding strategy that trainer, simulator, and
// experiments all consume), the rank-based collective-communication
// runtime (internal/collective) that executes and accounts both the ring
// all-reduces and the point-to-point inter-stage transfers
// (Send/Recv/SendCompressed) the cost models only predict, and an
// experiment harness (internal/experiments) that regenerates each table
// and figure.
//
// Training runs on an executable 1F1B pipeline by default: internal/train
// drives internal/pipeline's schedule with one goroutine per (dp, stage)
// rank, shipping forward activations and compressed backward
// activation-gradients over the transport — bit-identical to the serial
// oracle, with executed pp-class traffic equal to sim.PredictInterStage's
// fwd+bwd model exactly. Data-parallel synchronization is overlapped with
// the backward pass: the plan compiles a byte-budgeted bucket schedule,
// each stage's buckets are issued as asynchronous collectives (*Pending
// handles, per-rank op queues, deterministic in-flight execution) the
// moment the stage's gradients are final, and the iteration waits on
// every handle before the optimizer step — still bit-identical, with
// executed per-bucket wire volume equal to sim.PredictDPBucketBytes
// exactly and the exposed tail modeled by sim.PredictDPOverlap.
// Checkpoints (v2) persist the full resume state: weights, optimizer
// momentum, iteration/sampling position, and every error-feedback
// residual and PowerSGD warm-start factor.
//
// TopK/RandomK payloads are sparse end to end: internal/tensor's COO
// Sparse type and kernels (gather, scatter-add, two-pointer merge-union)
// carry compress → reduce → decompress without materializing a dense
// image — error feedback updates only selected coordinates, the
// collective reduces by density-capped merge-union (bit-identical dense
// fallback), and the simulator prices sparse codecs by nnz. internal/prof
// wires -cpuprofile/-memprofile into the binaries; the CPU profile feeds
// the -pgo=auto build (cmd/optcc-bench/default.pgo), and cmd/optcc-gate
// gates CI on the committed bench/BENCH_*.json baselines.
//
// The executed run is observable end to end via internal/obs: a
// per-rank fixed-capacity span recorder (lock-free, 0 allocs/op, nil =
// disabled) instruments the 1F1B executor, the collective runtime, and
// the compression codecs; an atomic counter registry snapshots named
// metrics; and one Chrome trace-event encoder serves both the
// simulator's predicted traces (pid 1) and the trainer's executed
// traces (pid 2) so merged files compare side by side in Perfetto.
// train.ReconcileTrace cross-checks the trace against the transport's
// counters at tolerance zero and against the simulator's plan-derived
// volume predictions byte-for-byte (optcc-train -trace/-reconcile,
// optcc-sim -trace, optcc-gate -validate-trace).
//
// The transport under the collective runtime is pluggable: the default
// in-process MemTransport hands tensors over channels zero-copy, while
// collective.SocketTransport ships every message as a length-prefixed
// binary frame (internal/collective/wire.go, payloads serialized by
// internal/tensor's codec) over TCP or unix sockets with identical
// per-class accounting — a remote run's Stats are bit-equal to the
// in-memory oracle's, with the actual framed volume tallied separately.
// train.Config.Dist switches the trainer into SPMD mode (every process
// builds the full model for RNG lockstep but executes only its local
// rank), collective.Coordinator/JoinCoordinator provide the rendezvous,
// and cmd/optcc-launch spawns one optcc-train -rank process per
// (dp, stage) rank — final weights and losses bit-identical to the
// single-process run, pinned by the cross-transport oracle
// (internal/train/dist_test.go) and CI's multiproc job.
//
// The plan space is searchable: internal/autotune enumerates candidate
// plans (per-stage compressed backpropagation on/off with family and
// rank, DP-sync family/rank/prefix depth, §6 embedding strategy, bucket
// budget), rejects those exceeding a quality-loss budget fitted from
// the repo's ablation runs, and prices the rest with sim.Evaluator —
// allocation-light repricing on a frozen event sequence — exhaustively
// for small spaces and by seeded anneal for large ones, always
// deterministically (same seed, same ranked table). optcc-sim -autotune
// prints the ranked table; optcc-train -autotune tunes, trains the
// winner, and verifies executed wire volumes equal the autotuner's
// prediction at tolerance 0; optcc-bench -autotune-bench writes the
// BENCH_autotune.json perf trail.
//
// The evaluator is also servable at high QPS: internal/whatif pools
// sim.Evaluators per frozen scenario (single-goroutine each; checked
// out concurrently), caches results in a sharded plan-keyed LRU whose
// hit path is 0 allocs/op, and coalesces concurrent misses —
// singleflight for identical plans, small-window batching through one
// evaluator checkout for distinct ones. cmd/optcc-serve fronts it with
// a std-lib HTTP API (POST /v1/price, POST /v1/autotune, GET /metrics)
// whose served estimates are bit-identical (tolerance 0) to direct
// sim.Evaluator.Price calls and whose autotune tables are
// byte-identical to optcc-sim -autotune stdout — pinned by CI's
// serve-smoke job diffing the live service against optcc-sim -price.
// optcc-bench -serve-bench writes the BENCH_serve.json perf trail
// (in-process and real-socket lanes; the cached lanes clear 10k
// priced queries/sec with deterministic cache-hit rates).
//
// See README.md for a guided tour (quickstart, package map, and the
// pooled zero-allocation compression API) and CHANGES.md for the per-PR
// change log. The root-level benchmarks (bench_test.go) regenerate each
// artifact:
//
//	go test -bench=Fig3 -benchtime=1x .
//	go test -bench=. -benchmem ./...
package repro
