package repro

// One benchmark per paper artifact (every table and figure of §3/§9),
// plus micro-benchmarks of the substrates. The experiment benchmarks run
// the same code paths as cmd/optcc-bench and report the headline numbers
// as custom benchmark metrics; run them with -benchtime=1x to regenerate
// each artifact exactly once:
//
//	go test -bench=. -benchtime=1x -benchmem
import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// benchOptions keeps the full -bench=. sweep tractable while still
// training for real; EXPERIMENTS.md uses experiments.DefaultOptions via
// cmd/optcc-bench.
func benchOptions() experiments.Options {
	return experiments.Options{Iterations: 60, EvalWindows: 200, TaskExamples: 60, Seed: 7}
}

func runExperiment(b *testing.B, name string) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Registry[name](benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkFig3Motivation regenerates the motivational breakdown +
// naive-compression quality study (Fig. 3).
func BenchmarkFig3Motivation(b *testing.B) {
	res := runExperiment(b, "fig3").(*experiments.Fig3Result)
	base := res.Timing.Rows[0]
	full := res.Timing.Rows[3]
	b.ReportMetric(base.Days, "baseline-days")
	b.ReportMetric(full.Days, "optcc-days")
	b.ReportMetric(res.Quality[2].PPL/res.Quality[0].PPL, "naiveCB-ppl-ratio")
}

// BenchmarkTable2Speedup regenerates Table 2 (both models, all technique
// combinations).
func BenchmarkTable2Speedup(b *testing.B) {
	res := runExperiment(b, "table2").(*experiments.Table2Result)
	names := []string{"gpt8.3b-speedup-%", "gpt2.5b-speedup-%"}
	for i, t := range res.Timing {
		last := t.Rows[len(t.Rows)-1]
		if i < len(names) {
			b.ReportMetric(last.Speedup*100, names[i])
		}
	}
}

// BenchmarkFig9Curves regenerates the perplexity-over-training curves.
func BenchmarkFig9Curves(b *testing.B) {
	res := runExperiment(b, "fig9").(*experiments.CurveResult)
	b.ReportMetric(float64(len(res.Iterations)), "curve-points")
}

// BenchmarkFig10Breakdown regenerates the ablation breakdown (Fig. 10).
func BenchmarkFig10Breakdown(b *testing.B) {
	runExperiment(b, "fig10")
}

// BenchmarkTable3ZeroShot regenerates the zero-shot probe-task grid.
func BenchmarkTable3ZeroShot(b *testing.B) {
	res := runExperiment(b, "table3").(*experiments.AccuracyResult)
	b.ReportMetric(float64(len(res.Tasks)), "tasks")
}

// BenchmarkTable4LEP regenerates the lazy-error-propagation ablation.
func BenchmarkTable4LEP(b *testing.B) {
	runExperiment(b, "table4")
}

// BenchmarkFig11Cosine regenerates the Eq. 14 condition measurements.
func BenchmarkFig11Cosine(b *testing.B) {
	res := runExperiment(b, "fig11").(*experiments.Fig11Result)
	b.ReportMetric(res.CosineAbs, "mean-abs-cosine")
}

// BenchmarkFig12Memory regenerates the memory-overhead accounting.
func BenchmarkFig12Memory(b *testing.B) {
	runExperiment(b, "fig12")
}

// BenchmarkFig13Tradeoff regenerates the SC-vs-rank trade-off study.
func BenchmarkFig13Tradeoff(b *testing.B) {
	res := runExperiment(b, "fig13").(*experiments.Fig13Result)
	b.ReportMetric(res.StageSweep[3].Speedup*100, "sc75-speedup-%")
}

// BenchmarkFig14Sensitivity regenerates the TP/PP sensitivity study.
func BenchmarkFig14Sensitivity(b *testing.B) {
	runExperiment(b, "fig14")
}

// BenchmarkFig15Throughput regenerates the compression-throughput study
// with real Go measurements.
func BenchmarkFig15Throughput(b *testing.B) {
	runExperiment(b, "fig15")
}

// BenchmarkFig16Scalability regenerates the 2.5B→175B scalability study.
func BenchmarkFig16Scalability(b *testing.B) {
	runExperiment(b, "fig16")
}

// BenchmarkFusedEmbeddingCost regenerates the Eq. 15/16 cost table.
func BenchmarkFusedEmbeddingCost(b *testing.B) {
	runExperiment(b, "emb")
}

// BenchmarkEpilogueOverlap regenerates the Fig. 6 epilogue analysis.
func BenchmarkEpilogueOverlap(b *testing.B) {
	runExperiment(b, "epilogue")
}

// BenchmarkAblateLEPGrid regenerates the LEP × epilogue-only quality grid.
func BenchmarkAblateLEPGrid(b *testing.B) {
	runExperiment(b, "ablate-lep")
}

// BenchmarkAblateWarmStart regenerates the PowerSGD warm-start ablation.
func BenchmarkAblateWarmStart(b *testing.B) {
	runExperiment(b, "ablate-warmstart")
}

// BenchmarkAblateCompressor regenerates the compressor-family comparison.
func BenchmarkAblateCompressor(b *testing.B) {
	runExperiment(b, "ablate-compressor")
}

// BenchmarkAblateSchedules regenerates the schedule comparison.
func BenchmarkAblateSchedules(b *testing.B) {
	runExperiment(b, "ablate-schedules")
}

// ---- substrate micro-benchmarks ----
//
// All compression benchmarks run with -benchmem semantics in mind: the
// pooled-workspace engine makes every steady-state path report
// 0 allocs/op, which is the refactor's headline property.

func benchMatrix(n, m int) *tensor.Matrix {
	return tensor.RandN(rand.New(rand.NewSource(1)), n, m, 1)
}

// BenchmarkPowerSGDCompressRank16 measures the paper's CB operating point
// on a scaled inter-stage gradient shape.
func BenchmarkPowerSGDCompressRank16(b *testing.B) {
	g := benchMatrix(1024, 3072)
	c := compress.NewPowerSGD(16, 1)
	c.Compress(g) // warm start
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(g)
	}
}

// BenchmarkPowerSGDDecompressRank16 measures reconstruction cost through
// the allocating Decompress path (kept as the allocator-bound contrast to
// the Into variant below).
func BenchmarkPowerSGDDecompressRank16(b *testing.B) {
	g := benchMatrix(1024, 3072)
	c := compress.NewPowerSGD(16, 1)
	pl := c.Compress(g)
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decompress(pl)
	}
}

// BenchmarkPowerSGDDecompressIntoRank16 measures reconstruction through
// the zero-allocation DecompressInto path the trainer uses.
func BenchmarkPowerSGDDecompressIntoRank16(b *testing.B) {
	g := benchMatrix(1024, 3072)
	c := compress.NewPowerSGD(16, 1)
	pl := c.Compress(g)
	dst := tensor.New(1024, 3072)
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecompressInto(dst, pl)
	}
}

// BenchmarkPowerSGDCompressRank128 shows the falls-with-rank trend.
func BenchmarkPowerSGDCompressRank128(b *testing.B) {
	g := benchMatrix(1024, 3072)
	c := compress.NewPowerSGD(128, 1)
	c.Compress(g)
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(g)
	}
}

// BenchmarkErrorFeedbackRoundTrip measures the full DP-compression unit of
// work (feedback add + compress + reconstruct + residual update), the
// inner loop of syncDataParallel.
func BenchmarkErrorFeedbackRoundTrip(b *testing.B) {
	g := benchMatrix(256, 256)
	ef := compress.NewErrorFeedback(compress.NewPowerSGD(4, 1))
	ef.CompressWithFeedback(g)
	ef.CompressWithFeedback(g) // second call warms the residual-path scratch
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.CompressWithFeedback(g)
	}
}

// BenchmarkTopKCompress measures the sparse alternative.
func BenchmarkTopKCompress(b *testing.B) {
	g := benchMatrix(512, 512)
	c := compress.NewTopK(0.1)
	c.Compress(g) // size the selection scratch
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(g)
	}
}

// BenchmarkTernGradCompress measures the quantization alternative.
func BenchmarkTernGradCompress(b *testing.B) {
	g := benchMatrix(512, 512)
	c := compress.NewTernGrad(1)
	c.Compress(g)
	b.SetBytes(g.SizeBytes(compress.ElemBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(g)
	}
}

// BenchmarkMatMul measures the tensor substrate's core kernel (now
// cache-blocked over the reduction dimension).
func BenchmarkMatMul(b *testing.B) {
	x := benchMatrix(256, 256)
	y := benchMatrix(256, 256)
	dst := tensor.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

// BenchmarkMatMulPowerSGDShape measures the dominant compression matmul:
// a wide gradient times a skinny warm-start sketch.
func BenchmarkMatMulPowerSGDShape(b *testing.B) {
	x := benchMatrix(1024, 3072)
	y := benchMatrix(3072, 16)
	dst := tensor.New(1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

// BenchmarkGramSchmidt measures the orthogonalization phase §9.6 calls the
// compression bottleneck.
func BenchmarkGramSchmidt(b *testing.B) {
	src := benchMatrix(2048, 16)
	m := src.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CopyFrom(src)
		tensor.GramSchmidt(m)
	}
}

// BenchmarkSimulateIteration measures one full task-graph solve of the
// paper cluster.
func BenchmarkSimulateIteration(b *testing.B) {
	sc := sim.PaperScenario(cluster.GPT25B, core.CBFESC())
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainIteration measures one real training iteration of the
// stand-in model under full Optimus-CC.
func BenchmarkTrainIteration(b *testing.B) {
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := train.DefaultConfig()
	cfg.MicroBatch = 32
	cfg.Opt = experiments.ScaledOpt(core.CBFESC())
	tr, err := train.New(cfg, corpus)
	if err != nil {
		b.Fatal(err)
	}
	tr.TrainIteration() // warm the pooled workspaces
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainIteration()
	}
}
