// Package prof wires the standard -cpuprofile/-memprofile flags into
// the repo's binaries. The CPU profile doubles as the PGO feed: CI runs
// optcc-bench -cpuprofile default.pgo, drops the file into the main
// package directory, and rebuilds with -pgo=auto so the hot sparse
// kernels get profile-guided inlining (the default.pgo name is what
// the Go toolchain's auto mode looks for).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). The returned stop function
// flushes both and reports the first failure — a profile whose final
// write or close failed is truncated and would poison a PGO feed, so
// callers must surface the error, not swallow it. Call stop before
// exiting on the success path (os.Exit skips defers, so error paths
// intentionally drop partial profiles).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
		}
		return first
	}, nil
}

// writeHeapProfile snapshots the heap to path, propagating create,
// write, and close errors alike.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
