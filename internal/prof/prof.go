// Package prof wires the standard -cpuprofile/-memprofile flags into
// the repo's binaries. The CPU profile doubles as the PGO feed: CI runs
// optcc-bench -cpuprofile default.pgo, drops the file into the main
// package directory, and rebuilds with -pgo=auto so the hot sparse
// kernels get profile-guided inlining (the default.pgo name is what
// the Go toolchain's auto mode looks for).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). The returned stop function
// flushes both; call it before exiting on the success path (os.Exit
// skips defers, so error paths intentionally drop partial profiles).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}
