// Package cluster models the hardware and parallelism topology of the
// paper's testbed (Table 1): multi-GPU nodes joined by InfiniBand, NVLink
// within a node, and the 3D-parallel mapping that places tensor-parallel
// groups inside a node and pipeline/data parallelism across nodes.
package cluster

import (
	"fmt"

	"repro/internal/simnet"
)

// Topology describes the physical cluster.
type Topology struct {
	Nodes       int
	GPUsPerNode int
	// PeakFLOPs is the per-GPU peak throughput (FLOP/s); Efficiency is the
	// achieved fraction (the simulator's single calibrated constant).
	PeakFLOPs  float64
	Efficiency float64
	Intra      simnet.Link // NVLink
	Inter      simnet.Link // InfiniBand
}

// PaperCluster returns the Table 1 testbed: 16 nodes × 8 A100, NVLink
// 600 GB/s per GPU, InfiniBand HDR 200 Gb/s per node. A100 peak is 312
// TFLOP/s (TF32/FP16 tensor core); Efficiency is calibrated by the sim
// package so the baseline GPT-2.5B run matches the paper's 14.72 days.
func PaperCluster() Topology {
	return Topology{
		Nodes:       16,
		GPUsPerNode: 8,
		PeakFLOPs:   312e12,
		Efficiency:  0.30, // placeholder; sim.Calibrate refines it
		Intra:       simnet.Link{Name: "nvlink", BandwidthBps: 600e9 * 8, LatencySec: 1e-6},
		Inter:       simnet.Link{Name: "ib-hdr", BandwidthBps: 200e9, LatencySec: 2e-6},
	}
}

// TotalGPUs returns Nodes × GPUsPerNode.
func (t Topology) TotalGPUs() int { return t.Nodes * t.GPUsPerNode }

// EffectiveFLOPs returns the achieved per-GPU throughput.
func (t Topology) EffectiveFLOPs() float64 { return t.PeakFLOPs * t.Efficiency }

// Validate reports malformed topologies.
func (t Topology) Validate() error {
	switch {
	case t.Nodes < 1:
		return fmt.Errorf("cluster: nodes %d < 1", t.Nodes)
	case t.GPUsPerNode < 1:
		return fmt.Errorf("cluster: GPUs/node %d < 1", t.GPUsPerNode)
	case t.PeakFLOPs <= 0:
		return fmt.Errorf("cluster: peak FLOPs %v <= 0", t.PeakFLOPs)
	case t.Efficiency <= 0 || t.Efficiency > 1:
		return fmt.Errorf("cluster: efficiency %v outside (0,1]", t.Efficiency)
	}
	if err := t.Intra.Validate(); err != nil {
		return err
	}
	return t.Inter.Validate()
}

// Mapping is a 3D-parallel decomposition: TP×DP×PP ways.
type Mapping struct {
	TP, DP, PP int
}

// Ways returns the total GPU count the mapping occupies.
func (m Mapping) Ways() int { return m.TP * m.DP * m.PP }

// Validate checks the mapping against a topology, enforcing the paper's
// placement rule that a tensor-parallel group fits inside one node (so TP
// traffic rides NVLink).
func (m Mapping) Validate(t Topology) error {
	switch {
	case m.TP < 1 || m.DP < 1 || m.PP < 1:
		return fmt.Errorf("cluster: mapping %+v has non-positive ways", m)
	case m.TP > t.GPUsPerNode:
		return fmt.Errorf("cluster: TP=%d exceeds %d GPUs/node (tensor groups must stay intra-node)", m.TP, t.GPUsPerNode)
	case m.Ways() > t.TotalGPUs():
		return fmt.Errorf("cluster: mapping needs %d GPUs, cluster has %d", m.Ways(), t.TotalGPUs())
	}
	return nil
}

// String renders the mapping the way the paper writes it.
func (m Mapping) String() string { return fmt.Sprintf("TP%d/DP%d/PP%d", m.TP, m.DP, m.PP) }

// GPTSpec sizes a GPT-style transformer the way the paper's Table 1 does.
type GPTSpec struct {
	Name      string
	Layers    int
	Hidden    int
	Heads     int
	SeqLen    int
	VocabSize int
}

// Paper model zoo (§9.1, §9.5, §9.7).
var (
	GPT25B  = GPTSpec{Name: "GPT-2.5B", Layers: 52, Hidden: 1920, Heads: 24, SeqLen: 1024, VocabSize: 51200}
	GPT83B  = GPTSpec{Name: "GPT-8.3B", Layers: 72, Hidden: 3072, Heads: 24, SeqLen: 1024, VocabSize: 51200}
	GPT92B  = GPTSpec{Name: "GPT-9.2B", Layers: 80, Hidden: 3072, Heads: 24, SeqLen: 1024, VocabSize: 51200}
	GPT39B  = GPTSpec{Name: "GPT-39B", Layers: 96, Hidden: 5760, Heads: 32, SeqLen: 1024, VocabSize: 51200}
	GPT175B = GPTSpec{Name: "GPT-175B", Layers: 96, Hidden: 12288, Heads: 96, SeqLen: 1024, VocabSize: 51200}
)

// ParamsPerLayer returns the parameter count of one transformer layer:
// 4H² attention (QKV+output projections) + 8H² MLP (H→4H→H) + biases and
// layer norms (≈13H per layer, negligible but counted).
func (g GPTSpec) ParamsPerLayer() int64 {
	h := int64(g.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns the token-embedding table size (tied in/out).
func (g GPTSpec) EmbeddingParams() int64 {
	return int64(g.VocabSize) * int64(g.Hidden)
}

// TotalParams returns the model size, embedding counted once.
func (g GPTSpec) TotalParams() int64 {
	return int64(g.Layers)*g.ParamsPerLayer() + g.EmbeddingParams()
}

// FwdFLOPsPerLayerPerToken returns forward FLOPs for one token through one
// layer: 2 FLOPs per parameter-multiply plus the attention score terms
// (2·2·S·H per token for QKᵀ and attn·V).
func (g GPTSpec) FwdFLOPsPerLayerPerToken() float64 {
	return 2*float64(g.ParamsPerLayer()) + 4*float64(g.SeqLen)*float64(g.Hidden)
}

// ActivationBytes returns the size of the inter-stage boundary tensor for
// one micro-batch: microB × SeqLen × Hidden at elemBytes width. This is
// what compressed backpropagation shrinks.
func (g GPTSpec) ActivationBytes(microB, elemBytes int) int64 {
	return int64(microB) * int64(g.SeqLen) * int64(g.Hidden) * int64(elemBytes)
}

// LayerGradShape returns the dominant per-layer gradient matrix shape the
// compression benchmarks use (the fused MLP weight, H×4H).
func (g GPTSpec) LayerGradShape() (rows, cols int) { return g.Hidden, 4 * g.Hidden }

// Validate reports malformed specs.
func (g GPTSpec) Validate() error {
	if g.Layers < 1 || g.Hidden < 1 || g.SeqLen < 1 || g.VocabSize < 1 {
		return fmt.Errorf("cluster: invalid GPT spec %+v", g)
	}
	return nil
}
