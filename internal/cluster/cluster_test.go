package cluster

import (
	"math"
	"testing"
)

func TestPaperClusterShape(t *testing.T) {
	c := PaperCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalGPUs() != 128 {
		t.Fatalf("GPUs %d want 128", c.TotalGPUs())
	}
	if c.Inter.BandwidthBps != 200e9 {
		t.Fatalf("IB bandwidth %v want 200 Gb/s", c.Inter.BandwidthBps)
	}
	// NVLink must be much faster than IB (paper: TP comm "almost
	// negligible").
	if c.Intra.BandwidthBps < 10*c.Inter.BandwidthBps {
		t.Fatal("NVLink should dwarf IB")
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := PaperCluster()
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Fatal("0 nodes accepted")
	}
	bad = PaperCluster()
	bad.Efficiency = 1.5
	if bad.Validate() == nil {
		t.Fatal("efficiency >1 accepted")
	}
	bad = PaperCluster()
	bad.PeakFLOPs = 0
	if bad.Validate() == nil {
		t.Fatal("0 FLOPs accepted")
	}
}

func TestMappingValidate(t *testing.T) {
	c := PaperCluster()
	good := Mapping{TP: 8, DP: 4, PP: 4}
	if err := good.Validate(c); err != nil {
		t.Fatal(err)
	}
	if good.Ways() != 128 {
		t.Fatalf("ways %d", good.Ways())
	}
	if (Mapping{TP: 16, DP: 2, PP: 4}).Validate(c) == nil {
		t.Fatal("TP>GPUs/node accepted")
	}
	if (Mapping{TP: 8, DP: 8, PP: 4}).Validate(c) == nil {
		t.Fatal("oversubscribed mapping accepted")
	}
	if (Mapping{TP: 0, DP: 1, PP: 1}).Validate(c) == nil {
		t.Fatal("zero ways accepted")
	}
	if got := good.String(); got != "TP8/DP4/PP4" {
		t.Fatalf("String %q", got)
	}
}

func TestGPTParamCountsMatchPaperNames(t *testing.T) {
	// Each spec's parameter count should land near its nameplate size.
	cases := []struct {
		spec GPTSpec
		want float64 // billions
		tol  float64
	}{
		{GPT25B, 2.5, 0.3},
		{GPT83B, 8.3, 0.5},
		{GPT92B, 9.2, 0.6},
		{GPT39B, 39, 3},
		{GPT175B, 175, 10},
	}
	for _, c := range cases {
		got := float64(c.spec.TotalParams()) / 1e9
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("%s: %.2fB params, want ≈%.1fB", c.spec.Name, got, c.want)
		}
	}
}

func TestParamsPerLayerDominatedBy12H2(t *testing.T) {
	g := GPT83B
	h := float64(g.Hidden)
	if math.Abs(float64(g.ParamsPerLayer())-12*h*h)/(12*h*h) > 0.01 {
		t.Fatal("per-layer params should be ≈12H²")
	}
}

func TestFwdFLOPsPositiveAndScales(t *testing.T) {
	small := GPT25B.FwdFLOPsPerLayerPerToken()
	big := GPT175B.FwdFLOPsPerLayerPerToken()
	if small <= 0 || big <= small {
		t.Fatalf("FLOPs model broken: %v vs %v", small, big)
	}
}

func TestActivationBytes(t *testing.T) {
	// micro-batch 8 × seq 1024 × hidden 1920 × 2 bytes.
	want := int64(8) * 1024 * 1920 * 2
	if got := GPT25B.ActivationBytes(8, 2); got != want {
		t.Fatalf("ActivationBytes %d want %d", got, want)
	}
}

func TestLayerGradShape(t *testing.T) {
	r, c := GPT83B.LayerGradShape()
	if r != 3072 || c != 4*3072 {
		t.Fatalf("shape %dx%d", r, c)
	}
}

func TestGPTSpecValidate(t *testing.T) {
	if GPT25B.Validate() != nil {
		t.Fatal("valid spec rejected")
	}
	if (GPTSpec{}).Validate() == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestEffectiveFLOPs(t *testing.T) {
	c := PaperCluster()
	if got := c.EffectiveFLOPs(); got != c.PeakFLOPs*c.Efficiency {
		t.Fatalf("EffectiveFLOPs %v", got)
	}
}
