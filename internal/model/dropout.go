package model

import (
	"math/rand"

	"repro/internal/tensor"
)

// Dropout implements inverted dropout: during training each element is
// zeroed with probability Rate and survivors are scaled by 1/(1−Rate), so
// inference needs no rescaling. The Megatron-LM block (Fig. 2) applies
// dropout after the MLP and attention paths; the stand-in model offers it
// as an option (off in the reproduction's experiments so runs are exactly
// reproducible across schedule variants).
//
// Masks are queued per micro-batch, like every other layer cache, so
// multiple in-flight micro-batches backpropagate through their own masks.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	// masks holds the scale factor per element (0 or 1/(1−Rate)).
	masks []*tensor.Matrix
}

// NewDropout returns a dropout layer with the given rate in [0, 1).
func NewDropout(rate float64, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("model: dropout rate outside [0,1)")
	}
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Forward applies a fresh mask and enqueues it.
func (d *Dropout) Forward(x *tensor.Matrix) *tensor.Matrix {
	if d.Rate == 0 {
		d.masks = append(d.masks, nil)
		return x
	}
	scale := 1 / (1 - d.Rate)
	mask := tensor.New(x.Rows, x.Cols)
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.Rate {
			mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	d.masks = append(d.masks, mask)
	return out
}

// Backward scales dy by the oldest in-flight mask.
func (d *Dropout) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if len(d.masks) == 0 {
		panic("model: Dropout.Backward with no in-flight forward")
	}
	mask := d.masks[0]
	d.masks = d.masks[1:]
	if mask == nil {
		return dy
	}
	out := dy.Clone()
	out.Hadamard(mask)
	return out
}

// InFlight returns the queued mask count.
func (d *Dropout) InFlight() int { return len(d.masks) }
