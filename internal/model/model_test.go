package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func testCfg() Config {
	return Config{Vocab: 11, Hidden: 6, Context: 3, Blocks: 4, Seed: 42}
}

func randBatch(rng *rand.Rand, cfg Config, b int) ([][]int, []int) {
	ctxs := make([][]int, b)
	tgts := make([]int, b)
	for i := range ctxs {
		ctx := make([]int, cfg.Context)
		for j := range ctx {
			ctx[j] = rng.Intn(cfg.Vocab)
		}
		ctxs[i] = ctx
		tgts[i] = rng.Intn(cfg.Vocab)
	}
	return ctxs, tgts
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{Vocab: 1, Hidden: 4, Context: 2, Blocks: 2},
		{Vocab: 4, Hidden: 0, Context: 2, Blocks: 2},
		{Vocab: 4, Hidden: 4, Context: 0, Blocks: 2},
		{Vocab: 4, Hidden: 4, Context: 2, Blocks: 0},
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewStagesPartition(t *testing.T) {
	cfg := testCfg()
	stages, err := NewStages(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages", len(stages))
	}
	total := 0
	for _, s := range stages {
		total += len(s.Blocks)
	}
	if total != cfg.Blocks {
		t.Fatalf("blocks lost: %d != %d", total, cfg.Blocks)
	}
	if stages[0].Emb == nil || stages[0].InProj == nil {
		t.Fatal("first stage missing embedding/input projection")
	}
	if stages[2].OutEmb == nil || stages[2].OutLN == nil {
		t.Fatal("last stage missing head")
	}
	if stages[1].Emb != nil || stages[1].OutEmb != nil {
		t.Fatal("middle stage must not hold embeddings")
	}
}

func TestNewStagesErrors(t *testing.T) {
	cfg := testCfg()
	if _, err := NewStages(cfg, 0); err == nil {
		t.Fatal("0 stages accepted")
	}
	if _, err := NewStages(cfg, cfg.Blocks+1); err == nil {
		t.Fatal("more stages than blocks accepted")
	}
	if _, err := NewStages(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestTiedEmbeddingReplicasStartIdentical(t *testing.T) {
	stages, err := NewStages(testCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	w0 := stages[0].EmbeddingWeight()
	wL := stages[3].EmbeddingWeight()
	if w0 == wL {
		t.Fatal("replicas must be distinct matrices under pipeline parallelism")
	}
	if !w0.Equal(wL, 0) {
		t.Fatal("replicas must start with identical values")
	}
}

func TestSingleStageSharesTable(t *testing.T) {
	stages, err := NewStages(testCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stages[0].Emb != stages[0].OutEmb {
		t.Fatal("single stage should share the table (no sync needed)")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, _ := NewStages(testCfg(), 2)
	b, _ := NewStages(testCfg(), 2)
	pa, pb := a[0].Params(), b[0].Params()
	for i := range pa {
		if !pa[i].Equal(pb[i], 0) {
			t.Fatalf("param %d differs across constructions with same seed", i)
		}
	}
}

func TestParamsGradsAligned(t *testing.T) {
	stages, _ := NewStages(testCfg(), 2)
	for si, s := range stages {
		ps, gs := s.Params(), s.Grads()
		if len(ps) != len(gs) {
			t.Fatalf("stage %d: %d params vs %d grads", si, len(ps), len(gs))
		}
		for i := range ps {
			if ps[i].Rows != gs[i].Rows || ps[i].Cols != gs[i].Cols {
				t.Fatalf("stage %d param %d shape mismatch", si, i)
			}
		}
	}
}

func TestParamCountMatchesStages(t *testing.T) {
	cfg := testCfg()
	stages, _ := NewStages(cfg, 1) // single stage: tied table counted once
	var got int64
	for _, p := range stages[0].Params() {
		got += int64(p.NumElements())
	}
	// Single-stage Params includes OutLN (gain+bias) which ParamCount
	// doesn't model; adjust.
	got -= int64(2 * cfg.Hidden)
	if got != cfg.ParamCount() {
		t.Fatalf("ParamCount %d, stage params %d", cfg.ParamCount(), got)
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.FromSlice(1, 2, []float64{0, 0})
	loss, d := CrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss %v want ln2", loss)
	}
	if math.Abs(d.At(0, 0)-(-0.5)) > 1e-12 || math.Abs(d.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("dLogits %v", d.Data)
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.RandN(rng, 4, 7, 2)
	_, d := CrossEntropy(logits, []int{1, 2, 3, 0})
	for i := 0; i < d.Rows; i++ {
		var s float64
		for _, v := range d.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d grad sums to %v", i, s)
		}
	}
}

func TestPerplexity(t *testing.T) {
	if Perplexity(0) != 1 {
		t.Fatal("PPL(0)=1")
	}
	if math.Abs(Perplexity(math.Log(9.31))-9.31) > 1e-9 {
		t.Fatal("PPL inverse of log")
	}
}

// TestGradientCheck verifies the full pipeline backward against finite
// differences on every parameter class (embedding, input projection,
// block weights, layer norm, tied head). This is the load-bearing
// correctness test for the whole training substrate.
func TestGradientCheck(t *testing.T) {
	cfg := Config{Vocab: 7, Hidden: 5, Context: 2, Blocks: 3, Seed: 9}
	stages, err := NewStages(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	contexts, targets := randBatch(rng, cfg, 4)

	// Analytic gradients.
	for _, s := range stages {
		s.ZeroGrads()
	}
	h := stages[0].ForwardTokens(contexts)
	h = stages[1].ForwardHidden(h)
	h = stages[2].ForwardHidden(h)
	logits := stages[2].Logits(h)
	_, dLogits := CrossEntropy(logits, targets)
	d := stages[2].BackwardLogits(dLogits)
	d = stages[1].BackwardHidden(d)
	stages[0].BackwardHidden(d)

	const eps = 1e-5
	for si, s := range stages {
		params, grads := s.Params(), s.Grads()
		for pi, p := range params {
			// Probe a few elements of each parameter.
			probes := []int{0, p.NumElements() / 2, p.NumElements() - 1}
			for _, idx := range probes {
				orig := p.Data[idx]
				p.Data[idx] = orig + eps
				lp := forwardLossOnly(stages, contexts, targets)
				p.Data[idx] = orig - eps
				lm := forwardLossOnly(stages, contexts, targets)
				p.Data[idx] = orig
				fd := (lp - lm) / (2 * eps)
				an := grads[pi].Data[idx]
				if math.Abs(fd-an) > 1e-4*(1+math.Abs(fd)) {
					t.Fatalf("stage %d param %d elem %d: analytic %v vs fd %v", si, pi, idx, an, fd)
				}
			}
		}
	}
}

// forwardLossOnly runs forward and then drains all caches via a backward
// pass whose gradients are discarded into scratch accumulators.
func forwardLossOnly(stages []*Stage, contexts [][]int, targets []int) float64 {
	// Save gradient state, run forward+backward, restore.
	saved := make([][]float64, 0)
	for _, s := range stages {
		for _, g := range s.Grads() {
			cp := make([]float64, len(g.Data))
			copy(cp, g.Data)
			saved = append(saved, cp)
		}
	}
	h := stages[0].ForwardTokens(contexts)
	for _, s := range stages[1:] {
		h = s.ForwardHidden(h)
	}
	last := stages[len(stages)-1]
	logits := last.Logits(h)
	loss, dLogits := CrossEntropy(logits, targets)
	d := last.BackwardLogits(dLogits)
	for i := len(stages) - 2; i >= 1; i-- {
		d = stages[i].BackwardHidden(d)
	}
	if len(stages) > 1 {
		stages[0].BackwardHidden(d)
	}
	i := 0
	for _, s := range stages {
		for _, g := range s.Grads() {
			copy(g.Data, saved[i])
			i++
		}
	}
	return loss
}

func TestMicroBatchAccumulationEqualsFullBatch(t *testing.T) {
	// Two micro-batches of size 2 must produce the same *summed* gradients
	// as... with the 1/B normalization, half the full-batch-of-4 gradient
	// scaled appropriately: sum of per-micro grads (each averaged over 2)
	// equals 2× the average over 4. Verify that relationship.
	cfg := Config{Vocab: 7, Hidden: 5, Context: 2, Blocks: 2, Seed: 5}
	rng := rand.New(rand.NewSource(23))
	contexts, targets := randBatch(rng, cfg, 4)

	full, _ := NewStages(cfg, 2)
	runOne(full, contexts, targets)

	micro, _ := NewStages(cfg, 2)
	runOne(micro, contexts[:2], targets[:2])
	runOne(micro, contexts[2:], targets[2:])

	for si := range full {
		fg, mg := full[si].Grads(), micro[si].Grads()
		for i := range fg {
			scaled := fg[i].Clone().Scale(2)
			if !scaled.Equal(mg[i], 1e-9) {
				t.Fatalf("stage %d grad %d: micro-batch accumulation inconsistent", si, i)
			}
		}
	}
}

func runOne(stages []*Stage, contexts [][]int, targets []int) {
	h := stages[0].ForwardTokens(contexts)
	for _, s := range stages[1:] {
		h = s.ForwardHidden(h)
	}
	last := stages[len(stages)-1]
	logits := last.Logits(h)
	_, dLogits := CrossEntropy(logits, targets)
	d := last.BackwardLogits(dLogits)
	for i := len(stages) - 2; i >= 1; i-- {
		d = stages[i].BackwardHidden(d)
	}
	if len(stages) > 1 {
		stages[0].BackwardHidden(d)
	}
}

func TestInFlightMicroBatchQueues(t *testing.T) {
	// Interleave two forwards before any backward (as 1F1B does) and
	// check gradients equal the sequential forward/backward order.
	cfg := Config{Vocab: 7, Hidden: 5, Context: 2, Blocks: 2, Seed: 5}
	rng := rand.New(rand.NewSource(29))
	c1, t1 := randBatch(rng, cfg, 2)
	c2, t2 := randBatch(rng, cfg, 2)

	seq, _ := NewStages(cfg, 1)
	runOne(seq, c1, t1)
	runOne(seq, c2, t2)

	pipe, _ := NewStages(cfg, 1)
	s := pipe[0]
	h1 := s.ForwardTokens(c1)
	h2 := s.ForwardTokens(c2) // second forward while the first is in flight
	l1 := s.Logits(h1)
	l2 := s.Logits(h2)
	_, d1 := CrossEntropy(l1, t1)
	_, d2 := CrossEntropy(l2, t2)
	s.BackwardLogits(d1)
	s.BackwardLogits(d2)

	for i := range seq[0].Grads() {
		if !seq[0].Grads()[i].Equal(pipe[0].Grads()[i], 1e-9) {
			t.Fatalf("grad %d differs between sequential and in-flight order", i)
		}
	}
}

func TestSGDStepDirection(t *testing.T) {
	p := tensor.FromSlice(1, 2, []float64{1, 1})
	g := tensor.FromSlice(1, 2, []float64{1, -1})
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(p.At(0, 0)-0.9) > 1e-12 || math.Abs(p.At(0, 1)-1.1) > 1e-12 {
		t.Fatalf("SGD step wrong: %v", p.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := tensor.FromSlice(1, 1, []float64{0})
	g := tensor.FromSlice(1, 1, []float64{1})
	opt := NewSGD(1, 0.5, 0)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g}) // v=1, p=-1
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g}) // v=1.5, p=-2.5
	if math.Abs(p.At(0, 0)+2.5) > 1e-12 {
		t.Fatalf("momentum wrong: %v", p.At(0, 0))
	}
}

func TestSGDClipDoesNotMutateGrad(t *testing.T) {
	p := tensor.FromSlice(1, 1, []float64{0})
	g := tensor.FromSlice(1, 1, []float64{10})
	opt := NewSGD(1, 0, 1)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if g.At(0, 0) != 10 {
		t.Fatal("Step must not mutate the gradient")
	}
	if math.Abs(p.At(0, 0)+1) > 1e-12 {
		t.Fatalf("clip not applied: %v", p.At(0, 0))
	}
}

func TestZeroGrads(t *testing.T) {
	cfg := testCfg()
	stages, _ := NewStages(cfg, 2)
	rng := rand.New(rand.NewSource(31))
	c, tg := randBatch(rng, cfg, 2)
	runOne(stages, c, tg)
	nonzero := false
	for _, s := range stages {
		for _, g := range s.Grads() {
			if g.FrobeniusNorm() > 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("expected nonzero grads after backward")
	}
	for _, s := range stages {
		s.ZeroGrads()
	}
	for _, s := range stages {
		for _, g := range s.Grads() {
			if g.FrobeniusNorm() != 0 {
				t.Fatal("ZeroGrads left residue")
			}
		}
	}
}

func TestParamBytes(t *testing.T) {
	stages, _ := NewStages(testCfg(), 2)
	if stages[0].ParamBytes(2) <= 0 {
		t.Fatal("ParamBytes must be positive")
	}
	var sum int64
	for _, p := range stages[0].Params() {
		sum += int64(p.NumElements()) * 2
	}
	if stages[0].ParamBytes(2) != sum {
		t.Fatal("ParamBytes mismatch")
	}
}
