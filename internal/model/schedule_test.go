package model

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.3)
	if s.LR(0) != 0.3 || s.LR(10000) != 0.3 {
		t.Fatal("constant LR not constant")
	}
}

func TestWarmupCosineShape(t *testing.T) {
	s, err := NewWarmupCosine(1.0, 0.1, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Warmup is linear and increasing.
	if s.LR(0) <= 0 || s.LR(0) >= s.LR(50) || s.LR(50) >= s.LR(99) {
		t.Fatalf("warmup not increasing: %v %v %v", s.LR(0), s.LR(50), s.LR(99))
	}
	if math.Abs(s.LR(99)-1.0) > 0.02 {
		t.Fatalf("warmup end %v not near peak", s.LR(99))
	}
	// Decay is monotone down to the floor.
	prev := s.LR(100)
	for it := 200; it < 1000; it += 100 {
		cur := s.LR(it)
		if cur > prev+1e-12 {
			t.Fatalf("cosine decay not monotone at %d", it)
		}
		prev = cur
	}
	if math.Abs(s.LR(2000)-0.1) > 1e-12 {
		t.Fatalf("past-total LR %v != floor", s.LR(2000))
	}
}

func TestWarmupCosineValidation(t *testing.T) {
	cases := []struct {
		peak, floor   float64
		warmup, total int
	}{
		{0, 0, 10, 100},
		{1, 2, 10, 100},
		{1, 0.1, 100, 50},
		{1, -0.1, 10, 100},
	}
	for i, c := range cases {
		if _, err := NewWarmupCosine(c.peak, c.floor, c.warmup, c.total); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Initial: 1, Factor: 0.5, Every: 10}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Fatal("first window wrong")
	}
	if s.LR(10) != 0.5 || s.LR(25) != 0.25 {
		t.Fatalf("decay wrong: %v %v", s.LR(10), s.LR(25))
	}
	zero := StepDecay{Initial: 1, Factor: 0.5, Every: 0}
	if zero.LR(100) != 1 {
		t.Fatal("Every=0 should be constant")
	}
}

func TestWeightDecayShrinksParams(t *testing.T) {
	p := tensor.FromSlice(1, 1, []float64{1})
	g := tensor.New(1, 1) // zero gradient: only decay acts
	o := NewWeightDecaySGD(0.1, 0, 0, 0.5)
	o.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(p.At(0, 0)-0.95) > 1e-12 {
		t.Fatalf("decay wrong: %v want 0.95", p.At(0, 0))
	}
}

func TestWeightDecayZeroLambdaMatchesSGD(t *testing.T) {
	p1 := tensor.FromSlice(1, 1, []float64{1})
	p2 := p1.Clone()
	g := tensor.FromSlice(1, 1, []float64{0.3})
	a := NewWeightDecaySGD(0.1, 0.9, 0, 0)
	b := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 5; i++ {
		a.Step([]*tensor.Matrix{p1}, []*tensor.Matrix{g})
		b.Step([]*tensor.Matrix{p2}, []*tensor.Matrix{g})
	}
	if !p1.Equal(p2, 1e-12) {
		t.Fatal("λ=0 should match plain SGD")
	}
}

func TestWeightDecaySetLR(t *testing.T) {
	o := NewWeightDecaySGD(0.1, 0, 0, 0)
	o.SetLR(0.01)
	p := tensor.FromSlice(1, 1, []float64{0})
	g := tensor.FromSlice(1, 1, []float64{1})
	o.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(p.At(0, 0)+0.01) > 1e-12 {
		t.Fatalf("SetLR not applied: %v", p.At(0, 0))
	}
}
