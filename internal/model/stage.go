package model

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Config describes the stand-in language model.
type Config struct {
	Vocab   int // vocabulary size V
	Hidden  int // hidden width H (also the embedding width, for tying)
	Context int // number of context tokens C fed to the input projection
	Blocks  int // number of residual blocks, split across pipeline stages
	Seed    int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Vocab < 2:
		return fmt.Errorf("model: Vocab %d < 2", c.Vocab)
	case c.Hidden < 1:
		return fmt.Errorf("model: Hidden %d < 1", c.Hidden)
	case c.Context < 1:
		return fmt.Errorf("model: Context %d < 1", c.Context)
	case c.Blocks < 1:
		return fmt.Errorf("model: Blocks %d < 1", c.Blocks)
	}
	return nil
}

// ParamCount returns the number of scalar parameters of the full model,
// counting the tied embedding once (as the paper does for model sizes).
func (c Config) ParamCount() int64 {
	var n int64
	n += int64(c.Vocab) * int64(c.Hidden)                            // embedding
	n += int64(c.Context*c.Hidden)*int64(c.Hidden) + int64(c.Hidden) // input projection
	perBlock := int64(c.Hidden)*int64(c.Hidden) + 3*int64(c.Hidden)  // W, b, gain, bias
	n += int64(c.Blocks) * perBlock
	return n
}

// Stage is one pipeline stage: a contiguous slice of the model. The first
// stage owns the input embedding + projection; the last stage owns the
// tied-embedding output head. With a single stage, both live together and
// no embedding sync is needed — exactly the paper's observation that the
// sync only exists because pipeline parallelism splits the replicas.
type Stage struct {
	Index, Total int

	Emb    *Embedding // input table (first stage) — nil otherwise
	InProj *Linear    // (C·H)→H input projection (first stage) — nil otherwise
	Blocks []*Block
	OutEmb *Embedding // tied output head replica (last stage) — nil otherwise
	OutLN  *LayerNorm // final norm before the head (last stage) — nil otherwise
}

// IsFirst reports whether this is pipeline stage 0.
func (s *Stage) IsFirst() bool { return s.Index == 0 }

// IsLast reports whether this is the final pipeline stage.
func (s *Stage) IsLast() bool { return s.Index == s.Total-1 }

// NewStages builds the model and partitions its blocks evenly across
// numStages pipeline stages. All randomness is taken from cfg.Seed so
// every data-parallel replica constructs identical weights, mirroring
// how Megatron-LM broadcasts the initial model.
func NewStages(cfg Config, numStages int) ([]*Stage, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numStages < 1 || numStages > cfg.Blocks {
		return nil, fmt.Errorf("model: numStages %d outside [1, %d blocks]", numStages, cfg.Blocks)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	emb := NewEmbedding(rng, cfg.Vocab, cfg.Hidden)
	inProj := NewLinear(rng, cfg.Context*cfg.Hidden, cfg.Hidden)
	blocks := make([]*Block, cfg.Blocks)
	for i := range blocks {
		blocks[i] = NewBlock(rng, cfg.Hidden)
	}
	outLN := NewLayerNorm(cfg.Hidden)

	stages := make([]*Stage, numStages)
	per := cfg.Blocks / numStages
	extra := cfg.Blocks % numStages
	next := 0
	for s := 0; s < numStages; s++ {
		n := per
		if s < extra {
			n++
		}
		st := &Stage{Index: s, Total: numStages, Blocks: blocks[next : next+n]}
		next += n
		if st.IsFirst() {
			st.Emb = emb
			st.InProj = inProj
		}
		if st.IsLast() {
			st.OutLN = outLN
			if numStages == 1 {
				st.OutEmb = emb // same table: no replica, no sync needed
			} else {
				st.OutEmb = emb.Clone()
			}
		}
		stages[s] = st
	}
	return stages, nil
}

// ForwardTokens runs the first stage on a batch of token contexts and
// returns the B×H activation to ship to the next stage.
func (s *Stage) ForwardTokens(contexts [][]int) *tensor.Matrix {
	if !s.IsFirst() {
		panic("model: ForwardTokens on non-first stage")
	}
	x := s.Emb.LookupConcat(contexts)
	h := s.InProj.Forward(x)
	for _, b := range s.Blocks {
		h = b.Forward(h)
	}
	return h
}

// ForwardHidden runs a middle or last stage on the activation received
// from upstream. For the last stage the result is the pre-head hidden
// state; call Logits to finish.
func (s *Stage) ForwardHidden(h *tensor.Matrix) *tensor.Matrix {
	if s.IsFirst() {
		panic("model: ForwardHidden on first stage (use ForwardTokens)")
	}
	for _, b := range s.Blocks {
		h = b.Forward(h)
	}
	return h
}

// Logits applies the final norm and tied-embedding head (last stage only).
func (s *Stage) Logits(h *tensor.Matrix) *tensor.Matrix {
	if !s.IsLast() {
		panic("model: Logits on non-last stage")
	}
	n := s.OutLN.Forward(h)
	return s.OutEmb.ProjectLogits(n)
}

// BackwardLogits backpropagates dLogits through the head and the stage's
// blocks, returning the activation gradient to ship upstream (nil when
// this stage is also the first).
func (s *Stage) BackwardLogits(dLogits *tensor.Matrix) *tensor.Matrix {
	if !s.IsLast() {
		panic("model: BackwardLogits on non-last stage")
	}
	dh := s.OutEmb.BackwardLogits(dLogits)
	dh = s.OutLN.Backward(dh)
	return s.backwardBlocks(dh)
}

// BackwardHidden backpropagates the activation gradient received from
// downstream through this stage's blocks (middle stages), or through the
// blocks + input projection + embedding (first stage, returning nil).
func (s *Stage) BackwardHidden(dh *tensor.Matrix) *tensor.Matrix {
	if s.IsLast() {
		panic("model: BackwardHidden on last stage (use BackwardLogits)")
	}
	return s.backwardBlocks(dh)
}

func (s *Stage) backwardBlocks(dh *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Blocks) - 1; i >= 0; i-- {
		dh = s.Blocks[i].Backward(dh)
	}
	if s.IsFirst() {
		dx := s.InProj.Backward(dh)
		s.Emb.BackwardLookup(dx)
		return nil
	}
	return dh
}

// Params returns all parameter matrices owned by this stage, embedding
// replicas included, in a deterministic order.
func (s *Stage) Params() []*tensor.Matrix {
	var ps []*tensor.Matrix
	if s.Emb != nil {
		ps = append(ps, s.Emb.W)
	}
	if s.InProj != nil {
		ps = append(ps, s.InProj.W, s.InProj.B)
	}
	for _, b := range s.Blocks {
		ps = append(ps, b.Params()...)
	}
	if s.OutLN != nil {
		ps = append(ps, s.OutLN.Gain, s.OutLN.Bias)
	}
	if s.OutEmb != nil && s.OutEmb != s.Emb {
		ps = append(ps, s.OutEmb.W)
	}
	return ps
}

// Grads returns the gradient matrices aligned with Params.
func (s *Stage) Grads() []*tensor.Matrix {
	var gs []*tensor.Matrix
	if s.Emb != nil {
		gs = append(gs, s.Emb.GW)
	}
	if s.InProj != nil {
		gs = append(gs, s.InProj.GW, s.InProj.GB)
	}
	for _, b := range s.Blocks {
		gs = append(gs, b.Grads()...)
	}
	if s.OutLN != nil {
		gs = append(gs, s.OutLN.GGain, s.OutLN.GBias)
	}
	if s.OutEmb != nil && s.OutEmb != s.Emb {
		gs = append(gs, s.OutEmb.GW)
	}
	return gs
}

// EmbeddingGrad returns this stage's embedding-table gradient (input table
// on the first stage, tied replica on the last), or nil when the stage
// holds no embedding. This is the tensor the §6 synchronization operates
// on.
func (s *Stage) EmbeddingGrad() *tensor.Matrix {
	if s.Emb != nil {
		return s.Emb.GW
	}
	if s.OutEmb != nil {
		return s.OutEmb.GW
	}
	return nil
}

// EmbeddingWeight returns the stage's embedding table, or nil.
func (s *Stage) EmbeddingWeight() *tensor.Matrix {
	if s.Emb != nil {
		return s.Emb.W
	}
	if s.OutEmb != nil {
		return s.OutEmb.W
	}
	return nil
}

// ZeroGrads clears all gradient accumulators (called at iteration start).
func (s *Stage) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// ParamBytes returns the stage's parameter footprint at elemBytes width,
// for communication sizing and the Fig. 12 memory accounting.
func (s *Stage) ParamBytes(elemBytes int) int64 {
	var total int64
	for _, p := range s.Params() {
		total += p.SizeBytes(elemBytes)
	}
	return total
}
