package model

import (
	"math/rand"

	"repro/internal/tensor"
)

// Embedding is a V×H token-embedding table. In the stand-in model, as in
// GPT, the same table is used at the input (lookup) and at the output
// (logits = h·Wᵀ). Under pipeline parallelism the first and last stages
// each hold a replica, which is what creates the embedding-synchronization
// traffic of §6.
type Embedding struct {
	W  *tensor.Matrix // V×H
	GW *tensor.Matrix
	// ctxQueue holds the token contexts of in-flight micro-batches for the
	// input-side backward (scatter-add of gradients).
	ctxQueue [][][]int
	// hQueue holds the hidden states of in-flight micro-batches for the
	// output-side backward.
	hQueue []*tensor.Matrix
}

// NewEmbedding returns a V×H table with N(0, 0.02²) initialization (the
// GPT-2 convention).
func NewEmbedding(rng *rand.Rand, vocab, hidden int) *Embedding {
	return &Embedding{
		W:  tensor.RandN(rng, vocab, hidden, 0.02),
		GW: tensor.New(vocab, hidden),
	}
}

// Clone returns an embedding with identical weights and fresh zero
// gradients — how the last pipeline stage receives its replica of the
// first stage's table.
func (e *Embedding) Clone() *Embedding {
	return &Embedding{W: e.W.Clone(), GW: tensor.New(e.W.Rows, e.W.Cols)}
}

// Vocab returns V.
func (e *Embedding) Vocab() int { return e.W.Rows }

// Hidden returns H.
func (e *Embedding) Hidden() int { return e.W.Cols }

// LookupConcat embeds a batch of contexts (each a slice of C token ids)
// into a B×(C·H) matrix by concatenating the C embeddings, and enqueues the
// contexts for the input-side backward.
func (e *Embedding) LookupConcat(contexts [][]int) *tensor.Matrix {
	b := len(contexts)
	if b == 0 {
		panic("model: empty context batch")
	}
	c := len(contexts[0])
	h := e.Hidden()
	out := tensor.New(b, c*h)
	for i, ctx := range contexts {
		if len(ctx) != c {
			panic("model: ragged context batch")
		}
		row := out.Row(i)
		for p, tok := range ctx {
			copy(row[p*h:(p+1)*h], e.W.Row(tok))
		}
	}
	e.ctxQueue = append(e.ctxQueue, contexts)
	return out
}

// BackwardLookup scatter-adds dOut (B×(C·H)) into the embedding gradient
// for the oldest in-flight context batch.
func (e *Embedding) BackwardLookup(dOut *tensor.Matrix) {
	if len(e.ctxQueue) == 0 {
		panic("model: BackwardLookup with no in-flight lookup")
	}
	contexts := e.ctxQueue[0]
	e.ctxQueue = e.ctxQueue[1:]
	h := e.Hidden()
	for i, ctx := range contexts {
		row := dOut.Row(i)
		for p, tok := range ctx {
			grow := e.GW.Row(tok)
			seg := row[p*h : (p+1)*h]
			for j, v := range seg {
				grow[j] += v
			}
		}
	}
}

// ProjectLogits computes logits = h·Wᵀ (B×V) using the tied table, and
// enqueues h for the output-side backward.
func (e *Embedding) ProjectLogits(h *tensor.Matrix) *tensor.Matrix {
	logits := tensor.New(h.Rows, e.Vocab())
	tensor.MatMulBTInto(logits, h, e.W)
	e.hQueue = append(e.hQueue, h)
	return logits
}

// BackwardLogits accumulates the tied-table gradient from dLogits (B×V)
// and returns dh (B×H) for the oldest in-flight projection.
func (e *Embedding) BackwardLogits(dLogits *tensor.Matrix) *tensor.Matrix {
	if len(e.hQueue) == 0 {
		panic("model: BackwardLogits with no in-flight projection")
	}
	h := e.hQueue[0]
	e.hQueue = e.hQueue[1:]
	// dW = dLogitsᵀ·h  (V×H); dh = dLogits·W (B×H).
	gw := tensor.New(e.Vocab(), e.Hidden())
	tensor.MatMulATInto(gw, dLogits, h)
	e.GW.Add(gw)
	dh := tensor.New(h.Rows, h.Cols)
	tensor.MatMulInto(dh, dLogits, e.W)
	return dh
}
