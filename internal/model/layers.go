// Package model implements the GPT stand-in used by the reproduction: an
// MLP language model with tied input/output embeddings, organized as a
// chain of residual blocks that can be partitioned into pipeline stages.
//
// The structural properties that matter to Optimus-CC are preserved
// exactly: inter-stage traffic is a dense B×H activation (forward) or
// activation-gradient (backward) matrix; the embedding table is shared by
// the first and last stages, so its gradients need synchronization (§6);
// every parameter has a dense gradient that data-parallel training must
// all-reduce.
//
// Because the 1F1B schedule keeps several micro-batches in flight per
// stage, every layer stores its forward activations in a FIFO queue;
// Backward consumes them in micro-batch order, exactly as pipeline
// frameworks stash per-micro-batch activation state.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W, B   *tensor.Matrix // W: in×out, B: 1×out
	GW, GB *tensor.Matrix // gradients, accumulated across micro-batches
	xQueue []*tensor.Matrix
}

// NewLinear returns a Xavier-initialized in×out layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		W:  tensor.XavierInit(rng, in, out),
		B:  tensor.New(1, out),
		GW: tensor.New(in, out),
		GB: tensor.New(1, out),
	}
}

// Forward computes y = x·W + b and enqueues x for Backward.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.xQueue = append(l.xQueue, x)
	y := tensor.MatMul(x, l.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return y
}

// Backward accumulates parameter gradients from dy (for the oldest
// in-flight micro-batch) and returns dx.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if len(l.xQueue) == 0 {
		panic("model: Linear.Backward with no in-flight forward")
	}
	x := l.xQueue[0]
	l.xQueue = l.xQueue[1:]
	gw := tensor.New(l.W.Rows, l.W.Cols)
	tensor.MatMulATInto(gw, x, dy)
	l.GW.Add(gw)
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			l.GB.Data[j] += row[j]
		}
	}
	dx := tensor.New(x.Rows, x.Cols)
	tensor.MatMulBTInto(dx, dy, l.W)
	return dx
}

// InFlight reports the number of queued forward activations.
func (l *Linear) InFlight() int { return len(l.xQueue) }

// lnCache is the per-micro-batch forward state of a LayerNorm.
type lnCache struct {
	xHat   *tensor.Matrix
	invStd []float64
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies a learned gain and bias. The paper's Eq. 14 argument relies on
// normalization driving activation averages to zero; LayerNorm provides it.
type LayerNorm struct {
	Gain, Bias   *tensor.Matrix // 1×dim
	GGain, GBias *tensor.Matrix
	queue        []lnCache
}

const lnEps = 1e-5

// NewLayerNorm returns an identity-initialized LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{
		Gain:  tensor.New(1, dim),
		Bias:  tensor.New(1, dim),
		GGain: tensor.New(1, dim),
		GBias: tensor.New(1, dim),
	}
	ln.Gain.Fill(1)
	return ln
}

// Forward normalizes each row of x.
func (ln *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	c := lnCache{xHat: tensor.New(x.Rows, x.Cols), invStd: make([]float64, x.Rows)}
	d := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mu := tensor.Mean(row)
		var va float64
		for _, v := range row {
			dv := v - mu
			va += dv * dv
		}
		va /= d
		inv := 1 / math.Sqrt(va+lnEps)
		c.invStd[i] = inv
		xh := c.xHat.Row(i)
		yr := y.Row(i)
		for j, v := range row {
			h := (v - mu) * inv
			xh[j] = h
			yr[j] = h*ln.Gain.Data[j] + ln.Bias.Data[j]
		}
	}
	ln.queue = append(ln.queue, c)
	return y
}

// Backward accumulates gain/bias gradients and returns dx using the
// standard layer-norm backward formula.
func (ln *LayerNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if len(ln.queue) == 0 {
		panic("model: LayerNorm.Backward with no in-flight forward")
	}
	c := ln.queue[0]
	ln.queue = ln.queue[1:]
	dx := tensor.New(dy.Rows, dy.Cols)
	d := float64(dy.Cols)
	dxh := make([]float64, dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := c.xHat.Row(i)
		var sumDxh, sumDxhXh float64
		for j, g := range dyr {
			ln.GGain.Data[j] += g * xh[j]
			ln.GBias.Data[j] += g
			v := g * ln.Gain.Data[j]
			dxh[j] = v
			sumDxh += v
			sumDxhXh += v * xh[j]
		}
		inv := c.invStd[i]
		dxr := dx.Row(i)
		for j := range dxr {
			dxr[j] = inv / d * (d*dxh[j] - sumDxh - xh[j]*sumDxhXh)
		}
	}
	return dx
}

// Block is one residual unit: y = x + GELU(LayerNorm(x·W + b)).
// Residual connections keep deep pipelines trainable; the block's dense
// H×H weight is the unit of data-parallel gradient compression.
type Block struct {
	Lin      *Linear
	LN       *LayerNorm
	preQueue []*tensor.Matrix // LN outputs before GELU, per micro-batch
}

// NewBlock returns a residual block over hidden dim h.
func NewBlock(rng *rand.Rand, h int) *Block {
	return &Block{Lin: NewLinear(rng, h, h), LN: NewLayerNorm(h)}
}

// Forward runs the block.
func (b *Block) Forward(x *tensor.Matrix) *tensor.Matrix {
	z := b.Lin.Forward(x)
	n := b.LN.Forward(z)
	b.preQueue = append(b.preQueue, n.Clone())
	act := tensor.GELU(n)
	return x.Clone().Add(act)
}

// Backward runs the block's backward pass and returns dx.
func (b *Block) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if len(b.preQueue) == 0 {
		panic("model: Block.Backward with no in-flight forward")
	}
	pre := b.preQueue[0]
	b.preQueue = b.preQueue[1:]
	dAct := tensor.New(dy.Rows, dy.Cols)
	for i, v := range pre.Data {
		dAct.Data[i] = dy.Data[i] * tensor.GELUGrad(v)
	}
	dz := b.LN.Backward(dAct)
	dx := b.Lin.Backward(dz)
	return dx.Add(dy) // residual path
}

// Params returns the block's parameter matrices in a fixed order.
func (b *Block) Params() []*tensor.Matrix {
	return []*tensor.Matrix{b.Lin.W, b.Lin.B, b.LN.Gain, b.LN.Bias}
}

// Grads returns the gradient matrices aligned with Params.
func (b *Block) Grads() []*tensor.Matrix {
	return []*tensor.Matrix{b.Lin.GW, b.Lin.GB, b.LN.GGain, b.LN.GBias}
}

// String identifies the block size for debugging.
func (b *Block) String() string {
	return fmt.Sprintf("Block(h=%d)", b.Lin.W.Rows)
}
