package model

import (
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes the mean negative log-likelihood of targets under
// softmax(logits), and the gradient dLogits = (softmax − onehot)/B. The
// 1/B factor makes micro-batch gradient accumulation average-preserving.
func CrossEntropy(logits *tensor.Matrix, targets []int) (loss float64, dLogits *tensor.Matrix) {
	b := logits.Rows
	if len(targets) != b {
		panic("model: CrossEntropy target/batch mismatch")
	}
	dLogits = tensor.New(b, logits.Cols)
	invB := 1 / float64(b)
	for i := 0; i < b; i++ {
		row := logits.Row(i)
		lse := tensor.LogSumExpRow(row)
		loss += lse - row[targets[i]]
		drow := dLogits.Row(i)
		for j, v := range row {
			drow[j] = math.Exp(v-lse) * invB
		}
		drow[targets[i]] -= invB
	}
	return loss * invB, dLogits
}

// Perplexity converts a mean cross-entropy (nats) into perplexity, the
// validation metric of Table 2 and Fig. 9.
func Perplexity(meanLoss float64) float64 { return math.Exp(meanLoss) }

// SGD is the optimizer used by the reproduction: momentum SGD with
// gradient clipping. Each data-parallel replica applies the identical
// update to its identical weights, so replicas stay synchronized bit-for-
// bit given identical (averaged) gradients.
type SGD struct {
	LR       float64
	Momentum float64
	Clip     float64 // element-wise clip on the (averaged) gradient; 0 = off
	velocity map[*tensor.Matrix]*tensor.Matrix
}

// NewSGD returns a momentum-SGD optimizer.
func NewSGD(lr, momentum, clip float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Clip: clip, velocity: make(map[*tensor.Matrix]*tensor.Matrix)}
}

// Step applies one update: p ← p − lr·v where v ← μ·v + g. The gradient
// matrices are not modified.
func (o *SGD) Step(params, grads []*tensor.Matrix) {
	if len(params) != len(grads) {
		panic("model: SGD params/grads length mismatch")
	}
	for i, p := range params {
		g := grads[i]
		eff := g
		if o.Clip > 0 {
			eff = g.Clone()
			tensor.ClipInPlace(eff, o.Clip)
		}
		if o.Momentum > 0 {
			v := o.velocity[p]
			if v == nil {
				v = tensor.New(g.Rows, g.Cols)
				o.velocity[p] = v
			}
			v.Scale(o.Momentum).Add(eff)
			eff = v
		}
		p.AddScaled(-o.LR, eff)
	}
}

// Velocity returns p's momentum buffer, or nil before the first
// momentum-bearing Step. The returned matrix is live optimizer state.
func (o *SGD) Velocity(p *tensor.Matrix) *tensor.Matrix { return o.velocity[p] }

// ResetVelocity drops every momentum buffer. Checkpoint restore clears
// the optimizer before installing the saved buffers, so state the
// checkpoint does not mention cannot leak into the restored run.
func (o *SGD) ResetVelocity() { clear(o.velocity) }

// SetVelocity installs a copy of v as p's momentum buffer. Checkpoint
// restore uses this so a resumed run's updates continue from the saved
// optimizer state instead of zero momentum.
func (o *SGD) SetVelocity(p, v *tensor.Matrix) {
	cur := o.velocity[p]
	if cur == nil || cur.Rows != v.Rows || cur.Cols != v.Cols {
		cur = tensor.New(v.Rows, v.Cols)
		o.velocity[p] = cur
	}
	cur.CopyFrom(v)
}
