package model

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr·sign(g).
	p := tensor.FromSlice(1, 2, []float64{0, 0})
	g := tensor.FromSlice(1, 2, []float64{0.5, -2})
	opt := NewAdam(0.1, 0)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(p.At(0, 0)+0.1) > 1e-6 || math.Abs(p.At(0, 1)-0.1) > 1e-6 {
		t.Fatalf("first step %v, want ≈ ∓lr", p.Data)
	}
	if opt.StepCount() != 1 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = x² from x=3.
	p := tensor.FromSlice(1, 1, []float64{3})
	g := tensor.New(1, 1)
	opt := NewAdam(0.1, 0)
	for i := 0; i < 300; i++ {
		g.Set(0, 0, 2*p.At(0, 0))
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	}
	if math.Abs(p.At(0, 0)) > 0.05 {
		t.Fatalf("did not converge: x=%v", p.At(0, 0))
	}
}

func TestAdamClipDoesNotMutateGrad(t *testing.T) {
	p := tensor.FromSlice(1, 1, []float64{0})
	g := tensor.FromSlice(1, 1, []float64{100})
	opt := NewAdam(0.01, 1)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if g.At(0, 0) != 100 {
		t.Fatal("gradient mutated")
	}
}

func TestAdamLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.1, 0).Step([]*tensor.Matrix{tensor.New(1, 1)}, nil)
}

func TestAdamTrainsTheModel(t *testing.T) {
	// End-to-end: Adam should reduce loss on the stand-in model just like
	// SGD does.
	cfg := Config{Vocab: 7, Hidden: 8, Context: 2, Blocks: 2, Seed: 5}
	stages, err := NewStages(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := stages[0]
	opt := NewAdam(0.01, 1)
	contexts := [][]int{{1, 2}, {3, 4}, {5, 6}, {0, 1}}
	targets := []int{3, 5, 0, 2}
	var first, last float64
	for it := 0; it < 200; it++ {
		s.ZeroGrads()
		h := s.ForwardTokens(contexts)
		logits := s.Logits(h)
		loss, dLogits := CrossEntropy(logits, targets)
		s.BackwardLogits(dLogits)
		opt.Step(s.Params(), s.Grads())
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/2 {
		t.Fatalf("Adam failed to learn: %v → %v", first, last)
	}
}
