package model

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Learning-rate schedules. Large-model pretraining (and the paper's §9.1
// setup, with its 30K warm-up iterations) never runs at a constant LR;
// the trainer accepts any LRSchedule.

// LRSchedule maps an iteration index (0-based) to a learning rate.
type LRSchedule interface {
	LR(iter int) float64
}

// ConstantLR returns lr at every step.
type ConstantLR float64

// LR implements LRSchedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// WarmupCosine is the GPT-2/Megatron schedule: linear warmup from 0 to
// Peak over Warmup iterations, then cosine decay to Floor at Total.
type WarmupCosine struct {
	Peak   float64
	Floor  float64
	Warmup int
	Total  int
}

// NewWarmupCosine validates and returns the schedule.
func NewWarmupCosine(peak, floor float64, warmup, total int) (*WarmupCosine, error) {
	switch {
	case peak <= 0:
		return nil, fmt.Errorf("model: peak LR %v <= 0", peak)
	case floor < 0 || floor > peak:
		return nil, fmt.Errorf("model: floor LR %v outside [0, peak]", floor)
	case warmup < 0 || total <= warmup:
		return nil, fmt.Errorf("model: warmup %d / total %d invalid", warmup, total)
	}
	return &WarmupCosine{Peak: peak, Floor: floor, Warmup: warmup, Total: total}, nil
}

// LR implements LRSchedule.
func (s *WarmupCosine) LR(iter int) float64 {
	if iter < s.Warmup {
		return s.Peak * float64(iter+1) / float64(s.Warmup)
	}
	if iter >= s.Total {
		return s.Floor
	}
	progress := float64(iter-s.Warmup) / float64(s.Total-s.Warmup)
	return s.Floor + (s.Peak-s.Floor)*0.5*(1+math.Cos(math.Pi*progress))
}

// StepDecay halves (or multiplies by Factor) the LR every Every steps.
type StepDecay struct {
	Initial float64
	Factor  float64
	Every   int
}

// LR implements LRSchedule.
func (s StepDecay) LR(iter int) float64 {
	if s.Every <= 0 {
		return s.Initial
	}
	return s.Initial * math.Pow(s.Factor, float64(iter/s.Every))
}

// WeightDecaySGD is momentum SGD with decoupled weight decay
// (p ← p·(1−lr·λ) before the gradient step), the standard regularizer for
// transformer pretraining.
type WeightDecaySGD struct {
	inner  *SGD
	Lambda float64
}

// NewWeightDecaySGD returns momentum SGD with decoupled weight decay λ.
func NewWeightDecaySGD(lr, momentum, clip, lambda float64) *WeightDecaySGD {
	return &WeightDecaySGD{inner: NewSGD(lr, momentum, clip), Lambda: lambda}
}

// SetLR updates the learning rate (for schedule-driven training).
func (o *WeightDecaySGD) SetLR(lr float64) { o.inner.LR = lr }

// Step applies decay then the SGD update.
func (o *WeightDecaySGD) Step(params, grads []*tensor.Matrix) {
	if o.Lambda > 0 {
		shrink := 1 - o.inner.LR*o.Lambda
		if shrink < 0 {
			shrink = 0
		}
		for _, p := range params {
			p.Scale(shrink)
		}
	}
	o.inner.Step(params, grads)
}
