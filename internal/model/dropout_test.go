package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDropoutZeroRateIsIdentity(t *testing.T) {
	d := NewDropout(0, 1)
	x := tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})
	y := d.Forward(x)
	if y != x {
		t.Fatal("rate 0 must pass through")
	}
	dy := tensor.FromSlice(2, 2, []float64{5, 6, 7, 8})
	if d.Backward(dy) != dy {
		t.Fatal("rate 0 backward must pass through")
	}
}

func TestDropoutRateBounds(t *testing.T) {
	for _, r := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v accepted", r)
				}
			}()
			NewDropout(r, 1)
		}()
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 1, 1, 0)
	x.Fill(1)
	d := NewDropout(0.3, 3)
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		y := d.Forward(x)
		sum += y.At(0, 0)
		d.Backward(tensor.New(1, 1)) // drain the queue
	}
	if got := sum / trials; math.Abs(got-1) > 0.03 {
		t.Fatalf("E[dropout(1)] = %v, want 1 (inverted scaling)", got)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	d := NewDropout(0.5, 4)
	x := tensor.New(4, 8)
	x.Fill(1)
	y := d.Forward(x)
	dy := tensor.New(4, 8)
	dy.Fill(1)
	dx := d.Backward(dy)
	// Gradient flows exactly where the forward survived, with the same
	// scale.
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatalf("mask mismatch at %d: fwd %v bwd %v", i, y.Data[i], dx.Data[i])
		}
		if y.Data[i] != 0 && math.Abs(dx.Data[i]-2) > 1e-12 {
			t.Fatalf("scale wrong at %d: %v", i, dx.Data[i])
		}
	}
}

func TestDropoutQueueSupportsInFlight(t *testing.T) {
	d := NewDropout(0.5, 5)
	x := tensor.New(2, 4)
	x.Fill(1)
	y1 := d.Forward(x)
	y2 := d.Forward(x)
	if d.InFlight() != 2 {
		t.Fatalf("in-flight %d", d.InFlight())
	}
	ones := tensor.New(2, 4)
	ones.Fill(1)
	dx1 := d.Backward(ones)
	dx2 := d.Backward(ones.Clone())
	for i := range y1.Data {
		if (y1.Data[i] == 0) != (dx1.Data[i] == 0) {
			t.Fatal("first backward used wrong mask")
		}
		if (y2.Data[i] == 0) != (dx2.Data[i] == 0) {
			t.Fatal("second backward used wrong mask")
		}
	}
}

func TestDropoutBackwardWithoutForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(0.5, 6).Backward(tensor.New(1, 1))
}
