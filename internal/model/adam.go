package model

import (
	"math"

	"repro/internal/tensor"
)

// Adam is the optimizer large NLP pretraining actually uses (the paper's
// baselines run Adam; 1-bit Adam in §2.3 compresses its communication).
// The reproduction offers it alongside SGD so optimizer choice can be
// ablated.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // element-wise gradient clip; 0 = off
	step    int
	moments map[*tensor.Matrix]*adamState
}

type adamState struct {
	m, v *tensor.Matrix
}

// NewAdam returns an Adam optimizer with the GPT-2 defaults
// (β₁=0.9, β₂=0.999, ε=1e-8).
func NewAdam(lr, clip float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: clip,
		moments: make(map[*tensor.Matrix]*adamState)}
}

// Step applies one Adam update with bias correction. Gradients are not
// modified.
func (o *Adam) Step(params, grads []*tensor.Matrix) {
	if len(params) != len(grads) {
		panic("model: Adam params/grads length mismatch")
	}
	o.step++
	c1 := 1 - math.Pow(o.Beta1, float64(o.step))
	c2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for i, p := range params {
		g := grads[i]
		st := o.moments[p]
		if st == nil {
			st = &adamState{m: tensor.New(g.Rows, g.Cols), v: tensor.New(g.Rows, g.Cols)}
			o.moments[p] = st
		}
		for j, gv := range g.Data {
			if o.Clip > 0 {
				if gv > o.Clip {
					gv = o.Clip
				} else if gv < -o.Clip {
					gv = -o.Clip
				}
			}
			st.m.Data[j] = o.Beta1*st.m.Data[j] + (1-o.Beta1)*gv
			st.v.Data[j] = o.Beta2*st.v.Data[j] + (1-o.Beta2)*gv*gv
			mHat := st.m.Data[j] / c1
			vHat := st.v.Data[j] / c2
			p.Data[j] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}

// StepCount returns the number of updates applied.
func (o *Adam) StepCount() int { return o.step }
