package model

import (
	"math"

	"repro/internal/tensor"
)

// Inference-only forward passes. These recompute the network from weights
// without touching the per-micro-batch activation queues, so evaluation
// can run at any point during pipelined training without corrupting
// in-flight state.

// inferLinear computes x·W + b without caching.
func inferLinear(l *Linear, x *tensor.Matrix) *tensor.Matrix {
	y := tensor.MatMul(x, l.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return y
}

// inferLayerNorm normalizes without caching.
func inferLayerNorm(ln *LayerNorm, x *tensor.Matrix) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	d := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mu := tensor.Mean(row)
		var va float64
		for _, v := range row {
			dv := v - mu
			va += dv * dv
		}
		va /= d
		inv := 1 / math.Sqrt(va+lnEps)
		yr := y.Row(i)
		for j, v := range row {
			yr[j] = (v-mu)*inv*ln.Gain.Data[j] + ln.Bias.Data[j]
		}
	}
	return y
}

// inferBlock runs one residual block without caching.
func inferBlock(b *Block, x *tensor.Matrix) *tensor.Matrix {
	z := inferLinear(b.Lin, x)
	n := inferLayerNorm(b.LN, z)
	tensor.GELU(n)
	return x.Clone().Add(n)
}

// inferLookup embeds contexts without caching.
func inferLookup(e *Embedding, contexts [][]int) *tensor.Matrix {
	b := len(contexts)
	c := len(contexts[0])
	h := e.Hidden()
	out := tensor.New(b, c*h)
	for i, ctx := range contexts {
		row := out.Row(i)
		for p, tok := range ctx {
			copy(row[p*h:(p+1)*h], e.W.Row(tok))
		}
	}
	return out
}

// InferLogits runs the full stage chain on contexts in inference mode and
// returns the B×V logits. Stages must cover the whole model (first..last).
func InferLogits(stages []*Stage, contexts [][]int) *tensor.Matrix {
	first := stages[0]
	if !first.IsFirst() {
		panic("model: InferLogits needs the full stage chain")
	}
	h := inferLinear(first.InProj, inferLookup(first.Emb, contexts))
	for _, s := range stages {
		for _, b := range s.Blocks {
			h = inferBlock(b, h)
		}
	}
	last := stages[len(stages)-1]
	if !last.IsLast() {
		panic("model: InferLogits needs the full stage chain")
	}
	n := inferLayerNorm(last.OutLN, h)
	logits := tensor.New(n.Rows, last.OutEmb.Vocab())
	tensor.MatMulBTInto(logits, n, last.OutEmb.W)
	return logits
}

// Inferencer adapts a stage chain to the data.Predictor interface for
// zero-shot task evaluation.
type Inferencer struct {
	Stages []*Stage
}

// PredictLogits implements data.Predictor.
func (inf Inferencer) PredictLogits(contexts [][]int) *tensor.Matrix {
	return InferLogits(inf.Stages, contexts)
}
