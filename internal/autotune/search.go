package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Pricer prices one candidate configuration and compiles its plan.
// *sim.Evaluator is the canonical implementation (frozen-sequence
// batch pricing); tests substitute deterministic fakes.
type Pricer interface {
	Price(cfg core.Config, bucketBytes int64) (sim.Estimate, error)
	Plan(cfg core.Config, bucketBytes int64) (*plan.Plan, error)
}

// Options tunes the search.
type Options struct {
	// Seed drives the annealer and the candidate configs' compressor
	// seeds. The same seed always yields the same ranked table.
	Seed int64
	// ExhaustiveLimit is the admitted-space size up to which the search
	// enumerates exhaustively; larger spaces anneal. Default 4096.
	ExhaustiveLimit int
	// AnnealEvals is the annealer's proposal budget. Default 800.
	AnnealEvals int
	// Top truncates the ranked table (0 keeps everything).
	Top int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 4096
	}
	if o.AnnealEvals == 0 {
		o.AnnealEvals = 800
	}
	return o
}

// Ranked is one priced candidate with its cost breakdown.
type Ranked struct {
	Candidate Candidate
	Config    core.Config
	Estimate  sim.Estimate
	// LossPPL is the quality model's estimated ΔPPL.
	LossPPL float64
	// TotalBuckets sums the compiled plan's per-stage bucket counts —
	// the first tie-break after cost (coarsest schedule wins).
	TotalBuckets int
}

// Result is the search outcome: the full ranking (best first) plus the
// winner's compiled plan.
type Result struct {
	Mode string // "exhaustive" or "anneal"
	Seed int64
	// Enumerated counts the whole space; Admitted the candidates inside
	// the quality budget; Priced the candidates actually evaluated;
	// Rejected the candidates dropped before or at pricing (quality
	// budget, validation, or plan-compile errors).
	Enumerated, Admitted, Priced, Rejected int
	// Ranked is sorted by (IterationSec, TotalBuckets, Key) — a total
	// order, so equal-cost candidates rank deterministically. Truncated
	// to Options.Top when set.
	Ranked []Ranked
	// Winner is Ranked[0] (kept separately so table truncation can
	// never lose it); WinnerPlan its compiled plan.
	Winner     Ranked
	WinnerPlan *plan.Plan
}

// Search runs the plan-space search: enumerate the space, reject
// candidates outside the quality budget, price the rest — exhaustively
// when the admitted space fits Options.ExhaustiveLimit, by seeded
// simulated annealing otherwise — and rank them. Candidates the pricer
// rejects (plan-compile errors) are counted in Rejected and skipped.
func Search(pr Pricer, sp Space, qm QualityModel, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if sp.Stages < 1 {
		return nil, fmt.Errorf("autotune: space has no stages")
	}
	all := sp.Enumerate()
	res := &Result{Seed: opts.Seed, Enumerated: len(all)}
	var admitted []Candidate
	for _, c := range all {
		if c.Validate(sp.Stages) != nil || !qm.Admits(c, sp.Stages) {
			res.Rejected++
			continue
		}
		admitted = append(admitted, c)
	}
	res.Admitted = len(admitted)
	if len(admitted) == 0 {
		return nil, fmt.Errorf("autotune: quality budget %.3f admits no candidate of the %d-candidate space", qm.Budget, len(all))
	}

	price := func(c Candidate) (Ranked, bool) {
		cfg := c.Config(sp.Stages, opts.Seed)
		est, err := pr.Price(cfg, c.BucketBytes)
		if err != nil {
			res.Rejected++
			return Ranked{}, false
		}
		res.Priced++
		r := Ranked{Candidate: c, Config: cfg, Estimate: est, LossPPL: qm.EstimateLoss(c, sp.Stages)}
		for _, n := range est.Buckets {
			r.TotalBuckets += n
		}
		return r, true
	}

	if len(admitted) <= opts.ExhaustiveLimit {
		res.Mode = "exhaustive"
		for _, c := range admitted {
			if r, ok := price(c); ok {
				res.Ranked = append(res.Ranked, r)
			}
		}
	} else {
		res.Mode = "anneal"
		res.Ranked = anneal(admitted, sp, qm, opts, price, res)
	}
	if len(res.Ranked) == 0 {
		return nil, fmt.Errorf("autotune: no candidate priced successfully (%d rejected)", res.Rejected)
	}

	sort.SliceStable(res.Ranked, func(i, j int) bool {
		a, b := res.Ranked[i], res.Ranked[j]
		if a.Estimate.IterationSec != b.Estimate.IterationSec {
			return a.Estimate.IterationSec < b.Estimate.IterationSec
		}
		if a.TotalBuckets != b.TotalBuckets {
			return a.TotalBuckets < b.TotalBuckets
		}
		return a.Candidate.Key() < b.Candidate.Key()
	})
	res.Winner = res.Ranked[0]
	if opts.Top > 0 && len(res.Ranked) > opts.Top {
		res.Ranked = res.Ranked[:opts.Top]
	}
	wp, err := pr.Plan(res.Winner.Config, res.Winner.Candidate.BucketBytes)
	if err != nil {
		return nil, fmt.Errorf("autotune: winner failed to recompile: %w", err)
	}
	res.WinnerPlan = wp
	return res, nil
}

// anneal walks the admitted space by seeded simulated annealing: start
// from the dense candidate, re-draw one dimension per proposal, accept
// improvements always and regressions with Boltzmann probability under
// a geometric temperature schedule. Every distinct candidate priced
// along the walk lands in the ranking (deduplicated by key), so the
// final sort sees the whole explored set.
func anneal(admitted []Candidate, sp Space, qm QualityModel, opts Options,
	price func(Candidate) (Ranked, bool), res *Result) []Ranked {
	rng := rand.New(rand.NewSource(opts.Seed))
	seen := make(map[string]Ranked)
	var order []string
	eval := func(c Candidate) (Ranked, bool) {
		k := c.Key()
		if r, ok := seen[k]; ok {
			return r, true
		}
		r, ok := price(c)
		if ok {
			seen[k] = r
			order = append(order, k)
		}
		return r, ok
	}

	cur := Candidate{} // dense baseline: always inside any budget ≥ 0
	curR, ok := eval(cur)
	if !ok {
		// The dense plan failing to price means the scenario itself is
		// broken; fall back to the first admitted candidate.
		cur = admitted[0]
		if curR, ok = eval(cur); !ok {
			return nil
		}
	}
	t0 := 0.10 * curR.Estimate.IterationSec
	decay := math.Pow(1e-3, 1/math.Max(1, float64(opts.AnnealEvals)))
	temp := t0
	for i := 0; i < opts.AnnealEvals; i++ {
		temp *= decay
		next := cur.Mutate(rng, sp)
		if next.Validate(sp.Stages) != nil || !qm.Admits(next, sp.Stages) {
			res.Rejected++
			continue
		}
		nextR, ok := eval(next)
		if !ok {
			continue
		}
		delta := nextR.Estimate.IterationSec - curR.Estimate.IterationSec
		if delta <= 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
			cur, curR = next, nextR
		}
	}
	out := make([]Ranked, 0, len(order))
	for _, k := range order {
		out = append(out, seen[k])
	}
	return out
}

// Table renders the ranked candidates as a fixed-width text table —
// stable across runs with the same seed (golden-tested), suitable for
// the CLIs and the experiments report.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "autotune: %s search, seed %d — %d enumerated, %d admitted, %d priced, %d rejected\n",
		r.Mode, r.Seed, r.Enumerated, r.Admitted, r.Priced, r.Rejected)
	fmt.Fprintf(&b, "%4s  %-46s %10s %9s %9s %9s %11s %9s %8s %8s\n",
		"#", "candidate", "iter(s)", "exp.pp", "exp.dp", "exp.emb", "pp.MB/rep", "dp.MB", "emb.MB", "est.dPPL")
	mb := func(v int64) float64 { return float64(v) / 1e6 }
	for i, row := range r.Ranked {
		e := row.Estimate
		fmt.Fprintf(&b, "%4d  %-46s %10.4f %9.4f %9.4f %9.4f %11.1f %9.1f %8.1f %8.3f\n",
			i+1, row.Candidate.Key(), e.IterationSec, e.ExposedPPSec, e.ExposedDPSec, e.ExposedEmbSec,
			mb(e.PPBytesPerReplica), mb(e.DPBytes), mb(e.EmbBytes), row.LossPPL)
	}
	fmt.Fprintf(&b, "winner: %s (predicted iteration %.4fs)\n",
		r.Winner.Candidate.Key(), r.Winner.Estimate.IterationSec)
	return b.String()
}
