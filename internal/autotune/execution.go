package autotune

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/sim"
)

// Probes carries the executed-scale payload sizes PredictExecution
// prices a plan with. The trainer measures them by compressing probe
// tensors through the plan's own specs (payload sizes are
// shape-determined, so one probe prices every send of a class).
type Probes struct {
	// DenseBoundaryBytes is one dense inter-stage activation/
	// activation-gradient payload.
	DenseBoundaryBytes int64
	// CBWireBytes is one compressed backward payload (0 when CB is off).
	CBWireBytes int64
	// DPPayloadBytes reports gradient channel (stage, ch)'s compressed
	// payload size, or 0 where the channel stays dense (incompressible
	// shapes remain dense even on compressed stages).
	DPPayloadBytes func(stage, ch int) int64
	// EmbTableBytes is one rank's embedding-table gradient payload.
	EmbTableBytes int64
}

// ExecutionPrediction is the autotuner's wire-volume prediction for
// one executed iteration of a plan — the quantities the executor
// crosschecks pin at tolerance zero.
type ExecutionPrediction struct {
	// PPBytes is the inter-stage volume across all replicas.
	PPBytes int64
	// DPBuckets is the per-(stage, bucket) aggregate DP-sync ring
	// volume, aligned with the plan's bucket schedule; DPBytes its sum.
	DPBuckets [][]int64
	DPBytes   int64
	// EmbBytes is the §6 embedding-sync aggregate volume.
	EmbBytes int64
}

// PredictExecution prices one iteration's executed wire volumes from a
// compiled plan at the caller's scale: the same plan-derived closed
// forms the simulator uses (PredictInterStageFromPlan for the
// boundary path, PredictDPBucketBytes' Thakur ring forms for DP sync,
// the Eq. 15/16 phase structure for embedding sync), evaluated over
// the probe payload sizes. Because the trainer executes the identical
// plan, executed volume == this prediction exactly — the tol-0
// invariant the autotune crosscheck tests enforce.
func PredictExecution(pl *plan.Plan, pr Probes) (ExecutionPrediction, error) {
	if pl == nil {
		return ExecutionPrediction{}, fmt.Errorf("autotune: nil plan")
	}
	g := pl.Grid()
	var out ExecutionPrediction
	out.PPBytes = sim.PredictInterStageFromPlan(pl, pr.DenseBoundaryBytes, pr.CBWireBytes).Bytes * int64(g.DPGroups)
	if g.DPGroups > 1 && pl.HasBuckets() {
		payload := pr.DPPayloadBytes
		if payload == nil {
			payload = func(int, int) int64 { return 0 }
		}
		buckets, err := sim.PredictDPBucketBytes(pl, payload)
		if err != nil {
			return ExecutionPrediction{}, err
		}
		out.DPBuckets = buckets
		for _, row := range buckets {
			for _, b := range row {
				out.DPBytes += b
			}
		}
	}
	v := pr.EmbTableBytes
	d := int64(g.DPGroups)
	switch pl.Embedding() {
	case plan.EmbDPOnly:
		out.EmbBytes = 2 * v * (d - 1)
	case plan.EmbFused:
		out.EmbBytes = 2 * v * (2*d - 1)
	case plan.EmbTwoPhase:
		if d > 1 {
			out.EmbBytes += 2 * 2 * v * (d - 1) // phase 1: one D-way average per side
		}
		out.EmbBytes += d * 2 * v // phase 2: D pairwise 2-way sums, 2V each
	}
	return out, nil
}
