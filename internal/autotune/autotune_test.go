package autotune

import (
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
)

func TestCandidateNormalizeCollapsesEquivalents(t *testing.T) {
	a := Candidate{CB: false, CBFamily: "powersgd", CBRank: 16, DPStages: 0, DPFamily: "terngrad", DPRank: 9}
	if a.Normalize() != (Candidate{}) {
		t.Fatalf("off-technique fields not dropped: %+v", a.Normalize())
	}
	b := Candidate{CB: true, CBFamily: "lowrank", CBRank: 16}
	if got := b.Normalize().CBFamily; got != "powersgd" {
		t.Fatalf("alias not normalized: %q", got)
	}
	c := Candidate{CB: true, CBFamily: "terngrad", CBRank: 16}
	if got := c.Normalize().CBRank; got != 0 {
		t.Fatalf("quantizer rank not dropped: %d", got)
	}
	if a.Key() != (Candidate{}).Key() {
		t.Fatal("equivalent candidates have different keys")
	}
}

func TestCandidateConfigMapsPrefixExactly(t *testing.T) {
	for stages := 1; stages <= 8; stages++ {
		for k := 0; k <= stages; k++ {
			c := Candidate{DPStages: k, DPFamily: "powersgd", DPRank: 8}
			cfg := c.Config(stages, 1)
			sel := cfg.CompressedStages(stages)
			var n int
			for _, on := range sel {
				if on {
					n++
				}
			}
			if n != k {
				t.Fatalf("stages=%d k=%d: fraction %v selects %d stages", stages, k, cfg.SelectiveStageFraction, n)
			}
		}
	}
}

func TestEnumerateDeterministicAndValid(t *testing.T) {
	sp := DefaultSpace(4)
	all := sp.Enumerate()
	if len(all) == 0 {
		t.Fatal("empty enumeration")
	}
	// CB menu: off + powersgd×3 + topk×3 + terngrad + uniform8 = 9.
	// DP menu: dense + 4 prefixes × (powersgd×3 + terngrad + uniform8) = 21.
	// × emb 2 × buckets 3 = 1134.
	if want := 9 * 21 * 2 * 3; len(all) != want {
		t.Fatalf("enumerated %d candidates, want %d", len(all), want)
	}
	seen := make(map[string]bool, len(all))
	for _, c := range all {
		if c != c.Normalize() {
			t.Fatalf("enumeration emitted non-canonical candidate %+v", c)
		}
		if err := c.Validate(sp.Stages); err != nil {
			t.Fatalf("enumeration emitted invalid candidate %s: %v", c.Key(), err)
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate key %s", c.Key())
		}
		seen[c.Key()] = true
	}
	again := sp.Enumerate()
	for i := range all {
		if all[i] != again[i] {
			t.Fatal("enumeration order not deterministic")
		}
	}
}

// fakePricer produces deterministic synthetic estimates from the
// candidate's identity, so search behaviour is golden-testable without
// depending on the simulator's float output.
type fakePricer struct {
	stages int
	priced []string
}

func (f *fakePricer) Price(cfg core.Config, bucketBytes int64) (sim.Estimate, error) {
	h := fnv.New64a()
	h.Write([]byte(cfg.Name()))
	h.Write([]byte{byte(cfg.CBRank), byte(cfg.DPRank), byte(bucketBytes >> 16)})
	v := h.Sum64()
	est := sim.Estimate{
		IterationSec:      1 + float64(v%1000)/1000,
		ExposedPPSec:      float64(v%7) / 100,
		ExposedDPSec:      float64(v%11) / 100,
		ExposedEmbSec:     float64(v%5) / 100,
		PPBytesPerReplica: int64(v % 1e6),
		DPBytes:           int64(v % 2e6),
		EmbBytes:          int64(v % 3e5),
		Buckets:           []int{int(v % 4), int(v % 3)},
	}
	f.priced = append(f.priced, cfg.Name())
	return est, nil
}

func (f *fakePricer) Plan(cfg core.Config, bucketBytes int64) (*plan.Plan, error) {
	return plan.Compile(cfg, fuzzGrid(f.stages, bucketBytes))
}

func fuzzGrid(stages int, bucketBytes int64) plan.Grid {
	sizes := make([][]int64, stages)
	for s := range sizes {
		sizes[s] = []int64{4096, 4096, 0, 512}
	}
	return plan.Grid{
		Stages: stages, DPGroups: 2, MicroBatches: 4,
		BoundaryRows: 64, BoundaryCols: 32,
		StageGradBytes: sizes, BucketBytes: bucketBytes,
	}
}

func goldenSpace() Space {
	return Space{
		Stages:        2,
		CBFamilies:    []string{"powersgd", "uniform8"},
		CBRanks:       []int{4},
		DPFamilies:    []string{"powersgd"},
		DPRanks:       []int{8},
		BucketBudgets: []int64{0, 1024},
	}
}

// TestSearchTableGolden pins the full ranked table for a small space on
// the fake pricer: same space + same seed must reproduce the file
// byte-for-byte. Regenerate with UPDATE_GOLDEN=1 go test ./internal/autotune.
func TestSearchTableGolden(t *testing.T) {
	res, err := Search(&fakePricer{stages: 2}, goldenSpace(), DefaultQualityModel(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Table()
	path := filepath.Join("testdata", "golden_table.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run UPDATE_GOLDEN=1 go test ./internal/autotune to create)", err)
	}
	if got != string(want) {
		t.Fatalf("ranked table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSearchDeterministicAcrossRuns(t *testing.T) {
	run := func(seed int64, opts Options) string {
		opts.Seed = seed
		res, err := Search(&fakePricer{stages: 2}, goldenSpace(), DefaultQualityModel(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table()
	}
	if run(3, Options{}) != run(3, Options{}) {
		t.Fatal("exhaustive search not deterministic")
	}
	// Force anneal mode by shrinking the exhaustive limit.
	annealOpts := Options{ExhaustiveLimit: 1, AnnealEvals: 200}
	a, b := run(5, annealOpts), run(5, annealOpts)
	if a != b {
		t.Fatalf("anneal not deterministic for same seed:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "anneal") {
		t.Fatalf("expected anneal mode, got:\n%s", a)
	}
}

func TestSearchNeverPricesOverBudget(t *testing.T) {
	pr := &fakePricer{stages: 4}
	qm := DefaultQualityModel()
	res, err := Search(pr, DefaultSpace(4), qm, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Ranked {
		if row.LossPPL > qm.Budget+1e-12 {
			t.Fatalf("priced candidate %s above budget: %v", row.Candidate.Key(), row.LossPPL)
		}
	}
	if res.Priced != res.Admitted {
		t.Fatalf("priced %d != admitted %d (fake pricer never fails)", res.Priced, res.Admitted)
	}
	if res.Priced+res.Rejected != res.Enumerated {
		t.Fatalf("accounting off: %d priced + %d rejected != %d enumerated", res.Priced, res.Rejected, res.Enumerated)
	}
	// The hand-picked Table-2 shape must be admitted (it's the paper's
	// own quality-validated plan).
	hand := Candidate{CB: true, CBFamily: "powersgd", CBRank: 16, DPStages: 3, DPFamily: "powersgd", DPRank: 128, FuseEmbedding: true}
	if !qm.Admits(hand, 4) {
		t.Fatalf("quality model rejects the paper's hand-picked plan (loss %v)", qm.EstimateLoss(hand, 4))
	}
}

// TestSearchWinnerBeatsHandPicked runs the real frozen-sequence
// evaluator over the default space and checks the tentpole property:
// the winner's predicted cost is ≤ the hand-picked Table-2 plan's.
func TestSearchWinnerBeatsHandPicked(t *testing.T) {
	base := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := sim.NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(ev, DefaultSpace(base.Map.PP), DefaultQualityModel(), Options{Seed: 1, Top: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "exhaustive" {
		t.Fatalf("default space should enumerate exhaustively, got %s", res.Mode)
	}
	hand, err := ev.Price(core.CBFESC(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner.Estimate.IterationSec > hand.IterationSec {
		t.Fatalf("winner %s predicted %.4fs, hand-picked CBFESC %.4fs",
			res.Winner.Candidate.Key(), res.Winner.Estimate.IterationSec, hand.IterationSec)
	}
	if res.WinnerPlan == nil {
		t.Fatal("no winner plan")
	}
	if got, want := res.WinnerPlan.Config(), res.Winner.Config; got != want {
		t.Fatalf("winner plan config %+v != ranked config %+v", got, want)
	}
	if len(res.Ranked) != 10 {
		t.Fatalf("Top=10 kept %d rows", len(res.Ranked))
	}
	if res.Ranked[0].Candidate != res.Winner.Candidate {
		t.Fatal("winner not first in table")
	}
	for i := 1; i < len(res.Ranked); i++ {
		if res.Ranked[i].Estimate.IterationSec < res.Ranked[i-1].Estimate.IterationSec {
			t.Fatal("table not sorted by predicted cost")
		}
	}
}

func TestPredictExecutionClosedForms(t *testing.T) {
	cfg := core.CBFESC()
	pl, err := plan.Compile(cfg, fuzzGrid(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	probes := Probes{
		DenseBoundaryBytes: 4096,
		CBWireBytes:        768,
		DPPayloadBytes: func(stage, ch int) int64 {
			if pl.DPCompressed(stage) && ch != 2 {
				return 100
			}
			return 0
		},
		EmbTableBytes: 5000,
	}
	pred, err := PredictExecution(pl, probes)
	if err != nil {
		t.Fatal(err)
	}
	wantPP := sim.PredictInterStageFromPlan(pl, 4096, 768).Bytes * 2
	if pred.PPBytes != wantPP {
		t.Fatalf("PP bytes %d want %d", pred.PPBytes, wantPP)
	}
	wantBuckets, err := sim.PredictDPBucketBytes(pl, probes.DPPayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	var wantDP int64
	for s, row := range wantBuckets {
		for b, v := range row {
			if pred.DPBuckets[s][b] != v {
				t.Fatalf("bucket (%d,%d) %d want %d", s, b, pred.DPBuckets[s][b], v)
			}
			wantDP += v
		}
	}
	if pred.DPBytes != wantDP {
		t.Fatalf("DP bytes %d want %d", pred.DPBytes, wantDP)
	}
	// D=2, fused: 2·v·(2D−1) = 2·5000·3.
	if want := int64(2 * 5000 * 3); pred.EmbBytes != want {
		t.Fatalf("emb bytes %d want %d (strategy %s)", pred.EmbBytes, want, pl.Embedding())
	}

	// Two-phase: 4v(D−1) + 2vD = 4·5000·1 + 2·5000·2.
	cfg2 := core.CBFESC()
	cfg2.FuseEmbedding = false
	pl2, err := plan.Compile(cfg2, fuzzGrid(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	pred2, err := PredictExecution(pl2, probes)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4*5000 + 2*5000*2); pred2.EmbBytes != want {
		t.Fatalf("two-phase emb bytes %d want %d", pred2.EmbBytes, want)
	}
}

func TestFitQualityModelRecoversCoefficients(t *testing.T) {
	points := []QualityPoint{
		// CB powersgd rank 16 measured at 0.08 → base 0.08.
		{Candidate{CB: true, CBFamily: "powersgd", CBRank: 16}, 0.08},
		// Same family at rank 8 measured at 0.16 → implied base 0.08 again.
		{Candidate{CB: true, CBFamily: "powersgd", CBRank: 8}, 0.16},
		// CB + DP at full depth, ref rank: ΔPPL 0.08 (CB) + 0.12 (DP).
		{Candidate{CB: true, CBFamily: "powersgd", CBRank: 16, DPStages: 4, DPFamily: "powersgd", DPRank: 128}, 0.20},
		// A compressed run that measured better than baseline clamps to 0.
		{Candidate{CB: true, CBFamily: "uniform8"}, -0.03},
	}
	qm := FitQualityModel(points, 4)
	if got := qm.CBBase["powersgd"]; got < 0.079 || got > 0.081 {
		t.Fatalf("CB powersgd base %v want 0.08", got)
	}
	if got := qm.DPBase["powersgd"]; got < 0.119 || got > 0.121 {
		t.Fatalf("DP powersgd base %v want 0.12", got)
	}
	if got := qm.CBBase["uniform8"]; got != 0 {
		t.Fatalf("negative measurement not clamped: %v", got)
	}
	// Untouched families keep the defaults.
	if qm.CBBase["topk"] != DefaultQualityModel().CBBase["topk"] {
		t.Fatal("unmeasured family coefficient changed")
	}
}
