package autotune

import "math"

// QualityModel estimates the model-quality cost (ΔPPL versus the
// uncompressed baseline) of a candidate, so the search can reject
// quality-hostile placements before pricing them. The form is a
// deliberately simple separable model of the paper's ablation data:
//
//   - CB: a per-family base coefficient at the reference rank, scaled
//     inversely with rank for rank-responsive families (Fig. 13's
//     rank-vs-quality tradeoff: halving the rank roughly doubles the
//     damage on the point-to-point path).
//   - DP sync: a per-family base at the reference rank, scaled by the
//     compressed-stage fraction (§7: each additional compressed stage
//     adds its share of gradient error) and by sqrt(refRank/rank)
//     (the collective path tolerates rank reduction better than the
//     boundary path — Fig. 13 vs Fig. 14).
//
// Unknown families estimate +Inf, so nothing outside the measured set
// sneaks under the budget. FitQualityModel re-derives the coefficients
// from measured (candidate, ΔPPL) pairs.
type QualityModel struct {
	// Budget is the maximum admissible estimated ΔPPL.
	Budget float64
	// CBBase maps a CB family to its estimated ΔPPL at CBRefRank (for
	// rank-responsive families) on the paper's GPT-2.5B setup.
	CBBase    map[string]float64
	CBRefRank int
	// DPBase maps a DP family to its estimated ΔPPL at DPRefRank with
	// every stage compressed.
	DPBase    map[string]float64
	DPRefRank int
}

// DefaultQualityModel returns coefficients shaped by the paper's
// quality results: PowerSGD at the paper's ranks is near-lossless
// (Table 3: Optimus-CC matches or beats baseline PPL), sparse families
// damage the boundary path badly (Fig. 3's "Opt-CC (TopK)" discussion,
// §2.3), aggressive quantizers (signsgd, terngrad) cost visible PPL,
// and light quantization (uniform8) sits at the budget's edge. The
// budget 0.1 admits the paper's hand-picked plan (estimated loss
// ≈ 0.08) while rejecting the configurations Table 4 shows diverging.
func DefaultQualityModel() QualityModel {
	return QualityModel{
		Budget:    0.10,
		CBRefRank: 16,
		DPRefRank: 128,
		CBBase: map[string]float64{
			"powersgd": 0.04,
			"topk":     0.60,
			"randomk":  0.80,
			"terngrad": 0.50,
			"signsgd":  1.50,
			"uniform8": 0.10,
			"identity": 0,
		},
		DPBase: map[string]float64{
			"powersgd": 0.05,
			"terngrad": 0.90,
			"signsgd":  2.00,
			"uniform8": 0.15,
			"identity": 0,
		},
	}
}

// cbLoss estimates the CB contribution of a normalized candidate.
func (q QualityModel) cbLoss(v Candidate) float64 {
	if !v.CB {
		return 0
	}
	base, ok := q.CBBase[v.CBFamily]
	if !ok {
		return math.Inf(1)
	}
	if cbRankResponsive(v.CBFamily) && v.CBRank > 0 && q.CBRefRank > 0 {
		base *= float64(q.CBRefRank) / float64(v.CBRank)
	}
	return base
}

// dpLoss estimates the DP-sync contribution of a normalized candidate.
func (q QualityModel) dpLoss(v Candidate, stages int) float64 {
	if v.DPStages <= 0 {
		return 0
	}
	base, ok := q.DPBase[v.DPFamily]
	if !ok {
		return math.Inf(1)
	}
	if dpRankResponsive(v.DPFamily) && v.DPRank > 0 && q.DPRefRank > 0 {
		base *= math.Sqrt(float64(q.DPRefRank) / float64(v.DPRank))
	}
	return base * float64(v.DPStages) / float64(stages)
}

// EstimateLoss returns the candidate's estimated ΔPPL on a stages-deep
// pipeline (+Inf for families the model has no coefficient for).
func (q QualityModel) EstimateLoss(c Candidate, stages int) float64 {
	v := c.Normalize()
	return q.cbLoss(v) + q.dpLoss(v, stages)
}

// Admits reports whether the candidate's estimated loss fits the
// budget — the gate Search applies before pricing.
func (q QualityModel) Admits(c Candidate, stages int) bool {
	return q.EstimateLoss(c, stages) <= q.Budget+1e-12
}

// QualityPoint is one measured quality observation: a candidate that
// was actually trained and its PPL delta against the same-run baseline.
type QualityPoint struct {
	Candidate Candidate
	DeltaPPL  float64
}

// FitQualityModel re-derives the per-family coefficients from measured
// points, keeping DefaultQualityModel's values for families without
// data. The fit is separable, matching the model form: CB-only points
// fix the CB bases (implied base = ΔPPL / rank-scale, averaged);
// DP-bearing points then fix the DP bases after subtracting the fitted
// CB contribution. Negative implied bases clamp to zero — a compressed
// run measuring better than baseline is sampling noise, not negative
// damage.
func FitQualityModel(points []QualityPoint, stages int) QualityModel {
	qm := DefaultQualityModel()
	type acc struct {
		sum float64
		n   int
	}
	cb := make(map[string]*acc)
	for _, p := range points {
		v := p.Candidate.Normalize()
		if !v.CB || v.DPStages > 0 {
			continue
		}
		scale := 1.0
		if cbRankResponsive(v.CBFamily) && v.CBRank > 0 {
			scale = float64(qm.CBRefRank) / float64(v.CBRank)
		}
		a := cb[v.CBFamily]
		if a == nil {
			a = &acc{}
			cb[v.CBFamily] = a
		}
		a.sum += p.DeltaPPL / scale
		a.n++
	}
	for f, a := range cb {
		qm.CBBase[f] = math.Max(0, a.sum/float64(a.n))
	}
	dp := make(map[string]*acc)
	for _, p := range points {
		v := p.Candidate.Normalize()
		if v.DPStages <= 0 {
			continue
		}
		rem := p.DeltaPPL - qm.cbLoss(v)
		scale := float64(v.DPStages) / float64(stages)
		if dpRankResponsive(v.DPFamily) && v.DPRank > 0 {
			scale *= math.Sqrt(float64(qm.DPRefRank) / float64(v.DPRank))
		}
		if scale <= 0 {
			continue
		}
		a := dp[v.DPFamily]
		if a == nil {
			a = &acc{}
			dp[v.DPFamily] = a
		}
		a.sum += rem / scale
		a.n++
	}
	for f, a := range dp {
		qm.DPBase[f] = math.Max(0, a.sum/float64(a.n))
	}
	return qm
}
