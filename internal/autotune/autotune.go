// Package autotune searches the Optimus-CC placement space with the
// simulator as its oracle. The paper hand-picks which techniques run
// where — CB on the inter-stage backward sends, PowerSGD rank 16,
// selective stage compression on the earliest 75% of stages at rank
// 128, fused embedding sync — and Table 2 shows that choice working.
// This package treats the choice as a search problem: a Candidate
// encodes one point of the space (CB on/off + family + rank, DP-sync
// depth + family + rank, §6 embedding strategy, bucket budget), a
// Space enumerates the registry-backed menus, a QualityModel derived
// from the ablation data rejects candidates whose estimated quality
// loss exceeds the budget before any pricing happens, and Search prices
// the survivors on a frozen-sequence sim.Evaluator — exhaustively for
// small spaces, by seeded simulated annealing for large ones — and
// returns the best compiled plan.Plan plus a ranked candidate table.
//
// Two invariants the rest of the repo relies on:
//
//   - Determinism: the same space, quality model, and seed produce the
//     same ranked table, bit for bit (golden-tested). Enumeration order
//     is structural, the annealer's randomness comes from one seeded
//     source, and ties break on (cost, total buckets, candidate key).
//   - Never price an invalid plan: every candidate passes Validate (and
//     the quality budget) before pricing, and pricing itself goes
//     through plan.Compile — a candidate the plan compiler rejects is
//     counted and skipped, never panicked on (fuzz-tested).
//
// Closing the loop, PredictExecution prices the winner's executed-run
// wire volumes at trainer scale from the same compiled plan, and the
// executor crosschecks pin executed == predicted at tolerance zero.
package autotune

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
)

// Candidate is one point of the placement space, in canonical form
// (Normalize collapses equivalent encodings so Key is a identity).
//
// Lazy error propagation and epilogue-only compression are pinned on
// for every CB candidate: Table 4 shows training diverging without
// them, so the search never proposes the alternatives.
type Candidate struct {
	// CB turns on compressed backpropagation (§5) with the given
	// registry family; CBRank parameterizes rank-responsive families
	// (rank-based directly, sparse ones through the byte-matched budget)
	// and is 0 for quantizers.
	CB       bool
	CBFamily string
	CBRank   int

	// DPStages is the number of earliest pipeline stages whose DP-sync
	// gradients are compressed (§7's prefix rule); 0 keeps every stage
	// dense. DPFamily/DPRank parameterize the compressor.
	DPStages int
	DPFamily string
	DPRank   int

	// FuseEmbedding selects the §6 fused embedding sync (Eq. 16) over
	// the baseline two-phase form (Eq. 15).
	FuseEmbedding bool

	// BucketBytes is the DP-sync bucket budget (0 = the plan default).
	// The analytic cost model prices DP sync from total volume, so the
	// budget is cost-neutral at pricing time; the search tie-breaks
	// toward the coarsest schedule (fewest buckets).
	BucketBytes int64
}

// cbRankResponsive reports whether CBRank changes the family's payload:
// rank-based families directly, sparse families through the
// rank·(n+m)-element byte-matched budget. Quantizers ignore it.
func cbRankResponsive(family string) bool {
	switch family {
	case "", "lowrank", "powersgd", "topk", "randomk":
		return true
	}
	return false
}

// dpRankResponsive reports whether DPRank changes the family's payload
// (only the rank-based families; plan.Compile rejects sparse DP).
func dpRankResponsive(family string) bool {
	switch family {
	case "", "lowrank", "powersgd":
		return true
	}
	return false
}

// sparseFamily mirrors plan's rule: these families need a per-tensor
// kept fraction and are invalid for DP sync.
func sparseFamily(family string) bool { return family == "topk" || family == "randomk" }

// Normalize collapses equivalent encodings into the canonical form:
// technique-off candidates drop their family/rank fields, historical
// family aliases map to registry names, and rank-free families drop
// their rank. Key, Config, and the search all operate on the
// normalized form.
func (c Candidate) Normalize() Candidate {
	if !c.CB {
		c.CBFamily, c.CBRank = "", 0
	} else {
		if c.CBFamily == "" || c.CBFamily == "lowrank" {
			c.CBFamily = "powersgd"
		}
		if !cbRankResponsive(c.CBFamily) {
			c.CBRank = 0
		}
	}
	if c.DPStages <= 0 {
		c.DPStages, c.DPFamily, c.DPRank = 0, "", 0
	} else {
		if c.DPFamily == "" || c.DPFamily == "lowrank" {
			c.DPFamily = "powersgd"
		}
		if !dpRankResponsive(c.DPFamily) {
			c.DPRank = 0
		}
	}
	return c
}

// Validate reports whether the candidate describes a compilable plan on
// a stages-deep pipeline. Search calls it (after Normalize) before any
// pricing — a candidate that fails here is rejected, never priced.
func (c Candidate) Validate(stages int) error {
	v := c.Normalize()
	if stages < 1 {
		return fmt.Errorf("autotune: stages %d < 1", stages)
	}
	if v.CB {
		if !compress.Registered(v.CBFamily) {
			return fmt.Errorf("autotune: CB family %q not registered", v.CBFamily)
		}
		if cbRankResponsive(v.CBFamily) && v.CBRank < 1 {
			return fmt.Errorf("autotune: CB family %q needs rank ≥ 1, got %d", v.CBFamily, v.CBRank)
		}
	}
	if v.DPStages < 0 || v.DPStages > stages {
		return fmt.Errorf("autotune: DPStages %d outside [0,%d]", v.DPStages, stages)
	}
	if v.DPStages > 0 {
		if !compress.Registered(v.DPFamily) {
			return fmt.Errorf("autotune: DP family %q not registered", v.DPFamily)
		}
		if sparseFamily(v.DPFamily) {
			return fmt.Errorf("autotune: DP family %q needs a per-tensor kept fraction (invalid for DP sync)", v.DPFamily)
		}
		if dpRankResponsive(v.DPFamily) && v.DPRank < 1 {
			return fmt.Errorf("autotune: DP family %q needs rank ≥ 1, got %d", v.DPFamily, v.DPRank)
		}
	}
	if v.BucketBytes < 0 {
		return fmt.Errorf("autotune: negative bucket budget %d", v.BucketBytes)
	}
	return nil
}

// Config lowers the candidate onto a core.Config for a stages-deep
// pipeline. DPStages maps to the §7 prefix fraction (k/stages rounds
// back to exactly k compressed stages); LEP and epilogue-only are
// pinned on for CB candidates.
func (c Candidate) Config(stages int, seed int64) core.Config {
	v := c.Normalize()
	cfg := core.Config{Seed: seed, FuseEmbedding: v.FuseEmbedding}
	if v.CB {
		cfg.CompressBackprop = true
		cfg.CBAlg = core.CBAlgorithm(v.CBFamily)
		cfg.CBRank = v.CBRank
		cfg.LazyErrorPropagation = true
		cfg.EpilogueOnly = true
	}
	if v.DPStages > 0 {
		cfg.SelectiveStageFraction = float64(v.DPStages) / float64(stages)
		cfg.DPAlg = v.DPFamily
		cfg.DPRank = v.DPRank
	}
	return cfg
}

// Key renders the canonical candidate identity — the dedup key and the
// final deterministic tie-break of the ranked table.
func (c Candidate) Key() string {
	v := c.Normalize()
	var b strings.Builder
	if v.CB {
		fmt.Fprintf(&b, "cb=%s", v.CBFamily)
		if v.CBRank > 0 {
			fmt.Fprintf(&b, ":%d", v.CBRank)
		}
	} else {
		b.WriteString("cb=off")
	}
	if v.DPStages > 0 {
		fmt.Fprintf(&b, " dp=%d:%s", v.DPStages, v.DPFamily)
		if v.DPRank > 0 {
			fmt.Fprintf(&b, ":%d", v.DPRank)
		}
	} else {
		b.WriteString(" dp=off")
	}
	if v.FuseEmbedding {
		b.WriteString(" emb=fused")
	} else {
		b.WriteString(" emb=base")
	}
	fmt.Fprintf(&b, " bkt=%d", v.BucketBytes)
	return b.String()
}

// Space is the candidate menu the search draws from: registry family
// names and the rank/bucket grids. Stages must match the pricing
// scenario's pipeline depth.
type Space struct {
	Stages int
	// CBFamilies are the compressed-backprop families to try (CB-off is
	// always in the space); rank-responsive families sweep CBRanks.
	CBFamilies []string
	CBRanks    []int
	// DPFamilies are the DP-sync families (dense is always in the
	// space), swept over every prefix depth 1..Stages; rank-based
	// families additionally sweep DPRanks.
	DPFamilies []string
	DPRanks    []int
	// BucketBudgets are the DP-sync bucket budgets to try (0 = default).
	BucketBudgets []int64
}

// DefaultSpace returns the search space the CLIs use: every paper
// family that the registry backs, the paper's rank neighborhoods, and
// a coarse bucket-budget sweep.
func DefaultSpace(stages int) Space {
	return Space{
		Stages:        stages,
		CBFamilies:    []string{"powersgd", "topk", "terngrad", "uniform8"},
		CBRanks:       []int{4, 16, 64},
		DPFamilies:    []string{"powersgd", "terngrad", "uniform8"},
		DPRanks:       []int{32, 128, 512},
		BucketBudgets: []int64{0, 4 << 20, 64 << 20},
	}
}

// cbChoices returns the CB-dimension menu (index 0 = off).
func (sp Space) cbChoices() []Candidate {
	out := []Candidate{{}}
	for _, f := range sp.CBFamilies {
		if cbRankResponsive(f) {
			for _, r := range sp.CBRanks {
				out = append(out, Candidate{CB: true, CBFamily: f, CBRank: r})
			}
		} else {
			out = append(out, Candidate{CB: true, CBFamily: f})
		}
	}
	return out
}

// dpChoices returns the DP-dimension menu (index 0 = dense).
func (sp Space) dpChoices() []Candidate {
	out := []Candidate{{}}
	for k := 1; k <= sp.Stages; k++ {
		for _, f := range sp.DPFamilies {
			if dpRankResponsive(f) {
				for _, r := range sp.DPRanks {
					out = append(out, Candidate{DPStages: k, DPFamily: f, DPRank: r})
				}
			} else {
				out = append(out, Candidate{DPStages: k, DPFamily: f})
			}
		}
	}
	return out
}

// buckets returns the bucket-budget menu (never empty).
func (sp Space) buckets() []int64 {
	if len(sp.BucketBudgets) == 0 {
		return []int64{0}
	}
	return sp.BucketBudgets
}

// Enumerate lists the whole space in deterministic structural order
// (CB menu × DP menu × embedding × bucket budget), deduplicated by
// canonical key.
func (sp Space) Enumerate() []Candidate {
	var out []Candidate
	seen := make(map[string]bool)
	for _, cb := range sp.cbChoices() {
		for _, dp := range sp.dpChoices() {
			for _, fused := range []bool{false, true} {
				for _, bkt := range sp.buckets() {
					c := Candidate{
						CB: cb.CB, CBFamily: cb.CBFamily, CBRank: cb.CBRank,
						DPStages: dp.DPStages, DPFamily: dp.DPFamily, DPRank: dp.DPRank,
						FuseEmbedding: fused,
						BucketBytes:   bkt,
					}.Normalize()
					if k := c.Key(); !seen[k] {
						seen[k] = true
						out = append(out, c)
					}
				}
			}
		}
	}
	return out
}

// Mutate re-draws one dimension of the candidate from the space's
// menus — the annealer's proposal kernel. Every output is a normalized
// member of the space, so a valid candidate can only mutate into a
// candidate that compiles or is rejected by the quality budget, never
// into one that panics the plan compiler (fuzz-tested).
func (c Candidate) Mutate(rng *rand.Rand, sp Space) Candidate {
	v := c.Normalize()
	switch rng.Intn(4) {
	case 0:
		cb := sp.cbChoices()
		pick := cb[rng.Intn(len(cb))]
		v.CB, v.CBFamily, v.CBRank = pick.CB, pick.CBFamily, pick.CBRank
	case 1:
		dp := sp.dpChoices()
		pick := dp[rng.Intn(len(dp))]
		v.DPStages, v.DPFamily, v.DPRank = pick.DPStages, pick.DPFamily, pick.DPRank
	case 2:
		v.FuseEmbedding = !v.FuseEmbedding
	case 3:
		bkt := sp.buckets()
		v.BucketBytes = bkt[rng.Intn(len(bkt))]
	}
	return v.Normalize()
}
