package autotune

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
)

// fuzzFamilies includes valid registry names, aliases, the sparse
// families (invalid for DP), and garbage.
var fuzzFamilies = []string{
	"", "lowrank", "powersgd", "topk", "randomk",
	"terngrad", "signsgd", "uniform8", "identity", "bogus", "POWERSGD",
}

// FuzzCandidateMutation drives the encoder/mutator contract the search
// relies on: an arbitrary candidate either fails Validate (rejected
// before pricing) or lowers to a core.Config that plan.Compile accepts;
// and every Mutate of a valid candidate stays valid and compilable.
// Nothing in the pipeline may panic.
func FuzzCandidateMutation(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0), int16(16), uint8(2), int16(128), uint8(2), int64(0), false)
	f.Add(int64(9), uint8(10), uint8(3), int16(-4), uint8(4), int16(0), uint8(9), int64(-100), true)
	f.Add(int64(42), uint8(0), uint8(9), int16(32767), uint8(10), int16(1), uint8(200), int64(1<<40), false)
	f.Fuzz(func(t *testing.T, seed int64, steps, cbFam uint8, cbRank int16, dpFam uint8, dpRank int16, dpStages uint8, bucket int64, fuse bool) {
		stages := 1 + int(seed&3)
		c := Candidate{
			CB:       cbFam%2 == 0,
			CBFamily: fuzzFamilies[int(cbFam)%len(fuzzFamilies)],
			CBRank:   int(cbRank),
			DPStages: int(dpStages) - 8, // exercise negatives and > stages
			DPFamily: fuzzFamilies[int(dpFam)%len(fuzzFamilies)],
			DPRank:   int(dpRank),

			FuseEmbedding: fuse,
			BucketBytes:   bucket,
		}
		grid := fuzzGrid(stages, 0)
		check := func(c Candidate) bool {
			// Normalize/Key/Validate must never panic, whatever the input.
			c = c.Normalize()
			_ = c.Key()
			if c.Validate(stages) != nil {
				return false // rejected before pricing — the allowed outcome
			}
			cfg := c.Config(stages, 1)
			g := grid
			if c.BucketBytes > 0 {
				g.BucketBytes = c.BucketBytes
			}
			if _, err := plan.Compile(cfg, g); err != nil {
				t.Fatalf("candidate %s passed Validate but failed Compile: %v", c.Key(), err)
			}
			return true
		}
		check(c)

		// Mutations of a valid candidate must stay compilable-or-rejected;
		// mutations drawn from the space must in fact always validate.
		sp := DefaultSpace(stages)
		rng := rand.New(rand.NewSource(seed))
		m := Candidate{} // dense: always valid
		for i := 0; i < int(steps%16); i++ {
			m = m.Mutate(rng, sp)
			if !check(m) {
				t.Fatalf("mutation %s drawn from the space failed Validate", m.Key())
			}
		}
	})
}
