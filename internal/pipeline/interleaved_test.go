package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterleavedValidates(t *testing.T) {
	for _, tc := range []struct{ p, m, v int }{
		{4, 16, 2}, {4, 8, 1}, {2, 4, 3}, {8, 16, 2}, {1, 4, 2},
	} {
		s, err := Interleaved(tc.p, tc.m, tc.v)
		if err != nil {
			t.Fatalf("p=%d m=%d v=%d: %v", tc.p, tc.m, tc.v, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("p=%d m=%d v=%d: %v", tc.p, tc.m, tc.v, err)
		}
	}
}

func TestInterleavedErrors(t *testing.T) {
	if _, err := Interleaved(0, 4, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Interleaved(4, 6, 2); err == nil {
		t.Fatal("m not divisible by p accepted")
	}
}

func TestInterleavedOpCounts(t *testing.T) {
	s, _ := Interleaved(4, 16, 2)
	for d := 0; d < 4; d++ {
		if got := len(s.PerDevice[d]); got != 2*16*2 {
			t.Fatalf("device %d has %d ops, want %d", d, got, 2*16*2)
		}
	}
	if s.VirtualStages() != 8 {
		t.Fatalf("virtual stages %d", s.VirtualStages())
	}
	if s.StageOf(1, 1) != 5 {
		t.Fatalf("StageOf(1,1)=%d want 5", s.StageOf(1, 1))
	}
}

func TestInterleavedPeakInFlightBelowGPipe(t *testing.T) {
	// Interleaving holds more activations than plain 1F1B but far fewer
	// than all m·v.
	s, _ := Interleaved(4, 16, 2)
	for d := 0; d < 4; d++ {
		peak := s.PeakInFlight(d)
		if peak <= 0 || peak >= 32 {
			t.Fatalf("device %d peak %d outside (0, 32)", d, peak)
		}
	}
	// Earlier devices warm up deeper.
	if s.PeakInFlight(0) < s.PeakInFlight(3) {
		t.Fatal("device 0 should stash at least as much as device 3")
	}
}

func TestBubbleFractions(t *testing.T) {
	// p=4, m=16: 1F1B bubble 3/19; interleaved v=2 bubble 3/35.
	if got := BubbleFraction1F1B(4, 16); math.Abs(got-3.0/19.0) > 1e-12 {
		t.Fatalf("1F1B bubble %v", got)
	}
	if got := BubbleFractionInterleaved(4, 16, 2); math.Abs(got-3.0/35.0) > 1e-12 {
		t.Fatalf("interleaved bubble %v", got)
	}
	if BubbleFraction1F1B(1, 16) != 0 {
		t.Fatal("single stage has no bubble")
	}
}

// Property: interleaving never increases the bubble fraction, and more
// chunks monotonically shrink it.
func TestInterleavingShrinksBubbleProperty(t *testing.T) {
	f := func(p8, g8, v8 uint8) bool {
		p := int(p8%7) + 2
		m := p * (int(g8%4) + 1)
		v := int(v8%4) + 1
		b1 := BubbleFraction1F1B(p, m)
		bv := BubbleFractionInterleaved(p, m, v)
		if bv > b1+1e-12 {
			return false
		}
		return BubbleFractionInterleaved(p, m, v+1) <= bv+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated interleaved schedule validates.
func TestInterleavedValidProperty(t *testing.T) {
	f := func(p8, g8, v8 uint8) bool {
		p := int(p8%6) + 1
		m := p * (int(g8%3) + 1)
		v := int(v8%3) + 1
		s, err := Interleaved(p, m, v)
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestActivationMemoryRatio(t *testing.T) {
	// Stage 0 of a 4-stage, 16-micro 1F1B stashes 4/16 of GPipe's.
	if got := ActivationMemoryRatio1F1B(4, 16, 0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ratio %v", got)
	}
	// Last stage stashes only 1/16.
	if got := ActivationMemoryRatio1F1B(4, 16, 3); math.Abs(got-1.0/16) > 1e-12 {
		t.Fatalf("ratio %v", got)
	}
}

func TestCommVolumePerIteration(t *testing.T) {
	if got := CommVolumePerIteration(4, 16, 1); got != 2*3*16 {
		t.Fatalf("plain volume %d", got)
	}
	if got := CommVolumePerIteration(4, 16, 2); got != 2*7*16 {
		t.Fatalf("interleaved volume %d", got)
	}
	// Interleaving trades more p2p messages for less bubble — the tension
	// the paper's CB exploits.
	if CommVolumePerIteration(4, 16, 2) <= CommVolumePerIteration(4, 16, 1) {
		t.Fatal("interleaving should add transfers")
	}
}
