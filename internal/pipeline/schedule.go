// Package pipeline generates pipeline-parallel execution schedules. The
// reproduction implements the 1F1B schedule of PipeDream/Megatron-LM that
// the paper's Fig. 4 depicts, plus the GPipe all-forward/all-backward
// schedule as a comparison point, and classifies every operation into
// warmup / steady / epilogue phases — the classification epilogue-only
// compression (§5.2) is built on.
package pipeline

import "fmt"

// OpKind distinguishes forward from backward compute.
type OpKind int

// Op kinds.
const (
	Forward OpKind = iota
	Backward
)

func (k OpKind) String() string {
	if k == Forward {
		return "F"
	}
	return "B"
}

// Phase classifies an op's position in the 1F1B schedule.
type Phase int

// Phases of the 1F1B schedule.
const (
	Warmup Phase = iota
	Steady
	Epilogue
)

func (p Phase) String() string {
	switch p {
	case Warmup:
		return "warmup"
	case Steady:
		return "steady"
	default:
		return "epilogue"
	}
}

// Op is one compute operation on one pipeline stage.
type Op struct {
	Kind  OpKind
	Stage int
	Micro int // micro-batch index, 0-based
	Phase Phase
}

func (o Op) String() string {
	return fmt.Sprintf("%s(s%d,m%d,%s)", o.Kind, o.Stage, o.Micro, o.Phase)
}

// Schedule is a per-stage ordered list of compute ops.
type Schedule struct {
	Stages      int
	MicroBatch  int
	PerStage    [][]Op
	Interleaved bool
}

// OneFOneB builds the non-interleaved 1F1B schedule for p stages and m
// micro-batches (Narayanan et al., SOSP'19; Fig. 4a of the paper).
//
// Stage s performs w = min(p−s−1, m) warmup forwards, then alternates
// one-forward-one-backward, then drains the remaining backwards (the
// epilogue).
func OneFOneB(p, m int) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("pipeline: stages %d < 1", p)
	}
	if m < 1 {
		return nil, fmt.Errorf("pipeline: micro-batches %d < 1", m)
	}
	s := &Schedule{Stages: p, MicroBatch: m, PerStage: make([][]Op, p)}
	for st := 0; st < p; st++ {
		w := p - st - 1
		if w > m {
			w = m
		}
		var ops []Op
		for i := 0; i < w; i++ {
			ops = append(ops, Op{Kind: Forward, Stage: st, Micro: i, Phase: Warmup})
		}
		// Steady: forward w+i paired with backward i.
		for i := 0; w+i < m; i++ {
			ops = append(ops, Op{Kind: Forward, Stage: st, Micro: w + i, Phase: Steady})
			ops = append(ops, Op{Kind: Backward, Stage: st, Micro: i, Phase: Steady})
		}
		// Epilogue: drain the remaining w backwards.
		for i := m - w; i < m; i++ {
			ops = append(ops, Op{Kind: Backward, Stage: st, Micro: i, Phase: Epilogue})
		}
		s.PerStage[st] = ops
	}
	return s, nil
}

// GPipe builds the all-forward-then-all-backward schedule (Huang et al.,
// NeurIPS'19), used as a peak-memory/bubble comparison baseline.
func GPipe(p, m int) (*Schedule, error) {
	if p < 1 || m < 1 {
		return nil, fmt.Errorf("pipeline: invalid GPipe config p=%d m=%d", p, m)
	}
	s := &Schedule{Stages: p, MicroBatch: m, PerStage: make([][]Op, p)}
	for st := 0; st < p; st++ {
		var ops []Op
		for i := 0; i < m; i++ {
			ops = append(ops, Op{Kind: Forward, Stage: st, Micro: i, Phase: Warmup})
		}
		for i := 0; i < m; i++ {
			ph := Steady
			if i >= m-(p-st-1) {
				ph = Epilogue
			}
			ops = append(ops, Op{Kind: Backward, Stage: st, Micro: i, Phase: ph})
		}
		s.PerStage[st] = ops
	}
	return s, nil
}

// IsEpilogueBackward reports whether the backward of micro-batch micro on
// stage implies an inter-stage send that cannot overlap with later compute
// on the sending device — the §5.2 epilogue-only compression target. With
// 1F1B this is exactly the drain phase: micro ≥ m − (p−stage−1).
func (s *Schedule) IsEpilogueBackward(stage, micro int) bool {
	w := s.Stages - stage - 1
	if w > s.MicroBatch {
		w = s.MicroBatch
	}
	return micro >= s.MicroBatch-w
}

// EpilogueBackwardCount returns how many backward sends from stage are in
// the epilogue.
func (s *Schedule) EpilogueBackwardCount(stage int) int {
	n := 0
	for m := 0; m < s.MicroBatch; m++ {
		if s.IsEpilogueBackward(stage, m) {
			n++
		}
	}
	return n
}

// MaxLinkBacklog returns an upper bound on the number of in-flight
// messages any directed inter-stage link can accumulate while the
// schedule executes: a boundary carries exactly one message per
// micro-batch per direction, so a transport queue of this depth never
// blocks a rank that runs ahead of its neighbour — the sizing the 1F1B
// executor uses to make the pipeline trivially deadlock-free.
func (s *Schedule) MaxLinkBacklog() int { return s.MicroBatch }

// PeakInFlight returns the maximum number of micro-batches whose forward
// has run but whose backward has not, for the given stage — the activation
// memory high-water mark (1F1B's advantage over GPipe).
func (s *Schedule) PeakInFlight(stage int) int {
	cur, peak := 0, 0
	for _, op := range s.PerStage[stage] {
		if op.Kind == Forward {
			cur++
			if cur > peak {
				peak = cur
			}
		} else {
			cur--
		}
	}
	return peak
}

// Validate checks schedule invariants: every micro-batch appears exactly
// once as forward and once as backward per stage, a backward never
// precedes its forward, and backwards happen in micro-batch order.
func (s *Schedule) Validate() error {
	for st, ops := range s.PerStage {
		fSeen := make([]bool, s.MicroBatch)
		bSeen := make([]bool, s.MicroBatch)
		lastB := -1
		for _, op := range ops {
			if op.Stage != st {
				return fmt.Errorf("pipeline: op %v filed under stage %d", op, st)
			}
			if op.Micro < 0 || op.Micro >= s.MicroBatch {
				return fmt.Errorf("pipeline: op %v micro out of range", op)
			}
			switch op.Kind {
			case Forward:
				if fSeen[op.Micro] {
					return fmt.Errorf("pipeline: duplicate %v", op)
				}
				fSeen[op.Micro] = true
			case Backward:
				if bSeen[op.Micro] {
					return fmt.Errorf("pipeline: duplicate %v", op)
				}
				if !fSeen[op.Micro] {
					return fmt.Errorf("pipeline: %v before its forward", op)
				}
				if op.Micro != lastB+1 {
					return fmt.Errorf("pipeline: backward order broken at %v", op)
				}
				bSeen[op.Micro] = true
				lastB = op.Micro
			}
		}
		for i := 0; i < s.MicroBatch; i++ {
			if !fSeen[i] || !bSeen[i] {
				return fmt.Errorf("pipeline: stage %d missing ops for micro %d", st, i)
			}
		}
	}
	return nil
}
