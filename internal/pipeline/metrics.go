package pipeline

// Analytic schedule metrics. These are the standard bubble-fraction
// formulas the pipeline-parallelism literature (GPipe, PipeDream,
// Megatron-LM) uses to compare schedules; the reproduction's ablation
// experiments report them next to the simulated timings.

// BubbleFraction1F1B returns the ideal pipeline-bubble fraction of the
// non-interleaved 1F1B schedule with p stages and m micro-batches:
// (p−1)/(m+p−1). The same expression governs GPipe; 1F1B's advantage is
// memory, not bubble (§2.1).
func BubbleFraction1F1B(p, m int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) / float64(m+p-1)
}

// BubbleFractionInterleaved returns the bubble fraction of the
// interleaved schedule with v chunks per device: (p−1)/(v·m+p−1) — the
// warmup/drain shrink by the chunk factor (Narayanan et al., SC'21),
// which is why the paper's implementation enables interleaving (§8).
func BubbleFractionInterleaved(p, m, v int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) / float64(v*m+p-1)
}

// ActivationMemoryRatio1F1B returns 1F1B's peak activation memory as a
// fraction of GPipe's on stage s: 1F1B stashes min(p−s, m) micro-batches
// while GPipe stashes all m.
func ActivationMemoryRatio1F1B(p, m, s int) float64 {
	inFlight := p - s
	if inFlight > m {
		inFlight = m
	}
	return float64(inFlight) / float64(m)
}

// CommVolumePerIteration returns the number of inter-stage point-to-point
// transfers (each direction counted once) per iteration: 2·(p−1)·m for a
// plain schedule and 2·(p·v−1)·m for an interleaved one where chunk
// boundaries also cross devices.
func CommVolumePerIteration(p, m, v int) int {
	if v < 1 {
		v = 1
	}
	return 2 * (p*v - 1) * m
}
