package pipeline

import (
	"testing"
	"testing/quick"
)

func TestOneFOneBValidates(t *testing.T) {
	for _, tc := range []struct{ p, m int }{{1, 1}, {4, 8}, {4, 2}, {8, 8}, {2, 16}, {16, 16}} {
		s, err := OneFOneB(tc.p, tc.m)
		if err != nil {
			t.Fatalf("p=%d m=%d: %v", tc.p, tc.m, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("p=%d m=%d: %v", tc.p, tc.m, err)
		}
	}
}

func TestOneFOneBErrors(t *testing.T) {
	if _, err := OneFOneB(0, 4); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := OneFOneB(4, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestOneFOneBMatchesPaperFigure4(t *testing.T) {
	// 4 stages, 8 micro-batches — the exact configuration of Fig. 4a.
	s, err := OneFOneB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Device 1 (stage 0): 3 warmup forwards, then 1F1B, then 3-deep
	// epilogue of backwards.
	ops := s.PerStage[0]
	for i := 0; i < 3; i++ {
		if ops[i].Kind != Forward || ops[i].Micro != i || ops[i].Phase != Warmup {
			t.Fatalf("stage0 op %d = %v", i, ops[i])
		}
	}
	if ops[3].Kind != Forward || ops[3].Micro != 3 || ops[4].Kind != Backward || ops[4].Micro != 0 {
		t.Fatalf("steady start wrong: %v %v", ops[3], ops[4])
	}
	last := ops[len(ops)-1]
	if last.Kind != Backward || last.Micro != 7 || last.Phase != Epilogue {
		t.Fatalf("last op %v", last)
	}
	// Last stage (3): no warmup, strict 1F1B throughout, no epilogue.
	for _, op := range s.PerStage[3] {
		if op.Phase == Warmup || op.Phase == Epilogue {
			t.Fatalf("last stage has non-steady op %v", op)
		}
	}
}

func TestEpilogueCountsMatchFig6(t *testing.T) {
	// With p=4, m=8: stages 0..3 have 3,2,1,0 epilogue backwards — the
	// shaded region of Fig. 6a.
	s, _ := OneFOneB(4, 8)
	want := []int{3, 2, 1, 0}
	for st, w := range want {
		if got := s.EpilogueBackwardCount(st); got != w {
			t.Fatalf("stage %d epilogue count %d want %d", st, got, w)
		}
	}
}

func TestIsEpilogueBackwardBoundary(t *testing.T) {
	s, _ := OneFOneB(4, 8)
	if s.IsEpilogueBackward(0, 4) {
		t.Fatal("micro 4 on stage 0 is steady")
	}
	if !s.IsEpilogueBackward(0, 5) {
		t.Fatal("micro 5 on stage 0 is epilogue")
	}
	if s.IsEpilogueBackward(3, 7) {
		t.Fatal("last stage has no epilogue")
	}
}

func TestPeakInFlight(t *testing.T) {
	// 1F1B bounds in-flight activations by the warmup depth + 1.
	s, _ := OneFOneB(4, 8)
	want := []int{4, 3, 2, 1}
	for st, w := range want {
		if got := s.PeakInFlight(st); got != w {
			t.Fatalf("stage %d peak in-flight %d want %d", st, got, w)
		}
	}
}

func TestGPipePeakInFlightIsM(t *testing.T) {
	g, err := GPipe(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 4; st++ {
		if got := g.PeakInFlight(st); got != 8 {
			t.Fatalf("GPipe stage %d peak %d want 8 (all micro-batches)", st, got)
		}
	}
}

func TestGPipeErrors(t *testing.T) {
	if _, err := GPipe(0, 1); err == nil {
		t.Fatal("invalid GPipe accepted")
	}
}

func TestSingleStageDegenerates(t *testing.T) {
	s, _ := OneFOneB(1, 4)
	ops := s.PerStage[0]
	// Strict F,B,F,B...: no pipeline at all.
	for i, op := range ops {
		wantKind := Forward
		if i%2 == 1 {
			wantKind = Backward
		}
		if op.Kind != wantKind {
			t.Fatalf("op %d = %v", i, op)
		}
	}
	if s.EpilogueBackwardCount(0) != 0 {
		t.Fatal("single stage has no epilogue")
	}
}

func TestMoreStagesThanMicroBatches(t *testing.T) {
	// p=8, m=2: warmup clamps to m; schedule must still validate.
	s, err := OneFOneB(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.EpilogueBackwardCount(0); got != 2 {
		t.Fatalf("all backwards should be epilogue on stage 0, got %d", got)
	}
}

// Property: for any valid (p, m), the 1F1B schedule validates and the
// total op count is exactly 2m per stage.
func TestOneFOneBProperty(t *testing.T) {
	f := func(p8, m8 uint8) bool {
		p := int(p8%12) + 1
		m := int(m8%20) + 1
		s, err := OneFOneB(p, m)
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		for _, ops := range s.PerStage {
			if len(ops) != 2*m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: epilogue count is min(p−s−1, m) for every stage.
func TestEpilogueCountProperty(t *testing.T) {
	f := func(p8, m8 uint8) bool {
		p := int(p8%12) + 1
		m := int(m8%20) + 1
		s, err := OneFOneB(p, m)
		if err != nil {
			return false
		}
		for st := 0; st < p; st++ {
			want := p - st - 1
			if want > m {
				want = m
			}
			if s.EpilogueBackwardCount(st) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpAndPhaseStrings(t *testing.T) {
	op := Op{Kind: Forward, Stage: 1, Micro: 2, Phase: Steady}
	if op.String() != "F(s1,m2,steady)" {
		t.Fatalf("String() = %q", op.String())
	}
	if Warmup.String() != "warmup" || Epilogue.String() != "epilogue" {
		t.Fatal("phase strings wrong")
	}
	if Backward.String() != "B" {
		t.Fatal("kind string wrong")
	}
}
