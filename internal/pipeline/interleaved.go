package pipeline

import "fmt"

// Interleaved 1F1B scheduling (Narayanan et al., SC'21), the variant
// Megatron-LM and the paper's implementation use (§8). Each device hosts
// `chunks` non-contiguous model chunks ("virtual stages"); the pipeline
// depth becomes devices×chunks while the per-device bubble shrinks by the
// chunk factor.

// VOp is one compute operation in an interleaved schedule: micro-batch
// Micro of chunk Chunk on a device (the chunk's global stage index is
// Chunk·devices + device).
type VOp struct {
	Kind  OpKind
	Chunk int
	Micro int
}

func (o VOp) String() string {
	return fmt.Sprintf("%s(c%d,m%d)", o.Kind, o.Chunk, o.Micro)
}

// InterleavedSchedule is a per-device ordered op list over virtual stages.
type InterleavedSchedule struct {
	Devices    int
	Chunks     int
	MicroBatch int
	PerDevice  [][]VOp
}

// VirtualStages returns devices × chunks.
func (s *InterleavedSchedule) VirtualStages() int { return s.Devices * s.Chunks }

// StageOf returns the global stage index of (device, chunk).
func (s *InterleavedSchedule) StageOf(device, chunk int) int {
	return chunk*s.Devices + device
}

// Interleaved builds the interleaved 1F1B schedule for p devices, m
// micro-batches, and v chunks per device. Micro-batches advance through
// chunk 0 of every device, then chunk 1, etc.; warmup issues forwards in
// groups of p micro-batches per chunk before the steady 1F1B phase.
//
// m must be a multiple of p (the Megatron-LM constraint for this
// schedule).
func Interleaved(p, m, v int) (*InterleavedSchedule, error) {
	if p < 1 || m < 1 || v < 1 {
		return nil, fmt.Errorf("pipeline: invalid interleaved config p=%d m=%d v=%d", p, m, v)
	}
	if m%p != 0 {
		return nil, fmt.Errorf("pipeline: interleaved schedule needs micro-batches %d divisible by devices %d", m, p)
	}
	s := &InterleavedSchedule{Devices: p, Chunks: v, MicroBatch: m, PerDevice: make([][]VOp, p)}
	total := m * v // ops of each kind per device
	for d := 0; d < p; d++ {
		// Forward/backward issue orders as (chunk, micro) sequences.
		fwdSeq := issueOrder(p, m, v)
		bwdSeq := issueOrder(p, m, v)
		warmup := (p - d - 1) * 2
		warmup += (v - 1) * p
		if warmup > total {
			warmup = total
		}
		var ops []VOp
		fi, bi := 0, 0
		for ; fi < warmup; fi++ {
			ops = append(ops, VOp{Kind: Forward, Chunk: fwdSeq[fi].chunk, Micro: fwdSeq[fi].micro})
		}
		for fi < total {
			ops = append(ops, VOp{Kind: Forward, Chunk: fwdSeq[fi].chunk, Micro: fwdSeq[fi].micro})
			fi++
			ops = append(ops, VOp{Kind: Backward, Chunk: bwdSeq[bi].chunk, Micro: bwdSeq[bi].micro})
			bi++
		}
		for bi < total {
			ops = append(ops, VOp{Kind: Backward, Chunk: bwdSeq[bi].chunk, Micro: bwdSeq[bi].micro})
			bi++
		}
		s.PerDevice[d] = ops
	}
	return s, nil
}

type cm struct{ chunk, micro int }

// issueOrder enumerates (chunk, micro) in the interleaved order: groups of
// p consecutive micro-batches sweep all chunks before the next group (the
// Megatron-LM "groups of p" rule). Backward uses the same order with
// chunks reversed conceptually; for bubble accounting the symmetric order
// suffices.
func issueOrder(p, m, v int) []cm {
	var seq []cm
	for g := 0; g < m/p; g++ {
		for c := 0; c < v; c++ {
			for i := 0; i < p; i++ {
				seq = append(seq, cm{chunk: c, micro: g*p + i})
			}
		}
	}
	return seq
}

// Validate checks that every (chunk, micro) pair appears exactly once per
// kind on every device and that each backward follows its forward.
func (s *InterleavedSchedule) Validate() error {
	for d, ops := range s.PerDevice {
		fSeen := make(map[cm]bool)
		bSeen := make(map[cm]bool)
		for _, op := range ops {
			key := cm{op.Chunk, op.Micro}
			if op.Chunk < 0 || op.Chunk >= s.Chunks || op.Micro < 0 || op.Micro >= s.MicroBatch {
				return fmt.Errorf("pipeline: device %d op %v out of range", d, op)
			}
			switch op.Kind {
			case Forward:
				if fSeen[key] {
					return fmt.Errorf("pipeline: device %d duplicate forward %v", d, op)
				}
				fSeen[key] = true
			case Backward:
				if bSeen[key] {
					return fmt.Errorf("pipeline: device %d duplicate backward %v", d, op)
				}
				if !fSeen[key] {
					return fmt.Errorf("pipeline: device %d backward %v before forward", d, op)
				}
				bSeen[key] = true
			}
		}
		if len(fSeen) != s.Chunks*s.MicroBatch || len(bSeen) != s.Chunks*s.MicroBatch {
			return fmt.Errorf("pipeline: device %d incomplete schedule (%d fwd, %d bwd)", d, len(fSeen), len(bSeen))
		}
	}
	return nil
}

// PeakInFlight returns the maximum number of forward activations held on
// the device before their backwards run.
func (s *InterleavedSchedule) PeakInFlight(device int) int {
	cur, peak := 0, 0
	for _, op := range s.PerDevice[device] {
		if op.Kind == Forward {
			cur++
			if cur > peak {
				peak = cur
			}
		} else {
			cur--
		}
	}
	return peak
}
