package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/pipeline"
)

func grid(dp, pp, m int) Grid {
	return Grid{Stages: pp, DPGroups: dp, MicroBatches: m, BoundaryRows: 32, BoundaryCols: 48}
}

// The golden grids of the acceptance criteria: dp×pp@m.
var goldenGrids = []struct {
	name string
	g    Grid
}{
	{"1x2", grid(1, 2, 4)},
	{"2x4", grid(2, 4, 4)},
	{"4x2", grid(4, 2, 4)},
	{"2x4@m=2", grid(2, 4, 2)},
}

// TestCompileGolden pins the compiled placement for the Table-2
// configurations across the golden grids: per-replica edge counts, the
// §7 compressed-stage set, and the §6 embedding strategy.
//
// The compressed-backward counts are the 1F1B epilogue sizes: stage s
// drains min(p−s−1, m) backwards, so pp=2 pipelines have no epilogue
// sends at all (CB compresses nothing there), while pp=4 compresses 3
// per replica at m=4 and 3 at m=2 (the warmup cap).
func TestCompileGolden(t *testing.T) {
	type want struct {
		fwd, dense, cmp int
		dpStages        []bool
		emb             EmbeddingStrategy
	}
	cases := []struct {
		cfg  core.Config
		want map[string]want
	}{
		{core.Baseline(), map[string]want{
			"1x2":     {4, 4, 0, []bool{false, false}, EmbTwoPhase},
			"2x4":     {12, 12, 0, []bool{false, false, false, false}, EmbTwoPhase},
			"4x2":     {4, 4, 0, []bool{false, false}, EmbTwoPhase},
			"2x4@m=2": {6, 6, 0, []bool{false, false, false, false}, EmbTwoPhase},
		}},
		{core.CB(), map[string]want{
			"1x2":     {4, 4, 0, []bool{false, false}, EmbTwoPhase},
			"2x4":     {12, 9, 3, []bool{false, false, false, false}, EmbTwoPhase},
			"4x2":     {4, 4, 0, []bool{false, false}, EmbTwoPhase},
			"2x4@m=2": {6, 3, 3, []bool{false, false, false, false}, EmbTwoPhase},
		}},
		{core.CBFE(), map[string]want{
			"1x2":     {4, 4, 0, []bool{false, false}, EmbFused},
			"2x4":     {12, 9, 3, []bool{false, false, false, false}, EmbFused},
			"4x2":     {4, 4, 0, []bool{false, false}, EmbFused},
			"2x4@m=2": {6, 3, 3, []bool{false, false, false, false}, EmbFused},
		}},
		{core.NaiveDP(), map[string]want{ // "SC" at fraction 1: every stage
			"1x2":     {4, 4, 0, []bool{true, true}, EmbTwoPhase},
			"2x4":     {12, 12, 0, []bool{true, true, true, true}, EmbTwoPhase},
			"4x2":     {4, 4, 0, []bool{true, true}, EmbTwoPhase},
			"2x4@m=2": {6, 6, 0, []bool{true, true, true, true}, EmbTwoPhase},
		}},
		{core.CBFESC(), map[string]want{ // Opt-CC: CB+FE+SC(75%)
			"1x2":     {4, 4, 0, []bool{true, true}, EmbFused},
			"2x4":     {12, 9, 3, []bool{true, true, true, false}, EmbFused},
			"4x2":     {4, 4, 0, []bool{true, true}, EmbFused},
			"2x4@m=2": {6, 3, 3, []bool{true, true, true, false}, EmbFused},
		}},
	}
	for _, c := range cases {
		for _, gg := range goldenGrids {
			w := c.want[gg.name]
			p, err := Compile(c.cfg, gg.g)
			if err != nil {
				t.Fatalf("%s %s: %v", c.cfg.Name(), gg.name, err)
			}
			fwd, dense, cmp := p.Counts()
			if fwd != w.fwd || dense != w.dense || cmp != w.cmp {
				t.Fatalf("%s %s: counts (fwd=%d dense=%d cmp=%d), want (%d, %d, %d)",
					c.cfg.Name(), gg.name, fwd, dense, cmp, w.fwd, w.dense, w.cmp)
			}
			sel := p.CompressedStages()
			if len(sel) != len(w.dpStages) {
				t.Fatalf("%s %s: %d stage actions, want %d", c.cfg.Name(), gg.name, len(sel), len(w.dpStages))
			}
			for s := range sel {
				if sel[s] != w.dpStages[s] {
					t.Fatalf("%s %s: stage %d compressed=%v, want %v", c.cfg.Name(), gg.name, s, sel[s], w.dpStages[s])
				}
			}
			if p.Embedding() != w.emb {
				t.Fatalf("%s %s: embedding %v, want %v", c.cfg.Name(), gg.name, p.Embedding(), w.emb)
			}
		}
	}
}

// TestCompileMatchesScheduleEpilogue cross-derives the compressed edge
// set from the 1F1B schedule directly — the plan must agree with the
// §5.2 classification edge by edge, and every edge action must carry
// the boundary's spec and the LEP flag.
func TestCompileMatchesScheduleEpilogue(t *testing.T) {
	cfg := core.CB()
	for _, gg := range goldenGrids {
		p := MustCompile(cfg, gg.g)
		sched, err := pipeline.OneFOneB(gg.g.Stages, gg.g.MicroBatches)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		p.EachBackwardEdge(func(e Edge, a EdgeAction) {
			seen++
			want := sched.IsEpilogueBackward(e.Stage, e.Micro)
			if a.Compress != want {
				t.Fatalf("%s edge %+v: compress=%v, schedule says %v", gg.name, e, a.Compress, want)
			}
			if a.Compress {
				if !a.LazyErrorPropagation {
					t.Fatalf("%s edge %+v: LEP not carried", gg.name, e)
				}
				wantSeed := cfg.Seed + int64(e.Group*100+e.Stage)
				if a.Spec.Name != "powersgd" || a.Spec.Rank != cfg.CBRank || a.Spec.Seed != wantSeed {
					t.Fatalf("%s edge %+v: spec %+v", gg.name, e, a.Spec)
				}
			}
		})
		if want := gg.g.DPGroups * (gg.g.Stages - 1) * gg.g.MicroBatches; seen != want {
			t.Fatalf("%s: visited %d edges, want %d", gg.name, seen, want)
		}
	}
}

// TestCompileSpecSeeds pins the per-channel seed formulas the trainer
// historically used — bit-identity of every pre-existing configuration
// depends on them.
func TestCompileSpecSeeds(t *testing.T) {
	cfg := core.CBFESC()
	cfg.Seed = 7
	p := MustCompile(cfg, grid(2, 4, 4))
	if s := p.CBSpec(1, 3); s.Seed != 7+103 {
		t.Fatalf("CBSpec(1,3) seed %d, want %d", s.Seed, 7+103)
	}
	if s := p.DPSpec(2, 1, 5); s.Seed != 7+100000+2*1000+1*100+5 {
		t.Fatalf("DPSpec(2,1,5) seed %d", s.Seed)
	}
	if s := p.DPSpec(0, 0, 0); s.Name != "powersgd" || s.Rank != cfg.DPRank {
		t.Fatalf("DP spec %+v", s)
	}
}

// TestCompileTopKFraction pins the byte-matched sparse budget: the kept
// fraction equals min(1, rank·(n+m)/(n·m)) on the boundary shape, and
// the built compressor is a real TopK.
func TestCompileTopKFraction(t *testing.T) {
	cfg := core.CB()
	cfg.CBAlg = core.CBTopK
	g := grid(1, 4, 4)
	p := MustCompile(cfg, g)
	n, m := g.BoundaryRows, g.BoundaryCols
	want := float64(cfg.CBRank*(n+m)) / float64(n*m)
	if want > 1 {
		want = 1
	}
	spec := p.CBSpec(0, 1)
	if spec.Name != "topk" || spec.Fraction != want {
		t.Fatalf("topk spec %+v, want fraction %v", spec, want)
	}
	c, err := compress.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*compress.TopK); !ok {
		t.Fatalf("built %T, want *compress.TopK", c)
	}

	// Without a boundary shape the plan still compiles (placement and
	// pricing need no fraction), but building the spec fails loudly.
	g2 := g
	g2.BoundaryRows, g2.BoundaryCols = 0, 0
	p2, err := Compile(cfg, g2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compress.Build(p2.CBSpec(0, 1)); err == nil {
		t.Fatal("building an unresolved sparse spec did not fail")
	}
}

// TestCompileRejects pins the satellite bugfix: configuration errors are
// hard at Compile time — no silent fallback families anywhere.
func TestCompileRejects(t *testing.T) {
	g := grid(2, 4, 4)
	bad := core.CB()
	bad.CBRank = 0
	if _, err := Compile(bad, g); err == nil {
		t.Fatal("CBRank=0 accepted")
	}
	bad = core.CB()
	bad.CBAlg = "huffman"
	if _, err := Compile(bad, g); err == nil {
		t.Fatal("unknown CBAlg accepted")
	}
	bad = core.CBFESC()
	bad.DPAlg = "lz77"
	if _, err := Compile(bad, g); err == nil {
		t.Fatal("unknown DPAlg accepted")
	}
	bad = core.CBFESC()
	bad.DPAlg = "topk" // shape-derived fraction: not derivable for DP sync
	if _, err := Compile(bad, g); err == nil {
		t.Fatal("sparse DPAlg accepted")
	}
	for _, g := range []Grid{
		{Stages: 0, DPGroups: 1, MicroBatches: 1},
		{Stages: 1, DPGroups: 0, MicroBatches: 1},
		{Stages: 1, DPGroups: 1, MicroBatches: 0},
		{Stages: 1, DPGroups: 1, MicroBatches: 1, BoundaryRows: 8},
		{Stages: 1, DPGroups: 1, MicroBatches: 1, BoundaryRows: -1, BoundaryCols: -1},
	} {
		if _, err := Compile(core.Baseline(), g); err == nil {
			t.Fatalf("bad grid %+v accepted", g)
		}
	}
}

// TestKnownCompressorsRegistered cross-checks core's name list (used by
// core.Config.Validate, which cannot import the registry) against the
// registry's actual registrations: every name core accepts must resolve
// — after the plan's alias normalization — to a registered factory.
func TestKnownCompressorsRegistered(t *testing.T) {
	for _, name := range core.KnownCompressors() {
		if !compress.Registered(normalizeFamily(name)) {
			t.Fatalf("core accepts %q but the registry does not know it", name)
		}
	}
}

// TestCustomFamilyEndToEnd pins the extension point: one
// compress.Register call makes a new family selectable through
// core.Config validation, plan compilation, and registry build — no
// other list to update.
func TestCustomFamilyEndToEnd(t *testing.T) {
	compress.Register("plan-test-codec", func(s compress.Spec) (compress.Compressor, error) {
		return compress.NewIdentity(), nil
	})
	cfg := core.CBFESC()
	cfg.DPAlg = "plan-test-codec"
	if err := cfg.Validate(); err != nil {
		t.Fatalf("custom family rejected by core.Validate: %v", err)
	}
	p, err := Compile(cfg, grid(2, 4, 4))
	if err != nil {
		t.Fatalf("custom family rejected by Compile: %v", err)
	}
	c, err := compress.Build(p.DPSpec(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "identity" {
		t.Fatalf("built %q", c.Name())
	}

	// A custom factory's parameter validation fires at Compile, not as a
	// lazy panic on the first compressed sync.
	compress.Register("plan-test-strict", func(s compress.Spec) (compress.Compressor, error) {
		if s.Rank < 2 {
			return nil, fmt.Errorf("plan-test-strict needs Rank ≥ 2, got %d", s.Rank)
		}
		return compress.NewIdentity(), nil
	})
	bad := core.CBFESC()
	bad.DPAlg = "plan-test-strict"
	bad.DPRank = 1
	if _, err := Compile(bad, grid(2, 4, 4)); err == nil {
		t.Fatal("invalid custom DP spec accepted at Compile")
	}
	badCB := core.CB()
	badCB.CBAlg = "plan-test-strict"
	badCB.CBRank = 1
	if _, err := Compile(badCB, grid(2, 4, 4)); err == nil {
		t.Fatal("invalid custom CB spec accepted at Compile")
	}
}

// TestTernGradSelectableAsDPAlg pins the previously unreachable
// quantizer family end to end at the plan layer: a terngrad DP spec
// compiles and builds through the registry.
func TestTernGradSelectableAsDPAlg(t *testing.T) {
	cfg := core.CBFESC()
	cfg.DPAlg = "terngrad"
	p := MustCompile(cfg, grid(2, 4, 4))
	spec := p.DPSpec(0, 0, 0)
	if spec.Name != "terngrad" {
		t.Fatalf("DP spec %+v", spec)
	}
	c, err := compress.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "terngrad" {
		t.Fatalf("built %q", c.Name())
	}
	if !strings.Contains(cfg.Name(), "[terngrad]") {
		t.Fatalf("config name %q does not surface the DP family", cfg.Name())
	}
}

// TestPlanString smoke-tests the inspectable rendering.
func TestPlanString(t *testing.T) {
	p := MustCompile(core.CBFESC(), grid(2, 4, 4))
	s := p.String()
	for _, want := range []string{"dp2×pp4", "bwd compressed", "powersgd", "fused"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
