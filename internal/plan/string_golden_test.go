// Golden test for Plan.String() on an autotuned plan. Lives in the
// external test package because autotune imports plan: the candidate
// under test is lowered exactly the way the search engine lowers its
// winner, so the rendering the ranked-table consumers diff against is
// the rendering this file pins.
package plan_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/autotune"
	"repro/internal/plan"
)

// autotunedGolden mirrors the hand-picked Table-2 shape the search
// rediscovers: CB on with powersgd rank 16, §7 DP compression on 3 of
// 4 stages at rank 128, fused §6 embedding sync, and a bucket budget
// small enough to split every stage into several buckets.
func autotunedGolden() (autotune.Candidate, plan.Grid) {
	c := autotune.Candidate{
		CB: true, CBFamily: "powersgd", CBRank: 16,
		DPStages: 3, DPFamily: "powersgd", DPRank: 128,
		FuseEmbedding: true,
		BucketBytes:   4096,
	}.Normalize()
	g := plan.Grid{
		Stages: 4, DPGroups: 2, MicroBatches: 4,
		BoundaryRows: 64, BoundaryCols: 32,
		StageGradBytes: [][]int64{
			{4096, 4096, 0, 512},
			{4096, 2048},
			{2048, 2048, 1024},
			{512},
		},
		BucketBytes: c.BucketBytes,
	}
	return c, g
}

// TestAutotunedPlanStringGolden pins the exact String() rendering of an
// autotuned plan, byte for byte. The rendering is part of the search's
// determinism contract: the dp-sync stage set prints in sorted (index)
// order and every field derives from the compiled plan alone, so the
// same candidate always diffs clean against this file.
func TestAutotunedPlanStringGolden(t *testing.T) {
	c, g := autotunedGolden()
	if err := c.Validate(g.Stages); err != nil {
		t.Fatalf("golden candidate invalid: %v", err)
	}
	cfg := c.Config(g.Stages, 1)
	pl, err := plan.Compile(cfg, g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	got := pl.String() + "\n"

	golden := filepath.Join("testdata", "autotuned_string.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("String() drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Recompiling the same candidate must render identically — String()
	// may not depend on map order or any other per-process state.
	pl2, err := plan.Compile(cfg, g)
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if pl2.String() != pl.String() {
		t.Errorf("String() not deterministic across compiles:\n%s\nvs\n%s", pl.String(), pl2.String())
	}
}

// TestValidateMatchesCompile pins the reject-before-price contract the
// autotuner's pricing loop relies on: Validate(cfg, g) == nil exactly
// when Compile(cfg, g) succeeds.
func TestValidateMatchesCompile(t *testing.T) {
	_, g := autotunedGolden()
	cases := []autotune.Candidate{
		{},
		{CB: true, CBFamily: "powersgd", CBRank: 16},
		{CB: true, CBFamily: "topk", CBRank: 4},
		{DPStages: 2, DPFamily: "uniform8"},
		{CB: true, CBFamily: "powersgd", CBRank: 16, DPStages: 4, DPFamily: "terngrad", FuseEmbedding: true},
	}
	for _, c := range cases {
		cfg := c.Normalize().Config(g.Stages, 1)
		vErr := plan.Validate(cfg, g)
		_, cErr := plan.Compile(cfg, g)
		if (vErr == nil) != (cErr == nil) {
			t.Errorf("%s: Validate err %v, Compile err %v", c.Key(), vErr, cErr)
		}
	}
	// And a config Validate must reject: a CB rank the factory refuses.
	bad := autotune.Candidate{CB: true, CBFamily: "powersgd", CBRank: 16}.Config(g.Stages, 1)
	bad.CBRank = 0
	if err := plan.Validate(bad, g); err == nil {
		t.Error("Validate accepted CBRank=0 with CompressBackprop on")
	}
	if _, err := plan.Compile(bad, g); err == nil {
		t.Error("Compile accepted CBRank=0 with CompressBackprop on")
	}
}
