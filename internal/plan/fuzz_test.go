package plan

import (
	"testing"

	"repro/internal/core"
)

// FuzzCompile asserts the acceptance criterion that Compile never
// panics: arbitrary configurations and grids either compile into a
// self-consistent plan or return an error — the constructors' panics
// (rank < 1, fraction outside (0,1]) must all be caught by validation
// before anything is built.
func FuzzCompile(f *testing.F) {
	f.Add(true, 16, "lowrank", true, true, true, 0.75, 128, "", int64(1), 4, 2, 4, 32, 48)
	f.Add(false, 0, "", false, false, false, 0.0, 0, "", int64(0), 1, 1, 1, 0, 0)
	f.Add(true, -3, "huffman", true, false, true, 1.5, -1, "topk", int64(9), 0, -2, 7, -1, 5)
	f.Add(true, 2, "terngrad", false, true, false, 1.0, 4, "terngrad", int64(3), 3, 3, 2, 8, 16)
	f.Fuzz(func(t *testing.T, cb bool, cbRank int, cbAlg string, lep, epi, fuse bool,
		frac float64, dpRank int, dpAlg string, seed int64,
		stages, dp, micros, brows, bcols int) {
		cfg := core.Config{
			CompressBackprop:       cb,
			CBRank:                 cbRank,
			CBAlg:                  core.CBAlgorithm(cbAlg),
			LazyErrorPropagation:   lep,
			EpilogueOnly:           epi,
			FuseEmbedding:          fuse,
			SelectiveStageFraction: frac,
			DPRank:                 dpRank,
			DPAlg:                  dpAlg,
			Seed:                   seed,
		}
		// Bound only the allocation size, not the validity: negative and
		// zero values must flow into Compile and come back as errors.
		bound := func(v, lim int) int {
			if v > lim {
				return v%lim + 1
			}
			return v
		}
		g := Grid{
			Stages:       bound(stages, 64),
			DPGroups:     bound(dp, 64),
			MicroBatches: bound(micros, 64),
			BoundaryRows: bound(brows, 1<<12),
			BoundaryCols: bound(bcols, 1<<12),
		}
		p, err := Compile(cfg, g)
		if err != nil {
			return
		}
		// A compiled plan must be internally consistent.
		fwd, dense, cmp := p.Counts()
		if fwd != (g.Stages-1)*g.MicroBatches || dense+cmp != fwd {
			t.Fatalf("inconsistent counts fwd=%d dense=%d cmp=%d for %+v", fwd, dense, cmp, g)
		}
		if !cfg.CompressBackprop && cmp != 0 {
			t.Fatalf("compressed edges without CompressBackprop")
		}
		if len(p.CompressedStages()) != g.Stages {
			t.Fatalf("stage actions %d for %d stages", len(p.CompressedStages()), g.Stages)
		}
		_ = p.String()
		p.EachBackwardEdge(func(e Edge, a EdgeAction) {
			if a.Compress != p.CompressBackward(e.Stage, e.Micro) {
				t.Fatalf("edge %+v action disagrees with CompressBackward", e)
			}
		})
	})
}
