// Package plan compiles an Optimus-CC configuration into an immutable
// communication/compression plan — the single decision artifact that the
// trainer executes, the simulator prices, and the experiments inspect.
//
// Before this package existed, the placement logic (§5's epilogue-only
// rule for inter-stage backward sends, §7's selective-stage selection for
// data-parallel sync, §6's fused-vs-two-phase embedding choice) was
// re-derived independently by train.Trainer, internal/sim, and the
// experiment harness, and the compressor families were hardwired
// constructors. Compile validates a core.Config against a Grid once and
// produces a *Plan holding the resolved decisions as data:
//
//   - per-edge inter-stage actions: Edge{Group, Stage, Micro} →
//     dense or Compressed{CompressorSpec} (the §5.1/§5.2 LEP+epilogue
//     rules over the 1F1B schedule);
//   - per-stage DP-sync actions: dense, or a CompressorSpec per
//     (stage, group, gradient) channel (§7);
//   - the embedding strategy: fused (Eq. 16) vs two-phase (Eq. 15), §6.
//
// CompressorSpecs are compress.Spec values resolved through the compress
// registry (compress.Build), so families are selectable by name — the
// CLI's -cb-alg/-dp-alg flags reach the hot path without a new
// constructor call site. A Plan is immutable after Compile; accessors
// return copies.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// Grid is the parallelism shape a plan is compiled for.
type Grid struct {
	// Stages is the pipeline-parallel depth (≥ 1).
	Stages int
	// DPGroups is the data-parallel width (≥ 1).
	DPGroups int
	// MicroBatches is the number of micro-batches per group per
	// iteration (≥ 1) — the 1F1B schedule length.
	MicroBatches int

	// BoundaryRows × BoundaryCols is the inter-stage activation-gradient
	// shape (micro-batch samples × hidden). Sparse CB families (topk,
	// randomk) need it to byte-match their kept fraction to the low-rank
	// budget; rank-based and quantizing families ignore it. Leave both
	// zero when unknown (e.g. pure placement/pricing uses): the plan still
	// compiles, but building a sparse CB spec then fails loudly.
	BoundaryRows, BoundaryCols int

	// StageGradBytes[s][g] is the dense byte size of stage s's gradient
	// channel g, aligned with the executor's per-stage gradient list; a
	// zero marks a channel outside data-parallel synchronization (the §6
	// embedding-table gradients, which have their own phase). When set,
	// Compile derives the per-stage DP-sync bucket schedule from it; nil
	// compiles a plan without one (pure placement/pricing uses).
	StageGradBytes [][]int64
	// BucketBytes caps one DP-sync bucket's dense payload (0 =
	// DefaultBucketBytes). Only meaningful with StageGradBytes set.
	BucketBytes int64
}

// DefaultBucketBytes is the bucket byte budget used when Grid.BucketBytes
// is zero: small enough that a realistic stage splits into several
// buckets (so communication starts before the whole stage's gradients
// are packed), large enough that vector channels coalesce.
const DefaultBucketBytes = 64 << 10

// Validate reports grid errors.
func (g Grid) Validate() error {
	switch {
	case g.Stages < 1:
		return fmt.Errorf("plan: Stages %d < 1", g.Stages)
	case g.DPGroups < 1:
		return fmt.Errorf("plan: DPGroups %d < 1", g.DPGroups)
	case g.MicroBatches < 1:
		return fmt.Errorf("plan: MicroBatches %d < 1", g.MicroBatches)
	case g.BoundaryRows < 0 || g.BoundaryCols < 0:
		return fmt.Errorf("plan: negative boundary shape %dx%d", g.BoundaryRows, g.BoundaryCols)
	case (g.BoundaryRows == 0) != (g.BoundaryCols == 0):
		return fmt.Errorf("plan: boundary shape %dx%d half-specified", g.BoundaryRows, g.BoundaryCols)
	case g.BucketBytes < 0:
		return fmt.Errorf("plan: negative bucket budget %d", g.BucketBytes)
	case g.BucketBytes > 0 && g.StageGradBytes == nil:
		return fmt.Errorf("plan: BucketBytes set without StageGradBytes")
	}
	if g.StageGradBytes != nil {
		if len(g.StageGradBytes) != g.Stages {
			return fmt.Errorf("plan: StageGradBytes for %d stages, grid has %d", len(g.StageGradBytes), g.Stages)
		}
		for s, row := range g.StageGradBytes {
			for c, b := range row {
				if b < 0 {
					return fmt.Errorf("plan: stage %d gradient channel %d has negative size %d", s, c, b)
				}
			}
		}
	}
	return nil
}

// Edge identifies one inter-stage backward send: the activation gradient
// of micro-batch Micro travelling from Stage to Stage−1 inside group
// Group (Stage ≥ 1).
type Edge struct {
	Group, Stage, Micro int
}

// EdgeAction is the compiled decision for one backward edge.
type EdgeAction struct {
	// Compress reports whether the send is compressed (§5 placement:
	// every send, or only the 1F1B epilogue drain under EpilogueOnly).
	Compress bool
	// LazyErrorPropagation reports whether the boundary's error-feedback
	// residual is carried across micro-batches (§5.1). Meaningful only
	// when Compress is set.
	LazyErrorPropagation bool
	// Spec is the boundary's compressor (zero value when dense). Each
	// (group, stage) boundary gets a private deterministic seed.
	Spec compress.Spec
}

// StageAction is the compiled per-stage data-parallel sync decision.
type StageAction struct {
	// Compress reports whether the stage's DP gradients go through a
	// lossy compressed all-reduce (§7 selective stage compression).
	Compress bool
	// Spec is the per-channel compressor template; the per-(group, grad)
	// seed is resolved by Plan.DPSpec. Zero value when dense.
	Spec compress.Spec
}

// Bucket is one compiled DP-sync bucket: a run of gradient channels
// synchronized as a unit, capped by the grid's byte budget. Channels are
// listed in reverse-backward order — the order the backward pass
// finalizes them — so the first bucket of a stage is the first whose
// all-reduce can be issued while upstream stages still compute.
type Bucket struct {
	// Channels indexes the stage's gradient list (zero-size channels —
	// the §6 embedding gradients — never appear).
	Channels []int
	// Bytes is the bucket's dense payload size (Σ channel sizes).
	Bytes int64
}

// EmbeddingStrategy is the §6 embedding-synchronization choice.
type EmbeddingStrategy int

// Embedding strategies.
const (
	// EmbNone: single rank — the tied table is updated in place.
	EmbNone EmbeddingStrategy = iota
	// EmbDPOnly: single stage, D > 1 — one D-way average remains.
	EmbDPOnly
	// EmbTwoPhase: the baseline Fig. 7a two phases (Eq. 15).
	EmbTwoPhase
	// EmbFused: the fused 2D-way all-reduce of Fig. 7b (Eq. 16).
	EmbFused
)

func (e EmbeddingStrategy) String() string {
	switch e {
	case EmbNone:
		return "none"
	case EmbDPOnly:
		return "dp-only"
	case EmbTwoPhase:
		return "two-phase"
	case EmbFused:
		return "fused"
	}
	return fmt.Sprintf("EmbeddingStrategy(%d)", int(e))
}

// Plan is a compiled, immutable communication/compression plan.
type Plan struct {
	cfg  core.Config
	grid Grid

	// bwd[s][mi] reports whether the backward send from stage s to s−1
	// of micro-batch mi is compressed (s ≥ 1; row 0 is present but
	// always false so indexing needs no offset). Identical across groups.
	bwd [][]bool
	// dpCompressed[s] is the §7 selection.
	dpCompressed []bool
	emb          EmbeddingStrategy

	// cbName/dpName are the normalized compressor family names
	// ("" → "powersgd", "lowrank" → "powersgd").
	cbName string
	dpName string
	// cbFraction is the byte-matched kept fraction for sparse CB
	// families (0 when not applicable or the boundary shape is unknown).
	cbFraction float64

	// buckets[s] is stage s's DP-sync bucket schedule (nil when the grid
	// carried no gradient sizes); bucketBytes the resolved budget.
	buckets     [][]Bucket
	bucketBytes int64
}

// normalizeFamily maps the historical names onto registry names.
func normalizeFamily(name string) string {
	switch name {
	case "", "lowrank":
		return "powersgd"
	}
	return name
}

// sparseFamily reports whether the family's kept fraction must be
// derived from the tensor shape.
func sparseFamily(name string) bool { return name == "topk" || name == "randomk" }

// resolved holds the outcome of validating a (config, grid) pair: the
// normalized family names and the sparse CB kept fraction.
type resolved struct {
	cbName, dpName string
	cbFraction     float64
}

// resolveSpecs runs every validation Compile performs before any
// placement or bucket state exists: grid and config validity, registry
// membership, the sparse byte-matched fraction, and the trial builds
// that reject unbuildable compressor parameters.
func resolveSpecs(cfg core.Config, g Grid) (resolved, error) {
	var r resolved
	if err := g.Validate(); err != nil {
		return r, err
	}
	if err := cfg.Validate(); err != nil {
		return r, err
	}
	r.cbName = normalizeFamily(string(cfg.CBAlg))
	r.dpName = normalizeFamily(cfg.DPAlg)
	if cfg.CompressBackprop {
		if !compress.Registered(r.cbName) {
			return r, fmt.Errorf("plan: CB algorithm %q not in the compressor registry (have %v)",
				r.cbName, compress.RegisteredNames())
		}
		if sparseFamily(r.cbName) && g.BoundaryRows > 0 {
			// Byte-match the sparse budget to the low-rank payload:
			// rank·(n+m) of n·m elements — the exact expression the
			// trainer historically used, preserved for bit-identity.
			n, m := g.BoundaryRows, g.BoundaryCols
			frac := float64(cfg.CBRank*(n+m)) / float64(n*m)
			if frac > 1 {
				frac = 1
			}
			r.cbFraction = frac
		}
		// Trial-build one boundary's spec so invalid parameters (a rank
		// the family's factory rejects, say) fail here rather than at
		// trainer construction. Sparse specs with no boundary shape are
		// legitimately unresolved (pure placement/pricing plans) and
		// only fail if someone actually builds them.
		if !sparseFamily(r.cbName) || r.cbFraction > 0 {
			spec := compress.Spec{Name: r.cbName, Rank: cfg.CBRank, Fraction: r.cbFraction, Seed: cfg.Seed + 1}
			if _, err := compress.Build(spec); err != nil {
				return r, fmt.Errorf("plan: CB spec invalid: %w", err)
			}
		}
	}
	if cfg.DPCompress() {
		if !compress.Registered(r.dpName) {
			return r, fmt.Errorf("plan: DP algorithm %q not in the compressor registry (have %v)",
				r.dpName, compress.RegisteredNames())
		}
		if sparseFamily(r.dpName) {
			return r, fmt.Errorf("plan: DP algorithm %q needs a per-tensor kept fraction, which the configuration cannot derive; use a rank-based or quantizing family", r.dpName)
		}
		// Trial-build as above: every per-channel spec differs only in
		// seed, so one build validates the parameters for all of them —
		// the lazily-created sync compressors can then never panic.
		spec := compress.Spec{Name: r.dpName, Rank: cfg.DPRank, Seed: cfg.Seed + 100000}
		if _, err := compress.Build(spec); err != nil {
			return r, fmt.Errorf("plan: DP spec invalid: %w", err)
		}
	}
	return r, nil
}

// Validate reports whether cfg compiles against g, without building the
// placement or bucket schedule — the cheap reject-before-price hook for
// plan-space searches vetting candidate mutations. Validate(cfg, g) ==
// nil if and only if Compile(cfg, g) succeeds.
func Validate(cfg core.Config, g Grid) error {
	_, err := resolveSpecs(cfg, g)
	return err
}

// Compile validates cfg against g and produces the plan. Every
// configuration error is hard: an unknown compressor family, a
// CompressBackprop rank below 1, or a family whose parameters cannot be
// derived from the configuration all fail here, before any training or
// simulation state exists.
func Compile(cfg core.Config, g Grid) (*Plan, error) {
	r, err := resolveSpecs(cfg, g)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		cfg:        cfg,
		grid:       g,
		cbName:     r.cbName,
		dpName:     r.dpName,
		cbFraction: r.cbFraction,
	}

	// Inter-stage backward placement over the 1F1B schedule (§5.1/§5.2).
	sched, err := pipeline.OneFOneB(g.Stages, g.MicroBatches)
	if err != nil {
		return nil, err
	}
	p.bwd = make([][]bool, g.Stages)
	for s := range p.bwd {
		p.bwd[s] = make([]bool, g.MicroBatches)
		if s == 0 || !cfg.CompressBackprop {
			continue
		}
		for mi := 0; mi < g.MicroBatches; mi++ {
			p.bwd[s][mi] = !cfg.EpilogueOnly || sched.IsEpilogueBackward(s, mi)
		}
	}

	// §7 selective stage compression.
	p.dpCompressed = cfg.CompressedStages(g.Stages)

	// DP-sync bucket schedule: pack each stage's non-embedding gradient
	// channels, walking reverse-backward, into buckets of at most
	// bucketBytes (a channel larger than the budget gets a bucket of its
	// own). The schedule tells the executor when a run of gradients is
	// complete enough to put on the wire, and the simulator how much
	// backward compute remains to hide each bucket under.
	if g.StageGradBytes != nil {
		p.bucketBytes = g.BucketBytes
		if p.bucketBytes == 0 {
			p.bucketBytes = DefaultBucketBytes
		}
		p.buckets = make([][]Bucket, g.Stages)
		for s, sizes := range g.StageGradBytes {
			p.buckets[s] = packBuckets(sizes, p.bucketBytes)
		}
	}

	// §6 embedding strategy.
	switch {
	case g.Stages == 1 && g.DPGroups == 1:
		p.emb = EmbNone
	case g.Stages == 1:
		p.emb = EmbDPOnly
	case cfg.FuseEmbedding:
		p.emb = EmbFused
	default:
		p.emb = EmbTwoPhase
	}
	return p, nil
}

// packBuckets assembles one stage's bucket schedule: channels visited
// from the last index down (reverse-backward — the backward pass
// produces the tail of the gradient list first), zero-size channels
// skipped, each bucket closed once adding the next channel would exceed
// the budget (so an oversized channel stands alone).
func packBuckets(sizes []int64, budget int64) []Bucket {
	var out []Bucket
	var cur Bucket
	for c := len(sizes) - 1; c >= 0; c-- {
		if sizes[c] == 0 {
			continue
		}
		if len(cur.Channels) > 0 && cur.Bytes+sizes[c] > budget {
			out = append(out, cur)
			cur = Bucket{}
		}
		cur.Channels = append(cur.Channels, c)
		cur.Bytes += sizes[c]
	}
	if len(cur.Channels) > 0 {
		out = append(out, cur)
	}
	return out
}

// MustCompile is Compile for configurations the caller already
// validated; it panics on error.
func MustCompile(cfg core.Config, g Grid) *Plan {
	p, err := Compile(cfg, g)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the configuration the plan was compiled from.
func (p *Plan) Config() core.Config { return p.cfg }

// Grid returns the parallelism shape the plan was compiled for.
func (p *Plan) Grid() Grid { return p.grid }

// CompressBackward reports whether the backward send of micro-batch
// micro from stage to stage−1 is compressed — the §5/§5.2 placement both
// the serial trainer path and the 1F1B executor obey. Identical across
// groups. Out-of-range indices are dense (stage 0 has no send).
func (p *Plan) CompressBackward(stage, micro int) bool {
	if stage < 1 || stage >= p.grid.Stages || micro < 0 || micro >= p.grid.MicroBatches {
		return false
	}
	return p.bwd[stage][micro]
}

// Action returns the compiled decision for one backward edge.
func (p *Plan) Action(e Edge) EdgeAction {
	if !p.CompressBackward(e.Stage, e.Micro) {
		return EdgeAction{}
	}
	return EdgeAction{
		Compress:             true,
		LazyErrorPropagation: p.cfg.LazyErrorPropagation,
		Spec:                 p.CBSpec(e.Group, e.Stage),
	}
}

// CBSpec returns the compressor spec for the (group, stage) inter-stage
// boundary, with the boundary's private deterministic seed. Valid only
// when the configuration compresses backprop.
func (p *Plan) CBSpec(group, stage int) compress.Spec {
	return compress.Spec{
		Name:     p.cbName,
		Rank:     p.cfg.CBRank,
		Fraction: p.cbFraction,
		Seed:     p.cfg.Seed + int64(group*100+stage),
	}
}

// DPCompressed reports whether stage's data-parallel gradients are
// compressed under §7's selection.
func (p *Plan) DPCompressed(stage int) bool {
	if stage < 0 || stage >= p.grid.Stages {
		return false
	}
	return p.dpCompressed[stage]
}

// CompressedStages returns the per-stage §7 selection (a copy).
func (p *Plan) CompressedStages() []bool {
	return append([]bool(nil), p.dpCompressed...)
}

// StageAction returns the compiled DP-sync decision for stage. The
// spec is the family template; resolve per-channel seeds with DPSpec.
func (p *Plan) StageAction(stage int) StageAction {
	if !p.DPCompressed(stage) {
		return StageAction{}
	}
	return StageAction{Compress: true, Spec: p.DPSpec(stage, 0, 0)}
}

// DPSpec returns the compressor spec for gradient channel grad of stage
// on group's replica, with the channel's private deterministic seed.
func (p *Plan) DPSpec(stage, group, grad int) compress.Spec {
	return compress.Spec{
		Name: p.dpName,
		Rank: p.cfg.DPRank,
		Seed: p.cfg.Seed + int64(100000+stage*1000+group*100+grad),
	}
}

// HasBuckets reports whether the plan carries a DP-sync bucket schedule
// (the grid supplied gradient channel sizes).
func (p *Plan) HasBuckets() bool { return p.buckets != nil }

// BucketBudget returns the resolved bucket byte budget (0 when the plan
// carries no bucket schedule).
func (p *Plan) BucketBudget() int64 { return p.bucketBytes }

// BucketCount returns stage's bucket count (0 when the plan carries no
// bucket schedule or the stage has no DP-synchronized channels).
func (p *Plan) BucketCount(stage int) int {
	if p.buckets == nil || stage < 0 || stage >= len(p.buckets) {
		return 0
	}
	return len(p.buckets[stage])
}

// Buckets returns stage's bucket schedule in issue (reverse-backward)
// order, as a deep copy.
func (p *Plan) Buckets(stage int) []Bucket {
	if p.BucketCount(stage) == 0 {
		return nil
	}
	out := make([]Bucket, len(p.buckets[stage]))
	for i, b := range p.buckets[stage] {
		out[i] = Bucket{Channels: append([]int(nil), b.Channels...), Bytes: b.Bytes}
	}
	return out
}

// Embedding returns the §6 strategy.
func (p *Plan) Embedding() EmbeddingStrategy { return p.emb }

// CBFamily returns the normalized inter-stage compressor family name
// ("powersgd", "topk", …; meaningful only under CompressBackprop).
func (p *Plan) CBFamily() string { return p.cbName }

// DPFamily returns the normalized DP-sync compressor family name.
func (p *Plan) DPFamily() string { return p.dpName }

// CBSparse reports whether the inter-stage family ships (value, index)
// pairs — the §2.3 index overhead the cost models price at 3× the
// low-rank payload for the same element budget.
func (p *Plan) CBSparse() bool { return sparseFamily(p.cbName) }

// LazyErrorPropagation reports whether compressed backward edges carry
// their residual across micro-batches (§5.1).
func (p *Plan) LazyErrorPropagation() bool { return p.cfg.LazyErrorPropagation }

// EachBackwardEdge visits every backward edge of every group in
// (group, stage, micro) order with its compiled action.
func (p *Plan) EachBackwardEdge(f func(e Edge, a EdgeAction)) {
	for d := 0; d < p.grid.DPGroups; d++ {
		for s := 1; s < p.grid.Stages; s++ {
			for mi := 0; mi < p.grid.MicroBatches; mi++ {
				e := Edge{Group: d, Stage: s, Micro: mi}
				f(e, p.Action(e))
			}
		}
	}
}

// BackwardActions returns the per-replica [stage][micro] compression
// grid (a copy; row 0 is all false).
func (p *Plan) BackwardActions() [][]bool {
	out := make([][]bool, len(p.bwd))
	for s := range p.bwd {
		out[s] = append([]bool(nil), p.bwd[s]...)
	}
	return out
}

// Counts summarizes one replica's inter-stage edges: forward sends (all
// dense, §5), and dense vs compressed backward sends.
func (p *Plan) Counts() (fwd, denseBwd, compressedBwd int) {
	fwd = (p.grid.Stages - 1) * p.grid.MicroBatches
	for s := 1; s < p.grid.Stages; s++ {
		for _, c := range p.bwd[s] {
			if c {
				compressedBwd++
			} else {
				denseBwd++
			}
		}
	}
	return fwd, denseBwd, compressedBwd
}

// String renders the plan as a compact inspectable summary.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s on dp%d×pp%d m=%d\n",
		p.cfg.Name(), p.grid.DPGroups, p.grid.Stages, p.grid.MicroBatches)
	fwd, dense, cmp := p.Counts()
	fmt.Fprintf(&b, "  inter-stage: %d fwd dense, %d bwd dense, %d bwd compressed", fwd, dense, cmp)
	if p.cfg.CompressBackprop {
		fmt.Fprintf(&b, " via %s (LEP %v)", p.CBSpec(0, 1).String(), p.cfg.LazyErrorPropagation)
	}
	b.WriteByte('\n')
	if p.cfg.DPCompress() {
		var sel []string
		for s, c := range p.dpCompressed {
			if c {
				sel = append(sel, fmt.Sprint(s))
			}
		}
		fmt.Fprintf(&b, "  dp-sync: stages {%s} compressed via %s, rest dense\n",
			strings.Join(sel, ","), p.DPSpec(0, 0, 0).String())
	} else {
		b.WriteString("  dp-sync: dense on every stage\n")
	}
	if p.buckets != nil {
		var counts []string
		for s := range p.buckets {
			counts = append(counts, fmt.Sprint(len(p.buckets[s])))
		}
		fmt.Fprintf(&b, "  dp-buckets: budget %d B, per-stage counts [%s]\n",
			p.bucketBytes, strings.Join(counts, " "))
	}
	fmt.Fprintf(&b, "  embedding: %s", p.emb)
	return b.String()
}
