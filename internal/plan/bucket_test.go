package plan

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func bucketGrid(sizes [][]int64, budget int64) Grid {
	return Grid{
		Stages:         len(sizes),
		DPGroups:       2,
		MicroBatches:   2,
		StageGradBytes: sizes,
		BucketBytes:    budget,
	}
}

// TestBucketPacking pins the packing rule: channels walked reverse-
// backward (tail of the gradient list first), zero-size channels
// skipped, buckets closed at the byte budget, oversized channels alone.
func TestBucketPacking(t *testing.T) {
	p := MustCompile(core.Baseline(), bucketGrid([][]int64{
		// stage 0: emb (skipped), three 100 B channels, one 250 B.
		{0, 100, 100, 100, 250},
		// stage 1: a single channel over budget.
		{500},
	}, 200))

	if !p.HasBuckets() {
		t.Fatal("plan has no bucket schedule")
	}
	if p.BucketBudget() != 200 {
		t.Fatalf("budget %d", p.BucketBudget())
	}
	b0 := p.Buckets(0)
	// Reverse-backward: 250 alone (over budget), then 100+100, then 100.
	want := []Bucket{
		{Channels: []int{4}, Bytes: 250},
		{Channels: []int{3, 2}, Bytes: 200},
		{Channels: []int{1}, Bytes: 100},
	}
	if len(b0) != len(want) {
		t.Fatalf("stage 0: %d buckets, want %d: %+v", len(b0), len(want), b0)
	}
	for i, b := range b0 {
		if b.Bytes != want[i].Bytes || len(b.Channels) != len(want[i].Channels) {
			t.Fatalf("stage 0 bucket %d = %+v, want %+v", i, b, want[i])
		}
		for j, c := range b.Channels {
			if c != want[i].Channels[j] {
				t.Fatalf("stage 0 bucket %d channels %v, want %v", i, b.Channels, want[i].Channels)
			}
		}
	}
	b1 := p.Buckets(1)
	if len(b1) != 1 || b1[0].Bytes != 500 || len(b1[0].Channels) != 1 {
		t.Fatalf("oversized channel not a singleton bucket: %+v", b1)
	}
	if p.BucketCount(0) != 3 || p.BucketCount(1) != 1 || p.BucketCount(9) != 0 {
		t.Fatal("BucketCount mismatch")
	}
	if !strings.Contains(p.String(), "dp-buckets: budget 200 B, per-stage counts [3 1]") {
		t.Fatalf("String() missing bucket line:\n%s", p.String())
	}
}

// TestBucketDefaults pins the default budget and the no-schedule path.
func TestBucketDefaults(t *testing.T) {
	p := MustCompile(core.Baseline(), bucketGrid([][]int64{{100}, {100}}, 0))
	if p.BucketBudget() != DefaultBucketBytes {
		t.Fatalf("default budget %d, want %d", p.BucketBudget(), DefaultBucketBytes)
	}

	// No sizes → no schedule, and every accessor degrades gracefully.
	bare := MustCompile(core.Baseline(), Grid{Stages: 2, DPGroups: 2, MicroBatches: 2})
	if bare.HasBuckets() || bare.BucketCount(0) != 0 || bare.Buckets(0) != nil || bare.BucketBudget() != 0 {
		t.Fatal("plan without sizes grew a bucket schedule")
	}
	if strings.Contains(bare.String(), "dp-buckets") {
		t.Fatal("String() renders a bucket line without a schedule")
	}
}

// TestBucketGridValidation pins the new Grid error cases.
func TestBucketGridValidation(t *testing.T) {
	bad := bucketGrid([][]int64{{100}}, 10) // 1 stage of sizes, 2 declared
	bad.Stages = 2
	if _, err := Compile(core.Baseline(), bad); err == nil {
		t.Fatal("stage-count mismatch accepted")
	}
	if _, err := Compile(core.Baseline(), bucketGrid([][]int64{{-1}}, 10)); err == nil {
		t.Fatal("negative channel size accepted")
	}
	neg := bucketGrid([][]int64{{1}}, 0)
	neg.BucketBytes = -5
	if _, err := Compile(core.Baseline(), neg); err == nil {
		t.Fatal("negative budget accepted")
	}
	orphan := Grid{Stages: 1, DPGroups: 1, MicroBatches: 1, BucketBytes: 10}
	if _, err := Compile(core.Baseline(), orphan); err == nil {
		t.Fatal("BucketBytes without StageGradBytes accepted")
	}
}

// TestBucketsImmutable pins the copy contract: mutating a returned
// bucket must not leak into the plan.
func TestBucketsImmutable(t *testing.T) {
	p := MustCompile(core.Baseline(), bucketGrid([][]int64{{10, 10}}, 100))
	b := p.Buckets(0)
	b[0].Channels[0] = 99
	if got := p.Buckets(0)[0].Channels[0]; got == 99 {
		t.Fatal("Buckets returned an aliased slice")
	}
}
