package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Registry is a named set of atomic int64 counters/gauges — the home for
// run statistics that previously lived as ad-hoc struct fields. Hot
// paths hold the *Counter and Add on it (one atomic op); reporting paths
// snapshot the whole registry and render it as text, JSON, or an expvar.
type Registry struct {
	mu       sync.Mutex
	order    []string
	counters map[string]*Counter
}

// Counter is one atomic metric. The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Set overwrites the counter (gauge semantics).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it (at zero) on first use.
// Names keep registration order in every dump.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.order = append(r.order, name)
	}
	return c
}

// Set is shorthand for Counter(name).Set(v) — the gauge-style fill the
// trainer uses when folding snapshot-time statistics in.
func (r *Registry) Set(name string, v int64) { r.Counter(name).Set(v) }

// Metric is one snapshotted (name, value) pair.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot returns every metric in registration order.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, Metric{Name: name, Value: r.counters[name].Load()})
	}
	return out
}

// WriteText renders the snapshot as aligned "name value" lines.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	width := 0
	for _, m := range snap {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range snap {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ExpvarFunc returns the registry as an expvar.Func (a name→value map),
// for PublishExpvar and for tests.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		snap := r.Snapshot()
		m := make(map[string]int64, len(snap))
		for _, s := range snap {
			m[s.Name] = s.Value
		}
		return m
	}
}

// PublishExpvar publishes the registry under the given expvar name.
// Call at most once per name per process (expvar panics on duplicates).
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, r.ExpvarFunc())
}
