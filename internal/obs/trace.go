package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event encoding, shared by the simulator's predicted trace
// (internal/sim) and the executed-run trace (WriteRecorderTrace). One
// encoder, one record layout, one track-naming scheme — so the two
// traces load side-by-side in chrome://tracing or Perfetto and line up
// event-for-event.

// TraceEvent is the Trace Event Format "complete" (ph=X) record.
type TraceEvent struct {
	Name     string  `json:"name"`
	Category string  `json:"cat"`
	Phase    string  `json:"ph"`
	TsMicros float64 `json:"ts"`
	DurUs    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
}

// TraceMeta is a metadata (ph=M) record: it names a track or a process.
type TraceMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// TraceEncoder accumulates events and track metadata and writes them as
// one JSON array. Tracks are registered on first use, in order, with a
// thread_name metadata record interleaved at the registration point —
// the exact layout the simulator's trace always had (pinned by a golden
// test there).
type TraceEncoder struct {
	pid     int
	records []any
	tids    map[string]int
}

// NewTraceEncoder returns an encoder whose records carry the given pid.
// Give executed and predicted traces distinct pids so a merged file
// shows them as separate process groups.
func NewTraceEncoder(pid int) *TraceEncoder {
	return &TraceEncoder{pid: pid, tids: map[string]int{}}
}

// ProcessName emits a process_name metadata record.
func (e *TraceEncoder) ProcessName(name string) {
	e.records = append(e.records, TraceMeta{
		Name:  "process_name",
		Phase: "M",
		PID:   e.pid,
		Args:  map[string]any{"name": name},
	})
}

// Track returns the tid for a named track, registering it (and emitting
// its thread_name record) on first use. Tids start at 1 in registration
// order.
func (e *TraceEncoder) Track(name string) int {
	if id, ok := e.tids[name]; ok {
		return id
	}
	id := len(e.tids) + 1
	e.tids[name] = id
	e.records = append(e.records, TraceMeta{
		Name:  "thread_name",
		Phase: "M",
		PID:   e.pid,
		TID:   id,
		Args:  map[string]any{"name": name},
	})
	return id
}

// Event appends one complete event on track tid.
func (e *TraceEncoder) Event(name, category string, tsMicros, durUs float64, tid int) {
	e.records = append(e.records, TraceEvent{
		Name:     name,
		Category: category,
		Phase:    "X",
		TsMicros: tsMicros,
		DurUs:    durUs,
		PID:      e.pid,
		TID:      tid,
	})
}

// Flush writes the accumulated records as a single JSON array.
func (e *TraceEncoder) Flush(w io.Writer) error {
	return json.NewEncoder(w).Encode(e.records)
}

// TraceCheck summarizes a validated trace file.
type TraceCheck struct {
	Events     int
	Metas      int
	Categories []string // sorted, distinct event categories
}

// ValidateTrace parses a Chrome trace-event JSON array and checks the
// invariants both exporters guarantee: every X event names a category,
// carries non-negative ts and positive dur, and lands on a track that
// has a thread_name record for its (pid, tid). Returns a summary for
// reporting (the optcc-gate trace checker prints it).
func ValidateTrace(r io.Reader) (TraceCheck, error) {
	var records []map[string]any
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return TraceCheck{}, fmt.Errorf("trace is not a JSON array of records: %w", err)
	}
	var chk TraceCheck
	named := map[[2]int]bool{} // (pid, tid) with a thread_name record
	cats := map[string]bool{}
	key := func(rec map[string]any) [2]int {
		pid, _ := rec["pid"].(float64)
		tid, _ := rec["tid"].(float64)
		return [2]int{int(pid), int(tid)}
	}
	for i, rec := range records {
		switch rec["ph"] {
		case "M":
			chk.Metas++
			if rec["name"] == "thread_name" {
				named[key(rec)] = true
			}
		case "X":
			chk.Events++
			name, _ := rec["name"].(string)
			cat, _ := rec["cat"].(string)
			ts, tsOK := rec["ts"].(float64)
			dur, durOK := rec["dur"].(float64)
			switch {
			case name == "":
				return chk, fmt.Errorf("record %d: event without a name", i)
			case cat == "":
				return chk, fmt.Errorf("record %d (%s): event without a category", i, name)
			case !tsOK || ts < 0:
				return chk, fmt.Errorf("record %d (%s): bad ts %v", i, name, rec["ts"])
			case !durOK || dur <= 0:
				return chk, fmt.Errorf("record %d (%s): bad dur %v", i, name, rec["dur"])
			}
			cats[cat] = true
			if !named[key(rec)] {
				return chk, fmt.Errorf("record %d (%s): track pid=%v tid=%v has no thread_name", i, name, rec["pid"], rec["tid"])
			}
		default:
			return chk, fmt.Errorf("record %d: unknown ph %v", i, rec["ph"])
		}
	}
	if chk.Events == 0 {
		return chk, fmt.Errorf("trace holds no events")
	}
	for c := range cats {
		chk.Categories = append(chk.Categories, c)
	}
	sort.Strings(chk.Categories)
	return chk, nil
}
