package obs

import "io"

// ExecutedTracePID is the pid executed-run traces carry; the simulator's
// predicted trace uses pid 1, so a merged file (concatenate the two JSON
// arrays, e.g. `jq -s add`) shows "predicted" and "executed" as separate
// process groups in Perfetto.
const ExecutedTracePID = 2

// WriteRecorderTrace renders every retained span of r as a Chrome trace:
// one Perfetto track per recorder track (in recorder order), events
// named and categorized by the simulator's conventions (Span.Name /
// Span.Category). Zero-duration spans — instantaneous wire-accounting
// marks — are clamped to 1ns so no recorded byte disappears from the
// rendered trace. Call after recording has quiesced.
func WriteRecorderTrace(w io.Writer, r *Recorder, processName string) error {
	enc := NewTraceEncoder(ExecutedTracePID)
	if processName != "" {
		enc.ProcessName(processName)
	}
	for t := 0; t < r.Tracks(); t++ {
		if r.Len(t) == 0 {
			continue
		}
		tid := enc.Track(r.TrackName(t))
		r.Spans(t, func(s Span) {
			durUs := float64(s.DurNs()) / 1e3
			if durUs <= 0 {
				durUs = 1e-3
			}
			enc.Event(s.Name(), s.Category(), float64(s.StartNs)/1e3, durUs, tid)
		})
	}
	return enc.Flush(w)
}
