package obs

import (
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder([]string{"a", "b"}, 8)
	if r.Tracks() != 2 || r.Capacity() != 8 {
		t.Fatalf("tracks=%d cap=%d", r.Tracks(), r.Capacity())
	}
	start := r.Now()
	r.Record(0, PhaseFwd, LinkNone, start, 0, 3, 1, 2)
	r.RecordSpan(1, PhaseSendBwd, LinkPP, 10, 20, 512, 2, 0, 1)
	if r.Count() != 2 || r.Dropped() != 0 || r.Len(0) != 1 || r.Len(1) != 1 {
		t.Fatalf("count=%d dropped=%d", r.Count(), r.Dropped())
	}
	var got []Span
	r.EachSpan(func(track int, s Span) { got = append(got, s) })
	if len(got) != 2 {
		t.Fatalf("visited %d spans", len(got))
	}
	if got[0].Phase != PhaseFwd || got[0].Stage != 3 || got[0].DP != 1 || got[0].Micro != 2 {
		t.Fatalf("span 0 = %+v", got[0])
	}
	if got[1].Bytes != 512 || got[1].DurNs() != 10 || got[1].Link != LinkPP {
		t.Fatalf("span 1 = %+v", got[1])
	}
	if !got[1].Phase.WireBearing() || got[0].Phase.WireBearing() {
		t.Fatal("wire-bearing classification wrong")
	}
}

// TestRecorderFullTrackDropsNewest pins the overflow policy: a full
// track keeps its first `capacity` spans and discards later ones — the
// policy that lets concurrent recording stay lock-free (an overwrite
// ring would reuse slots and race).
func TestRecorderFullTrackDropsNewest(t *testing.T) {
	r := NewRecorder([]string{"t"}, 4)
	for i := 0; i < 10; i++ {
		r.RecordSpan(0, PhaseFwd, LinkNone, int64(i), int64(i)+1, 0, -1, -1, i)
	}
	if r.Count() != 10 || r.Dropped() != 6 || r.Len(0) != 4 {
		t.Fatalf("count=%d dropped=%d len=%d", r.Count(), r.Dropped(), r.Len(0))
	}
	var micros []int
	r.Spans(0, func(s Span) { micros = append(micros, int(s.Micro)) })
	want := []int{0, 1, 2, 3}
	for i, m := range micros {
		if m != want[i] {
			t.Fatalf("retained micros %v, want %v", micros, want)
		}
	}
}

func TestRecorderNilIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 {
		t.Fatal("nil Now must return 0")
	}
	r.Record(0, PhaseFwd, LinkNone, 0, 0, 0, 0, 0)
	r.RecordSpan(5, PhaseBwd, LinkDP, 1, 2, 3, 4, 5, 6)
	if r.Tracks() != 0 || r.Count() != 0 || r.Dropped() != 0 || r.Capacity() != 0 || r.Len(3) != 0 {
		t.Fatal("nil recorder leaked state")
	}
	r.Spans(0, func(Span) { t.Fatal("nil recorder visited a span") })
	r.EachSpan(func(int, Span) { t.Fatal("nil recorder visited a span") })
}

func TestRecorderConcurrentRecording(t *testing.T) {
	const perG, workers = 500, 8
	r := NewRecorder([]string{"x", "y"}, perG*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				start := r.Now()
				r.Record(w%2, PhaseCollExec, LinkDP, start, 1, w, -1, i)
			}
		}(w)
	}
	wg.Wait()
	if r.Count() != perG*workers || r.Dropped() != 0 {
		t.Fatalf("count=%d dropped=%d", r.Count(), r.Dropped())
	}
	var bytes int64
	r.EachSpan(func(_ int, s Span) { bytes += s.Bytes })
	if bytes != perG*workers {
		t.Fatalf("byte sum %d, want %d", bytes, perG*workers)
	}
}

// TestRecordZeroAllocs pins the steady-state allocation contract for
// both the enabled and the disabled (nil) recorder — the bench lane's
// BENCH_obs.json rows gate the same property with 1-alloc slack; this
// is the exact pin.
func TestRecordZeroAllocs(t *testing.T) {
	r := NewRecorder([]string{"t"}, 1<<16)
	if n := testing.AllocsPerRun(1000, func() {
		start := r.Now()
		r.Record(0, PhaseFwd, LinkPP, start, 64, 1, 0, 2)
	}); n != 0 {
		t.Fatalf("enabled Record allocates %.1f/op", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		start := nilRec.Now()
		nilRec.Record(0, PhaseFwd, LinkPP, start, 64, 1, 0, 2)
	}); n != 0 {
		t.Fatalf("disabled Record allocates %.1f/op", n)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder([]string{"t"}, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := r.Now()
		r.Record(0, PhaseFwd, LinkPP, start, 64, 1, 0, 2)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := r.Now()
		r.Record(0, PhaseFwd, LinkPP, start, 64, 1, 0, 2)
	}
}
