package obs

import (
	"sync/atomic"
	"time"
)

// Recorder is the per-rank span recorder: a set of named tracks, each a
// fixed-capacity buffer of Spans. Recording reserves a slot with one
// atomic fetch-add and stores the span by value — 0 allocs/op, safe from
// any goroutine. A full track drops new spans rather than overwriting
// old ones: every reserved sequence number below capacity maps to a
// distinct slot written exactly once, which is what keeps concurrent
// recording race-free without locks (a wrapping ring would let two
// writers collide on a reused slot). Dropped counts the discards, and
// consumers that need a complete record — the reconciliation report —
// refuse to run on a recorder that dropped.
//
// A nil *Recorder is the disabled state: every method, including Now,
// is a cheap no-op, so instrumentation sites call unconditionally.
type Recorder struct {
	epoch time.Time
	cap   int
	names []string
	// tracks[i].next is the number of spans ever offered to track i; the
	// first cap of them own slots 0..cap-1, the rest are dropped. Each
	// track's cursor sits in its own struct (with the spans header) so
	// concurrent tracks do not false-share one counter array.
	tracks []trackBuf
}

type trackBuf struct {
	next  atomic.Int64
	_     [56]byte // keep neighbouring cursors off this cache line
	spans []Span
}

// NewRecorder builds a recorder with one ring of `capacity` spans per
// named track. The epoch is the construction instant: Now and every
// recorded timestamp count nanoseconds from it.
func NewRecorder(trackNames []string, capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{
		epoch:  time.Now(),
		cap:    capacity,
		names:  append([]string(nil), trackNames...),
		tracks: make([]trackBuf, len(trackNames)),
	}
	for i := range r.tracks {
		r.tracks[i].spans = make([]Span, capacity)
	}
	return r
}

// Now returns nanoseconds since the recorder's epoch (monotonic), or 0
// on a nil recorder — so `start := r.Now()` costs one branch when
// tracing is disabled.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Record records a span ending now. No-op on a nil recorder.
func (r *Recorder) Record(track int, ph Phase, link Link, startNs, bytes int64, stage, dp, micro int) {
	if r == nil {
		return
	}
	r.RecordSpan(track, ph, link, startNs, r.Now(), bytes, stage, dp, micro)
}

// RecordSpan records a span with an explicit end timestamp (callers that
// must tie a span's duration exactly to an independently accumulated
// clock — the DP-drain spans — compute end−elapsed themselves). No-op on
// a nil recorder.
func (r *Recorder) RecordSpan(track int, ph Phase, link Link, startNs, endNs, bytes int64, stage, dp, micro int) {
	if r == nil {
		return
	}
	tr := &r.tracks[track]
	slot := tr.next.Add(1) - 1
	if slot >= int64(r.cap) {
		return // full: drop, counted by Dropped
	}
	tr.spans[slot] = Span{
		StartNs: startNs,
		EndNs:   endNs,
		Bytes:   bytes,
		Phase:   ph,
		Link:    link,
		Stage:   int16(stage),
		DP:      int16(dp),
		Micro:   int16(micro),
	}
}

// Tracks returns the track count (0 on nil).
func (r *Recorder) Tracks() int {
	if r == nil {
		return 0
	}
	return len(r.tracks)
}

// TrackName returns track i's name.
func (r *Recorder) TrackName(i int) string { return r.names[i] }

// Capacity returns the per-track ring capacity (0 on nil).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Len returns the number of spans currently retained on a track.
func (r *Recorder) Len(track int) int {
	if r == nil {
		return 0
	}
	n := r.tracks[track].next.Load()
	if n > int64(r.cap) {
		return r.cap
	}
	return int(n)
}

// Count returns the total number of spans ever offered, all tracks
// (retained + dropped).
func (r *Recorder) Count() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.tracks {
		n += r.tracks[i].next.Load()
	}
	return n
}

// Dropped returns how many spans were discarded because their track was
// full, all tracks. A complete record has Dropped() == 0.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.tracks {
		if over := r.tracks[i].next.Load() - int64(r.cap); over > 0 {
			n += over
		}
	}
	return n
}

// Spans visits a track's retained spans in recording order. Call only
// after recording has quiesced (no concurrent Record on the track).
func (r *Recorder) Spans(track int, f func(Span)) {
	if r == nil {
		return
	}
	tr := &r.tracks[track]
	n := tr.next.Load()
	if n > int64(r.cap) {
		n = int64(r.cap)
	}
	for i := int64(0); i < n; i++ {
		f(tr.spans[i])
	}
}

// EachSpan visits every track's retained spans (recording order per
// track), passing the track index. Same quiescence requirement as Spans.
func (r *Recorder) EachSpan(f func(track int, s Span)) {
	if r == nil {
		return
	}
	for t := range r.tracks {
		r.Spans(t, func(s Span) { f(t, s) })
	}
}
