// Package obs is the runtime telemetry layer: a per-rank fixed-capacity
// span recorder for executed-run tracing, an atomic counters/gauges
// registry for end-of-run metrics, and the Chrome trace-event encoder
// both the executed trace and the simulator's predicted trace
// (internal/sim) share — so the two load side-by-side in Perfetto on
// identical event-name and category conventions.
//
// The recorder is built for hot paths: recording a span is one atomic
// slot reservation plus a struct store (0 allocs/op, pinned by
// benchmarks), and every method is a no-op on a nil *Recorder, so
// instrumented code calls unconditionally and disabled tracing costs a
// single nil-check branch.
package obs

import "fmt"

// Phase tags what a span measured. Phases map onto the trace categories
// the simulator's breakdown uses (fwd, bwd, interstage, dp, emb) plus
// the executed-only ones (codec, opt, pipe, sync).
type Phase uint8

const (
	PhaseNone Phase = iota
	// Compute phases, recorded on engine rank tracks.
	PhaseFwd // one micro-batch forward on one stage
	PhaseBwd // one micro-batch backward on one stage
	PhaseOpt // one stage's optimizer step
	// Inter-stage transfer phases (wire-bearing: Bytes is pp-class wire
	// volume), recorded at the trainer's send/account call sites.
	PhaseSendFwd // forward activation send, stage s−1 → s
	PhaseSendBwd // backward activation-gradient send, stage s → s−1
	// Collective operation phases (wire-bearing: Bytes is the op's
	// aggregate executed wire volume), recorded issue→finish by the op's
	// last member.
	PhaseAllReduce
	PhaseAllReduceCompressed
	PhaseBroadcast
	// PhaseCollExec is one member rank's share of a collective op,
	// recorded on its worker track (Bytes = 0; the op span owns them).
	PhaseCollExec
	// Codec phases, recorded inside compress.ErrorFeedback (Bytes is the
	// payload size, informational — not wire-bearing).
	PhaseCompress
	PhaseDecompress
	// Driver phases.
	PhasePipeline // the micro-batch phase: engine start → engines joined
	PhaseDPDrain  // wall time blocked on DP-sync handles (= exposed comm)
	PhaseEmbSync  // the §6 embedding-synchronization phase
	// PhasePrice is one what-if batch drain: a pooled evaluator pricing
	// a batch of scenario queries (internal/whatif). Bytes carries the
	// batch size (queries priced), not a wire volume.
	PhasePrice

	phaseCount
)

// Link classifies a span's traffic, mirroring the collective transport's
// link classes by ordinal (dp=0, pp=1, emb=2); LinkNone marks spans that
// carry no traffic class.
type Link int8

const (
	LinkNone Link = iota - 1
	LinkDP
	LinkPP
	LinkEmb
)

// String returns the transport's class name ("dp", "pp", "emb").
func (l Link) String() string {
	switch l {
	case LinkDP:
		return "dp"
	case LinkPP:
		return "pp"
	case LinkEmb:
		return "emb"
	}
	return "none"
}

// Trace categories. CatFwd…CatEmb equal the simulator's breakdown labels
// (sim.LabelFwd etc.), so predicted and executed events land in the same
// Perfetto categories.
const (
	CatFwd        = "fwd"
	CatBwd        = "bwd"
	CatInterStage = "interstage"
	CatDP         = "dp"
	CatEmb        = "emb"
	CatCodec      = "codec"
	CatOpt        = "opt"
	CatPipe       = "pipe"
	CatPrice      = "price"
)

// WireBearing reports whether a span's Bytes count toward the per-class
// executed wire volume — exactly one wire-bearing span is recorded per
// transport byte increment, so summing them per Link reconciles with the
// transport's class counters to the byte.
func (p Phase) WireBearing() bool {
	switch p {
	case PhaseSendFwd, PhaseSendBwd, PhaseAllReduce, PhaseAllReduceCompressed, PhaseBroadcast:
		return true
	}
	return false
}

// Span is one recorded interval. Stage/DP/Micro are −1 when the
// dimension does not apply. The struct is flat and pointer-free so a
// ring of them is one allocation for the recorder's lifetime.
type Span struct {
	StartNs int64 // recorder-clock nanos (see Recorder.Now)
	EndNs   int64
	Bytes   int64 // wire or payload volume (see Phase.WireBearing)
	Phase   Phase
	Link    Link
	Stage   int16
	DP      int16
	Micro   int16
}

// DurNs returns the span's duration in nanoseconds.
func (s Span) DurNs() int64 { return s.EndNs - s.StartNs }

// Category returns the span's trace category.
func (s Span) Category() string {
	switch s.Phase {
	case PhaseFwd:
		return CatFwd
	case PhaseBwd:
		return CatBwd
	case PhaseSendFwd, PhaseSendBwd:
		return CatInterStage
	case PhaseOpt:
		return CatOpt
	case PhaseCompress, PhaseDecompress:
		return CatCodec
	case PhasePipeline:
		return CatPipe
	case PhaseDPDrain:
		return CatDP
	case PhaseEmbSync:
		return CatEmb
	case PhasePrice:
		return CatPrice
	case PhaseAllReduce, PhaseAllReduceCompressed, PhaseBroadcast, PhaseCollExec:
		return s.Link.String()
	}
	return "none"
}

// Name returns the span's trace-event name, following the simulator's
// task-ID conventions (F/<stage>/<micro>, B/<stage>/<micro>,
// SF/…, SB/…, DP/<stage>, EMB) so executed and predicted events line up
// by name in Perfetto. Allocates; export-path only.
func (s Span) Name() string {
	switch s.Phase {
	case PhaseFwd:
		return fmt.Sprintf("F/%d/%d", s.Stage, s.Micro)
	case PhaseBwd:
		return fmt.Sprintf("B/%d/%d", s.Stage, s.Micro)
	case PhaseSendFwd:
		return fmt.Sprintf("SF/%d/%d", s.Stage, s.Micro)
	case PhaseSendBwd:
		return fmt.Sprintf("SB/%d/%d", s.Stage, s.Micro)
	case PhaseOpt:
		return fmt.Sprintf("opt/%d", s.Stage)
	case PhaseCompress:
		return "compress"
	case PhaseDecompress:
		return "decompress"
	case PhasePipeline:
		return "pipe"
	case PhaseDPDrain:
		return "DPdrain"
	case PhaseEmbSync:
		return "EMBsync"
	case PhasePrice:
		return "price"
	case PhaseAllReduce, PhaseAllReduceCompressed, PhaseBroadcast, PhaseCollExec:
		return opName(s.Phase, s.Link, int(s.Stage))
	}
	return "span"
}

// opName names a collective operation: DP/<stage> for tagged dp-class
// ops (the simulator's DP task IDs), EMB for embedding ops, the op kind
// otherwise.
func opName(p Phase, l Link, stage int) string {
	switch {
	case l == LinkDP && stage >= 0:
		return fmt.Sprintf("DP/%d", stage)
	case l == LinkEmb:
		return "EMB"
	case p == PhaseBroadcast:
		return "BC"
	case p == PhaseAllReduceCompressed:
		return "ARC"
	}
	return "AR"
}
