package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceEncoderLayout(t *testing.T) {
	enc := NewTraceEncoder(1)
	if tid := enc.Track("dev0"); tid != 1 {
		t.Fatalf("first tid %d, want 1", tid)
	}
	if tid := enc.Track("dev0"); tid != 1 {
		t.Fatalf("re-registration changed tid to %d", tid)
	}
	enc.Event("F/0/0", CatFwd, 0, 10, enc.Track("dev0"))
	enc.Event("DP/1", CatDP, 5, 3, enc.Track("nic0"))
	var buf bytes.Buffer
	if err := enc.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	// Layout: dev0 meta, F event, nic0 meta (registered at first use,
	// interleaved), DP event.
	if len(records) != 4 {
		t.Fatalf("%d records, want 4", len(records))
	}
	if records[0]["ph"] != "M" || records[1]["name"] != "F/0/0" ||
		records[2]["ph"] != "M" || records[2]["args"].(map[string]any)["name"] != "nic0" ||
		records[3]["tid"].(float64) != 2 {
		t.Fatalf("unexpected layout: %v", records)
	}
}

func TestValidateTraceAcceptsEncoderOutput(t *testing.T) {
	enc := NewTraceEncoder(2)
	enc.ProcessName("executed")
	enc.Event("B/1/0", CatBwd, 1, 2, enc.Track("rank0"))
	enc.Event("SB/1/0", CatInterStage, 3, 1, enc.Track("rank0"))
	var buf bytes.Buffer
	if err := enc.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	chk, err := ValidateTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Events != 2 || chk.Metas != 2 {
		t.Fatalf("events=%d metas=%d", chk.Events, chk.Metas)
	}
	if got := strings.Join(chk.Categories, ","); got != "bwd,interstage" {
		t.Fatalf("categories %q", got)
	}
}

func TestValidateTraceRejectsBadRecords(t *testing.T) {
	cases := map[string]string{
		"not array":     `{"name":"x"}`,
		"no events":     `[{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}}]`,
		"zero dur":      `[{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},{"name":"e","cat":"fwd","ph":"X","ts":0,"dur":0,"pid":1,"tid":1}]`,
		"no category":   `[{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},{"name":"e","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]`,
		"unnamed track": `[{"name":"e","cat":"fwd","ph":"X","ts":0,"dur":1,"pid":1,"tid":9}]`,
		"unknown ph":    `[{"name":"e","ph":"Q"}]`,
	}
	for name, in := range cases {
		if _, err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: validated", name)
		}
	}
}

func TestWriteRecorderTrace(t *testing.T) {
	r := NewRecorder([]string{"rank0", "empty", "driver"}, 16)
	start := r.Now()
	r.Record(0, PhaseFwd, LinkNone, start, 0, 0, 0, 0)
	r.RecordSpan(0, PhaseSendBwd, LinkPP, 5, 5, 128, 1, 0, 0) // zero-duration wire mark
	r.RecordSpan(2, PhaseDPDrain, LinkDP, 10, 30, 0, -1, -1, -1)
	var buf bytes.Buffer
	if err := WriteRecorderTrace(&buf, r, "executed"); err != nil {
		t.Fatal(err)
	}
	chk, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("executed trace fails validation: %v\n%s", err, buf.String())
	}
	// 3 events survive (the zero-duration one clamped, not dropped);
	// metas: process_name + 2 used tracks (the empty track is skipped).
	if chk.Events != 3 || chk.Metas != 3 {
		t.Fatalf("events=%d metas=%d", chk.Events, chk.Metas)
	}
	if got := strings.Join(chk.Categories, ","); got != "dp,fwd,interstage" {
		t.Fatalf("categories %q", got)
	}
	if !strings.Contains(buf.String(), `"SB/1/0"`) || !strings.Contains(buf.String(), `"DPdrain"`) {
		t.Fatalf("expected span names missing:\n%s", buf.String())
	}
}

func TestSpanNamesAndCategories(t *testing.T) {
	cases := []struct {
		s         Span
		name, cat string
	}{
		{Span{Phase: PhaseFwd, Stage: 2, Micro: 3}, "F/2/3", CatFwd},
		{Span{Phase: PhaseBwd, Stage: 1, Micro: 0}, "B/1/0", CatBwd},
		{Span{Phase: PhaseSendFwd, Stage: 1, Micro: 2}, "SF/1/2", CatInterStage},
		{Span{Phase: PhaseOpt, Stage: 3}, "opt/3", CatOpt},
		{Span{Phase: PhaseAllReduce, Link: LinkDP, Stage: 2}, "DP/2", CatDP},
		{Span{Phase: PhaseAllReduceCompressed, Link: LinkDP, Stage: 0}, "DP/0", CatDP},
		{Span{Phase: PhaseAllReduce, Link: LinkEmb, Stage: -1}, "EMB", CatEmb},
		{Span{Phase: PhaseBroadcast, Link: LinkDP, Stage: -1}, "BC", CatDP},
		{Span{Phase: PhaseCollExec, Link: LinkDP, Stage: 1}, "DP/1", CatDP},
		{Span{Phase: PhaseCompress, Link: LinkPP}, "compress", CatCodec},
		{Span{Phase: PhasePipeline}, "pipe", CatPipe},
		{Span{Phase: PhaseEmbSync, Link: LinkEmb}, "EMBsync", CatEmb},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.name {
			t.Errorf("Name(%+v) = %q, want %q", c.s, got, c.name)
		}
		if got := c.s.Category(); got != c.cat {
			t.Errorf("Category(%+v) = %q, want %q", c.s, got, c.cat)
		}
	}
}
