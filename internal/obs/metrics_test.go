package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotOrderAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("train.iterations").Add(3)
	r.Counter("collective.dp.bytes").Add(100)
	r.Counter("collective.dp.bytes").Add(28)
	r.Set("train.dp_exposed_ns", 42)
	r.Set("train.dp_exposed_ns", 17) // gauge semantics: overwrite
	snap := r.Snapshot()
	want := []Metric{
		{"train.iterations", 3},
		{"collective.dp.bytes", 128},
		{"train.dp_exposed_ns", 17},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, snap[i], want[i])
		}
	}
}

func TestRegistryWriters(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.long.name").Set(1)
	r.Counter("b").Set(-2)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "a.long.name 1") || !strings.HasPrefix(lines[1], "b") {
		t.Fatalf("text dump:\n%s", text.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var got []Metric
	if err := json.Unmarshal(js.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a.long.name" || got[1].Value != -2 {
		t.Fatalf("json dump: %v", got)
	}

	m, ok := r.ExpvarFunc()().(map[string]int64)
	if !ok || m["a.long.name"] != 1 || m["b"] != -2 {
		t.Fatalf("expvar value: %v", m)
	}
}

func TestCounterAddZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op", n)
	}
}
