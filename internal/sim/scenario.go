// Package sim is the timing simulator: it assembles one training
// iteration as a task graph (1F1B compute ops, inter-stage transfers,
// data-parallel all-reduces, embedding synchronization) over the cluster
// topology, applies the Optimus-CC techniques from a core.Config, and
// resolves the iteration time, per-component breakdowns (the CPI-stack
// method of §3), and multi-day training projections of Table 2.
//
// Calibration philosophy: the simulator has one compute constant
// (cluster efficiency, fitted so the baseline GPT-2.5B run matches the
// paper's 14.72 days) and a small set of communication-efficiency
// constants (CommParams, fixed once for all experiments, chosen so the
// baseline Fig. 3 breakdown has the paper's character). Every compressed
// configuration is then a prediction.
package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
)

// CommParams captures how far real distributed-training communication
// falls below nominal link bandwidth. The paper's measured overheads
// (multi-second communication per iteration on a 200 Gb/s fabric) are far
// above pure wire time; these constants model the implementation effects
// (blocking p2p send/recv, NIC sharing inside a node, per-collective
// software overhead, and the blocking embedding-sync phase of
// Megatron-LM v2.5).
type CommParams struct {
	// P2PEff is the fraction of nominal inter-node bandwidth achieved by
	// point-to-point inter-stage transfers.
	P2PEff float64
	// DPEff is the fraction of nominal bandwidth achieved per all-reduce
	// flow, before the node's GPUs share the NIC.
	DPEff float64
	// CollOverheadSec is fixed software overhead per data-parallel
	// collective.
	CollOverheadSec float64
	// EmbPhaseOverheadSec is fixed overhead per embedding-synchronization
	// phase; fusing removes one whole phase (§6).
	EmbPhaseOverheadSec float64
	// SteadyOverlap is the fraction of a steady-phase inter-stage
	// transfer's latency hidden by asynchronous send/recv overlapping with
	// compute (§2.1: "the latency of many point-to-point communications
	// are hidden by overlapping with computations"). Epilogue transfers —
	// and warmup-phase forward transfers, which fill an empty pipeline —
	// are never hidden (§5.2). A strict-dependency DAG would expose every
	// steady send in full, which contradicts the paper's measured
	// behaviour; this factor models Megatron's async comm streams.
	//
	// The scalar applies to the pp link class only. DP-sync overlap is
	// not a tunable: it is computed from the compiled bucket schedule
	// and the 1F1B structure (PredictDPOverlap — exposed comm =
	// max(0, comm − remaining backward compute)), mirroring how the
	// executable trainer actually hides bucketed all-reduces under the
	// backward pass.
	SteadyOverlap float64
}

// DefaultCommParams returns the constants used by every experiment.
func DefaultCommParams() CommParams {
	return CommParams{
		P2PEff:              0.008,
		DPEff:               0.20,
		CollOverheadSec:     0.03,
		EmbPhaseOverheadSec: 0.35,
		SteadyOverlap:       0.9,
	}
}

// Validate reports malformed parameters.
func (p CommParams) Validate() error {
	if p.P2PEff <= 0 || p.P2PEff > 1 || p.DPEff <= 0 || p.DPEff > 1 {
		return fmt.Errorf("sim: efficiency factors outside (0,1]: %+v", p)
	}
	if p.CollOverheadSec < 0 || p.EmbPhaseOverheadSec < 0 {
		return fmt.Errorf("sim: negative overheads: %+v", p)
	}
	if p.SteadyOverlap < 0 || p.SteadyOverlap > 1 {
		return fmt.Errorf("sim: SteadyOverlap %v outside [0,1]", p.SteadyOverlap)
	}
	return nil
}

// Scenario is one fully specified simulation: model × cluster × mapping ×
// batch schedule × Optimus-CC configuration.
type Scenario struct {
	Topo        cluster.Topology
	Map         cluster.Mapping
	Spec        cluster.GPTSpec
	MicroBatch  int // per-micro-batch samples (paper: 8)
	GlobalBatch int // total mini-batch (paper: 512)
	Iterations  int // training length (paper: 230K)
	Cfg         core.Config
	Comm        CommParams
	Cost        core.CompressionCostModel
	// BucketBytes caps one DP-sync bucket's dense payload in the
	// compiled plan's bucket schedule (0 = plan.DefaultBucketBytes).
	BucketBytes int64
}

// PaperScenario returns the Table 1 setup for the given model spec and
// Optimus-CC configuration: 128 GPUs as TP8/DP4/PP4, micro-batch 8,
// mini-batch 512, 230K iterations.
func PaperScenario(spec cluster.GPTSpec, cfg core.Config) Scenario {
	return Scenario{
		Topo:        cluster.PaperCluster(),
		Map:         cluster.Mapping{TP: 8, DP: 4, PP: 4},
		Spec:        spec,
		MicroBatch:  8,
		GlobalBatch: 512,
		Iterations:  230000,
		Cfg:         cfg,
		Comm:        DefaultCommParams(),
		Cost:        core.DefaultCompressionCostModel(),
	}
}

// MicroBatches returns the number of micro-batches each pipeline processes
// per iteration: GlobalBatch / (DP × MicroBatch). Paper setting: 16.
func (s Scenario) MicroBatches() int {
	return s.GlobalBatch / (s.Map.DP * s.MicroBatch)
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	if err := s.Topo.Validate(); err != nil {
		return err
	}
	if err := s.Map.Validate(s.Topo); err != nil {
		return err
	}
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if err := s.Cfg.Validate(); err != nil {
		return err
	}
	if err := s.Comm.Validate(); err != nil {
		return err
	}
	if s.MicroBatch < 1 || s.GlobalBatch < 1 || s.Iterations < 1 {
		return fmt.Errorf("sim: non-positive batch/iteration settings")
	}
	if s.GlobalBatch%(s.Map.DP*s.MicroBatch) != 0 {
		return fmt.Errorf("sim: GlobalBatch %d not divisible by DP×MicroBatch %d",
			s.GlobalBatch, s.Map.DP*s.MicroBatch)
	}
	if s.Spec.Layers%s.Map.PP != 0 {
		return fmt.Errorf("sim: layers %d not divisible by PP %d", s.Spec.Layers, s.Map.PP)
	}
	return nil
}

// LayersPerStage returns the per-stage layer count.
func (s Scenario) LayersPerStage() int { return s.Spec.Layers / s.Map.PP }

// Plan compiles the scenario's communication/compression plan — the
// same plan.Compile the executable trainer runs, so the simulator's
// edge placement, §7 stage selection, §6 embedding strategy, and
// DP-sync bucket schedule can never drift from the executed ones. The
// boundary shape is the inter-stage activation-gradient: (micro-batch
// samples × seq) × hidden; the gradient channels are one per layer, the
// TP-sharded per-layer gradient.
func (s Scenario) Plan() (*plan.Plan, error) {
	chanBytes := s.Spec.ParamsPerLayer() / int64(s.Map.TP) * 2
	sizes := make([][]int64, s.Map.PP)
	for st := range sizes {
		row := make([]int64, s.LayersPerStage())
		for c := range row {
			row[c] = chanBytes
		}
		sizes[st] = row
	}
	return plan.Compile(s.Cfg, plan.Grid{
		Stages:         s.Map.PP,
		DPGroups:       s.Map.DP,
		MicroBatches:   s.MicroBatches(),
		BoundaryRows:   s.MicroBatch * s.Spec.SeqLen,
		BoundaryCols:   s.Spec.Hidden,
		StageGradBytes: sizes,
		BucketBytes:    s.BucketBytes,
	})
}

// StageParams returns the parameter count owned by one pipeline stage,
// embedding tables excluded (they are accounted by the EMB tasks).
func (s Scenario) StageParams(stage int) int64 {
	return int64(s.LayersPerStage()) * s.Spec.ParamsPerLayer()
}

// Result is the outcome of a simulation.
type Result struct {
	IterationSec float64
	Days         float64
	// Exposed is the CPI-stack breakdown: for each component label, the
	// increase in iteration time attributable to it (makespan minus
	// makespan with that component's tasks zeroed), per §3's methodology.
	Exposed map[string]float64
	// Busy is the total duration of tasks per label (overlapped or not).
	Busy map[string]float64
}

// Speedup returns baseline.IterationSec/r.IterationSec − 1, the paper's
// speedup definition in Table 2.
func (r Result) Speedup(baseline Result) float64 {
	return baseline.IterationSec/r.IterationSec - 1
}

// Component labels used in graphs and breakdowns.
const (
	LabelFwd        = "fwd"
	LabelBwd        = "bwd"
	LabelInterStage = "interstage"
	LabelDP         = "dp"
	LabelEmb        = "emb"
)

// AllLabels lists the breakdown components in display order.
var AllLabels = []string{LabelFwd, LabelBwd, LabelInterStage, LabelDP, LabelEmb}
