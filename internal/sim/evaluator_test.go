package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
)

// evaluatorConfigs spans every compressor family and technique mix the
// search space can produce, so the frozen-sequence pricing is pinned
// against full Simulate across the whole candidate space.
func evaluatorConfigs() map[string]core.Config {
	cfgs := map[string]core.Config{
		"baseline": core.Baseline(),
		"cb":       core.CB(),
		"cbfe":     core.CBFE(),
		"cbfesc":   core.CBFESC(),
		"naivedp":  core.NaiveDP(),
		"naivecb":  core.NaiveCB(),
	}
	for _, alg := range []string{"topk", "randomk", "terngrad", "signsgd", "uniform8"} {
		c := core.CBFE()
		c.CBAlg = core.CBAlgorithm(alg)
		cfgs["cb-"+alg] = c
	}
	for _, alg := range []string{"terngrad", "signsgd", "uniform8"} {
		c := core.CBFESC()
		c.DPAlg = alg
		cfgs["dp-"+alg] = c
	}
	half := core.CBFESC()
	half.SelectiveStageFraction = 0.5
	cfgs["sc-half"] = half
	return cfgs
}

func TestEvaluatorMatchesSimulate(t *testing.T) {
	base := PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range evaluatorConfigs() {
		est, err := ev.Price(cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := base
		s.Cfg = cfg
		res, err := Simulate(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(est.IterationSec-res.IterationSec) > 1e-9*res.IterationSec {
			t.Errorf("%s: evaluator iteration %v, Simulate %v", name, est.IterationSec, res.IterationSec)
		}
		for label, got := range map[string]float64{
			LabelInterStage: est.ExposedPPSec,
			LabelDP:         est.ExposedDPSec,
			LabelEmb:        est.ExposedEmbSec,
		} {
			want := res.Exposed[label]
			if math.Abs(got-want) > 1e-9*(math.Abs(want)+1e-12) {
				t.Errorf("%s: exposed %s %v, Simulate %v", name, label, got, want)
			}
		}
	}
}

func TestEvaluatorVolumesMatchPredictors(t *testing.T) {
	base := PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range evaluatorConfigs() {
		est, err := ev.Price(cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := base
		s.Cfg = cfg
		pl, err := s.Plan()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := computeDurations(s, pl)
		// PP volume: the plan-derived inter-stage prediction over the
		// dense/compressed boundary payloads the durations were priced from.
		wantPP := PredictInterStageFromPlan(pl, d.boundaryBytes, d.cmpBoundaryBytes).Bytes
		if est.PPBytesPerReplica != wantPP {
			t.Errorf("%s: PP bytes %d want %d", name, est.PPBytesPerReplica, wantPP)
		}
		// DP volume: Thakur ring closed forms per stage.
		D := int64(s.Map.DP)
		var wantDP int64
		for st := 0; st < s.Map.PP; st++ {
			if pl.DPCompressed(st) {
				wantDP += (D - 1) * D * d.dpWireBytes[st]
			} else {
				wantDP += 2 * d.dpShardBytes[st] * (D - 1)
			}
		}
		if est.DPBytes != wantDP {
			t.Errorf("%s: DP bytes %d want %d", name, est.DPBytes, wantDP)
		}
		// Emb volume: §6 closed forms at D=4 — two-phase 4v(D−1)+2vD,
		// fused 2v(2D−1).
		v := d.embBytes
		var wantEmb int64
		if pl.Embedding() == plan.EmbFused {
			wantEmb = 2 * v * (2*D - 1)
		} else {
			wantEmb = 4*v*(D-1) + 2*v*D
		}
		if est.EmbBytes != wantEmb {
			t.Errorf("%s: emb bytes %d want %d (strategy %s)", name, est.EmbBytes, wantEmb, pl.Embedding())
		}
		// A compressed configuration must never exceed the dense volumes.
		if cfg.CompressBackprop && est.PPBytesPerReplica > wantPPDense(t, base) {
			t.Errorf("%s: compressed PP volume above dense", name)
		}
	}
}

func wantPPDense(t *testing.T, base Scenario) int64 {
	t.Helper()
	s := base
	s.Cfg = core.Baseline()
	pl, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	d := computeDurations(s, pl)
	return PredictInterStageFromPlan(pl, d.boundaryBytes, d.cmpBoundaryBytes).Bytes
}

func TestEvaluatorBucketSweepCostNeutral(t *testing.T) {
	// The analytic model prices DP sync from total volume, so the bucket
	// budget must change the compiled bucket counts but not the cost —
	// the property the search's deterministic tie-break relies on.
	base := PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ev.Price(core.CBFESC(), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Sim-scale channels are ~10.5 MB each, so coalescing needs a budget
	// of several channels' worth.
	large, err := ev.Price(core.CBFESC(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if small.IterationSec != large.IterationSec {
		t.Errorf("bucket budget changed cost: %v vs %v", small.IterationSec, large.IterationSec)
	}
	sum := func(b []int) int {
		var n int
		for _, c := range b {
			n += c
		}
		return n
	}
	if sum(small.Buckets) <= sum(large.Buckets) {
		t.Errorf("smaller budget should compile more buckets: %v vs %v", small.Buckets, large.Buckets)
	}
}

func TestEvaluatorReusableAcrossCandidates(t *testing.T) {
	// Pricing must be stateless: interleaving candidates cannot change
	// any candidate's estimate.
	base := PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ev.Price(core.CBFESC(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Price(core.Baseline(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Price(core.NaiveCB(), 0); err != nil {
		t.Fatal(err)
	}
	again, err := ev.Price(core.CBFESC(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.IterationSec != again.IterationSec || first.PPBytesPerReplica != again.PPBytesPerReplica ||
		first.DPBytes != again.DPBytes || first.EmbBytes != again.EmbBytes {
		t.Fatalf("pricing not reproducible: %+v vs %+v", first, again)
	}
}

func TestEvaluatorRejectsInvalidConfig(t *testing.T) {
	base := PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.CB()
	bad.CBRank = 0
	if _, err := ev.Price(bad, 0); err == nil {
		t.Fatal("invalid config priced without error")
	}
}
