package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/simnet"
)

// TestPredictDPOverlapStructure pins the schedule-derived overlap model:
// the hide window grows with the stage index (later stages finish their
// last backward with more of the wave still to run — in backward order,
// stage 0 runs last), exposed = max(0, comm − hide) per stage, and the
// iteration-level exposure is the per-stage maximum.
func TestPredictDPOverlapStructure(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.Baseline())
	ov, err := PredictDPOverlap(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Stages) != sc.Map.PP {
		t.Fatalf("%d stage rows, want %d", len(ov.Stages), sc.Map.PP)
	}
	var maxExposed, commSum float64
	for i, so := range ov.Stages {
		if so.Buckets < 1 {
			t.Fatalf("stage %d has no buckets", i)
		}
		if so.CommSec <= 0 {
			t.Fatalf("stage %d non-positive comm %v", i, so.CommSec)
		}
		if i == 0 && so.HideSec != 0 {
			t.Fatalf("stage 0 hide window %v, want 0 (nothing runs after its last backward)", so.HideSec)
		}
		if i > 0 && so.HideSec <= ov.Stages[i-1].HideSec {
			t.Fatalf("hide window not increasing: stage %d %v <= stage %d %v",
				i, so.HideSec, i-1, ov.Stages[i-1].HideSec)
		}
		if want := simnet.ExposedCommTime(so.CommSec, so.HideSec); so.ExposedSec != want {
			t.Fatalf("stage %d exposed %v, want max(0, comm−hide) = %v", i, so.ExposedSec, want)
		}
		if so.ExposedSec > maxExposed {
			maxExposed = so.ExposedSec
		}
		commSum += so.CommSec
	}
	if ov.ExposedSec != maxExposed || ov.CommSec != commSum {
		t.Fatalf("totals (%v, %v) disagree with rows (%v, %v)",
			ov.CommSec, ov.ExposedSec, commSum, maxExposed)
	}
	// Stage 0's DP sync has no backward left to hide under: fully exposed.
	if s0 := ov.Stages[0]; s0.ExposedSec != s0.CommSec {
		t.Fatalf("stage 0 exposed %v != comm %v", s0.ExposedSec, s0.CommSec)
	}
	if ov.EmbExposedSec <= 0 {
		t.Fatal("embedding phase predicted free")
	}
	// Overlap can only help: exposure never exceeds total comm.
	if ov.ExposedSec > ov.CommSec {
		t.Fatal("exposure exceeds total communication")
	}
}

// TestExposedCommTime pins the simnet helper.
func TestExposedCommTime(t *testing.T) {
	if got := simnet.ExposedCommTime(3, 1); got != 2 {
		t.Fatalf("ExposedCommTime(3,1) = %v", got)
	}
	if got := simnet.ExposedCommTime(1, 3); got != 0 {
		t.Fatalf("ExposedCommTime(1,3) = %v", got)
	}
	if got := simnet.ExposedCommTime(2, 2); got != 0 {
		t.Fatalf("ExposedCommTime(2,2) = %v", got)
	}
}

// TestScenarioPlanCarriesBuckets pins that the simulator compiles the
// same kind of bucket schedule the trainer executes: per-layer gradient
// channels, TP-sharded sizes, default budget.
func TestScenarioPlanCarriesBuckets(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.CBFESC())
	pl, err := sc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !pl.HasBuckets() {
		t.Fatal("scenario plan carries no bucket schedule")
	}
	if pl.BucketBudget() != plan.DefaultBucketBytes {
		t.Fatalf("budget %d, want default %d", pl.BucketBudget(), plan.DefaultBucketBytes)
	}
	grid := pl.Grid()
	chanBytes := sc.Spec.ParamsPerLayer() / int64(sc.Map.TP) * 2
	for st := 0; st < sc.Map.PP; st++ {
		if len(grid.StageGradBytes[st]) != sc.LayersPerStage() {
			t.Fatalf("stage %d has %d channels, want one per layer (%d)",
				st, len(grid.StageGradBytes[st]), sc.LayersPerStage())
		}
		for _, b := range grid.StageGradBytes[st] {
			if b != chanBytes {
				t.Fatalf("channel size %d, want %d", b, chanBytes)
			}
		}
		// Real-scale layer gradients exceed the budget: singleton buckets.
		if got, want := pl.BucketCount(st), sc.LayersPerStage(); got != want {
			t.Fatalf("stage %d bucket count %d, want %d", st, got, want)
		}
	}
}

// TestPredictDPBucketBytesFormula pins the volume formulas on a small
// hand-checked plan.
func TestPredictDPBucketBytesFormula(t *testing.T) {
	cfg := core.Baseline()
	p := plan.MustCompile(cfg, plan.Grid{
		Stages: 1, DPGroups: 4, MicroBatches: 2,
		StageGradBytes: [][]int64{{100, 300}},
		BucketBytes:    1000,
	})
	vols, err := PredictDPBucketBytes(p, func(int, int) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	// One bucket of 400 B dense across D=4: 2·400·3 = 2400 aggregate.
	if len(vols) != 1 || len(vols[0]) != 1 || vols[0][0] != 2400 {
		t.Fatalf("dense bucket volume %v, want [[2400]]", vols)
	}

	// Compressed stage: payload of 50 B per rank → (D−1)·D·50 per channel.
	ccfg := core.CBFESC()
	ccfg.CBRank = 2
	ccfg.DPRank = 2
	ccfg.SelectiveStageFraction = 1 // compress every stage
	cp := plan.MustCompile(ccfg, plan.Grid{
		Stages: 1, DPGroups: 4, MicroBatches: 2,
		BoundaryRows: 8, BoundaryCols: 8,
		StageGradBytes: [][]int64{{100, 300}},
		BucketBytes:    1000,
	})
	if !cp.DPCompressed(0) {
		t.Fatal("stage 0 not selected for DP compression")
	}
	vols, err = PredictDPBucketBytes(cp, func(st, ch int) int64 {
		if ch == 1 {
			return 50
		}
		return 0 // channel 0 incompressible → dense
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3*4*50 + 2*100*3) // compressed ch 1 + dense ch 0
	if vols[0][0] != want {
		t.Fatalf("mixed bucket volume %d, want %d", vols[0][0], want)
	}

	bare := plan.MustCompile(cfg, plan.Grid{Stages: 1, DPGroups: 2, MicroBatches: 1})
	if _, err := PredictDPBucketBytes(bare, func(int, int) int64 { return 0 }); err == nil {
		t.Fatal("plan without a bucket schedule accepted")
	}
}
