package sim

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// TestEvaluatorsDoNotAliasState guards the pooling assumption the
// what-if service is built on: an Evaluator is single-goroutine, but
// distinct Evaluators constructed from the same base Scenario share no
// mutable state. Each goroutine drives its own Evaluator over the whole
// config sweep while the others do the same, and every estimate must be
// bit-identical (==, not approximately equal) to a reference computed
// serially on a separate Evaluator beforehand. Run under -race this
// also proves NewEvaluator leaks no shared scratch between instances.
func TestEvaluatorsDoNotAliasState(t *testing.T) {
	base := PaperScenario(cluster.GPT25B, core.Baseline())

	type probe struct {
		name   string
		cfg    core.Config
		bucket int64
	}
	var probes []probe
	for name, cfg := range evaluatorConfigs() {
		probes = append(probes, probe{name, cfg, 0})
	}
	probes = append(probes,
		probe{"cbfesc-bkt4M", core.CBFESC(), 4 << 20},
		probe{"baseline-bkt64M", core.Baseline(), 64 << 20},
	)

	ref, err := NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]Estimate, len(probes))
	for _, p := range probes {
		est, err := ref.Price(p.cfg, p.bucket)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		want[p.name] = est
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev, err := NewEvaluator(base)
			if err != nil {
				errs <- err
				return
			}
			// Each worker walks the sweep from a different offset so
			// different configs are in flight on different evaluators at
			// the same instant.
			for round := 0; round < 3; round++ {
				for i := range probes {
					p := probes[(i+w)%len(probes)]
					est, err := ev.Price(p.cfg, p.bucket)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(est, want[p.name]) {
						t.Errorf("worker %d round %d: %s diverged from serial reference:\n got %+v\nwant %+v",
							w, round, p.name, est, want[p.name])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
