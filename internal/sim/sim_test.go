package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// calibratedEff caches the calibration result across tests.
var calibratedEff float64

func eff(t *testing.T) float64 {
	t.Helper()
	if calibratedEff == 0 {
		e, err := Calibrate(PaperScenario(cluster.GPT25B, core.Baseline()), 14.72*86400/230000)
		if err != nil {
			t.Fatal(err)
		}
		calibratedEff = e
	}
	return calibratedEff
}

func paperSim(t *testing.T, spec cluster.GPTSpec, cfg core.Config) Result {
	t.Helper()
	sc := PaperScenario(spec, cfg)
	sc.Topo.Efficiency = eff(t)
	r, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScenarioValidate(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.Baseline())
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.MicroBatches() != 16 {
		t.Fatalf("micro-batches %d want 16 (512/(4·8))", sc.MicroBatches())
	}
	bad := sc
	bad.GlobalBatch = 100 // not divisible by 32
	if bad.Validate() == nil {
		t.Fatal("indivisible batch accepted")
	}
	bad = sc
	bad.Spec.Layers = 53
	if bad.Validate() == nil {
		t.Fatal("indivisible layers accepted")
	}
	bad = sc
	bad.Comm.SteadyOverlap = 2
	if bad.Validate() == nil {
		t.Fatal("bad overlap accepted")
	}
}

func TestCalibrationHitsPaperBaseline(t *testing.T) {
	r := paperSim(t, cluster.GPT25B, core.Baseline())
	if math.Abs(r.Days-14.72) > 0.15 {
		t.Fatalf("calibrated GPT-2.5B baseline %.2f days, want ≈14.72", r.Days)
	}
}

func TestPredicted83BBaselineNearPaper(t *testing.T) {
	// The 8.3B baseline is a *prediction* (calibration used 2.5B only).
	// Paper: 37.27 days. Accept ±15%.
	r := paperSim(t, cluster.GPT83B, core.Baseline())
	if r.Days < 37.27*0.85 || r.Days > 37.27*1.15 {
		t.Fatalf("predicted GPT-8.3B baseline %.2f days, paper 37.27", r.Days)
	}
}

func TestTable2SpeedupOrdering(t *testing.T) {
	// Table 2's qualitative result: Baseline < CB < CB+FE < CB+FE+SC for
	// both models.
	for _, spec := range []cluster.GPTSpec{cluster.GPT25B, cluster.GPT83B} {
		base := paperSim(t, spec, core.Baseline())
		cb := paperSim(t, spec, core.CB())
		cbfe := paperSim(t, spec, core.CBFE())
		full := paperSim(t, spec, core.CBFESC())
		if !(cb.IterationSec < base.IterationSec) {
			t.Fatalf("%s: CB not faster than baseline", spec.Name)
		}
		if !(cbfe.IterationSec < cb.IterationSec) {
			t.Fatalf("%s: CB+FE not faster than CB", spec.Name)
		}
		if !(full.IterationSec < cbfe.IterationSec) {
			t.Fatalf("%s: CB+FE+SC not faster than CB+FE", spec.Name)
		}
		if sp := full.Speedup(base); sp < 0.08 {
			t.Fatalf("%s: full Optimus-CC speedup %.1f%% implausibly small", spec.Name, sp*100)
		}
	}
}

func TestEpilogueOnlyKeepsMostOfTheSpeedup(t *testing.T) {
	// §5.2's claim: restricting compression to the epilogue does not
	// reduce the speedup (when comm < backward time). Compare CB with
	// epilogue-only against CB compressing everything.
	all := core.CB()
	all.EpilogueOnly = false
	for _, spec := range []cluster.GPTSpec{cluster.GPT25B, cluster.GPT83B} {
		base := paperSim(t, spec, core.Baseline())
		epi := paperSim(t, spec, core.CB())
		full := paperSim(t, spec, all)
		spEpi, spAll := epi.Speedup(base), full.Speedup(base)
		if spEpi < 0.6*spAll {
			t.Fatalf("%s: epilogue-only %.2f%% captures too little of full %.2f%%",
				spec.Name, spEpi*100, spAll*100)
		}
	}
}

func TestFuseEmbeddingReducesEmbExposure(t *testing.T) {
	cb := paperSim(t, cluster.GPT25B, core.CB())
	cbfe := paperSim(t, cluster.GPT25B, core.CBFE())
	if !(cbfe.Exposed[LabelEmb] < cb.Exposed[LabelEmb]) {
		t.Fatalf("fusing did not reduce EMB exposure: %.3f vs %.3f",
			cbfe.Exposed[LabelEmb], cb.Exposed[LabelEmb])
	}
	// §6: the reduction should be a substantial fraction (paper measures
	// ≈40% with the analytic model at 42.9%... expressed as base/fused−1;
	// as a time reduction that is ~30–50% with phase overhead included).
	red := 1 - cbfe.Exposed[LabelEmb]/cb.Exposed[LabelEmb]
	if red < 0.25 || red > 0.7 {
		t.Fatalf("EMB exposure reduction %.1f%% outside plausible band", red*100)
	}
}

func TestSelectiveStageCompressionReducesDPExposure(t *testing.T) {
	cbfe := paperSim(t, cluster.GPT83B, core.CBFE())
	full := paperSim(t, cluster.GPT83B, core.CBFESC())
	if !(full.Exposed[LabelDP] < cbfe.Exposed[LabelDP]) {
		t.Fatal("SC did not reduce DP exposure")
	}
}

func TestSCSweepMonotone(t *testing.T) {
	// Fig. 13 (left): more compressed stages → faster (with rank 128).
	prev := math.Inf(1)
	base := paperSim(t, cluster.GPT25B, core.Baseline())
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := core.CBFE()
		cfg.SelectiveStageFraction = frac
		cfg.DPRank = 128
		r := paperSim(t, cluster.GPT25B, cfg)
		if r.IterationSec > prev+1e-9 {
			t.Fatalf("SC fraction %.2f slower than smaller fraction", frac)
		}
		prev = r.IterationSec
		if frac > 0 && r.Speedup(base) <= 0 {
			t.Fatalf("SC fraction %.2f gives no speedup", frac)
		}
	}
}

func TestRank512DegradesSpeed(t *testing.T) {
	// Fig. 13 (middle): cranking DP rank to 512 hurts, because the
	// compression itself becomes the bottleneck.
	cfg128 := core.CBFE()
	cfg128.SelectiveStageFraction = 1
	cfg128.DPRank = 128
	cfg512 := cfg128
	cfg512.DPRank = 512
	r128 := paperSim(t, cluster.GPT25B, cfg128)
	r512 := paperSim(t, cluster.GPT25B, cfg512)
	if !(r512.IterationSec > r128.IterationSec) {
		t.Fatalf("rank 512 (%.3fs) should be slower than rank 128 (%.3fs)",
			r512.IterationSec, r128.IterationSec)
	}
}

func TestLargerModelLargerAbsoluteCommSavings(t *testing.T) {
	// §9.7's scalability driver: bigger models leave more absolute time
	// on the table for compression to reclaim.
	base25 := paperSim(t, cluster.GPT25B, core.Baseline())
	full25 := paperSim(t, cluster.GPT25B, core.CBFESC())
	base83 := paperSim(t, cluster.GPT83B, core.Baseline())
	full83 := paperSim(t, cluster.GPT83B, core.CBFESC())
	save25 := base25.IterationSec - full25.IterationSec
	save83 := base83.IterationSec - full83.IterationSec
	if save83 <= save25 {
		t.Fatalf("8.3B saving %.3fs not above 2.5B saving %.3fs", save83, save25)
	}
}

func TestBreakdownComponentsNonNegative(t *testing.T) {
	r := paperSim(t, cluster.GPT25B, core.Baseline())
	for _, l := range AllLabels {
		if r.Exposed[l] < -1e-9 {
			t.Fatalf("component %s negative exposure %v", l, r.Exposed[l])
		}
		if r.Busy[l] < 0 {
			t.Fatalf("component %s negative busy %v", l, r.Busy[l])
		}
	}
	// Compute must dominate the iteration (paper Fig. 3: FWD+BWD is the
	// bulk).
	if r.Exposed[LabelFwd]+r.Exposed[LabelBwd] < 0.4*r.IterationSec {
		t.Fatalf("compute exposure %.3f+%.3f suspiciously small vs %.3f",
			r.Exposed[LabelFwd], r.Exposed[LabelBwd], r.IterationSec)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := paperSim(t, cluster.GPT25B, core.CBFESC())
	b := paperSim(t, cluster.GPT25B, core.CBFESC())
	if a.IterationSec != b.IterationSec {
		t.Fatal("simulation not deterministic")
	}
}

func TestDegenerateParallelism(t *testing.T) {
	// PP=1 and DP=1 must simulate without inter-stage or DP tasks.
	sc := PaperScenario(cluster.GPT25B, core.Baseline())
	sc.Map = cluster.Mapping{TP: 8, DP: 1, PP: 4}
	sc.GlobalBatch = 128
	r, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exposed[LabelDP] != 0 {
		t.Fatalf("DP=1 should expose no DP time, got %v", r.Exposed[LabelDP])
	}
	sc.Map = cluster.Mapping{TP: 8, DP: 4, PP: 1}
	sc.GlobalBatch = 512
	sc.Spec.Layers = 52
	r, err = Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exposed[LabelInterStage] != 0 {
		t.Fatalf("PP=1 should expose no inter-stage time, got %v", r.Exposed[LabelInterStage])
	}
}

func TestFig14Configurations(t *testing.T) {
	// GPT-9.2B (80 layers), DP4 fixed: (TP8,PP4), (TP4,PP8), (TP2,PP16).
	// Full Optimus-CC must beat the baseline in every configuration
	// (paper: ≥19.2% everywhere; we require a positive speedup).
	for _, m := range []cluster.Mapping{
		{TP: 8, DP: 4, PP: 4},
		{TP: 4, DP: 4, PP: 8},
		{TP: 2, DP: 4, PP: 16},
	} {
		base := PaperScenario(cluster.GPT92B, core.Baseline())
		base.Map = m
		base.Topo.Efficiency = eff(t)
		rb, err := Simulate(base)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		full := base
		full.Cfg = core.CBFESC()
		rf, err := Simulate(full)
		if err != nil {
			t.Fatal(err)
		}
		if sp := rf.Speedup(rb); sp <= 0 {
			t.Fatalf("%v: Optimus-CC speedup %.2f%% not positive", m, sp*100)
		}
	}
}

func TestFig14CBvsSCTrend(t *testing.T) {
	// Fig. 14's trend: CB matters more with more pipeline stages; SC
	// matters more with fewer stages.
	cbGain := func(m cluster.Mapping) float64 {
		base := PaperScenario(cluster.GPT92B, core.Baseline())
		base.Map = m
		base.Topo.Efficiency = eff(t)
		rb, err := Simulate(base)
		if err != nil {
			t.Fatal(err)
		}
		cb := base
		cb.Cfg = core.CB()
		rc, err := Simulate(cb)
		if err != nil {
			t.Fatal(err)
		}
		return rb.IterationSec - rc.IterationSec
	}
	shallow := cbGain(cluster.Mapping{TP: 8, DP: 4, PP: 4})
	deep := cbGain(cluster.Mapping{TP: 2, DP: 4, PP: 16})
	if deep <= shallow {
		t.Fatalf("CB gain with PP16 (%.3fs) should exceed PP4 (%.3fs)", deep, shallow)
	}
}

func TestFig16Scalability(t *testing.T) {
	// Optimus-CC keeps a positive speedup as models scale to 175B with
	// proportionally more GPUs (TP8 fixed, DP4, PP grows).
	cases := []struct {
		spec  cluster.GPTSpec
		pp    int
		nodes int
	}{
		{cluster.GPT25B, 4, 16},
		{cluster.GPT83B, 4, 16},
		{cluster.GPT39B, 8, 32},
		{cluster.GPT175B, 16, 64},
	}
	for _, c := range cases {
		sc := PaperScenario(c.spec, core.Baseline())
		sc.Map = cluster.Mapping{TP: 8, DP: 4, PP: c.pp}
		sc.Topo.Nodes = c.nodes
		sc.Topo.Efficiency = eff(t)
		rb, err := Simulate(sc)
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		full := sc
		full.Cfg = core.CBFESC()
		rf, err := Simulate(full)
		if err != nil {
			t.Fatal(err)
		}
		if sp := rf.Speedup(rb); sp <= 0.03 {
			t.Fatalf("%s: speedup %.2f%% too small", c.spec.Name, sp*100)
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.Baseline())
	sc.Topo.Efficiency = eff(t)
	out, err := Timeline(sc, 100)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("want header + 4 device rows, got %d lines", len(lines))
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "B") {
		t.Fatal("timeline missing compute marks")
	}
	if !strings.Contains(out, "D") || !strings.Contains(out, "E") {
		t.Fatal("timeline missing DP/EMB marks")
	}
}

func TestBreakdownReportRenders(t *testing.T) {
	r := paperSim(t, cluster.GPT25B, core.Baseline())
	rep := BreakdownReport("Baseline", r)
	for _, l := range AllLabels {
		if !strings.Contains(rep, l) {
			t.Fatalf("report missing %s:\n%s", l, rep)
		}
	}
}

func TestTopKCBSlowerThanLowRank(t *testing.T) {
	// Fig. 3's Opt-CC(TopK): same element budget costs 3× the wire bytes.
	lr := paperSim(t, cluster.GPT25B, core.CB())
	tk := core.CB()
	tk.CBAlg = core.CBTopK
	rtk := paperSim(t, cluster.GPT25B, tk)
	if rtk.IterationSec < lr.IterationSec {
		t.Fatal("top-k CB should not beat low-rank CB")
	}
}
