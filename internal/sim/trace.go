package sim

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Chrome trace-event export: one simulated iteration rendered as a JSON
// trace loadable in chrome://tracing or Perfetto, with one track per
// device, link, and NIC. This is the production-tooling counterpart of
// the Fig. 4 ASCII diagram. The record layout lives in internal/obs so
// the executed-run trace (obs.WriteRecorderTrace) shares the exact same
// encoder and track conventions; this file only maps the solved task
// graph onto it.

// PredictedTracePID is the pid the simulator's trace carries. Executed
// traces use obs.ExecutedTracePID, so a merged file shows the two as
// separate process groups.
const PredictedTracePID = 1

// WriteTrace simulates the scenario and writes the task timeline as a
// Chrome trace (JSON array) to w.
func WriteTrace(s Scenario, w io.Writer) error {
	g, err := BuildGraph(s, nil)
	if err != nil {
		return err
	}
	if _, err := g.Solve(); err != nil {
		return err
	}
	enc := obs.NewTraceEncoder(PredictedTracePID)
	// Deterministic track order: devices first, then links/NICs as they
	// appear in task insertion order.
	for st := 0; st < s.Map.PP; st++ {
		enc.Track(fmt.Sprintf("dev%d", st))
	}
	for _, t := range g.Tasks() {
		res := t.Resource
		if res == "" {
			res = "unbound"
		}
		if t.Duration <= 0 {
			continue
		}
		enc.Event(t.ID, t.Label, t.Start()*1e6, t.Duration*1e6, enc.Track(res))
	}
	return enc.Flush(w)
}

// TraceSummary returns per-resource busy/idle statistics for one
// simulated iteration — the utilization view the paper's breakdown bars
// aggregate.
type TraceSummary struct {
	Makespan float64
	// Utilization maps each resource to busy-time / makespan.
	Utilization map[string]float64
}

// Summarize simulates and reports utilization.
func Summarize(s Scenario) (TraceSummary, error) {
	g, err := BuildGraph(s, nil)
	if err != nil {
		return TraceSummary{}, err
	}
	mk, err := g.Solve()
	if err != nil {
		return TraceSummary{}, err
	}
	out := TraceSummary{Makespan: mk, Utilization: map[string]float64{}}
	for res, busy := range g.ResourceBusy() {
		out.Utilization[res] = busy / mk
	}
	return out, nil
}
