package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: one simulated iteration rendered as a JSON
// trace loadable in chrome://tracing or Perfetto, with one track per
// device, link, and NIC. This is the production-tooling counterpart of
// the Fig. 4 ASCII diagram.

// traceEvent is the Trace Event Format "complete" (ph=X) record.
type traceEvent struct {
	Name     string  `json:"name"`
	Category string  `json:"cat"`
	Phase    string  `json:"ph"`
	TsMicros float64 `json:"ts"`
	DurUs    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
}

// traceMeta names a track.
type traceMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// WriteTrace simulates the scenario and writes the task timeline as a
// Chrome trace (JSON array) to w.
func WriteTrace(s Scenario, w io.Writer) error {
	g, err := BuildGraph(s, nil)
	if err != nil {
		return err
	}
	if _, err := g.Solve(); err != nil {
		return err
	}
	var records []any
	tids := map[string]int{}
	tid := func(resource string) int {
		if id, ok := tids[resource]; ok {
			return id
		}
		id := len(tids) + 1
		tids[resource] = id
		records = append(records, traceMeta{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   id,
			Args:  map[string]any{"name": resource},
		})
		return id
	}
	// Deterministic track order: devices first, then links/NICs as they
	// appear in task insertion order.
	for st := 0; st < s.Map.PP; st++ {
		tid(fmt.Sprintf("dev%d", st))
	}
	for _, t := range g.Tasks() {
		res := t.Resource
		if res == "" {
			res = "unbound"
		}
		if t.Duration <= 0 {
			continue
		}
		records = append(records, traceEvent{
			Name:     t.ID,
			Category: t.Label,
			Phase:    "X",
			TsMicros: t.Start() * 1e6,
			DurUs:    t.Duration * 1e6,
			PID:      1,
			TID:      tid(res),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// TraceSummary returns per-resource busy/idle statistics for one
// simulated iteration — the utilization view the paper's breakdown bars
// aggregate.
type TraceSummary struct {
	Makespan float64
	// Utilization maps each resource to busy-time / makespan.
	Utilization map[string]float64
}

// Summarize simulates and reports utilization.
func Summarize(s Scenario) (TraceSummary, error) {
	g, err := BuildGraph(s, nil)
	if err != nil {
		return TraceSummary{}, err
	}
	mk, err := g.Solve()
	if err != nil {
		return TraceSummary{}, err
	}
	out := TraceSummary{Makespan: mk, Utilization: map[string]float64{}}
	for res, busy := range g.ResourceBusy() {
		out.Utilization[res] = busy / mk
	}
	return out, nil
}
