package sim

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/simnet"
)

// Overlap model for bucketed DP synchronization. The trainer issues each
// stage's gradient buckets as soon as that stage's gradients are final —
// while stages closer to the pipeline input are still inside the
// backward pass — so a stage's DP communication is hidden by exactly the
// backward compute that remains after its own last backward. The model
// here derives that from the compiled bucket schedule and the 1F1B
// structure instead of assuming a scalar overlap factor: for stage s,
//
//	exposed(s) = max(0, comm(s) − Σ_{j<s} bwd(j))
//
// because after stage s's final backward, the last micro-batch's
// backward wave still has to traverse stages s−1 … 0 in sequence (the
// chain the DAG's critical path ends on). This is the quantity the
// per-class scalar SteadyOverlap could never express for DP-sync — it is
// now computed, per stage and per link class, from the same plan the
// executable trainer runs.

// StageOverlap is one stage's DP-sync overlap prediction.
type StageOverlap struct {
	Stage int
	// Buckets is the stage's bucket count in the compiled schedule.
	Buckets int
	// CommSec is the stage's total DP-sync time (collective overhead,
	// wire time over the bucketed volume, codec where §7 compresses).
	CommSec float64
	// HideSec is the backward compute remaining after the stage's last
	// backward — the window the communication can hide under.
	HideSec float64
	// ExposedSec = max(0, CommSec − HideSec).
	ExposedSec float64
}

// DPOverlap is the schedule-derived DP-sync overlap prediction for one
// scenario.
type DPOverlap struct {
	Stages []StageOverlap
	// CommSec is Σ per-stage comm; ExposedSec is the iteration-time
	// impact: stages communicate on disjoint NICs, so their exposed
	// tails run concurrently and the iteration pays only the maximum.
	CommSec    float64
	ExposedSec float64
	// EmbExposedSec is the §6 phase, which runs after every DP handle
	// has drained and is never hidden (emb link class).
	EmbExposedSec float64
}

// PredictDPOverlap computes the bucketed DP-sync overlap model for s.
func PredictDPOverlap(s Scenario) (DPOverlap, error) {
	if err := s.Validate(); err != nil {
		return DPOverlap{}, err
	}
	pl, err := s.Plan()
	if err != nil {
		return DPOverlap{}, err
	}
	d := computeDurations(s, pl)
	var out DPOverlap
	var hide float64 // Σ bwd of stages before this one, built ascending
	for st := 0; st < s.Map.PP; st++ {
		so := StageOverlap{
			Stage:      st,
			Buckets:    pl.BucketCount(st),
			CommSec:    d.dp[st],
			HideSec:    hide,
			ExposedSec: simnet.ExposedCommTime(d.dp[st], hide),
		}
		out.Stages = append(out.Stages, so)
		out.CommSec += so.CommSec
		if so.ExposedSec > out.ExposedSec {
			out.ExposedSec = so.ExposedSec
		}
		hide += d.bwd[st]
	}
	for _, phase := range d.embPhase {
		out.EmbExposedSec += phase
	}
	return out, nil
}

// PredictDPBucketBytes prices the aggregate executed wire volume of one
// bucketed DP synchronization from a compiled plan: per (stage, bucket),
// the bytes the collective runtime's ring moves summed over every
// member's sends. A dense channel of V bytes costs 2·V·(D−1) in
// aggregate (reduce-scatter + all-gather, Thakur); a channel the §7
// selection compresses ships each rank's payload D−1 hops around the
// ring, (D−1)·D·w aggregate for a shape-determined payload of w bytes.
//
// payloadBytes reports channel (stage, ch)'s compressed payload size, or
// 0 where the channel stays dense (incompressible shapes — vectors —
// remain dense even on compressed stages, which only the caller, who
// knows the shapes, can decide). The result reconciles exactly with the
// trainer's ExecutedDPBuckets, which the crosscheck tests pin.
func PredictDPBucketBytes(p *plan.Plan, payloadBytes func(stage, ch int) int64) ([][]int64, error) {
	if !p.HasBuckets() {
		return nil, fmt.Errorf("sim: plan carries no bucket schedule")
	}
	g := p.Grid()
	d := int64(g.DPGroups)
	out := make([][]int64, g.Stages)
	for st := 0; st < g.Stages; st++ {
		sizes := g.StageGradBytes[st]
		buckets := p.Buckets(st)
		out[st] = make([]int64, len(buckets))
		for bi, b := range buckets {
			var wire int64
			for _, ch := range b.Channels {
				if w := payloadBytes(st, ch); p.DPCompressed(st) && w > 0 {
					wire += (d - 1) * d * w
				} else {
					wire += 2 * sizes[ch] * (d - 1)
				}
			}
			out[st][bi] = wire
		}
	}
	return out, nil
}
