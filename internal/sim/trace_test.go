package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// TestWriteTraceGolden pins the trace output byte-for-byte against a
// file generated before the encoder moved to internal/obs: the shared
// encoder must reproduce the simulator's historical record layout
// exactly (field order, meta interleaving, tid assignment, trailing
// newline), or existing Perfetto tooling and diffs silently shift.
func TestWriteTraceGolden(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.CBFESC())
	sc.Topo.Efficiency = 0.35
	var buf bytes.Buffer
	if err := WriteTrace(sc, &buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/trace_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output drifted from golden (got %d bytes, want %d); regenerate testdata/trace_golden.json only if the format change is intentional",
			buf.Len(), len(want))
	}
}

func TestWriteTraceValidJSON(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.CBFESC())
	sc.Topo.Efficiency = eff(t)
	var buf bytes.Buffer
	if err := WriteTrace(sc, &buf); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var events, metas int
	cats := map[string]bool{}
	for _, r := range records {
		switch r["ph"] {
		case "X":
			events++
			if cat, ok := r["cat"].(string); ok {
				cats[cat] = true
			}
			if r["dur"].(float64) <= 0 {
				t.Fatal("zero-duration event emitted")
			}
		case "M":
			metas++
		}
	}
	if events < 100 {
		t.Fatalf("only %d events — expected a full iteration", events)
	}
	if metas < 4 {
		t.Fatalf("only %d track names", metas)
	}
	for _, want := range []string{LabelFwd, LabelBwd, LabelInterStage, LabelDP, LabelEmb} {
		if !cats[want] {
			t.Fatalf("trace missing category %s", want)
		}
	}
}

func TestSummarizeUtilization(t *testing.T) {
	sc := PaperScenario(cluster.GPT25B, core.Baseline())
	sc.Topo.Efficiency = eff(t)
	sum, err := Summarize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	for res, u := range sum.Utilization {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("resource %s utilization %v outside [0,1]", res, u)
		}
	}
	// Devices must be the busiest resources in a compute-dominated run.
	if sum.Utilization["dev0"] < 0.3 {
		t.Fatalf("dev0 utilization %v suspiciously low", sum.Utilization["dev0"])
	}
}
