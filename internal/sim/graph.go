package sim

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/simnet"
)

// durations bundles all task durations derived from a scenario.
type durations struct {
	fwd []float64 // per stage, per micro-batch
	bwd []float64
	// Inter-stage transfer components. Transfers are wire time; codec is
	// the compression+decompression compute, which overlapping cannot
	// hide.
	sendFwdXfer    float64 // dense forward transfer
	sendBwdXfer    float64 // dense backward transfer
	sendBwdCmpXfer float64 // compressed backward transfer (wire only)
	sendBwdCodec   float64 // compress+decompress time per backward send
	dp             []float64
	embPhase       []float64 // embedding tasks in order (baseline: EMB DP, EMB Sync; fused: one)

	// Wire-volume byproducts of the duration formulas, recorded so the
	// batch evaluator can report per-candidate volumes without re-deriving
	// the pricing (the same quantities the transfer times above are
	// computed from).
	boundaryBytes    int64   // dense inter-stage payload (activation / activation-gradient)
	cmpBoundaryBytes int64   // compressed backward payload (== boundaryBytes when CB is off)
	dpShardBytes     []int64 // per-stage dense DP-sync shard
	dpWireBytes      []int64 // per-stage per-rank DP payload after §7 compression (== shard when dense)
	embBytes         int64   // per-rank embedding-table shard
}

// zeroSet marks labels whose tasks get zero duration (the §3 CPI-stack
// "turn off a component" methodology).
type zeroSet map[string]bool

func (z zeroSet) dur(label string, d float64) float64 {
	if z[label] {
		return 0
	}
	return d
}

// computeDurations derives every task duration from the scenario and
// its compiled plan (which supplies the §7 stage selection and the §6
// embedding strategy; the per-edge §5.2 placement is applied by
// BuildGraph from the same plan).
func computeDurations(s Scenario, pl *plan.Plan) durations {
	var d durations
	p := s.Map.PP
	tokens := float64(s.MicroBatch * s.Spec.SeqLen)
	eff := s.Topo.EffectiveFLOPs() * float64(s.Map.TP)

	actBytes := s.Spec.ActivationBytes(s.MicroBatch, 2)
	tpAllReduce := s.Topo.Intra.AllReduceTime(actBytes, s.Map.TP)

	d.fwd = make([]float64, p)
	d.bwd = make([]float64, p)
	for st := 0; st < p; st++ {
		flops := float64(s.LayersPerStage()) * s.Spec.FwdFLOPsPerLayerPerToken() * tokens
		if st == p-1 {
			// Output head: logits = h·Embᵀ, 2·tokens·H·V FLOPs.
			flops += 2 * tokens * float64(s.Spec.Hidden) * float64(s.Spec.VocabSize)
		}
		tp := float64(s.LayersPerStage()) * 2 * tpAllReduce
		d.fwd[st] = flops/eff + tp
		// Backward is ≈2× forward compute, with its own pair of TP
		// all-reduces per layer.
		d.bwd[st] = 2*flops/eff + 2*tp
	}

	// Inter-stage p2p transfers.
	p2pLink := simnet.Link{
		Name:         "p2p",
		BandwidthBps: s.Topo.Inter.BandwidthBps * s.Comm.P2PEff,
		LatencySec:   s.Topo.Inter.LatencySec,
	}
	d.sendFwdXfer = p2pLink.TransferTime(actBytes)
	d.sendBwdXfer = p2pLink.TransferTime(actBytes)
	d.sendBwdCmpXfer = d.sendBwdXfer
	d.boundaryBytes = actBytes
	d.cmpBoundaryBytes = actBytes
	if s.Cfg.CompressBackprop {
		n := s.MicroBatch * s.Spec.SeqLen
		m := s.Spec.Hidden
		wire := core.LowRankWireBytes(n, m, s.Cfg.CBRank, 2)
		d.sendBwdCodec = s.Cost.CompressTime(n, m, s.Cfg.CBRank) + s.Cost.DecompressTime(n, m, s.Cfg.CBRank)
		switch {
		case pl.CBSparse():
			// Sparse families ship (value, index) pairs: 3× the low-rank
			// payload for the same element budget (§2.3's gather/index
			// overhead). Their codec is priced nnz-aware: a selection pass
			// plus per-kept gather to compress, a k-element scatter to
			// decompress — no orthogonalization term, so the codec tracks
			// the kept-element count rather than the dense shape.
			wire *= 3
			k := int(float64(n) * float64(m) * pl.CBSpec(0, 1).Fraction)
			if k < 1 {
				k = 1
			}
			d.sendBwdCodec = s.Cost.SparseCompressTime(n, m, k) + s.Cost.SparseDecompressTime(k)
		case pl.CBFamily() != "powersgd":
			// Quantizer families have a shape-determined fixed ratio; ask
			// the registry-built compressor itself (Compile trial-built
			// the spec, so this cannot fail). Their element-wise codecs
			// are negligible next to PowerSGD's orthogonalization (§9.6),
			// so no codec term.
			c := compress.MustBuild(pl.CBSpec(0, 1))
			wire = int64(float64(n) * float64(m) * 2 / c.Ratio(n, m))
			d.sendBwdCodec = 0
		}
		d.sendBwdCmpXfer = p2pLink.TransferTime(wire)
		d.cmpBoundaryBytes = wire
	}

	// Data-parallel all-reduce per stage. Every GPU in a node runs its own
	// ring concurrently, sharing the NIC.
	dpLink := simnet.Link{
		Name:         "dp",
		BandwidthBps: s.Topo.Inter.BandwidthBps * s.Comm.DPEff / float64(s.Topo.GPUsPerNode),
		LatencySec:   s.Topo.Inter.LatencySec,
	}
	d.dp = make([]float64, p)
	d.dpShardBytes = make([]int64, p)
	d.dpWireBytes = make([]int64, p)
	for st := 0; st < p; st++ {
		shardBytes := s.StageParams(st) / int64(s.Map.TP) * 2
		d.dpShardBytes[st] = shardBytes
		d.dpWireBytes[st] = shardBytes
		if s.Map.DP <= 1 {
			d.dp[st] = 0
			continue
		}
		if pl.DPCompressed(st) {
			gr, gc := s.Spec.LayerGradShape()
			var frac, codec float64
			if pl.DPFamily() == "powersgd" {
				frac = float64(core.LowRankWireBytes(gr, gc, s.Cfg.DPRank, 2)) /
					float64(int64(gr)*int64(gc)*2)
				codec = float64(s.LayersPerStage()) *
					(s.Cost.CompressTime(gr, gc/s.Map.TP, s.Cfg.DPRank) +
						s.Cost.DecompressTime(gr, gc/s.Map.TP, s.Cfg.DPRank))
			} else {
				// Non-low-rank families: the family's own fixed ratio on
				// the layer-gradient shape (Compile trial-built the spec,
				// so this cannot fail); element-wise codecs priced 0.
				frac = 1 / compress.MustBuild(pl.DPSpec(st, 0, 0)).Ratio(gr, gc)
			}
			wire := int64(float64(shardBytes) * frac)
			d.dpWireBytes[st] = wire
			d.dp[st] = s.Comm.CollOverheadSec + dpLink.AllReduceTime(wire, s.Map.DP) + codec
		} else {
			d.dp[st] = s.Comm.CollOverheadSec + dpLink.AllReduceTime(shardBytes, s.Map.DP)
		}
	}

	// Embedding synchronization per the plan's §6 strategy. The table is
	// vocab-sharded across TP.
	embBytes := s.Spec.EmbeddingParams() / int64(s.Map.TP) * 2
	d.embBytes = embBytes
	switch pl.Embedding() {
	case plan.EmbNone:
		// Single rank: no phase.
	case plan.EmbDPOnly:
		// First and last stage coincide: only the DP all-reduce remains.
		d.embPhase = []float64{s.Comm.EmbPhaseOverheadSec + dpLink.AllReduceTime(embBytes, s.Map.DP)}
	case plan.EmbFused:
		d.embPhase = []float64{
			s.Comm.EmbPhaseOverheadSec + dpLink.AllReduceTime(embBytes, 2*s.Map.DP),
		}
	case plan.EmbTwoPhase:
		dpPart := dpLink.AllReduceTime(embBytes, s.Map.DP)
		if s.Map.DP <= 1 {
			dpPart = 0
		}
		d.embPhase = []float64{
			s.Comm.EmbPhaseOverheadSec + dpPart,
			s.Comm.EmbPhaseOverheadSec + dpLink.AllReduceTime(embBytes, 2),
		}
	}
	return d
}

// BuildGraph assembles one training iteration as a task graph. zero lists
// component labels whose durations are forced to zero (for breakdowns).
func BuildGraph(s Scenario, zero zeroSet) (*simnet.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := s.Map.PP
	m := s.MicroBatches()
	pl, err := s.Plan()
	if err != nil {
		return nil, err
	}
	sched, err := pipeline.OneFOneB(p, m)
	if err != nil {
		return nil, err
	}
	d := computeDurations(s, pl)
	g := simnet.NewGraph()

	dev := func(st int) string { return fmt.Sprintf("dev%d", st) }
	fid := func(st, mi int) string { return fmt.Sprintf("F/%d/%d", st, mi) }
	bid := func(st, mi int) string { return fmt.Sprintf("B/%d/%d", st, mi) }
	sfid := func(st, mi int) string { return fmt.Sprintf("SF/%d/%d", st, mi) }
	sbid := func(st, mi int) string { return fmt.Sprintf("SB/%d/%d", st, mi) }

	// Compute tasks in per-device schedule order (fixes resource order).
	for st := 0; st < p; st++ {
		for _, op := range sched.PerStage[st] {
			switch op.Kind {
			case pipeline.Forward:
				g.Add(fid(st, op.Micro), LabelFwd, zero.dur(LabelFwd, d.fwd[st]), dev(st))
			case pipeline.Backward:
				g.Add(bid(st, op.Micro), LabelBwd, zero.dur(LabelBwd, d.bwd[st]), dev(st))
			}
		}
	}
	// Inter-stage transfers: forward sends stage st → st+1, backward sends
	// stage st → st−1. Each boundary/direction is its own link resource.
	// Steady-phase transfers are partially hidden by Megatron's async
	// send/recv (CommParams.SteadyOverlap); warmup forwards (pipeline
	// fill) and epilogue backwards (drain) are fully exposed.
	hide := 1 - s.Comm.SteadyOverlap
	fwdPhase := make(map[[2]int]pipeline.Phase)
	for st := 0; st < p; st++ {
		for _, op := range sched.PerStage[st] {
			if op.Kind == pipeline.Forward {
				fwdPhase[[2]int{st, op.Micro}] = op.Phase
			}
		}
	}
	for st := 0; st < p-1; st++ {
		for mi := 0; mi < m; mi++ {
			dur := d.sendFwdXfer
			if fwdPhase[[2]int{st, mi}] != pipeline.Warmup {
				dur *= hide
			}
			t := g.Add(sfid(st, mi), LabelInterStage, zero.dur(LabelInterStage, dur),
				fmt.Sprintf("linkF%d", st))
			g.Dep(g.Get(fid(st, mi)), t)
			g.Dep(t, g.Get(fid(st+1, mi)))
		}
	}
	for st := 1; st < p; st++ {
		for mi := 0; mi < m; mi++ {
			epilogue := sched.IsEpilogueBackward(st, mi)
			compressed := pl.CompressBackward(st, mi)
			xfer := d.sendBwdXfer
			var codec float64
			if compressed {
				xfer = d.sendBwdCmpXfer
				codec = d.sendBwdCodec
			}
			if !epilogue {
				xfer *= hide
			}
			t := g.Add(sbid(st, mi), LabelInterStage, zero.dur(LabelInterStage, xfer+codec),
				fmt.Sprintf("linkB%d", st))
			g.Dep(g.Get(bid(st, mi)), t)
			g.Dep(t, g.Get(bid(st-1, mi)))
		}
	}
	// Data-parallel all-reduce per stage, after the stage's last backward.
	for st := 0; st < p; st++ {
		t := g.Add(fmt.Sprintf("DP/%d", st), LabelDP, zero.dur(LabelDP, d.dp[st]),
			fmt.Sprintf("nic%d", st))
		g.Dep(g.Get(bid(st, m-1)), t)
	}
	// Embedding synchronization: baseline is two chained phases (EMB DP
	// then EMB Sync, Fig. 4a); fused is a single phase (§6). Both involve
	// the first and last stages' NICs, after those stages' DP traffic.
	var prev *simnet.Task
	for i, dur := range d.embPhase {
		t := g.Add(fmt.Sprintf("EMB/%d", i), LabelEmb, zero.dur(LabelEmb, dur), "nicEmb")
		g.Dep(g.Get(bid(0, m-1)), t)
		g.Dep(g.Get(bid(p-1, m-1)), t)
		g.Dep(g.Get("DP/0"), t)
		g.Dep(g.Get(fmt.Sprintf("DP/%d", p-1)), t)
		if prev != nil {
			g.Dep(prev, t)
		}
		prev = t
	}
	return g, nil
}

// Simulate resolves one iteration and projects total training time.
func Simulate(s Scenario) (Result, error) {
	g, err := BuildGraph(s, nil)
	if err != nil {
		return Result{}, err
	}
	iter, err := g.Solve()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		IterationSec: iter,
		Days:         iter * float64(s.Iterations) / 86400,
		Exposed:      make(map[string]float64, len(AllLabels)),
		Busy:         g.TotalByLabel(),
	}
	for _, label := range AllLabels {
		g2, err := BuildGraph(s, zeroSet{label: true})
		if err != nil {
			return Result{}, err
		}
		mk, err := g2.Solve()
		if err != nil {
			return Result{}, err
		}
		res.Exposed[label] = iter - mk
	}
	return res, nil
}

// Calibrate fits the topology's compute efficiency so the scenario's
// iteration time matches targetIterationSec (bisection; communication
// times do not depend on the efficiency, compute scales as 1/eff).
func Calibrate(s Scenario, targetIterationSec float64) (float64, error) {
	lo, hi := 0.001, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		s.Topo.Efficiency = mid
		r, err := Simulate(s)
		if err != nil {
			return 0, err
		}
		if r.IterationSec > targetIterationSec {
			lo = mid // too slow → raise efficiency
		} else {
			hi = mid
		}
	}
	s.Topo.Efficiency = (lo + hi) / 2
	r, err := Simulate(s)
	if err != nil {
		return 0, err
	}
	if diff := r.IterationSec - targetIterationSec; diff > 0.05*targetIterationSec || diff < -0.05*targetIterationSec {
		return 0, fmt.Errorf("sim: calibration failed: got %.3fs want %.3fs (comm floor too high?)",
			r.IterationSec, targetIterationSec)
	}
	return (lo + hi) / 2, nil
}
