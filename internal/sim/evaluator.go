package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/simnet"
)

// Evaluator prices many Optimus-CC configurations on one frozen task
// graph. The graph's structure — which tasks exist, their dependencies,
// the per-device/per-link resource chains — is fixed by the parallelism
// grid (stages × micro-batches); only the task durations vary with the
// configuration. BuildGraph+Solve re-derives that structure for every
// call, which is fine for a handful of scenarios but not for a
// plan-space search pricing thousands of candidates. NewEvaluator
// builds the graph once, freezes its topological order
// (simnet.Sequence), and records per-task metadata (kind, stage,
// micro-batch, warmup/epilogue phase); Price then assigns durations
// from computeDurations — the exact formulas BuildGraph uses — and
// re-solves in a single allocation-free pass per breakdown component.
//
// Structural superset: the skeleton is built under a dense,
// two-phase-embedding configuration. A fused-§6 candidate prices the
// second EMB task at zero duration, which leaves the makespan and the
// breakdown re-solves identical to the graph BuildGraph would have
// produced for it (the extra zero task finishes exactly when its
// predecessor does). TestEvaluatorMatchesSimulate pins this equivalence
// against full Simulate across every compressor family.
//
// Concurrency contract: an Evaluator is single-goroutine. Price mutates
// the frozen sequence in place (task durations, the solver's scratch),
// so concurrent Price calls on one Evaluator race. Distinct Evaluators
// built from the same base Scenario share no mutable state — each
// NewEvaluator call builds its own graph, sequence, and metadata — so
// running one Evaluator per goroutine is safe and bit-identical to a
// serial run (pinned by TestEvaluatorsDoNotAliasState under -race).
// internal/whatif pools Evaluators behind exactly this contract.
type Evaluator struct {
	base  Scenario
	seq   *simnet.Sequence
	tasks []*simnet.Task
	meta  []taskMeta
}

type taskKind int8

const (
	taskFwd taskKind = iota
	taskBwd
	taskSendFwd
	taskSendBwd
	taskDP
	taskEmb
)

type taskMeta struct {
	kind     taskKind
	stage    int // EMB tasks: the phase index
	micro    int
	warmup   bool // forward send of the pipeline-fill phase (never hidden)
	epilogue bool // backward send of the drain phase (never hidden)
}

// Estimate is one candidate's predicted cost: iteration time, the
// exposed (CPI-stack) contribution of each communication component, and
// the per-iteration wire volumes at simulator scale. The JSON encoding
// is the wire format of the what-if service's /v1/price endpoint and of
// optcc-sim -price, so the two can be diffed bit-for-bit.
type Estimate struct {
	IterationSec float64 `json:"iteration_sec"`
	// Exposed contributions: iteration time minus the makespan with that
	// component's tasks priced at zero (§3's methodology, re-solved on
	// the frozen sequence).
	ExposedPPSec  float64 `json:"exposed_pp_sec"`
	ExposedDPSec  float64 `json:"exposed_dp_sec"`
	ExposedEmbSec float64 `json:"exposed_emb_sec"`
	// PPBytesPerReplica is one replica's inter-stage wire volume per
	// iteration (PredictInterStageFromPlan over the candidate's plan).
	PPBytesPerReplica int64 `json:"pp_bytes_per_replica"`
	// DPBytes is the aggregate DP-sync ring volume per iteration across
	// all stages (Thakur closed forms on the stage shards; the
	// per-channel bucket-resolved prediction for executed runs is
	// PredictDPBucketBytes, which the trainer-scale crosschecks pin).
	DPBytes int64 `json:"dp_bytes"`
	// EmbBytes is the aggregate §6 embedding-sync volume per iteration.
	EmbBytes int64 `json:"emb_bytes"`
	// Buckets is the compiled plan's per-stage DP-sync bucket count
	// (nil when the grid carries no gradient sizes). The analytic cost
	// model prices DP sync from total volume, so the bucket budget is
	// cost-neutral here — searches must tie-break on it explicitly.
	// Shared when an Estimate comes out of the what-if cache: read-only.
	Buckets []int `json:"buckets,omitempty"`
}

// NewEvaluator validates the scenario, builds the skeleton graph, and
// freezes it. The scenario's Cfg and BucketBytes are templates only —
// Price substitutes the candidate's.
func NewEvaluator(base Scenario) (*Evaluator, error) {
	skel := base
	skel.Cfg = core.Config{Seed: 1} // dense two-phase skeleton (structural superset)
	skel.BucketBytes = 0
	g, err := BuildGraph(skel, nil)
	if err != nil {
		return nil, err
	}
	sched, err := pipeline.OneFOneB(skel.Map.PP, skel.MicroBatches())
	if err != nil {
		return nil, err
	}
	fwdWarmup := make(map[[2]int]bool)
	for st := 0; st < skel.Map.PP; st++ {
		for _, op := range sched.PerStage[st] {
			if op.Kind == pipeline.Forward {
				fwdWarmup[[2]int{st, op.Micro}] = op.Phase == pipeline.Warmup
			}
		}
	}
	seq, err := g.Freeze()
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{base: base, seq: seq, tasks: seq.Tasks()}
	ev.meta = make([]taskMeta, len(ev.tasks))
	for i, t := range ev.tasks {
		m, err := parseTaskID(t.ID)
		if err != nil {
			return nil, err
		}
		switch m.kind {
		case taskSendFwd:
			m.warmup = fwdWarmup[[2]int{m.stage, m.micro}]
		case taskSendBwd:
			m.epilogue = sched.IsEpilogueBackward(m.stage, m.micro)
		}
		ev.meta[i] = m
	}
	return ev, nil
}

// parseTaskID decodes BuildGraph's task-ID scheme (F/st/mi, B/st/mi,
// SF/st/mi, SB/st/mi, DP/st, EMB/i).
func parseTaskID(id string) (taskMeta, error) {
	parts := strings.Split(id, "/")
	atoi := func(s string) int {
		n, _ := strconv.Atoi(s)
		return n
	}
	switch {
	case len(parts) == 3 && parts[0] == "F":
		return taskMeta{kind: taskFwd, stage: atoi(parts[1]), micro: atoi(parts[2])}, nil
	case len(parts) == 3 && parts[0] == "B":
		return taskMeta{kind: taskBwd, stage: atoi(parts[1]), micro: atoi(parts[2])}, nil
	case len(parts) == 3 && parts[0] == "SF":
		return taskMeta{kind: taskSendFwd, stage: atoi(parts[1]), micro: atoi(parts[2])}, nil
	case len(parts) == 3 && parts[0] == "SB":
		return taskMeta{kind: taskSendBwd, stage: atoi(parts[1]), micro: atoi(parts[2])}, nil
	case len(parts) == 2 && parts[0] == "DP":
		return taskMeta{kind: taskDP, stage: atoi(parts[1])}, nil
	case len(parts) == 2 && parts[0] == "EMB":
		return taskMeta{kind: taskEmb, stage: atoi(parts[1])}, nil
	}
	return taskMeta{}, fmt.Errorf("sim: unrecognized task id %q", id)
}

// Scenario returns the evaluator's base scenario (Cfg/BucketBytes are
// overridden per Price call).
func (ev *Evaluator) Scenario() Scenario { return ev.base }

// Plan compiles the candidate's plan on the evaluator's grid — the same
// plan Price prices and the trainer would execute.
func (ev *Evaluator) Plan(cfg core.Config, bucketBytes int64) (*plan.Plan, error) {
	s := ev.base
	s.Cfg = cfg
	if bucketBytes > 0 {
		s.BucketBytes = bucketBytes
	}
	return s.Plan()
}

// Price evaluates one candidate configuration: compile its plan, assign
// the plan-derived durations onto the frozen sequence, and re-solve for
// the iteration time and the exposed-communication breakdown. An
// invalid configuration (unknown family, bad rank) errors before any
// pricing, exactly like plan.Compile.
func (ev *Evaluator) Price(cfg core.Config, bucketBytes int64) (Estimate, error) {
	s := ev.base
	s.Cfg = cfg
	if bucketBytes > 0 {
		s.BucketBytes = bucketBytes
	}
	if err := s.Validate(); err != nil {
		return Estimate{}, err
	}
	pl, err := s.Plan()
	if err != nil {
		return Estimate{}, err
	}
	d := computeDurations(s, pl)
	hide := 1 - s.Comm.SteadyOverlap
	for i, t := range ev.tasks {
		m := ev.meta[i]
		switch m.kind {
		case taskFwd:
			t.Duration = d.fwd[m.stage]
		case taskBwd:
			t.Duration = d.bwd[m.stage]
		case taskSendFwd:
			dur := d.sendFwdXfer
			if !m.warmup {
				dur *= hide
			}
			t.Duration = dur
		case taskSendBwd:
			xfer := d.sendBwdXfer
			var codec float64
			if pl.CompressBackward(m.stage, m.micro) {
				xfer = d.sendBwdCmpXfer
				codec = d.sendBwdCodec
			}
			if !m.epilogue {
				xfer *= hide
			}
			t.Duration = xfer + codec
		case taskDP:
			t.Duration = d.dp[m.stage]
		case taskEmb:
			if m.stage < len(d.embPhase) {
				t.Duration = d.embPhase[m.stage]
			} else {
				t.Duration = 0 // fused/dp-only candidate on the two-phase skeleton
			}
		}
	}
	est := Estimate{IterationSec: ev.seq.Makespan(nil)}
	est.ExposedPPSec = est.IterationSec - ev.seq.MakespanWithout(LabelInterStage)
	est.ExposedDPSec = est.IterationSec - ev.seq.MakespanWithout(LabelDP)
	est.ExposedEmbSec = est.IterationSec - ev.seq.MakespanWithout(LabelEmb)

	est.PPBytesPerReplica = PredictInterStageFromPlan(pl, d.boundaryBytes, d.cmpBoundaryBytes).Bytes
	D := int64(s.Map.DP)
	if D > 1 {
		for st := 0; st < s.Map.PP; st++ {
			if pl.DPCompressed(st) {
				est.DPBytes += (D - 1) * D * d.dpWireBytes[st]
			} else {
				est.DPBytes += 2 * d.dpShardBytes[st] * (D - 1)
			}
		}
	}
	switch pl.Embedding() {
	case plan.EmbDPOnly:
		est.EmbBytes = 2 * d.embBytes * (D - 1)
	case plan.EmbFused:
		est.EmbBytes = 2 * d.embBytes * (2*D - 1)
	case plan.EmbTwoPhase:
		if D > 1 {
			est.EmbBytes += 2 * 2 * d.embBytes * (D - 1)
		}
		est.EmbBytes += D * 2 * d.embBytes
	}
	if pl.HasBuckets() {
		est.Buckets = make([]int, s.Map.PP)
		for st := range est.Buckets {
			est.Buckets[st] = pl.BucketCount(st)
		}
	}
	return est, nil
}
