package sim

import (
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/simnet"
)

// InterStageTraffic is the analytic prediction of one DP replica's
// pipeline-parallel wire traffic for one training iteration: the number
// of point-to-point messages (= latency-bearing steps) and the total
// bytes across all stages−1 boundaries, forward and backward directions
// both counted.
//
// denseBytes is the dense wire size of one boundary activation (and
// activation-gradient — both are micro-batch×hidden). cmpBytes is the
// compressed backward payload size, charged on exactly the micro-batches
// compressed backpropagation selects: all of them, or only the 1F1B
// epilogue drain when EpilogueOnly is set (§5.2) — the same
// classification the executable trainer applies, so executed and
// predicted volume must agree to the byte (pinned by cross-check tests
// and the `pipeline` experiment).
type InterStageTraffic struct {
	Bytes    int64
	Messages int64
	Steps    int64
}

// PredictInterStage computes the per-replica prediction for a
// stages-deep pipeline running micros micro-batches under cfg.
func PredictInterStage(cfg core.Config, stages, micros int, denseBytes, cmpBytes int64) (InterStageTraffic, error) {
	var tr InterStageTraffic
	if stages <= 1 {
		return tr, nil
	}
	sched, err := pipeline.OneFOneB(stages, micros)
	if err != nil {
		return tr, err
	}
	tr.Messages = int64(simnet.InterStageMessages(stages, micros))
	tr.Steps = tr.Messages
	// Forward activations are never compressed (§5).
	tr.Bytes = int64(stages-1) * int64(micros) * denseBytes
	for s := 1; s < stages; s++ {
		for mi := 0; mi < micros; mi++ {
			if cfg.CompressBackprop && (!cfg.EpilogueOnly || sched.IsEpilogueBackward(s, mi)) {
				tr.Bytes += cmpBytes
			} else {
				tr.Bytes += denseBytes
			}
		}
	}
	return tr, nil
}
