package sim

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// InterStageTraffic is the analytic prediction of one DP replica's
// pipeline-parallel wire traffic for one training iteration: the number
// of point-to-point messages (= latency-bearing steps) and the total
// bytes across all stages−1 boundaries, forward and backward directions
// both counted.
//
// denseBytes is the dense wire size of one boundary activation (and
// activation-gradient — both are micro-batch×hidden). cmpBytes is the
// compressed backward payload size, charged on exactly the edges the
// compiled plan selects (§5.1/§5.2) — the same *plan.Plan the executable
// trainer runs, so executed and predicted volume must agree to the byte
// (pinned by cross-check tests and the `pipeline` experiment).
type InterStageTraffic struct {
	Bytes    int64
	Messages int64
	Steps    int64
}

// PredictInterStage computes the per-replica prediction for a
// stages-deep pipeline running micros micro-batches under cfg. It is a
// convenience wrapper over PredictInterStageFromPlan: the configuration
// is compiled and the prediction derived from the plan's edge actions,
// never from an independent re-derivation of the placement rules.
func PredictInterStage(cfg core.Config, stages, micros int, denseBytes, cmpBytes int64) (InterStageTraffic, error) {
	p, err := plan.Compile(cfg, plan.Grid{Stages: stages, DPGroups: 1, MicroBatches: micros})
	if err != nil {
		return InterStageTraffic{}, err
	}
	return PredictInterStageFromPlan(p, denseBytes, cmpBytes), nil
}

// PredictInterStageFromPlan prices one replica's inter-stage traffic
// directly off a compiled plan: every forward edge is dense (§5), and
// each backward edge costs denseBytes or cmpBytes exactly where the
// plan's edge actions say so.
func PredictInterStageFromPlan(p *plan.Plan, denseBytes, cmpBytes int64) InterStageTraffic {
	var tr InterStageTraffic
	if p.Grid().Stages <= 1 {
		return tr
	}
	fwd, denseBwd, cmpBwd := p.Counts()
	tr.Messages = int64(fwd + denseBwd + cmpBwd)
	tr.Steps = tr.Messages
	tr.Bytes = int64(fwd+denseBwd)*denseBytes + int64(cmpBwd)*cmpBytes
	return tr
}
