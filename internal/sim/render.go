package sim

import (
	"fmt"
	"strings"
)

// Timeline renders an ASCII timing diagram of one iteration, one row per
// pipeline stage — the reproduction's version of the paper's Fig. 4.
// Forward compute prints as 'F', backward as 'B', idle as '.', and the
// tail communications (DP/EMB) as 'D'/'E' on the stages they occupy.
func Timeline(s Scenario, width int) (string, error) {
	g, err := BuildGraph(s, nil)
	if err != nil {
		return "", err
	}
	makespan, err := g.Solve()
	if err != nil {
		return "", err
	}
	if width < 20 {
		width = 20
	}
	scale := float64(width) / makespan

	var b strings.Builder
	fmt.Fprintf(&b, "%s  %s  iteration=%.3fs  (1 col = %.0f ms)\n",
		s.Spec.Name, s.Cfg.Name(), makespan, makespan/float64(width)*1000)
	for st := 0; st < s.Map.PP; st++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		paint := func(start, finish float64, ch byte) {
			from := int(start * scale)
			to := int(finish * scale)
			if to >= width {
				to = width - 1
			}
			for i := from; i <= to && i < width; i++ {
				row[i] = ch
			}
		}
		for _, t := range g.ResourceTimeline(fmt.Sprintf("dev%d", st)) {
			ch := byte('F')
			if t.Label == LabelBwd {
				ch = 'B'
			}
			paint(t.Start(), t.Finish(), ch)
		}
		if dp := g.Get(fmt.Sprintf("DP/%d", st)); dp != nil && dp.Duration > 0 {
			paint(dp.Start(), dp.Finish(), 'D')
		}
		if st == 0 || st == s.Map.PP-1 {
			for i := 0; ; i++ {
				emb := g.Get(fmt.Sprintf("EMB/%d", i))
				if emb == nil {
					break
				}
				if emb.Duration > 0 {
					paint(emb.Start(), emb.Finish(), 'E')
				}
			}
		}
		fmt.Fprintf(&b, "dev%-2d |%s|\n", st, string(row))
	}
	return b.String(), nil
}

// BreakdownReport renders the Fig. 3 / Fig. 10 style breakdown as text:
// exposed time per component plus the residual (overlapped) compute.
func BreakdownReport(name string, r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s iteration %7.3fs  (%.2f days)\n", name, r.IterationSec, r.Days)
	for _, l := range AllLabels {
		fmt.Fprintf(&b, "  %-12s exposed %7.3fs  (%5.1f%%)   busy %8.3fs\n",
			l, r.Exposed[l], r.Exposed[l]/r.IterationSec*100, r.Busy[l])
	}
	return b.String()
}
