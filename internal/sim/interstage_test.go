package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
)

// TestPredictInterStageIsPlanDerived pins the redesign invariant: the
// legacy PredictInterStage signature is a pure wrapper over the compiled
// plan — identical output to PredictInterStageFromPlan on a plan
// compiled for the same shape, for every Table-2 configuration.
func TestPredictInterStageIsPlanDerived(t *testing.T) {
	const dense, cmp = 3072, 512
	for _, cfg := range []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC(), core.NaiveCB()} {
		for _, g := range []struct{ stages, micros int }{{2, 4}, {4, 4}, {4, 2}, {1, 4}} {
			legacy, err := PredictInterStage(cfg, g.stages, g.micros, dense, cmp)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			p, err := plan.Compile(cfg, plan.Grid{Stages: g.stages, DPGroups: 1, MicroBatches: g.micros})
			if err != nil {
				t.Fatal(err)
			}
			if got := PredictInterStageFromPlan(p, dense, cmp); got != legacy {
				t.Fatalf("%s pp%d m%d: wrapper %+v != plan-derived %+v", cfg.Name(), g.stages, g.micros, legacy, got)
			}
			// Messages = steps = fwd+bwd over all boundaries.
			if want := int64(2 * (g.stages - 1) * g.micros); legacy.Messages != want || legacy.Steps != want {
				t.Fatalf("%s pp%d m%d: messages %d steps %d, want %d", cfg.Name(), g.stages, g.micros, legacy.Messages, legacy.Steps, want)
			}
		}
	}
}

// TestFamilyAwarePricing pins the simulator's per-family cost model for
// the families the registry redesign makes reachable: a terngrad DP
// sync must be priced strictly between zero and the dense all-reduce,
// and a CB quantizer's backward payload must follow the family's own
// ratio (identity ships dense bytes, terngrad ~2 bits/element) rather
// than the low-rank formula.
func TestFamilyAwarePricing(t *testing.T) {
	durationsFor := func(cfg core.Config) durations {
		sc := PaperScenario(cluster.GPT25B, cfg)
		p, err := sc.Plan()
		if err != nil {
			t.Fatal(err)
		}
		return computeDurations(sc, p)
	}

	// DP side: dense > terngrad > 0; terngrad also has no PowerSGD codec
	// term, so it must differ from the powersgd pricing.
	dense := durationsFor(core.Baseline())
	psgd := durationsFor(core.CBFESC())
	tern := core.CBFESC()
	tern.DPAlg = "terngrad"
	terngrad := durationsFor(tern)
	if terngrad.dp[0] <= dense.dp[0]/16 || terngrad.dp[0] >= dense.dp[0] {
		t.Fatalf("terngrad dp cost %v implausible vs dense %v", terngrad.dp[0], dense.dp[0])
	}
	if terngrad.dp[0] == psgd.dp[0] {
		t.Fatal("terngrad priced identically to powersgd")
	}

	// CB side: identity "compression" must be priced at the dense
	// transfer time, terngrad well below it, powersgd per the low-rank
	// formula — all without the PowerSGD codec term for the quantizers.
	cbIdentity := core.CB()
	cbIdentity.CBAlg = "identity"
	idd := durationsFor(cbIdentity)
	if idd.sendBwdCmpXfer < idd.sendBwdXfer*0.99 {
		t.Fatalf("identity CB priced below dense: %v vs %v", idd.sendBwdCmpXfer, idd.sendBwdXfer)
	}
	if idd.sendBwdCodec != 0 {
		t.Fatalf("identity CB charged a PowerSGD codec term %v", idd.sendBwdCodec)
	}
	cbTern := core.CB()
	cbTern.CBAlg = "terngrad"
	td := durationsFor(cbTern)
	if td.sendBwdCmpXfer >= idd.sendBwdCmpXfer/2 {
		t.Fatalf("terngrad CB %v not well below dense %v", td.sendBwdCmpXfer, idd.sendBwdCmpXfer)
	}
}

// TestSparseCodecPricingIsNNZAware pins the sparse-op cost term: a
// TopK backward codec is priced from the kept-element count (selection
// pass + 2k gather, k-element scatter) with no orthogonalization term,
// so it must come out far below the PowerSGD codec at the same paper
// shape, stay nonzero, and track the plan's byte-matched fraction —
// the closed forms are checked directly against the scenario's model.
func TestSparseCodecPricingIsNNZAware(t *testing.T) {
	durationsFor := func(cfg core.Config) (durations, Scenario) {
		sc := PaperScenario(cluster.GPT25B, cfg)
		p, err := sc.Plan()
		if err != nil {
			t.Fatal(err)
		}
		return computeDurations(sc, p), sc
	}

	cbTopK := core.CB()
	cbTopK.CBAlg = core.CBTopK
	sparse, sc := durationsFor(cbTopK)
	psgd, _ := durationsFor(core.CB())

	if sparse.sendBwdCodec <= 0 {
		t.Fatal("sparse CB codec priced at zero — selection/scatter cost dropped")
	}
	if sparse.sendBwdCodec >= psgd.sendBwdCodec/10 {
		t.Fatalf("sparse codec %v not well below powersgd codec %v (no ortho term expected)",
			sparse.sendBwdCodec, psgd.sendBwdCodec)
	}

	// The closed form: k = Fraction·n·m, codec = SparseCompressTime +
	// SparseDecompressTime. Recompute from the compiled plan's spec.
	p, err := sc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	n := sc.MicroBatch * sc.Spec.SeqLen
	m := sc.Spec.Hidden
	k := int(float64(n) * float64(m) * p.CBSpec(0, 1).Fraction)
	want := sc.Cost.SparseCompressTime(n, m, k) + sc.Cost.SparseDecompressTime(k)
	if sparse.sendBwdCodec != want {
		t.Fatalf("sparse codec %v != closed form %v", sparse.sendBwdCodec, want)
	}

	// nnz-awareness proper: at fixed dense shape the decompress and
	// reduce terms scale with k, not n·m.
	cost := sc.Cost
	if d1, d10 := cost.SparseDecompressTime(1000), cost.SparseDecompressTime(10000); d10-cost.SetupSec < 9*(d1-cost.SetupSec) {
		t.Fatalf("SparseDecompressTime not linear in nnz: %v vs %v", d1, d10)
	}
	if r1, r4 := cost.SparseReduceTime(5000), cost.SparseReduceTime(20000); r4 != 4*r1 {
		t.Fatalf("SparseReduceTime not linear in total nnz: %v vs %v", r1, r4)
	}
}

// TestScenarioPlanCompiles asserts every paper scenario compiles its
// plan (the same compile path BuildGraph consumes), and that the plan's
// embedding strategy matches the scenario's configuration.
func TestScenarioPlanCompiles(t *testing.T) {
	for _, cfg := range []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()} {
		sc := PaperScenario(cluster.GPT25B, cfg)
		p, err := sc.Plan()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		wantEmb := plan.EmbTwoPhase
		if cfg.FuseEmbedding {
			wantEmb = plan.EmbFused
		}
		if p.Embedding() != wantEmb {
			t.Fatalf("%s: embedding %v, want %v", cfg.Name(), p.Embedding(), wantEmb)
		}
		if got := p.CompressedStages(); len(got) != sc.Map.PP {
			t.Fatalf("%s: %d stage actions for PP %d", cfg.Name(), len(got), sc.Map.PP)
		}
	}
}
