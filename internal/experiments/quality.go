package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/train"
)

// trainNew exists so timing.go can construct trainers without importing
// train twice under different names.
func trainNew(cfg train.Config, c *data.Corpus) (*train.Trainer, error) {
	return train.New(cfg, c)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// QualityRow is one configuration's measured model quality.
type QualityRow struct {
	Name string
	PPL  float64
}

// CurveResult is a PPL-vs-iteration series per configuration (Fig. 9).
type CurveResult struct {
	Iterations []int
	Series     map[string][]float64
	order      []string
}

// Render implements Result.
func (r *CurveResult) Render() string {
	t := &table{
		title: "Fig. 9 — validation perplexity over training (real scaled model)",
		cols:  append([]string{"iteration"}, r.order...),
		notes: []string{"paper: CB and CB+FE track the baseline curve; CB+FE+SC sits slightly above"},
	}
	for i, it := range r.Iterations {
		cells := []string{fmt.Sprintf("%d", it)}
		for _, name := range r.order {
			cells = append(cells, f3(r.Series[name][i]))
		}
		t.add(cells...)
	}
	return t.Render()
}

// Fig9Curves regenerates the perplexity-over-training curves for the four
// Table 2 configurations.
func Fig9Curves(o Options) (*CurveResult, error) {
	c, err := Corpus()
	if err != nil {
		return nil, err
	}
	cfgs := []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()}
	res := &CurveResult{Series: map[string][]float64{}}
	every := o.Iterations / 6
	if every < 1 {
		every = 1
	}
	for _, cfg := range cfgs {
		tr, err := train.New(o.trainConfig(cfg), c)
		if err != nil {
			return nil, err
		}
		name := cfg.Name()
		res.order = append(res.order, name)
		first := len(res.Series) == 0
		for it := every; it <= o.Iterations; it += every {
			tr.Train(every, nil)
			res.Series[name] = append(res.Series[name], tr.ValidationPerplexity(o.EvalWindows))
			if first {
				res.Iterations = append(res.Iterations, it)
			}
		}
	}
	return res, nil
}

// AccuracyResult is a task × configuration accuracy grid.
type AccuracyResult struct {
	Title   string
	Tasks   []string
	Configs []string
	// Acc[config][task]
	Acc   map[string]map[string]float64
	Notes []string
}

// Render implements Result.
func (r *AccuracyResult) Render() string {
	t := &table{
		title: r.Title,
		cols:  append([]string{"task"}, r.Configs...),
		notes: r.Notes,
	}
	for _, task := range r.Tasks {
		cells := []string{task}
		for _, cfg := range r.Configs {
			cells = append(cells, fmt.Sprintf("%.1f%%", r.Acc[cfg][task]*100))
		}
		t.add(cells...)
	}
	return t.Render()
}

func (o Options) accuracyGrid(title string, cfgs []core.Config, notes []string) (*AccuracyResult, error) {
	c, err := Corpus()
	if err != nil {
		return nil, err
	}
	tasks := data.TaskSuite(c, o.trainConfig(core.Baseline()).Model.Context, o.TaskExamples, o.Seed+1000)
	res := &AccuracyResult{Title: title, Acc: map[string]map[string]float64{}, Notes: notes}
	for _, task := range tasks {
		res.Tasks = append(res.Tasks, task.Name)
	}
	sort.Strings(res.Tasks)
	for _, cfg := range cfgs {
		tr, _, err := o.trainAndEval(cfg)
		if err != nil {
			return nil, err
		}
		res.Configs = append(res.Configs, cfg.Name())
		res.Acc[cfg.Name()] = tr.TaskAccuracies(tasks)
	}
	return res, nil
}

// Table3ZeroShot regenerates Table 3: zero-shot probe-task accuracy for
// the four Table 2 configurations.
func Table3ZeroShot(o Options) (*AccuracyResult, error) {
	return o.accuracyGrid(
		"Table 3 — zero-shot probe-task accuracy (substitutes for LAMBADA/PIQA/MathQA/WinoGrande/RACE)",
		[]core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()},
		[]string{"paper: CB and CB+FE comparable to baseline; CB+FE+SC marginally below"},
	)
}

// Table4LEP regenerates Table 4: the lazy-error-propagation ablation. As
// in the paper, epilogue-only compression is applied to both CB variants.
// The naive all-micro-batch non-LEP configuration (Fig. 3's 'naive CB') is
// included as a fourth column because at this model scale it shows the
// failure mode most starkly.
func Table4LEP(o Options) (*AccuracyResult, error) {
	nonLEP := core.CB()
	nonLEP.LazyErrorPropagation = false
	return o.accuracyGrid(
		"Table 4 — lazy error propagation ablation",
		[]core.Config{core.Baseline(), core.CB(), nonLEP, core.NaiveCB()},
		[]string{
			"CB = LEP + epilogue-only; CB(non-LEP) = epilogue-only without LEP (the paper's Table 4 pair)",
			"CB(naive) = no LEP and no epilogue-only — Fig. 3's 'naive CB', which severely damages quality",
		},
	)
}

// Fig11Result carries the Eq. 14 condition measurements.
type Fig11Result struct {
	Sends          int
	EpsMeanAbs     float64
	ActDiffMeanAbs float64
	CosineAbs      float64
	CosineMax      float64
}

// Render implements Result.
func (r *Fig11Result) Render() string {
	t := &table{
		title: "Fig. 11 — Eq. 14 conditions during real training (boundary 1→0)",
		cols:  []string{"quantity", "value"},
		notes: []string{"paper: all three hover near zero, validating lazy error propagation's approximation"},
	}
	t.add("compressed sends observed", fmt.Sprintf("%d", r.Sends))
	t.add("mean |Avg(ε)|", fmt.Sprintf("%.5f", r.EpsMeanAbs))
	t.add("mean |Avg(Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾)|", fmt.Sprintf("%.5f", r.ActDiffMeanAbs))
	t.add("mean |cos(ε, ΔY)|", fmt.Sprintf("%.5f", r.CosineAbs))
	t.add("max |cos(ε, ΔY)|", fmt.Sprintf("%.5f", r.CosineMax))
	return t.Render()
}

// Fig11Conditions regenerates Fig. 11 by instrumenting a CB training run.
func Fig11Conditions(o Options) (*Fig11Result, error) {
	c, err := Corpus()
	if err != nil {
		return nil, err
	}
	cfg := o.trainConfig(core.CB())
	cfg.CollectStats = true
	tr, err := train.New(cfg, c)
	if err != nil {
		return nil, err
	}
	tr.Train(o.Iterations/2, nil)
	st := tr.Stats()
	eps, diff, cosAbs := st.Summary()
	maxCos := 0.0
	for _, v := range st.Cosine {
		if v < 0 {
			v = -v
		}
		if v > maxCos {
			maxCos = v
		}
	}
	return &Fig11Result{
		Sends:          int(st.Count()),
		EpsMeanAbs:     eps,
		ActDiffMeanAbs: diff,
		CosineAbs:      cosAbs,
		CosineMax:      maxCos,
	}, nil
}

// Fig12Memory regenerates the memory-overhead accounting: baseline vs
// compressed backpropagation vs CB + lazy error propagation.
func Fig12Memory(o Options) (Result, error) {
	c, err := Corpus()
	if err != nil {
		return nil, err
	}
	t := &table{
		title: "Fig. 12 — peak memory per stage (bytes, float64 accounting)",
		cols:  []string{"config", "stage", "params", "grads", "optimizer", "activations", "low-rank", "LEP residual", "total", "vs baseline"},
		notes: []string{
			"paper: compression buffers add 5–10% and LEP residuals ≈1% on top of multi-GB per-GPU state;",
			"at stand-in scale the absolute components are what map — percentages skew larger because the",
			"total footprint is tiny.",
		},
	}
	nonLEP := core.CB()
	nonLEP.LazyErrorPropagation = false
	cfgs := []struct {
		name string
		opt  core.Config
	}{
		{"Baseline", core.Baseline()},
		{"CB", nonLEP},
		{"CB+LEP", core.CB()},
	}
	var baseTotals []int64
	for _, cc := range cfgs {
		cfg := o.trainConfig(cc.opt)
		tr, err := train.New(cfg, c)
		if err != nil {
			return nil, err
		}
		tr.Train(2, nil) // populate residuals
		for s, mb := range tr.MemoryPerStage() {
			if cc.name == "Baseline" {
				baseTotals = append(baseTotals, mb.Total())
			}
			rel := ""
			if s < len(baseTotals) && baseTotals[s] > 0 {
				rel = fmt.Sprintf("%+.2f%%", (float64(mb.Total())/float64(baseTotals[s])-1)*100)
			}
			t.add(cc.name, fmt.Sprintf("%d", s),
				fmt.Sprintf("%d", mb.ParamBytes), fmt.Sprintf("%d", mb.GradBytes),
				fmt.Sprintf("%d", mb.OptimizerBytes), fmt.Sprintf("%d", mb.ActivationBytes),
				fmt.Sprintf("%d", mb.LowRankBytes), fmt.Sprintf("%d", mb.ResidualBytes),
				fmt.Sprintf("%d", mb.Total()), rel)
		}
	}
	return t, nil
}
