package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Ablation experiments beyond the paper's own figures, exercising the
// design choices DESIGN.md calls out: the LEP×epilogue-only grid, PowerSGD
// warm starting, the compressor-family choice, and the pipeline-schedule
// choice.

// AblateLEPGrid trains the 2×2 grid of {lazy error propagation} ×
// {epilogue-only} plus the baseline, reporting validation perplexity.
// This decomposes Table 4 / Fig. 3 into the two enabler techniques'
// individual contributions.
func AblateLEPGrid(o Options) (Result, error) {
	t := &table{
		title: "Ablation — lazy error propagation × epilogue-only (validation PPL)",
		cols:  []string{"config", "LEP", "epilogue-only", "val PPL"},
		notes: []string{"paper: CB needs both; without epilogue-only it diverged, without LEP quality drops (Table 4)"},
	}
	_, basePPL, err := o.trainAndEval(core.Baseline())
	if err != nil {
		return nil, err
	}
	t.add("Baseline", "-", "-", f3(basePPL))
	for _, lep := range []bool{true, false} {
		for _, epi := range []bool{true, false} {
			cfg := core.CB()
			cfg.LazyErrorPropagation = lep
			cfg.EpilogueOnly = epi
			_, ppl, err := o.trainAndEval(cfg)
			if err != nil {
				return nil, err
			}
			t.add(cfg.Name(), onOff(lep), onOff(epi), f3(ppl))
		}
	}
	return t, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// AblateWarmStart measures PowerSGD's warm-start design choice: relative
// reconstruction error over a slowly drifting gradient sequence, with and
// without reusing the previous Q factor (§2.3: PowerSGD "reuses the
// factorized matrix from the previous gradient compression stage").
func AblateWarmStart(o Options) (Result, error) {
	t := &table{
		title: "Ablation — PowerSGD warm start (mean relative error over a drifting gradient sequence)",
		cols:  []string{"rank", "warm start", "cold start", "improvement"},
	}
	rng := newRand(o.Seed)
	base := tensor.RandN(rng, 64, 96, 1)
	for _, rank := range []int{2, 4, 8} {
		warm := compress.NewInstrumented(compress.NewPowerSGD(rank, o.Seed))
		coldPS := compress.NewPowerSGD(rank, o.Seed)
		coldPS.SetWarmStart(false)
		cold := compress.NewInstrumented(coldPS)
		for step := 0; step < 40; step++ {
			g := base.Clone().AddScaled(0.02, tensor.RandN(rng, 64, 96, 1))
			warm.Compress(g)
			cold.Compress(g)
		}
		t.add(fmt.Sprintf("%d", rank), f3(warm.MeanRelError()), f3(cold.MeanRelError()),
			fmt.Sprintf("%.1f%%", (1-warm.MeanRelError()/cold.MeanRelError())*100))
	}
	return t, nil
}

// AblateCompressorFamily compares compression families on real gradients
// captured from a short training run: achieved wire ratio and mean
// relative error with error feedback. This grounds the paper's choice of
// low-rank over top-k/quantization for a fixed byte budget.
func AblateCompressorFamily(o Options) (Result, error) {
	c, err := Corpus()
	if err != nil {
		return nil, err
	}
	cfg := o.trainConfig(core.Baseline())
	tr, err := train.New(cfg, c)
	if err != nil {
		return nil, err
	}
	// Capture a sequence of real averaged block-weight gradients.
	var grads []*tensor.Matrix
	steps := o.Iterations / 10
	if steps < 8 {
		steps = 8
	}
	for i := 0; i < steps; i++ {
		tr.TrainIteration()
		g := tr.Stages()[1].Grads()[0] // first block weight of stage 1
		grads = append(grads, g.Clone())
	}
	h := grads[0].Rows
	// Byte-match the candidates to PowerSGD rank 4 on this shape.
	lrBytes := core.LowRankWireBytes(grads[0].Rows, grads[0].Cols, 4, compress.ElemBytes)
	frac := float64(lrBytes) / float64(compress.DenseBytes(grads[0].Rows, grads[0].Cols))
	sparseFrac := frac * float64(compress.ElemBytes) / float64(compress.ElemBytes+compress.IndexBytes)

	t := &table{
		title: fmt.Sprintf("Ablation — compressor family on real %dx%d gradients (error feedback on, budget = PowerSGD rank 4)", h, grads[0].Cols),
		cols:  []string{"compressor", "achieved ratio", "mean rel. error"},
		notes: []string{"paper §8: low-rank chosen over top-k (index overhead, gather build-up) and quantization (fixed ratio)"},
	}
	cands := []compress.Compressor{
		compress.NewPowerSGD(4, o.Seed),
		compress.NewTopK(sparseFrac),
		compress.NewRandomK(sparseFrac, o.Seed),
		compress.NewUniform8Bit(),
		compress.NewTernGrad(o.Seed),
		compress.NewSignSGD(),
	}
	for _, cand := range cands {
		inst := compress.NewInstrumented(cand)
		ef := compress.NewErrorFeedback(inst)
		for _, g := range grads {
			ef.CompressWithFeedback(g)
		}
		t.add(inst.Name(), fmt.Sprintf("%.1f×", inst.AchievedRatio()), f3(inst.MeanRelError()))
	}
	return t, nil
}

// AblateSchedules compares pipeline schedules analytically and
// structurally for the paper's configuration (PP4, 16 micro-batches):
// bubble fraction, peak in-flight activations, and inter-stage transfer
// count — the trade-offs that motivate interleaved 1F1B (§8) and that CB
// interacts with.
func AblateSchedules(o Options) (Result, error) {
	t := &table{
		title: "Ablation — pipeline schedules (PP4, 16 micro-batches)",
		cols:  []string{"schedule", "bubble fraction", "peak in-flight (stage 0)", "p2p transfers/iter"},
		notes: []string{"interleaving shrinks the bubble by the chunk factor but multiplies the inter-stage traffic CB compresses"},
	}
	p, m := 4, 16
	oneF, err := pipeline.OneFOneB(p, m)
	if err != nil {
		return nil, err
	}
	gp, err := pipeline.GPipe(p, m)
	if err != nil {
		return nil, err
	}
	t.add("GPipe", f3(pipeline.BubbleFraction1F1B(p, m)),
		fmt.Sprintf("%d", gp.PeakInFlight(0)),
		fmt.Sprintf("%d", pipeline.CommVolumePerIteration(p, m, 1)))
	t.add("1F1B", f3(pipeline.BubbleFraction1F1B(p, m)),
		fmt.Sprintf("%d", oneF.PeakInFlight(0)),
		fmt.Sprintf("%d", pipeline.CommVolumePerIteration(p, m, 1)))
	for _, v := range []int{2, 4} {
		il, err := pipeline.Interleaved(p, m, v)
		if err != nil {
			return nil, err
		}
		t.add(fmt.Sprintf("interleaved v=%d", v),
			f3(pipeline.BubbleFractionInterleaved(p, m, v)),
			fmt.Sprintf("%d", il.PeakInFlight(0)),
			fmt.Sprintf("%d", pipeline.CommVolumePerIteration(p, m, v)))
	}
	return t, nil
}
