package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyOptions exercises every experiment path quickly.
func tinyOptions() Options {
	return Options{Iterations: 12, EvalWindows: 80, TaskExamples: 30, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "table2", "fig9", "fig10", "table3", "table4",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "emb", "epilogue",
		"collective", "pipeline", "overlap", "autotune",
		"ablate-lep", "ablate-warmstart", "ablate-compressor", "ablate-schedules"}
	for _, name := range want {
		if Registry[name] == nil {
			t.Fatalf("registry missing %s", name)
		}
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestAblateWarmStart(t *testing.T) {
	r, err := AblateWarmStart(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "warm start") {
		t.Fatal("warm-start ablation incomplete")
	}
}

func TestAblateSchedules(t *testing.T) {
	r, err := AblateSchedules(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, s := range []string{"GPipe", "1F1B", "interleaved v=2"} {
		if !strings.Contains(out, s) {
			t.Fatalf("schedules ablation missing %s:\n%s", s, out)
		}
	}
}

func TestAblateCompressorFamilyTiny(t *testing.T) {
	r, err := AblateCompressorFamily(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, s := range []string{"powersgd", "topk", "randomk", "terngrad", "signsgd"} {
		if !strings.Contains(out, s) {
			t.Fatalf("compressor ablation missing %s:\n%s", s, out)
		}
	}
}

func TestAblateLEPGridTiny(t *testing.T) {
	r, err := AblateLEPGrid(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, s := range []string{"CB", "CB(non-LEP)", "CB(all)", "CB(naive)"} {
		if !strings.Contains(out, s) {
			t.Fatalf("LEP grid missing %s:\n%s", s, out)
		}
	}
}

func TestAutotuneExperimentTiny(t *testing.T) {
	r, err := AutotuneSearch(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.WinnerSec > r.HandpickedSec+1e-12 {
		t.Fatalf("winner predicts %.6fs, hand-picked plan %.6fs — search lost to the hand-picked point",
			r.WinnerSec, r.HandpickedSec)
	}
	out := r.Render()
	for _, s := range []string{"hand-picked CBFESC", "autotuned", "winner:", "candidate"} {
		if !strings.Contains(out, s) {
			t.Fatalf("autotune report missing %q:\n%s", s, out)
		}
	}
}

func TestCalibrationCached(t *testing.T) {
	a, err := CalibratedEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CalibratedEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 || a > 1 {
		t.Fatalf("calibration unstable or implausible: %v vs %v", a, b)
	}
}

func TestScaledOpt(t *testing.T) {
	c := ScaledOpt(core.CBFESC())
	if c.CBRank != 3 || c.DPRank != 4 {
		t.Fatalf("scaled ranks wrong: CB=%d DP=%d", c.CBRank, c.DPRank)
	}
	b := ScaledOpt(core.Baseline())
	if b.CompressBackprop || b.DPCompress() {
		t.Fatal("baseline must stay uncompressed")
	}
}

func TestPipelineVolumeExperiment(t *testing.T) {
	r, err := PipelineVolumeExperiment(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, s := range []string{"exact", "cb-epilogue", "dp2×pp4", "dp4×pp2"} {
		if !strings.Contains(out, s) {
			t.Fatalf("pipeline volume table missing %s:\n%s", s, out)
		}
	}
	if r.Mismatches != 0 {
		t.Fatalf("executed pp traffic diverged from the inter-stage prediction in %d rows:\n%s",
			r.Mismatches, out)
	}
}

func TestCollectiveVolumeExperiment(t *testing.T) {
	r, err := CollectiveVolumeExperiment(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, s := range []string{"allreduce", "emb-fused", "emb-baseline"} {
		if !strings.Contains(out, s) {
			t.Fatalf("collective volume table missing %s:\n%s", s, out)
		}
	}
	// Predicted and executed factors are rendered with the same formatter;
	// any disagreement would produce distinct columns in some row. Spot-pin
	// D=4 fused: (2·4−1)/4 = 1.750 must appear as both pred and exec.
	if !strings.Contains(out, "1.750") {
		t.Fatalf("missing Eq. 16 factor at D=4:\n%s", out)
	}
	for _, row := range r.t.rows {
		if row[2] != row[3] {
			t.Fatalf("%s D=%s: predicted factor %s != executed %s", row[0], row[1], row[2], row[3])
		}
		if row[4] != row[5] {
			t.Fatalf("%s D=%s: predicted steps %s != executed %s", row[0], row[1], row[4], row[5])
		}
		if row[6] != row[7] {
			t.Fatalf("%s D=%s: predicted time %s != executed-traffic time %s", row[0], row[1], row[6], row[7])
		}
	}
}

func TestEmbCostExperiment(t *testing.T) {
	r, err := EmbCost(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "+42.86%") {
		t.Fatalf("missing D=4 improvement:\n%s", out)
	}
}

func TestEpilogueOverlapExperiment(t *testing.T) {
	r, err := EpilogueOverlap(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "epilogue-only speedup") {
		t.Fatalf("missing overlap note:\n%s", out)
	}
}

func TestFig14Experiment(t *testing.T) {
	r, err := Fig14Sensitivity(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, m := range []string{"TP8/DP4/PP4", "TP4/DP4/PP8", "TP2/DP4/PP16"} {
		if !strings.Contains(out, m) {
			t.Fatalf("missing mapping %s:\n%s", m, out)
		}
	}
}

func TestFig16Experiment(t *testing.T) {
	r, err := Fig16Scalability(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, m := range []string{"GPT-2.5B", "GPT-175B", "512"} {
		if !strings.Contains(out, m) {
			t.Fatalf("missing %s:\n%s", m, out)
		}
	}
}

func TestFig10Experiment(t *testing.T) {
	r, err := Fig10Breakdown(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "interstage") {
		t.Fatal("breakdown missing components")
	}
}

func TestFig11Experiment(t *testing.T) {
	r, err := Fig11Conditions(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Sends == 0 {
		t.Fatal("no compressed sends observed")
	}
	if r.CosineAbs > 0.6 {
		t.Fatalf("cosine similarity %v too large — Eq. 14 violated", r.CosineAbs)
	}
}

func TestFig12Experiment(t *testing.T) {
	r, err := Fig12Memory(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "CB+LEP") || !strings.Contains(out, "Baseline") {
		t.Fatalf("memory table incomplete:\n%s", out)
	}
}

func TestFig15Experiment(t *testing.T) {
	r, err := Fig15Throughput(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "GPT-175B") {
		t.Fatalf("throughput table incomplete:\n%s", out)
	}
}

func TestTable2ExperimentTiny(t *testing.T) {
	r, err := Table2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timing) != 2 || len(r.Quality) != 4 {
		t.Fatalf("Table2 shape wrong: %d timings %d qualities", len(r.Timing), len(r.Quality))
	}
	// Timing speedups must be monotone per model regardless of quality
	// run length.
	for _, tt := range r.Timing {
		for i := 1; i < len(tt.Rows); i++ {
			if tt.Rows[i].IterationSec >= tt.Rows[i-1].IterationSec {
				t.Fatalf("%s: row %d not faster than row %d", tt.Model, i, i-1)
			}
		}
	}
}

func TestTable4ExperimentTiny(t *testing.T) {
	r, err := Table4LEP(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != 4 {
		t.Fatalf("want 4 configs, got %v", r.Configs)
	}
	// The two non-LEP variants must be distinct columns (regression test
	// for a name-collision bug).
	seen := map[string]bool{}
	for _, c := range r.Configs {
		if seen[c] {
			t.Fatalf("duplicate config column %q", c)
		}
		seen[c] = true
	}
	if len(r.Tasks) != 5 {
		t.Fatalf("want 5 tasks, got %v", r.Tasks)
	}
}

func TestFig9ExperimentTiny(t *testing.T) {
	r, err := Fig9Curves(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Iterations) == 0 {
		t.Fatal("no curve points")
	}
	for name, series := range r.Series {
		if len(series) != len(r.Iterations) {
			t.Fatalf("series %s length %d != %d points", name, len(series), len(r.Iterations))
		}
	}
}

func TestFig3ExperimentTiny(t *testing.T) {
	r, err := Fig3Motivation(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Quality) != 5 {
		t.Fatalf("want 5 quality rows, got %d", len(r.Quality))
	}
	out := r.Render()
	if !strings.Contains(out, "CB(naive)") || !strings.Contains(out, "topk") {
		t.Fatalf("Fig. 3 missing straw-man configs:\n%s", out)
	}
}

func TestFig13ExperimentTiny(t *testing.T) {
	r, err := Fig13Tradeoff(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StageSweep) != 5 || len(r.RankSweep) != 4 {
		t.Fatalf("sweep sizes %d/%d", len(r.StageSweep), len(r.RankSweep))
	}
	// Stage sweep speedups must be non-decreasing in the fraction.
	for i := 1; i < len(r.StageSweep); i++ {
		if r.StageSweep[i].Speedup < r.StageSweep[i-1].Speedup-1e-9 {
			t.Fatalf("stage sweep speedup not monotone at %s", r.StageSweep[i].Label)
		}
	}
	// Rank 512 must be slower than rank 128 (Fig. 13 middle).
	if r.RankSweep[3].Speedup >= r.RankSweep[2].Speedup {
		t.Fatalf("rank 512 speedup %.3f should drop below rank 128's %.3f",
			r.RankSweep[3].Speedup, r.RankSweep[2].Speedup)
	}
}
