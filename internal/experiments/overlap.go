package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/train"
)

// OverlapResult validates the overlapped bucketed DP-sync path from both
// sides. The first table runs real training with blocking vs overlapped
// synchronization — same plan, same bucket schedule, bit-identical
// weights — and reports executed dp wire volume (equal by construction)
// next to the exposed synchronization time (overlap's win). The second
// table is the simulator's schedule-derived overlap model for the paper
// scenario: per stage, DP-sync communication vs the backward-compute
// hide window, exposed = max(0, comm − hide) — the quantity the old
// scalar could not express.
type OverlapResult struct {
	exec table
	pred table
}

// Render implements Result.
func (r *OverlapResult) Render() string { return r.exec.Render() + "\n" + r.pred.Render() }

// OverlapExperiment runs the validation.
func OverlapExperiment(o Options) (*OverlapResult, error) {
	corpus, err := Corpus()
	if err != nil {
		return nil, err
	}
	res := &OverlapResult{
		exec: table{
			title: "Executed DP sync: blocking barrier vs overlapped bucketed all-reduce",
			cols:  []string{"config", "mode", "buckets", "dp B/iter", "exposed µs/iter", "loss@end"},
			notes: []string{
				"both modes run the identical compiled bucket schedule; weights are bit-identical",
				"exposed = wall time the iteration blocks on DP sync after backward (hidden work excluded)",
			},
		},
		pred: table{
			title: "Simulator overlap model (GPT-2.5B paper scenario, per stage)",
			cols:  []string{"stage", "buckets", "comm (s)", "hide (s)", "exposed (s)"},
			notes: []string{"exposed = max(0, comm − remaining backward compute), from the compiled bucket schedule"},
		},
	}

	iters := o.Iterations / 10
	if iters < 20 {
		iters = 20
	}
	for _, cse := range []struct {
		name string
		opt  core.Config
	}{
		{"baseline", core.Baseline()},
		{"cbfesc", core.CBFESC()},
	} {
		var finals [2]float64
		var wires [2]int64
		for i, mode := range []train.DPSyncMode{train.DPSyncBlocking, train.DPSyncOverlapped} {
			cfg := o.trainConfig(cse.opt)
			cfg.DPSync = mode
			tr, err := trainNew(cfg, corpus)
			if err != nil {
				return nil, err
			}
			finals[i] = tr.Train(iters, nil)
			st, _ := tr.CollectiveStats()
			wires[i] = st.For(collective.ClassDP).Bytes / int64(tr.Iteration())
			var buckets int
			for s := 0; s < cfg.Stages; s++ {
				buckets += tr.Plan().BucketCount(s)
			}
			res.exec.add(cse.name, mode.String(), fmt.Sprint(buckets),
				fmt.Sprint(wires[i]),
				f2(float64(tr.DPSyncExposedNs())/float64(tr.Iteration())/1e3),
				fmt.Sprintf("%.6f", finals[i]))
			tr.Close()
		}
		if finals[0] != finals[1] {
			return nil, fmt.Errorf("overlap: modes diverged on %s: %v vs %v", cse.name, finals[0], finals[1])
		}
		if wires[0] != wires[1] {
			return nil, fmt.Errorf("overlap: executed dp volume differs across modes on %s: %d vs %d", cse.name, wires[0], wires[1])
		}
	}

	ov, err := sim.PredictDPOverlap(sim.PaperScenario(cluster.GPT25B, core.Baseline()))
	if err != nil {
		return nil, err
	}
	for _, so := range ov.Stages {
		res.pred.add(fmt.Sprint(so.Stage), fmt.Sprint(so.Buckets),
			f3(so.CommSec), f3(so.HideSec), f3(so.ExposedSec))
	}
	res.pred.notes = append(res.pred.notes,
		fmt.Sprintf("iteration-level: comm %.3fs, exposed %.3fs (stages drain on disjoint NICs)", ov.CommSec, ov.ExposedSec))
	return res, nil
}
