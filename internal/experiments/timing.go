package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tensor"
	"time"
)

// TimingRow is one configuration's simulated outcome.
type TimingRow struct {
	Name         string
	IterationSec float64
	Days         float64
	Speedup      float64 // vs the first (baseline) row
	Exposed      map[string]float64
}

// TimingResult is a set of simulated configurations for one model.
type TimingResult struct {
	Model string
	Rows  []TimingRow
	Notes []string
}

// Render implements Result.
func (r *TimingResult) Render() string {
	t := &table{
		title: r.Model,
		cols:  []string{"config", "iter(s)", "days", "speedup", "fwd", "bwd", "interstage", "dp", "emb"},
		notes: r.Notes,
	}
	for _, row := range r.Rows {
		t.add(row.Name, f3(row.IterationSec), f2(row.Days), pct(row.Speedup),
			f3(row.Exposed[sim.LabelFwd]), f3(row.Exposed[sim.LabelBwd]),
			f3(row.Exposed[sim.LabelInterStage]), f3(row.Exposed[sim.LabelDP]),
			f3(row.Exposed[sim.LabelEmb]))
	}
	return t.Render()
}

func (o Options) timingRows(spec cluster.GPTSpec, cfgs []core.Config, iterations int) (*TimingResult, error) {
	res := &TimingResult{Model: spec.Name}
	var base float64
	for i, cfg := range cfgs {
		eff, err := o.efficiency()
		if err != nil {
			return nil, err
		}
		sc := sim.PaperScenario(spec, cfg)
		sc.Topo.Efficiency = eff
		sc.Iterations = iterations
		r, err := sim.Simulate(sc)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = r.IterationSec
		}
		res.Rows = append(res.Rows, TimingRow{
			Name:         cfg.Name(),
			IterationSec: r.IterationSec,
			Days:         r.Days,
			Speedup:      base/r.IterationSec - 1,
			Exposed:      r.Exposed,
		})
	}
	return res, nil
}

// Fig3Result pairs the motivational breakdown with measured quality.
type Fig3Result struct {
	Timing  *TimingResult
	Quality []QualityRow
}

// Render implements Result.
func (r *Fig3Result) Render() string {
	out := r.Timing.Render()
	t := &table{title: "Fig. 3 quality (real scaled training)", cols: []string{"config", "val PPL", "ΔPPL vs baseline"}}
	base := r.Quality[0].PPL
	for _, q := range r.Quality {
		t.add(q.Name, f3(q.PPL), fmt.Sprintf("%+.1f%%", (q.PPL/base-1)*100))
	}
	return out + t.Render()
}

// Fig3Motivation regenerates the motivational experiment: the Fig. 3
// breakdown bars (GPT-2.5B, 125K iterations) plus the PPL consequences of
// naive compression measured on the real scaled model.
func Fig3Motivation(o Options) (*Fig3Result, error) {
	cfgs := []core.Config{core.Baseline(), core.NaiveDP(), core.NaiveCB(), core.CBFESC()}
	topk := core.CBFESC()
	topk.CBAlg = core.CBTopK
	cfgs = append(cfgs, topk)

	timing, err := o.timingRows(cluster.GPT25B, cfgs, 125000)
	if err != nil {
		return nil, err
	}
	timing.Model = "Fig. 3 — GPT-2.5B, 125K iterations (paper: baseline 8.00 days → Opt-CC 6.97 days)"

	var quality []QualityRow
	for _, cfg := range cfgs {
		_, ppl, err := o.trainAndEval(cfg)
		if err != nil {
			return nil, err
		}
		quality = append(quality, QualityRow{Name: cfg.Name(), PPL: ppl})
	}
	return &Fig3Result{Timing: timing, Quality: quality}, nil
}

// Table2Result combines simulated time and measured quality for both
// models, the reproduction of Table 2.
type Table2Result struct {
	Timing  []*TimingResult
	Quality []QualityRow
}

// Render implements Result.
func (r *Table2Result) Render() string {
	var out string
	for _, t := range r.Timing {
		out += t.Render()
	}
	t := &table{
		title: "Table 2 quality (real scaled training; paper: CB/CB+FE match baseline PPL, CB+FE+SC slightly above)",
		cols:  []string{"config", "val PPL", "ΔPPL vs baseline"},
	}
	base := r.Quality[0].PPL
	for _, q := range r.Quality {
		t.add(q.Name, f3(q.PPL), fmt.Sprintf("%+.1f%%", (q.PPL/base-1)*100))
	}
	return out + t.Render()
}

// Table2 regenerates Table 2: 230K-iteration training time and speedup for
// Baseline/CB/CB+FE/CB+FE+SC on GPT-8.3B and GPT-2.5B, plus validation
// perplexity from real scaled training.
func Table2(o Options) (*Table2Result, error) {
	cfgs := []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()}
	res := &Table2Result{}
	for _, spec := range []cluster.GPTSpec{cluster.GPT83B, cluster.GPT25B} {
		t, err := o.timingRows(spec, cfgs, 230000)
		if err != nil {
			return nil, err
		}
		t.Model = "Table 2 — " + spec.Name + " (paper: 37.27→34.83→32.84→25.72 days for 8.3B; 14.72→13.63→12.79→12.55 for 2.5B)"
		res.Timing = append(res.Timing, t)
	}
	for _, cfg := range cfgs {
		_, ppl, err := o.trainAndEval(cfg)
		if err != nil {
			return nil, err
		}
		res.Quality = append(res.Quality, QualityRow{Name: cfg.Name(), PPL: ppl})
	}
	return res, nil
}

// Fig10Breakdown regenerates the ablation breakdown bars for both models.
func Fig10Breakdown(o Options) (Result, error) {
	cfgs := []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()}
	var out multiResult
	for _, spec := range []cluster.GPTSpec{cluster.GPT83B, cluster.GPT25B} {
		t, err := o.timingRows(spec, cfgs, 230000)
		if err != nil {
			return nil, err
		}
		t.Model = "Fig. 10 — " + spec.Name + " exposed-time breakdown (CPI-stack method of §3)"
		t.Notes = append(t.Notes, "paper: CB removes 78.57% of backward inter-stage comm; FE cuts EMB ≈40%; all applied cut total comm 63.29% (8.3B)")
		out = append(out, t)
	}
	return out, nil
}

// multiResult concatenates several results.
type multiResult []Result

// Render implements Result.
func (m multiResult) Render() string {
	var s string
	for _, r := range m {
		s += r.Render()
	}
	return s
}

// Fig13Point is one trade-off point: speedup (simulated) and PPL (real).
type Fig13Point struct {
	Label   string
	Speedup float64
	PPL     float64
}

// Fig13Result holds the selective-stage sweep and the rank sweep.
type Fig13Result struct {
	StageSweep []Fig13Point
	RankSweep  []Fig13Point
}

// Render implements Result.
func (r *Fig13Result) Render() string {
	t := &table{
		title: "Fig. 13 — selective stage compression vs rank adjustment (GPT-2.5B)",
		cols:  []string{"knob", "setting", "speedup(sim)", "val PPL(real)"},
		notes: []string{"paper: SC gives a smooth trade-off; rank tuning is non-linear and rank 512 hurts both speed and PPL"},
	}
	for _, p := range r.StageSweep {
		t.add("stages", p.Label, pct(p.Speedup), f3(p.PPL))
	}
	for _, p := range r.RankSweep {
		t.add("rank", p.Label, pct(p.Speedup), f3(p.PPL))
	}
	return t.Render()
}

// Fig13Tradeoff regenerates Fig. 13: the stage-fraction sweep (at fixed
// rank) against the rank sweep (at all stages compressed). Speedups come
// from the simulator at paper scale; perplexities from real scaled
// training, with ranks mapped proportionally.
func Fig13Tradeoff(o Options) (*Fig13Result, error) {
	base, err := o.simulate(cluster.GPT25B, core.CBFE())
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}

	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := core.CBFE()
		cfg.SelectiveStageFraction = frac
		cfg.DPRank = 128
		r, err := o.simulate(cluster.GPT25B, cfg)
		if err != nil {
			return nil, err
		}
		q := core.CBFE()
		q.SelectiveStageFraction = frac
		q.DPRank = 128 // rescaled by ScaledOpt
		_, ppl, err := o.trainAndEval(q)
		if err != nil {
			return nil, err
		}
		res.StageSweep = append(res.StageSweep, Fig13Point{
			Label:   fmt.Sprintf("%.0f%%", frac*100),
			Speedup: base.IterationSec/r.IterationSec - 1,
			PPL:     ppl,
		})
	}

	// Rank sweep at 100% stages: paper ranks {4, 32, 128, 512} map onto
	// scaled ranks {1, 2, 4, 16} for the 48×48 layer gradients.
	paperRanks := []int{4, 32, 128, 512}
	scaledRanks := []int{1, 2, 4, 16}
	for i, pr := range paperRanks {
		cfg := core.CBFE()
		cfg.SelectiveStageFraction = 1
		cfg.DPRank = pr
		r, err := o.simulate(cluster.GPT25B, cfg)
		if err != nil {
			return nil, err
		}
		q := o.trainConfig(core.CBFE())
		q.Opt.SelectiveStageFraction = 1
		q.Opt.DPRank = scaledRanks[i]
		c, err := Corpus()
		if err != nil {
			return nil, err
		}
		tr, err := trainNew(q, c)
		if err != nil {
			return nil, err
		}
		tr.Train(o.Iterations, nil)
		res.RankSweep = append(res.RankSweep, Fig13Point{
			Label:   fmt.Sprintf("%d", pr),
			Speedup: base.IterationSec/r.IterationSec - 1,
			PPL:     tr.ValidationPerplexity(o.EvalWindows),
		})
	}
	return res, nil
}

// Fig14Sensitivity regenerates the tensor/pipeline configuration
// sensitivity study on GPT-9.2B with DP fixed to 4.
func Fig14Sensitivity(o Options) (Result, error) {
	eff, err := o.efficiency()
	if err != nil {
		return nil, err
	}
	t := &table{
		title: "Fig. 14 — GPT-9.2B (80 layers) parallel-configuration sensitivity, DP4 fixed",
		cols:  []string{"mapping", "baseline iter(s)", "CB", "CB+FE", "CB+FE+SC"},
		notes: []string{"paper: ≥19.2% total speedup everywhere; CB gains grow with PP ways, SC gains grow as PP shrinks"},
	}
	for _, m := range []cluster.Mapping{
		{TP: 8, DP: 4, PP: 4},
		{TP: 4, DP: 4, PP: 8},
		{TP: 2, DP: 4, PP: 16},
	} {
		var cells []string
		var base float64
		for i, cfg := range []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()} {
			sc := sim.PaperScenario(cluster.GPT92B, cfg)
			sc.Map = m
			sc.Topo.Efficiency = eff
			r, err := sim.Simulate(sc)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = r.IterationSec
				cells = append(cells, f3(r.IterationSec))
			} else {
				cells = append(cells, pct(base/r.IterationSec-1))
			}
		}
		t.add(append([]string{m.String()}, cells...)...)
	}
	return t, nil
}

// Fig15Throughput measures real PowerSGD compression/decompression
// throughput in this Go implementation on the paper's tensor shapes, and
// reports the GPU-side model's predictions next to the paper's headline
// numbers.
func Fig15Throughput(o Options) (Result, error) {
	t := &table{
		title: "Fig. 15 — PowerSGD inter-stage compression throughput",
		cols:  []string{"model", "rank", "Go compress (Gb/s)", "Go decompress (Gb/s)", "GPU-model compress (Gb/s)", "GPU-model decompress (Gb/s)"},
		notes: []string{
			"paper (A100): 787 Gb/s compress, 68 Tb/s decompress at rank 16 on GPT-8.3B",
			"Go CPU columns verify the falls-with-rank trend on real code; the GPU-model columns",
			"reproduce the paper's absolute scale, the rises-with-model-size trend (kernel setup",
			"amortization), and the decompress ≫ compress gap (orthogonalization dominates).",
		},
	}
	cost := core.DefaultCompressionCostModel()
	shapes := []struct {
		name string
		spec cluster.GPTSpec
	}{{"GPT-8.3B", cluster.GPT83B}, {"GPT-175B", cluster.GPT175B}}
	for _, sh := range shapes {
		n := 8 * 128 // scaled-down token dimension keeps CPU runtime sane
		m := sh.spec.Hidden
		for _, rank := range []int{4, 16, 64} {
			comp, dec := measureThroughput(n, m, rank)
			gComp := cost.CompressThroughputBps(8*1024, m, rank, 2)
			gDec := cost.DecompressThroughputBps(8*1024, m, rank, 2)
			t.add(sh.name, fmt.Sprintf("%d", rank),
				f2(comp/1e9), f2(dec/1e9), f2(gComp/1e9), f2(gDec/1e9))
		}
	}
	return t, nil
}

// measureThroughput times real Go PowerSGD on an n×m matrix, through the
// pooled zero-allocation API so the numbers reflect the kernels rather
// than the Go allocator.
func measureThroughput(n, m, rank int) (compressBps, decompressBps float64) {
	c := compress.NewPowerSGD(rank, 1)
	g := tensor.RandN(newRand(42), n, m, 1)
	dst := tensor.New(n, m)
	bits := float64(int64(n)*int64(m)*compress.ElemBytes) * 8

	pl := c.Compress(g) // warm the Q cache and workspaces
	const reps = 3
	start := nowSec()
	for i := 0; i < reps; i++ {
		pl = c.Compress(g)
	}
	compressBps = bits * reps / (nowSec() - start)
	start = nowSec()
	for i := 0; i < reps; i++ {
		c.DecompressInto(dst, pl)
	}
	decompressBps = bits * reps / (nowSec() - start)
	return compressBps, decompressBps
}

// Fig16Scalability regenerates the scalability study: model sizes 2.5B to
// 175B with TP8/DP4 fixed and PP (and nodes) growing.
func Fig16Scalability(o Options) (Result, error) {
	eff, err := o.efficiency()
	if err != nil {
		return nil, err
	}
	t := &table{
		title: "Fig. 16 — scalability (TP8/DP4 fixed, PP and nodes grow with the model)",
		cols:  []string{"model", "GPUs", "baseline iter(s)", "Opt-CC iter(s)", "speedup"},
		notes: []string{"paper: Optimus-CC's speedup persists to GPT-175B"},
	}
	cases := []struct {
		spec  cluster.GPTSpec
		pp    int
		nodes int
	}{
		{cluster.GPT25B, 4, 16},
		{cluster.GPT83B, 4, 16},
		{cluster.GPT39B, 8, 32},
		{cluster.GPT175B, 16, 64},
	}
	for _, c := range cases {
		sc := sim.PaperScenario(c.spec, core.Baseline())
		sc.Map = cluster.Mapping{TP: 8, DP: 4, PP: c.pp}
		sc.Topo.Nodes = c.nodes
		sc.Topo.Efficiency = eff
		rb, err := sim.Simulate(sc)
		if err != nil {
			return nil, err
		}
		full := sc
		full.Cfg = core.CBFESC()
		rf, err := sim.Simulate(full)
		if err != nil {
			return nil, err
		}
		t.add(c.spec.Name, fmt.Sprintf("%d", sc.Map.Ways()),
			f3(rb.IterationSec), f3(rf.IterationSec), pct(rb.IterationSec/rf.IterationSec-1))
	}
	return t, nil
}

// EmbCost regenerates the §6 analytic model: baseline vs fused embedding
// synchronization cost versus the number of data-parallel groups.
func EmbCost(o Options) (Result, error) {
	t := &table{
		title: "Eq. 15/16 — embedding synchronization cost vs data-parallel ways",
		cols:  []string{"D", "baseline V-factor", "fused V-factor", "improvement", "simnet baseline(ms)", "simnet fused(ms)"},
		notes: []string{"paper: improvement is 42.9% at D=4 and approaches 50%"},
	}
	link := simnet.Link{Name: "ib", BandwidthBps: 200e9, LatencySec: 2e-6}
	embBytes := cluster.GPT83B.EmbeddingParams() / 8 * 2
	for _, d := range []int{2, 4, 8, 16, 32} {
		t.add(fmt.Sprintf("%d", d),
			f3(core.EmbSyncVolumeFactor(d)),
			f3(core.EmbSyncFusedVolumeFactor(d)),
			pct(core.EmbSyncImprovement(d)),
			f3(link.EmbSyncBaselineTime(embBytes, d)*1000),
			f3(link.EmbSyncFusedTime(embBytes, d)*1000))
	}
	return t, nil
}

// EpilogueOverlap quantifies Fig. 6: how many backward sends are in the
// epilogue, and how much of the inter-stage exposure epilogue-only
// compression removes relative to compressing everything.
func EpilogueOverlap(o Options) (Result, error) {
	sched, err := pipeline.OneFOneB(4, 16)
	if err != nil {
		return nil, err
	}
	t := &table{
		title: "Fig. 6 — epilogue structure (PP4, 16 micro-batches) and overlap",
		cols:  []string{"stage", "epilogue backward sends", "of total"},
	}
	for s := 0; s < 4; s++ {
		n := sched.EpilogueBackwardCount(s)
		t.add(fmt.Sprintf("%d", s), fmt.Sprintf("%d", n), fmt.Sprintf("%.0f%%", float64(n)/16*100))
	}
	base, err := o.simulate(cluster.GPT25B, core.Baseline())
	if err != nil {
		return nil, err
	}
	epi, err := o.simulate(cluster.GPT25B, core.CB())
	if err != nil {
		return nil, err
	}
	all := core.CB()
	all.EpilogueOnly = false
	rAll, err := o.simulate(cluster.GPT25B, all)
	if err != nil {
		return nil, err
	}
	t.notes = append(t.notes,
		fmt.Sprintf("epilogue-only speedup %+.2f%% vs compress-everything %+.2f%% — §5.2's claim that the epilogue carries the benefit",
			(base.IterationSec/epi.IterationSec-1)*100, (base.IterationSec/rAll.IterationSec-1)*100))
	return t, nil
}

func nowSec() float64 { return float64(time.Now().UnixNano()) / 1e9 }
