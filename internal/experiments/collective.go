package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// CollectiveVolume validates the analytic communication models (Eq.
// 15/16 and the 2V·(D−1)/D ring factor behind them) against the
// *executed* collective runtime: for each configuration it runs the real
// rank-based collective on real buffers, reads the transport's measured
// per-rank bytes and steps, and puts them next to the model's
// prediction. The last column prices the executed traffic over the
// paper's inter-node link with simnet.Link.TimeForVolume, against
// AllReduceTime's prediction — the predicted-vs-executed loop the ISSUE
// closes. A second table compares DP-sync compressor families selected
// through the registry (powersgd vs the terngrad quantizer) on real
// training runs — model quality next to executed dp-class wire volume.
type CollectiveVolume struct {
	t  table
	dp table
}

// Render implements Result.
func (r *CollectiveVolume) Render() string { return r.t.Render() + "\n" + r.dp.Render() }

// CollectiveVolumeExperiment runs the validation grid.
func CollectiveVolumeExperiment(o Options) (*CollectiveVolume, error) {
	const rows, cols = 32, 105 // 3360 elements: every D below partitions it evenly
	link := simnet.Link{Name: "ib4", BandwidthBps: 4 * 200e9, LatencySec: 5e-6}
	v := int64(rows*cols) * compress.ElemBytes

	res := &CollectiveVolume{t: table{
		title: "Collective runtime: predicted vs executed volume (V = dense payload)",
		cols: []string{"op", "D", "pred·V", "exec·V", "steps(model)", "steps(exec)",
			"t_pred(µs)", "t_exec(µs)"},
	}}

	fill := func(bufs []*tensor.Matrix, seed int64) {
		for i, b := range bufs {
			for j := range b.Data {
				b.Data[j] = float64((seed+int64(i*31+j))%17) / 17
			}
		}
	}
	bufsOf := func(n int) []*tensor.Matrix {
		out := make([]*tensor.Matrix, n)
		for i := range out {
			out[i] = tensor.New(rows, cols)
		}
		return out
	}
	record := func(op string, d int, predFactor float64, predSteps int,
		cs collective.ClassStats, ranks int, tPred float64) {
		execPerRank := float64(cs.Bytes) / float64(ranks)
		tExec := link.TimeForVolume(cs.Bytes/int64(ranks), int(cs.Steps))
		res.t.add(op, fmt.Sprint(d), f3(predFactor), f3(execPerRank/float64(v)),
			fmt.Sprint(predSteps), fmt.Sprint(cs.Steps),
			f2(tPred*1e6), f2(tExec*1e6))
	}

	for _, d := range []int{2, 4, 8} {
		// D-way ring all-reduce (the DP gradient average).
		topo, err := collective.NewTopology(d, 2)
		if err != nil {
			return nil, err
		}
		rt := collective.NewRuntime(topo, nil, nil)
		grp := rt.NewGroup(collective.ClassDP, topo.DPGroup(0))
		bufs := bufsOf(d)
		fill(bufs, int64(d))
		grp.AllReduce(bufs, 1/float64(d))
		record("allreduce", d, core.AllReduceVolumeFactor(d), simnet.AllReduceSteps(d),
			rt.Stats().For(collective.ClassDP), d, link.AllReduceTime(v, d))

		// §6 fused embedding sync: one 2D-way all-reduce (Eq. 16).
		fused := rt.NewGroup(collective.ClassEmb, topo.EmbGroup())
		fBufs := bufsOf(2 * d)
		fill(fBufs, 7)
		fused.AllReduce(fBufs, 1/float64(d))
		record("emb-fused", d, core.EmbSyncFusedVolumeFactor(d), simnet.AllReduceSteps(2*d),
			rt.Stats().For(collective.ClassEmb), 2*d, link.EmbSyncFusedTime(v, d))
		rt.Close()

		// §6 baseline: per-side D-way averages + per-replica 2-way sums
		// (Eq. 15). Fresh runtime so the emb class counts only this path.
		rt2 := collective.NewRuntime(topo, nil, nil)
		b0, bL := bufsOf(d), bufsOf(d)
		fill(b0, 3)
		fill(bL, 4)
		phase0 := rt2.Stats().For(collective.ClassEmb)
		rt2.NewGroup(collective.ClassEmb, topo.DPGroup(0)).AllReduce(b0, 1/float64(d))
		rt2.NewGroup(collective.ClassEmb, topo.DPGroup(1)).AllReduce(bL, 1/float64(d))
		phase1 := rt2.Stats().For(collective.ClassEmb)
		for dd := 0; dd < d; dd++ {
			pair := rt2.NewGroup(collective.ClassEmb, topo.EmbPair(dd))
			pair.AllReduce([]*tensor.Matrix{b0[dd], bL[dd]}, 1)
		}
		phase2 := rt2.Stats().For(collective.ClassEmb)
		// The transport aggregates steps over all groups; the model charges
		// the critical path, where the 2 sides of phase 1 and the D pairs
		// of phase 2 run concurrently on disjoint rank sets. Divide each
		// measured phase by its parallel width — a regression in the
		// runtime's step accounting shows up here as a pred/exec mismatch.
		cs := phase2
		cs.Steps = (phase1.Steps-phase0.Steps)/2 + (phase2.Steps-phase1.Steps)/int64(d)
		record("emb-baseline", d, core.EmbSyncVolumeFactor(d),
			simnet.AllReduceSteps(d)+simnet.AllReduceSteps(2), cs, 2*d,
			link.EmbSyncBaselineTime(v, d))
		rt2.Close()
	}
	res.t.notes = append(res.t.notes,
		"exec·V is transport-measured per-rank bytes over V; it must equal pred·V exactly",
		fmt.Sprintf("t_exec prices the executed traffic on %s via TimeForVolume; equality with t_pred closes the loop", link.Name),
	)
	if err := dpFamilyComparison(o, res); err != nil {
		return nil, err
	}
	return res, nil
}

// dpFamilyComparison trains the full Optimus-CC configuration with the
// DP-sync family selected by registry name — the paper's PowerSGD and
// the previously unreachable TernGrad quantizer — and reports validation
// perplexity next to the executed dp-class wire volume. This is the
// end-to-end proof that compressor selection flows config → plan →
// registry → compressed ring all-reduce, with no hardwired constructor
// on the path.
func dpFamilyComparison(o Options, res *CollectiveVolume) error {
	corpus, err := Corpus()
	if err != nil {
		return err
	}
	iters := o.Iterations / 2
	if iters < 60 {
		iters = 60
	}
	res.dp = table{
		title: fmt.Sprintf("DP-sync compressor families via the registry (real training, %d iterations)", iters),
		cols:  []string{"dp-alg", "val PPL", "dp bytes/iter", "vs dense"},
		notes: []string{"families are selected by name through compress.Build(plan.DPSpec(...)); 'dense' is the exact ring all-reduce"},
	}
	var denseBytes int64
	for _, alg := range []string{"dense", "powersgd", "terngrad"} {
		opt := core.CBFESC()
		if alg == "dense" {
			opt.SelectiveStageFraction = 0
			opt.DPRank = 0
		} else {
			opt.DPAlg = alg
		}
		cfg := o.trainConfig(opt)
		tr, err := trainNew(cfg, corpus)
		if err != nil {
			return err
		}
		tr.Train(iters, nil)
		ppl := tr.ValidationPerplexity(o.EvalWindows)
		st, _ := tr.CollectiveStats()
		perIter := st.For(collective.ClassDP).Bytes / int64(tr.Iteration())
		tr.Close()
		if alg == "dense" {
			denseBytes = perIter
		}
		rel := "1.00×"
		if denseBytes > 0 {
			rel = fmt.Sprintf("%.2f×", float64(perIter)/float64(denseBytes))
		}
		res.dp.add(alg, f3(ppl), fmt.Sprint(perIter), rel)
	}
	return nil
}
