// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §9). Timing artifacts come from the calibrated
// discrete-event simulator (internal/sim); model-quality artifacts come
// from real training of the scaled stand-in model (internal/train).
//
// Each experiment is a function from Options to a Result with a Render
// method; the registry maps the paper's artifact names (fig3, table2, …)
// to runners so cmd/optcc-bench and the benchmark harness can regenerate
// everything.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/sim"
	"repro/internal/train"
)

// Options parameterizes every experiment.
type Options struct {
	// Iterations is the real-training length for quality experiments.
	Iterations int
	// EvalWindows bounds validation-set evaluation size.
	EvalWindows int
	// TaskExamples is the per-probe-task example count.
	TaskExamples int
	// Efficiency is the calibrated cluster compute efficiency. Zero means
	// calibrate on demand.
	Efficiency float64
	// Seed drives the quality experiments.
	Seed int64
}

// DefaultOptions returns the settings used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Iterations: 700, EvalWindows: 500, TaskExamples: 200, Seed: 7}
}

// QuickOptions returns a fast smoke-test variant.
func QuickOptions() Options {
	return Options{Iterations: 120, EvalWindows: 200, TaskExamples: 60, Seed: 7}
}

// PaperIterationTarget is the paper's GPT-2.5B baseline iteration time:
// 14.72 days over 230K iterations (Table 2).
const PaperIterationTarget = 14.72 * 86400 / 230000

// calibrated caches the calibration result.
var calibrated float64

// CalibratedEfficiency fits (once) the cluster compute efficiency so the
// baseline GPT-2.5B scenario matches the paper's 14.72 days.
func CalibratedEfficiency() (float64, error) {
	if calibrated != 0 {
		return calibrated, nil
	}
	e, err := sim.Calibrate(sim.PaperScenario(cluster.GPT25B, core.Baseline()), PaperIterationTarget)
	if err != nil {
		return 0, err
	}
	calibrated = e
	return e, nil
}

func (o Options) efficiency() (float64, error) {
	if o.Efficiency != 0 {
		return o.Efficiency, nil
	}
	return CalibratedEfficiency()
}

// simulate runs the paper scenario for spec/cfg at the calibrated
// efficiency.
func (o Options) simulate(spec cluster.GPTSpec, cfg core.Config) (sim.Result, error) {
	eff, err := o.efficiency()
	if err != nil {
		return sim.Result{}, err
	}
	sc := sim.PaperScenario(spec, cfg)
	sc.Topo.Efficiency = eff
	return sim.Simulate(sc)
}

// ScaledOpt maps a paper-scale Optimus-CC configuration onto the stand-in
// model's tensor shapes: the paper's CB rank 16 (~10× compression of
// (micro·seq)×hidden matrices) becomes rank 3 on the 32×48 boundary, and
// DP rank 128 becomes rank 4 on the 48×48 layer gradients (both ~6–10×).
func ScaledOpt(c core.Config) core.Config {
	if c.CompressBackprop {
		c.CBRank = 3
	}
	if c.SelectiveStageFraction > 0 {
		c.DPRank = 4
	}
	return c
}

// trainConfig returns the standard quality-experiment trainer config.
func (o Options) trainConfig(opt core.Config) train.Config {
	cfg := train.DefaultConfig()
	cfg.MicroBatch = 32
	cfg.Opt = ScaledOpt(opt)
	cfg.Seed = o.Seed
	cfg.Model.Seed = o.Seed
	return cfg
}

// corpus caches the shared experiment corpus.
var corpusCache *data.Corpus

// Corpus returns the shared synthetic pretraining corpus.
func Corpus() (*data.Corpus, error) {
	if corpusCache == nil {
		c, err := data.Generate(data.DefaultConfig())
		if err != nil {
			return nil, err
		}
		corpusCache = c
	}
	return corpusCache, nil
}

// trainAndEval pretrains one configuration and returns (trainer, PPL).
func (o Options) trainAndEval(opt core.Config) (*train.Trainer, float64, error) {
	c, err := Corpus()
	if err != nil {
		return nil, 0, err
	}
	tr, err := train.New(o.trainConfig(opt), c)
	if err != nil {
		return nil, 0, err
	}
	tr.Train(o.Iterations, nil)
	return tr, tr.ValidationPerplexity(o.EvalWindows), nil
}

// Result is anything an experiment produces.
type Result interface {
	Render() string
}

// Runner executes one experiment.
type Runner func(Options) (Result, error)

// Registry maps artifact names to runners.
var Registry = map[string]Runner{
	"fig3":     func(o Options) (Result, error) { return Fig3Motivation(o) },
	"table2":   func(o Options) (Result, error) { return Table2(o) },
	"fig9":     func(o Options) (Result, error) { return Fig9Curves(o) },
	"fig10":    func(o Options) (Result, error) { return Fig10Breakdown(o) },
	"table3":   func(o Options) (Result, error) { return Table3ZeroShot(o) },
	"table4":   func(o Options) (Result, error) { return Table4LEP(o) },
	"fig11":    func(o Options) (Result, error) { return Fig11Conditions(o) },
	"fig12":    func(o Options) (Result, error) { return Fig12Memory(o) },
	"fig13":    func(o Options) (Result, error) { return Fig13Tradeoff(o) },
	"fig14":    func(o Options) (Result, error) { return Fig14Sensitivity(o) },
	"fig15":    func(o Options) (Result, error) { return Fig15Throughput(o) },
	"fig16":    func(o Options) (Result, error) { return Fig16Scalability(o) },
	"emb":      func(o Options) (Result, error) { return EmbCost(o) },
	"epilogue": func(o Options) (Result, error) { return EpilogueOverlap(o) },
	// Executable-runtime validation (beyond the paper's own artifacts):
	// the collective runtime's measured traffic vs the Eq. 15/16 models,
	// and the 1F1B pipeline executor's traffic vs the inter-stage model.
	"collective": func(o Options) (Result, error) { return CollectiveVolumeExperiment(o) },
	"pipeline":   func(o Options) (Result, error) { return PipelineVolumeExperiment(o) },
	"overlap":    func(o Options) (Result, error) { return OverlapExperiment(o) },
	// Sim-as-oracle plan search (ISSUE: autotune subsystem).
	"autotune": func(o Options) (Result, error) { return AutotuneSearch(o) },
	// Ablations beyond the paper's own artifacts.
	"ablate-lep":        AblateLEPGrid,
	"ablate-warmstart":  AblateWarmStart,
	"ablate-compressor": AblateCompressorFamily,
	"ablate-schedules":  AblateSchedules,
}

// Names returns the registry keys in sorted order.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// table is a tiny text-table renderer shared by experiment results.
type table struct {
	title string
	cols  []string
	rows  [][]string
	notes []string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) Render() string {
	w := make([]int, len(t.cols))
	for i, c := range t.cols {
		w[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(w) {
				fmt.Fprintf(&b, "%-*s  ", w[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }
