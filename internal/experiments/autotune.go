package experiments

import (
	"strings"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// AutotuneExperiment closes the paper's open question of whether the
// hand-picked Table-2 plan is actually the right point of the placement
// space: it measures quality points by really training a few
// configurations of the scaled stand-in model, fits the autotuner's
// quality model from them, searches the full space with the calibrated
// GPT-2.5B simulator as the oracle, and reports the ranked table plus a
// scaled-training quality check of the winner against the baseline.

// AutotuneResult carries the search outcome and the quality evidence.
type AutotuneResult struct {
	t *table
	// Search is the full ranked search result on GPT-2.5B.
	Search *autotune.Result
	// HandpickedSec is the hand-picked CBFESC plan's predicted iteration
	// time; WinnerSec the winner's. WinnerSec ≤ HandpickedSec always —
	// the hand-picked plan is in the space.
	HandpickedSec, WinnerSec float64
	// BaselinePPL, HandpickedPPL, WinnerPPL are measured validation
	// perplexities of the scaled stand-in runs.
	BaselinePPL, HandpickedPPL, WinnerPPL float64
	// Fitted is the quality model re-derived from the measured points.
	Fitted autotune.QualityModel
}

// Render emits the summary table followed by the ranked candidate table.
func (r *AutotuneResult) Render() string {
	var b strings.Builder
	b.WriteString(r.t.Render())
	b.WriteByte('\n')
	b.WriteString(r.Search.Table())
	return b.String()
}

// AutotuneSearch runs the experiment.
func AutotuneSearch(o Options) (*AutotuneResult, error) {
	const stages = 4 // the paper's GPT-2.5B pipeline depth

	// Quality points: really train the baseline, a CB-only run, and the
	// full hand-picked plan on the scaled stand-in, and fit the quality
	// model from the measured PPL deltas.
	baseTr, basePPL, err := o.trainAndEval(core.Baseline())
	if err != nil {
		return nil, err
	}
	baseTr.Close()
	cbCand := autotune.Candidate{CB: true, CBFamily: "powersgd", CBRank: 16}
	cbTr, cbPPL, err := o.trainAndEval(core.CB())
	if err != nil {
		return nil, err
	}
	cbTr.Close()
	fullCand := autotune.Candidate{
		CB: true, CBFamily: "powersgd", CBRank: 16,
		DPStages: 3, DPFamily: "powersgd", DPRank: 128,
		FuseEmbedding: true,
	}
	fullTr, fullPPL, err := o.trainAndEval(core.CBFESC())
	if err != nil {
		return nil, err
	}
	fullTr.Close()
	fitted := autotune.FitQualityModel([]autotune.QualityPoint{
		{Candidate: cbCand, DeltaPPL: cbPPL - basePPL},
		{Candidate: fullCand, DeltaPPL: fullPPL - basePPL},
	}, stages)

	// Search the space with the calibrated simulator as the oracle.
	eff, err := o.efficiency()
	if err != nil {
		return nil, err
	}
	sc := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	sc.Topo.Efficiency = eff
	ev, err := sim.NewEvaluator(sc)
	if err != nil {
		return nil, err
	}
	res, err := autotune.Search(ev, autotune.DefaultSpace(stages), fitted, autotune.Options{Seed: o.Seed, Top: 12})
	if err != nil {
		return nil, err
	}
	dense, err := ev.Price(core.Baseline(), 0)
	if err != nil {
		return nil, err
	}
	hand, err := ev.Price(core.CBFESC(), 0)
	if err != nil {
		return nil, err
	}

	// Quality check: really train the winner (rank-rescaled onto the
	// stand-in shapes like every quality experiment) and compare PPL.
	winTr, winPPL, err := o.trainAndEval(res.Winner.Config)
	if err != nil {
		return nil, err
	}
	winTr.Close()

	r := &AutotuneResult{
		Search:        res,
		HandpickedSec: hand.IterationSec,
		WinnerSec:     res.Winner.Estimate.IterationSec,
		BaselinePPL:   basePPL,
		HandpickedPPL: fullPPL,
		WinnerPPL:     winPPL,
		Fitted:        fitted,
	}
	t := &table{
		title: "Plan autotuning on GPT-2.5B (sim-as-oracle search vs the hand-picked Table-2 plan)",
		cols:  []string{"plan", "iter(s)", "speedup", "scaled PPL"},
	}
	speed := func(sec float64) string { return pct(dense.IterationSec/sec - 1) }
	t.add("baseline (dense)", f3(dense.IterationSec), pct(0), f3(basePPL))
	t.add("hand-picked CBFESC", f3(hand.IterationSec), speed(hand.IterationSec), f3(fullPPL))
	t.add("autotuned "+res.Winner.Candidate.Key(), f3(res.Winner.Estimate.IterationSec), speed(res.Winner.Estimate.IterationSec), f3(winPPL))
	t.notes = append(t.notes,
		"quality model fitted from measured scaled-training ΔPPL; search admits only candidates inside the fitted budget")
	r.t = t
	return r, nil
}
