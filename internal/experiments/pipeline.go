package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/train"
)

// PipelineVolume validates the executable 1F1B pipeline against the
// analytic inter-stage model: for each grid and compression mode it runs
// the real executor (one goroutine per (dp, stage) rank, tensors shipped
// over the collective transport), reads the transport's measured
// pp-class traffic, and puts it next to sim.PredictInterStage's fwd+bwd
// prediction. The last columns price both over the paper's inter-node
// link — the predicted-vs-executed loop that was impossible while
// forward activations went unaccounted and backward sends were only
// booked, not executed.
type PipelineVolume struct {
	t table
	// Mismatches counts rows where executed ≠ predicted (tests pin 0).
	Mismatches int
}

// Render implements Result.
func (r *PipelineVolume) Render() string { return r.t.Render() }

// PipelineVolumeExperiment runs the validation grid.
func PipelineVolumeExperiment(o Options) (*PipelineVolume, error) {
	corpus, err := Corpus()
	if err != nil {
		return nil, err
	}
	link := simnet.Link{Name: "ib", BandwidthBps: 200e9, LatencySec: 5e-6}
	const iters = 2

	res := &PipelineVolume{t: table{
		title: "1F1B pipeline executor: predicted vs executed inter-stage traffic",
		cols: []string{"mode", "grid", "pred·B", "exec·B", "pred·msg", "exec·msg",
			"steps", "t_pred(µs)", "t_exec(µs)", "match"},
	}}

	// core.CB is the paper's epilogue-only configuration; cb-full is the
	// §5.2 straw man compressing every backward send.
	cbEpi := ScaledOpt(core.CB())
	cbFull := cbEpi
	cbFull.EpilogueOnly = false
	modes := []struct {
		name string
		opt  core.Config
	}{
		{"exact", core.Baseline()},
		{"cb-full", cbFull},
		{"cb-epilogue", cbEpi},
	}

	for _, mode := range modes {
		for _, g := range []struct{ dp, pp int }{{2, 4}, {4, 2}} {
			cfg := train.DefaultConfig()
			cfg.MicroBatch = 32
			cfg.DPGroups = g.dp
			cfg.Stages = g.pp
			cfg.Opt = mode.opt
			tr, err := train.New(cfg, corpus)
			if err != nil {
				return nil, err
			}
			before, _ := tr.CollectiveStats()
			for i := 0; i < iters; i++ {
				tr.TrainIteration()
			}
			after, _ := tr.CollectiveStats()
			exec := after.Sub(before).For(collective.ClassPP)
			tr.Close()

			dense := int64(cfg.MicroBatch*cfg.Model.Hidden) * compress.ElemBytes
			var cmp int64
			if mode.opt.CompressBackprop {
				// PowerSGD payloads are shape-determined: r·(n+m) elements
				// on the wire (a trainer-level test pins the closed form
				// against a real compression).
				cmp = core.LowRankWireBytes(cfg.MicroBatch, cfg.Model.Hidden,
					mode.opt.CBRank, compress.ElemBytes)
			}
			pred, err := sim.PredictInterStage(mode.opt, cfg.Stages, cfg.MicroBatches, dense, cmp)
			if err != nil {
				return nil, err
			}
			scale := int64(cfg.DPGroups * iters)
			predBytes, predMsgs := pred.Bytes*scale, pred.Messages*scale

			match := "yes"
			if exec.Bytes != predBytes || exec.Messages != predMsgs || exec.Steps != predMsgs {
				match = "NO"
				res.Mismatches++
			}
			res.t.add(mode.name, fmt.Sprintf("dp%d×pp%d", g.dp, g.pp),
				fmt.Sprint(predBytes), fmt.Sprint(exec.Bytes),
				fmt.Sprint(predMsgs), fmt.Sprint(exec.Messages), fmt.Sprint(exec.Steps),
				f2(link.TimeForVolume(predBytes, int(predMsgs))*1e6),
				f2(link.TimeForVolume(exec.Bytes, int(exec.Steps))*1e6),
				match)
		}
	}
	res.t.notes = append(res.t.notes,
		fmt.Sprintf("executed = transport-measured pp-class traffic of %d iterations (fwd activations + bwd activation-gradients)", iters),
		"pred = sim.PredictInterStage: dense forwards, backward sends compressed exactly where §5/§5.2 select",
	)
	return res, nil
}
