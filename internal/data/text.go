package data

import (
	"fmt"
	"strings"
)

// Human-readable rendering of token streams, plus a reversible
// tokenizer. The paper's artifact ships "NLP dataset generation code";
// this file is the reproduction's equivalent: synthetic token streams can
// be rendered as pseudo-text for inspection and re-tokenized losslessly.

// wordList deterministically names each token id: short pronounceable
// pseudo-words built from alternating consonants and vowels.
func wordList(vocab int) []string {
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t"}
	vowels := []string{"a", "e", "i", "o", "u"}
	out := make([]string, vocab)
	for i := range out {
		c1 := consonants[i%len(consonants)]
		v1 := vowels[(i/len(consonants))%len(vowels)]
		c2 := consonants[(i/(len(consonants)*len(vowels)))%len(consonants)]
		out[i] = c1 + v1 + c2
		if i >= len(consonants)*len(vowels)*len(consonants) {
			out[i] = fmt.Sprintf("%s%d", out[i], i)
		}
	}
	return out
}

// Tokenizer maps token ids to pseudo-words and back, losslessly.
type Tokenizer struct {
	words map[int]string
	ids   map[string]int
}

// NewTokenizer builds a tokenizer for a vocabulary size.
func NewTokenizer(vocab int) *Tokenizer {
	t := &Tokenizer{words: make(map[int]string, vocab), ids: make(map[string]int, vocab)}
	for i, w := range wordList(vocab) {
		t.words[i] = w
		t.ids[w] = i
	}
	return t
}

// Render converts token ids into space-separated pseudo-text.
func (t *Tokenizer) Render(tokens []int) string {
	parts := make([]string, len(tokens))
	for i, tok := range tokens {
		w, ok := t.words[tok]
		if !ok {
			w = fmt.Sprintf("<unk:%d>", tok)
		}
		parts[i] = w
	}
	return strings.Join(parts, " ")
}

// Tokenize converts pseudo-text back into token ids, reporting unknown
// words.
func (t *Tokenizer) Tokenize(text string) ([]int, error) {
	fields := strings.Fields(text)
	out := make([]int, len(fields))
	for i, f := range fields {
		id, ok := t.ids[f]
		if !ok {
			return nil, fmt.Errorf("data: unknown word %q at position %d", f, i)
		}
		out[i] = id
	}
	return out, nil
}

// Sample renders the first n tokens of the training split for inspection.
func (c *Corpus) Sample(n int) string {
	if n > len(c.Train) {
		n = len(c.Train)
	}
	return NewTokenizer(c.Vocab).Render(c.Train[:n])
}
