package data

import (
	"fmt"
	"math/rand"
)

// Document-level corpus pipeline. §9.1 describes the paper's
// preprocessing: concatenating several corpora, "including the
// elimination of short documents and deduplication". This file
// reproduces that pipeline over synthetic documents: generate documents
// from per-domain Markov chains, drop short ones, deduplicate, and
// concatenate into a training stream.

// Document is one synthetic document: a token sequence with a domain tag
// (the stand-in for RealNews vs Wikipedia vs CC-Stories vs OpenWebText).
type Document struct {
	Domain string
	Tokens []int
}

// DocConfig parameterizes document generation for one domain.
type DocConfig struct {
	Domain    string
	Count     int
	MinLen    int // documents shorter than MinLen are candidates for filtering
	MaxLen    int
	Vocab     int
	Peakiness float64
	Branch    int
	Seed      int64
}

// Validate reports configuration errors.
func (c DocConfig) Validate() error {
	switch {
	case c.Domain == "":
		return fmt.Errorf("data: empty domain")
	case c.Count < 1:
		return fmt.Errorf("data: %s: Count %d < 1", c.Domain, c.Count)
	case c.MinLen < 3 || c.MaxLen < c.MinLen:
		return fmt.Errorf("data: %s: length bounds [%d, %d] invalid", c.Domain, c.MinLen, c.MaxLen)
	case c.Vocab < 4:
		return fmt.Errorf("data: %s: Vocab %d < 4", c.Domain, c.Vocab)
	case c.Peakiness <= 0 || c.Peakiness >= 1:
		return fmt.Errorf("data: %s: Peakiness %v outside (0,1)", c.Domain, c.Peakiness)
	case c.Branch < 1 || c.Branch >= c.Vocab:
		return fmt.Errorf("data: %s: Branch %d outside [1, Vocab)", c.Domain, c.Branch)
	}
	return nil
}

// GenerateDocuments produces Count documents from a domain-specific chain.
func GenerateDocuments(cfg DocConfig) ([]Document, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	chain := newMarkov(Config{Vocab: cfg.Vocab, Peakiness: cfg.Peakiness, Branch: cfg.Branch}, rng)
	docs := make([]Document, cfg.Count)
	for i := range docs {
		n := cfg.MinLen/2 + rng.Intn(cfg.MaxLen-cfg.MinLen/2+1)
		toks := make([]int, n)
		toks[0] = rng.Intn(cfg.Vocab)
		if n > 1 {
			toks[1] = rng.Intn(cfg.Vocab)
		}
		for j := 2; j < n; j++ {
			toks[j] = chain.next(rng, toks[j-2], toks[j-1])
		}
		docs[i] = Document{Domain: cfg.Domain, Tokens: toks}
	}
	return docs, nil
}

// FilterShort drops documents shorter than minLen — the paper's
// "elimination of short documents".
func FilterShort(docs []Document, minLen int) []Document {
	out := docs[:0:0]
	for _, d := range docs {
		if len(d.Tokens) >= minLen {
			out = append(out, d)
		}
	}
	return out
}

// Deduplicate removes exact-duplicate documents (by token content,
// ignoring domain), keeping first occurrences — the paper's
// "deduplication" step.
func Deduplicate(docs []Document) []Document {
	seen := make(map[string]bool, len(docs))
	out := docs[:0:0]
	for _, d := range docs {
		key := fingerprint(d.Tokens)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// fingerprint encodes a token sequence as a compact string key.
func fingerprint(tokens []int) string {
	b := make([]byte, 0, len(tokens)*2)
	for _, t := range tokens {
		b = append(b, byte(t), byte(t>>8))
	}
	return string(b)
}

// Concat joins documents into one token stream, shuffled by the seed (the
// paper concatenates its corpora into a single training corpus).
func Concat(docs []Document, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(docs))
	var out []int
	for _, i := range order {
		out = append(out, docs[i].Tokens...)
	}
	return out
}

// BuildCorpusFromDocuments runs the full §9.1 pipeline over several
// domains and returns a Corpus with the usual holdout split. The returned
// corpus has no generative chain, so TaskSuite cannot be built from it;
// it exists for pipeline testing and perplexity experiments on
// multi-domain data.
func BuildCorpusFromDocuments(domains []DocConfig, minLen int, valFrac float64, seed int64) (*Corpus, error) {
	if len(domains) == 0 {
		return nil, fmt.Errorf("data: no domains")
	}
	if valFrac <= 0 || valFrac >= 0.5 {
		return nil, fmt.Errorf("data: valFrac %v outside (0, 0.5)", valFrac)
	}
	vocab := domains[0].Vocab
	var all []Document
	for _, d := range domains {
		if d.Vocab != vocab {
			return nil, fmt.Errorf("data: domain %s vocab %d != %d", d.Domain, d.Vocab, vocab)
		}
		docs, err := GenerateDocuments(d)
		if err != nil {
			return nil, err
		}
		all = append(all, docs...)
	}
	all = Deduplicate(FilterShort(all, minLen))
	tokens := Concat(all, seed)
	if len(tokens) < 100 {
		return nil, fmt.Errorf("data: pipeline left only %d tokens", len(tokens))
	}
	nVal := int(float64(len(tokens)) * valFrac)
	return &Corpus{Vocab: vocab, Val: tokens[:nVal], Train: tokens[nVal:]}, nil
}
