package data

import (
	"testing"
)

func docCfg(domain string, seed int64) DocConfig {
	return DocConfig{
		Domain: domain, Count: 50, MinLen: 10, MaxLen: 40,
		Vocab: 16, Peakiness: 0.8, Branch: 3, Seed: seed,
	}
}

func TestGenerateDocuments(t *testing.T) {
	docs, err := GenerateDocuments(docCfg("news", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 50 {
		t.Fatalf("got %d docs", len(docs))
	}
	for _, d := range docs {
		if d.Domain != "news" {
			t.Fatal("domain lost")
		}
		if len(d.Tokens) < 5 || len(d.Tokens) > 40 {
			t.Fatalf("doc length %d outside bounds", len(d.Tokens))
		}
		for _, tok := range d.Tokens {
			if tok < 0 || tok >= 16 {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
}

func TestDocConfigValidation(t *testing.T) {
	bads := []DocConfig{
		{},
		{Domain: "x", Count: 0, MinLen: 10, MaxLen: 40, Vocab: 16, Peakiness: 0.8, Branch: 3},
		{Domain: "x", Count: 5, MinLen: 40, MaxLen: 10, Vocab: 16, Peakiness: 0.8, Branch: 3},
		{Domain: "x", Count: 5, MinLen: 10, MaxLen: 40, Vocab: 2, Peakiness: 0.8, Branch: 1},
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestFilterShort(t *testing.T) {
	docs := []Document{
		{Domain: "a", Tokens: []int{1, 2}},
		{Domain: "a", Tokens: []int{1, 2, 3, 4, 5}},
	}
	out := FilterShort(docs, 3)
	if len(out) != 1 || len(out[0].Tokens) != 5 {
		t.Fatalf("filter wrong: %v", out)
	}
}

func TestDeduplicate(t *testing.T) {
	docs := []Document{
		{Domain: "a", Tokens: []int{1, 2, 3}},
		{Domain: "b", Tokens: []int{1, 2, 3}}, // dup content, other domain
		{Domain: "a", Tokens: []int{3, 2, 1}},
	}
	out := Deduplicate(docs)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d docs", len(out))
	}
	if out[0].Domain != "a" {
		t.Fatal("first occurrence should win")
	}
}

func TestFingerprintDistinguishesMultiByteTokens(t *testing.T) {
	// Tokens 1 and 257 differ only in the high byte.
	a := fingerprint([]int{257})
	b := fingerprint([]int{1})
	if a == b {
		t.Fatal("fingerprint collides across byte boundaries")
	}
}

func TestConcatDeterministicShuffle(t *testing.T) {
	docs, _ := GenerateDocuments(docCfg("x", 2))
	a := Concat(docs, 9)
	b := Concat(docs, 9)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same concat")
		}
	}
	var total int
	for _, d := range docs {
		total += len(d.Tokens)
	}
	if len(a) != total {
		t.Fatalf("concat lost tokens: %d vs %d", len(a), total)
	}
}

func TestBuildCorpusFromDocuments(t *testing.T) {
	domains := []DocConfig{
		docCfg("news", 1),
		docCfg("wiki", 2),
		docCfg("stories", 3),
		docCfg("web", 4),
	}
	for i := range domains {
		domains[i].Count = 120
	}
	c, err := BuildCorpusFromDocuments(domains, 12, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Vocab != 16 {
		t.Fatalf("vocab %d", c.Vocab)
	}
	if len(c.Val) == 0 || len(c.Train) == 0 {
		t.Fatal("empty split")
	}
	// The corpus must work with the standard batching machinery.
	ctxs, tgts := c.ValWindows(3, 20)
	if len(ctxs) == 0 || len(tgts) != len(ctxs) {
		t.Fatal("windows broken")
	}
}

func TestBuildCorpusErrors(t *testing.T) {
	if _, err := BuildCorpusFromDocuments(nil, 5, 0.05, 1); err == nil {
		t.Fatal("no domains accepted")
	}
	mixed := []DocConfig{docCfg("a", 1), docCfg("b", 2)}
	mixed[1].Vocab = 32
	if _, err := BuildCorpusFromDocuments(mixed, 5, 0.05, 1); err == nil {
		t.Fatal("vocab mismatch accepted")
	}
	if _, err := BuildCorpusFromDocuments([]DocConfig{docCfg("a", 1)}, 5, 0.9, 1); err == nil {
		t.Fatal("bad valFrac accepted")
	}
}
