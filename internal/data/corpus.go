// Package data generates the synthetic pretraining corpus and the
// zero-shot probe tasks that stand in for the paper's datasets
// (RealNews/Wikipedia/CC-Stories/OpenWebText) and downstream tasks
// (LAMBADA, PIQA, MathQA, WinoGrande, RACE).
//
// The corpus is drawn from a seeded second-order Markov chain with peaked
// transition distributions, so a C-token context carries real predictive
// signal and validation perplexity is a meaningful quality metric: an
// untrained model sits at PPL≈V while a well-trained one approaches the
// entropy floor of the chain. Compression-induced quality loss therefore
// shows up exactly as it does in the paper's Fig. 9.
package data

import (
	"fmt"
	"math/rand"
)

// Config describes the synthetic corpus.
type Config struct {
	Vocab     int     // vocabulary size
	Length    int     // number of training tokens to generate
	ValFrac   float64 // fraction held out for validation (§9.1 uses 5%)
	Peakiness float64 // probability mass on the preferred next token, in (0,1)
	Branch    int     // number of plausible next tokens per bigram state
	Seed      int64
}

// DefaultConfig returns the corpus configuration used by the experiments.
func DefaultConfig() Config {
	return Config{Vocab: 32, Length: 60000, ValFrac: 0.05, Peakiness: 0.75, Branch: 3, Seed: 1234}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Vocab < 4:
		return fmt.Errorf("data: Vocab %d < 4", c.Vocab)
	case c.Length < 100:
		return fmt.Errorf("data: Length %d < 100", c.Length)
	case c.ValFrac <= 0 || c.ValFrac >= 0.5:
		return fmt.Errorf("data: ValFrac %v outside (0, 0.5)", c.ValFrac)
	case c.Peakiness <= 0 || c.Peakiness >= 1:
		return fmt.Errorf("data: Peakiness %v outside (0,1)", c.Peakiness)
	case c.Branch < 1 || c.Branch >= c.Vocab:
		return fmt.Errorf("data: Branch %d outside [1, Vocab)", c.Branch)
	}
	return nil
}

// Corpus is a tokenized text with a train/validation split (holdout at the
// front, mirroring the paper's "splitting documents at the beginning").
type Corpus struct {
	Vocab int
	Train []int
	Val   []int
	chain *markov
}

// markov is a second-order chain: for each (prev2, prev1) state a small
// set of successor tokens with a peaked distribution.
type markov struct {
	vocab     int
	branch    int
	peakiness float64
	succ      [][]int // state → candidate successors; succ[0] is preferred
}

func newMarkov(cfg Config, rng *rand.Rand) *markov {
	m := &markov{vocab: cfg.Vocab, branch: cfg.Branch, peakiness: cfg.Peakiness}
	states := cfg.Vocab * cfg.Vocab
	m.succ = make([][]int, states)
	for s := range m.succ {
		cands := make([]int, cfg.Branch)
		for i := range cands {
			cands[i] = rng.Intn(cfg.Vocab)
		}
		m.succ[s] = cands
	}
	return m
}

func (m *markov) state(prev2, prev1 int) int { return prev2*m.vocab + prev1 }

// next samples the successor of (prev2, prev1).
func (m *markov) next(rng *rand.Rand, prev2, prev1 int) int {
	cands := m.succ[m.state(prev2, prev1)]
	if rng.Float64() < m.peakiness {
		return cands[0]
	}
	return cands[rng.Intn(len(cands))]
}

// preferred returns the most likely successor of (prev2, prev1) — the
// label the probe tasks treat as ground truth.
func (m *markov) preferred(prev2, prev1 int) int {
	return m.succ[m.state(prev2, prev1)][0]
}

// Generate builds a corpus from cfg.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	chain := newMarkov(cfg, rng)
	tokens := make([]int, cfg.Length)
	tokens[0] = rng.Intn(cfg.Vocab)
	tokens[1] = rng.Intn(cfg.Vocab)
	for i := 2; i < cfg.Length; i++ {
		tokens[i] = chain.next(rng, tokens[i-2], tokens[i-1])
	}
	nVal := int(float64(cfg.Length) * cfg.ValFrac)
	return &Corpus{
		Vocab: cfg.Vocab,
		Val:   tokens[:nVal],
		Train: tokens[nVal:],
		chain: chain,
	}, nil
}

// SampleBatch draws a random batch of (context, next-token) windows from
// the training split.
func (c *Corpus) SampleBatch(rng *rand.Rand, batch, context int) (contexts [][]int, targets []int) {
	contexts = make([][]int, batch)
	targets = make([]int, batch)
	maxStart := len(c.Train) - context - 1
	for i := 0; i < batch; i++ {
		s := rng.Intn(maxStart)
		ctx := make([]int, context)
		copy(ctx, c.Train[s:s+context])
		contexts[i] = ctx
		targets[i] = c.Train[s+context]
	}
	return contexts, targets
}

// ValWindows returns up to limit deterministic (context, target) windows
// from the validation split, striding so they cover the whole holdout.
func (c *Corpus) ValWindows(context, limit int) (contexts [][]int, targets []int) {
	avail := len(c.Val) - context - 1
	if avail <= 0 {
		return nil, nil
	}
	stride := 1
	if limit > 0 && avail > limit {
		stride = avail / limit
	}
	for s := 0; s+context < len(c.Val)-1 && (limit <= 0 || len(targets) < limit); s += stride {
		ctx := make([]int, context)
		copy(ctx, c.Val[s:s+context])
		contexts = append(contexts, ctx)
		targets = append(targets, c.Val[s+context])
	}
	return contexts, targets
}
