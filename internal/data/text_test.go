package data

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizerRoundTrip(t *testing.T) {
	tok := NewTokenizer(32)
	ids := []int{0, 5, 31, 17, 2, 2}
	text := tok.Render(ids)
	back, err := tok.Tokenize(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ids) {
		t.Fatalf("length %d != %d", len(back), len(ids))
	}
	for i := range ids {
		if back[i] != ids[i] {
			t.Fatalf("token %d: %d != %d", i, back[i], ids[i])
		}
	}
}

func TestTokenizerWordsDistinct(t *testing.T) {
	tok := NewTokenizer(64)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		w := tok.words[i]
		if w == "" {
			t.Fatalf("token %d has no word", i)
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
}

func TestTokenizeUnknownWord(t *testing.T) {
	tok := NewTokenizer(8)
	if _, err := tok.Tokenize("definitely-not-a-word"); err == nil {
		t.Fatal("unknown word accepted")
	}
}

func TestRenderUnknownToken(t *testing.T) {
	tok := NewTokenizer(4)
	out := tok.Render([]int{99})
	if !strings.Contains(out, "<unk:99>") {
		t.Fatalf("unknown token rendered as %q", out)
	}
}

func TestCorpusSample(t *testing.T) {
	c, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sample(10)
	if len(strings.Fields(s)) != 10 {
		t.Fatalf("sample has %d words", len(strings.Fields(s)))
	}
	// Oversized request clamps.
	all := c.Sample(1 << 30)
	if len(strings.Fields(all)) != len(c.Train) {
		t.Fatal("clamping broken")
	}
}

// Property: round-trip is lossless for any valid token sequence.
func TestTokenizerRoundTripProperty(t *testing.T) {
	tok := NewTokenizer(48)
	f := func(raw []uint8) bool {
		ids := make([]int, len(raw))
		for i, r := range raw {
			ids[i] = int(r) % 48
		}
		back, err := tok.Tokenize(tok.Render(ids))
		if err != nil {
			return false
		}
		if len(back) != len(ids) {
			return false
		}
		for i := range ids {
			if back[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
