package data

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Predictor is anything that maps token contexts to next-token logits —
// satisfied by the trained model. Tasks are evaluated zero-shot: no
// fine-tuning, exactly as in §9.2/Table 3.
type Predictor interface {
	PredictLogits(contexts [][]int) *tensor.Matrix
}

// Example is one probe instance: given Context, the model must rank
// Choices[Answer] highest among Choices.
type Example struct {
	Context []int
	Choices []int
	Answer  int // index into Choices
}

// Task is a named set of examples, the stand-in for one zero-shot
// benchmark row of Table 3.
type Task struct {
	Name     string
	Examples []Example
}

// Accuracy evaluates p on the task: an example is correct when the logit
// of the true choice beats every distractor's.
func (t *Task) Accuracy(p Predictor) float64 {
	if len(t.Examples) == 0 {
		return 0
	}
	contexts := make([][]int, len(t.Examples))
	for i, ex := range t.Examples {
		contexts[i] = ex.Context
	}
	logits := p.PredictLogits(contexts)
	correct := 0
	for i, ex := range t.Examples {
		row := logits.Row(i)
		best, bi := row[ex.Choices[0]], 0
		for ci, tok := range ex.Choices[1:] {
			if row[tok] > best {
				best, bi = row[tok], ci+1
			}
		}
		if bi == ex.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(t.Examples))
}

// TaskSuite builds the five probe tasks from the corpus's own generative
// chain, each mirroring the flavour of one paper benchmark:
//
//	last-word  — LAMBADA: predict the chain-preferred final token.
//	cloze      — RACE: pick the right completion among 4 choices.
//	copy       — PIQA-ish structural reasoning: continue an (a b)^k pattern.
//	pattern    — MathQA-ish: continue a fixed-stride token arithmetic.
//	agreement  — WinoGrande: the first context token decides between two
//	             final candidates.
//
// copy/pattern/agreement deliberately probe out-of-distribution structure,
// so (as with the paper's real tasks) accuracies sit well below 100% and
// degrade when compression damages the model.
func TaskSuite(c *Corpus, context, examplesPerTask int, seed int64) []*Task {
	if c.chain == nil {
		panic("data: corpus has no generative chain (not built by Generate)")
	}
	rng := rand.New(rand.NewSource(seed))
	return []*Task{
		lastWordTask(c, rng, context, examplesPerTask),
		clozeTask(c, rng, context, examplesPerTask),
		copyTask(c, rng, context, examplesPerTask),
		patternTask(c, rng, context, examplesPerTask),
		agreementTask(c, rng, context, examplesPerTask),
	}
}

// sampleChainContext draws a context whose continuation the chain
// determines, starting from a random point of the *validation* split so
// the probes never overlap training windows.
func sampleChainContext(c *Corpus, rng *rand.Rand, context int) []int {
	maxStart := len(c.Val) - context
	s := rng.Intn(maxStart)
	ctx := make([]int, context)
	copy(ctx, c.Val[s:s+context])
	return ctx
}

func lastWordTask(c *Corpus, rng *rand.Rand, context, n int) *Task {
	t := &Task{Name: "last-word"}
	for i := 0; i < n; i++ {
		ctx := sampleChainContext(c, rng, context)
		ans := c.chain.preferred(ctx[context-2], ctx[context-1])
		choices := distinctChoices(rng, c.Vocab, ans, c.Vocab) // all tokens
		t.Examples = append(t.Examples, Example{Context: ctx, Choices: choices.toks, Answer: choices.answer})
	}
	return t
}

func clozeTask(c *Corpus, rng *rand.Rand, context, n int) *Task {
	t := &Task{Name: "cloze"}
	for i := 0; i < n; i++ {
		ctx := sampleChainContext(c, rng, context)
		ans := c.chain.preferred(ctx[context-2], ctx[context-1])
		choices := distinctChoices(rng, c.Vocab, ans, 4)
		t.Examples = append(t.Examples, Example{Context: ctx, Choices: choices.toks, Answer: choices.answer})
	}
	return t
}

func copyTask(c *Corpus, rng *rand.Rand, context, n int) *Task {
	t := &Task{Name: "copy"}
	for i := 0; i < n; i++ {
		a := rng.Intn(c.Vocab)
		b := rng.Intn(c.Vocab)
		ctx := make([]int, context)
		for j := range ctx {
			if j%2 == 0 {
				ctx[j] = a
			} else {
				ctx[j] = b
			}
		}
		// Continuation of the alternation.
		ans := a
		if context%2 == 1 {
			ans = b
		}
		wrong := ans
		if wrong == a {
			wrong = b
		} else {
			wrong = a
		}
		ex := Example{Context: ctx, Choices: []int{ans, wrong}, Answer: 0}
		if a == b {
			continue // degenerate, skip
		}
		t.Examples = append(t.Examples, ex)
	}
	return t
}

func patternTask(c *Corpus, rng *rand.Rand, context, n int) *Task {
	t := &Task{Name: "pattern"}
	for i := 0; i < n; i++ {
		stride := 1 + rng.Intn(3)
		start := rng.Intn(c.Vocab)
		ctx := make([]int, context)
		for j := range ctx {
			ctx[j] = (start + j*stride) % c.Vocab
		}
		ans := (start + context*stride) % c.Vocab
		choices := distinctChoices(rng, c.Vocab, ans, 4)
		t.Examples = append(t.Examples, Example{Context: ctx, Choices: choices.toks, Answer: choices.answer})
	}
	return t
}

func agreementTask(c *Corpus, rng *rand.Rand, context, n int) *Task {
	t := &Task{Name: "agreement"}
	for i := 0; i < n; i++ {
		ctx := sampleChainContext(c, rng, context)
		// The "referent" is the first token; the correct completion is the
		// chain-preferred successor of (first, last) — long-range
		// dependence the model only resolves if the early context
		// survives through the layers.
		ans := c.chain.preferred(ctx[0], ctx[context-1])
		other := c.chain.preferred((ctx[0]+1)%c.Vocab, ctx[context-1])
		if other == ans {
			other = (ans + 1) % c.Vocab
		}
		ex := Example{Context: ctx, Choices: []int{ans, other}, Answer: 0}
		if rng.Intn(2) == 1 { // randomize answer position
			ex.Choices = []int{other, ans}
			ex.Answer = 1
		}
		t.Examples = append(t.Examples, ex)
	}
	return t
}

type choiceSet struct {
	toks   []int
	answer int
}

// distinctChoices returns k distinct tokens including ans, with the
// answer's position randomized.
func distinctChoices(rng *rand.Rand, vocab, ans, k int) choiceSet {
	if k > vocab {
		k = vocab
	}
	seen := map[int]bool{ans: true}
	toks := []int{ans}
	for len(toks) < k {
		t := rng.Intn(vocab)
		if !seen[t] {
			seen[t] = true
			toks = append(toks, t)
		}
	}
	// Shuffle and track the answer.
	rng.Shuffle(len(toks), func(i, j int) { toks[i], toks[j] = toks[j], toks[i] })
	for i, t := range toks {
		if t == ans {
			return choiceSet{toks: toks, answer: i}
		}
	}
	panic(fmt.Sprintf("data: answer %d lost during shuffle", ans))
}
