package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func smallCfg() Config {
	return Config{Vocab: 16, Length: 5000, ValFrac: 0.1, Peakiness: 0.8, Branch: 3, Seed: 7}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{Vocab: 2, Length: 5000, ValFrac: 0.1, Peakiness: 0.8, Branch: 2},
		{Vocab: 16, Length: 10, ValFrac: 0.1, Peakiness: 0.8, Branch: 2},
		{Vocab: 16, Length: 5000, ValFrac: 0.9, Peakiness: 0.8, Branch: 2},
		{Vocab: 16, Length: 5000, ValFrac: 0.1, Peakiness: 1.5, Branch: 2},
		{Vocab: 16, Length: 5000, ValFrac: 0.1, Peakiness: 0.8, Branch: 16},
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGenerateSplit(t *testing.T) {
	cfg := smallCfg()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train)+len(c.Val) != cfg.Length {
		t.Fatalf("split lost tokens: %d+%d != %d", len(c.Train), len(c.Val), cfg.Length)
	}
	if len(c.Val) != int(float64(cfg.Length)*cfg.ValFrac) {
		t.Fatalf("val size %d", len(c.Val))
	}
	for _, tok := range c.Train {
		if tok < 0 || tok >= cfg.Vocab {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallCfg())
	b, _ := Generate(smallCfg())
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("same seed must give same corpus")
		}
	}
}

func TestCorpusIsLearnable(t *testing.T) {
	// A bigram-oracle (the chain's preferred successor) must beat chance
	// by a wide margin — otherwise perplexity is meaningless.
	c, _ := Generate(smallCfg())
	correct, total := 0, 0
	for i := 2; i < len(c.Train); i++ {
		if c.chain.preferred(c.Train[i-2], c.Train[i-1]) == c.Train[i] {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.6 {
		t.Fatalf("oracle accuracy %v — corpus not learnable enough", acc)
	}
}

func TestSampleBatchShapes(t *testing.T) {
	c, _ := Generate(smallCfg())
	rng := rand.New(rand.NewSource(1))
	ctxs, tgts := c.SampleBatch(rng, 8, 3)
	if len(ctxs) != 8 || len(tgts) != 8 {
		t.Fatalf("batch sizes %d/%d", len(ctxs), len(tgts))
	}
	for _, ctx := range ctxs {
		if len(ctx) != 3 {
			t.Fatalf("context length %d", len(ctx))
		}
	}
}

func TestSampleBatchWindowsAreConsecutive(t *testing.T) {
	c, _ := Generate(smallCfg())
	rng := rand.New(rand.NewSource(2))
	ctxs, tgts := c.SampleBatch(rng, 50, 4)
	// Each (context, target) must appear verbatim in Train.
	for i := range ctxs {
		found := false
	outer:
		for s := 0; s+4 < len(c.Train); s++ {
			for j := 0; j < 4; j++ {
				if c.Train[s+j] != ctxs[i][j] {
					continue outer
				}
			}
			if c.Train[s+4] == tgts[i] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("window %d not found in corpus", i)
		}
	}
}

func TestValWindowsDeterministicAndBounded(t *testing.T) {
	c, _ := Generate(smallCfg())
	a, at := c.ValWindows(3, 40)
	b, bt := c.ValWindows(3, 40)
	if len(a) == 0 || len(a) > 45 {
		t.Fatalf("got %d windows", len(a))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("ValWindows must be deterministic")
			}
		}
		if at[i] != bt[i] {
			t.Fatal("targets must be deterministic")
		}
	}
}

func TestValWindowsComeFromValSplit(t *testing.T) {
	c, _ := Generate(smallCfg())
	ctxs, _ := c.ValWindows(3, 10)
	for _, ctx := range ctxs {
		found := false
	outer:
		for s := 0; s+3 <= len(c.Val); s++ {
			for j := 0; j < 3; j++ {
				if c.Val[s+j] != ctx[j] {
					continue outer
				}
			}
			found = true
			break
		}
		if !found {
			t.Fatal("validation window not from val split")
		}
	}
}

// oraclePredictor answers with the chain's preferred token — an upper
// bound predictor used to sanity-check the tasks.
type oraclePredictor struct{ c *Corpus }

func (o oraclePredictor) PredictLogits(contexts [][]int) *tensor.Matrix {
	out := tensor.New(len(contexts), o.c.Vocab)
	for i, ctx := range contexts {
		n := len(ctx)
		pref := o.c.chain.preferred(ctx[n-2], ctx[n-1])
		out.Set(i, pref, 1)
	}
	return out
}

// uniformPredictor returns all-zero logits (chance performance).
type uniformPredictor struct{ vocab int }

func (u uniformPredictor) PredictLogits(contexts [][]int) *tensor.Matrix {
	return tensor.New(len(contexts), u.vocab)
}

func TestTaskSuiteShapes(t *testing.T) {
	c, _ := Generate(smallCfg())
	tasks := TaskSuite(c, 4, 50, 99)
	if len(tasks) != 5 {
		t.Fatalf("want 5 tasks, got %d", len(tasks))
	}
	names := map[string]bool{}
	for _, task := range tasks {
		names[task.Name] = true
		if len(task.Examples) == 0 {
			t.Fatalf("task %s empty", task.Name)
		}
		for _, ex := range task.Examples {
			if len(ex.Context) != 4 {
				t.Fatalf("task %s: context len %d", task.Name, len(ex.Context))
			}
			if ex.Answer < 0 || ex.Answer >= len(ex.Choices) {
				t.Fatalf("task %s: answer index out of range", task.Name)
			}
			for _, tok := range ex.Choices {
				if tok < 0 || tok >= c.Vocab {
					t.Fatalf("task %s: choice token %d out of range", task.Name, tok)
				}
			}
		}
	}
	for _, want := range []string{"last-word", "cloze", "copy", "pattern", "agreement"} {
		if !names[want] {
			t.Fatalf("missing task %s", want)
		}
	}
}

func TestOracleBeatsChanceOnChainTasks(t *testing.T) {
	c, _ := Generate(smallCfg())
	tasks := TaskSuite(c, 4, 100, 5)
	oracle := oraclePredictor{c}
	chance := uniformPredictor{c.Vocab}
	for _, task := range tasks {
		switch task.Name {
		case "last-word", "cloze":
			oa := task.Accuracy(oracle)
			ca := task.Accuracy(chance)
			if oa < 0.95 {
				t.Fatalf("%s: oracle accuracy %v too low", task.Name, oa)
			}
			if ca > 0.5 {
				t.Fatalf("%s: chance accuracy %v suspiciously high", task.Name, ca)
			}
		}
	}
}

func TestTaskAccuracyBounds(t *testing.T) {
	c, _ := Generate(smallCfg())
	tasks := TaskSuite(c, 4, 30, 11)
	p := uniformPredictor{c.Vocab}
	for _, task := range tasks {
		a := task.Accuracy(p)
		if a < 0 || a > 1 {
			t.Fatalf("%s accuracy %v outside [0,1]", task.Name, a)
		}
	}
	empty := &Task{Name: "empty"}
	if empty.Accuracy(p) != 0 {
		t.Fatal("empty task accuracy must be 0")
	}
}

func TestDistinctChoicesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64, ansRaw, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		vocab := 16
		ans := int(ansRaw) % vocab
		k := int(kRaw)%vocab + 1
		cs := distinctChoices(r, vocab, ans, k)
		if cs.toks[cs.answer] != ans {
			return false
		}
		seen := map[int]bool{}
		for _, tok := range cs.toks {
			if seen[tok] {
				return false
			}
			seen[tok] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyTaskAnswerIsAlternation(t *testing.T) {
	c, _ := Generate(smallCfg())
	rng := rand.New(rand.NewSource(3))
	task := copyTask(c, rng, 4, 50)
	for _, ex := range task.Examples {
		want := ex.Context[len(ex.Context)-2] // continuation repeats with period 2
		if ex.Choices[ex.Answer] != want {
			t.Fatalf("copy answer %d want %d (ctx %v)", ex.Choices[ex.Answer], want, ex.Context)
		}
	}
}

func TestPatternTaskAnswerIsStride(t *testing.T) {
	c, _ := Generate(smallCfg())
	rng := rand.New(rand.NewSource(4))
	task := patternTask(c, rng, 5, 50)
	for _, ex := range task.Examples {
		stride := (ex.Context[1] - ex.Context[0] + c.Vocab) % c.Vocab
		want := (ex.Context[len(ex.Context)-1] + stride) % c.Vocab
		if ex.Choices[ex.Answer] != want {
			t.Fatalf("pattern answer %d want %d (ctx %v)", ex.Choices[ex.Answer], want, ex.Context)
		}
	}
}
