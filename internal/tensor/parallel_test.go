package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 33, 17, 1)
	b := RandN(rng, 17, 29, 1)
	want := New(33, 29)
	MatMulInto(want, a, b)
	got := New(33, 29)
	ParMatMulInto(got, a, b)
	if !got.Equal(want, 0) {
		t.Fatal("parallel matmul differs from serial (must be bit-identical)")
	}
}

func TestParMatMulBTMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 21, 13, 1)
	b := RandN(rng, 19, 13, 1)
	want := New(21, 19)
	MatMulBTInto(want, a, b)
	got := New(21, 19)
	ParMatMulBTInto(got, a, b)
	if !got.Equal(want, 0) {
		t.Fatal("parallel BT matmul differs from serial")
	}
}

func TestParMatMulSingleWorker(t *testing.T) {
	SetMaxWorkers(1)
	defer SetMaxWorkers(0)
	rng := rand.New(rand.NewSource(3))
	a := RandN(rng, 8, 8, 1)
	b := RandN(rng, 8, 8, 1)
	got := New(8, 8)
	ParMatMulInto(got, a, b)
	want := MatMul(a, b)
	if !got.Equal(want, 0) {
		t.Fatal("single-worker path broken")
	}
}

func TestParMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParMatMulInto(New(2, 2), New(2, 3), New(2, 3))
}

// Property: parallel and serial kernels agree bit-for-bit on random
// shapes and worker counts.
func TestParMatMulEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(r8, k8, c8, w8 uint8) bool {
		r := int(r8%20) + 1
		k := int(k8%20) + 1
		c := int(c8%20) + 1
		SetMaxWorkers(int(w8%8) + 1)
		defer SetMaxWorkers(0)
		a := RandN(rng, r, k, 1)
		b := RandN(rng, k, c, 1)
		s := New(r, c)
		MatMulInto(s, a, b)
		p := New(r, c)
		ParMatMulInto(p, a, b)
		return p.Equal(s, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
