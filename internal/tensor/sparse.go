package tensor

import "fmt"

// Sparse is a COO-style sparse view of a Rows×Cols row-major matrix: a
// list of (flat index, value) pairs with Indices strictly ascending. It
// is the native carrier for TopK/RandomK-compressed gradients — the
// point of keeping payloads in this form end to end is that every
// downstream pass (error-feedback residual update, ring reduction,
// decompress-apply) then costs O(nnz) instead of O(Rows·Cols).
//
// Invariant: len(Indices) == len(Values), every index is in
// [0, Rows·Cols), and Indices is strictly ascending. The ascending
// order is what makes MergeUnionInto a linear merge; constructors
// (compress.TopK/RandomK, GatherInto) sort once at build time.
//
// The kernels below are all bit-identical to their densified oracles at
// tolerance 0: scatter-add visits coordinates in the same order a dense
// loop would, and skipping an absent coordinate is IEEE-identical to
// adding 0.0 (up to the sign of zero, which Matrix.Equal at tol 0
// treats as equal).
type Sparse struct {
	Rows, Cols int
	Indices    []int
	Values     []float64
}

// NewSparse returns an empty (nnz = 0) sparse view of a rows×cols shape
// with capacity for capNNZ entries.
func NewSparse(rows, cols, capNNZ int) *Sparse {
	if rows < 0 || cols < 0 || capNNZ < 0 {
		panic(fmt.Sprintf("tensor: NewSparse(%d, %d, %d) with negative argument", rows, cols, capNNZ))
	}
	return &Sparse{
		Rows:    rows,
		Cols:    cols,
		Indices: make([]int, 0, capNNZ),
		Values:  make([]float64, 0, capNNZ),
	}
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.Values) }

// Density returns NNZ / (Rows·Cols), 0 for an empty shape.
func (s *Sparse) Density() float64 {
	n := s.Rows * s.Cols
	if n == 0 {
		return 0
	}
	return float64(len(s.Values)) / float64(n)
}

// Reuse resizes s to k entries (contents unspecified) for shape
// rows×cols, reallocating only when capacity is insufficient — the
// steady-state path of every compressor and pool cycle is
// allocation-free.
func (s *Sparse) Reuse(k, rows, cols int) {
	if cap(s.Indices) < k {
		s.Indices = make([]int, k)
		s.Values = make([]float64, k)
	}
	s.Indices = s.Indices[:k]
	s.Values = s.Values[:k]
	s.Rows, s.Cols = rows, cols
}

// CopyFrom makes s an element-wise copy of o (same shape, same nnz),
// reusing s's buffers when they are large enough.
func (s *Sparse) CopyFrom(o *Sparse) {
	s.Reuse(len(o.Values), o.Rows, o.Cols)
	copy(s.Indices, o.Indices)
	copy(s.Values, o.Values)
}

func (s *Sparse) mustMatchShape(m *Matrix, op string) {
	if s.Rows != m.Rows || s.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch sparse %dx%d vs dense %dx%d", op, s.Rows, s.Cols, m.Rows, m.Cols))
	}
}

// SpAxpyInto performs dst += alpha·s on the stored coordinates only:
// dst[i] += alpha·v for every (i, v) in s. With dst zeroed beforehand
// this is a scaled scatter; with alpha = −1 it is the error-feedback
// residual fix-up (residual −= reconstruction restricted to the
// selected coordinates). Bit-identical to AddScaledInto against the
// densified payload because absent coordinates would contribute exactly
// alpha·0.
func SpAxpyInto(dst *Matrix, alpha float64, s *Sparse) {
	s.mustMatchShape(dst, "SpAxpyInto")
	d := dst.Data
	for i, fi := range s.Indices {
		d[fi] += alpha * s.Values[i]
	}
}

// SpScaleInto sets dst = alpha·s, reusing dst's buffers. dst == s
// scales in place.
func SpScaleInto(dst *Sparse, alpha float64, s *Sparse) {
	if dst != s {
		dst.Reuse(len(s.Values), s.Rows, s.Cols)
		copy(dst.Indices, s.Indices)
	}
	for i, v := range s.Values {
		dst.Values[i] = alpha * v
	}
}

// ScatterInto writes s's values at their coordinates of dst, leaving
// every other coordinate of dst untouched.
func (s *Sparse) ScatterInto(dst *Matrix) {
	s.mustMatchShape(dst, "ScatterInto")
	d := dst.Data
	for i, fi := range s.Indices {
		d[fi] = s.Values[i]
	}
}

// DensifyInto writes the dense image of s into dst: zeros everywhere
// except s's coordinates — exactly what DecompressInto of the densified
// path produces.
func (s *Sparse) DensifyInto(dst *Matrix) {
	s.mustMatchShape(dst, "DensifyInto")
	dst.Zero()
	s.ScatterInto(dst)
}

// GatherInto fills dst with src's values at the given flat indices
// (which must be strictly ascending): dst becomes the sparse view
// {(indices[i], src[indices[i]])}. The indices are copied, so the
// caller may reuse its slice.
func GatherInto(dst *Sparse, src *Matrix, indices []int) {
	dst.Reuse(len(indices), src.Rows, src.Cols)
	copy(dst.Indices, indices)
	d := src.Data
	for i, fi := range indices {
		dst.Values[i] = d[fi]
	}
}

// MergeUnionInto sets dst = a + b as sparse operands: the union of the
// two coordinate sets, with values summed (a's value first, i.e.
// a[i] + b[i]) where both are present. dst must not alias a or b. The
// linear merge preserves the ascending-index invariant, and summing
// a-then-b per coordinate makes a left-fold over ranks bit-identical to
// the dense flat-rank-order scatter-add.
func MergeUnionInto(dst *Sparse, a, b *Sparse) {
	if dst == a || dst == b {
		panic("tensor: MergeUnionInto dst aliases an operand")
	}
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MergeUnionInto shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// Union size is at most nnz(a)+nnz(b); Reuse over-sizes then trims.
	dst.Reuse(len(a.Values)+len(b.Values), a.Rows, a.Cols)
	i, j, k := 0, 0, 0
	for i < len(a.Indices) && j < len(b.Indices) {
		ai, bi := a.Indices[i], b.Indices[j]
		switch {
		case ai < bi:
			dst.Indices[k] = ai
			dst.Values[k] = a.Values[i]
			i++
		case bi < ai:
			dst.Indices[k] = bi
			dst.Values[k] = b.Values[j]
			j++
		default:
			dst.Indices[k] = ai
			dst.Values[k] = a.Values[i] + b.Values[j]
			i, j = i+1, j+1
		}
		k++
	}
	for ; i < len(a.Indices); i++ {
		dst.Indices[k] = a.Indices[i]
		dst.Values[k] = a.Values[i]
		k++
	}
	for ; j < len(b.Indices); j++ {
		dst.Indices[k] = b.Indices[j]
		dst.Values[k] = b.Values[j]
		k++
	}
	dst.Indices = dst.Indices[:k]
	dst.Values = dst.Values[:k]
}
