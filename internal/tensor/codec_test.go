package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fillPattern writes a deterministic mix of awkward float64 values:
// signed zeros, denormals, infinities, NaN, and ordinary magnitudes.
// Round-trips are compared bit for bit, so NaN payload bits must survive.
func fillPattern(data []float64, seed int64) {
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Pi, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7ff8dead_beef0001), // NaN with payload bits
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range data {
		if i%3 == 0 {
			data[i] = specials[i/3%len(specials)]
		} else {
			data[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
		}
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sparseWith builds a rows×cols sparse view holding the first k indices of
// a deterministic strictly-ascending subset (density = k / (rows·cols)).
func sparseWith(rows, cols int, density float64, seed int64) *Sparse {
	n := rows * cols
	k := int(math.Round(density * float64(n)))
	s := NewSparse(rows, cols, k)
	s.Reuse(k, rows, cols)
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:k]
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	copy(s.Indices, idx)
	fillPattern(s.Values, seed+1)
	return s
}

func TestMatrixCodecRoundTrip(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 0}, {0, 0}, {3, 4}, {7, 5}, {1, 257}, {64, 1}}
	for _, sh := range shapes {
		m := New(sh[0], sh[1])
		fillPattern(m.Data, int64(sh[0]*1000+sh[1]))
		buf := AppendMatrix([]byte{0xAA}, m) // nonzero prefix: append must not clobber
		if buf[0] != 0xAA {
			t.Fatalf("%dx%d: AppendMatrix clobbered prefix", sh[0], sh[1])
		}
		enc := buf[1:]
		if len(enc) != EncodedMatrixLen(m) {
			t.Fatalf("%dx%d: encoded %d bytes, EncodedMatrixLen says %d", sh[0], sh[1], len(enc), EncodedMatrixLen(m))
		}
		tail := []byte{1, 2, 3}
		got, rest, err := DecodeMatrix(append(append([]byte(nil), enc...), tail...), nil)
		if err != nil {
			t.Fatalf("%dx%d: decode: %v", sh[0], sh[1], err)
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || !bitsEqual(got.Data, m.Data) {
			t.Fatalf("%dx%d: round-trip mismatch", sh[0], sh[1])
		}
		if len(rest) != len(tail) {
			t.Fatalf("%dx%d: remainder %d bytes, want %d", sh[0], sh[1], len(rest), len(tail))
		}
	}
}

func TestMatrixCodecPoolAlloc(t *testing.T) {
	m := New(4, 6)
	fillPattern(m.Data, 7)
	pool := NewPool()
	got, _, err := DecodeMatrix(AppendMatrix(nil, m), pool.GetUninit)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Data, m.Data) {
		t.Fatal("pool-alloc decode mismatch")
	}
	pool.Put(got)
	// The recycled buffer must be fully overwritten on the next decode.
	got2, _, err := DecodeMatrix(AppendMatrix(nil, m), pool.GetUninit)
	if err != nil || !bitsEqual(got2.Data, m.Data) {
		t.Fatalf("recycled decode mismatch (err %v)", err)
	}
}

func TestMatrixDecodeTruncatedAndCorrupt(t *testing.T) {
	m := New(3, 5)
	fillPattern(m.Data, 11)
	enc := AppendMatrix(nil, m)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeMatrix(enc[:cut], nil); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(enc))
		}
	}
	// A giant shape header over a tiny body must error before any
	// allocation is sized from it (the test would OOM otherwise).
	huge := []byte{0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3}
	if _, _, err := DecodeMatrix(huge, nil); err == nil {
		t.Fatal("giant header decoded without error")
	}
}

func TestSparseCodecRoundTrip(t *testing.T) {
	type tc struct {
		rows, cols int
		density    float64
	}
	cases := []tc{
		{3, 4, 0}, {3, 4, 0.25}, {3, 4, 1.0},
		{1, 100, 0.1}, {10, 10, 0.5}, {1, 1, 1.0}, {5, 7, 0},
	}
	for _, c := range cases {
		s := sparseWith(c.rows, c.cols, c.density, int64(c.rows*100+c.cols))
		enc := AppendSparse(nil, s)
		if len(enc) != EncodedSparseLen(s) {
			t.Fatalf("%dx%d@%g: encoded %d bytes, EncodedSparseLen says %d", c.rows, c.cols, c.density, len(enc), EncodedSparseLen(s))
		}
		got, rest, err := DecodeSparse(enc, nil)
		if err != nil {
			t.Fatalf("%dx%d@%g: decode: %v", c.rows, c.cols, c.density, err)
		}
		if got.Rows != s.Rows || got.Cols != s.Cols || got.NNZ() != s.NNZ() {
			t.Fatalf("%dx%d@%g: shape/nnz mismatch", c.rows, c.cols, c.density)
		}
		for i := range s.Indices {
			if got.Indices[i] != s.Indices[i] {
				t.Fatalf("%dx%d@%g: index %d mismatch", c.rows, c.cols, c.density, i)
			}
		}
		if !bitsEqual(got.Values, s.Values) {
			t.Fatalf("%dx%d@%g: value bits mismatch", c.rows, c.cols, c.density)
		}
		if len(rest) != 0 {
			t.Fatalf("%dx%d@%g: %d unconsumed bytes", c.rows, c.cols, c.density, len(rest))
		}
	}
}

func TestSparseDecodeTruncatedAndCorrupt(t *testing.T) {
	s := sparseWith(4, 8, 0.5, 42)
	enc := AppendSparse(nil, s)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeSparse(enc[:cut], nil); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(enc))
		}
	}

	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), enc...)
		mutate(b)
		if _, _, err := DecodeSparse(b, nil); err == nil {
			t.Fatalf("%s decoded without error", name)
		}
	}
	// nnz > rows·cols.
	corrupt("oversized nnz", func(b []byte) { b[8], b[9] = 0xff, 0xff })
	// First index out of bounds (≥ 32 elements).
	corrupt("out-of-bounds index", func(b []byte) { b[12] = 200 })
	// Equal adjacent indices break strict ascent.
	corrupt("duplicate index", func(b []byte) { copy(b[16:20], b[12:16]) })
	// Descending indices.
	corrupt("descending index", func(b []byte) { b[12], b[16] = 30, 2; b[13], b[17] = 0, 0 })
}

func FuzzDecodeMatrix(f *testing.F) {
	m := New(3, 4)
	fillPattern(m.Data, 1)
	f.Add(AppendMatrix(nil, m))
	f.Add(AppendMatrix(nil, New(1, 0)))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, rest, err := DecodeMatrix(b, nil) // must never panic
		if err != nil {
			return
		}
		// A successful decode must re-encode to exactly the consumed bytes.
		enc := AppendMatrix(nil, got)
		if len(enc)+len(rest) != len(b) || !bytesEq(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch: %d+%d vs %d input bytes", len(enc), len(rest), len(b))
		}
	})
}

func FuzzDecodeSparse(f *testing.F) {
	f.Add(AppendSparse(nil, sparseWith(3, 4, 0.5, 2)))
	f.Add(AppendSparse(nil, sparseWith(2, 2, 1.0, 3)))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, rest, err := DecodeSparse(b, nil) // must never panic
		if err != nil {
			return
		}
		enc := AppendSparse(nil, got)
		if len(enc)+len(rest) != len(b) || !bytesEq(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch: %d+%d vs %d input bytes", len(enc), len(rest), len(b))
		}
	})
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
