package tensor

import (
	"math/rand"
	"sort"
	"testing"
)

// randSparse builds a sparse view of a rows×cols shape with nnz entries
// at distinct ascending coordinates and N(0,1) values (plus a sprinkle
// of exact zeros and negative zeros to exercise sign-of-zero paths).
func randSparse(rng *rand.Rand, rows, cols, nnz int) *Sparse {
	n := rows * cols
	idx := rng.Perm(n)[:nnz]
	sort.Ints(idx)
	s := NewSparse(rows, cols, nnz)
	s.Reuse(nnz, rows, cols)
	copy(s.Indices, idx)
	for i := range s.Values {
		switch rng.Intn(8) {
		case 0:
			s.Values[i] = 0
		case 1:
			s.Values[i] = negZero()
		default:
			s.Values[i] = rng.NormFloat64()
		}
	}
	return s
}

func negZero() float64 { return -1.0 * 0.0 }

// densify is the test-local oracle: a fresh dense image of s.
func densify(s *Sparse) *Matrix {
	d := New(s.Rows, s.Cols)
	for i, fi := range s.Indices {
		d.Data[fi] = s.Values[i]
	}
	return d
}

// fuzzShapes covers degenerate and general shapes; densities include
// the empty payload (0) and the full payload (1.0).
var fuzzShapes = [][2]int{{1, 1}, {1, 7}, {5, 1}, {3, 4}, {8, 8}, {17, 13}, {32, 9}}
var fuzzDensities = []float64{0, 0.01, 0.1, 0.5, 1.0}

func nnzFor(n int, density float64) int {
	k := int(density * float64(n))
	if k > n {
		k = n
	}
	return k
}

// TestSpAxpyIntoMatchesDenseOracle fuzzes dst += alpha·s against
// AddScaledInto with the densified payload at tolerance 0.
func TestSpAxpyIntoMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphas := []float64{1, -1, 0.25, -3.5}
	for _, sh := range fuzzShapes {
		for _, density := range fuzzDensities {
			for trial := 0; trial < 10; trial++ {
				rows, cols := sh[0], sh[1]
				s := randSparse(rng, rows, cols, nnzFor(rows*cols, density))
				base := New(rows, cols)
				for i := range base.Data {
					base.Data[i] = rng.NormFloat64()
				}
				alpha := alphas[trial%len(alphas)]

				got := base.Clone()
				SpAxpyInto(got, alpha, s)

				want := New(rows, cols)
				AddScaledInto(want, base, alpha, densify(s))

				if !got.Equal(want, 0) {
					t.Fatalf("SpAxpyInto shape %dx%d density %v alpha %v diverges from dense oracle", rows, cols, density, alpha)
				}
			}
		}
	}
}

// TestMergeUnionIntoMatchesDenseOracle fuzzes a+b merge-union against
// dense addition of the densified operands, checking both the dense
// image and the ascending-index invariant.
func TestMergeUnionIntoMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range fuzzShapes {
		for _, da := range fuzzDensities {
			for _, db := range fuzzDensities {
				rows, cols := sh[0], sh[1]
				n := rows * cols
				a := randSparse(rng, rows, cols, nnzFor(n, da))
				b := randSparse(rng, rows, cols, nnzFor(n, db))
				dst := NewSparse(rows, cols, 0)
				MergeUnionInto(dst, a, b)

				for i := 1; i < len(dst.Indices); i++ {
					if dst.Indices[i] <= dst.Indices[i-1] {
						t.Fatalf("merge-union indices not strictly ascending at %d: %v", i, dst.Indices)
					}
				}

				want := densify(a).Add(densify(b))
				if got := densify(dst); !got.Equal(want, 0) {
					t.Fatalf("merge-union shape %dx%d densities (%v,%v) diverges from dense add", rows, cols, da, db)
				}
			}
		}
	}
}

// TestMergeUnionFoldMatchesScatterAddOrder pins the collective's
// reduction property: a left-fold of merge-unions over D operands is
// bit-identical to D scatter-adds into a zeroed dense buffer in the
// same order — the flat-rank-order determinism AllReduceCompressed
// relies on.
func TestMergeUnionFoldMatchesScatterAddOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, cols := 9, 11
	n := rows * cols
	for _, d := range []int{2, 3, 4, 8} {
		ops := make([]*Sparse, d)
		for i := range ops {
			ops[i] = randSparse(rng, rows, cols, nnzFor(n, 0.2))
		}

		acc := NewSparse(rows, cols, 0)
		tmp := NewSparse(rows, cols, 0)
		acc.CopyFrom(ops[0])
		for i := 1; i < d; i++ {
			MergeUnionInto(tmp, acc, ops[i])
			acc, tmp = tmp, acc
		}

		want := New(rows, cols)
		for _, op := range ops {
			SpAxpyInto(want, 1, op)
		}
		if got := densify(acc); !got.Equal(want, 0) {
			t.Fatalf("d=%d merge-union fold diverges from scatter-add order", d)
		}
	}
}

func TestSpScaleInto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randSparse(rng, 6, 7, 12)
	out := NewSparse(6, 7, 0)
	SpScaleInto(out, 0.5, s)
	want := densify(s).Scale(0.5)
	if got := densify(out); !got.Equal(want, 0) {
		t.Fatal("SpScaleInto diverges from dense Scale")
	}
	// In place.
	SpScaleInto(s, 0.5, s)
	if got := densify(s); !got.Equal(want, 0) {
		t.Fatal("in-place SpScaleInto diverges from dense Scale")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, cols := 7, 5
	src := New(rows, cols)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	idx := rng.Perm(rows * cols)[:9]
	sort.Ints(idx)

	s := NewSparse(rows, cols, 0)
	GatherInto(s, src, idx)
	for i, fi := range idx {
		if s.Values[i] != src.Data[fi] {
			t.Fatalf("GatherInto value %d mismatch", i)
		}
	}

	dst := New(rows, cols)
	dst.Fill(7)
	s.ScatterInto(dst)
	for fi, v := range dst.Data {
		j := sort.SearchInts(idx, fi)
		if j < len(idx) && idx[j] == fi {
			if v != src.Data[fi] {
				t.Fatalf("ScatterInto wrote wrong value at %d", fi)
			}
		} else if v != 7 {
			t.Fatalf("ScatterInto touched unselected coordinate %d", fi)
		}
	}

	dense := New(rows, cols)
	s.DensifyInto(dense)
	want := New(rows, cols)
	s.ScatterInto(want)
	if !dense.Equal(want, 0) {
		t.Fatal("DensifyInto != Zero+ScatterInto")
	}
}

func TestPoolSparseRecycles(t *testing.T) {
	p := NewPool()
	s := p.GetSparse(4, 4)
	s.Reuse(8, 4, 4)
	p.PutSparse(s)
	got := p.GetSparse(4, 4)
	if got != s {
		t.Fatal("GetSparse did not recycle the PutSparse buffer")
	}
	if got.NNZ() != 0 || got.Rows != 4 || got.Cols != 4 {
		t.Fatalf("recycled sparse not reset: nnz=%d shape=%dx%d", got.NNZ(), got.Rows, got.Cols)
	}
	if cap(got.Indices) < 8 {
		t.Fatal("recycled sparse lost its capacity")
	}
	st := p.Stats()
	if st.SparseGets != 2 || st.SparseHits != 1 || st.SparsePuts != 1 {
		t.Fatalf("sparse pool stats = %+v", st)
	}
	// PutSparse(nil) is a no-op, and Reset drops the free list.
	p.PutSparse(nil)
	p.PutSparse(got)
	p.Reset()
	if fresh := p.GetSparse(4, 4); fresh == got {
		t.Fatal("Reset did not drop sparse free lists")
	}
}
