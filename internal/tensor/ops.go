package tensor

import (
	"math"
	"math/rand"
)

// RandN fills a new rows×cols matrix with N(0, std²) samples from rng.
func RandN(rng *rand.Rand, rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	RandNInto(rng, m, std)
	return m
}

// RandNInto fills dst with N(0, std²) samples from rng without allocating,
// drawing in the same element order as RandN (so reusing a buffer is
// bit-identical to allocating a fresh one).
func RandNInto(rng *rand.Rand, dst *Matrix, std float64) {
	for i := range dst.Data {
		dst.Data[i] = rng.NormFloat64() * std
	}
}

// RandUniform fills a new rows×cols matrix with U(-a, a) samples.
func RandUniform(rng *rand.Rand, rows, cols int, a float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * a
	}
	return m
}

// XavierInit returns a fanIn×fanOut matrix initialized with the Glorot
// uniform scheme, the standard initialization for the MLP stand-in model.
func XavierInit(rng *rand.Rand, fanIn, fanOut int) *Matrix {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, fanIn, fanOut, a)
}

// GramSchmidt orthonormalizes the columns of m in place (modified
// Gram–Schmidt). Near-zero columns are replaced with zeros rather than
// blowing up — PowerSGD calls this on random sketches, where exact rank
// deficiency is measure-zero but numerically possible.
//
// This is the orthogonalization phase the paper identifies as ~80% of the
// compression cost in §9.6.
func GramSchmidt(m *Matrix) {
	cols := m.Cols
	rows := m.Rows
	for j := 0; j < cols; j++ {
		// Subtract projections onto previous columns.
		for k := 0; k < j; k++ {
			var dot float64
			for i := 0; i < rows; i++ {
				dot += m.Data[i*cols+j] * m.Data[i*cols+k]
			}
			for i := 0; i < rows; i++ {
				m.Data[i*cols+j] -= dot * m.Data[i*cols+k]
			}
		}
		var norm float64
		for i := 0; i < rows; i++ {
			v := m.Data[i*cols+j]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			for i := 0; i < rows; i++ {
				m.Data[i*cols+j] = 0
			}
			continue
		}
		inv := 1 / norm
		for i := 0; i < rows; i++ {
			m.Data[i*cols+j] *= inv
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func SoftmaxRows(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// LogSumExpRow returns log Σ exp(row) computed stably.
func LogSumExpRow(row []float64) float64 {
	mx := math.Inf(-1)
	for _, v := range row {
		if v > mx {
			mx = v
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, v := range row {
		s += math.Exp(v - mx)
	}
	return mx + math.Log(s)
}

// Tanh applies tanh element-wise in place.
func Tanh(m *Matrix) *Matrix { return m.Apply(math.Tanh) }

// GELU applies the tanh-approximation GELU activation in place, matching
// the activation used in the Megatron-LM transformer block (Fig. 2).
func GELU(m *Matrix) *Matrix {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return m.Apply(func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	})
}

// GELUGrad returns dGELU/dx evaluated element-wise at x (tanh approximation).
func GELUGrad(x float64) float64 {
	const c = 0.7978845608028654
	t := math.Tanh(c * (x + 0.044715*x*x*x))
	dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*dt
}

// ArgmaxRow returns the index of the largest value in row.
func ArgmaxRow(row []float64) int {
	best, bi := math.Inf(-1), 0
	for j, v := range row {
		if v > best {
			best, bi = v, j
		}
	}
	return bi
}

// ClipInPlace clamps every element of m to [-c, c]. Gradient clipping keeps
// the tiny stand-in model stable under aggressive compression.
func ClipInPlace(m *Matrix, c float64) {
	for i, v := range m.Data {
		if v > c {
			m.Data[i] = c
		} else if v < -c {
			m.Data[i] = -c
		}
	}
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}
