package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandNStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := RandN(rng, 200, 200, 2.0)
	mu := m.Mean()
	if math.Abs(mu) > 0.05 {
		t.Fatalf("mean %v too far from 0", mu)
	}
	va := Variance(m.Data)
	if math.Abs(va-4) > 0.2 {
		t.Fatalf("variance %v too far from 4", va)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandUniform(rng, 50, 50, 0.5)
	for _, v := range m.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("value %v outside [-0.5, 0.5]", v)
		}
	}
}

func TestXavierInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := XavierInit(rng, 100, 100)
	bound := math.Sqrt(6.0 / 200.0)
	for _, v := range m.Data {
		if math.Abs(v) > bound {
			t.Fatalf("value %v outside Xavier bound %v", v, bound)
		}
	}
}

func TestGramSchmidtOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandN(rng, 20, 6, 1)
	GramSchmidt(m)
	for i := 0; i < m.Cols; i++ {
		for j := 0; j <= i; j++ {
			var dot float64
			for r := 0; r < m.Rows; r++ {
				dot += m.At(r, i) * m.At(r, j)
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("col %d·col %d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestGramSchmidtRankDeficient(t *testing.T) {
	// Two identical columns: the second must collapse to zero, not NaN.
	m := FromSlice(3, 2, []float64{1, 1, 2, 2, 3, 3})
	GramSchmidt(m)
	for r := 0; r < 3; r++ {
		if v := m.At(r, 1); v != 0 {
			t.Fatalf("dependent column should zero out, got %v", v)
		}
		if math.IsNaN(m.At(r, 0)) {
			t.Fatal("NaN in first column")
		}
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := RandN(rng, 10, 7, 3)
	SoftmaxRows(m)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := FromSlice(1, 3, []float64{1000, 1000, 1000})
	SoftmaxRows(m)
	for _, v := range m.Data {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("stable softmax failed: %v", m.Data)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExpRow([]float64{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("LSE=%v want ln2", got)
	}
	big := LogSumExpRow([]float64{1e4, 1e4})
	if math.Abs(big-(1e4+math.Log(2))) > 1e-9 {
		t.Fatalf("LSE overflow handling broken: %v", big)
	}
}

func TestGELUValues(t *testing.T) {
	m := FromSlice(1, 3, []float64{0, 10, -10})
	GELU(m)
	if m.At(0, 0) != 0 {
		t.Fatalf("GELU(0)=%v", m.At(0, 0))
	}
	if math.Abs(m.At(0, 1)-10) > 1e-6 {
		t.Fatalf("GELU(10)=%v, want ≈10", m.At(0, 1))
	}
	if math.Abs(m.At(0, 2)) > 1e-6 {
		t.Fatalf("GELU(-10)=%v, want ≈0", m.At(0, 2))
	}
}

func TestGELUGradMatchesFiniteDifference(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{-2, -0.5, 0, 0.3, 1.7} {
		a := FromSlice(1, 1, []float64{x + h})
		b := FromSlice(1, 1, []float64{x - h})
		GELU(a)
		GELU(b)
		fd := (a.At(0, 0) - b.At(0, 0)) / (2 * h)
		if g := GELUGrad(x); math.Abs(g-fd) > 1e-5 {
			t.Fatalf("GELUGrad(%v)=%v, finite diff %v", x, g, fd)
		}
	}
}

func TestArgmaxRow(t *testing.T) {
	if ArgmaxRow([]float64{1, 5, 3}) != 1 {
		t.Fatal("argmax wrong")
	}
	if ArgmaxRow([]float64{-1, -5, -3}) != 0 {
		t.Fatal("argmax wrong on negatives")
	}
}

func TestClipInPlace(t *testing.T) {
	m := FromSlice(1, 3, []float64{-5, 0.5, 7})
	ClipInPlace(m, 1)
	want := []float64{-1, 0.5, 1}
	for i, v := range m.Data {
		if v != want[i] {
			t.Fatalf("clip: got %v", m.Data)
		}
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if Mean(v) != 2.5 {
		t.Fatalf("Mean=%v", Mean(v))
	}
	if Variance(v) != 1.25 {
		t.Fatalf("Variance=%v", Variance(v))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice cases wrong")
	}
}

// Property: after Gram–Schmidt, reapplying it is a no-op (projection is
// idempotent on an already-orthonormal basis).
func TestGramSchmidtIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(r8, c8 uint8) bool {
		r := int(r8%16) + 4
		c := int(c8%4) + 1
		if c > r {
			c = r
		}
		m := RandN(rng, r, c, 1)
		GramSchmidt(m)
		first := m.Clone()
		GramSchmidt(m)
		return m.Equal(first, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is invariant to a constant shift of the logits.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(shift int8) bool {
		a := RandN(rng, 2, 5, 1)
		b := a.Clone().Apply(func(x float64) float64 { return x + float64(shift) })
		SoftmaxRows(a)
		SoftmaxRows(b)
		return a.Equal(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
