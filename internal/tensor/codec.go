package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary payload codec. Dense matrices and sparse COO views serialize to
// a fixed little-endian layout so a wire transport can ship the exact
// float64 images the in-process path shares by pointer:
//
//	dense:  rows uint32 | cols uint32 | rows·cols × float64 bits
//	sparse: rows uint32 | cols uint32 | nnz uint32 | nnz × index uint32 | nnz × float64 bits
//
// Encoders append to a caller-provided buffer (pooled by the transport)
// and panic on invariant violations, matching the package's programmer-
// error convention. Decoders are the untrusted half: every length, bound,
// and ordering invariant is checked and violations return errors — a
// truncated or corrupt frame must never panic or over-allocate (byte
// lengths are validated before any allocation is sized from them).

// codec limits: shapes must fit the uint32 header fields.
const maxCodecDim = 1 << 31

// EncodedMatrixLen returns the exact byte length AppendMatrix adds.
func EncodedMatrixLen(m *Matrix) int { return 8 + 8*m.NumElements() }

// AppendMatrix appends m's binary image to buf and returns the extended
// slice.
func AppendMatrix(buf []byte, m *Matrix) []byte {
	if m.Rows >= maxCodecDim || m.Cols >= maxCodecDim {
		panic(fmt.Sprintf("tensor: AppendMatrix shape %dx%d exceeds codec limit", m.Rows, m.Cols))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	for _, v := range m.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeMatrix decodes one dense payload from the front of b, returning
// the matrix, the unconsumed remainder, and any format error. alloc
// provides the destination for a validated shape (a pool hook); nil
// falls back to New. The returned matrix's Data is fully overwritten.
func DecodeMatrix(b []byte, alloc func(rows, cols int) *Matrix) (*Matrix, []byte, error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("tensor: dense header truncated: %d bytes", len(b))
	}
	rows := int(binary.LittleEndian.Uint32(b))
	cols := int(binary.LittleEndian.Uint32(b[4:]))
	if rows >= maxCodecDim || cols >= maxCodecDim {
		return nil, nil, fmt.Errorf("tensor: dense shape %dx%d exceeds codec limit", rows, cols)
	}
	b = b[8:]
	n := uint64(rows) * uint64(cols)
	if need := 8 * n; uint64(len(b)) < need {
		return nil, nil, fmt.Errorf("tensor: dense %dx%d body truncated: have %d of %d bytes", rows, cols, len(b), need)
	}
	if alloc == nil {
		alloc = New
	}
	m := alloc(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return m, b[8*n:], nil
}

// EncodedSparseLen returns the exact byte length AppendSparse adds.
func EncodedSparseLen(s *Sparse) int { return 12 + 12*s.NNZ() }

// AppendSparse appends s's binary image to buf and returns the extended
// slice.
func AppendSparse(buf []byte, s *Sparse) []byte {
	if s.Rows >= maxCodecDim || s.Cols >= maxCodecDim || s.Rows*s.Cols >= maxCodecDim {
		panic(fmt.Sprintf("tensor: AppendSparse shape %dx%d exceeds codec limit", s.Rows, s.Cols))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.NNZ()))
	for _, fi := range s.Indices {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(fi))
	}
	for _, v := range s.Values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeSparse decodes one sparse payload from the front of b, returning
// the sparse view, the unconsumed remainder, and any format error. alloc
// provides the destination for a validated shape (a pool hook, handed
// the shape only — nnz is applied via Reuse); nil allocates fresh. The
// decoder re-validates the Sparse invariant (indices strictly ascending,
// in range), so a corrupt frame cannot smuggle an invalid view into the
// O(nnz) kernels.
func DecodeSparse(b []byte, alloc func(rows, cols int) *Sparse) (*Sparse, []byte, error) {
	if len(b) < 12 {
		return nil, nil, fmt.Errorf("tensor: sparse header truncated: %d bytes", len(b))
	}
	rows := int(binary.LittleEndian.Uint32(b))
	cols := int(binary.LittleEndian.Uint32(b[4:]))
	nnz := int(binary.LittleEndian.Uint32(b[8:]))
	if rows >= maxCodecDim || cols >= maxCodecDim || uint64(rows)*uint64(cols) >= maxCodecDim {
		return nil, nil, fmt.Errorf("tensor: sparse shape %dx%d exceeds codec limit", rows, cols)
	}
	b = b[12:]
	elems := uint64(rows) * uint64(cols)
	if uint64(nnz) > elems {
		return nil, nil, fmt.Errorf("tensor: sparse %dx%d nnz %d exceeds %d elements", rows, cols, nnz, elems)
	}
	if need := 12 * uint64(nnz); uint64(len(b)) < need {
		return nil, nil, fmt.Errorf("tensor: sparse %dx%d body truncated: have %d of %d bytes", rows, cols, len(b), need)
	}
	var s *Sparse
	if alloc != nil {
		s = alloc(rows, cols)
	} else {
		s = NewSparse(rows, cols, nnz)
	}
	s.Reuse(nnz, rows, cols)
	prev := -1
	for i := range s.Indices {
		fi := int(binary.LittleEndian.Uint32(b[4*i:]))
		if fi <= prev || uint64(fi) >= elems {
			return nil, nil, fmt.Errorf("tensor: sparse index %d at position %d violates ascending-bounds invariant (prev %d, %d elements)", fi, i, prev, elems)
		}
		s.Indices[i] = fi
		prev = fi
	}
	vals := b[4*nnz:]
	for i := range s.Values {
		s.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(vals[8*i:]))
	}
	return s, b[12*nnz:], nil
}
