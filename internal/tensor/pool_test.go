package tensor

import (
	"sync"
	"testing"
)

func TestPoolGetReturnsZeroed(t *testing.T) {
	p := NewPool()
	m := p.Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	m.Fill(7)
	p.Put(m)
	m2 := p.Get(3, 4)
	if m2 != m {
		t.Fatal("expected the recycled matrix back")
	}
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("recycled matrix not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolShapeKeying(t *testing.T) {
	p := NewPool()
	a := p.Get(2, 3)
	p.Put(a)
	b := p.Get(3, 2) // different shape must not reuse a
	if b == a {
		t.Fatal("pool returned a matrix of the wrong shape")
	}
	c := p.Get(2, 3)
	if c != a {
		t.Fatal("same shape should have been recycled")
	}
}

func TestPoolGetUninitSkipsZeroing(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 2)
	m.Fill(5)
	p.Put(m)
	m2 := p.GetUninit(2, 2)
	if m2 != m {
		t.Fatal("expected the recycled matrix back")
	}
	if m2.At(0, 0) != 5 {
		t.Fatal("GetUninit should not zero recycled contents")
	}
	// A fresh (non-recycled) GetUninit still comes from New, i.e. zeroed.
	f := p.GetUninit(9, 9)
	for _, v := range f.Data {
		if v != 0 {
			t.Fatal("fresh allocation must be zeroed")
		}
	}
}

func TestPoolPutNilNoop(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	if s := p.Stats(); s.Puts != 0 {
		t.Fatalf("nil Put counted: %+v", s)
	}
}

func TestPoolCap(t *testing.T) {
	p := NewPoolWithCap(2)
	ms := []*Matrix{New(1, 1), New(1, 1), New(1, 1)}
	for _, m := range ms {
		p.Put(m)
	}
	s := p.Stats()
	if s.InPool != 2 || s.Drops != 1 {
		t.Fatalf("cap not enforced: %+v", s)
	}
}

func TestPoolStatsAndHitRate(t *testing.T) {
	p := NewPool()
	m := p.Get(4, 4) // miss
	p.Put(m)
	_ = p.Get(4, 4) // hit
	s := p.Stats()
	if s.Gets != 2 || s.Hits != 1 || s.Puts != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v want 0.5", got)
	}
}

func TestPoolReset(t *testing.T) {
	p := NewPool()
	p.Put(New(2, 2))
	p.Reset()
	if s := p.Stats(); s.InPool != 0 {
		t.Fatalf("Reset left %d in pool", s.InPool)
	}
}

// TestPoolConcurrentGetPut exercises the pool from many goroutines; run
// under -race it proves the free list is data-race free, and the
// exclusive-ownership check proves no matrix is handed to two goroutines
// at once.
func TestPoolConcurrentGetPut(t *testing.T) {
	p := NewPool()
	var mu sync.Mutex
	owned := make(map[*Matrix]bool)

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rows := 1 + (i+w)%3
				m := p.Get(rows, 5)
				mu.Lock()
				if owned[m] {
					mu.Unlock()
					t.Error("pool handed the same matrix to two goroutines")
					return
				}
				owned[m] = true
				mu.Unlock()
				m.Fill(float64(w)) // touch the memory to surface races
				mu.Lock()
				delete(owned, m)
				mu.Unlock()
				p.Put(m)
			}
		}(w)
	}
	wg.Wait()
	s := p.Stats()
	if s.Gets != workers*iters {
		t.Fatalf("lost gets: %+v", s)
	}
	if s.HitRate() < 0.9 {
		t.Fatalf("hit rate %v suspiciously low for a steady-state loop", s.HitRate())
	}
}
