package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceSharesBacking(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, d)
	m.Set(0, 0, 9)
	if d[0] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v", m.At(1, 2))
	}
	r := m.Row(1)
	if r[2] != 7 {
		t.Fatalf("Row view broken: %v", r)
	}
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{4, 3, 2, 1})
	a.Add(b)
	want := []float64{5, 5, 5, 5}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("Add: got %v", a.Data)
		}
	}
	a.Sub(b)
	if a.At(0, 0) != 1 || a.At(1, 1) != 4 {
		t.Fatalf("Sub: got %v", a.Data)
	}
	a.Scale(2)
	if a.At(0, 1) != 4 {
		t.Fatalf("Scale: got %v", a.Data)
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 1, 1})
	b := FromSlice(1, 3, []float64{1, 2, 3})
	a.AddScaled(0.5, b)
	want := []float64{1.5, 2, 2.5}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("AddScaled: got %v", a.Data)
		}
	}
}

func TestHadamard(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{2, 2, 2})
	a.Hadamard(b)
	if a.At(0, 2) != 6 {
		t.Fatalf("Hadamard: got %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", tr.Data)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("MatMul: got %v want %v", c.Data, want)
		}
	}
}

func TestMatMulInnerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 5, 4, 1)
	b := RandN(rng, 5, 3, 1)
	got := New(4, 3)
	MatMulATInto(got, a, b)
	want := MatMul(a.T(), b)
	if !got.Equal(want, 1e-12) {
		t.Fatal("MatMulATInto differs from aᵀ×b")
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 5, 4, 1)
	b := RandN(rng, 3, 4, 1)
	got := New(5, 3)
	MatMulBTInto(got, a, b)
	want := MatMul(a, b.T())
	if !got.Equal(want, 1e-12) {
		t.Fatal("MatMulBTInto differs from a×bᵀ")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("norm=%v want 5", got)
	}
}

func TestSumMeanAbsMax(t *testing.T) {
	m := FromSlice(1, 4, []float64{-4, 1, 2, 1})
	if m.Sum() != 0 {
		t.Fatalf("Sum=%v", m.Sum())
	}
	if m.Mean() != 0 {
		t.Fatalf("Mean=%v", m.Mean())
	}
	if m.AbsMax() != 4 {
		t.Fatalf("AbsMax=%v", m.AbsMax())
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice(1, 1, []float64{1})
	b := FromSlice(1, 1, []float64{1 + 1e-9})
	if !a.Equal(b, 1e-8) {
		t.Fatal("should be equal within tol")
	}
	if a.Equal(b, 1e-10) {
		t.Fatal("should differ beyond tol")
	}
	if a.Equal(New(1, 2), 1) {
		t.Fatal("shape mismatch must be unequal")
	}
}

func TestSizeBytes(t *testing.T) {
	m := New(4, 8)
	if got := m.SizeBytes(2); got != 64 {
		t.Fatalf("SizeBytes=%d want 64", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel: %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("orthogonal: %v", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector: %v", got)
	}
}

// Property: (A+B)+C == A+(B+C) element-wise (exact for these magnitudes is
// too strict for floats; use tolerance via quick.Check on small ints).
func TestAddAssociativeProperty(t *testing.T) {
	f := func(xs [6]int8) bool {
		a := FromSlice(1, 2, []float64{float64(xs[0]), float64(xs[1])})
		b := FromSlice(1, 2, []float64{float64(xs[2]), float64(xs[3])})
		c := FromSlice(1, 2, []float64{float64(xs[4]), float64(xs[5])})
		l := a.Clone().Add(b).Add(c)
		r := b.Clone().Add(c).Add(a)
		return l.Equal(r, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(r8, c8 uint8) bool {
		r := int(r8%10) + 1
		c := int(c8%10) + 1
		m := RandN(rng, r, c, 1)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖A‖_F² == ‖Aᵀ‖_F².
func TestNormTransposeInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(r8, c8 uint8) bool {
		r := int(r8%10) + 1
		c := int(c8%10) + 1
		m := RandN(rng, r, c, 1)
		return math.Abs(m.FrobeniusNorm()-m.T().FrobeniusNorm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
