package tensor

import (
	"runtime"
	"sync"
)

// Parallel kernels. The Fig. 15 throughput measurements and the training
// loop spend nearly all their time in matmul; these goroutine-parallel
// variants split work by output rows. Results are bit-identical to the
// serial kernels (each output element is produced by exactly one
// goroutine with the same summation order).

// maxWorkers bounds kernel parallelism; 0 means GOMAXPROCS.
var maxWorkers = 0

// SetMaxWorkers overrides the kernel worker count (0 restores the
// default). Intended for benchmarks and tests.
func SetMaxWorkers(n int) { maxWorkers = n }

func workers(rows int) int {
	w := maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRows runs fn over [0, rows) split into contiguous chunks.
func parallelRows(rows int, fn func(lo, hi int)) {
	w := workers(rows)
	if w == 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + w - 1) / w
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParMatMulInto computes dst = a×b in parallel. Same contract as
// MatMulInto.
func ParMatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		MatMulInto(dst, a, b) // reuse the serial kernel's panic messages
		return
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
		}
		matMulRange(dst, a, b, lo, hi)
	})
}

// ParMatMulATInto computes dst = aᵀ×b in parallel, split by output rows
// (columns of a). Same contract — and bit-identical results — as
// MatMulATInto: each output row's k-accumulation order is unchanged.
func ParMatMulATInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		MatMulATInto(dst, a, b)
		return
	}
	parallelRows(a.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
		}
		matMulATRange(dst, a, b, lo, hi)
	})
}

// ParMatMulBTInto computes dst = a×bᵀ in parallel. Same contract as
// MatMulBTInto.
func ParMatMulBTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		MatMulBTInto(dst, a, b)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) {
		matMulBTRange(dst, a, b, lo, hi)
	})
}
