package tensor

import "testing"

func TestSliceViewsShareStorage(t *testing.T) {
	m := New(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	v := m.Slice(2, 7)
	if v.Rows != 1 || v.Cols != 5 {
		t.Fatalf("view shape %dx%d, want 1x5", v.Rows, v.Cols)
	}
	for j := 0; j < 5; j++ {
		if v.Data[j] != float64(j+2) {
			t.Fatalf("view[%d] = %v, want %v", j, v.Data[j], j+2)
		}
	}
	// Writes through the view land in the parent.
	v.Fill(-1)
	for i := 2; i < 7; i++ {
		if m.Data[i] != -1 {
			t.Fatalf("parent element %d = %v, not written through view", i, m.Data[i])
		}
	}
	// Writes to the parent are visible through the view.
	m.Data[3] = 42
	if v.Data[1] != 42 {
		t.Fatal("parent write not visible through view")
	}
}

func TestSliceEdgeRanges(t *testing.T) {
	m := New(2, 3)
	if v := m.Slice(0, 6); v.Cols != 6 {
		t.Fatalf("full-range view has %d cols", v.Cols)
	}
	if v := m.Slice(4, 4); v.Cols != 0 {
		t.Fatalf("empty view has %d cols", v.Cols)
	}
	if v := m.Slice(6, 6); v.Cols != 0 {
		t.Fatalf("empty end view has %d cols", v.Cols)
	}
	// Empty views must be safe operands.
	a, b := m.Slice(2, 2), m.Slice(5, 5)
	a.Add(b)
	a.Scale(3)
}

func TestSliceIntoReusesHeader(t *testing.T) {
	m := New(4, 4)
	var v Matrix
	m.SliceInto(&v, 0, 8)
	if v.Cols != 8 || &v.Data[0] != &m.Data[0] {
		t.Fatal("SliceInto did not alias the parent")
	}
	m.SliceInto(&v, 8, 16)
	if v.Cols != 8 || &v.Data[0] != &m.Data[8] {
		t.Fatal("SliceInto did not repoint the header")
	}
	if n := testing.AllocsPerRun(100, func() { m.SliceInto(&v, 4, 12) }); n != 0 {
		t.Fatalf("SliceInto allocates (%v allocs/op)", n)
	}
}

func TestSliceCapIsClipped(t *testing.T) {
	// A view must not be able to grow (via append-style misuse) into the
	// parent's tail beyond hi; the three-index slice pins cap == len.
	m := New(1, 8)
	v := m.Slice(2, 5)
	if cap(v.Data) != 3 {
		t.Fatalf("view cap %d, want 3", cap(v.Data))
	}
}

func TestSliceBounds(t *testing.T) {
	m := New(2, 2)
	for _, r := range [][2]int{{-1, 2}, {0, 5}, {3, 2}, {5, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Slice(%d,%d) did not panic", r[0], r[1])
				}
			}()
			m.Slice(r[0], r[1])
		}()
	}
}
