package tensor

import (
	"math/rand"
	"testing"
)

// Reference kernels: straightforward triple loops accumulating over k in
// ascending order — the exact summation order the blocked kernels promise
// to preserve. Equality below is exact (tol 0), which is the point: tiling
// must not change a single bit.

func refMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func refMatMulAT(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		for i := 0; i < a.Cols; i++ {
			av := a.At(k, i)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func refMatMulBT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// matmulShapes crosses the blocking boundaries: below one block, exactly
// one block, straddling blocks, and (for AT) past the dst-resident
// threshold.
var matmulShapes = []struct{ n, k, m int }{
	{3, 5, 4},
	{blockK, blockK, blockJ},
	{blockK + 7, 2*blockK + 3, blockJ + 9},
	{17, 300, 260},
}

func TestBlockedMatMulBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range matmulShapes {
		a := RandN(rng, sh.n, sh.k, 1)
		b := RandN(rng, sh.k, sh.m, 1)
		got := New(sh.n, sh.m)
		MatMulInto(got, a, b)
		if !got.Equal(refMatMul(a, b), 0) {
			t.Fatalf("MatMulInto %dx%dx%d differs from reference", sh.n, sh.k, sh.m)
		}
	}
}

func TestBlockedMatMulATBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range matmulShapes {
		a := RandN(rng, sh.k, sh.n, 1)
		b := RandN(rng, sh.k, sh.m, 1)
		got := New(sh.n, sh.m)
		MatMulATInto(got, a, b)
		if !got.Equal(refMatMulAT(a, b), 0) {
			t.Fatalf("MatMulATInto %dx%dx%d differs from reference", sh.n, sh.k, sh.m)
		}
	}
}

func TestBlockedMatMulATLargeDstBitIdentical(t *testing.T) {
	// Force the tiled (non-dst-resident) path: dst is 300×300 = 720KB,
	// above atDstResident.
	if int64(300*300*8) <= atDstResident {
		t.Fatal("test shape no longer exceeds atDstResident; grow it")
	}
	rng := rand.New(rand.NewSource(43))
	a := RandN(rng, 40, 300, 1)
	b := RandN(rng, 40, 300, 1)
	got := New(300, 300)
	MatMulATInto(got, a, b)
	if !got.Equal(refMatMulAT(a, b), 0) {
		t.Fatal("tiled MatMulATInto differs from reference")
	}
}

func TestBlockedMatMulBTBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, sh := range matmulShapes {
		a := RandN(rng, sh.n, sh.k, 1)
		b := RandN(rng, sh.m, sh.k, 1)
		got := New(sh.n, sh.m)
		MatMulBTInto(got, a, b)
		if !got.Equal(refMatMulBT(a, b), 0) {
			t.Fatalf("MatMulBTInto %dx%dx%d differs from reference", sh.n, sh.k, sh.m)
		}
	}
}

func TestParMatMulATMatchesSerialBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, w := range []int{1, 3, 8} {
		SetMaxWorkers(w)
		a := RandN(rng, 70, 90, 1)
		b := RandN(rng, 70, 30, 1)
		got := New(90, 30)
		ParMatMulATInto(got, a, b)
		want := New(90, 30)
		MatMulATInto(want, a, b)
		if !got.Equal(want, 0) {
			t.Fatalf("ParMatMulATInto (workers=%d) differs from serial", w)
		}
	}
	SetMaxWorkers(0)
}

func TestParMatMulATShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParMatMulATInto(New(2, 2), New(3, 2), New(4, 2))
}

func TestTInto(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := New(3, 2)
	TInto(dst, m)
	if !dst.Equal(m.T(), 0) {
		t.Fatalf("TInto mismatch: %v", dst.Data)
	}
}

func TestTIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TInto(New(2, 3), New(2, 3))
}

func TestAddScaledInto(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	dst := New(1, 3)
	AddScaledInto(dst, a, 0.5, b)
	want := []float64{6, 12, 18}
	for i, v := range dst.Data {
		if v != want[i] {
			t.Fatalf("AddScaledInto: got %v want %v", dst.Data, want)
		}
	}
	// Must match the allocating path bit-for-bit.
	alloc := a.Clone().AddScaled(0.5, b)
	if !dst.Equal(alloc, 0) {
		t.Fatal("AddScaledInto differs from Clone().AddScaled()")
	}
	// Aliasing dst with a is allowed.
	AddScaledInto(a, a, 0.5, b)
	if !a.Equal(alloc, 0) {
		t.Fatal("aliased AddScaledInto wrong")
	}
}

func TestRandNIntoMatchesRandN(t *testing.T) {
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	fresh := RandN(r1, 6, 7, 0.5)
	reused := New(6, 7)
	reused.Fill(99) // stale contents must be fully overwritten
	RandNInto(r2, reused, 0.5)
	if !fresh.Equal(reused, 0) {
		t.Fatal("RandNInto differs from RandN for the same seed")
	}
}

func TestMatMulIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := RandN(rng, 64, 64, 1)
	b := RandN(rng, 64, 64, 1)
	dst := New(64, 64)
	if n := testing.AllocsPerRun(10, func() { MatMulInto(dst, a, b) }); n != 0 {
		t.Fatalf("MatMulInto allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(10, func() { MatMulATInto(dst, a, b) }); n != 0 {
		t.Fatalf("MatMulATInto allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(10, func() { MatMulBTInto(dst, a, b) }); n != 0 {
		t.Fatalf("MatMulBTInto allocates %v per run", n)
	}
}
