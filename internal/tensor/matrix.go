// Package tensor provides the dense linear-algebra substrate used by the
// Optimus-CC reproduction: matrices and vectors of float64 with the
// operations needed for MLP language-model training (matmul, transposes,
// element-wise maps, reductions) and for PowerSGD-style low-rank
// compression (Gram–Schmidt orthogonalization, Frobenius norms).
//
// Everything is row-major and backed by a single []float64 so matrices can
// be flattened, sliced, and communicated as contiguous payloads — the same
// property the paper relies on when it ships gradient tensors between
// pipeline stages and data-parallel groups.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. The zero value is an empty matrix;
// use New or FromSlice to build a usable one.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// Slice returns a flat-range view of elements [lo, hi) as a 1×(hi−lo)
// matrix sharing m's backing array (not a copy). Views are what the
// collective runtime's reduce-scatter chunks are made of: writes through a
// view are writes to m. A view must not be Put into a Pool — it does not
// own its storage. Panics when the range is out of bounds.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	v := &Matrix{}
	m.SliceInto(v, lo, hi)
	return v
}

// SliceInto repoints view at elements [lo, hi) of m without allocating,
// for hot paths that reuse one view header across many chunks. The
// previous contents of the header are irrelevant; its storage (if any) is
// not touched. Panics when the range is out of bounds.
func (m *Matrix) SliceInto(view *Matrix, lo, hi int) {
	if lo < 0 || hi < lo || hi > len(m.Data) {
		panic(fmt.Sprintf("tensor: Slice [%d,%d) outside matrix of %d elements", lo, hi, len(m.Data)))
	}
	view.Rows, view.Cols = 1, hi-lo
	view.Data = m.Data[lo:hi:hi]
}

// NumElements returns Rows*Cols.
func (m *Matrix) NumElements() int { return m.Rows * m.Cols }

// SizeBytes returns the wire size of the dense payload assuming elemBytes
// bytes per element (the paper's setting is fp16, i.e. 2).
func (m *Matrix) SizeBytes(elemBytes int) int64 {
	return int64(m.NumElements()) * int64(elemBytes)
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add sets m = m + o and returns m.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return m
}

// Sub sets m = m - o and returns m.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
	return m
}

// Scale sets m = s*m and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled sets m = m + s*o and returns m (axpy).
func (m *Matrix) AddScaled(s float64, o *Matrix) *Matrix {
	m.mustSameShape(o, "AddScaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
	return m
}

// Hadamard sets m = m ⊙ o (element-wise product) and returns m.
func (m *Matrix) Hadamard(o *Matrix) *Matrix {
	m.mustSameShape(o, "Hadamard")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
	return m
}

// Apply sets every element to f(element) and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	TInto(out, m)
	return out
}

// TInto writes the transpose of src into dst without allocating. dst must
// be src.Cols × src.Rows and must not alias src.
func TInto(dst, src *Matrix) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("tensor: TInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, src.Cols, src.Rows))
	}
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		for j, v := range row {
			dst.Data[j*src.Rows+i] = v
		}
	}
}

// AddScaledInto computes dst = a + s*b without allocating (fused axpy into
// a destination). dst may alias a or b; shapes must match.
func AddScaledInto(dst, a *Matrix, s float64, b *Matrix) {
	dst.mustSameShape(a, "AddScaledInto")
	dst.mustSameShape(b, "AddScaledInto")
	bd := b.Data
	for i, av := range a.Data {
		dst.Data[i] = av + s*bd[i]
	}
}

// MatMul returns a new matrix a×b. Panics if inner dimensions differ.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// Cache-blocking parameters for the matmul kernels. The tilings below are
// chosen so that every output element's accumulation order over k is
// exactly the order of the untiled kernels — k-blocks are visited in
// ascending order and each block's k's in ascending order — which keeps
// results bit-identical while shrinking the working set to cache-resident
// panels.
const (
	// blockK tiles the reduction dimension of MatMulInto: a blockK-row
	// panel of b (blockK × b.Cols float64s) stays hot across all rows of a.
	blockK = 64
	// blockJ tiles the b rows of MatMulBTInto: a blockJ-row panel of b
	// stays hot while streaming the rows of a against it.
	blockJ = 128
	// atDstResident is the dst footprint (bytes) below which MatMulATInto
	// keeps the whole dst in cache and streams a/b once (the common
	// PowerSGD case, where dst is a skinny m×rank factor). Above it, dst is
	// tiled into row panels instead.
	atDstResident = 1 << 19
	// blockIAT is the dst row-panel height used when dst does not fit.
	blockIAT = 64
)

// MatMulInto computes dst = a×b without allocating. dst must be a.Rows ×
// b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	matMulRange(dst, a, b, 0, a.Rows)
}

// matMulRange accumulates rows [lo, hi) of dst = a×b. dst rows must
// already be zeroed. The k-blocked ikj order keeps the inner loop
// streaming over contiguous rows of b and dst while a blockK-row panel of
// b stays cache-resident across the i sweep.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	for kb := 0; kb < a.Cols; kb += blockK {
		kEnd := kb + blockK
		if kEnd > a.Cols {
			kEnd = a.Cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := kb; k < kEnd; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MatMulATInto computes dst = aᵀ×b without materializing aᵀ.
// a is n×m, b is n×p, dst must be m×p.
func MatMulATInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAT inner mismatch %dx%d^T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	if int64(dst.Rows)*int64(dst.Cols)*8 <= atDstResident {
		// dst fits in cache: stream a and b exactly once (PowerSGD's
		// Q = Mᵀ·P shape, where dst is m×rank).
		matMulATRange(dst, a, b, 0, a.Cols)
		return
	}
	// Large dst: tile into row panels so each panel stays resident across
	// the full k sweep, at the cost of re-streaming a per panel.
	for ib := 0; ib < a.Cols; ib += blockIAT {
		iEnd := ib + blockIAT
		if iEnd > a.Cols {
			iEnd = a.Cols
		}
		matMulATRange(dst, a, b, ib, iEnd)
	}
}

// matMulATRange accumulates dst rows [lo, hi) of dst = aᵀ×b. dst rows
// must already be zeroed.
func matMulATRange(dst, a, b *Matrix, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBTInto computes dst = a×bᵀ without materializing bᵀ.
// a is n×m, b is p×m, dst must be n×p.
func MatMulBTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBT inner mismatch %dx%d * %dx%d^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBTInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	matMulBTRange(dst, a, b, 0, a.Rows)
}

// matMulBTRange computes rows [lo, hi) of dst = a×bᵀ. Each output element
// is a single full-length dot product, so the j tiling below only changes
// traversal order, never accumulation order. A blockJ-row panel of b stays
// cache-resident while the rows of a stream against it.
func matMulBTRange(dst, a, b *Matrix, lo, hi int) {
	for jb := 0; jb < b.Rows; jb += blockJ {
		jEnd := jb + blockJ
		if jEnd > b.Rows {
			jEnd = b.Rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := jb; j < jEnd; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				drow[j] = s
			}
		}
	}
}

// FrobeniusNorm returns sqrt(Σ x²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// AbsMax returns max |x| over all elements, or 0 for an empty matrix.
func (m *Matrix) AbsMax() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Sum returns Σ x.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty matrix.
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// Equal reports whether m and o have identical shape and elements within
// tol (absolute).
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// Dot returns the vector dot product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns a·b / (‖a‖‖b‖), or 0 when either vector is zero.
// Fig. 11 of the paper uses this to show compression errors are independent
// of activation differences.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
