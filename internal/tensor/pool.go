package tensor

import (
	"sync"
	"sync/atomic"
)

// Pool is a concurrency-safe free-list of matrices keyed by shape. The
// compression and gradient-synchronization hot paths allocate the same
// handful of shapes every iteration; recycling them through a Pool makes
// steady-state training allocation-free, so the Fig. 15-style throughput
// benchmarks measure the algorithms rather than the Go allocator.
//
// Get returns a zeroed matrix (same contract as New); Put recycles one.
// A matrix must not be used after it is Put. The per-shape free list is
// capped so a transient burst of odd shapes cannot pin memory forever.
type Pool struct {
	mu   sync.Mutex
	free map[[2]int][]*Matrix
	// spFree parks Sparse buffers keyed by their dense shape — the
	// compressors and the sparse collective path recycle index/value
	// buffers per gradient shape exactly like dense scratch.
	spFree map[[2]int][]*Sparse

	// maxPerShape caps each shape's free list (0 means DefaultMaxPerShape).
	maxPerShape int

	gets   atomic.Uint64
	hits   atomic.Uint64
	puts   atomic.Uint64
	drops  atomic.Uint64
	inPool atomic.Int64

	spGets atomic.Uint64
	spHits atomic.Uint64
	spPuts atomic.Uint64
}

// DefaultMaxPerShape is the per-shape free-list cap used when a Pool is
// constructed with NewPool. The trainer's widest fan-out (DP groups ×
// stages × worker pool) stays well under this.
const DefaultMaxPerShape = 64

// NewPool returns an empty pool with the default per-shape cap.
func NewPool() *Pool { return &Pool{free: make(map[[2]int][]*Matrix)} }

// NewPoolWithCap returns an empty pool capping each shape's free list at
// maxPerShape entries (≤0 means DefaultMaxPerShape).
func NewPoolWithCap(maxPerShape int) *Pool {
	return &Pool{free: make(map[[2]int][]*Matrix), maxPerShape: maxPerShape}
}

func (p *Pool) cap() int {
	if p.maxPerShape > 0 {
		return p.maxPerShape
	}
	return DefaultMaxPerShape
}

// Get returns a zeroed rows×cols matrix, recycling a previously Put one
// when available.
func (p *Pool) Get(rows, cols int) *Matrix {
	m, recycled := p.take(rows, cols)
	if recycled {
		m.Zero()
	}
	return m
}

// GetUninit returns a rows×cols matrix with unspecified contents —
// recycled without the zeroing pass. Use it when every element will be
// overwritten anyway (DecompressInto destinations, AddScaledInto outputs,
// matmul dst buffers); use Get when the caller accumulates into the
// buffer.
func (p *Pool) GetUninit(rows, cols int) *Matrix {
	m, _ := p.take(rows, cols)
	return m
}

// take pops a pooled matrix (recycled=true) or allocates a zeroed one.
func (p *Pool) take(rows, cols int) (m *Matrix, recycled bool) {
	p.gets.Add(1)
	key := [2]int{rows, cols}
	p.mu.Lock()
	list := p.free[key]
	if n := len(list); n > 0 {
		m = list[n-1]
		list[n-1] = nil
		p.free[key] = list[:n-1]
		p.mu.Unlock()
		p.hits.Add(1)
		p.inPool.Add(-1)
		return m, true
	}
	p.mu.Unlock()
	return New(rows, cols), false
}

// Put recycles m for a future Get of the same shape. Put(nil) is a no-op.
// The caller must not retain or touch m afterwards.
func (p *Pool) Put(m *Matrix) {
	if m == nil {
		return
	}
	p.puts.Add(1)
	key := [2]int{m.Rows, m.Cols}
	p.mu.Lock()
	if len(p.free[key]) >= p.cap() {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.free[key] = append(p.free[key], m)
	p.mu.Unlock()
	p.inPool.Add(1)
}

// GetSparse returns an empty (nnz = 0) Sparse view of a rows×cols
// shape, recycling a previously PutSparse one when available. Callers
// size it with Reuse or CopyFrom; recycled buffers keep their capacity,
// so the steady state allocates nothing.
func (p *Pool) GetSparse(rows, cols int) *Sparse {
	p.spGets.Add(1)
	key := [2]int{rows, cols}
	p.mu.Lock()
	list := p.spFree[key]
	if n := len(list); n > 0 {
		s := list[n-1]
		list[n-1] = nil
		p.spFree[key] = list[:n-1]
		p.mu.Unlock()
		p.spHits.Add(1)
		s.Reuse(0, rows, cols)
		return s
	}
	p.mu.Unlock()
	return NewSparse(rows, cols, 0)
}

// PutSparse recycles s for a future GetSparse of the same dense shape.
// PutSparse(nil) is a no-op. The caller must not retain or touch s
// afterwards.
func (p *Pool) PutSparse(s *Sparse) {
	if s == nil {
		return
	}
	p.spPuts.Add(1)
	key := [2]int{s.Rows, s.Cols}
	p.mu.Lock()
	if p.spFree == nil {
		p.spFree = make(map[[2]int][]*Sparse)
	}
	if len(p.spFree[key]) >= p.cap() {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.spFree[key] = append(p.spFree[key], s)
	p.mu.Unlock()
}

// Reset drops every pooled matrix (they become garbage).
func (p *Pool) Reset() {
	p.mu.Lock()
	p.free = make(map[[2]int][]*Matrix)
	p.spFree = nil
	p.mu.Unlock()
	p.inPool.Store(0)
}

// PoolStats is a snapshot of pool traffic.
type PoolStats struct {
	Gets, Hits, Puts, Drops uint64
	// InPool is the number of matrices currently parked in free lists.
	InPool int64
	// Sparse-buffer traffic (GetSparse/PutSparse), tracked separately so
	// dense hit rates stay comparable across configurations.
	SparseGets, SparseHits, SparsePuts uint64
}

// Stats returns a snapshot of cumulative pool traffic. HitRate ≈ 1 on
// steady state is what "zero-allocation" means in practice.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:       p.gets.Load(),
		Hits:       p.hits.Load(),
		Puts:       p.puts.Load(),
		Drops:      p.drops.Load(),
		InPool:     p.inPool.Load(),
		SparseGets: p.spGets.Load(),
		SparseHits: p.spHits.Load(),
		SparsePuts: p.spPuts.Load(),
	}
}

// HitRate returns Hits/Gets (0 before any Get).
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}
