package tensor

import (
	"sync"
	"sync/atomic"
)

// Pool is a concurrency-safe free-list of matrices keyed by shape. The
// compression and gradient-synchronization hot paths allocate the same
// handful of shapes every iteration; recycling them through a Pool makes
// steady-state training allocation-free, so the Fig. 15-style throughput
// benchmarks measure the algorithms rather than the Go allocator.
//
// Get returns a zeroed matrix (same contract as New); Put recycles one.
// A matrix must not be used after it is Put. The per-shape free list is
// capped so a transient burst of odd shapes cannot pin memory forever.
type Pool struct {
	mu   sync.Mutex
	free map[[2]int][]*Matrix

	// maxPerShape caps each shape's free list (0 means DefaultMaxPerShape).
	maxPerShape int

	gets   atomic.Uint64
	hits   atomic.Uint64
	puts   atomic.Uint64
	drops  atomic.Uint64
	inPool atomic.Int64
}

// DefaultMaxPerShape is the per-shape free-list cap used when a Pool is
// constructed with NewPool. The trainer's widest fan-out (DP groups ×
// stages × worker pool) stays well under this.
const DefaultMaxPerShape = 64

// NewPool returns an empty pool with the default per-shape cap.
func NewPool() *Pool { return &Pool{free: make(map[[2]int][]*Matrix)} }

// NewPoolWithCap returns an empty pool capping each shape's free list at
// maxPerShape entries (≤0 means DefaultMaxPerShape).
func NewPoolWithCap(maxPerShape int) *Pool {
	return &Pool{free: make(map[[2]int][]*Matrix), maxPerShape: maxPerShape}
}

func (p *Pool) cap() int {
	if p.maxPerShape > 0 {
		return p.maxPerShape
	}
	return DefaultMaxPerShape
}

// Get returns a zeroed rows×cols matrix, recycling a previously Put one
// when available.
func (p *Pool) Get(rows, cols int) *Matrix {
	m, recycled := p.take(rows, cols)
	if recycled {
		m.Zero()
	}
	return m
}

// GetUninit returns a rows×cols matrix with unspecified contents —
// recycled without the zeroing pass. Use it when every element will be
// overwritten anyway (DecompressInto destinations, AddScaledInto outputs,
// matmul dst buffers); use Get when the caller accumulates into the
// buffer.
func (p *Pool) GetUninit(rows, cols int) *Matrix {
	m, _ := p.take(rows, cols)
	return m
}

// take pops a pooled matrix (recycled=true) or allocates a zeroed one.
func (p *Pool) take(rows, cols int) (m *Matrix, recycled bool) {
	p.gets.Add(1)
	key := [2]int{rows, cols}
	p.mu.Lock()
	list := p.free[key]
	if n := len(list); n > 0 {
		m = list[n-1]
		list[n-1] = nil
		p.free[key] = list[:n-1]
		p.mu.Unlock()
		p.hits.Add(1)
		p.inPool.Add(-1)
		return m, true
	}
	p.mu.Unlock()
	return New(rows, cols), false
}

// Put recycles m for a future Get of the same shape. Put(nil) is a no-op.
// The caller must not retain or touch m afterwards.
func (p *Pool) Put(m *Matrix) {
	if m == nil {
		return
	}
	p.puts.Add(1)
	key := [2]int{m.Rows, m.Cols}
	p.mu.Lock()
	if len(p.free[key]) >= p.cap() {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.free[key] = append(p.free[key], m)
	p.mu.Unlock()
	p.inPool.Add(1)
}

// Reset drops every pooled matrix (they become garbage).
func (p *Pool) Reset() {
	p.mu.Lock()
	p.free = make(map[[2]int][]*Matrix)
	p.mu.Unlock()
	p.inPool.Store(0)
}

// PoolStats is a snapshot of pool traffic.
type PoolStats struct {
	Gets, Hits, Puts, Drops uint64
	// InPool is the number of matrices currently parked in free lists.
	InPool int64
}

// Stats returns a snapshot of cumulative pool traffic. HitRate ≈ 1 on
// steady state is what "zero-allocation" means in practice.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:   p.gets.Load(),
		Hits:   p.hits.Load(),
		Puts:   p.puts.Load(),
		Drops:  p.drops.Load(),
		InPool: p.inPool.Load(),
	}
}

// HitRate returns Hits/Gets (0 before any Get).
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}
