package compress

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// quantPayload stores per-element small codes plus a scale. Codes travel
// at a sub-byte bit width; WireBytes rounds up to whole bytes. The code
// buffer is owned by the emitting quantizer and reused across calls.
type quantPayload struct {
	codes      []int8
	scale      float64
	bits       int
	rows, cols int
}

// WireBytes implements Payload: ceil(N·bits/8) plus an 8-byte scale.
func (p *quantPayload) WireBytes() int64 {
	n := int64(len(p.codes))
	return (n*int64(p.bits)+7)/8 + 8
}

// Shape implements Payload.
func (p *quantPayload) Shape() (int, int) { return p.rows, p.cols }

// reuse resizes the code buffer to n entries (reusing capacity, contents
// unspecified) and restamps the payload metadata. Callers that write codes
// sparsely (TernGrad) must zero the buffer themselves; the dense
// quantizers overwrite every code, and the scale==0 early-return paths
// never read codes (DecompressInto checks scale first).
func (p *quantPayload) reuse(n, bits, rows, cols int, scale float64) {
	if cap(p.codes) < n {
		p.codes = make([]int8, n)
	}
	p.codes = p.codes[:n]
	p.bits, p.rows, p.cols, p.scale = bits, rows, cols, scale
}

// quantDecompressInto expands codes·scale into dst (shared by TernGrad
// and SignSGD; a zero scale reconstructs to zero).
func quantDecompressInto(dst *tensor.Matrix, pl Payload, who string) {
	p := mustQuant(pl, who)
	mustShape(dst, pl, who)
	if p.scale == 0 {
		dst.Zero()
		return
	}
	for i, code := range p.codes {
		dst.Data[i] = float64(code) * p.scale
	}
}

// TernGrad quantizes each element to {-1, 0, +1}·s with stochastic
// rounding, s = max|x| (Wen et al., NeurIPS 2017; §2.3).
type TernGrad struct {
	rng     *rand.Rand
	payload quantPayload
}

// NewTernGrad returns a deterministic-seeded ternary quantizer.
func NewTernGrad(seed int64) *TernGrad {
	return &TernGrad{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Compressor.
func (c *TernGrad) Name() string { return "terngrad" }

// Ratio implements Compressor: 2 bits/element vs ElemBytes.
func (c *TernGrad) Ratio(rows, cols int) float64 {
	n := int64(rows) * int64(cols)
	return float64(DenseBytes(rows, cols)) / float64((n*2+7)/8+8)
}

// Compress implements Compressor. E[decompress] equals the input
// (unbiasedness is TernGrad's key property).
func (c *TernGrad) Compress(m *tensor.Matrix) Payload {
	s := m.AbsMax()
	c.payload.reuse(m.NumElements(), 2, m.Rows, m.Cols, s)
	if s == 0 {
		return &c.payload
	}
	for i := range c.payload.codes {
		c.payload.codes[i] = 0 // ternary codes are written sparsely below
	}
	for i, v := range m.Data {
		prob := math.Abs(v) / s
		if c.rng.Float64() < prob {
			if v > 0 {
				c.payload.codes[i] = 1
			} else {
				c.payload.codes[i] = -1
			}
		}
	}
	return &c.payload
}

// Decompress implements Compressor.
func (c *TernGrad) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor.
func (c *TernGrad) DecompressInto(dst *tensor.Matrix, pl Payload) {
	quantDecompressInto(dst, pl, "TernGrad")
}

// SignSGD keeps only the sign of each element, scaled by the mean absolute
// value so the reconstruction has matching L1 mass (Bernstein et al., ICML
// 2018; §2.3).
type SignSGD struct {
	payload quantPayload
}

// NewSignSGD returns the 1-bit sign quantizer.
func NewSignSGD() *SignSGD { return &SignSGD{} }

// Name implements Compressor.
func (c *SignSGD) Name() string { return "signsgd" }

// Ratio implements Compressor.
func (c *SignSGD) Ratio(rows, cols int) float64 {
	n := int64(rows) * int64(cols)
	return float64(DenseBytes(rows, cols)) / float64((n+7)/8+8)
}

// Compress implements Compressor.
func (c *SignSGD) Compress(m *tensor.Matrix) Payload {
	n := m.NumElements()
	var l1 float64
	for _, v := range m.Data {
		l1 += math.Abs(v)
	}
	var scale float64
	if n > 0 {
		scale = l1 / float64(n)
	}
	c.payload.reuse(n, 1, m.Rows, m.Cols, scale)
	for i, v := range m.Data {
		if v >= 0 {
			c.payload.codes[i] = 1
		} else {
			c.payload.codes[i] = -1
		}
	}
	return &c.payload
}

// Decompress implements Compressor.
func (c *SignSGD) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor.
func (c *SignSGD) DecompressInto(dst *tensor.Matrix, pl Payload) {
	quantDecompressInto(dst, pl, "SignSGD")
}

// Uniform8Bit linearly quantizes to 8-bit codes over [-max|x|, +max|x|],
// the simple quantization baseline in the paper's related-work spectrum.
type Uniform8Bit struct {
	payload quantPayload
}

// NewUniform8Bit returns the 8-bit linear quantizer.
func NewUniform8Bit() *Uniform8Bit { return &Uniform8Bit{} }

// Name implements Compressor.
func (c *Uniform8Bit) Name() string { return "uniform8" }

// Ratio implements Compressor.
func (c *Uniform8Bit) Ratio(rows, cols int) float64 {
	n := int64(rows) * int64(cols)
	return float64(DenseBytes(rows, cols)) / float64(n+8)
}

// Compress implements Compressor.
func (c *Uniform8Bit) Compress(m *tensor.Matrix) Payload {
	s := m.AbsMax()
	c.payload.reuse(m.NumElements(), 8, m.Rows, m.Cols, s)
	if s == 0 {
		return &c.payload
	}
	for i, v := range m.Data {
		q := math.Round(v / s * 127)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		c.payload.codes[i] = int8(q)
	}
	return &c.payload
}

// Decompress implements Compressor.
func (c *Uniform8Bit) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor: reconstruction is code/127·scale
// (the exact op order matters for bit-identity with the historical path).
func (c *Uniform8Bit) DecompressInto(dst *tensor.Matrix, pl Payload) {
	p := mustQuant(pl, "Uniform8Bit")
	mustShape(dst, pl, "Uniform8Bit")
	if p.scale == 0 {
		dst.Zero()
		return
	}
	for i, code := range p.codes {
		dst.Data[i] = float64(code) / 127 * p.scale
	}
}

func mustQuant(pl Payload, who string) *quantPayload {
	p, ok := pl.(*quantPayload)
	if !ok {
		panic(fmt.Sprintf("compress: %s.Decompress got %T", who, pl))
	}
	return p
}

var (
	_ Compressor = (*TernGrad)(nil)
	_ Compressor = (*SignSGD)(nil)
	_ Compressor = (*Uniform8Bit)(nil)
)
