package compress

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// quantPayload stores per-element small codes plus a scale. Codes travel
// at a sub-byte bit width; WireBytes rounds up to whole bytes.
type quantPayload struct {
	codes      []int8
	scale      float64
	bits       int
	rows, cols int
}

// WireBytes implements Payload: ceil(N·bits/8) plus an 8-byte scale.
func (p *quantPayload) WireBytes() int64 {
	n := int64(len(p.codes))
	return (n*int64(p.bits)+7)/8 + 8
}

// Shape implements Payload.
func (p *quantPayload) Shape() (int, int) { return p.rows, p.cols }

// TernGrad quantizes each element to {-1, 0, +1}·s with stochastic
// rounding, s = max|x| (Wen et al., NeurIPS 2017; §2.3).
type TernGrad struct {
	rng *rand.Rand
}

// NewTernGrad returns a deterministic-seeded ternary quantizer.
func NewTernGrad(seed int64) *TernGrad {
	return &TernGrad{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Compressor.
func (c *TernGrad) Name() string { return "terngrad" }

// Ratio implements Compressor: 2 bits/element vs ElemBytes.
func (c *TernGrad) Ratio(rows, cols int) float64 {
	n := int64(rows) * int64(cols)
	return float64(DenseBytes(rows, cols)) / float64((n*2+7)/8+8)
}

// Compress implements Compressor. E[decompress] equals the input
// (unbiasedness is TernGrad's key property).
func (c *TernGrad) Compress(m *tensor.Matrix) Payload {
	s := m.AbsMax()
	p := &quantPayload{codes: make([]int8, m.NumElements()), scale: s, bits: 2, rows: m.Rows, cols: m.Cols}
	if s == 0 {
		return p
	}
	for i, v := range m.Data {
		prob := math.Abs(v) / s
		if c.rng.Float64() < prob {
			if v > 0 {
				p.codes[i] = 1
			} else {
				p.codes[i] = -1
			}
		}
	}
	return p
}

// Decompress implements Compressor.
func (c *TernGrad) Decompress(pl Payload) *tensor.Matrix {
	p := mustQuant(pl, "TernGrad")
	out := tensor.New(p.rows, p.cols)
	for i, code := range p.codes {
		out.Data[i] = float64(code) * p.scale
	}
	return out
}

// SignSGD keeps only the sign of each element, scaled by the mean absolute
// value so the reconstruction has matching L1 mass (Bernstein et al., ICML
// 2018; §2.3).
type SignSGD struct{}

// NewSignSGD returns the 1-bit sign quantizer.
func NewSignSGD() *SignSGD { return &SignSGD{} }

// Name implements Compressor.
func (c *SignSGD) Name() string { return "signsgd" }

// Ratio implements Compressor.
func (c *SignSGD) Ratio(rows, cols int) float64 {
	n := int64(rows) * int64(cols)
	return float64(DenseBytes(rows, cols)) / float64((n+7)/8+8)
}

// Compress implements Compressor.
func (c *SignSGD) Compress(m *tensor.Matrix) Payload {
	p := &quantPayload{codes: make([]int8, m.NumElements()), bits: 1, rows: m.Rows, cols: m.Cols}
	var l1 float64
	for _, v := range m.Data {
		l1 += math.Abs(v)
	}
	n := m.NumElements()
	if n > 0 {
		p.scale = l1 / float64(n)
	}
	for i, v := range m.Data {
		if v >= 0 {
			p.codes[i] = 1
		} else {
			p.codes[i] = -1
		}
	}
	return p
}

// Decompress implements Compressor.
func (c *SignSGD) Decompress(pl Payload) *tensor.Matrix {
	p := mustQuant(pl, "SignSGD")
	out := tensor.New(p.rows, p.cols)
	for i, code := range p.codes {
		out.Data[i] = float64(code) * p.scale
	}
	return out
}

// Uniform8Bit linearly quantizes to 8-bit codes over [-max|x|, +max|x|],
// the simple quantization baseline in the paper's related-work spectrum.
type Uniform8Bit struct{}

// NewUniform8Bit returns the 8-bit linear quantizer.
func NewUniform8Bit() *Uniform8Bit { return &Uniform8Bit{} }

// Name implements Compressor.
func (c *Uniform8Bit) Name() string { return "uniform8" }

// Ratio implements Compressor.
func (c *Uniform8Bit) Ratio(rows, cols int) float64 {
	n := int64(rows) * int64(cols)
	return float64(DenseBytes(rows, cols)) / float64(n+8)
}

// Compress implements Compressor.
func (c *Uniform8Bit) Compress(m *tensor.Matrix) Payload {
	s := m.AbsMax()
	p := &quantPayload{codes: make([]int8, m.NumElements()), scale: s, bits: 8, rows: m.Rows, cols: m.Cols}
	if s == 0 {
		return p
	}
	for i, v := range m.Data {
		q := math.Round(v / s * 127)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		p.codes[i] = int8(q)
	}
	return p
}

// Decompress implements Compressor.
func (c *Uniform8Bit) Decompress(pl Payload) *tensor.Matrix {
	p := mustQuant(pl, "Uniform8Bit")
	out := tensor.New(p.rows, p.cols)
	if p.scale == 0 {
		return out
	}
	for i, code := range p.codes {
		out.Data[i] = float64(code) / 127 * p.scale
	}
	return out
}

func mustQuant(pl Payload, who string) *quantPayload {
	p, ok := pl.(*quantPayload)
	if !ok {
		panic(fmt.Sprintf("compress: %s.Decompress got %T", who, pl))
	}
	return p
}

var (
	_ Compressor = (*TernGrad)(nil)
	_ Compressor = (*SignSGD)(nil)
	_ Compressor = (*Uniform8Bit)(nil)
)
