package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func allCompressors(seed int64) []Compressor {
	return []Compressor{
		NewIdentity(),
		NewPowerSGD(4, seed),
		NewTopK(0.1),
		NewTernGrad(seed),
		NewSignSGD(),
		NewUniform8Bit(),
	}
}

func TestIdentityRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandN(rng, 7, 5, 1)
	c := NewIdentity()
	got := c.Decompress(c.Compress(m))
	if !got.Equal(m, 0) {
		t.Fatal("identity must be lossless")
	}
	if c.Ratio(7, 5) != 1 {
		t.Fatal("identity ratio must be 1")
	}
}

func TestCompressDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range allCompressors(2) {
		m := tensor.RandN(rng, 8, 6, 1)
		orig := m.Clone()
		_ = c.Compress(m)
		if !m.Equal(orig, 0) {
			t.Fatalf("%s mutated its input", c.Name())
		}
	}
}

func TestShapesPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range allCompressors(3) {
		m := tensor.RandN(rng, 9, 4, 1)
		pl := c.Compress(m)
		r, cl := pl.Shape()
		if r != 9 || cl != 4 {
			t.Fatalf("%s payload shape %dx%d", c.Name(), r, cl)
		}
		out := c.Decompress(pl)
		if out.Rows != 9 || out.Cols != 4 {
			t.Fatalf("%s decompressed shape %dx%d", c.Name(), out.Rows, out.Cols)
		}
	}
}

func TestZeroMatrixRoundTrip(t *testing.T) {
	for _, c := range allCompressors(4) {
		m := tensor.New(6, 6)
		out := c.Decompress(c.Compress(m))
		if out.FrobeniusNorm() != 0 {
			t.Fatalf("%s: zero input must reconstruct to zero", c.Name())
		}
	}
}

func TestPowerSGDExactOnLowRank(t *testing.T) {
	// A rank-2 matrix must be reconstructed (nearly) exactly by rank≥2
	// PowerSGD: the power iteration converges to the true column space.
	rng := rand.New(rand.NewSource(5))
	u := tensor.RandN(rng, 20, 2, 1)
	v := tensor.RandN(rng, 15, 2, 1)
	m := tensor.New(20, 15)
	tensor.MatMulBTInto(m, u, v)

	c := NewPowerSGD(2, 6)
	// Warm-started iterations refine the subspace; a couple of calls on
	// the same matrix should drive the error to ~0.
	var recon *tensor.Matrix
	for i := 0; i < 4; i++ {
		recon = c.Decompress(c.Compress(m))
	}
	if rel := RelativeError(m, recon); rel > 1e-6 {
		t.Fatalf("rank-2 matrix not recovered: rel err %v", rel)
	}
}

func TestPowerSGDReducesErrorWithRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := tensor.RandN(rng, 40, 40, 1)
	prev := math.Inf(1)
	for _, r := range []int{1, 4, 16, 39} {
		c := NewPowerSGD(r, 8)
		recon := c.Decompress(c.Compress(m))
		rel := RelativeError(m, recon)
		if rel > prev+1e-9 {
			t.Fatalf("rank %d error %v worse than smaller rank %v", r, rel, prev)
		}
		prev = rel
	}
}

func TestPowerSGDWarmStartImproves(t *testing.T) {
	// On a slowly-varying gradient sequence, warm start should beat cold
	// start on the later steps.
	rng := rand.New(rand.NewSource(9))
	base := tensor.RandN(rng, 30, 30, 1)
	warm := NewPowerSGD(4, 10)
	cold := NewPowerSGD(4, 10)
	cold.SetWarmStart(false)
	var warmErr, coldErr float64
	for step := 0; step < 8; step++ {
		g := base.Clone().AddScaled(0.01, tensor.RandN(rng, 30, 30, 1))
		warmErr = RelativeError(g, warm.Decompress(warm.Compress(g)))
		coldErr = RelativeError(g, cold.Decompress(cold.Compress(g)))
	}
	if warmErr >= coldErr {
		t.Fatalf("warm start (%v) not better than cold (%v)", warmErr, coldErr)
	}
}

func TestPowerSGDRatio(t *testing.T) {
	c := NewPowerSGD(16, 1)
	// 1024x1024 dense = 2MB; payload = 16*(1024+1024) elems.
	want := float64(1024*1024) / float64(16*2048)
	if got := c.Ratio(1024, 1024); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ratio %v want %v", got, want)
	}
}

func TestPowerSGDRankClamped(t *testing.T) {
	c := NewPowerSGD(100, 2)
	m := tensor.RandN(rand.New(rand.NewSource(1)), 5, 3, 1)
	recon := c.Decompress(c.Compress(m))
	// rank clamps to 3, which spans the full space: exact recovery.
	if rel := RelativeError(m, recon); rel > 1e-8 {
		t.Fatalf("full-rank recovery failed: %v", rel)
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	m := tensor.FromSlice(1, 5, []float64{0.1, -5, 0.2, 3, -0.05})
	c := NewTopK(0.4) // keep 2 of 5
	out := c.Decompress(c.Compress(m))
	want := []float64{0, -5, 0, 3, 0}
	for i, v := range out.Data {
		if v != want[i] {
			t.Fatalf("topk: got %v want %v", out.Data, want)
		}
	}
}

func TestTopKIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := tensor.RandN(rng, 10, 10, 1)
	c := NewTopK(0.2)
	once := c.Decompress(c.Compress(m))
	twice := c.Decompress(c.Compress(once))
	if !once.Equal(twice, 0) {
		t.Fatal("topk must be idempotent")
	}
}

func TestTopKFractionBoundsPanic(t *testing.T) {
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("fraction %v should panic", f)
				}
			}()
			NewTopK(f)
		}()
	}
}

func TestTernGradUnbiasedInExpectation(t *testing.T) {
	c := NewTernGrad(13)
	m := tensor.FromSlice(1, 2, []float64{0.5, -0.25})
	sum := tensor.New(1, 2)
	const trials = 4000
	for i := 0; i < trials; i++ {
		sum.Add(c.Decompress(c.Compress(m)))
	}
	sum.Scale(1.0 / trials)
	if math.Abs(sum.At(0, 0)-0.5) > 0.05 || math.Abs(sum.At(0, 1)+0.25) > 0.05 {
		t.Fatalf("TernGrad biased: mean %v", sum.Data)
	}
}

func TestSignSGDPreservesSignsAndL1(t *testing.T) {
	m := tensor.FromSlice(1, 4, []float64{1, -2, 3, -4})
	c := NewSignSGD()
	out := c.Decompress(c.Compress(m))
	for i, v := range out.Data {
		if math.Signbit(v) != math.Signbit(m.Data[i]) {
			t.Fatalf("sign flipped at %d", i)
		}
	}
	var l1In, l1Out float64
	for i := range m.Data {
		l1In += math.Abs(m.Data[i])
		l1Out += math.Abs(out.Data[i])
	}
	if math.Abs(l1In-l1Out) > 1e-9 {
		t.Fatalf("L1 mass not preserved: %v vs %v", l1In, l1Out)
	}
}

func TestUniform8BitBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := tensor.RandN(rng, 20, 20, 1)
	c := NewUniform8Bit()
	out := c.Decompress(c.Compress(m))
	maxStep := m.AbsMax() / 127
	for i := range m.Data {
		if math.Abs(m.Data[i]-out.Data[i]) > maxStep {
			t.Fatalf("quantization error %v exceeds step %v", math.Abs(m.Data[i]-out.Data[i]), maxStep)
		}
	}
}

func TestWireBytesOrdering(t *testing.T) {
	// For a 256x256 matrix: signsgd < terngrad < topk(10%) < powersgd(16) < dense.
	rng := rand.New(rand.NewSource(16))
	m := tensor.RandN(rng, 256, 256, 1)
	dense := DenseBytes(256, 256)
	sizes := map[string]int64{}
	for _, c := range allCompressors(16) {
		sizes[c.Name()] = c.Compress(m).WireBytes()
	}
	if sizes["identity"] != dense {
		t.Fatalf("identity size %d != dense %d", sizes["identity"], dense)
	}
	for name, s := range sizes {
		if name == "identity" {
			continue
		}
		if s >= dense {
			t.Fatalf("%s payload %d not smaller than dense %d", name, s, dense)
		}
	}
	if !(sizes["signsgd"] < sizes["terngrad"] && sizes["terngrad"] < sizes["uniform8"]) {
		t.Fatalf("bit-width ordering violated: %v", sizes)
	}
}

func TestRatioMatchesPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := tensor.RandN(rng, 64, 48, 1)
	for _, c := range allCompressors(17) {
		pl := c.Compress(m)
		implied := float64(DenseBytes(64, 48)) / float64(pl.WireBytes())
		if math.Abs(implied-c.Ratio(64, 48))/c.Ratio(64, 48) > 0.05 {
			t.Fatalf("%s: Ratio()=%v but payload implies %v", c.Name(), c.Ratio(64, 48), implied)
		}
	}
}

func TestErrorFeedbackTelescopes(t *testing.T) {
	// Σ reconstructions == Σ inputs − final residual, exactly (telescoping
	// property that makes error feedback work).
	rng := rand.New(rand.NewSource(19))
	ef := NewErrorFeedback(NewTopK(0.1))
	sumIn := tensor.New(12, 12)
	sumOut := tensor.New(12, 12)
	for i := 0; i < 20; i++ {
		g := tensor.RandN(rng, 12, 12, 1)
		sumIn.Add(g)
		_, recon := ef.CompressWithFeedback(g)
		sumOut.Add(recon)
	}
	final := ef.Residual(12, 12)
	check := sumOut.Clone().Add(final)
	if !check.Equal(sumIn, 1e-9) {
		t.Fatal("error feedback does not telescope")
	}
}

func TestErrorFeedbackDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ef := NewErrorFeedback(NewTopK(0.5))
	ef.SetEnabled(false)
	g := tensor.RandN(rng, 6, 6, 1)
	_, _ = ef.CompressWithFeedback(g)
	if ef.Residual(6, 6) != nil {
		t.Fatal("disabled feedback must not store residuals")
	}
	if ef.ResidualBytes() != 0 {
		t.Fatal("ResidualBytes should be 0 when disabled")
	}
}

func TestErrorFeedbackReset(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ef := NewErrorFeedback(NewPowerSGD(2, 21))
	_, _ = ef.CompressWithFeedback(tensor.RandN(rng, 8, 8, 1))
	if ef.ResidualBytes() == 0 {
		t.Fatal("residual expected after compression")
	}
	ef.Reset()
	if ef.ResidualBytes() != 0 {
		t.Fatal("Reset must drop residuals")
	}
}

func TestErrorFeedbackReducesLongRunError(t *testing.T) {
	// With feedback, the running average of reconstructions converges to
	// the running average of a constant gradient; without, the bias stays.
	g := tensor.FromSlice(2, 2, []float64{0.5, 0.04, 0.03, 0.02})
	withEF := NewErrorFeedback(NewTopK(0.25))
	without := NewErrorFeedback(NewTopK(0.25))
	without.SetEnabled(false)
	sumW := tensor.New(2, 2)
	sumWo := tensor.New(2, 2)
	const steps = 60
	for i := 0; i < steps; i++ {
		_, r1 := withEF.CompressWithFeedback(g)
		sumW.Add(r1)
		_, r2 := without.CompressWithFeedback(g)
		sumWo.Add(r2)
	}
	target := g.Clone().Scale(steps)
	errW := CompressionError(target, sumW).FrobeniusNorm()
	errWo := CompressionError(target, sumWo).FrobeniusNorm()
	if errW >= errWo {
		t.Fatalf("feedback (%v) should beat no-feedback (%v)", errW, errWo)
	}
}

// Property: relative reconstruction error never exceeds 1 + eps for any
// compressor whose reconstruction minimizes (or approximates) the input —
// i.e. compression never produces something *larger* in error than just
// sending zero, for these energy-preserving schemes.
func TestReconstructionErrorBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	comps := []Compressor{NewPowerSGD(4, 23), NewTopK(0.25), NewUniform8Bit()}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := tensor.RandN(r, 12, 9, 1)
		for _, c := range comps {
			recon := c.Decompress(c.Compress(m))
			if RelativeError(m, recon) > 1.0+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopK reconstruction energy is monotone in the kept fraction.
func TestTopKMonotoneEnergyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := tensor.RandN(r, 8, 8, 1)
		prev := -1.0
		for _, frac := range []float64{0.1, 0.3, 0.6, 1.0} {
			c := NewTopK(frac)
			e := c.Decompress(c.Compress(m)).FrobeniusNorm()
			if e < prev-1e-12 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionErrorAndRelativeError(t *testing.T) {
	a := tensor.FromSlice(1, 2, []float64{3, 4})
	b := tensor.FromSlice(1, 2, []float64{3, 0})
	e := CompressionError(a, b)
	if e.At(0, 0) != 0 || e.At(0, 1) != 4 {
		t.Fatalf("error matrix wrong: %v", e.Data)
	}
	if got := RelativeError(a, b); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("relative error %v want 0.8", got)
	}
	zero := tensor.New(1, 2)
	if RelativeError(zero, zero) != 0 {
		t.Fatal("relative error of zero matrix should be 0")
	}
}

func TestPowerSGDMoreIterationsReduceError(t *testing.T) {
	// More power iterations approach truncated SVD: error must not grow,
	// and on a hard matrix it should strictly shrink.
	rng := rand.New(rand.NewSource(31))
	m := tensor.RandN(rng, 48, 48, 1)
	var prev float64 = math.Inf(1)
	for _, iters := range []int{1, 3, 8} {
		c := NewPowerSGD(4, 31)
		c.SetWarmStart(false)
		c.SetIterations(iters)
		rel := RelativeError(m, c.Decompress(c.Compress(m)))
		if rel > prev+1e-9 {
			t.Fatalf("%d iterations error %v worse than fewer (%v)", iters, rel, prev)
		}
		prev = rel
	}
}

func TestPowerSGDSetIterationsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPowerSGD(2, 1).SetIterations(0)
}
