package compress

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// The compressor registry turns algorithm choice into data: a Spec names
// a family and carries its parameters, and Build resolves it through a
// table of registered factories. The planner (internal/plan) compiles
// core.Config into Specs, the trainer Builds them, and new families
// become selectable from the CLI by registering a factory — no more
// hardwired constructors per call site.
//
// All §2.3 families ship registered: powersgd (alias lowrank), topk,
// randomk, terngrad, signsgd, uniform8, identity.

// Spec is a named, parameterized compressor reference. Which fields a
// family reads is part of its registration contract: powersgd reads
// Rank and Seed, topk reads Fraction, randomk reads Fraction and Seed,
// terngrad reads Seed, and signsgd/uniform8/identity read nothing.
type Spec struct {
	// Name selects the registered family (case-sensitive).
	Name string
	// Rank is the low-rank approximation rank (rank-based families).
	Rank int
	// Fraction is the kept-element fraction in (0, 1] (sparse families).
	Fraction float64
	// Seed drives the family's random components deterministically.
	Seed int64
}

// String renders the spec with only the fields its family reads, e.g.
// "powersgd(rank=16,seed=7)".
func (s Spec) String() string {
	switch s.Name {
	case "powersgd":
		return fmt.Sprintf("%s(rank=%d,seed=%d)", s.Name, s.Rank, s.Seed)
	case "topk":
		return fmt.Sprintf("topk(frac=%.4g)", s.Fraction)
	case "randomk":
		return fmt.Sprintf("randomk(frac=%.4g,seed=%d)", s.Fraction, s.Seed)
	case "terngrad":
		return fmt.Sprintf("terngrad(seed=%d)", s.Seed)
	default:
		return s.Name
	}
}

// Factory builds a compressor from a spec, validating the parameters the
// family reads. Factories must return errors, never panic: Build is the
// boundary where user-supplied configuration meets the constructors.
type Factory func(Spec) (Compressor, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a factory under name and marks the name valid for
// core.Config's CBAlg/DPAlg validation, so a custom family is selectable
// end to end (config → plan → Build) with this one call. It panics on an
// empty name or a duplicate registration — both are programming errors,
// caught at init.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("compress: Register needs a name and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compress: duplicate registration of %q", name))
	}
	registry[name] = f
	core.RegisterCompressorName(name)
}

// Registered reports whether name has a factory.
func Registered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// RegisteredNames returns every registered family name, sorted.
func RegisteredNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build resolves spec through the registry. Unknown names and invalid
// parameters are hard errors — nothing falls back to a default family.
func Build(spec Spec) (Compressor, error) {
	registryMu.RLock()
	f := registry[spec.Name]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("compress: unknown compressor %q (registered: %v)",
			spec.Name, RegisteredNames())
	}
	return f(spec)
}

// MustBuild is Build for specs the caller already validated (e.g. specs
// out of a compiled plan); it panics on error.
func MustBuild(spec Spec) Compressor {
	c, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return c
}

func init() {
	// core.CBLowRank's historical "lowrank" name maps onto "powersgd" in
	// plan.Compile (normalizeFamily) — the registry holds one entry per
	// family, no aliases.
	Register("powersgd", func(s Spec) (Compressor, error) {
		if s.Rank < 1 {
			return nil, fmt.Errorf("compress: %s needs Rank ≥ 1, got %d", s.Name, s.Rank)
		}
		return NewPowerSGD(s.Rank, s.Seed), nil
	})
	Register("topk", func(s Spec) (Compressor, error) {
		if s.Fraction <= 0 || s.Fraction > 1 {
			return nil, fmt.Errorf("compress: topk needs Fraction in (0,1], got %v", s.Fraction)
		}
		return NewTopK(s.Fraction), nil
	})
	Register("randomk", func(s Spec) (Compressor, error) {
		if s.Fraction <= 0 || s.Fraction > 1 {
			return nil, fmt.Errorf("compress: randomk needs Fraction in (0,1], got %v", s.Fraction)
		}
		return NewRandomK(s.Fraction, s.Seed), nil
	})
	Register("terngrad", func(s Spec) (Compressor, error) { return NewTernGrad(s.Seed), nil })
	Register("signsgd", func(Spec) (Compressor, error) { return NewSignSGD(), nil })
	Register("uniform8", func(Spec) (Compressor, error) { return NewUniform8Bit(), nil })
	Register("identity", func(Spec) (Compressor, error) { return NewIdentity(), nil })
}
