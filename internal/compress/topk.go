package compress

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/tensor"
)

// TopK keeps the k largest-magnitude elements of the gradient and their
// indices, zeroing the rest (Lin et al., ICLR 2018; §2.3 of the paper).
//
// The wire payload per kept element is one value at ElemBytes plus a
// 4-byte index — the index overhead the paper calls out as a weakness of
// top-k for point-to-point traffic ("Opt-CC (TopK)" in Fig. 3).
//
// The selection scratch and payload slices are reused across calls, so
// steady-state compression is allocation-free. Like the other compressors,
// a TopK instance is not safe for concurrent use.
type TopK struct {
	// Fraction of elements kept, in (0, 1].
	Fraction float64

	idx          []int
	candA, candB []int
	keys         []uint64
	payload      SparsePayload
}

// IndexBytes is the per-element index cost of sparse payloads.
const IndexBytes = 4

// NewTopK returns a compressor keeping ceil(fraction·N) elements.
func NewTopK(fraction float64) *TopK {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("compress: TopK fraction %v outside (0,1]", fraction))
	}
	return &TopK{Fraction: fraction}
}

// Name implements Compressor.
func (c *TopK) Name() string { return fmt.Sprintf("topk(%.3g)", c.Fraction) }

func (c *TopK) keep(n int) int {
	k := int(math.Ceil(c.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Ratio implements Compressor. Clamped to ≥ 1: with large fractions the
// index overhead makes the sparse encoding bigger than the dense one,
// and a reported ratio < 1 would corrupt downstream wire estimates (the
// encoder would just ship dense in that regime).
func (c *TopK) Ratio(rows, cols int) float64 {
	return sparseRatio(rows, cols, c.keep(rows*cols))
}

// sparseRatio is the dense/sparse wire quotient shared by TopK and
// RandomK, clamped to ≥ 1 (and 1 for an empty shape, where there is
// nothing to compress).
func sparseRatio(rows, cols, k int) float64 {
	if rows*cols == 0 {
		return 1
	}
	r := float64(DenseBytes(rows, cols)) / float64(int64(k)*(ElemBytes+IndexBytes))
	if r < 1 {
		return 1
	}
	return r
}

// SparsePayload is a list of (flat index, value) pairs — a
// tensor.Sparse (indices strictly ascending) plus the Payload wire
// accounting. The collective and p2p layers operate on the embedded
// Sparse directly, so compress→reduce→decompress never materializes a
// dense image on the sparse-native path.
type SparsePayload struct {
	tensor.Sparse
}

// WireBytes implements Payload.
func (p *SparsePayload) WireBytes() int64 {
	return int64(len(p.Values)) * (ElemBytes + IndexBytes)
}

// Shape implements Payload.
func (p *SparsePayload) Shape() (int, int) { return p.Sparse.Rows, p.Sparse.Cols }

// magLess is the selection order: |value| descending, ties by index
// ascending — a strict total order, so the top-k *set* is unique and
// independent of the selection algorithm (full sort and the radix
// select below agree exactly).
func magLess(data []float64, a, b int) bool {
	va, vb := math.Abs(data[a]), math.Abs(data[b])
	if va != vb {
		return va > vb
	}
	return a < b
}

// absKey maps v to an unsigned key whose integer order equals |v| order
// for finite values: IEEE-754 doubles with the sign bit cleared compare
// like their magnitudes.
func absKey(v float64) uint64 { return math.Float64bits(v) &^ (1 << 63) }

// sampleSize is the number of strided key samples the selection pass
// uses to pick its candidate-collection pivot.
const sampleSize = 1024

// selectTopK returns the indices of the k most significant elements of
// data (k < len(data)) under magLess, in unspecified order.
//
// Candidate generation is a deterministic sampled-pivot collect: sort
// sampleSize strided absKey samples, pick the quantile key expected to
// pass ~3k elements, and sweep data once appending every index whose
// key reaches the pivot. That sweep is one sequential, branch-
// predictable compare per element — it runs at streaming speed, unlike
// a histogram pass, whose read-modify-write chains on hot buckets
// throttle to a fraction of memory bandwidth, and unlike comparison
// selection, whose data-dependent random access dominated the compress
// side of the sparse pipeline. If the sample misestimates and fewer
// than k candidates pass, the pivot steps down to the next strictly
// smaller sample key and the sweep reruns (rare, bounded, and
// deterministic). Small inputs skip the sampling and collect on an
// exponent histogram directly.
//
// The exact boundary inside the candidate set is then resolved by MSB
// radix refinement on absKey — 11 exponent bits, then mantissa bytes —
// over the (small) candidate list only. Elements whose full 64-bit
// keys tie are appended in scan order, which is ascending index order
// — exactly magLess's tie rule — so the selected set is the unique
// top-k set regardless of distribution or pivot walk. All scratch
// slices are owned by c and reused across calls.
func (c *TopK) selectTopK(k int, data []float64) []int {
	if cap(c.idx) < k {
		c.idx = make([]int, 0, k)
	}
	if cap(c.candA) < len(data) {
		c.candA = make([]int, 0, len(data))
		c.candB = make([]int, 0, len(data))
	}
	kept, candA, candB := c.idx[:0], c.candA[:0], c.candB[:0]
	rem := k

	if n := len(data); n >= 4*sampleSize && 4*k <= n {
		// Sampled-pivot candidate sweep.
		if cap(c.keys) < sampleSize {
			c.keys = make([]uint64, sampleSize)
		}
		keys := c.keys[:sampleSize]
		stride := n / sampleSize
		for i := range keys {
			keys[i] = absKey(data[i*stride])
		}
		slices.Sort(keys)
		pos := sampleSize - 1 - (3*k*sampleSize)/n
		if pos < 0 {
			pos = 0
		}
		pivot := keys[pos]
		for {
			candA = candA[:0]
			for i, v := range data {
				if absKey(v) >= pivot {
					candA = append(candA, i)
				}
			}
			if len(candA) >= k || pivot == 0 {
				break
			}
			// Too few passed: step to the next strictly smaller sample
			// key (an equal pivot would collect the same set again).
			for pos > 0 && keys[pos] == pivot {
				pos--
			}
			if keys[pos] == pivot {
				pivot = 0 // no smaller sample: pass everything
			} else {
				pivot = keys[pos]
			}
		}
	} else {
		// Small input: one exponent histogram plus collect. Two-way
		// banked counters keep the read-modify-writes of locally
		// repetitive data independent.
		var banks [2][2048]int
		for i := 0; i+2 <= len(data); i += 2 {
			banks[0][absKey(data[i])>>52]++
			banks[1][absKey(data[i+1])>>52]++
		}
		if len(data)&1 != 0 {
			banks[0][absKey(data[len(data)-1])>>52]++
		}
		t := 2047
		for ; t >= 0; t-- {
			n := banks[0][t] + banks[1][t]
			if n >= rem {
				break // the bucket the k-th element falls in
			}
			rem -= n
		}
		for i, v := range data {
			switch b := int(absKey(v) >> 52); {
			case b > t:
				kept = append(kept, i)
			case b == t:
				candA = append(candA, i)
			}
		}
	}

	return c.refineTopK(kept, candA, candB, rem, data)
}

// refineTopK resolves the exact selection boundary inside a candidate
// list: kept already holds elements known to be in the top-k, candA the
// candidates among which the rem remaining winners hide, candB is empty
// swap scratch. Returns the completed kept list and stores the scratch
// slices back on c.
func (c *TopK) refineTopK(kept, candA, candB []int, rem int, data []float64) []int {
	// Exact-tie short circuit: error-feedback residuals repeat values
	// heavily (untouched coordinates accumulate identical multiples), and
	// a fully tied candidate set would crawl through every refinement
	// level without shrinking. One early-exit equality pass detects it.
	allTied := rem > 0 && rem < len(candA)
	if allTied {
		k0 := absKey(data[candA[0]])
		for _, i := range candA[1:] {
			if absKey(data[i]) != k0 {
				allTied = false
				break
			}
		}
	}

	if !allTied {
		// Refine the candidates level by level: the 11 exponent bits,
		// then mantissa bytes 51–4, then the final overlapping low byte.
		for _, lv := range [...]struct{ shift, mask uint }{
			{52, 2047}, {44, 255}, {36, 255}, {28, 255}, {20, 255}, {12, 255}, {4, 255}, {0, 255},
		} {
			if rem == 0 || rem >= len(candA) {
				break
			}
			var counts [2048]int
			for _, i := range candA {
				counts[(absKey(data[i])>>lv.shift)&uint64(lv.mask)]++
			}
			t := int(lv.mask)
			for ; t >= 0; t-- {
				if counts[t] >= rem {
					break
				}
				rem -= counts[t]
			}
			if counts[t] == len(candA) {
				continue // this level does not discriminate; skip the collect
			}
			candB = candB[:0]
			for _, i := range candA {
				switch b := int((absKey(data[i]) >> lv.shift) & uint64(lv.mask)); {
				case b > t:
					kept = append(kept, i)
				case b == t:
					candB = append(candB, i)
				}
			}
			candA, candB = candB, candA
		}
	}
	// Exact-tie (or whole-bucket) remainder: candA is in ascending index
	// order, magLess's tie rule, so the first rem win.
	kept = append(kept, candA[:rem]...)
	c.idx, c.candA, c.candB = kept, candA[:0], candB[:0]
	return kept
}

// Compress implements Compressor: exact top-k selection (radix select
// on the strict magnitude-then-index order), kept indices re-sorted
// ascending so the payload satisfies the tensor.Sparse invariant.
func (c *TopK) Compress(m *tensor.Matrix) Payload {
	n := m.NumElements()
	k := c.keep(n)
	var kept []int
	if k < n {
		kept = c.selectTopK(k, m.Data)
		slices.Sort(kept)
	} else {
		if cap(c.idx) < k {
			c.idx = make([]int, 0, k)
		}
		kept = c.idx[:k]
		for i := range kept {
			kept[i] = i
		}
	}
	tensor.GatherInto(&c.payload.Sparse, m, kept)
	return &c.payload
}

// CompressAddFused is the fused error-feedback compress step:
// residual += m and the top-k candidate sweep over the sum happen in
// one pass over the dense shape instead of two (the feedback add and
// selection are both memory-bound, so fusing them removes a full
// streaming read). The additions are the same IEEE operations in the
// same order as residual.Add(m) followed by Compress(residual), and
// the sampled pivot is computed from the post-add keys, so the
// residual bits, the selected set, and the payload are identical to
// the unfused path. Inputs small enough to use the histogram path
// fall back to exactly that unfused sequence.
func (c *TopK) CompressAddFused(residual, m *tensor.Matrix) Payload {
	rd, md := residual.Data, m.Data
	n := len(rd)
	k := c.keep(n)
	if n < 4*sampleSize || 4*k > n || k >= n {
		residual.Add(m)
		return c.Compress(residual)
	}
	if cap(c.idx) < k {
		c.idx = make([]int, 0, k)
	}
	if cap(c.candA) < n {
		c.candA = make([]int, 0, n)
		c.candB = make([]int, 0, n)
	}
	if cap(c.keys) < sampleSize {
		c.keys = make([]uint64, sampleSize)
	}
	// Sample the post-add keys without writing: rd[s]+md[s] here and in
	// the sweep below round identically, so the pivot quantile is exact.
	keys := c.keys[:sampleSize]
	stride := n / sampleSize
	for i := range keys {
		s := i * stride
		keys[i] = absKey(rd[s] + md[s])
	}
	slices.Sort(keys)
	pos := sampleSize - 1 - (3*k*sampleSize)/n
	if pos < 0 {
		pos = 0
	}
	pivot := keys[pos]
	candA := c.candA[:0]
	for i, v := range rd {
		v += md[i]
		rd[i] = v
		if absKey(v) >= pivot {
			candA = append(candA, i)
		}
	}
	// Pivot retries re-sweep the already-updated residual (no re-add).
	for len(candA) < k && pivot != 0 {
		for pos > 0 && keys[pos] == pivot {
			pos--
		}
		if keys[pos] == pivot {
			pivot = 0 // no smaller sample: pass everything
		} else {
			pivot = keys[pos]
		}
		candA = candA[:0]
		for i, v := range rd {
			if absKey(v) >= pivot {
				candA = append(candA, i)
			}
		}
	}
	kept := c.refineTopK(c.idx[:0], candA, c.candB[:0], k, rd)
	slices.Sort(kept)
	tensor.GatherInto(&c.payload.Sparse, residual, kept)
	return &c.payload
}

// Decompress implements Compressor.
func (c *TopK) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor: a zero-then-scatter of the
// sparse payload.
func (c *TopK) DecompressInto(dst *tensor.Matrix, pl Payload) {
	p, ok := pl.(*SparsePayload)
	if !ok {
		panic(fmt.Sprintf("compress: TopK.Decompress got %T", pl))
	}
	mustShape(dst, pl, "TopK")
	p.Sparse.DensifyInto(dst)
}

// sparseNative marks c's payloads as natively sparse (see SparseNative).
func (c *TopK) sparseNative() {}

var _ Compressor = (*TopK)(nil)
