package compress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// TopK keeps the k largest-magnitude elements of the gradient and their
// indices, zeroing the rest (Lin et al., ICLR 2018; §2.3 of the paper).
//
// The wire payload per kept element is one value at ElemBytes plus a
// 4-byte index — the index overhead the paper calls out as a weakness of
// top-k for point-to-point traffic ("Opt-CC (TopK)" in Fig. 3).
//
// The selection scratch and payload slices are reused across calls, so
// steady-state compression is allocation-free. Like the other compressors,
// a TopK instance is not safe for concurrent use.
type TopK struct {
	// Fraction of elements kept, in (0, 1].
	Fraction float64

	order   magOrder
	asc     ascInts
	payload SparsePayload
}

// IndexBytes is the per-element index cost of sparse payloads.
const IndexBytes = 4

// NewTopK returns a compressor keeping ceil(fraction·N) elements.
func NewTopK(fraction float64) *TopK {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("compress: TopK fraction %v outside (0,1]", fraction))
	}
	return &TopK{Fraction: fraction}
}

// Name implements Compressor.
func (c *TopK) Name() string { return fmt.Sprintf("topk(%.3g)", c.Fraction) }

func (c *TopK) keep(n int) int {
	k := int(math.Ceil(c.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Ratio implements Compressor.
func (c *TopK) Ratio(rows, cols int) float64 {
	n := rows * cols
	k := c.keep(n)
	return float64(DenseBytes(rows, cols)) / float64(int64(k)*(ElemBytes+IndexBytes))
}

// SparsePayload is a list of (flat index, value) pairs.
type SparsePayload struct {
	Indices    []int
	Values     []float64
	rows, cols int
}

// WireBytes implements Payload.
func (p *SparsePayload) WireBytes() int64 {
	return int64(len(p.Values)) * (ElemBytes + IndexBytes)
}

// Shape implements Payload.
func (p *SparsePayload) Shape() (int, int) { return p.rows, p.cols }

// reuse resizes the payload's slices to k entries without allocating when
// capacity suffices, and restamps the dense shape.
func (p *SparsePayload) reuse(k, rows, cols int) {
	if cap(p.Indices) < k {
		p.Indices = make([]int, k)
		p.Values = make([]float64, k)
	}
	p.Indices = p.Indices[:k]
	p.Values = p.Values[:k]
	p.rows, p.cols = rows, cols
}

// magOrder sorts flat indices by |value| descending, ties by index
// ascending — a strict total order, so every correct sort produces the
// same permutation (determinism does not depend on sort stability).
type magOrder struct {
	idx  []int
	data []float64
}

func (o *magOrder) Len() int      { return len(o.idx) }
func (o *magOrder) Swap(a, b int) { o.idx[a], o.idx[b] = o.idx[b], o.idx[a] }
func (o *magOrder) Less(a, b int) bool {
	va, vb := math.Abs(o.data[o.idx[a]]), math.Abs(o.data[o.idx[b]])
	if va != vb {
		return va > vb
	}
	return o.idx[a] < o.idx[b]
}

// ascInts sorts ints ascending via a pre-boxed sort.Interface (avoids the
// per-call boxing allocation of sort.Ints).
type ascInts struct{ v []int }

func (o *ascInts) Len() int           { return len(o.v) }
func (o *ascInts) Swap(a, b int)      { o.v[a], o.v[b] = o.v[b], o.v[a] }
func (o *ascInts) Less(a, b int) bool { return o.v[a] < o.v[b] }

// Compress implements Compressor by full selection (the paper notes real
// systems use quasi-sort to cut this cost; exact selection is fine for the
// reproduction and strictly more favourable to top-k quality).
func (c *TopK) Compress(m *tensor.Matrix) Payload {
	n := m.NumElements()
	k := c.keep(n)
	if cap(c.order.idx) < n {
		c.order.idx = make([]int, n)
	}
	idx := c.order.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	// Partial selection via full sort on |value| descending, ties by index
	// for determinism.
	c.order.idx, c.order.data = idx, m.Data
	sort.Sort(&c.order)
	c.order.data = nil // don't pin the input between calls
	kept := idx[:k]
	c.asc.v = kept
	sort.Sort(&c.asc)
	c.payload.reuse(k, m.Rows, m.Cols)
	copy(c.payload.Indices, kept)
	for i, fi := range kept {
		c.payload.Values[i] = m.Data[fi]
	}
	return &c.payload
}

// Decompress implements Compressor.
func (c *TopK) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor.
func (c *TopK) DecompressInto(dst *tensor.Matrix, pl Payload) {
	p, ok := pl.(*SparsePayload)
	if !ok {
		panic(fmt.Sprintf("compress: TopK.Decompress got %T", pl))
	}
	mustShape(dst, pl, "TopK")
	dst.Zero()
	for i, fi := range p.Indices {
		dst.Data[fi] = p.Values[i]
	}
}

var _ Compressor = (*TopK)(nil)
