package compress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// TopK keeps the k largest-magnitude elements of the gradient and their
// indices, zeroing the rest (Lin et al., ICLR 2018; §2.3 of the paper).
//
// The wire payload per kept element is one value at ElemBytes plus a
// 4-byte index — the index overhead the paper calls out as a weakness of
// top-k for point-to-point traffic ("Opt-CC (TopK)" in Fig. 3).
type TopK struct {
	// Fraction of elements kept, in (0, 1].
	Fraction float64
}

// IndexBytes is the per-element index cost of sparse payloads.
const IndexBytes = 4

// NewTopK returns a compressor keeping ceil(fraction·N) elements.
func NewTopK(fraction float64) *TopK {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("compress: TopK fraction %v outside (0,1]", fraction))
	}
	return &TopK{Fraction: fraction}
}

// Name implements Compressor.
func (c *TopK) Name() string { return fmt.Sprintf("topk(%.3g)", c.Fraction) }

func (c *TopK) keep(n int) int {
	k := int(math.Ceil(c.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Ratio implements Compressor.
func (c *TopK) Ratio(rows, cols int) float64 {
	n := rows * cols
	k := c.keep(n)
	return float64(DenseBytes(rows, cols)) / float64(int64(k)*(ElemBytes+IndexBytes))
}

// SparsePayload is a list of (flat index, value) pairs.
type SparsePayload struct {
	Indices    []int
	Values     []float64
	rows, cols int
}

// WireBytes implements Payload.
func (p *SparsePayload) WireBytes() int64 {
	return int64(len(p.Values)) * (ElemBytes + IndexBytes)
}

// Shape implements Payload.
func (p *SparsePayload) Shape() (int, int) { return p.rows, p.cols }

// Compress implements Compressor by full selection (the paper notes real
// systems use quasi-sort to cut this cost; exact selection is fine for the
// reproduction and strictly more favourable to top-k quality).
func (c *TopK) Compress(m *tensor.Matrix) Payload {
	n := m.NumElements()
	k := c.keep(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Partial selection via full sort on |value| descending, ties by index
	// for determinism.
	sort.Slice(idx, func(a, b int) bool {
		va, vb := math.Abs(m.Data[idx[a]]), math.Abs(m.Data[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	kept := idx[:k]
	sort.Ints(kept)
	p := &SparsePayload{
		Indices: kept,
		Values:  make([]float64, k),
		rows:    m.Rows, cols: m.Cols,
	}
	for i, fi := range kept {
		p.Values[i] = m.Data[fi]
	}
	return p
}

// Decompress implements Compressor.
func (c *TopK) Decompress(pl Payload) *tensor.Matrix {
	p, ok := pl.(*SparsePayload)
	if !ok {
		panic(fmt.Sprintf("compress: TopK.Decompress got %T", pl))
	}
	out := tensor.New(p.rows, p.cols)
	for i, fi := range p.Indices {
		out.Data[fi] = p.Values[i]
	}
	return out
}

var _ Compressor = (*TopK)(nil)
