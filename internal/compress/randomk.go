package compress

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/tensor"
)

// RandomK keeps a uniformly random fraction of elements, scaled by 1/p so
// the reconstruction is unbiased (the classic sparsification baseline the
// gradient-compression literature compares against, §2.3/§11.1). Unlike
// TopK it needs no selection pass and no index agreement, but it discards
// energy indiscriminately — the ablation experiments use it to show why
// magnitude-aware schemes win.
//
// The permutation scratch and payload slices are reused across calls;
// steady-state compression is allocation-free.
type RandomK struct {
	Fraction float64
	rng      *rand.Rand

	perm    []int
	payload SparsePayload
}

// NewRandomK returns a compressor keeping ceil(fraction·N) random
// elements, deterministic per seed.
func NewRandomK(fraction float64, seed int64) *RandomK {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("compress: RandomK fraction %v outside (0,1]", fraction))
	}
	return &RandomK{Fraction: fraction, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Compressor.
func (c *RandomK) Name() string { return fmt.Sprintf("randomk(%.3g)", c.Fraction) }

// Ratio implements Compressor (clamped to ≥ 1 like TopK: index overhead
// can push the sparse encoding past dense at large fractions).
func (c *RandomK) Ratio(rows, cols int) float64 {
	return sparseRatio(rows, cols, c.keep(rows*cols))
}

func (c *RandomK) keep(n int) int {
	k := int(math.Ceil(c.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Compress implements Compressor: sample k indices without replacement,
// store values scaled by n/k for unbiasedness. The Fisher–Yates fill below
// draws exactly like rand.Perm, so selections are bit-identical to the
// allocating path for the same seed. The kept indices are then sorted
// ascending to satisfy the tensor.Sparse invariant — the selected set,
// the per-coordinate values, and hence every reconstruction are
// unchanged; only the in-payload pair order differs from the raw draw.
func (c *RandomK) Compress(m *tensor.Matrix) Payload {
	n := m.NumElements()
	k := c.keep(n)
	if cap(c.perm) < n {
		c.perm = make([]int, n)
	}
	perm := c.perm[:n]
	for i := range perm {
		j := c.rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	kept := perm[:k]
	slices.Sort(kept)
	scale := float64(n) / float64(k)
	tensor.GatherInto(&c.payload.Sparse, m, kept)
	tensor.SpScaleInto(&c.payload.Sparse, scale, &c.payload.Sparse)
	return &c.payload
}

// Decompress implements Compressor.
func (c *RandomK) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor.
func (c *RandomK) DecompressInto(dst *tensor.Matrix, pl Payload) {
	p, ok := pl.(*SparsePayload)
	if !ok {
		panic(fmt.Sprintf("compress: RandomK.Decompress got %T", pl))
	}
	mustShape(dst, pl, "RandomK")
	p.Sparse.DensifyInto(dst)
}

// sparseNative marks c's payloads as natively sparse (see SparseNative).
func (c *RandomK) sparseNative() {}

var _ Compressor = (*RandomK)(nil)

// Instrumented wraps a Compressor and accumulates traffic statistics:
// dense vs wire bytes and reconstruction error energy. The ablation
// experiments and Fig. 10-style accounting use it to report achieved
// compression ratios of real training runs. The error probe reconstructs
// into a pooled per-shape scratch, so instrumentation adds no steady-state
// allocations.
type Instrumented struct {
	inner Compressor
	pool  *tensor.Pool
	recon shapeStates[*tensor.Matrix]

	Calls      int
	DenseBytes int64
	WireBytes  int64
	// SumRelErr accumulates per-call relative Frobenius errors.
	SumRelErr float64
}

// NewInstrumented wraps inner.
func NewInstrumented(inner Compressor) *Instrumented {
	return &Instrumented{inner: inner, recon: newShapeStates[*tensor.Matrix](maxShapeStates, 0)}
}

// SetPool implements PoolAware (and forwards to the wrapped compressor).
func (c *Instrumented) SetPool(p *tensor.Pool) {
	c.pool = p
	if pa, ok := c.inner.(PoolAware); ok {
		pa.SetPool(p)
	}
}

// Name implements Compressor.
func (c *Instrumented) Name() string { return c.inner.Name() + "+stats" }

// Ratio implements Compressor.
func (c *Instrumented) Ratio(rows, cols int) float64 { return c.inner.Ratio(rows, cols) }

// Compress implements Compressor, recording sizes and error.
func (c *Instrumented) Compress(m *tensor.Matrix) Payload {
	pl := c.inner.Compress(m)
	c.Calls++
	c.DenseBytes += DenseBytes(m.Rows, m.Cols)
	c.WireBytes += pl.WireBytes()
	key := [2]int{m.Rows, m.Cols}
	recon, ok := c.recon.get(key)
	if !ok {
		recon = poolOrShared(c.pool).GetUninit(m.Rows, m.Cols)
		// The probe scratch never escapes, so evicted buffers recycle.
		c.recon.put(key, recon, poolOrShared(c.pool).Put)
	}
	c.inner.DecompressInto(recon, pl)
	c.SumRelErr += RelativeError(m, recon)
	return pl
}

// Decompress implements Compressor.
func (c *Instrumented) Decompress(pl Payload) *tensor.Matrix { return c.inner.Decompress(pl) }

// DecompressInto implements Compressor.
func (c *Instrumented) DecompressInto(dst *tensor.Matrix, pl Payload) {
	c.inner.DecompressInto(dst, pl)
}

// AchievedRatio returns cumulative dense/wire bytes (0 before any call).
func (c *Instrumented) AchievedRatio() float64 {
	if c.WireBytes == 0 {
		return 0
	}
	return float64(c.DenseBytes) / float64(c.WireBytes)
}

// MeanRelError returns the average per-call relative error.
func (c *Instrumented) MeanRelError() float64 {
	if c.Calls == 0 {
		return 0
	}
	return c.SumRelErr / float64(c.Calls)
}

var (
	_ Compressor = (*Instrumented)(nil)
	_ PoolAware  = (*Instrumented)(nil)
)
