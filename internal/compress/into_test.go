package compress

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestDecompressIntoMatchesDecompress is the regression contract of the
// pooled API: for every compressor, reconstructing into a reused (dirty)
// destination must be bit-identical to the allocating path.
func TestDecompressIntoMatchesDecompress(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, c := range allCompressors(51) {
		m := tensor.RandN(rng, 11, 7, 1)
		pl := c.Compress(m)
		want := c.Decompress(pl)
		dst := tensor.New(11, 7)
		dst.Fill(123) // stale contents must not survive
		c.DecompressInto(dst, pl)
		if !dst.Equal(want, 0) {
			t.Fatalf("%s: DecompressInto differs from Decompress", c.Name())
		}
	}
}

func TestDecompressIntoShapeMismatchPanics(t *testing.T) {
	for _, c := range allCompressors(52) {
		pl := c.Compress(tensor.New(4, 4))
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: wrong-shape dst should panic", c.Name())
				}
			}()
			c.DecompressInto(tensor.New(4, 5), pl)
		}()
	}
}

// TestCompressorsSteadyStateZeroAlloc pins the tentpole property: after a
// warm-up call per shape, Compress + DecompressInto allocate nothing.
func TestCompressorsSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := tensor.RandN(rng, 24, 18, 1)
	dst := tensor.New(24, 18)
	for _, c := range allCompressors(53) {
		c.DecompressInto(dst, c.Compress(m)) // warm the workspaces
		n := testing.AllocsPerRun(20, func() {
			c.DecompressInto(dst, c.Compress(m))
		})
		if n != 0 {
			t.Fatalf("%s: %v allocs per steady-state round trip", c.Name(), n)
		}
	}
}

func TestErrorFeedbackSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	ef := NewErrorFeedback(NewPowerSGD(2, 54))
	m := tensor.RandN(rng, 16, 12, 1)
	ef.CompressWithFeedback(m)
	ef.CompressWithFeedback(m) // second call exercises the residual path
	n := testing.AllocsPerRun(20, func() { ef.CompressWithFeedback(m) })
	if n != 0 {
		t.Fatalf("CompressWithFeedback allocates %v per steady-state call", n)
	}
}

// TestPowerSGDPooledMatchesFresh verifies the workspace-reusing engine is
// bit-identical to a fresh instance processing the same sequence — i.e.
// buffer reuse changes nothing about the math, including warm-start state
// carried across calls and interleaved shapes.
func TestPowerSGDPooledMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	seqA := make([]*tensor.Matrix, 6)
	seqB := make([]*tensor.Matrix, 6)
	for i := range seqA {
		seqA[i] = tensor.RandN(rng, 20, 14, 1)
		seqB[i] = tensor.RandN(rng, 9, 27, 1)
	}
	run := func() [][]float64 {
		c := NewPowerSGD(3, 99)
		var out [][]float64
		for i := range seqA {
			ra := c.Decompress(c.Compress(seqA[i]))
			rb := c.Decompress(c.Compress(seqB[i]))
			out = append(out, append(append([]float64{}, ra.Data...), rb.Data...))
		}
		return out
	}
	first := run()
	second := run()
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("step %d elem %d: %v vs %v", i, j, first[i][j], second[i][j])
			}
		}
	}
}

func TestPowerSGDWarmStateEviction(t *testing.T) {
	c := NewPowerSGD(1, 56)
	// Push far more shapes than the cap; each is seen once.
	for i := 0; i < MaxWarmShapes*2; i++ {
		c.Compress(tensor.New(2, 3+i))
	}
	if got := c.WarmShapeCount(); got > MaxWarmShapes {
		t.Fatalf("warm-state map grew to %d, cap is %d", got, MaxWarmShapes)
	}
	// A hot shape must keep its warm start across the churn.
	rng := rand.New(rand.NewSource(56))
	hot := tensor.RandN(rng, 12, 10, 1)
	c2 := NewPowerSGD(2, 57)
	c2.Compress(hot)
	for i := 0; i < 10; i++ {
		c2.Compress(tensor.New(2, 100+i)) // churn
		c2.Compress(hot)                  // keep hot shape recent
	}
	st, ok := c2.states.peek([2]int{12, 10})
	if !ok || st.warmQ == nil {
		t.Fatal("hot shape lost its warm-start state")
	}
}

func TestPowerSGDStaleShapeEvicted(t *testing.T) {
	c := NewPowerSGD(1, 58)
	stale := tensor.New(5, 5)
	c.Compress(stale)
	// Push enough fresh shapes to exceed the cap: the stale entry is the
	// least recently used, so the first over-cap sweep drops it.
	for i := 0; i < MaxWarmShapes+4; i++ {
		c.Compress(tensor.New(2, 200+i))
	}
	if _, ok := c.states.peek([2]int{5, 5}); ok {
		t.Fatal("stale shape survived eviction")
	}
}

// TestPayloadValidUntilNextCompress documents the payload-lifetime
// contract: a payload decompressed before the next Compress of its shape
// round-trips correctly.
func TestPayloadValidUntilNextCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, c := range allCompressors(59) {
		m1 := tensor.RandN(rng, 8, 8, 1)
		m2 := tensor.RandN(rng, 8, 8, 1)
		pl1 := c.Compress(m1)
		r1 := c.Decompress(pl1) // consumed before the next Compress
		pl2 := c.Compress(m2)
		r2 := c.Decompress(pl2)
		if r1.Equal(r2, 0) {
			t.Fatalf("%s: distinct inputs reconstructed identically (payload aliasing bug)", c.Name())
		}
	}
}

func TestRelativeErrorShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	RelativeError(tensor.New(2, 3), tensor.New(3, 3))
}

// TestWrapperShapeStatesBounded covers the non-PowerSGD per-shape maps:
// ErrorFeedback scratch, Identity snapshots, and Instrumented probes must
// all stay within maxShapeStates under shape churn.
func TestWrapperShapeStatesBounded(t *testing.T) {
	ef := NewErrorFeedback(NewTopK(0.5))
	id := NewIdentity()
	inst := NewInstrumented(NewTopK(0.5))
	for i := 0; i < maxShapeStates*2; i++ {
		m := tensor.New(2, 3+i)
		ef.CompressWithFeedback(m)
		id.Compress(m)
		inst.Compress(m)
	}
	if n := ef.states.size(); n > maxShapeStates {
		t.Fatalf("ErrorFeedback states grew to %d, cap %d", n, maxShapeStates)
	}
	if n := id.buf.size(); n > maxShapeStates {
		t.Fatalf("Identity snapshots grew to %d, cap %d", n, maxShapeStates)
	}
	if n := inst.recon.size(); n > maxShapeStates {
		t.Fatalf("Instrumented probes grew to %d, cap %d", n, maxShapeStates)
	}
	// The hottest (most recent) shape keeps its residual.
	last := [2]int{2, 3 + maxShapeStates*2 - 1}
	if ef.Residual(last[0], last[1]) == nil {
		t.Fatal("most recent shape lost its residual")
	}
}

func TestIdentityRoundTripViaInto(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	m := tensor.RandN(rng, 6, 9, 1)
	c := NewIdentity()
	dst := tensor.New(6, 9)
	c.DecompressInto(dst, c.Compress(m))
	if !dst.Equal(m, 0) {
		t.Fatal("identity DecompressInto must be lossless")
	}
	// The payload snapshots the input: mutating m afterwards must not
	// change what the payload decompresses to.
	pl := c.Compress(m)
	m.Fill(0)
	c.DecompressInto(dst, pl)
	if dst.FrobeniusNorm() == 0 {
		t.Fatal("identity payload aliased its input instead of snapshotting")
	}
}

func TestSetPoolRouting(t *testing.T) {
	pool := tensor.NewPool()
	ps := NewPowerSGD(2, 61)
	ef := NewErrorFeedback(ps)
	ef.SetPool(pool)
	rng := rand.New(rand.NewSource(61))
	m := tensor.RandN(rng, 10, 10, 1)
	ef.CompressWithFeedback(m)
	if pool.Stats().Gets == 0 {
		t.Fatal("SetPool did not route workspace allocation through the custom pool")
	}
}

func ExampleCompressor_decompressInto() {
	c := NewPowerSGD(2, 1)
	g := tensor.New(4, 4)
	g.Fill(1)
	dst := tensor.New(4, 4)
	c.DecompressInto(dst, c.Compress(g))
	fmt.Println(dst.Rows, dst.Cols)
	// Output: 4 4
}
