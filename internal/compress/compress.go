// Package compress implements the gradient-compression algorithms surveyed
// in §2.3 of the Optimus-CC paper and the PowerSGD low-rank scheme the
// paper adopts (§8), plus the error-feedback machinery that both
// data-parallel compression and the paper's lazy error propagation build
// on.
//
// A Compressor turns a dense gradient matrix into a compact Payload whose
// WireBytes is what travels over the interconnect; Decompress reconstructs
// the (lossy) dense matrix. CompressionError (original − reconstruction)
// is what error feedback and lazy error propagation carry forward.
package compress

import (
	"fmt"

	"repro/internal/tensor"
)

// Payload is a compressed representation of a gradient matrix.
type Payload interface {
	// WireBytes is the number of bytes this payload occupies on the
	// interconnect, assuming the element width the compressor was
	// configured with.
	WireBytes() int64
	// Shape returns the dense shape the payload decompresses to.
	Shape() (rows, cols int)
}

// Compressor is a lossy matrix compressor. Implementations must be
// deterministic given their construction parameters and input.
type Compressor interface {
	// Compress encodes m. The input is not modified.
	Compress(m *tensor.Matrix) Payload
	// Decompress reconstructs a dense matrix from a payload produced by
	// this compressor. The result is newly allocated.
	Decompress(p Payload) *tensor.Matrix
	// Name identifies the algorithm (for experiment tables).
	Name() string
	// Ratio returns the achieved compression ratio (dense bytes / wire
	// bytes) for a rows×cols matrix. >1 means smaller on the wire.
	Ratio(rows, cols int) float64
}

// ElemBytes is the assumed dense element width on the wire. The paper's
// experiments communicate fp16 tensors.
const ElemBytes = 2

// DenseBytes returns the uncompressed wire size of a rows×cols matrix.
func DenseBytes(rows, cols int) int64 {
	return int64(rows) * int64(cols) * ElemBytes
}

// CompressionError returns orig − decompress(compress(orig)) given the
// reconstruction; both inputs are unmodified.
func CompressionError(orig, recon *tensor.Matrix) *tensor.Matrix {
	e := orig.Clone()
	e.Sub(recon)
	return e
}

// RelativeError returns ‖orig − recon‖_F / ‖orig‖_F (0 when orig is zero).
func RelativeError(orig, recon *tensor.Matrix) float64 {
	n := orig.FrobeniusNorm()
	if n == 0 {
		return 0
	}
	return CompressionError(orig, recon).FrobeniusNorm() / n
}

// Identity is the no-compression baseline: the payload is the dense matrix.
type Identity struct{}

// NewIdentity returns the pass-through compressor used for baseline runs.
func NewIdentity() *Identity { return &Identity{} }

type densePayload struct{ m *tensor.Matrix }

func (p densePayload) WireBytes() int64          { return p.m.SizeBytes(ElemBytes) }
func (p densePayload) Shape() (int, int)         { return p.m.Rows, p.m.Cols }
func (c *Identity) Name() string                 { return "identity" }
func (c *Identity) Ratio(rows, cols int) float64 { return 1 }

// Compress implements Compressor.
func (c *Identity) Compress(m *tensor.Matrix) Payload { return densePayload{m.Clone()} }

// Decompress implements Compressor.
func (c *Identity) Decompress(p Payload) *tensor.Matrix {
	dp, ok := p.(densePayload)
	if !ok {
		panic(fmt.Sprintf("compress: Identity.Decompress got %T", p))
	}
	return dp.m.Clone()
}

var _ Compressor = (*Identity)(nil)
