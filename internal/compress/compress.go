// Package compress implements the gradient-compression algorithms surveyed
// in §2.3 of the Optimus-CC paper and the PowerSGD low-rank scheme the
// paper adopts (§8), plus the error-feedback machinery that both
// data-parallel compression and the paper's lazy error propagation build
// on.
//
// A Compressor turns a dense gradient matrix into a compact Payload whose
// WireBytes is what travels over the interconnect; Decompress reconstructs
// the (lossy) dense matrix. CompressionError (original − reconstruction)
// is what error feedback and lazy error propagation carry forward.
//
// # Zero-allocation contract
//
// Compressors are workspace-reusing: Compress writes its payload into
// per-shape buffers owned by the compressor instance, and DecompressInto
// reconstructs into a caller-provided destination. On steady state (same
// shapes every call, which is exactly the training loop's behaviour) no
// compressor allocates. The costs of this contract:
//
//   - A Payload is only valid until the next Compress call of the same
//     shape on the same instance. Consume it (ship it, measure it,
//     decompress it) before compressing again.
//   - Compressor instances are NOT safe for concurrent use. Give each
//     communication channel its own instance, as the paper does with
//     private PowerSVD variables per stage boundary.
//
// Workspace matrices are drawn from a tensor.Pool (shared per package by
// default, overridable per instance via SetPool) so compressors that
// handle the same shapes can recycle each other's retired buffers.
package compress

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Payload is a compressed representation of a gradient matrix.
type Payload interface {
	// WireBytes is the number of bytes this payload occupies on the
	// interconnect, assuming the element width the compressor was
	// configured with.
	WireBytes() int64
	// Shape returns the dense shape the payload decompresses to.
	Shape() (rows, cols int)
}

// Compressor is a lossy matrix compressor. Implementations must be
// deterministic given their construction parameters and input.
type Compressor interface {
	// Compress encodes m. The input is not modified. The returned payload
	// reuses per-shape buffers: it is valid until the next Compress call
	// of the same shape on this instance.
	Compress(m *tensor.Matrix) Payload
	// Decompress reconstructs a dense matrix from a payload produced by
	// this compressor. The result is newly allocated; prefer
	// DecompressInto on hot paths.
	Decompress(p Payload) *tensor.Matrix
	// DecompressInto reconstructs into dst, which must have the payload's
	// shape. It writes every element (no stale data survives) and does
	// not allocate.
	DecompressInto(dst *tensor.Matrix, p Payload)
	// Name identifies the algorithm (for experiment tables).
	Name() string
	// Ratio returns the achieved compression ratio (dense bytes / wire
	// bytes) for a rows×cols matrix. >1 means smaller on the wire.
	Ratio(rows, cols int) float64
}

// PoolAware is implemented by compressors whose workspaces come from a
// tensor.Pool. SetPool replaces the pool used for future workspace
// growth; already-held workspaces are unaffected.
type PoolAware interface {
	SetPool(p *tensor.Pool)
}

// sharedPool is the package-default workspace pool.
var sharedPool = tensor.NewPool()

// SharedPool returns the package-default workspace pool that compressors
// draw from unless overridden with SetPool. Exposed so benchmarks and the
// trainer can share one pool across layers.
func SharedPool() *tensor.Pool { return sharedPool }

// poolOrShared resolves a possibly-nil per-instance pool.
func poolOrShared(p *tensor.Pool) *tensor.Pool {
	if p != nil {
		return p
	}
	return sharedPool
}

// mustShape panics unless dst matches the payload shape (shared by all
// DecompressInto implementations).
func mustShape(dst *tensor.Matrix, p Payload, who string) {
	r, c := p.Shape()
	if dst.Rows != r || dst.Cols != c {
		panic(fmt.Sprintf("compress: %s.DecompressInto dst %dx%d want %dx%d", who, dst.Rows, dst.Cols, r, c))
	}
}

// ElemBytes is the assumed dense element width on the wire. The paper's
// experiments communicate fp16 tensors.
const ElemBytes = 2

// DenseBytes returns the uncompressed wire size of a rows×cols matrix.
func DenseBytes(rows, cols int) int64 {
	return int64(rows) * int64(cols) * ElemBytes
}

// CompressionError returns orig − decompress(compress(orig)) given the
// reconstruction; both inputs are unmodified.
func CompressionError(orig, recon *tensor.Matrix) *tensor.Matrix {
	e := orig.Clone()
	e.Sub(recon)
	return e
}

// RelativeError returns ‖orig − recon‖_F / ‖orig‖_F (0 when orig is zero).
// Computed streaming, without materializing the difference. Panics on
// shape mismatch.
func RelativeError(orig, recon *tensor.Matrix) float64 {
	if orig.Rows != recon.Rows || orig.Cols != recon.Cols {
		panic(fmt.Sprintf("compress: RelativeError shape mismatch %dx%d vs %dx%d",
			orig.Rows, orig.Cols, recon.Rows, recon.Cols))
	}
	n := orig.FrobeniusNorm()
	if n == 0 {
		return 0
	}
	var s float64
	rd := recon.Data
	for i, v := range orig.Data {
		d := v - rd[i]
		s += d * d
	}
	return math.Sqrt(s) / n
}

// maxShapeStates bounds every per-shape state map in this package
// (ErrorFeedback scratch, Identity payload snapshots, Instrumented error
// probes, PowerSGD warm-start state) with one LRU policy: when a map
// exceeds the cap after an insert, entries unused for longer than the
// staleness horizon go first, then least-recently-used entries until the
// cap holds. An evicted shape merely re-faults its workspace on its next
// appearance (for ErrorFeedback this also restarts the residual, for
// PowerSGD the warm start — the same cold-restart semantics).
const maxShapeStates = MaxWarmShapes

// shapeStates is the bounded per-shape state map shared by the
// compressors.
type shapeStates[T any] struct {
	entries map[[2]int]*shapeEntry[T]
	clock   uint64
	// cap bounds len(entries); evictAfter is the staleness horizon in
	// recency-clock ticks (0 disables the staleness sweep).
	cap        int
	evictAfter uint64
}

type shapeEntry[T any] struct {
	val     T
	lastUse uint64
}

func newShapeStates[T any](cap int, evictAfter uint64) shapeStates[T] {
	return shapeStates[T]{
		entries:    make(map[[2]int]*shapeEntry[T]),
		cap:        cap,
		evictAfter: evictAfter,
	}
}

// get returns the state for key, marking it recently used.
func (s *shapeStates[T]) get(key [2]int) (T, bool) {
	e := s.entries[key]
	if e == nil {
		var zero T
		return zero, false
	}
	s.clock++
	e.lastUse = s.clock
	return e.val, true
}

// peek returns the state for key without touching recency (for accessors
// that must not distort the eviction order).
func (s *shapeStates[T]) peek(key [2]int) (T, bool) {
	e := s.entries[key]
	if e == nil {
		var zero T
		return zero, false
	}
	return e.val, true
}

// put inserts key's state as most recently used, then enforces the cap:
// stale entries (unused beyond evictAfter) are dropped first, then
// least-recently-used entries, each passed to onEvict (nil = just drop to
// the GC).
func (s *shapeStates[T]) put(key [2]int, v T, onEvict func(T)) {
	s.clock++
	s.entries[key] = &shapeEntry[T]{val: v, lastUse: s.clock}
	if len(s.entries) <= s.cap {
		return
	}
	if s.evictAfter > 0 {
		for k, e := range s.entries {
			if s.clock-e.lastUse > s.evictAfter {
				if onEvict != nil {
					onEvict(e.val)
				}
				delete(s.entries, k)
			}
		}
	}
	for len(s.entries) > s.cap {
		var oldKey [2]int
		var oldest *shapeEntry[T]
		for k, e := range s.entries {
			if oldest == nil || e.lastUse < oldest.lastUse {
				oldKey, oldest = k, e
			}
		}
		if onEvict != nil {
			onEvict(oldest.val)
		}
		delete(s.entries, oldKey)
	}
}

// each visits every live state.
func (s *shapeStates[T]) each(f func(T)) {
	for _, e := range s.entries {
		f(e.val)
	}
}

// eachKey visits every live state with its shape key (map order; callers
// that need determinism — e.g. checkpoint serialization — sort).
func (s *shapeStates[T]) eachKey(f func(key [2]int, v T)) {
	for k, e := range s.entries {
		f(k, e.val)
	}
}

// size returns the number of live states.
func (s *shapeStates[T]) size() int { return len(s.entries) }

// Identity is the no-compression baseline: the payload is the dense matrix.
// The payload snapshot is kept in a reused per-shape buffer (bounded per
// maxShapeStates).
type Identity struct {
	pool *tensor.Pool
	buf  shapeStates[*densePayload]
}

// NewIdentity returns the pass-through compressor used for baseline runs.
func NewIdentity() *Identity {
	return &Identity{buf: newShapeStates[*densePayload](maxShapeStates, 0)}
}

// SetPool implements PoolAware.
func (c *Identity) SetPool(p *tensor.Pool) { c.pool = p }

type densePayload struct{ m *tensor.Matrix }

func (p *densePayload) WireBytes() int64         { return p.m.SizeBytes(ElemBytes) }
func (p *densePayload) Shape() (int, int)        { return p.m.Rows, p.m.Cols }
func (c *Identity) Name() string                 { return "identity" }
func (c *Identity) Ratio(rows, cols int) float64 { return 1 }

// Compress implements Compressor.
func (c *Identity) Compress(m *tensor.Matrix) Payload {
	key := [2]int{m.Rows, m.Cols}
	pl, ok := c.buf.get(key)
	if !ok {
		pl = &densePayload{m: poolOrShared(c.pool).GetUninit(m.Rows, m.Cols)}
		// An evicted snapshot may still back an outstanding payload, so it
		// is dropped to the GC rather than recycled.
		c.buf.put(key, pl, nil)
	}
	pl.m.CopyFrom(m)
	return pl
}

// Decompress implements Compressor.
func (c *Identity) Decompress(p Payload) *tensor.Matrix {
	r, cl := p.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, p)
	return out
}

// DecompressInto implements Compressor.
func (c *Identity) DecompressInto(dst *tensor.Matrix, p Payload) {
	dp, ok := p.(*densePayload)
	if !ok {
		panic(fmt.Sprintf("compress: Identity.Decompress got %T", p))
	}
	mustShape(dst, p, "Identity")
	dst.CopyFrom(dp.m)
}

var (
	_ Compressor = (*Identity)(nil)
	_ PoolAware  = (*Identity)(nil)
)
