package compress

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestSparseRatioClampedAtOne pins the k ≥ rows·cols edge of the sparse
// family ratios: at fraction 1 the index overhead makes the sparse
// encoding 3× *larger* than dense, and the ratio must clamp to 1 rather
// than report < 1. Empty shapes must not divide by zero.
func TestSparseRatioClampedAtOne(t *testing.T) {
	for _, c := range []Compressor{NewTopK(1), NewRandomK(1, 1)} {
		if r := c.Ratio(8, 8); r != 1 {
			t.Fatalf("%s Ratio(8,8) at fraction 1 = %v, want clamp to 1", c.Name(), r)
		}
		if r := c.Ratio(0, 5); r != 1 {
			t.Fatalf("%s Ratio(0,5) = %v, want 1", c.Name(), r)
		}
	}
	// Fractions below break-even (< 1/3 at 2-byte elems + 4-byte indices)
	// still report the genuine > 1 ratio.
	if r := NewTopK(0.01).Ratio(10, 10); r <= 1 {
		t.Fatalf("topk(0.01) Ratio = %v, want > 1", r)
	}
	// PowerSGD's guard: empty and ultra-skinny shapes report 1, not
	// Inf/NaN or sub-break-even values.
	p := NewPowerSGD(4, 1)
	if r := p.Ratio(0, 0); r != 1 {
		t.Fatalf("powersgd Ratio(0,0) = %v, want 1", r)
	}
	if r := p.Ratio(1, 5); r != 1 {
		t.Fatalf("powersgd Ratio(1,5) = %v, want clamp to 1", r)
	}
}

// TestInstrumentedDivisionGuards pins the guarded accessors at zero
// traffic (already covered by TestInstrumentedEmpty for the empty case;
// this adds the zero-wire-after-calls edge via an empty matrix).
func TestInstrumentedDivisionGuards(t *testing.T) {
	inst := NewInstrumented(NewIdentity())
	if inst.AchievedRatio() != 0 || inst.MeanRelError() != 0 {
		t.Fatal("zero-traffic Instrumented must report 0, not NaN")
	}
}

// TestCompressWithFeedbackSparseMatchesDense drives two ErrorFeedback
// instances over the same gradient stream — one through the densified
// oracle, one through the sparse-native path — and requires payloads
// and residuals to stay bit-identical (tol 0) across iterations, for
// both sparse families, enabled and disabled feedback.
func TestCompressWithFeedbackSparseMatchesDense(t *testing.T) {
	build := map[string]func() Compressor{
		"topk":    func() Compressor { return NewTopK(0.1) },
		"randomk": func() Compressor { return NewRandomK(0.1, 42) },
	}
	for name, mk := range build {
		for _, enabled := range []bool{true, false} {
			rng := rand.New(rand.NewSource(11))
			dense := NewErrorFeedback(mk())
			sparse := NewErrorFeedback(mk())
			dense.SetEnabled(enabled)
			sparse.SetEnabled(enabled)
			if !sparse.SparseNative() {
				t.Fatalf("%s should be sparse-native", name)
			}
			rows, cols := 17, 23
			recon := tensor.New(rows, cols)
			for iter := 0; iter < 8; iter++ {
				g := tensor.RandN(rng, rows, cols, 1)
				dpl, drecon := dense.CompressWithFeedback(g)
				spl, ok := sparse.CompressWithFeedbackSparse(g)
				if !ok {
					t.Fatalf("%s sparse path refused", name)
				}
				dsp := dpl.(*SparsePayload)
				if len(dsp.Indices) != len(spl.Indices) {
					t.Fatalf("%s iter %d nnz %d vs %d", name, iter, len(dsp.Indices), len(spl.Indices))
				}
				for i := range dsp.Indices {
					if dsp.Indices[i] != spl.Indices[i] || dsp.Values[i] != spl.Values[i] {
						t.Fatalf("%s iter %d payload diverges at %d", name, iter, i)
					}
				}
				// The sparse payload's dense image must equal the oracle's
				// reconstruction bit for bit.
				spl.Sparse.DensifyInto(recon)
				if !recon.Equal(drecon, 0) {
					t.Fatalf("%s iter %d recon diverges", name, iter)
				}
				if enabled {
					dr, sr := dense.Residual(rows, cols), sparse.Residual(rows, cols)
					if dr == nil || sr == nil || !sr.Equal(dr, 0) {
						t.Fatalf("%s iter %d residual diverges", name, iter)
					}
				}
			}
		}
	}
}

// TestCompressWithFeedbackSparseMixedCalls interleaves the dense and
// sparse entry points on a single instance — residual evolution must be
// path-independent, so the mixed stream equals an all-dense stream.
func TestCompressWithFeedbackSparseMixedCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mixed := NewErrorFeedback(NewTopK(0.15))
	oracle := NewErrorFeedback(NewTopK(0.15))
	rows, cols := 12, 9
	for iter := 0; iter < 6; iter++ {
		g := tensor.RandN(rng, rows, cols, 1)
		opl, _ := oracle.CompressWithFeedback(g)
		var indices []int
		var values []float64
		if iter%2 == 0 {
			spl, ok := mixed.CompressWithFeedbackSparse(g)
			if !ok {
				t.Fatal("sparse path refused")
			}
			indices, values = spl.Indices, spl.Values
		} else {
			mpl, _ := mixed.CompressWithFeedback(g)
			sp := mpl.(*SparsePayload)
			indices, values = sp.Indices, sp.Values
		}
		osp := opl.(*SparsePayload)
		if len(indices) != len(osp.Indices) {
			t.Fatalf("iter %d nnz mismatch", iter)
		}
		for i := range indices {
			if indices[i] != osp.Indices[i] || values[i] != osp.Values[i] {
				t.Fatalf("iter %d mixed-call payload diverges at %d", iter, i)
			}
		}
	}
}

// TestCompressWithFeedbackSparseNotNative pins the refusal path for
// non-sparse families: no payload and no state mutation.
func TestCompressWithFeedbackSparseNotNative(t *testing.T) {
	ef := NewErrorFeedback(NewPowerSGD(2, 3))
	if ef.SparseNative() {
		t.Fatal("powersgd must not be sparse-native")
	}
	g := tensor.New(6, 6)
	g.Fill(1)
	if pl, ok := ef.CompressWithFeedbackSparse(g); ok || pl != nil {
		t.Fatal("non-sparse family must refuse the sparse path")
	}
	if ef.Residual(6, 6) != nil {
		t.Fatal("refused sparse call must not touch residual state")
	}
}

// TestTopKQuickselectMatchesFullSort cross-checks the quickselect
// selection against an independent full-sort oracle on adversarial
// inputs (constant data, sorted data, duplicated magnitudes, random).
func TestTopKQuickselectMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := map[string]func(n int) []float64{
		"constant": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = 3
			}
			return d
		},
		"ascending": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = float64(i)
			}
			return d
		},
		"descending": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = float64(n - i)
			}
			return d
		},
		"dup-magnitudes": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = float64(i%5) * negOne(i)
			}
			return d
		},
		"random": func(n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.NormFloat64()
			}
			return d
		},
	}
	for name, gen := range cases {
		for _, n := range []int{1, 2, 7, 64, 257} {
			for _, frac := range []float64{0.01, 0.3, 0.99, 1} {
				data := gen(n)
				m := tensor.FromSlice(1, n, data)
				c := NewTopK(frac)
				pl := c.Compress(m).(*SparsePayload)

				// Oracle: full sort by the same strict total order.
				ord := make([]int, n)
				for i := range ord {
					ord[i] = i
				}
				for i := 1; i < n; i++ { // insertion sort, independent code path
					for j := i; j > 0 && magLess(data, ord[j], ord[j-1]); j-- {
						ord[j], ord[j-1] = ord[j-1], ord[j]
					}
				}
				k := c.keep(n)
				want := map[int]bool{}
				for _, fi := range ord[:k] {
					want[fi] = true
				}
				if len(pl.Indices) != k {
					t.Fatalf("%s n=%d frac=%v kept %d want %d", name, n, frac, len(pl.Indices), k)
				}
				for i, fi := range pl.Indices {
					if !want[fi] {
						t.Fatalf("%s n=%d frac=%v quickselect kept wrong index %d", name, n, frac, fi)
					}
					if pl.Values[i] != data[fi] {
						t.Fatalf("%s n=%d frac=%v wrong value at %d", name, n, frac, fi)
					}
					if i > 0 && pl.Indices[i] <= pl.Indices[i-1] {
						t.Fatalf("%s n=%d frac=%v indices not ascending", name, n, frac)
					}
				}
			}
		}
	}
}

func negOne(i int) float64 {
	if i%2 == 0 {
		return -1
	}
	return 1
}
