package compress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestRandomKUnbiased(t *testing.T) {
	m := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	c := NewRandomK(0.5, 9)
	sum := tensor.New(1, 4)
	const trials = 6000
	for i := 0; i < trials; i++ {
		sum.Add(c.Decompress(c.Compress(m)))
	}
	sum.Scale(1.0 / trials)
	for j, v := range sum.Data {
		if math.Abs(v-m.Data[j]) > 0.15 {
			t.Fatalf("biased at %d: %v vs %v", j, v, m.Data[j])
		}
	}
}

func TestRandomKKeepsExactlyK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandN(rng, 10, 10, 1)
	c := NewRandomK(0.25, 2)
	pl := c.Compress(m).(*SparsePayload)
	if len(pl.Values) != 25 {
		t.Fatalf("kept %d, want 25", len(pl.Values))
	}
	seen := map[int]bool{}
	for _, i := range pl.Indices {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
}

func TestRandomKFractionBounds(t *testing.T) {
	for _, f := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("fraction %v accepted", f)
				}
			}()
			NewRandomK(f, 1)
		}()
	}
}

func TestRandomKWorseThanTopKOnSkewedData(t *testing.T) {
	// Magnitude-aware selection must beat random selection on gradients
	// with concentrated energy — the reason the field uses top-k.
	rng := rand.New(rand.NewSource(5))
	m := tensor.New(20, 20)
	for i := range m.Data {
		if i%17 == 0 {
			m.Data[i] = rng.NormFloat64() * 10
		} else {
			m.Data[i] = rng.NormFloat64() * 0.01
		}
	}
	top := NewTopK(0.1)
	rnd := NewRandomK(0.1, 6)
	topErr := RelativeError(m, top.Decompress(top.Compress(m)))
	var rndErr float64
	const trials = 20
	for i := 0; i < trials; i++ {
		rndErr += RelativeError(m, rnd.Decompress(rnd.Compress(m)))
	}
	rndErr /= trials
	if topErr >= rndErr {
		t.Fatalf("topk error %v should beat randomk %v on skewed data", topErr, rndErr)
	}
}

func TestInstrumentedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := NewInstrumented(NewPowerSGD(4, 7))
	m := tensor.RandN(rng, 32, 32, 1)
	for i := 0; i < 5; i++ {
		pl := inst.Compress(m)
		_ = inst.Decompress(pl)
	}
	if inst.Calls != 5 {
		t.Fatalf("calls %d", inst.Calls)
	}
	if inst.DenseBytes != 5*DenseBytes(32, 32) {
		t.Fatalf("dense bytes %d", inst.DenseBytes)
	}
	ratio := inst.AchievedRatio()
	if math.Abs(ratio-inst.Ratio(32, 32)) > 0.01 {
		t.Fatalf("achieved ratio %v vs declared %v", ratio, inst.Ratio(32, 32))
	}
	if inst.MeanRelError() <= 0 || inst.MeanRelError() > 1 {
		t.Fatalf("mean rel error %v implausible", inst.MeanRelError())
	}
}

func TestInstrumentedEmpty(t *testing.T) {
	inst := NewInstrumented(NewIdentity())
	if inst.AchievedRatio() != 0 || inst.MeanRelError() != 0 {
		t.Fatal("empty instrumentation should report zeros")
	}
}
