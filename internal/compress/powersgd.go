package compress

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// PowerSGD implements the single-power-iteration low-rank compressor of
// Vogels et al. (NeurIPS 2019), the algorithm Optimus-CC adopts for both
// inter-stage compressed backpropagation and data-parallel gradient
// compression (§8).
//
// A gradient M (n×m) is approximated as P·Qᵀ with rank r:
//
//	P = orthonormalize(M · Q_prev)   (one power iteration)
//	Q = Mᵀ · P
//
// The wire payload is P (n×r) and Q (m×r), so the compression ratio is
// n·m / (r·(n+m)). Q is warm-started from the previous call on the same
// PowerSGD instance ("reusing the factorized matrix from the previous
// gradient compression stage", §2.3), which is what makes a single power
// iteration sufficient in practice.
//
// All working memory — the P/Q payload factors, the warm-start Q, and the
// cold-start sketch — lives in per-shape workspaces drawn from a
// tensor.Pool, so steady-state compression performs zero allocations. The
// returned Payload aliases those workspaces and is valid until the next
// Compress call of the same shape on this instance.
//
// PowerSGD instances carry per-shape warm-start state and are not safe for
// concurrent use; give each communication channel its own instance, as the
// paper does with private PowerSVD variables per stage boundary.
type PowerSGD struct {
	rank      int
	seed      int64
	rng       *rand.Rand
	warmStart bool
	// iterations is the number of power iterations per Compress call.
	// PowerSGD's contribution is that warm starting makes 1 sufficient;
	// higher values approach classical truncated SVD at higher cost
	// (§2.3: "iterating power-iteration, which is required for classical
	// SVD, only once").
	iterations int
	pool       *tensor.Pool
	// states caches per-shape workspaces and the warm-start Q, bounded by
	// the package LRU policy (see maxShapeStates in compress.go).
	states shapeStates[*psState]
}

// psState is the per-shape workspace of a PowerSGD instance.
type psState struct {
	warmQ   *tensor.Matrix // last Q factor, for warm starting (nil until stored)
	initQ   *tensor.Matrix // cold-start random sketch buffer
	p, qOut *tensor.Matrix // payload factor buffers, reused every call
	payload *LowRankPayload
}

// Warm-start eviction policy: the per-shape state map is bounded so a
// workload cycling through many tensor shapes (e.g. a sweep over model
// configurations reusing one compressor) cannot grow it without limit.
// When the map exceeds MaxWarmShapes, states unused for WarmEvictAfter
// recency-clock ticks are dropped first, then least-recently-used states
// until the cap holds. Evicting a shape only costs that shape a cold
// restart on its next appearance.
const (
	// MaxWarmShapes caps the number of shapes with live warm-start state.
	MaxWarmShapes = 64
	// WarmEvictAfter is the staleness horizon beyond which a shape's
	// state is considered dead once the cap is exceeded.
	WarmEvictAfter = 512
)

// NewPowerSGD returns a rank-r compressor seeded deterministically. Warm
// starting is enabled, matching the paper's configuration.
func NewPowerSGD(rank int, seed int64) *PowerSGD {
	if rank < 1 {
		panic(fmt.Sprintf("compress: PowerSGD rank %d < 1", rank))
	}
	return &PowerSGD{
		rank:       rank,
		seed:       seed,
		rng:        rand.New(rand.NewSource(seed)),
		warmStart:  true,
		iterations: 1,
		states:     newShapeStates[*psState](MaxWarmShapes, WarmEvictAfter),
	}
}

// SetPool implements PoolAware.
func (c *PowerSGD) SetPool(p *tensor.Pool) { c.pool = p }

// SetIterations sets the power-iteration count per Compress (≥1).
func (c *PowerSGD) SetIterations(n int) {
	if n < 1 {
		panic(fmt.Sprintf("compress: PowerSGD iterations %d < 1", n))
	}
	c.iterations = n
}

// SetWarmStart toggles reuse of the previous Q factor (the ablation knob
// for the warm-start design choice).
func (c *PowerSGD) SetWarmStart(on bool) { c.warmStart = on }

// Rank returns the configured approximation rank.
func (c *PowerSGD) Rank() int { return c.rank }

// WarmShapeCount returns the number of shapes with cached state (for the
// eviction tests and Fig. 12-style memory accounting).
func (c *PowerSGD) WarmShapeCount() int { return c.states.size() }

// EachWarmQ visits every input shape's warm-start Q factor (map order;
// checkpoint serialization sorts by shape). The visited matrices are
// live state — callers must not mutate them.
func (c *PowerSGD) EachWarmQ(f func(rows, cols int, q *tensor.Matrix)) {
	c.states.eachKey(func(key [2]int, st *psState) {
		if st.warmQ != nil {
			f(key[0], key[1], st.warmQ)
		}
	})
}

// ResetWarm drops every shape's warm-start factor (recycled through the
// pool) and rewinds the cold-start RNG to its construction seed, leaving
// the instance exactly as freshly built: the next Compress of each shape
// cold-starts from the same random sketch a new compressor would draw.
// Checkpoint restore clears warm state this way before installing the
// saved factors, so nothing from a pre-restore run — not even the RNG
// position — survives.
func (c *PowerSGD) ResetWarm() {
	pool := poolOrShared(c.pool)
	c.states.each(func(st *psState) {
		pool.Put(st.warmQ)
		st.warmQ = nil
	})
	c.rng = rand.New(rand.NewSource(c.seed))
}

// SetWarmQ installs a copy of q as the warm-start factor for a
// rows×cols input, replacing any existing one. Checkpoint restore uses
// this so a resumed run's power iterations continue from the saved run's
// factorization instead of a cold random sketch.
func (c *PowerSGD) SetWarmQ(rows, cols int, q *tensor.Matrix) {
	st := c.state(rows, cols, c.effectiveRank(rows, cols))
	if st.warmQ == nil || st.warmQ.Rows != q.Rows || st.warmQ.Cols != q.Cols {
		st.warmQ = poolOrShared(c.pool).GetUninit(q.Rows, q.Cols)
	}
	st.warmQ.CopyFrom(q)
}

// Name implements Compressor.
func (c *PowerSGD) Name() string { return fmt.Sprintf("powersgd(r=%d)", c.rank) }

// Ratio implements Compressor. Degenerate shapes (empty, or so skinny
// the factor encoding is no smaller than dense) report 1 rather than a
// divide-by-zero Inf/NaN or a ratio below break-even.
func (c *PowerSGD) Ratio(rows, cols int) float64 {
	r := c.effectiveRank(rows, cols)
	denom := r * (rows + cols)
	if denom == 0 {
		return 1
	}
	ratio := float64(rows*cols) / float64(denom)
	if ratio < 1 {
		return 1
	}
	return ratio
}

func (c *PowerSGD) effectiveRank(rows, cols int) int {
	r := c.rank
	if r > rows {
		r = rows
	}
	if r > cols {
		r = cols
	}
	if r < 1 {
		r = 1
	}
	return r
}

// LowRankPayload carries the P and Q factors of a PowerSGD compression.
type LowRankPayload struct {
	P, Q       *tensor.Matrix // P: rows×r, Q: cols×r
	rows, cols int
}

// WireBytes implements Payload: both factors travel at ElemBytes width.
func (p *LowRankPayload) WireBytes() int64 {
	return p.P.SizeBytes(ElemBytes) + p.Q.SizeBytes(ElemBytes)
}

// Shape implements Payload.
func (p *LowRankPayload) Shape() (int, int) { return p.rows, p.cols }

// state returns (lazily creating) the workspace for an rows×cols input.
func (c *PowerSGD) state(rows, cols, r int) *psState {
	key := [2]int{rows, cols}
	if st, ok := c.states.get(key); ok {
		return st
	}
	// All four workspaces are fully overwritten before use (the matmul
	// kernels zero dst themselves), so none needs the zeroing Get.
	pool := poolOrShared(c.pool)
	st := &psState{
		p:    pool.GetUninit(rows, r),
		qOut: pool.GetUninit(cols, r),
	}
	st.payload = &LowRankPayload{P: st.p, Q: st.qOut, rows: rows, cols: cols}
	c.states.put(key, st, c.evict)
	return st
}

// evict recycles an evicted shape's private buffers. The payload factors
// may still back an outstanding Payload, so they are left to the GC.
func (c *PowerSGD) evict(st *psState) {
	pool := poolOrShared(c.pool)
	pool.Put(st.warmQ)
	pool.Put(st.initQ)
}

// Compress implements Compressor with one power iteration and
// Gram–Schmidt orthogonalization — the phase §9.6 identifies as ~80% of
// the compression cost. Steady state performs zero allocations.
func (c *PowerSGD) Compress(m *tensor.Matrix) Payload {
	r := c.effectiveRank(m.Rows, m.Cols)
	st := c.state(m.Rows, m.Cols, r)

	var q *tensor.Matrix
	if c.warmStart && st.warmQ != nil && st.warmQ.Cols == r {
		q = st.warmQ
	} else {
		if st.initQ == nil {
			st.initQ = poolOrShared(c.pool).GetUninit(m.Cols, r)
		}
		tensor.RandNInto(c.rng, st.initQ, 1)
		tensor.GramSchmidt(st.initQ)
		q = st.initQ
	}

	// Power iterations: P = orth(M·Q); Q = Mᵀ·P. One pass with warm start
	// is the PowerSGD setting; more passes converge toward truncated SVD.
	p, qNew := st.p, st.qOut
	for it := 0; it < c.iterations; it++ {
		tensor.MatMulInto(p, m, q)
		tensor.GramSchmidt(p)
		tensor.MatMulATInto(qNew, m, p)
		q = qNew
	}

	if c.warmStart {
		if st.warmQ == nil {
			st.warmQ = poolOrShared(c.pool).GetUninit(m.Cols, r)
		}
		st.warmQ.CopyFrom(qNew)
	}
	return st.payload
}

// Decompress implements Compressor: reconstruction is P·Qᵀ.
func (c *PowerSGD) Decompress(pl Payload) *tensor.Matrix {
	r, cl := pl.Shape()
	out := tensor.New(r, cl)
	c.DecompressInto(out, pl)
	return out
}

// DecompressInto implements Compressor.
func (c *PowerSGD) DecompressInto(dst *tensor.Matrix, pl Payload) {
	p, ok := pl.(*LowRankPayload)
	if !ok {
		panic(fmt.Sprintf("compress: PowerSGD.Decompress got %T", pl))
	}
	mustShape(dst, pl, "PowerSGD")
	tensor.MatMulBTInto(dst, p.P, p.Q)
}

var (
	_ Compressor = (*PowerSGD)(nil)
	_ PoolAware  = (*PowerSGD)(nil)
)
