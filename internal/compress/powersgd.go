package compress

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// PowerSGD implements the single-power-iteration low-rank compressor of
// Vogels et al. (NeurIPS 2019), the algorithm Optimus-CC adopts for both
// inter-stage compressed backpropagation and data-parallel gradient
// compression (§8).
//
// A gradient M (n×m) is approximated as P·Qᵀ with rank r:
//
//	P = orthonormalize(M · Q_prev)   (one power iteration)
//	Q = Mᵀ · P
//
// The wire payload is P (n×r) and Q (m×r), so the compression ratio is
// n·m / (r·(n+m)). Q is warm-started from the previous call on the same
// PowerSGD instance ("reusing the factorized matrix from the previous
// gradient compression stage", §2.3), which is what makes a single power
// iteration sufficient in practice.
//
// PowerSGD instances carry per-shape warm-start state and are not safe for
// concurrent use; give each communication channel its own instance, as the
// paper does with private PowerSVD variables per stage boundary.
type PowerSGD struct {
	rank      int
	rng       *rand.Rand
	warmStart bool
	// iterations is the number of power iterations per Compress call.
	// PowerSGD's contribution is that warm starting makes 1 sufficient;
	// higher values approach classical truncated SVD at higher cost
	// (§2.3: "iterating power-iteration, which is required for classical
	// SVD, only once").
	iterations int
	// prevQ caches the last Q per matrix shape for warm starting.
	prevQ map[[2]int]*tensor.Matrix
}

// NewPowerSGD returns a rank-r compressor seeded deterministically. Warm
// starting is enabled, matching the paper's configuration.
func NewPowerSGD(rank int, seed int64) *PowerSGD {
	if rank < 1 {
		panic(fmt.Sprintf("compress: PowerSGD rank %d < 1", rank))
	}
	return &PowerSGD{
		rank:       rank,
		rng:        rand.New(rand.NewSource(seed)),
		warmStart:  true,
		iterations: 1,
		prevQ:      make(map[[2]int]*tensor.Matrix),
	}
}

// SetIterations sets the power-iteration count per Compress (≥1).
func (c *PowerSGD) SetIterations(n int) {
	if n < 1 {
		panic(fmt.Sprintf("compress: PowerSGD iterations %d < 1", n))
	}
	c.iterations = n
}

// SetWarmStart toggles reuse of the previous Q factor (the ablation knob
// for the warm-start design choice).
func (c *PowerSGD) SetWarmStart(on bool) { c.warmStart = on }

// Rank returns the configured approximation rank.
func (c *PowerSGD) Rank() int { return c.rank }

// Name implements Compressor.
func (c *PowerSGD) Name() string { return fmt.Sprintf("powersgd(r=%d)", c.rank) }

// Ratio implements Compressor.
func (c *PowerSGD) Ratio(rows, cols int) float64 {
	r := c.effectiveRank(rows, cols)
	return float64(rows*cols) / float64(r*(rows+cols))
}

func (c *PowerSGD) effectiveRank(rows, cols int) int {
	r := c.rank
	if r > rows {
		r = rows
	}
	if r > cols {
		r = cols
	}
	if r < 1 {
		r = 1
	}
	return r
}

// LowRankPayload carries the P and Q factors of a PowerSGD compression.
type LowRankPayload struct {
	P, Q       *tensor.Matrix // P: rows×r, Q: cols×r
	rows, cols int
}

// WireBytes implements Payload: both factors travel at ElemBytes width.
func (p *LowRankPayload) WireBytes() int64 {
	return p.P.SizeBytes(ElemBytes) + p.Q.SizeBytes(ElemBytes)
}

// Shape implements Payload.
func (p *LowRankPayload) Shape() (int, int) { return p.rows, p.cols }

// Compress implements Compressor with one power iteration and
// Gram–Schmidt orthogonalization — the phase §9.6 identifies as ~80% of
// the compression cost.
func (c *PowerSGD) Compress(m *tensor.Matrix) Payload {
	r := c.effectiveRank(m.Rows, m.Cols)
	key := [2]int{m.Rows, m.Cols}

	q := c.prevQ[key]
	if q == nil || !c.warmStart || q.Cols != r {
		q = tensor.RandN(c.rng, m.Cols, r, 1)
		tensor.GramSchmidt(q)
	}

	// Power iterations: P = orth(M·Q); Q = Mᵀ·P. One pass with warm start
	// is the PowerSGD setting; more passes converge toward truncated SVD.
	p := tensor.New(m.Rows, r)
	qNew := tensor.New(m.Cols, r)
	for it := 0; it < c.iterations; it++ {
		tensor.MatMulInto(p, m, q)
		tensor.GramSchmidt(p)
		tensor.MatMulATInto(qNew, m, p)
		q = qNew
	}

	if c.warmStart {
		c.prevQ[key] = qNew.Clone()
	}
	return &LowRankPayload{P: p, Q: qNew, rows: m.Rows, cols: m.Cols}
}

// Decompress implements Compressor: reconstruction is P·Qᵀ.
func (c *PowerSGD) Decompress(pl Payload) *tensor.Matrix {
	p, ok := pl.(*LowRankPayload)
	if !ok {
		panic(fmt.Sprintf("compress: PowerSGD.Decompress got %T", pl))
	}
	out := tensor.New(p.rows, p.cols)
	tensor.MatMulBTInto(out, p.P, p.Q)
	return out
}

var _ Compressor = (*PowerSGD)(nil)
