package compress

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

func testMatrix(rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float64(i%17)/17 - 0.5
	}
	return m
}

func TestRegistryBuildsEveryFamily(t *testing.T) {
	cases := []struct {
		spec Spec
		name string // Compressor.Name prefix
	}{
		{Spec{Name: "powersgd", Rank: 4, Seed: 1}, "powersgd"},
		{Spec{Name: "topk", Fraction: 0.1}, "topk"},
		{Spec{Name: "randomk", Fraction: 0.1, Seed: 1}, "randomk"},
		{Spec{Name: "terngrad", Seed: 1}, "terngrad"},
		{Spec{Name: "signsgd"}, "signsgd"},
		{Spec{Name: "uniform8"}, "uniform8"},
		{Spec{Name: "identity"}, "identity"},
	}
	for _, c := range cases {
		cmp, err := Build(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		if !strings.HasPrefix(cmp.Name(), c.name) {
			t.Fatalf("%s built %q", c.spec.Name, cmp.Name())
		}
	}
}

func TestRegistryRejects(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "huffman"},                // unknown family
		{Name: ""},                       // empty
		{Name: "lowrank", Rank: 4},       // historical alias: normalized by plan, not registered here
		{Name: "powersgd", Rank: 0},      // rank below 1
		{Name: "powersgd", Rank: -2},     // negative rank
		{Name: "topk", Fraction: 0},      // unresolved sparse fraction
		{Name: "randomk", Fraction: 1.5}, // fraction above 1
		{Name: "topk", Fraction: -0.25},  // negative fraction
	} {
		if _, err := Build(spec); err == nil {
			t.Fatalf("Build(%+v) did not fail", spec)
		}
	}
}

func TestRegistryDeterministicSeeds(t *testing.T) {
	a := MustBuild(Spec{Name: "powersgd", Rank: 3, Seed: 42})
	b := MustBuild(Spec{Name: "powersgd", Rank: 3, Seed: 42})
	m := testMatrix(16, 24)
	if a.Compress(m).WireBytes() != b.Compress(m).WireBytes() {
		t.Fatal("same spec built different compressors")
	}
	ra, rb := a.Decompress(a.Compress(m)), b.Decompress(b.Compress(m))
	if !ra.Equal(rb, 0) {
		t.Fatal("same spec, same input, different reconstruction")
	}
}

// TestRegistryNamesKnownToCore is the drift guard between the registry
// and core's seeded name list: every registered family must be valid in
// a core.Config (Register feeds core.RegisterCompressorName, so this
// holds by construction — the test pins the construction).
func TestRegistryNamesKnownToCore(t *testing.T) {
	for _, n := range RegisteredNames() {
		if !core.KnownCompressor(n) {
			t.Fatalf("registered family %q unknown to core.Config validation", n)
		}
	}
}

func TestRegisteredNames(t *testing.T) {
	names := RegisteredNames()
	if len(names) < 7 {
		t.Fatalf("only %d registered families: %v", len(names), names)
	}
	for _, want := range []string{"powersgd", "topk", "randomk", "terngrad", "signsgd", "uniform8", "identity"} {
		if !Registered(want) {
			t.Fatalf("%q not registered", want)
		}
	}
}
