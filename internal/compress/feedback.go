package compress

import (
	"repro/internal/tensor"
)

// ErrorFeedback wraps a Compressor with residual error feedback: the
// compression error of each call is stored and added to the next input
// before compressing (AdaComp/PowerSGD-style, §2.3). This is the mechanism
// data-parallel gradient compression uses; the paper's *lazy error
// propagation* (§5.1) is the same residual machinery applied across
// micro-batches of inter-stage activation gradients.
//
// An ErrorFeedback instance keeps one residual per matrix shape and is not
// safe for concurrent use; give each communication channel its own.
type ErrorFeedback struct {
	inner    Compressor
	residual map[[2]int]*tensor.Matrix
	enabled  bool
}

// NewErrorFeedback wraps inner with residual accumulation (enabled).
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{inner: inner, residual: make(map[[2]int]*tensor.Matrix), enabled: true}
}

// SetEnabled toggles feedback; disabled, CompressWithFeedback degenerates
// to plain lossy compression (the "non-LEP" ablation of Table 4).
func (ef *ErrorFeedback) SetEnabled(on bool) { ef.enabled = on }

// Enabled reports whether residual accumulation is active.
func (ef *ErrorFeedback) Enabled() bool { return ef.enabled }

// Inner returns the wrapped compressor.
func (ef *ErrorFeedback) Inner() Compressor { return ef.inner }

// Name identifies the wrapped algorithm.
func (ef *ErrorFeedback) Name() string { return ef.inner.Name() + "+ef" }

// Residual returns the stored residual for a shape (nil if none), exposed
// so the trainer can report lazy-error statistics (Fig. 11) and memory
// overhead (Fig. 12).
func (ef *ErrorFeedback) Residual(rows, cols int) *tensor.Matrix {
	return ef.residual[[2]int{rows, cols}]
}

// ResidualBytes returns the total memory held by residuals at float64
// precision, for the Fig. 12 memory accounting.
func (ef *ErrorFeedback) ResidualBytes() int64 {
	var total int64
	for _, r := range ef.residual {
		total += int64(r.NumElements()) * 8
	}
	return total
}

// Reset drops all stored residuals (used at iteration boundaries when a
// policy wants errors to die with the mini-batch).
func (ef *ErrorFeedback) Reset() {
	for k := range ef.residual {
		delete(ef.residual, k)
	}
}

// CompressWithFeedback compresses m plus the stored residual, updates the
// residual to the new compression error, and returns both the payload and
// the dense reconstruction (what the receiver will see). The input m is
// not modified.
func (ef *ErrorFeedback) CompressWithFeedback(m *tensor.Matrix) (Payload, *tensor.Matrix) {
	input := m
	key := [2]int{m.Rows, m.Cols}
	if ef.enabled {
		if r := ef.residual[key]; r != nil {
			input = m.Clone().Add(r)
		}
	}
	pl := ef.inner.Compress(input)
	recon := ef.inner.Decompress(pl)
	if ef.enabled {
		// residual = input − recon.
		res := input.Clone()
		res.Sub(recon)
		ef.residual[key] = res
	}
	return pl, recon
}

var _ interface{ Name() string } = (*ErrorFeedback)(nil)
