package compress

import (
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ErrorFeedback wraps a Compressor with residual error feedback: the
// compression error of each call is stored and added to the next input
// before compressing (AdaComp/PowerSGD-style, §2.3). This is the mechanism
// data-parallel gradient compression uses; the paper's *lazy error
// propagation* (§5.1) is the same residual machinery applied across
// micro-batches of inter-stage activation gradients.
//
// All per-shape scratch (the feedback-adjusted input, the reconstruction,
// and the residual itself) is drawn from a tensor.Pool and reused, so a
// steady-state CompressWithFeedback performs zero allocations. The
// returned reconstruction aliases that scratch: it is valid until the next
// CompressWithFeedback call of the same shape.
//
// An ErrorFeedback instance keeps one residual per matrix shape and is not
// safe for concurrent use; give each communication channel its own.
type ErrorFeedback struct {
	inner   Compressor
	pool    *tensor.Pool
	states  shapeStates[*efState]
	enabled bool

	// rec, when non-nil, records compress/decompress spans on recTrack —
	// the codec slices of the executed-run trace. The span's Bytes field
	// carries the payload wire size, informational only (not wire-bearing:
	// transport bytes are accounted where the payload is actually sent).
	rec      *obs.Recorder
	recTrack int
}

// SetRecorder attaches an executed-run span recorder; codec spans land
// on the given track. Nil disables (the default).
func (ef *ErrorFeedback) SetRecorder(rec *obs.Recorder, track int) {
	ef.rec = rec
	ef.recTrack = track
}

// efState is the per-shape scratch of an ErrorFeedback instance.
type efState struct {
	residual *tensor.Matrix // nil until feedback stores one
	input    *tensor.Matrix // m + residual scratch
	recon    *tensor.Matrix // reconstruction scratch
}

// NewErrorFeedback wraps inner with residual accumulation (enabled).
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{inner: inner, states: newShapeStates[*efState](maxShapeStates, 0), enabled: true}
}

// SetPool implements PoolAware (and forwards to the wrapped compressor).
func (ef *ErrorFeedback) SetPool(p *tensor.Pool) {
	ef.pool = p
	if pa, ok := ef.inner.(PoolAware); ok {
		pa.SetPool(p)
	}
}

// SetEnabled toggles feedback; disabled, CompressWithFeedback degenerates
// to plain lossy compression (the "non-LEP" ablation of Table 4).
func (ef *ErrorFeedback) SetEnabled(on bool) { ef.enabled = on }

// Enabled reports whether residual accumulation is active.
func (ef *ErrorFeedback) Enabled() bool { return ef.enabled }

// Inner returns the wrapped compressor.
func (ef *ErrorFeedback) Inner() Compressor { return ef.inner }

// Name identifies the wrapped algorithm.
func (ef *ErrorFeedback) Name() string { return ef.inner.Name() + "+ef" }

// Residual returns the stored residual for a shape (nil if none), exposed
// so the trainer can report lazy-error statistics (Fig. 11) and memory
// overhead (Fig. 12).
func (ef *ErrorFeedback) Residual(rows, cols int) *tensor.Matrix {
	st, ok := ef.states.peek([2]int{rows, cols})
	if !ok {
		return nil
	}
	return st.residual
}

// ResidualBytes returns the total memory held by residuals at float64
// precision, for the Fig. 12 memory accounting.
func (ef *ErrorFeedback) ResidualBytes() int64 {
	var total int64
	ef.states.each(func(st *efState) {
		if st.residual != nil {
			total += int64(st.residual.NumElements()) * 8
		}
	})
	return total
}

// EachResidual visits every stored residual (map order; checkpoint
// serialization sorts by shape). The visited matrices are live state —
// callers must not mutate them.
func (ef *ErrorFeedback) EachResidual(f func(res *tensor.Matrix)) {
	ef.states.each(func(st *efState) {
		if st.residual != nil {
			f(st.residual)
		}
	})
}

// SetResidual installs a copy of res as the stored residual for res's
// shape, replacing any existing one. Checkpoint restore uses this to
// resurrect lazy-error-propagation state so a resumed compressed run
// continues exactly where the saved one stopped.
func (ef *ErrorFeedback) SetResidual(res *tensor.Matrix) {
	st := ef.state(res.Rows, res.Cols)
	if st.residual == nil {
		st.residual = poolOrShared(ef.pool).GetUninit(res.Rows, res.Cols)
	}
	st.residual.CopyFrom(res)
}

// Reset drops all stored residuals, recycling them through the pool (used
// at iteration boundaries when a policy wants errors to die with the
// mini-batch).
func (ef *ErrorFeedback) Reset() {
	pool := poolOrShared(ef.pool)
	ef.states.each(func(st *efState) {
		pool.Put(st.residual)
		st.residual = nil
	})
}

// state returns (lazily creating) the scratch for a rows×cols input. The
// state map is bounded (maxShapeStates): under shape churn the LRU shape
// loses its scratch and residual — a cold restart of feedback for that
// shape, mirroring PowerSGD's warm-start eviction.
func (ef *ErrorFeedback) state(rows, cols int) *efState {
	key := [2]int{rows, cols}
	if st, ok := ef.states.get(key); ok {
		return st
	}
	st := &efState{recon: poolOrShared(ef.pool).GetUninit(rows, cols)}
	ef.states.put(key, st, ef.evict)
	return st
}

// evict recycles an evicted shape's private scratch. The recon buffer may
// still be held by the caller of that shape's last CompressWithFeedback,
// so it is left to the GC.
func (ef *ErrorFeedback) evict(st *efState) {
	pool := poolOrShared(ef.pool)
	pool.Put(st.residual)
	pool.Put(st.input)
}

// sparseMarker is implemented by compressors whose Compress always
// returns a *SparsePayload (TopK, RandomK).
type sparseMarker interface{ sparseNative() }

// addFusedCompressor is implemented by compressors that can fuse the
// error-feedback add into their selection sweep (TopK). The contract is
// bit-identity: CompressAddFused(r, m) must leave r and the returned
// payload exactly as r.Add(m); Compress(r) would.
type addFusedCompressor interface {
	CompressAddFused(residual, m *tensor.Matrix) Payload
}

// SparseNative reports whether the wrapped compressor emits sparse
// payloads natively, i.e. whether CompressWithFeedbackSparse applies.
func (ef *ErrorFeedback) SparseNative() bool {
	_, ok := ef.inner.(sparseMarker)
	return ok
}

// CompressWithFeedbackSparse is the sparse-native twin of
// CompressWithFeedback for sparse-marker compressors (ok = false
// otherwise, with no state touched). It returns the sparse payload and
// never materializes a dense reconstruction; beyond the selection pass
// inside the inner compressor, it touches the dense shape only once —
// and for compressors implementing addFusedCompressor (TopK) even the
// feedback add rides inside that selection sweep.
//
// The residual update is done in place: residual += m makes the
// residual buffer hold the feedback-adjusted input (IEEE addition
// commutes, so this equals the oracle's m + residual); compressing that
// buffer yields the identical payload; and since the reconstruction is
// zero off the selected coordinates, residual = input − recon reduces
// to subtracting each selected value at its own coordinate — the
// SpAxpyInto(−1) fix-up — while untouched coordinates already hold
// input − 0 exactly. Residual state therefore evolves bit-identically
// to the densified path, and the two entry points may be mixed freely
// on one instance.
func (ef *ErrorFeedback) CompressWithFeedbackSparse(m *tensor.Matrix) (pl *SparsePayload, ok bool) {
	if _, native := ef.inner.(sparseMarker); !native {
		return nil, false
	}
	start := ef.rec.Now()
	if !ef.enabled {
		pl = ef.inner.Compress(m).(*SparsePayload)
		ef.rec.Record(ef.recTrack, obs.PhaseCompress, obs.LinkNone, start, pl.WireBytes(), -1, -1, -1)
		return pl, true
	}
	st := ef.state(m.Rows, m.Cols)
	switch {
	case st.residual == nil:
		st.residual = poolOrShared(ef.pool).GetUninit(m.Rows, m.Cols)
		st.residual.CopyFrom(m)
		pl = ef.inner.Compress(st.residual).(*SparsePayload)
	default:
		if f, ok := ef.inner.(addFusedCompressor); ok {
			pl = f.CompressAddFused(st.residual, m).(*SparsePayload)
		} else {
			st.residual.Add(m)
			pl = ef.inner.Compress(st.residual).(*SparsePayload)
		}
	}
	tensor.SpAxpyInto(st.residual, -1, &pl.Sparse)
	ef.rec.Record(ef.recTrack, obs.PhaseCompress, obs.LinkNone, start, pl.WireBytes(), -1, -1, -1)
	return pl, true
}

// CompressWithFeedback compresses m plus the stored residual, updates the
// residual to the new compression error, and returns both the payload and
// the dense reconstruction (what the receiver will see). The input m is
// not modified. The reconstruction is scratch owned by this instance —
// consume it before the next same-shape call.
func (ef *ErrorFeedback) CompressWithFeedback(m *tensor.Matrix) (Payload, *tensor.Matrix) {
	st := ef.state(m.Rows, m.Cols)
	input := m
	start := ef.rec.Now()
	if ef.enabled && st.residual != nil {
		if st.input == nil {
			st.input = poolOrShared(ef.pool).GetUninit(m.Rows, m.Cols)
		}
		// input = m + residual (the feedback step).
		tensor.AddScaledInto(st.input, m, 1, st.residual)
		input = st.input
	}
	pl := ef.inner.Compress(input)
	ef.rec.Record(ef.recTrack, obs.PhaseCompress, obs.LinkNone, start, pl.WireBytes(), -1, -1, -1)
	start = ef.rec.Now()
	ef.inner.DecompressInto(st.recon, pl)
	ef.rec.Record(ef.recTrack, obs.PhaseDecompress, obs.LinkNone, start, pl.WireBytes(), -1, -1, -1)
	if ef.enabled {
		if st.residual == nil {
			st.residual = poolOrShared(ef.pool).GetUninit(m.Rows, m.Cols)
		}
		// residual = input − recon.
		tensor.AddScaledInto(st.residual, input, -1, st.recon)
	}
	return pl, st.recon
}

var _ interface{ Name() string } = (*ErrorFeedback)(nil)
