// Package core defines the Optimus-CC framework configuration: which of
// the paper's three techniques are active and with what knobs. Both the
// real trainer (internal/train) and the timing simulator (internal/sim)
// consume a core.Config, so a single configuration describes one column of
// Table 2 end to end.
//
// The three techniques (§4):
//
//   - Compressed backpropagation (CB, §5): low-rank compression of the
//     inter-stage backward traffic, protected by lazy error propagation
//     (§5.1) and epilogue-only compression (§5.2).
//   - Fused embedding synchronization (FE, §6): the two all-reduces of the
//     shared embedding table fuse into one, changing the cost from Eq. 15
//     to Eq. 16 with no mathematical effect on training.
//   - Selective stage compression (SC, §7): data-parallel gradient
//     compression restricted to the earliest (critical-path) fraction of
//     pipeline stages.
package core

import (
	"fmt"
	"sync"
)

// CBAlgorithm selects the inter-stage compressor family.
type CBAlgorithm string

// Inter-stage compressor families. The paper adopts low-rank (PowerSGD)
// and shows top-k is ill-suited to point-to-point traffic (Fig. 3,
// "Opt-CC (TopK)").
const (
	CBLowRank CBAlgorithm = "lowrank"
	CBTopK    CBAlgorithm = "topk"
)

// knownCompressors lists the compressor family names a configuration may
// reference in CBAlg or DPAlg: the built-in families (seeded here so a
// Config validates even in core-only contexts), plus every name added
// through RegisterCompressorName — compress.Register calls it, so a
// custom-registered family is immediately selectable. plan.Compile
// additionally verifies registry membership before building anything.
var (
	knownMu          sync.RWMutex
	knownCompressors = map[string]bool{
		"lowrank":  true,
		"powersgd": true,
		"topk":     true,
		"randomk":  true,
		"terngrad": true,
		"signsgd":  true,
		"uniform8": true,
		"identity": true,
	}
)

// RegisterCompressorName marks name as a valid CBAlg/DPAlg reference.
// compress.Register calls this for every registered factory; core keeps
// the list itself only because it cannot import the registry.
func RegisterCompressorName(name string) {
	if name == "" {
		return
	}
	knownMu.Lock()
	knownCompressors[name] = true
	knownMu.Unlock()
}

// KnownCompressor reports whether name is a recognized compressor family
// ("" counts: it selects the family's default).
func KnownCompressor(name string) bool {
	if name == "" {
		return true
	}
	knownMu.RLock()
	defer knownMu.RUnlock()
	return knownCompressors[name]
}

// KnownCompressors returns the recognized family names (unsorted copy).
func KnownCompressors() []string {
	knownMu.RLock()
	defer knownMu.RUnlock()
	out := make([]string, 0, len(knownCompressors))
	for n := range knownCompressors {
		out = append(out, n)
	}
	return out
}

// Config enables and parameterizes the Optimus-CC techniques.
type Config struct {
	// CompressBackprop turns on compressed backpropagation (§5).
	CompressBackprop bool
	// CBRank is the low-rank approximation rank for inter-stage traffic
	// (paper default 16; ~10× compression on transformer shapes).
	CBRank int
	// CBAlg selects the inter-stage compressor (default CBLowRank).
	CBAlg CBAlgorithm
	// LazyErrorPropagation preserves each micro-batch's compression error
	// and folds it into the next micro-batch's traffic (§5.1). Without it,
	// CB damages model quality severely (Table 4).
	LazyErrorPropagation bool
	// EpilogueOnly restricts CB to the pipeline epilogue, where the
	// communication is not hidden by compute (§5.2). The paper found CB
	// without epilogue-only compression diverges.
	EpilogueOnly bool

	// FuseEmbedding turns on fused embedding synchronization (§6).
	FuseEmbedding bool

	// SelectiveStageFraction is the fraction of pipeline stages (earliest
	// first) whose data-parallel gradients are compressed (§7). 0 disables
	// DP compression entirely; 1 compresses every stage. Paper uses 0.75.
	SelectiveStageFraction float64
	// DPRank is the low-rank rank for data-parallel gradient compression
	// (paper default 128).
	DPRank int
	// DPAlg selects the data-parallel gradient compressor family by
	// registry name ("" = "powersgd", the paper's choice). Shape-free
	// quantizers like "terngrad" are valid alternatives; plan.Compile
	// rejects families whose parameters cannot be derived from the
	// configuration.
	DPAlg string

	// Seed drives every random component (compressor sketches, data
	// order) for reproducibility.
	Seed int64
}

// Baseline returns the uncompressed Megatron-LM-equivalent configuration
// (Table 2, "Baseline").
func Baseline() Config { return Config{Seed: 1} }

// CB returns compressed backpropagation with both enabler techniques
// (Table 2, "CB").
func CB() Config {
	return Config{
		CompressBackprop:     true,
		CBRank:               16,
		CBAlg:                CBLowRank,
		LazyErrorPropagation: true,
		EpilogueOnly:         true,
		Seed:                 1,
	}
}

// CBFE returns CB plus fused embedding synchronization (Table 2,
// "CB+FE").
func CBFE() Config {
	c := CB()
	c.FuseEmbedding = true
	return c
}

// CBFESC returns the full Optimus-CC configuration (Table 2,
// "CB+FE+SC"): CB + FE + 75% selective stage compression at rank 128.
func CBFESC() Config {
	c := CBFE()
	c.SelectiveStageFraction = 0.75
	c.DPRank = 128
	return c
}

// NaiveDP returns the Fig. 3 "naive DP" straw man: data-parallel
// compression on every stage, nothing else.
func NaiveDP() Config {
	return Config{SelectiveStageFraction: 1.0, DPRank: 128, Seed: 1}
}

// NaiveCB returns the Fig. 3 "naive CB" straw man: inter-stage compression
// on all micro-batches with no lazy error propagation.
func NaiveCB() Config {
	return Config{CompressBackprop: true, CBRank: 16, CBAlg: CBLowRank, Seed: 1}
}

// Validate reports configuration errors. Both compressor references are
// validated hard: CompressBackprop with CBRank < 1 or an unrecognized
// CBAlg/DPAlg name is an error, never a silent fallback to a default
// family (plan.Compile additionally checks registry membership).
func (c Config) Validate() error {
	if c.CompressBackprop {
		if !KnownCompressor(string(c.CBAlg)) {
			return fmt.Errorf("core: unknown CB algorithm %q", c.CBAlg)
		}
		if needsCBRank(string(c.CBAlg)) && c.CBRank < 1 {
			return fmt.Errorf("core: CompressBackprop needs CBRank ≥ 1, got %d", c.CBRank)
		}
	}
	if c.SelectiveStageFraction < 0 || c.SelectiveStageFraction > 1 {
		return fmt.Errorf("core: SelectiveStageFraction %v outside [0,1]", c.SelectiveStageFraction)
	}
	if c.SelectiveStageFraction > 0 {
		if !KnownCompressor(c.DPAlg) {
			return fmt.Errorf("core: unknown DP algorithm %q", c.DPAlg)
		}
		if needsRank(c.DPAlg) && c.DPRank < 1 {
			return fmt.Errorf("core: DP compression needs DPRank ≥ 1, got %d", c.DPRank)
		}
	}
	return nil
}

// needsRank reports whether a compressor family reads the rank knob
// ("" defaults to the rank-based powersgd).
func needsRank(alg string) bool {
	switch alg {
	case "", "lowrank", "powersgd":
		return true
	}
	return false
}

// needsCBRank reports whether a CB family reads CBRank: the rank-based
// families directly, and the sparse ones through the byte-matched
// element budget (rank·(n+m) kept elements). Quantizers ignore it.
func needsCBRank(alg string) bool {
	return needsRank(alg) || alg == "topk" || alg == "randomk"
}

// DPCompress reports whether data-parallel compression is active at all.
func (c Config) DPCompress() bool { return c.SelectiveStageFraction > 0 }

// CompressedStages returns which of p pipeline stages have their DP
// traffic compressed under selective stage compression: the earliest
// ⌈fraction·p⌉ stages, because those are the ones whose DP communication
// lands on the critical path (§7, Fig. 8).
func (c Config) CompressedStages(p int) []bool {
	out := make([]bool, p)
	if !c.DPCompress() {
		return out
	}
	n := int(c.SelectiveStageFraction*float64(p) + 0.5)
	if n > p {
		n = p
	}
	for s := 0; s < n; s++ {
		out[s] = true
	}
	return out
}

// Name renders the configuration the way Table 2 labels its columns.
func (c Config) Name() string {
	if !c.CompressBackprop && !c.FuseEmbedding && !c.DPCompress() {
		return "Baseline"
	}
	name := ""
	if c.CompressBackprop {
		switch {
		case c.LazyErrorPropagation && c.EpilogueOnly:
			name = "CB"
		case !c.LazyErrorPropagation && c.EpilogueOnly:
			name = "CB(non-LEP)"
		case c.LazyErrorPropagation && !c.EpilogueOnly:
			name = "CB(all)"
		default:
			name = "CB(naive)"
		}
		if alg := string(c.CBAlg); alg != "" && alg != "lowrank" && alg != "powersgd" {
			name += "[" + alg + "]"
		}
	}
	if c.FuseEmbedding {
		if name != "" {
			name += "+"
		}
		name += "FE"
	}
	if c.DPCompress() {
		if name != "" {
			name += "+"
		}
		if c.SelectiveStageFraction < 1 {
			name += fmt.Sprintf("SC(%.0f%%)", c.SelectiveStageFraction*100)
		} else {
			name += "DP"
		}
		if c.DPAlg != "" && c.DPAlg != "powersgd" && c.DPAlg != "lowrank" {
			name += "[" + c.DPAlg + "]"
		}
	}
	return name
}
