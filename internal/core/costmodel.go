package core

// Analytic cost models from the paper.

// AllReduceVolumeFactor returns the per-rank ring all-reduce volume as a
// multiple of the payload V: 2(R−1)/R (Thakur et al.), the factor every
// Eq. 15/16 term is built from. The collective runtime's transport
// accounting is pinned to this exact value by tests.
func AllReduceVolumeFactor(ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	r := float64(ranks)
	return 2 * (r - 1) / r
}

// EmbSyncVolumeFactor returns the §6 Eq. 15 baseline embedding-sync cost
// as a multiple of the embedding volume V: (3D−2)/D, the sum of a D-way
// ring all-reduce (2(D−1)/D) and a 2-way all-reduce (1).
func EmbSyncVolumeFactor(dataParallel int) float64 {
	d := float64(dataParallel)
	return (3*d - 2) / d
}

// EmbSyncFusedVolumeFactor returns the Eq. 16 fused cost factor:
// (2D−1)/D, a single 2D-way ring all-reduce.
func EmbSyncFusedVolumeFactor(dataParallel int) float64 {
	d := float64(dataParallel)
	return (2*d - 1) / d
}

// EmbSyncImprovement returns the speedup of fused over baseline embedding
// synchronization, (D−1)/(2D−1): 42.9% at D=4, approaching 50% as D grows
// (§6).
func EmbSyncImprovement(dataParallel int) float64 {
	return EmbSyncVolumeFactor(dataParallel)/EmbSyncFusedVolumeFactor(dataParallel) - 1
}

// CompressionCostModel predicts PowerSGD compression/decompression time on
// an accelerator from first principles, reproducing the Fig. 15 trends:
//
//   - Compression of an n×m matrix at rank r costs two n·m·r matmuls plus
//     Gram–Schmidt orthogonalization (≈2·n·r² FLOPs but memory-bound and
//     poorly parallel — the paper measures it at ~80% of compression time,
//     which the OrthoPenalty factor models).
//   - Decompression is a single n·m·r matmul — why Fig. 15 shows it ~2
//     orders of magnitude faster.
//   - A fixed per-kernel setup cost dominates small inputs, which is why
//     throughput *rises* with model size.
//   - Time grows with rank while payload bytes stay ~proportional, which
//     is why throughput *falls* with rank.
type CompressionCostModel struct {
	// GPUFLOPs is the effective FLOP/s applied to the matmul terms.
	GPUFLOPs float64
	// OrthoPenalty multiplies the Gram–Schmidt term to reflect its poor
	// GPU efficiency (paper: orthogonalization ≈80% of compression time
	// at rank 16 on GPT-8.3B shapes).
	OrthoPenalty float64
	// SetupSec is the fixed kernel-launch overhead per (de)compression.
	SetupSec float64
}

// DefaultCompressionCostModel returns constants fitted to the Fig. 15
// operating point for *inter-stage* compression on GPT-8.3B: the
// activation-gradient matrix is (micro-batch·seq)×hidden = 8192×3072, and
// at rank 16 the paper measures ≈787 Gb/s compression and ≈68 Tb/s
// decompression. With these constants the model gives ≈0.77 Tb/s and
// ≈14 Tb/s, with orthogonalization dominating compression time as §9.6
// reports, throughput falling with rank, and rank 512 degrading sharply
// (the Fig. 13-middle effect).
func DefaultCompressionCostModel() CompressionCostModel {
	return CompressionCostModel{GPUFLOPs: 93.6e12, OrthoPenalty: 10900, SetupSec: 20e-6}
}

// CompressTime returns the modeled time to compress an n×m matrix at rank r.
func (c CompressionCostModel) CompressTime(n, m, r int) float64 {
	fn, fm, fr := float64(n), float64(m), float64(r)
	matmul := 2*fn*fm*fr + 2*fn*fm*fr // M·Q and Mᵀ·P
	ortho := 2 * fn * fr * fr * c.OrthoPenalty
	return c.SetupSec + (matmul+ortho)/c.GPUFLOPs
}

// DecompressTime returns the modeled time to reconstruct P·Qᵀ.
func (c CompressionCostModel) DecompressTime(n, m, r int) float64 {
	return c.SetupSec + 2*float64(n)*float64(m)*float64(r)/c.GPUFLOPs
}

// SparseCompressTime returns the modeled time for a sparse-native
// TopK/RandomK compression of an n×m matrix keeping k elements: one
// dense selection pass over the n·m input (quickselect / index draw)
// plus a 2k gather of the kept (index, value) pairs, under the same
// fixed kernel setup. Unlike the low-rank codec there is no
// orthogonalization term, which is why sparse codecs price orders of
// magnitude cheaper at equal element budgets.
func (c CompressionCostModel) SparseCompressTime(n, m, k int) float64 {
	return c.SetupSec + (float64(n)*float64(m)+2*float64(k))/c.GPUFLOPs
}

// SparseDecompressTime returns the modeled time to scatter a k-element
// sparse payload back into a dense buffer: cost scales with nnz, not
// the dense shape — decompression of a 1% payload is ~100× cheaper
// than the dense pass the densified path pays.
func (c CompressionCostModel) SparseDecompressTime(k int) float64 {
	return c.SetupSec + 2*float64(k)/c.GPUFLOPs
}

// SparseReduceTime returns the modeled time to merge-union reduce
// sparse payloads totalling totalNNZ stored elements across ranks: a
// linear two-pointer merge touches each (index, value) pair once.
func (c CompressionCostModel) SparseReduceTime(totalNNZ int) float64 {
	return 2 * float64(totalNNZ) / c.GPUFLOPs
}

// CompressThroughputBps returns the modeled compression throughput in
// bits/second for the dense input size (n×m×elemBytes), the Fig. 15
// y-axis.
func (c CompressionCostModel) CompressThroughputBps(n, m, r, elemBytes int) float64 {
	bits := float64(int64(n)*int64(m)*int64(elemBytes)) * 8
	return bits / c.CompressTime(n, m, r)
}

// DecompressThroughputBps returns the modeled decompression throughput in
// bits/second.
func (c CompressionCostModel) DecompressThroughputBps(n, m, r, elemBytes int) float64 {
	bits := float64(int64(n)*int64(m)*int64(elemBytes)) * 8
	return bits / c.DecompressTime(n, m, r)
}

// LowRankWireBytes returns the wire size of a rank-r factorization of an
// n×m matrix at elemBytes width: r·(n+m) elements.
func LowRankWireBytes(n, m, r, elemBytes int) int64 {
	if r > n {
		r = n
	}
	if r > m {
		r = m
	}
	return int64(r) * int64(n+m) * int64(elemBytes)
}
