package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []Config{Baseline(), CB(), CBFE(), CBFESC(), NaiveDP(), NaiveCB()} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestPresetNames(t *testing.T) {
	cases := map[string]Config{
		"Baseline":      Baseline(),
		"CB":            CB(),
		"CB+FE":         CBFE(),
		"CB+FE+SC(75%)": CBFESC(),
		"DP":            NaiveDP(),
		"CB(naive)":     NaiveCB(),
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Fatalf("Name() = %q want %q", got, want)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := CB()
	bad.CBRank = 0
	if bad.Validate() == nil {
		t.Fatal("CBRank=0 accepted")
	}
	bad = CB()
	bad.CBAlg = "huffman"
	if bad.Validate() == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad = CBFESC()
	bad.SelectiveStageFraction = 1.5
	if bad.Validate() == nil {
		t.Fatal("fraction >1 accepted")
	}
	bad = CBFESC()
	bad.DPRank = 0
	if bad.Validate() == nil {
		t.Fatal("DPRank=0 with SC accepted")
	}
}

func TestCompressedStagesSelection(t *testing.T) {
	c := CBFESC() // 75%
	got := c.CompressedStages(4)
	want := []bool{true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("75%% of 4 stages: got %v", got)
		}
	}
	if n := count(Baseline().CompressedStages(4)); n != 0 {
		t.Fatalf("baseline compresses %d stages", n)
	}
	if n := count(NaiveDP().CompressedStages(4)); n != 4 {
		t.Fatalf("naive DP compresses %d stages", n)
	}
	// Earliest-first: stage 0 always compressed when any is (§7).
	half := CBFESC()
	half.SelectiveStageFraction = 0.5
	sel := half.CompressedStages(4)
	if !sel[0] || !sel[1] || sel[2] || sel[3] {
		t.Fatalf("50%% selection wrong: %v", sel)
	}
}

func count(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestEmbSyncFactorsMatchEq15Eq16(t *testing.T) {
	// D=4: baseline (3·4−2)/4 = 2.5, fused (2·4−1)/4 = 1.75.
	if got := EmbSyncVolumeFactor(4); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Eq15 factor %v", got)
	}
	if got := EmbSyncFusedVolumeFactor(4); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("Eq16 factor %v", got)
	}
	if got := EmbSyncImprovement(4); math.Abs(got-3.0/7.0) > 1e-12 {
		t.Fatalf("improvement %v want 3/7 (42.9%%)", got)
	}
}

func TestEmbSyncImprovementLimit(t *testing.T) {
	if got := EmbSyncImprovement(100000); math.Abs(got-0.5) > 1e-3 {
		t.Fatalf("asymptotic improvement %v want 0.5", got)
	}
	// Monotone in D.
	prev := 0.0
	for d := 2; d <= 64; d *= 2 {
		imp := EmbSyncImprovement(d)
		if imp <= prev {
			t.Fatalf("improvement not increasing at D=%d", d)
		}
		prev = imp
	}
}

func TestCompressionCostModelOperatingPoint(t *testing.T) {
	// Fig. 15: ≈787 Gb/s compression and ≈68 Tb/s decompression at CB rank
	// 16 on GPT-8.3B inter-stage shapes — the activation-gradient matrix
	// (micro·seq)×hidden = 8192×3072 in fp16.
	m := DefaultCompressionCostModel()
	comp := m.CompressThroughputBps(8192, 3072, 16, 2)
	if comp < 500e9 || comp > 1200e9 {
		t.Fatalf("compression throughput %v Gb/s outside Fig. 15 ballpark", comp/1e9)
	}
	dec := m.DecompressThroughputBps(8192, 3072, 16, 2)
	if dec < 5e12 {
		t.Fatalf("decompression throughput %v Tb/s too low", dec/1e12)
	}
	if dec < 10*comp {
		t.Fatal("decompression should be far faster than compression")
	}
}

func TestThroughputFallsWithRank(t *testing.T) {
	// Fig. 15's counter-intuitive trend: higher rank (less compression) →
	// lower compression throughput, because orthogonalization grows.
	m := DefaultCompressionCostModel()
	prev := math.Inf(1)
	for _, r := range []int{4, 16, 64, 128, 512} {
		tp := m.CompressThroughputBps(3072, 12288, r, 2)
		if tp >= prev {
			t.Fatalf("throughput did not fall at rank %d", r)
		}
		prev = tp
	}
}

func TestThroughputRisesWithModelSize(t *testing.T) {
	// Fig. 15: GPT-175B shapes compress faster than GPT-8.3B shapes
	// (setup amortizes).
	m := DefaultCompressionCostModel()
	small := m.CompressThroughputBps(3072, 12288, 16, 2)
	big := m.CompressThroughputBps(12288, 49152, 16, 2)
	if big <= small {
		t.Fatalf("175B throughput %v not above 8.3B %v", big, small)
	}
}

func TestCompressionFasterThanInterconnectAtPaperRanks(t *testing.T) {
	// §9.6's conclusion: compression throughput comfortably exceeds the
	// 200 Gb/s interconnect, so the overhead is negligible.
	m := DefaultCompressionCostModel()
	if tp := m.CompressThroughputBps(3072, 12288, 16, 2); tp < 200e9 {
		t.Fatalf("compression %v Gb/s slower than interconnect", tp/1e9)
	}
}

func TestLowRankWireBytes(t *testing.T) {
	// rank 16 on 100×200 at 2 bytes: 16·300·2.
	if got := LowRankWireBytes(100, 200, 16, 2); got != 16*300*2 {
		t.Fatalf("wire bytes %d", got)
	}
	// rank clamps to min dimension.
	if got := LowRankWireBytes(4, 200, 16, 2); got != 4*204*2 {
		t.Fatalf("clamped wire bytes %d", got)
	}
}

// Property: compressed stage count equals round(fraction·p) clamped, and
// selection is always a prefix.
func TestCompressedStagesPrefixProperty(t *testing.T) {
	f := func(fr8, p8 uint8) bool {
		frac := float64(fr8%101) / 100
		p := int(p8%16) + 1
		c := Config{SelectiveStageFraction: frac, DPRank: 8}
		sel := c.CompressedStages(p)
		if len(sel) != p {
			return false
		}
		// Prefix property.
		seenFalse := false
		for _, v := range sel {
			if v && seenFalse {
				return false
			}
			if !v {
				seenFalse = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 15 factor always exceeds Eq. 16 factor for D ≥ 2.
func TestFusedAlwaysCheaperProperty(t *testing.T) {
	f := func(d8 uint8) bool {
		d := int(d8%63) + 2
		return EmbSyncVolumeFactor(d) > EmbSyncFusedVolumeFactor(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
