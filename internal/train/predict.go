package train

import "repro/internal/compress"

// Exported wire-volume predictions and probe accessors: the executed-
// scale quantities the plan autotuner needs to close its loop
// (autotune.Probes / autotune.PredictExecution). The trainer keeps the
// unexported predict*/probe* forms for its own trace reconciliation;
// these wrappers expose the identical accounting, so the autotuner's
// execution prediction and the reconciler's can never drift.

// PredictedPPBytes prices one iteration's pipeline-parallel wire volume
// across all replicas from the compiled plan.
func (t *Trainer) PredictedPPBytes() int64 { return t.predictPPBytes() }

// PredictedDPBytes prices one iteration's data-parallel sync wire
// volume from the plan's bucket schedule (0 when no DP sync runs).
func (t *Trainer) PredictedDPBytes() int64 { return t.predictDPBytes() }

// PredictedEmbBytes prices one iteration's §6 embedding-sync wire
// volume from the plan's embedding strategy.
func (t *Trainer) PredictedEmbBytes() int64 { return t.predictEmbBytes() }

// DenseBoundaryBytes returns one dense inter-stage activation or
// activation-gradient payload's size — shape-determined, so every
// boundary send of the run carries exactly this many bytes when dense.
func (t *Trainer) DenseBoundaryBytes() int64 {
	return int64(t.cfg.MicroBatch*t.cfg.Model.Hidden) * compress.ElemBytes
}

// ProbeCBWireBytes measures one compressed backward payload's wire size
// on a compressor built from the plan's boundary spec (0 when backprop
// compression is off or the pipeline has no boundary).
func (t *Trainer) ProbeCBWireBytes() int64 { return t.probeCBWireBytes() }

// ProbeDPPayloadBytes measures the compressed payload size of gradient
// channel (stage, ch), or 0 where the channel stays dense — the
// per-channel callback autotune.Probes and sim.PredictDPBucketBytes
// price DP sync with. Out-of-range indices report 0.
func (t *Trainer) ProbeDPPayloadBytes(stage, ch int) int64 {
	if stage < 0 || stage >= len(t.grads[0]) || ch < 0 || ch >= len(t.grads[0][stage]) {
		return 0
	}
	return t.probeDPPayloadBytes(stage, ch)
}

// EmbTableBytes returns one rank's embedding-table gradient payload —
// the V-byte buffer every §6 synchronization strategy moves.
func (t *Trainer) EmbTableBytes() int64 {
	return t.replicas[0][0].EmbeddingGrad().SizeBytes(compress.ElemBytes)
}
