package train

import (
	"testing"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/sim"
)

// Loop-closing acceptance for the plan autotuner: tune at paper scale
// on the grid's DP×PP topology, execute the winner on the real
// executor, and pin every executed wire volume against the autotuner's
// prediction at tolerance zero.

// autotuneGrids are the executor shapes the criterion covers: the
// Table-2 pipeline and its transpose.
var autotuneGrids = []struct{ dp, pp int }{{2, 4}, {4, 2}}

// paperPricer builds the frozen-sequence evaluator for a paper-scale
// scenario remapped to the grid's DP×PP (TP8 keeps tensor-parallel
// groups inside the paper cluster's nodes).
func paperPricer(t *testing.T, dp, pp int) *sim.Evaluator {
	t.Helper()
	base := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	base.Map = cluster.Mapping{TP: 8, DP: dp, PP: pp}
	ev, err := sim.NewEvaluator(base)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// permissiveQuality admits the whole space. Quality gating has its own
// tests in autotune; here the search must be free to pick any winner so
// the execution crosscheck covers whatever shape wins.
func permissiveQuality() autotune.QualityModel {
	qm := autotune.DefaultQualityModel()
	qm.Budget = 1000
	return qm
}

// scaledWinner lowers a paper-scale winner onto the test-scale model:
// the plan shape (families, §7 prefix depth, embedding strategy)
// carries over verbatim; rank-responsive ranks rescale to the 8×16
// test boundary the way the scaled presets do.
func scaledWinner(c autotune.Candidate) autotune.Candidate {
	if c.CB && c.CBRank > 0 {
		c.CBRank = 2
	}
	if c.DPStages > 0 && c.DPRank > 0 {
		c.DPRank = 2
	}
	return c
}

// trainerProbes assembles the autotuner's executed-scale probe set from
// the trainer's exported accessors.
func trainerProbes(tr *Trainer) autotune.Probes {
	return autotune.Probes{
		DenseBoundaryBytes: tr.DenseBoundaryBytes(),
		CBWireBytes:        tr.ProbeCBWireBytes(),
		DPPayloadBytes:     tr.ProbeDPPayloadBytes,
		EmbTableBytes:      tr.EmbTableBytes(),
	}
}

func TestAutotuneWinnerExecutesAsPredicted(t *testing.T) {
	c := testCorpus(t)
	for _, g := range autotuneGrids {
		sp := autotune.DefaultSpace(g.pp)
		opts := autotune.Options{Seed: 7, Top: 10}
		res, err := autotune.Search(paperPricer(t, g.dp, g.pp), sp, permissiveQuality(), opts)
		if err != nil {
			t.Fatal(err)
		}

		// The winner must not lose to the hand-picked Table-2 plan — it
		// is in the space, so at worst the search rediscovers it.
		hand, err := paperPricer(t, g.dp, g.pp).Price(core.CBFESC(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner.Estimate.IterationSec > hand.IterationSec+1e-12 {
			t.Errorf("dp%d×pp%d: winner %s predicts %.6fs, hand-picked CBFESC %.6fs",
				g.dp, g.pp, res.Winner.Candidate.Key(), res.Winner.Estimate.IterationSec, hand.IterationSec)
		}

		// Same seed, same ranked table — determinism end to end.
		res2, err := autotune.Search(paperPricer(t, g.dp, g.pp), sp, permissiveQuality(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table() != res2.Table() {
			t.Errorf("dp%d×pp%d: same seed produced different ranked tables:\n%s\nvs\n%s",
				g.dp, g.pp, res.Table(), res2.Table())
		}

		// Execute the winner. The tiny bucket budget forces multi-bucket
		// schedules so the per-bucket crosscheck is non-degenerate.
		cfg := gridConfig(scaledWinner(res.Winner.Candidate).Config(g.pp, 3), g.dp, g.pp, 4)
		cfg.BucketBytes = 512
		tr, err := New(cfg, c)
		if err != nil {
			t.Fatalf("dp%d×pp%d: winner %s failed to build trainer: %v", g.dp, g.pp, res.Winner.Candidate.Key(), err)
		}
		t.Cleanup(tr.Close)

		before, _ := tr.CollectiveStats()
		const iters = 3
		for i := 0; i < iters; i++ {
			tr.TrainIteration()
		}

		pred, err := autotune.PredictExecution(tr.Plan(), trainerProbes(tr))
		if err != nil {
			t.Fatal(err)
		}

		// The autotuner's prediction and the trainer's own reconciliation
		// predictions are the same accounting — identical numbers.
		if tr.PredictedPPBytes() != pred.PPBytes || tr.PredictedDPBytes() != pred.DPBytes || tr.PredictedEmbBytes() != pred.EmbBytes {
			t.Errorf("dp%d×pp%d: tuner predicts pp=%d dp=%d emb=%d, trainer predicts pp=%d dp=%d emb=%d",
				g.dp, g.pp, pred.PPBytes, pred.DPBytes, pred.EmbBytes,
				tr.PredictedPPBytes(), tr.PredictedDPBytes(), tr.PredictedEmbBytes())
		}

		// Executed wire volumes == prediction, tolerance zero.
		after, _ := tr.CollectiveStats()
		d := after.Sub(before)
		for _, chk := range []struct {
			class collective.Class
			per   int64
		}{
			{collective.ClassPP, pred.PPBytes},
			{collective.ClassDP, pred.DPBytes},
			{collective.ClassEmb, pred.EmbBytes},
		} {
			if got, want := d.For(chk.class).Bytes, chk.per*iters; got != want {
				t.Errorf("dp%d×pp%d winner %s: executed %v bytes %d over %d iters, predicted %d",
					g.dp, g.pp, res.Winner.Candidate.Key(), chk.class, got, iters, want)
			}
		}

		// Per-bucket volumes (last iteration) == prediction, bucket by
		// bucket.
		exec, ok := tr.ExecutedDPBuckets()
		if want := g.dp > 1; ok != want {
			t.Fatalf("dp%d×pp%d: bucket log ok=%v, want %v", g.dp, g.pp, ok, want)
		}
		if ok {
			if len(exec) != len(pred.DPBuckets) {
				t.Fatalf("dp%d×pp%d: %d executed stages, %d predicted", g.dp, g.pp, len(exec), len(pred.DPBuckets))
			}
			for s := range pred.DPBuckets {
				if len(exec[s]) != len(pred.DPBuckets[s]) {
					t.Fatalf("dp%d×pp%d: stage %d has %d executed buckets, prediction says %d",
						g.dp, g.pp, s, len(exec[s]), len(pred.DPBuckets[s]))
				}
				for bi := range pred.DPBuckets[s] {
					if exec[s][bi] != pred.DPBuckets[s][bi] {
						t.Errorf("dp%d×pp%d: stage %d bucket %d executed %d B, predicted %d B",
							g.dp, g.pp, s, bi, exec[s][bi], pred.DPBuckets[s][bi])
					}
				}
			}
		}
	}
}

// TestTrainerProbesMatchReconcilerForPresets pins the exported probe
// accessors against the unexported reconciliation path across the
// compression presets: autotune.PredictExecution over trainer probes
// must reproduce the trainer's own per-iteration predictions for every
// preset, not just the search winner.
func TestTrainerProbesMatchReconcilerForPresets(t *testing.T) {
	c := testCorpus(t)
	for name, opt := range overlapOpts() {
		cfg := gridConfig(opt, 2, 4, 4)
		cfg.BucketBytes = 512
		tr, err := New(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := autotune.PredictExecution(tr.Plan(), trainerProbes(tr))
		if err != nil {
			t.Fatal(err)
		}
		if pred.PPBytes != tr.PredictedPPBytes() || pred.DPBytes != tr.PredictedDPBytes() || pred.EmbBytes != tr.PredictedEmbBytes() {
			t.Errorf("%s: tuner pp=%d dp=%d emb=%d, trainer pp=%d dp=%d emb=%d",
				name, pred.PPBytes, pred.DPBytes, pred.EmbBytes,
				tr.PredictedPPBytes(), tr.PredictedDPBytes(), tr.PredictedEmbBytes())
		}
		tr.Close()
	}
}
