package train

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
)

// TestExecutedPlacementEqualsPlanAndPrediction pins the redesign's
// acceptance criterion: neither the trainer nor the simulator re-derives
// compression placement — both consume the compiled plan, and what the
// engine *actually executed* (recorded at the send/sync call sites,
// independently of the plan) equals the plan's edge and stage sets
// exactly, on both engines, with the simulator's plan-derived byte
// prediction matching the transport's measured pp-class traffic.
func TestExecutedPlacementEqualsPlanAndPrediction(t *testing.T) {
	c := testCorpus(t)
	for name, opt := range executorOpts() {
		for _, g := range executorGrids {
			for _, engine := range []Engine{EnginePipelined, EngineSerial} {
				cfg := gridConfig(opt, g.dp, g.pp, g.micros)
				cfg.Engine = engine
				tr, err := New(cfg, c)
				if err != nil {
					t.Fatal(err)
				}
				tr.TrainIteration()

				// Executed backward edge set == plan edge set.
				pl := tr.Plan()
				execBwd := tr.ExecutedBackwardActions()
				for s := 1; s < cfg.Stages; s++ {
					for mi := 0; mi < cfg.MicroBatches; mi++ {
						if execBwd[s][mi] != pl.CompressBackward(s, mi) {
							t.Fatalf("%s %v dp%d×pp%d m=%d: edge (s=%d,mi=%d) executed=%v plan=%v",
								name, engine, g.dp, g.pp, g.micros, s, mi,
								execBwd[s][mi], pl.CompressBackward(s, mi))
						}
					}
				}

				// Executed DP-sync stage set == plan stage set.
				execDP, ran := tr.ExecutedCompressedStages()
				if want := cfg.DPGroups > 1; ran != want {
					t.Fatalf("%s %v: dp sync ran=%v, want %v", name, engine, ran, want)
				}
				if ran {
					for s, got := range execDP {
						if got != pl.DPCompressed(s) {
							t.Fatalf("%s %v: stage %d executed dp-compress=%v plan=%v",
								name, engine, s, got, pl.DPCompressed(s))
						}
					}
				}

				// Executed embedding strategy == plan strategy.
				if emb, ran := tr.ExecutedEmbedding(); !ran || emb != pl.Embedding() {
					t.Fatalf("%s %v: executed embedding %v (ran=%v), plan says %v",
						name, engine, emb, ran, pl.Embedding())
				}

				// The simulator's prediction, derived from the same plan,
				// equals the transport's measured pp traffic to the byte.
				if st, ok := tr.CollectiveStats(); ok && cfg.Stages > 1 {
					dense := int64(cfg.MicroBatch*cfg.Model.Hidden) * compress.ElemBytes
					var cmp int64
					if opt.CompressBackprop {
						cmp = probeCBWireBytes(t, tr)
					}
					pred := sim.PredictInterStageFromPlan(pl, dense, cmp)
					exec := st.For(collective.ClassPP)
					scale := int64(cfg.DPGroups)
					if exec.Bytes != pred.Bytes*scale || exec.Messages != pred.Messages*scale {
						t.Fatalf("%s %v dp%d×pp%d: executed pp (%d B, %d msgs) != plan-derived prediction (%d B, %d msgs)",
							name, engine, g.dp, g.pp, exec.Bytes, exec.Messages,
							pred.Bytes*scale, pred.Messages*scale)
					}
				}
				tr.Close()
			}
		}
	}
}

// TestEngineResolution pins the Engine enum (the deprecated
// DisableCollective/DisablePipeline aliases are gone — Engine is the
// only knob) and the DP-sync mode resolution.
func TestEngineResolution(t *testing.T) {
	base := testConfig(core.Baseline())
	cases := []struct {
		mutate func(*Config)
		want   Engine
	}{
		{func(*Config) {}, EnginePipelined},
		{func(c *Config) { c.Engine = EnginePipelined }, EnginePipelined},
		{func(c *Config) { c.Engine = EngineSerial }, EngineSerial},
		{func(c *Config) { c.Engine = EngineReference }, EngineReference},
	}
	for i, cse := range cases {
		cfg := base
		cse.mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := cfg.ResolvedEngine(); got != cse.want {
			t.Fatalf("case %d: resolved %v, want %v", i, got, cse.want)
		}
	}

	bad := base
	bad.Engine = Engine(99)
	if bad.Validate() == nil {
		t.Fatal("out-of-range engine accepted")
	}
	bad = base
	bad.DPSync = DPSyncMode(9)
	if bad.Validate() == nil {
		t.Fatal("out-of-range DP-sync mode accepted")
	}
	bad = base
	bad.BucketBytes = -1
	if bad.Validate() == nil {
		t.Fatal("negative bucket budget accepted")
	}
	if base.ResolvedDPSync() != DPSyncOverlapped {
		t.Fatal("DPSyncAuto did not resolve to overlapped")
	}
	blk := base
	blk.DPSync = DPSyncBlocking
	if blk.ResolvedDPSync() != DPSyncBlocking {
		t.Fatal("DPSyncBlocking did not stick")
	}
}

// TestEngineTrinityBitIdentical runs the same configuration on all
// three engines and asserts bit-identical losses and weights — the
// Engine knob must be a pure execution-stack choice.
func TestEngineTrinityBitIdentical(t *testing.T) {
	c := testCorpus(t)
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	var trainers []*Trainer
	for _, e := range []Engine{EnginePipelined, EngineSerial, EngineReference} {
		cfg := testConfig(opt)
		cfg.Engine = e
		tr, err := New(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if tr.Engine() != e {
			t.Fatalf("engine %v resolved as %v", e, tr.Engine())
		}
		trainers = append(trainers, tr)
	}
	for i := 0; i < 3; i++ {
		l0 := trainers[0].TrainIteration()
		for _, tr := range trainers[1:] {
			if l := tr.TrainIteration(); l != l0 {
				t.Fatalf("iteration %d: engine %v loss %v != %v", i, tr.Engine(), l, l0)
			}
		}
	}
	assertSameWeights(t, trainers[0], trainers[1], "pipelined-vs-serial")
	assertSameWeights(t, trainers[0], trainers[2], "pipelined-vs-reference")
}

// TestTernGradDPSyncTrains pins the previously dead quantizer family end
// to end through the trainer: -dp-alg terngrad reaches the compressed
// ring all-reduce via the registry, the model still learns, and the
// executed dp-class wire volume is below the dense baseline's.
func TestTernGradDPSyncTrains(t *testing.T) {
	c := testCorpus(t)
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	opt.DPAlg = "terngrad"
	tr, err := New(testConfig(opt), c)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Plan().DPFamily(); got != "terngrad" {
		t.Fatalf("plan DP family %q", got)
	}
	first := tr.TrainIteration()
	last := tr.Train(40, nil)
	if last >= first {
		t.Fatalf("terngrad DP sync did not learn: %v → %v", first, last)
	}

	// Same config with dense DP sync for the wire-volume comparison.
	dense := testConfig(core.Baseline())
	dtr, err := New(dense, c)
	if err != nil {
		t.Fatal(err)
	}
	defer dtr.Close()
	for i := 0; i < 3; i++ {
		dtr.TrainIteration()
	}
	ds, _ := dtr.CollectiveStats()
	ts, _ := tr.CollectiveStats()
	tIters, dIters := int64(tr.Iteration()), int64(dtr.Iteration())
	if ts.For(collective.ClassDP).Bytes/tIters >= ds.For(collective.ClassDP).Bytes/dIters {
		t.Fatalf("terngrad dp traffic %d/iter not below dense %d/iter",
			ts.For(collective.ClassDP).Bytes/tIters, ds.For(collective.ClassDP).Bytes/dIters)
	}
}

// TestTrainerPlanMatchesScenarioPlan asserts the trainer and the
// simulator compile literally interchangeable plans for matching shapes:
// same edge grid, same stage set, same embedding strategy.
func TestTrainerPlanMatchesScenarioPlan(t *testing.T) {
	c := testCorpus(t)
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	cfg := testConfig(opt)
	tr, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	normalized := cfg.Opt
	normalized.Seed = cfg.Seed
	grid := tr.Plan().Grid()
	if grid.Stages != cfg.Stages || grid.DPGroups != cfg.DPGroups ||
		grid.MicroBatches != cfg.MicroBatches ||
		grid.BoundaryRows != cfg.MicroBatch || grid.BoundaryCols != cfg.Model.Hidden {
		t.Fatalf("trainer compiled an unexpected grid: %+v", grid)
	}
	if grid.StageGradBytes == nil {
		t.Fatal("trainer grid carries no gradient sizes — no bucket schedule")
	}
	other := plan.MustCompile(normalized, grid)
	a, b := tr.Plan(), other
	for s := 0; s < cfg.Stages; s++ {
		if a.DPCompressed(s) != b.DPCompressed(s) {
			t.Fatalf("stage %d DP action differs", s)
		}
		for mi := 0; mi < cfg.MicroBatches; mi++ {
			if a.CompressBackward(s, mi) != b.CompressBackward(s, mi) {
				t.Fatalf("edge (%d,%d) differs", s, mi)
			}
		}
	}
	if a.Embedding() != b.Embedding() || a.String() != b.String() {
		t.Fatal("plans render differently for identical inputs")
	}
}
