package train

import (
	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// collectiveState wires the trainer onto the rank-based collective
// runtime (internal/collective): a DP×PP topology over the replica grid,
// one long-lived group per communication pattern, and the per-op buffer
// and compressor lists cached up front so the steady-state sync path
// allocates nothing.
//
// The runtime's deterministic ring collectives are bit-identical to the
// serial reference reductions in comm.go, which stays as the
// EngineReference fallback and as the oracle for the equivalence tests.
type collectiveState struct {
	topo collective.Topology
	rt   *collective.Runtime

	// dp[s] is stage s's data-parallel group (ranks in replica order);
	// dpBufs[s][gi][dd] is gradient gi's buffer on replica dd, and
	// dpEFs[s][gi] its per-rank error-feedback compressors (nil unless
	// stage s is selected for compression and the shape is compressible).
	dp     []*collective.Group
	dpBufs [][][]*tensor.Matrix
	dpEFs  [][][]*compress.ErrorFeedback
	// buckets[s][b] lists stage s's bucket-b gradient channel indices —
	// the plan's DP-sync bucket schedule, copied once so the per-
	// iteration issue path never allocates. blockHandles[s] is the
	// blocking path's per-stage handle scratch, capacity = the stage's
	// largest bucket (stages sync on distinct goroutines at most, so a
	// per-stage slice is race-free).
	buckets      [][][]int
	blockHandles [][]*collective.Pending

	// embFused is the §6 fused group — (first, last) of every replica in
	// the serial reduction order; with a single stage it degenerates to
	// the stage-0 DP group and embFusedBufs holds one buffer per replica.
	embFused     *collective.Group
	embFusedBufs []*tensor.Matrix
	// embSide are the two D-way per-side groups of the baseline (Fig. 7a
	// phase 1); embPairs the per-replica 2-way sum groups (phase 2).
	embSide     [2]*collective.Group
	embSideBufs [2][]*tensor.Matrix
	embPairs    []*collective.Group
	embPairBufs [][]*tensor.Matrix
}

// DistConfig attaches a trainer to a process-per-rank run: every rank of
// the DP×PP grid is its own OS process, and this process executes exactly
// one of them. Each process constructs the FULL trainer — identical
// seeds give identical initial weights, and every process pre-samples
// every group's batches so the shared RNG sequence never diverges — but
// executes only its local rank's schedule ops, synchronization share,
// and optimizer step; the rest of its replicas are dead weight whose
// gradients are never produced, synchronized, or applied. The grid's
// results are therefore bit-identical, rank for rank, to the in-process
// run: the oracle tests compare each process's local-stage weights and
// the aggregated per-class transport Stats at tolerance zero.
type DistConfig struct {
	// Transport is the remote transport (Remote() == true) this process
	// sends as. Its LocalRank selects the (dp, stage) rank through the
	// DP-major collective topology; its world must equal DPGroups×Stages.
	// The trainer does not close it — the caller owns its lifecycle.
	Transport collective.Transport
}

// newCollectiveState builds the runtime and all groups for a trainer
// whose replicas and gradient caches are already in place.
func newCollectiveState(t *Trainer) *collectiveState {
	cfg := t.cfg
	topo, err := collective.NewTopology(cfg.DPGroups, cfg.Stages)
	if err != nil {
		panic(err) // unreachable: Config.Validate bounds both axes ≥ 1
	}
	var tr collective.Transport
	if cfg.Dist != nil {
		// Process-per-rank: the caller's remote transport carries every
		// message; the runtime spawns a worker only for its local rank.
		tr = cfg.Dist.Transport
	} else {
		// The point-to-point queues are sized for the 1F1B schedule's
		// worst-case skew (one message per micro-batch per link direction),
		// so a pipeline rank running ahead never blocks and the executor is
		// deadlock-free by construction.
		tr = collective.NewMemTransportDepth(topo.World(), t.sched.MaxLinkBacklog())
	}
	cs := &collectiveState{
		topo: topo,
		rt:   collective.NewRuntime(topo, tr, t.pool),
	}

	// Per-stage DP groups with cached buffer/compressor lists and the
	// plan's bucket schedule.
	cs.dp = make([]*collective.Group, cfg.Stages)
	cs.dpBufs = make([][][]*tensor.Matrix, cfg.Stages)
	cs.dpEFs = make([][][]*compress.ErrorFeedback, cfg.Stages)
	cs.buckets = make([][][]int, cfg.Stages)
	cs.blockHandles = make([][]*collective.Pending, cfg.Stages)
	for s := 0; s < cfg.Stages; s++ {
		maxBucket := 0
		for _, b := range t.plan.Buckets(s) {
			cs.buckets[s] = append(cs.buckets[s], b.Channels)
			if len(b.Channels) > maxBucket {
				maxBucket = len(b.Channels)
			}
		}
		cs.blockHandles[s] = make([]*collective.Pending, 0, maxBucket)
		cs.dp[s] = cs.rt.NewGroup(collective.ClassDP, topo.DPGroup(s))
		nGrads := len(t.grads[0][s])
		cs.dpBufs[s] = make([][]*tensor.Matrix, nGrads)
		cs.dpEFs[s] = make([][]*compress.ErrorFeedback, nGrads)
		for gi := 0; gi < nGrads; gi++ {
			bufs := make([]*tensor.Matrix, cfg.DPGroups)
			for dd := 0; dd < cfg.DPGroups; dd++ {
				bufs[dd] = t.grads[dd][s][gi]
			}
			cs.dpBufs[s][gi] = bufs
			if t.plan.DPCompressed(s) && compressibleShape(bufs[0]) {
				efs := make([]*compress.ErrorFeedback, cfg.DPGroups)
				for dd := 0; dd < cfg.DPGroups; dd++ {
					efs[dd] = t.dpEF(s, dd, gi) // same seeds as the serial path
				}
				cs.dpEFs[s][gi] = efs
			}
		}
	}

	// Embedding groups (§6). Only the path the (immutable) plan selects
	// is built: the fused 2D-way group — whose ring order matches the
	// serial fused reduction Σ_d (first_d + last_d) — or the baseline's
	// per-side and per-replica groups.
	last := cfg.Stages - 1
	if emb := t.plan.Embedding(); emb == plan.EmbDPOnly || emb == plan.EmbFused {
		cs.embFused = cs.rt.NewGroup(collective.ClassEmb, topo.EmbGroup())
		for dd := 0; dd < cfg.DPGroups; dd++ {
			cs.embFusedBufs = append(cs.embFusedBufs, t.replicas[dd][0].EmbeddingGrad())
			if cfg.Stages > 1 {
				cs.embFusedBufs = append(cs.embFusedBufs, t.replicas[dd][last].EmbeddingGrad())
			}
		}
	} else {
		for side, stage := range [2]int{0, last} {
			cs.embSide[side] = cs.rt.NewGroup(collective.ClassEmb, topo.DPGroup(stage))
			bufs := make([]*tensor.Matrix, cfg.DPGroups)
			for dd := 0; dd < cfg.DPGroups; dd++ {
				bufs[dd] = t.replicas[dd][stage].EmbeddingGrad()
			}
			cs.embSideBufs[side] = bufs
		}
		for dd := 0; dd < cfg.DPGroups; dd++ {
			cs.embPairs = append(cs.embPairs, cs.rt.NewGroup(collective.ClassEmb, topo.EmbPair(dd)))
			cs.embPairBufs = append(cs.embPairBufs, []*tensor.Matrix{
				t.replicas[dd][0].EmbeddingGrad(),
				t.replicas[dd][last].EmbeddingGrad(),
			})
		}
	}
	return cs
}

// issueChannel issues gradient channel gi of stage s as an asynchronous
// ring all-reduce on the runtime: a compressed ring with per-rank error
// feedback where selective stage compression applies and the shape is
// compressible, the exact deterministic ring otherwise. Bit-identical to
// the serial syncStageSerial whichever path runs, and whenever the
// returned handle is waited.
func (cs *collectiveState) issueChannel(t *Trainer, s, gi int, compressed bool) *collective.Pending {
	d := float64(t.cfg.DPGroups)
	bufs := cs.dpBufs[s][gi]
	if efs := cs.dpEFs[s][gi]; compressed && efs != nil {
		return cs.dp[s].AllReduceCompressedAsync(bufs, efs, 1/d)
	}
	return cs.dp[s].AllReduceAsync(bufs, 1/d)
}

// syncStageBlocking runs stage s's bucket schedule as a sequence of
// barriers: one bucket's channels are issued together and all waited
// before the next bucket starts — the un-overlapped baseline — recording
// executed wire volume per bucket exactly like the overlapped path. The
// per-bucket handle scratch is cached on the state so the steady state
// allocates nothing.
func (cs *collectiveState) syncStageBlocking(t *Trainer, s int) {
	compressed := t.plan.DPCompressed(s)
	t.exec.dp[s] = compressed
	for bi, bucket := range cs.buckets[s] {
		handles := cs.blockHandles[s][:0]
		for _, gi := range bucket {
			handles = append(handles, cs.issueChannel(t, s, gi, compressed))
		}
		var wire int64
		for _, h := range handles {
			wire += h.WaitBytes()
		}
		t.exec.dpBuckets[s][bi] = wire
	}
}

// syncEmbedding runs the §6 phase the plan selected on the runtime: the
// fused 2D-way all-reduce (Fig. 7b, Eq. 16) or the baseline per-side
// averages plus per-replica sums (Fig. 7a, Eq. 15). Traffic lands on
// ClassEmb.
func (cs *collectiveState) syncEmbedding(t *Trainer) {
	cfg := t.cfg
	d := float64(cfg.DPGroups)
	strategy := t.plan.Embedding()
	t.exec.emb, t.exec.embRan = strategy, true
	switch strategy {
	case plan.EmbDPOnly:
		// The table is shared in place; only the DP average remains.
		cs.embFused.AllReduce(cs.embFusedBufs, 1/d)
		return
	case plan.EmbFused:
		// One 2D-way all-reduce: Σ over both sides and all replicas, /D.
		cs.embFused.AllReduce(cs.embFusedBufs, 1/d)
		return
	}
	// Phase 1: EMB DP — D-way average per side.
	if cfg.DPGroups > 1 {
		for side := range cs.embSide {
			cs.embSide[side].AllReduce(cs.embSideBufs[side], 1/d)
		}
	}
	// Phase 2: EMB Sync — 2-way sum between first and last stages.
	for dd := range cs.embPairs {
		cs.embPairs[dd].AllReduce(cs.embPairBufs[dd], 1)
	}
}

// accountBackward books the inter-stage backward transfer of micro-batch
// traffic from stage s to s−1 of replica d on the pipeline link class.
// The payload itself is handed off in-process (runMicroBatch); only the
// wire size is accounted, so experiments can report executed PP volume
// under compressed backpropagation.
func (cs *collectiveState) accountBackward(d, s int, bytes int64) {
	cs.rt.AccountP2P(collective.ClassPP, cs.topo.Rank(d, s), cs.topo.Rank(d, s-1), bytes)
}

// accountForward books the inter-stage forward activation transfer from
// stage s−1 to stage s of replica d on the pipeline link class. Only the
// serial in-loop path needs this — the 1F1B executor's Send accounts its
// own traffic — but both paths must agree to the byte, which the
// cross-check tests pin.
func (cs *collectiveState) accountForward(d, s int, bytes int64) {
	cs.rt.AccountP2P(collective.ClassPP, cs.topo.Rank(d, s-1), cs.topo.Rank(d, s), bytes)
}

// Close releases the runtime's rank workers.
func (cs *collectiveState) Close() { cs.rt.Close() }
