package train

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// syncDataParallel averages gradients across DP groups per stage. Stages
// selected by selective stage compression (§7) go through a lossy
// PowerSGD round with error feedback per group (the §2.3 mechanism);
// everything else is averaged exactly. Embedding-table gradients are
// excluded here — they belong to the embedding-synchronization phase (§6).
//
// Under overlapped sync (the default on runtime-backed engines) the
// buckets were already issued during the backward pass and only the
// in-flight handles remain to be drained here. Under blocking sync the
// plan's bucket schedule runs now, stages fanned out over a bounded
// worker pool (disjoint gradient tensors, private compressor state per
// (stage, group, grad) key — bit-identical to the serial order). The
// reference engine keeps the in-place serial reduction as the oracle.
// Averaging buffers come from the trainer's pool, so steady-state sync
// performs no matrix allocations.
func (t *Trainer) syncDataParallel() {
	cfg := t.cfg
	d := cfg.DPGroups
	if d <= 1 {
		return
	}
	t.exec.dpRan = true
	if t.ov != nil {
		t.waitDPSync()
		return
	}
	if t.coll == nil {
		for s := 0; s < cfg.Stages; s++ {
			t.syncStageSerial(s, t.plan.DPCompressed(s))
		}
		return
	}
	start := time.Now()
	workers := t.syncWorkers()
	if workers <= 1 || cfg.Stages == 1 {
		for s := 0; s < cfg.Stages; s++ {
			t.coll.syncStageBlocking(t, s)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for s := 0; s < cfg.Stages; s++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(s int) {
				defer wg.Done()
				t.coll.syncStageBlocking(t, s)
				<-sem
			}(s)
		}
		wg.Wait()
	}
	t.recordDPDrain(time.Since(start).Nanoseconds())
}

// syncWorkers resolves the worker-pool bound for DP-group×stage sync.
func (t *Trainer) syncWorkers() int {
	w := t.cfg.SyncWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > t.cfg.Stages {
		w = t.cfg.Stages
	}
	return w
}

// syncStageSerial averages (optionally compressing) every non-embedding
// gradient of stage s across the DP groups, in place, with the fully
// serial reduction — the EngineReference fallback and the bit-identity
// oracle for both runtime sync modes.
func (t *Trainer) syncStageSerial(s int, compressed bool) {
	t.exec.dp[s] = compressed
	d := t.cfg.DPGroups
	for gi := range t.grads[0][s] {
		if t.embSkip[t.grads[0][s][gi]] || t.embSkip[t.grads[d-1][s][gi]] {
			continue
		}
		g0 := t.grads[0][s][gi]
		avg := t.pool.Get(g0.Rows, g0.Cols)
		for dd := 0; dd < d; dd++ {
			g := t.grads[dd][s][gi]
			if compressed && compressibleShape(g) {
				_, recon := t.dpEF(s, dd, gi).CompressWithFeedback(g)
				avg.Add(recon)
			} else {
				avg.Add(g)
			}
		}
		avg.Scale(1 / float64(d))
		for dd := 0; dd < d; dd++ {
			t.grads[dd][s][gi].CopyFrom(avg)
		}
		t.pool.Put(avg)
	}
}

// compressibleShape reports whether low-rank compression of g is
// meaningful: vectors (biases, norm parameters) are left dense, as real
// PowerSGD deployments do.
func compressibleShape(g *tensor.Matrix) bool { return g.Rows > 1 && g.Cols > 1 }

// dpEF returns (lazily creating) the error-feedback compressor for
// gradient matrix gi of stage s in group dd, built from the plan's
// registry spec for that channel. Creation is guarded by a mutex because
// stages sync concurrently; each compressor instance is only ever used
// by its own (s, dd, gi) task, so use needs no lock.
func (t *Trainer) dpEF(s, dd, gi int) *compress.ErrorFeedback {
	key := [3]int{s, dd, gi}
	t.dpcMu.Lock()
	ef := t.dpc[key]
	if ef == nil {
		// The spec family was validated by plan.Compile, so Build only
		// fails on a programming error.
		ef = compress.NewErrorFeedback(compress.MustBuild(t.plan.DPSpec(s, dd, gi)))
		ef.SetPool(t.pool)
		// DP codec spans run inside rank (dd, s)'s collective worker
		// during the compressed ring, so they land on its worker track.
		ef.SetRecorder(t.rec, t.traceWorkerBase()+t.traceTrack(dd, s))
		t.dpc[key] = ef
	}
	t.dpcMu.Unlock()
	return ef
}

// syncEmbedding synchronizes the tied embedding table's gradients: the
// input-side gradient (first stage) and the output-side gradient (last
// stage) must be summed, and the sum averaged across DP groups. The
// baseline does this in two phases (a D-way average per side, then a
// 2-way sum between the sides: Fig. 7a); fused embedding synchronization
// does it in one 2D-way operation (Fig. 7b). The results are
// mathematically identical — only the communication cost differs, which
// tests assert. All scratch comes from the trainer's pool.
func (t *Trainer) syncEmbedding() {
	if t.coll != nil {
		t.coll.syncEmbedding(t)
		return
	}
	cfg := t.cfg
	dN := float64(cfg.DPGroups)
	strategy := t.plan.Embedding()
	t.exec.emb, t.exec.embRan = strategy, true
	switch strategy {
	case plan.EmbNone:
		// Single rank: the table is shared in place; nothing to sync.
		return
	case plan.EmbDPOnly:
		// Single stage: only the DP average remains.
		g0 := t.replicas[0][0].EmbeddingGrad()
		avg := t.pool.Get(g0.Rows, g0.Cols)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			avg.Add(t.replicas[dd][0].EmbeddingGrad())
		}
		avg.Scale(1 / dN)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			t.replicas[dd][0].EmbeddingGrad().CopyFrom(avg)
		}
		t.pool.Put(avg)
		return
	}
	last := cfg.Stages - 1
	if strategy == plan.EmbFused {
		// One 2D-way all-reduce: Σ over both sides and all groups, /D.
		g0 := t.replicas[0][0].EmbeddingGrad()
		total := t.pool.Get(g0.Rows, g0.Cols)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			total.Add(t.replicas[dd][0].EmbeddingGrad())
			total.Add(t.replicas[dd][last].EmbeddingGrad())
		}
		total.Scale(1 / dN)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			t.replicas[dd][0].EmbeddingGrad().CopyFrom(total)
			t.replicas[dd][last].EmbeddingGrad().CopyFrom(total)
		}
		t.pool.Put(total)
		return
	}
	// Phase 1: EMB DP — D-way average per side.
	for _, stage := range []int{0, last} {
		g0 := t.replicas[0][stage].EmbeddingGrad()
		avg := t.pool.Get(g0.Rows, g0.Cols)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			avg.Add(t.replicas[dd][stage].EmbeddingGrad())
		}
		avg.Scale(1 / dN)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			t.replicas[dd][stage].EmbeddingGrad().CopyFrom(avg)
		}
		t.pool.Put(avg)
	}
	// Phase 2: EMB Sync — 2-way sum between first and last stages.
	for dd := 0; dd < cfg.DPGroups; dd++ {
		first := t.replicas[dd][0].EmbeddingGrad()
		lastG := t.replicas[dd][last].EmbeddingGrad()
		sum := t.pool.GetUninit(first.Rows, first.Cols) // AddScaledInto writes every element
		tensor.AddScaledInto(sum, first, 1, lastG)
		first.CopyFrom(sum)
		lastG.CopyFrom(sum)
		t.pool.Put(sum)
	}
}
