package train

import (
	"repro/internal/compress"
	"repro/internal/tensor"
)

// syncDataParallel averages gradients across DP groups per stage. Stages
// selected by selective stage compression (§7) go through a lossy
// PowerSGD round with error feedback per group (the §2.3 mechanism);
// everything else is averaged exactly. Embedding-table gradients are
// excluded here — they belong to the embedding-synchronization phase (§6).
func (t *Trainer) syncDataParallel() {
	cfg := t.cfg
	d := cfg.DPGroups
	if d <= 1 {
		return
	}
	compressedStages := cfg.Opt.CompressedStages(cfg.Stages)
	for s := 0; s < cfg.Stages; s++ {
		embGrad := make(map[*tensor.Matrix]bool)
		for dd := 0; dd < d; dd++ {
			if eg := t.replicas[dd][s].EmbeddingGrad(); eg != nil {
				embGrad[eg] = true
			}
		}
		grads := make([][]*tensor.Matrix, d)
		for dd := 0; dd < d; dd++ {
			grads[dd] = t.replicas[dd][s].Grads()
		}
		for gi := range grads[0] {
			if embGrad[grads[0][gi]] || embGrad[grads[d-1][gi]] {
				continue
			}
			g0 := grads[0][gi]
			avg := tensor.New(g0.Rows, g0.Cols)
			for dd := 0; dd < d; dd++ {
				g := grads[dd][gi]
				if compressedStages[s] && compressibleShape(g) {
					_, recon := t.dpEF(s, dd, gi).CompressWithFeedback(g)
					avg.Add(recon)
				} else {
					avg.Add(g)
				}
			}
			avg.Scale(1 / float64(d))
			for dd := 0; dd < d; dd++ {
				grads[dd][gi].CopyFrom(avg)
			}
		}
	}
}

// compressibleShape reports whether low-rank compression of g is
// meaningful: vectors (biases, norm parameters) are left dense, as real
// PowerSGD deployments do.
func compressibleShape(g *tensor.Matrix) bool { return g.Rows > 1 && g.Cols > 1 }

// dpEF returns (lazily creating) the error-feedback compressor for
// gradient matrix gi of stage s in group dd.
func (t *Trainer) dpEF(s, dd, gi int) *compress.ErrorFeedback {
	key := [3]int{s, dd, gi}
	ef := t.dpc[key]
	if ef == nil {
		ef = compress.NewErrorFeedback(compress.NewPowerSGD(t.cfg.Opt.DPRank,
			t.cfg.Seed+int64(100000+s*1000+dd*100+gi)))
		t.dpc[key] = ef
	}
	return ef
}

// syncEmbedding synchronizes the tied embedding table's gradients: the
// input-side gradient (first stage) and the output-side gradient (last
// stage) must be summed, and the sum averaged across DP groups. The
// baseline does this in two phases (a D-way average per side, then a
// 2-way sum between the sides: Fig. 7a); fused embedding synchronization
// does it in one 2D-way operation (Fig. 7b). The results are
// mathematically identical — only the communication cost differs, which
// tests assert.
func (t *Trainer) syncEmbedding() {
	cfg := t.cfg
	dN := float64(cfg.DPGroups)
	if cfg.Stages == 1 {
		// Single stage: the table is shared in-place (no inter-stage sync);
		// only the DP average remains.
		if cfg.DPGroups <= 1 {
			return
		}
		g0 := t.replicas[0][0].EmbeddingGrad()
		avg := tensor.New(g0.Rows, g0.Cols)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			avg.Add(t.replicas[dd][0].EmbeddingGrad())
		}
		avg.Scale(1 / dN)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			t.replicas[dd][0].EmbeddingGrad().CopyFrom(avg)
		}
		return
	}
	last := cfg.Stages - 1
	if cfg.Opt.FuseEmbedding {
		// One 2D-way all-reduce: Σ over both sides and all groups, /D.
		g0 := t.replicas[0][0].EmbeddingGrad()
		total := tensor.New(g0.Rows, g0.Cols)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			total.Add(t.replicas[dd][0].EmbeddingGrad())
			total.Add(t.replicas[dd][last].EmbeddingGrad())
		}
		total.Scale(1 / dN)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			t.replicas[dd][0].EmbeddingGrad().CopyFrom(total)
			t.replicas[dd][last].EmbeddingGrad().CopyFrom(total)
		}
		return
	}
	// Phase 1: EMB DP — D-way average per side.
	for _, stage := range []int{0, last} {
		g0 := t.replicas[0][stage].EmbeddingGrad()
		avg := tensor.New(g0.Rows, g0.Cols)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			avg.Add(t.replicas[dd][stage].EmbeddingGrad())
		}
		avg.Scale(1 / dN)
		for dd := 0; dd < cfg.DPGroups; dd++ {
			t.replicas[dd][stage].EmbeddingGrad().CopyFrom(avg)
		}
	}
	// Phase 2: EMB Sync — 2-way sum between first and last stages.
	for dd := 0; dd < cfg.DPGroups; dd++ {
		sum := t.replicas[dd][0].EmbeddingGrad().Clone()
		sum.Add(t.replicas[dd][last].EmbeddingGrad())
		t.replicas[dd][0].EmbeddingGrad().CopyFrom(sum)
		t.replicas[dd][last].EmbeddingGrad().CopyFrom(sum)
	}
}
