package train

import (
	"sync"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// The 1F1B pipeline executor: one goroutine per (dp group, stage) rank,
// each running its stage's schedule ops in order and shipping forward
// activations and backward activation-gradients to its pipeline
// neighbours over the collective runtime's point-to-point transport —
// the executable counterpart of the serial in-loop path in runSerial.
//
// Bit-identity with the serial oracle holds by construction:
//
//   - per-stage gradient accumulation follows the schedule's backward
//     order, which OneFOneB guarantees is micro-batch order — exactly
//     the serial loop's order;
//   - each boundary's error-feedback compressor cb[d][s] is driven by
//     its sending rank alone, in that same micro-batch order, so the
//     lazy-error-propagation residual sequence is unchanged (§5.1);
//   - per-group losses accumulate on the last stage in forward
//     (micro-batch) order.
//
// The transport's point-to-point queues hold one message per micro-batch
// per link direction (Schedule.MaxLinkBacklog), so sends never block and
// the executor cannot deadlock; Recv ordering per link is FIFO, which
// matches the schedule because forwards and backwards each occur in
// micro-batch order on every stage.

// runPipelined executes one iteration's pre-sampled micro-batches on the
// pipeline executor, accumulating per-group losses into losses (written
// only by each group's last-stage rank).
func (t *Trainer) runPipelined(batches [][]microBatch, losses []float64) {
	cfg := t.cfg
	var wg sync.WaitGroup
	for d := 0; d < cfg.DPGroups; d++ {
		for s := 0; s < cfg.Stages; s++ {
			// Under Dist only this process's rank runs; its pipeline
			// neighbours execute in their own processes and the transport
			// carries the boundary crossings.
			if !t.localRank(d, s) {
				continue
			}
			wg.Add(1)
			go func(d, s int) {
				defer wg.Done()
				t.runStageRank(d, s, batches[d], &losses[d])
			}(d, s)
		}
	}
	wg.Wait()
}

// runStageRank is rank (d, s)'s worker: zero the stage's gradient
// accumulators, execute the stage's schedule ops in order, then average
// the accumulated gradients over the micro-batches. Only rank (d, s)
// touches stage s of replica d, so no locks are needed; the transport
// handoffs provide the inter-rank happens-before edges.
func (t *Trainer) runStageRank(d, s int, mbs []microBatch, loss *float64) {
	cfg := t.cfg
	st := t.replicas[d][s]
	rt := t.coll.rt
	topo := t.coll.topo
	last := cfg.Stages - 1
	self := topo.Rank(d, s)
	var up, down int
	if s > 0 {
		up = topo.Rank(d, s-1)
	}
	if s < last {
		down = topo.Rank(d, s+1)
	}

	for _, g := range t.grads[d][s] {
		g.Zero()
	}

	// dLogitsQ carries the last stage's loss gradients from each forward
	// op to the matching backward op (FIFO: both run in micro order).
	// fwdInQ retains the received forward activations on the boundary the
	// Fig. 11 statistics observe, for Stats.Record at backward time.
	var dLogitsQ, fwdInQ []*tensor.Matrix
	trackFwd := t.stats != nil && d == 0 && s == 1
	rec, track := t.rec, t.traceTrack(d, s)

	for _, op := range t.sched.PerStage[s] {
		mi := op.Micro
		if op.Kind == pipeline.Forward {
			// The compute span starts after the upstream Recv, so waiting
			// on a neighbour shows up as track idle time, not as compute.
			var h *tensor.Matrix
			var fStart int64
			if s == 0 {
				fStart = rec.Now()
				h = st.ForwardTokens(mbs[mi].contexts)
			} else {
				in, _ := rt.Recv(collective.ClassPP, self, up)
				if trackFwd {
					fwdInQ = append(fwdInQ, in)
				}
				fStart = rec.Now()
				h = st.ForwardHidden(in)
			}
			if s < last {
				rec.Record(track, obs.PhaseFwd, obs.LinkNone, fStart, 0, s, d, mi)
				wire := h.SizeBytes(compress.ElemBytes)
				sStart := rec.Now()
				rt.Send(collective.ClassPP, self, down, h)
				rec.Record(track, obs.PhaseSendFwd, obs.LinkPP, sStart, wire, s, d, mi)
			} else {
				logits := st.Logits(h)
				l, dLogits := model.CrossEntropy(logits, mbs[mi].targets)
				*loss += l
				dLogitsQ = append(dLogitsQ, dLogits)
				rec.Record(track, obs.PhaseFwd, obs.LinkNone, fStart, 0, s, d, mi)
			}
			continue
		}

		// Backward op.
		var g *tensor.Matrix
		var bStart int64
		if s == last {
			bStart = rec.Now()
			g = st.BackwardLogits(dLogitsQ[0])
			dLogitsQ = dLogitsQ[1:]
		} else {
			in, pooled := rt.Recv(collective.ClassPP, self, down)
			bStart = rec.Now()
			g = st.BackwardHidden(in)
			if pooled {
				t.pool.Put(in)
			}
		}
		rec.Record(track, obs.PhaseBwd, obs.LinkNone, bStart, 0, s, d, mi)
		if s == 0 {
			continue // stage 0's BackwardHidden returned nil; nothing to ship
		}
		var fwdAct *tensor.Matrix
		if trackFwd {
			fwdAct = fwdInQ[0]
			fwdInQ = fwdInQ[1:]
		}
		t.pipeSendBackward(d, s, mi, g, fwdAct)
	}

	inv := 1.0 / float64(cfg.MicroBatches)
	for _, g := range t.grads[d][s] {
		g.Scale(inv)
	}
	// This rank's gradients are final; under overlapped DP sync the last
	// of the stage's D ranks to get here issues the stage's bucketed
	// all-reduces — on the rank workers, concurrently with the backward
	// compute still running on other stages' rank goroutines.
	t.dpStageReady(s)
}

// pipeSendBackward ships the activation gradient g from stage s to s−1
// of group d over the transport, compressing per the configuration —
// the executable twin of transferBackward, sharing the same cb[d][s]
// error-feedback state and the same epilogue classification, so the
// compressed stream is bit-identical to the serial path's.
func (t *Trainer) pipeSendBackward(d, s, mi int, g, fwdAct *tensor.Matrix) {
	rt := t.coll.rt
	topo := t.coll.topo
	rec, track := t.rec, t.traceTrack(d, s)
	from, to := topo.Rank(d, s), topo.Rank(d, s-1)
	compressed := t.plan.CompressBackward(s, mi)
	if d == 0 {
		// Group 0's stage-s rank is the only writer of this row, so the
		// executor's concurrent ranks never race on the log.
		t.exec.bwd[s][mi] = compressed
	}
	if !compressed {
		wire := g.SizeBytes(compress.ElemBytes)
		sStart := rec.Now()
		rt.Send(collective.ClassPP, from, to, g)
		rec.Record(track, obs.PhaseSendBwd, obs.LinkPP, sStart, wire, s, d, mi)
		return
	}
	// CompressWithFeedback on a disabled ErrorFeedback (the non-LEP
	// ablation) degenerates to plain compress+reconstruct, so one call
	// covers both the LEP and non-LEP configurations bit for bit.
	//
	// Sparse families (TopK/RandomK) ship their payloads sparse-native:
	// no dense reconstruction on the send side, Recv densifies — the
	// residual stream and the received tensors are bit-identical to
	// SendCompressed, so the serial oracle needs no matching change. The
	// Fig. 11 statistics boundary needs the dense reconstruction, so it
	// keeps the dense path.
	if t.stats == nil || d != 0 || s != 1 {
		sStart := rec.Now()
		if wire, ok := rt.SendCompressedSparse(collective.ClassPP, from, to, g, t.cb[d][s]); ok {
			rec.Record(track, obs.PhaseSendBwd, obs.LinkPP, sStart, wire, s, d, mi)
			return
		}
	}
	sStart := rec.Now()
	wire, recon := rt.SendCompressed(collective.ClassPP, from, to, g, t.cb[d][s])
	rec.Record(track, obs.PhaseSendBwd, obs.LinkPP, sStart, wire, s, d, mi)
	if t.stats != nil && d == 0 && s == 1 {
		t.stats.Record(g, recon, fwdAct)
	}
}
