package train

import (
	"repro/internal/tensor"
)

// Stats collects the Fig. 11 evidence for the Eq. 14 conditions: the
// compression error ε⁽ⁱ⁾ has near-zero mean, consecutive-micro-batch
// activation differences Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾ have near-zero mean, and the two are
// uncorrelated (cosine similarity around zero).
type Stats struct {
	EpsMean     []float64 // Avg(ε⁽ⁱ⁾) per compressed send
	ActDiffMean []float64 // Avg(Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾) per consecutive pair
	Cosine      []float64 // cos(ε⁽ⁱ⁾, Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾)

	prevAct *tensor.Matrix
	prevErr *tensor.Matrix
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{} }

// Record logs one compressed backward send: g is the true activation
// gradient, recon its reconstruction, act the forward activation at the
// same boundary.
func (st *Stats) Record(g, recon, act *tensor.Matrix) {
	err := g.Clone()
	err.Sub(recon)
	st.EpsMean = append(st.EpsMean, err.Mean())
	if st.prevAct != nil && st.prevAct.Rows == act.Rows && st.prevAct.Cols == act.Cols {
		diff := st.prevAct.Clone()
		diff.Sub(act)
		st.ActDiffMean = append(st.ActDiffMean, diff.Mean())
		st.Cosine = append(st.Cosine, tensor.CosineSimilarity(st.prevErr.Data, diff.Data))
	}
	st.prevAct = act.Clone()
	st.prevErr = err
}

// Summary returns the mean absolute values of the three series — the
// numbers Fig. 11 shows hovering near zero.
func (st *Stats) Summary() (epsMeanAbs, actDiffMeanAbs, cosineAbs float64) {
	return meanAbs(st.EpsMean), meanAbs(st.ActDiffMean), meanAbs(st.Cosine)
}

func meanAbs(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		s += x
	}
	return s / float64(len(v))
}

// MemoryBreakdown is the Fig. 12 accounting: bytes per component on one
// pipeline stage of one replica, at float64 precision (the trainer's
// native width).
type MemoryBreakdown struct {
	ParamBytes      int64 // weights
	GradBytes       int64 // gradient accumulators
	OptimizerBytes  int64 // momentum state
	ActivationBytes int64 // peak in-flight activation stash (1F1B)
	LowRankBytes    int64 // P/Q factor buffers for compression
	ResidualBytes   int64 // lazy-error-propagation residuals
}

// Total sums all components.
func (m MemoryBreakdown) Total() int64 {
	return m.ParamBytes + m.GradBytes + m.OptimizerBytes + m.ActivationBytes +
		m.LowRankBytes + m.ResidualBytes
}

// MemoryPerStage returns the Fig. 12 breakdown for each stage of replica 0.
func (t *Trainer) MemoryPerStage() []MemoryBreakdown {
	cfg := t.cfg
	out := make([]MemoryBreakdown, cfg.Stages)
	b := cfg.MicroBatch
	h := cfg.Model.Hidden
	actPerMicroPerBlock := int64(3*b*h) * 8 // linear input, LN xHat, pre-GELU
	for s, stage := range t.replicas[0] {
		var mb MemoryBreakdown
		mb.ParamBytes = stage.ParamBytes(8)
		mb.GradBytes = mb.ParamBytes
		mb.OptimizerBytes = mb.ParamBytes // momentum mirrors parameters
		peak := int64(t.sched.PeakInFlight(s))
		mb.ActivationBytes = peak * actPerMicroPerBlock * int64(len(stage.Blocks))
		if cfg.Opt.CompressBackprop && s > 0 {
			r := cfg.Opt.CBRank
			if r > b {
				r = b
			}
			mb.LowRankBytes = int64(r*(b+h)) * 8 // P (b×r) + Q (h×r)
			if cfg.Opt.LazyErrorPropagation {
				mb.ResidualBytes = t.cb[0][s].ResidualBytes()
				if mb.ResidualBytes == 0 {
					mb.ResidualBytes = int64(b*h) * 8 // pre-first-send estimate
				}
			}
		}
		out[s] = mb
	}
	return out
}
