package train

import (
	"repro/internal/tensor"
)

// StatsWindow is the default number of per-send samples each Stats
// series retains. The series themselves are bounded — a long run would
// otherwise grow them without limit, one float64 per compressed send —
// while the Summary aggregates stay exact over every record ever made
// (running count + Σ|x| per series, not a windowed approximation).
const StatsWindow = 4096

// Stats collects the Fig. 11 evidence for the Eq. 14 conditions: the
// compression error ε⁽ⁱ⁾ has near-zero mean, consecutive-micro-batch
// activation differences Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾ have near-zero mean, and the two are
// uncorrelated (cosine similarity around zero).
//
// The exported series hold the most recent StatsWindow samples each
// (oldest discarded); Summary and Count cover the full history.
type Stats struct {
	EpsMean     []float64 // Avg(ε⁽ⁱ⁾) per compressed send (last window)
	ActDiffMean []float64 // Avg(Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾) per consecutive pair (last window)
	Cosine      []float64 // cos(ε⁽ⁱ⁾, Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾) (last window)

	window                          int
	epsN, actN, cosN                int64
	epsSumAbs, actSumAbs, cosSumAbs float64

	prevAct *tensor.Matrix
	prevErr *tensor.Matrix
}

// NewStats returns an empty collector with the default window.
func NewStats() *Stats { return &Stats{window: StatsWindow} }

// SetWindow overrides the per-series retention (n ≥ 1; tests use small
// windows to exercise the cap). Call before recording.
func (st *Stats) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	st.window = n
}

// Count returns how many compressed sends have been recorded in total —
// use this, not len(EpsMean), for progress reporting: the series is
// windowed.
func (st *Stats) Count() int64 { return st.epsN }

// appendBounded appends v, discarding the oldest sample beyond the
// window, and feeds the series' exact running aggregates.
func (st *Stats) appendBounded(series *[]float64, v float64, n *int64, sumAbs *float64) {
	*n++
	if v < 0 {
		*sumAbs -= v
	} else {
		*sumAbs += v
	}
	s := *series
	if len(s) >= st.window {
		// Shift within the existing array: the window is small and this
		// keeps the slice allocation-stable at capacity == window.
		copy(s, s[len(s)-st.window+1:])
		s = s[:st.window-1]
	}
	*series = append(s, v)
}

// Record logs one compressed backward send: g is the true activation
// gradient, recon its reconstruction, act the forward activation at the
// same boundary.
func (st *Stats) Record(g, recon, act *tensor.Matrix) {
	err := g.Clone()
	err.Sub(recon)
	st.appendBounded(&st.EpsMean, err.Mean(), &st.epsN, &st.epsSumAbs)
	if st.prevAct != nil && st.prevAct.Rows == act.Rows && st.prevAct.Cols == act.Cols {
		diff := st.prevAct.Clone()
		diff.Sub(act)
		st.appendBounded(&st.ActDiffMean, diff.Mean(), &st.actN, &st.actSumAbs)
		st.appendBounded(&st.Cosine, tensor.CosineSimilarity(st.prevErr.Data, diff.Data), &st.cosN, &st.cosSumAbs)
	}
	st.prevAct = act.Clone()
	st.prevErr = err
}

// Summary returns the mean absolute values of the three series — the
// numbers Fig. 11 shows hovering near zero — computed over every record
// ever made, not just the retained window.
func (st *Stats) Summary() (epsMeanAbs, actDiffMeanAbs, cosineAbs float64) {
	return ratio(st.epsSumAbs, st.epsN), ratio(st.actSumAbs, st.actN), ratio(st.cosSumAbs, st.cosN)
}

func ratio(sum float64, n int64) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MemoryBreakdown is the Fig. 12 accounting: bytes per component on one
// pipeline stage of one replica, at float64 precision (the trainer's
// native width).
type MemoryBreakdown struct {
	ParamBytes      int64 // weights
	GradBytes       int64 // gradient accumulators
	OptimizerBytes  int64 // momentum state
	ActivationBytes int64 // peak in-flight activation stash (1F1B)
	LowRankBytes    int64 // P/Q factor buffers for compression
	ResidualBytes   int64 // lazy-error-propagation residuals
}

// Total sums all components.
func (m MemoryBreakdown) Total() int64 {
	return m.ParamBytes + m.GradBytes + m.OptimizerBytes + m.ActivationBytes +
		m.LowRankBytes + m.ResidualBytes
}

// MemoryPerStage returns the Fig. 12 breakdown for each stage of replica 0.
func (t *Trainer) MemoryPerStage() []MemoryBreakdown {
	cfg := t.cfg
	out := make([]MemoryBreakdown, cfg.Stages)
	b := cfg.MicroBatch
	h := cfg.Model.Hidden
	actPerMicroPerBlock := int64(3*b*h) * 8 // linear input, LN xHat, pre-GELU
	for s, stage := range t.replicas[0] {
		var mb MemoryBreakdown
		mb.ParamBytes = stage.ParamBytes(8)
		mb.GradBytes = mb.ParamBytes
		mb.OptimizerBytes = mb.ParamBytes // momentum mirrors parameters
		peak := int64(t.sched.PeakInFlight(s))
		mb.ActivationBytes = peak * actPerMicroPerBlock * int64(len(stage.Blocks))
		if cfg.Opt.CompressBackprop && s > 0 {
			r := cfg.Opt.CBRank
			if r > b {
				r = b
			}
			mb.LowRankBytes = int64(r*(b+h)) * 8 // P (b×r) + Q (h×r)
			if cfg.Opt.LazyErrorPropagation {
				mb.ResidualBytes = t.cb[0][s].ResidualBytes()
				if mb.ResidualBytes == 0 {
					mb.ResidualBytes = int64(b*h) * 8 // pre-first-send estimate
				}
			}
		}
		out[s] = mb
	}
	return out
}
