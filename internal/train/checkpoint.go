package train

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Checkpointing: serialize and restore replica-0 model weights. Because
// all DP replicas hold identical weights (an invariant the tests assert),
// one replica's weights restore the whole trainer; optimizer momentum is
// deliberately not persisted, matching how pretraining checkpoints are
// typically consumed for evaluation.
//
// Format: a small header (magic, version, matrix count), then each matrix
// as rows/cols/float64 data, little-endian.

const (
	checkpointMagic   = 0x4f437043 // "OpCC"
	checkpointVersion = 1
)

// SaveCheckpoint writes replica 0's weights to w.
func (t *Trainer) SaveCheckpoint(w io.Writer) error {
	var mats []*tensor.Matrix
	for _, s := range t.replicas[0] {
		mats = append(mats, s.Params()...)
	}
	hdr := []uint32{checkpointMagic, checkpointVersion, uint32(len(mats))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("train: checkpoint header: %w", err)
		}
	}
	for i, m := range mats {
		if err := binary.Write(w, binary.LittleEndian, uint32(m.Rows)); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(m.Cols)); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, m.Data); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
	}
	return nil
}

// LoadCheckpoint restores weights from r into every replica. The
// trainer's architecture must match the checkpoint's.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	var magic, version, count uint32
	for _, p := range []*uint32{&magic, &version, &count} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return fmt.Errorf("train: checkpoint header: %w", err)
		}
	}
	if magic != checkpointMagic {
		return fmt.Errorf("train: bad checkpoint magic %#x", magic)
	}
	if version != checkpointVersion {
		return fmt.Errorf("train: unsupported checkpoint version %d", version)
	}
	var mats []*tensor.Matrix
	for _, s := range t.replicas[0] {
		mats = append(mats, s.Params()...)
	}
	if int(count) != len(mats) {
		return fmt.Errorf("train: checkpoint has %d matrices, model has %d", count, len(mats))
	}
	for i, m := range mats {
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
		if int(rows) != m.Rows || int(cols) != m.Cols {
			return fmt.Errorf("train: checkpoint matrix %d shape %dx%d, model wants %dx%d",
				i, rows, cols, m.Rows, m.Cols)
		}
		if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
	}
	// Broadcast to all other replicas, as Megatron broadcasts initial
	// weights to every data-parallel group.
	for d := 1; d < t.cfg.DPGroups; d++ {
		srcIdx := 0
		for _, s := range t.replicas[d] {
			for _, p := range s.Params() {
				p.CopyFrom(mats[srcIdx])
				srcIdx++
			}
		}
	}
	return nil
}

// CheckpointBytes serializes replica 0's weights to a byte slice.
func (t *Trainer) CheckpointBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.SaveCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
