package train

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// Checkpointing: serialize and restore training state. Because all DP
// replicas hold identical weights (an invariant the tests assert), one
// replica's weights restore the whole trainer.
//
// Version 1 persisted weights only — which silently dropped every
// error-feedback residual (the lazy-error-propagation state of §5.1 and
// the DP-sync compressor state of §2.3) and the optimizer momentum, so a
// restored compressed run diverged from an uninterrupted one. Version 2
// persists the full resume state:
//
//	header   magic, version=2, weight-matrix count
//	weights  replica 0's parameters: rows, cols, float64 data each
//	iter     completed iteration count (restores the LR schedule position
//	         and the data-sampling stream, which LoadCheckpoint replays)
//	velocity momentum buffers of replica 0's parameters (index, matrix)
//	cb       per-(group, stage) inter-stage error-feedback residuals and
//	         PowerSGD warm-start Q factors (compressed backpropagation)
//	dpc      per-(stage, group, grad) DP-sync residuals and warm-start
//	         factors (selective stage compression)
//
// All integers are little-endian uint32, matrices are rows/cols/float64
// data. Version 1 checkpoints are still read (weights only). Restoring
// requires the same training configuration the checkpoint was written
// under; with it, a resumed run is bit-identical to an uninterrupted one
// (asserted by TestCheckpointResumeBitIdentical).

const (
	checkpointMagic   = 0x4f437043 // "OpCC"
	checkpointVersion = 2
)

func writeU32s(w io.Writer, vs ...uint32) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readU32s(r io.Reader, ps ...*uint32) error {
	for _, p := range ps {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return nil
}

func writeMat(w io.Writer, m *tensor.Matrix) error {
	if err := writeU32s(w, uint32(m.Rows), uint32(m.Cols)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, m.Data)
}

// maxCheckpointDim bounds any dimension read from a checkpoint; a
// corrupted header must fail with an error, not a runtime panic or a
// multi-gigabyte allocation attempt. The model's largest tensors are
// orders of magnitude below this.
const maxCheckpointDim = 1 << 20

func readMat(r io.Reader) (*tensor.Matrix, error) {
	var rows, cols uint32
	if err := readU32s(r, &rows, &cols); err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 || rows > maxCheckpointDim || cols > maxCheckpointDim ||
		uint64(rows)*uint64(cols) > maxCheckpointDim*16 {
		return nil, fmt.Errorf("implausible matrix shape %dx%d", rows, cols)
	}
	m := tensor.New(int(rows), int(cols))
	if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
		return nil, err
	}
	return m, nil
}

// flatParams returns replica d's parameters as one flat list (the
// checkpoint's matrix order).
func (t *Trainer) flatParams(d int) []*tensor.Matrix {
	var mats []*tensor.Matrix
	for _, s := range t.replicas[d] {
		mats = append(mats, s.Params()...)
	}
	return mats
}

// sortedMats returns ms sorted by shape (the deterministic serialization
// order for per-shape state collected from map-backed stores).
func sortedMats(ms []*tensor.Matrix) []*tensor.Matrix {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Rows != ms[j].Rows {
			return ms[i].Rows < ms[j].Rows
		}
		return ms[i].Cols < ms[j].Cols
	})
	return ms
}

// warmEntry is one PowerSGD warm-start factor with its input-shape key.
type warmEntry struct {
	rows, cols int
	q          *tensor.Matrix
}

func sortedWarm(c *compress.PowerSGD) []warmEntry {
	var es []warmEntry
	c.EachWarmQ(func(rows, cols int, q *tensor.Matrix) {
		es = append(es, warmEntry{rows, cols, q})
	})
	sort.Slice(es, func(i, j int) bool {
		if es[i].rows != es[j].rows {
			return es[i].rows < es[j].rows
		}
		return es[i].cols < es[j].cols
	})
	return es
}

// SaveCheckpoint writes the full training state (format above) to w.
func (t *Trainer) SaveCheckpoint(w io.Writer) error {
	mats := t.flatParams(0)
	if err := writeU32s(w, checkpointMagic, checkpointVersion, uint32(len(mats))); err != nil {
		return fmt.Errorf("train: checkpoint header: %w", err)
	}
	for i, m := range mats {
		if err := writeMat(w, m); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
	}
	if err := writeU32s(w, uint32(t.iter)); err != nil {
		return fmt.Errorf("train: checkpoint iter: %w", err)
	}

	// Optimizer momentum of replica 0 (replicas hold identical state).
	var velIdx []int
	for i, p := range mats {
		if t.opt.Velocity(p) != nil {
			velIdx = append(velIdx, i)
		}
	}
	if err := writeU32s(w, uint32(len(velIdx))); err != nil {
		return fmt.Errorf("train: checkpoint velocity: %w", err)
	}
	for _, i := range velIdx {
		if err := writeU32s(w, uint32(i)); err != nil {
			return fmt.Errorf("train: checkpoint velocity %d: %w", i, err)
		}
		if err := writeMat(w, t.opt.Velocity(mats[i])); err != nil {
			return fmt.Errorf("train: checkpoint velocity %d: %w", i, err)
		}
	}

	// Inter-stage (compressed backpropagation) error-feedback state.
	type cbEntry struct {
		d, s int
		m    *tensor.Matrix
	}
	var cbRes []cbEntry
	var cbWarm []struct {
		d, s int
		e    warmEntry
	}
	for d := range t.cb {
		for s, ef := range t.cb[d] {
			if ef == nil {
				continue
			}
			var ms []*tensor.Matrix
			ef.EachResidual(func(res *tensor.Matrix) { ms = append(ms, res) })
			for _, m := range sortedMats(ms) {
				cbRes = append(cbRes, cbEntry{d, s, m})
			}
			if ps, ok := ef.Inner().(*compress.PowerSGD); ok {
				for _, e := range sortedWarm(ps) {
					cbWarm = append(cbWarm, struct {
						d, s int
						e    warmEntry
					}{d, s, e})
				}
			}
		}
	}
	if err := writeU32s(w, uint32(len(cbRes))); err != nil {
		return fmt.Errorf("train: checkpoint cb residuals: %w", err)
	}
	for _, e := range cbRes {
		if err := writeU32s(w, uint32(e.d), uint32(e.s)); err != nil {
			return fmt.Errorf("train: checkpoint cb residual: %w", err)
		}
		if err := writeMat(w, e.m); err != nil {
			return fmt.Errorf("train: checkpoint cb residual: %w", err)
		}
	}
	if err := writeU32s(w, uint32(len(cbWarm))); err != nil {
		return fmt.Errorf("train: checkpoint cb warm: %w", err)
	}
	for _, e := range cbWarm {
		if err := writeU32s(w, uint32(e.d), uint32(e.s), uint32(e.e.rows), uint32(e.e.cols)); err != nil {
			return fmt.Errorf("train: checkpoint cb warm: %w", err)
		}
		if err := writeMat(w, e.e.q); err != nil {
			return fmt.Errorf("train: checkpoint cb warm: %w", err)
		}
	}

	// DP-sync (selective stage compression) error-feedback state, keyed
	// (stage, group, grad) in sorted order.
	keys := make([][3]int, 0, len(t.dpc))
	t.dpcMu.Lock()
	for k := range t.dpc {
		keys = append(keys, k)
	}
	t.dpcMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		if keys[i][1] != keys[j][1] {
			return keys[i][1] < keys[j][1]
		}
		return keys[i][2] < keys[j][2]
	})
	type dpcResEntry struct {
		k [3]int
		m *tensor.Matrix
	}
	var dpcRes []dpcResEntry
	var dpcWarm []struct {
		k [3]int
		e warmEntry
	}
	for _, k := range keys {
		ef := t.dpEF(k[0], k[1], k[2])
		var ms []*tensor.Matrix
		ef.EachResidual(func(res *tensor.Matrix) { ms = append(ms, res) })
		for _, m := range sortedMats(ms) {
			dpcRes = append(dpcRes, dpcResEntry{k, m})
		}
		if ps, ok := ef.Inner().(*compress.PowerSGD); ok {
			for _, e := range sortedWarm(ps) {
				dpcWarm = append(dpcWarm, struct {
					k [3]int
					e warmEntry
				}{k, e})
			}
		}
	}
	if err := writeU32s(w, uint32(len(dpcRes))); err != nil {
		return fmt.Errorf("train: checkpoint dp residuals: %w", err)
	}
	for _, e := range dpcRes {
		if err := writeU32s(w, uint32(e.k[0]), uint32(e.k[1]), uint32(e.k[2])); err != nil {
			return fmt.Errorf("train: checkpoint dp residual: %w", err)
		}
		if err := writeMat(w, e.m); err != nil {
			return fmt.Errorf("train: checkpoint dp residual: %w", err)
		}
	}
	if err := writeU32s(w, uint32(len(dpcWarm))); err != nil {
		return fmt.Errorf("train: checkpoint dp warm: %w", err)
	}
	for _, e := range dpcWarm {
		if err := writeU32s(w, uint32(e.k[0]), uint32(e.k[1]), uint32(e.k[2]),
			uint32(e.e.rows), uint32(e.e.cols)); err != nil {
			return fmt.Errorf("train: checkpoint dp warm: %w", err)
		}
		if err := writeMat(w, e.e.q); err != nil {
			return fmt.Errorf("train: checkpoint dp warm: %w", err)
		}
	}
	return nil
}

// LoadCheckpoint restores state from r into every replica. The trainer's
// configuration must match the checkpoint's. Version 1 checkpoints
// restore weights only; version 2 restores the full resume state,
// leaving the trainer bit-identical to the one that saved it.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	var magic, version, count uint32
	if err := readU32s(r, &magic, &version, &count); err != nil {
		return fmt.Errorf("train: checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("train: bad checkpoint magic %#x", magic)
	}
	if version != 1 && version != checkpointVersion {
		return fmt.Errorf("train: unsupported checkpoint version %d", version)
	}
	mats := t.flatParams(0)
	if int(count) != len(mats) {
		return fmt.Errorf("train: checkpoint has %d matrices, model has %d", count, len(mats))
	}
	for i, m := range mats {
		var rows, cols uint32
		if err := readU32s(r, &rows, &cols); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
		if int(rows) != m.Rows || int(cols) != m.Cols {
			return fmt.Errorf("train: checkpoint matrix %d shape %dx%d, model wants %dx%d",
				i, rows, cols, m.Rows, m.Cols)
		}
		if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
			return fmt.Errorf("train: checkpoint matrix %d: %w", i, err)
		}
	}
	// Broadcast to all other replicas, as Megatron broadcasts initial
	// weights to every data-parallel group.
	for d := 1; d < t.cfg.DPGroups; d++ {
		for i, p := range t.flatParams(d) {
			p.CopyFrom(mats[i])
		}
	}
	if version == 1 {
		return nil
	}

	var iter uint32
	if err := readU32s(r, &iter); err != nil {
		return fmt.Errorf("train: checkpoint iter: %w", err)
	}
	t.restoreSampling(int(iter))
	// A non-fresh trainer may hold optimizer and compressor state the
	// checkpoint does not mention (momentum for parameters the saved run
	// never stepped, residuals or warm-start factors for shapes it never
	// compressed). Clear it all first so the restored trainer equals the
	// saved one exactly rather than a merge of the two runs.
	t.resetResumeState()

	var nVel uint32
	if err := readU32s(r, &nVel); err != nil {
		return fmt.Errorf("train: checkpoint velocity: %w", err)
	}
	perReplica := make([][]*tensor.Matrix, t.cfg.DPGroups)
	for d := range perReplica {
		perReplica[d] = t.flatParams(d)
	}
	for i := uint32(0); i < nVel; i++ {
		var idx uint32
		if err := readU32s(r, &idx); err != nil {
			return fmt.Errorf("train: checkpoint velocity %d: %w", i, err)
		}
		v, err := readMat(r)
		if err != nil {
			return fmt.Errorf("train: checkpoint velocity %d: %w", i, err)
		}
		if int(idx) >= len(mats) {
			return fmt.Errorf("train: checkpoint velocity index %d outside %d params", idx, len(mats))
		}
		// Replicas hold identical optimizer state (they see identical
		// synchronized gradients), so one saved buffer restores all.
		for d := range perReplica {
			t.opt.SetVelocity(perReplica[d][idx], v)
		}
	}

	var nCBRes uint32
	if err := readU32s(r, &nCBRes); err != nil {
		return fmt.Errorf("train: checkpoint cb residuals: %w", err)
	}
	for i := uint32(0); i < nCBRes; i++ {
		var d, s uint32
		if err := readU32s(r, &d, &s); err != nil {
			return fmt.Errorf("train: checkpoint cb residual %d: %w", i, err)
		}
		res, err := readMat(r)
		if err != nil {
			return fmt.Errorf("train: checkpoint cb residual %d: %w", i, err)
		}
		ef, err := t.cbFor(int(d), int(s))
		if err != nil {
			return err
		}
		ef.SetResidual(res)
	}
	var nCBWarm uint32
	if err := readU32s(r, &nCBWarm); err != nil {
		return fmt.Errorf("train: checkpoint cb warm: %w", err)
	}
	for i := uint32(0); i < nCBWarm; i++ {
		var d, s, rows, cols uint32
		if err := readU32s(r, &d, &s, &rows, &cols); err != nil {
			return fmt.Errorf("train: checkpoint cb warm %d: %w", i, err)
		}
		q, err := readMat(r)
		if err != nil {
			return fmt.Errorf("train: checkpoint cb warm %d: %w", i, err)
		}
		ef, err := t.cbFor(int(d), int(s))
		if err != nil {
			return err
		}
		ps, ok := ef.Inner().(*compress.PowerSGD)
		if !ok {
			return fmt.Errorf("train: checkpoint has PowerSGD warm state but boundary (%d,%d) runs %s", d, s, ef.Inner().Name())
		}
		ps.SetWarmQ(int(rows), int(cols), q)
	}

	var nDPRes uint32
	if err := readU32s(r, &nDPRes); err != nil {
		return fmt.Errorf("train: checkpoint dp residuals: %w", err)
	}
	for i := uint32(0); i < nDPRes; i++ {
		var s, dd, gi uint32
		if err := readU32s(r, &s, &dd, &gi); err != nil {
			return fmt.Errorf("train: checkpoint dp residual %d: %w", i, err)
		}
		res, err := readMat(r)
		if err != nil {
			return fmt.Errorf("train: checkpoint dp residual %d: %w", i, err)
		}
		ef, err := t.dpEFFor(int(s), int(dd), int(gi))
		if err != nil {
			return err
		}
		ef.SetResidual(res)
	}
	var nDPWarm uint32
	if err := readU32s(r, &nDPWarm); err != nil {
		return fmt.Errorf("train: checkpoint dp warm: %w", err)
	}
	for i := uint32(0); i < nDPWarm; i++ {
		var s, dd, gi, rows, cols uint32
		if err := readU32s(r, &s, &dd, &gi, &rows, &cols); err != nil {
			return fmt.Errorf("train: checkpoint dp warm %d: %w", i, err)
		}
		q, err := readMat(r)
		if err != nil {
			return fmt.Errorf("train: checkpoint dp warm %d: %w", i, err)
		}
		ef, err := t.dpEFFor(int(s), int(dd), int(gi))
		if err != nil {
			return err
		}
		ps, ok := ef.Inner().(*compress.PowerSGD)
		if !ok {
			return fmt.Errorf("train: checkpoint has PowerSGD warm state but DP key (%d,%d,%d) runs %s", s, dd, gi, ef.Inner().Name())
		}
		ps.SetWarmQ(int(rows), int(cols), q)
	}
	return nil
}

// resetResumeState drops every piece of mutable training state the v2
// checkpoint sections describe: optimizer momentum, error-feedback
// residuals, and PowerSGD warm-start factors, on both the inter-stage
// and the DP-sync compressors.
func (t *Trainer) resetResumeState() {
	t.opt.ResetVelocity()
	resetEF := func(ef *compress.ErrorFeedback) {
		ef.Reset()
		if ps, ok := ef.Inner().(*compress.PowerSGD); ok {
			ps.ResetWarm()
		}
	}
	for d := range t.cb {
		for _, ef := range t.cb[d] {
			if ef != nil {
				resetEF(ef)
			}
		}
	}
	t.dpcMu.Lock()
	efs := make([]*compress.ErrorFeedback, 0, len(t.dpc))
	for _, ef := range t.dpc {
		efs = append(efs, ef)
	}
	t.dpcMu.Unlock()
	for _, ef := range efs {
		resetEF(ef)
	}
}

// cbFor returns the inter-stage error-feedback compressor for boundary
// (d, s), erroring when the configuration has no such state (a
// checkpoint/config mismatch).
func (t *Trainer) cbFor(d, s int) (*compress.ErrorFeedback, error) {
	if d < 0 || d >= len(t.cb) || s < 0 || s >= len(t.cb[d]) || t.cb[d][s] == nil {
		return nil, fmt.Errorf("train: checkpoint carries compressed-backprop state for boundary (%d,%d) the configuration does not have", d, s)
	}
	return t.cb[d][s], nil
}

// dpEFFor validates a checkpoint's DP-sync state key against the
// configuration before resolving the compressor — dpEF itself would
// silently fabricate state for any key (it exists for lazy creation on
// the sync path), which would mask a checkpoint/config mismatch.
func (t *Trainer) dpEFFor(s, dd, gi int) (*compress.ErrorFeedback, error) {
	if s < 0 || s >= t.cfg.Stages || dd < 0 || dd >= t.cfg.DPGroups ||
		gi < 0 || gi >= len(t.grads[0][s]) ||
		!t.plan.DPCompressed(s) || !compressibleShape(t.grads[0][s][gi]) {
		return nil, fmt.Errorf("train: checkpoint carries DP-sync compressor state for key (%d,%d,%d) the configuration does not have", s, dd, gi)
	}
	return t.dpEF(s, dd, gi), nil
}

// restoreSampling rewinds the trainer to iteration iter: the iteration
// counter (which also positions a warm-up LR schedule) and the data
// stream, replayed by drawing exactly the batches the saved run drew —
// sampling is the trainer's only RNG consumer, so the stream position is
// fully determined by (seed, iterations completed).
func (t *Trainer) restoreSampling(iter int) {
	cfg := t.cfg
	t.rng = rand.New(rand.NewSource(cfg.Seed))
	for it := 0; it < iter; it++ {
		for d := 0; d < cfg.DPGroups; d++ {
			for mi := 0; mi < cfg.MicroBatches; mi++ {
				t.corpus.SampleBatch(t.rng, cfg.MicroBatch, cfg.Model.Context)
			}
		}
	}
	t.iter = iter
}

// CheckpointBytes serializes the training state to a byte slice.
func (t *Trainer) CheckpointBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.SaveCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
