package train

import "fmt"

// Engine selects how a training iteration executes. It replaced the
// DisableCollective/DisablePipeline negative booleans in PR 4; the
// deprecated aliases have since been removed, and Engine is the only
// knob.
type Engine int

// Engines, from most to least machinery.
const (
	// EngineAuto resolves to EnginePipelined (the default execution
	// stack).
	EngineAuto Engine = iota
	// EnginePipelined runs micro-batches on the 1F1B executor — one
	// goroutine per (dp group, stage) rank over the collective
	// runtime's point-to-point transport — and the sync phases on the
	// ring collectives. On a single-stage grid the micro-batch loop
	// degenerates to serial (there is no pipeline), but sync stays on
	// the runtime.
	EnginePipelined
	// EngineSerial runs the serial in-loop micro-batch path while sync
	// still executes (and is accounted) on the collective runtime —
	// the pipeline-executor oracle.
	EngineSerial
	// EngineReference runs everything serially with in-place
	// reductions and no collective runtime at all — the bit-identity
	// oracle for the whole communication stack. No traffic accounting.
	EngineReference
)

// engineNames maps flag spellings to engines (see ParseEngine).
var engineNames = map[string]Engine{
	"auto":      EngineAuto,
	"pipelined": EnginePipelined,
	"serial":    EngineSerial,
	"reference": EngineReference,
}

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EnginePipelined:
		return "pipelined"
	case EngineSerial:
		return "serial"
	case EngineReference:
		return "reference"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves a flag spelling ("auto", "pipelined", "serial",
// "reference") to an Engine.
func ParseEngine(s string) (Engine, error) {
	if e, ok := engineNames[s]; ok {
		return e, nil
	}
	return EngineAuto, fmt.Errorf("train: unknown engine %q (want auto, pipelined, serial, or reference)", s)
}

// ResolvedEngine maps the configuration onto a concrete engine:
// EngineAuto becomes EnginePipelined, everything else is taken as is.
func (c Config) ResolvedEngine() Engine {
	if c.Engine == EngineAuto {
		return EnginePipelined
	}
	return c.Engine
}

// DPSyncMode selects how data-parallel gradient synchronization
// executes on the runtime-backed engines.
type DPSyncMode int

// DP-sync modes.
const (
	// DPSyncAuto resolves to DPSyncOverlapped.
	DPSyncAuto DPSyncMode = iota
	// DPSyncOverlapped issues each stage's bucketed all-reduces — via
	// the collective async handles — as soon as that stage's gradients
	// are final, while other stages are still inside the backward pass,
	// and waits on every handle just before the optimizer step. The
	// reduction schedule per gradient is unchanged, so results are
	// bit-identical to every other mode.
	DPSyncOverlapped
	// DPSyncBlocking runs the same bucket schedule as one barrier after
	// the whole backward pass, waiting each bucket's collectives before
	// issuing the next — the un-overlapped baseline the -overlap-bench
	// comparison measures against.
	DPSyncBlocking
)

func (m DPSyncMode) String() string {
	switch m {
	case DPSyncAuto:
		return "auto"
	case DPSyncOverlapped:
		return "overlapped"
	case DPSyncBlocking:
		return "blocking"
	}
	return fmt.Sprintf("DPSyncMode(%d)", int(m))
}

// ResolvedDPSync maps the configuration onto a concrete DP-sync mode.
func (c Config) ResolvedDPSync() DPSyncMode {
	if c.DPSync == DPSyncAuto {
		return DPSyncOverlapped
	}
	return c.DPSync
}
