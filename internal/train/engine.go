package train

import "fmt"

// Engine selects how a training iteration executes. It replaces the
// DisableCollective/DisablePipeline negative booleans with one positive
// knob; the old fields remain for one release as deprecated aliases that
// Config.Validate maps onto the enum (see ResolvedEngine).
type Engine int

// Engines, from most to least machinery.
const (
	// EngineAuto resolves to EnginePipelined (the default execution
	// stack), unless a deprecated Disable* alias demotes it.
	EngineAuto Engine = iota
	// EnginePipelined runs micro-batches on the 1F1B executor — one
	// goroutine per (dp group, stage) rank over the collective
	// runtime's point-to-point transport — and the sync phases on the
	// ring collectives. On a single-stage grid the micro-batch loop
	// degenerates to serial (there is no pipeline), but sync stays on
	// the runtime.
	EnginePipelined
	// EngineSerial runs the serial in-loop micro-batch path while sync
	// still executes (and is accounted) on the collective runtime —
	// the pipeline-executor oracle.
	EngineSerial
	// EngineReference runs everything serially with in-place
	// reductions and no collective runtime at all — the bit-identity
	// oracle for the whole communication stack. No traffic accounting.
	EngineReference
)

// engineNames maps flag spellings to engines (see ParseEngine).
var engineNames = map[string]Engine{
	"auto":      EngineAuto,
	"pipelined": EnginePipelined,
	"serial":    EngineSerial,
	"reference": EngineReference,
}

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EnginePipelined:
		return "pipelined"
	case EngineSerial:
		return "serial"
	case EngineReference:
		return "reference"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves a flag spelling ("auto", "pipelined", "serial",
// "reference") to an Engine.
func ParseEngine(s string) (Engine, error) {
	if e, ok := engineNames[s]; ok {
		return e, nil
	}
	return EngineAuto, fmt.Errorf("train: unknown engine %q (want auto, pipelined, serial, or reference)", s)
}

// ResolvedEngine maps the configuration — including the deprecated
// DisableCollective/DisablePipeline aliases — onto a concrete engine.
// An explicit Engine wins; the aliases only apply under EngineAuto
// (setting both an explicit engine and an alias is a Validate error).
func (c Config) ResolvedEngine() Engine {
	if c.Engine != EngineAuto {
		return c.Engine
	}
	switch {
	case c.DisableCollective:
		return EngineReference
	case c.DisablePipeline:
		return EngineSerial
	}
	return EnginePipelined
}
