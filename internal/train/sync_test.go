package train

import (
	"testing"

	"repro/internal/core"
)

// TestSyncWorkersBitIdentical pins the worker-pool fan-out contract:
// stage-parallel gradient synchronization produces bit-identical weights
// to the serial order, because stages share no tensors and each
// (stage, group, grad) compressor is private.
func TestSyncWorkersBitIdentical(t *testing.T) {
	c := testCorpus(t)
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2

	serial := testConfig(opt)
	serial.SyncWorkers = 1
	parallel := testConfig(opt)
	parallel.SyncWorkers = 0 // GOMAXPROCS

	a, err := New(serial, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(parallel, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		la, lb := a.TrainIteration(), b.TrainIteration()
		if la != lb {
			t.Fatalf("iteration %d: losses diverged (%v vs %v)", i, la, lb)
		}
	}
	for s := 0; s < serial.Stages; s++ {
		pa := a.replicas[0][s].Params()
		pb := b.replicas[0][s].Params()
		for i := range pa {
			if !pa[i].Equal(pb[i], 0) {
				t.Fatalf("stage %d param %d differs between serial and parallel sync", s, i)
			}
		}
	}
}

// TestSyncSteadyStateReusesPool asserts the zero-allocation design goal at
// the trainer level: after the first iteration warms the workspaces, the
// sync path's pool traffic is all hits.
func TestSyncSteadyStateReusesPool(t *testing.T) {
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	cfg := testConfig(opt)
	// The serial micro-batch loop with blocking sync keeps pool traffic
	// deterministic. The 1F1B executor's concurrent ranks — and
	// overlapped sync's concurrent per-stage rings — may fault in an
	// extra same-shape buffer whenever their operations happen to
	// overlap: a one-time high-water-mark growth, not a steady-state
	// leak (the leak tests and zero-alloc sync tests cover those paths).
	cfg.Engine = EngineSerial
	cfg.DPSync = DPSyncBlocking
	tr, err := New(cfg, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	tr.Train(2, nil) // warm-up: first iteration faults workspaces in
	before := tr.Pool().Stats()
	tr.Train(3, nil)
	after := tr.Pool().Stats()
	gets := after.Gets - before.Gets
	hits := after.Hits - before.Hits
	if gets == 0 {
		t.Fatal("pool unused on the sync path")
	}
	if hits != gets {
		t.Fatalf("steady state missed the pool: %d gets, %d hits", gets, hits)
	}
}
