// Package train executes real distributed training of the stand-in
// language model under 3D-parallelism semantics, with the Optimus-CC
// techniques applied to genuine tensors:
//
//   - Pipeline parallelism: the model is split into stages; micro-batches
//     flow through per the 1F1B schedule, and the inter-stage backward
//     traffic is the actual activation-gradient matrix.
//   - Compressed backpropagation (§5): that matrix is compressed with
//     PowerSGD (or top-k), optionally with lazy error propagation (§5.1,
//     residuals carried to the next micro-batch) and epilogue-only
//     compression (§5.2, driven by the schedule's phase classification).
//   - Data parallelism: DPGroups replicas train on disjoint batches; their
//     gradients are averaged (optionally compressed with error feedback,
//     restricted by selective stage compression, §7).
//   - Embedding synchronization (§6): the tied table's gradients from the
//     first and last stages are combined, either in two phases (baseline)
//     or fused; the two are mathematically identical, which tests assert.
//
// Micro-batches execute on the 1F1B pipeline executor by default: one
// goroutine per (dp group, stage) rank drives the schedule's ops in
// order, shipping forward activations and backward activation-gradients
// over the collective runtime's point-to-point transport (pipeline.go).
// The serial in-loop path remains as the EngineSerial oracle; both are
// bit-identical (per-stage gradient accumulation, per-boundary compressor
// state, and per-group losses all follow micro-batch order on both
// paths), so runs are bit-reproducible given a seed on either.
//
// Data-parallel synchronization overlaps with the backward pass by
// default: the compiled plan carves each stage's gradients into
// byte-budgeted buckets, and the moment a stage's gradients are final on
// every group its buckets are issued as asynchronous ring all-reduces
// (overlap.go); the iteration waits on every handle before the optimizer
// step. Config.DPSync selects the blocking barrier instead; both modes
// and the fully serial EngineReference oracle are bit-identical.
package train

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// Config fully describes a training run.
type Config struct {
	Model        model.Config
	Stages       int // pipeline-parallel ways
	DPGroups     int // data-parallel ways
	MicroBatch   int // samples per micro-batch
	MicroBatches int // micro-batches per DP group per iteration
	Opt          core.Config

	LR       float64
	Momentum float64
	Clip     float64
	// Schedule, when non-nil, overrides LR per iteration (e.g.
	// model.WarmupCosine — the §9.1 warm-up practice).
	Schedule model.LRSchedule

	// CollectStats enables Fig. 11 error/activation tracking (boundary 0).
	CollectStats bool
	// ParallelGroups executes data-parallel groups on separate goroutines.
	// Batches are pre-sampled in a fixed order first, so results are
	// bit-identical to the sequential mode (which tests assert).
	ParallelGroups bool
	// SyncWorkers bounds the worker pool that fans DP-group×stage gradient
	// synchronization out over independent stages (0 = GOMAXPROCS,
	// 1 = serial). Results are bit-identical at any setting.
	SyncWorkers int
	// Engine selects the execution stack: the 1F1B executor over the
	// collective runtime (default), the serial loop over the runtime, or
	// the fully serial reference oracle. All engines are bit-identical
	// (asserted by tests); only the runtime-backed ones execute and
	// account real per-rank traffic.
	Engine Engine
	// DPSync selects overlapped (default) vs blocking data-parallel
	// gradient synchronization on the runtime-backed engines. Both run
	// the plan's bucket schedule and are bit-identical; only the timing
	// differs (see DPSyncMode).
	DPSync DPSyncMode
	// BucketBytes caps one DP-sync bucket's dense payload
	// (0 = plan.DefaultBucketBytes).
	BucketBytes int64
	// TraceCapacity, when positive, enables executed-run span recording:
	// every rank, collective worker, and the sync driver get a
	// fixed-capacity ring of this many spans (oldest dropped beyond it —
	// ReconcileTrace refuses traces with drops; see TraceCapacityFor for
	// a bound that never drops). Zero disables tracing entirely: the
	// instrumented hot paths take the nil-recorder branch, pinned at
	// 0 allocs/op and within bench noise of the untraced build.
	TraceCapacity int
	Seed          int64

	// Dist, when non-nil, runs this trainer as one rank of a
	// process-per-rank grid over the supplied remote transport (see
	// DistConfig). Multi-stage grids must run the pipelined engine —
	// the serial engines execute whole replicas in-process, which a
	// single-rank process cannot do.
	Dist *DistConfig
}

// DefaultConfig returns the configuration used by the quality experiments:
// a 4-stage, 2-way-data-parallel model large enough to show compression
// effects but small enough to pretrain in seconds.
func DefaultConfig() Config {
	return Config{
		Model:        model.Config{Vocab: 32, Hidden: 48, Context: 3, Blocks: 8, Seed: 7},
		Stages:       4,
		DPGroups:     2,
		MicroBatch:   16,
		MicroBatches: 4,
		Opt:          core.Baseline(),
		LR:           0.35,
		Momentum:     0.9,
		Clip:         1.0,
		Seed:         7,
	}
}

// Validate reports configuration errors, including conflicts between the
// Engine knob and its deprecated Disable* aliases.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.Opt.Validate(); err != nil {
		return err
	}
	switch {
	case c.Stages < 1 || c.Stages > c.Model.Blocks:
		return fmt.Errorf("train: Stages %d outside [1, %d]", c.Stages, c.Model.Blocks)
	case c.DPGroups < 1:
		return fmt.Errorf("train: DPGroups %d < 1", c.DPGroups)
	case c.MicroBatch < 1 || c.MicroBatches < 1:
		return fmt.Errorf("train: micro-batch settings must be ≥ 1")
	case c.LR <= 0:
		return fmt.Errorf("train: LR %v <= 0", c.LR)
	case c.Engine < EngineAuto || c.Engine > EngineReference:
		return fmt.Errorf("train: unknown engine %v", c.Engine)
	case c.DPSync < DPSyncAuto || c.DPSync > DPSyncBlocking:
		return fmt.Errorf("train: unknown DP-sync mode %v", c.DPSync)
	case c.BucketBytes < 0:
		return fmt.Errorf("train: negative BucketBytes %d", c.BucketBytes)
	case c.TraceCapacity < 0:
		return fmt.Errorf("train: negative TraceCapacity %d", c.TraceCapacity)
	}
	if c.Dist != nil {
		tr := c.Dist.Transport
		switch {
		case tr == nil:
			return fmt.Errorf("train: Dist requires a transport")
		case !tr.Remote():
			return fmt.Errorf("train: Dist transport must be remote (process-per-rank)")
		case c.ResolvedEngine() == EngineReference:
			return fmt.Errorf("train: Dist is incompatible with EngineReference (no collective runtime)")
		case c.Stages > 1 && c.ResolvedEngine() != EnginePipelined:
			return fmt.Errorf("train: Dist with Stages > 1 requires the pipelined engine")
		}
		if w, ok := tr.(interface{ World() int }); ok && w.World() != c.DPGroups*c.Stages {
			return fmt.Errorf("train: Dist transport world %d != DPGroups×Stages %d",
				w.World(), c.DPGroups*c.Stages)
		}
	}
	return nil
}

// Trainer holds the replicated pipeline and all compression state.
type Trainer struct {
	cfg Config
	// plan is the compiled communication/compression plan — the single
	// source of truth for which edges compress, which stages' DP sync
	// compresses, and how the embedding synchronizes. The trainer never
	// re-derives placement from cfg.Opt directly.
	plan   *plan.Plan
	engine Engine
	corpus *data.Corpus
	sched  *pipeline.Schedule
	// replicas[d][s] is pipeline stage s of data-parallel group d.
	replicas [][]*model.Stage
	opt      *model.SGD
	rng      *rand.Rand

	// pool recycles every transient matrix of the sync and comm hot paths
	// (averaging buffers, compressor workspaces, reconstructions), making
	// steady-state iterations allocation-free outside the model itself.
	pool *tensor.Pool
	// grads[d][s] / params[d][s] cache the stages' tensor lists, which are
	// rebuilt on every Grads()/Params() call otherwise.
	grads  [][][]*tensor.Matrix
	params [][][]*tensor.Matrix
	// embSkip marks every embedding-table gradient; DP sync skips them
	// (they belong to the §6 embedding-synchronization phase).
	embSkip map[*tensor.Matrix]bool
	// coll is the rank-based collective runtime backing the sync phases
	// (nil under EngineReference or on a single-rank grid).
	coll *collectiveState
	// ov coordinates overlapped bucketed DP synchronization: arrival
	// counting per stage, the in-flight handle table, and the exposed
	// wait-time clock (nil when overlap is off — blocking mode,
	// EngineReference, or a single DP group).
	ov *dpOverlap

	// cb[d][s] compresses the backward send from stage s to s−1 of group
	// d (s ≥ 1). The ErrorFeedback residual IS lazy error propagation.
	cb [][]*compress.ErrorFeedback
	// dpc[s][g] compresses gradient matrix g of stage s (shared input
	// across groups is modeled per group: dpc[s] indexed by d×grad).
	// dpcMu guards lazy creation under the stage-parallel sync fan-out.
	dpc   map[[3]int]*compress.ErrorFeedback
	dpcMu sync.Mutex

	// exec records what the engine actually did, independently of the
	// plan, so crosscheck tests can compare executed placement against
	// the compiled plan and the simulator's prediction.
	exec execLog

	stats *Stats
	iter  int
	// lastLossSum is the last iteration's raw loss sum over the groups
	// this process executed — under Dist a partial sum the coordinator
	// aggregates across processes before normalizing.
	lastLossSum float64

	// rec is the executed-run span recorder (nil unless
	// Config.TraceCapacity > 0). Track layout, with W = DPGroups×Stages:
	// [0, W) engine rank tracks (compute, p2p sends, backprop codec),
	// [W, 2W) collective worker tracks (per-member op execution, DP-sync
	// codec), 2W the driver track (pipeline window, DP drain, embedding
	// sync), 2W+1..2W+3 the per-class op tracks (issue→finish spans).
	rec *obs.Recorder
	// metrics is the trainer's counter registry (always present).
	// dpWait is its "train.dp_sync_exposed_ns" counter: the wall time
	// TrainIteration spent blocked on DP synchronization after the
	// backward pass — the executed "exposed communication" the overlap
	// bench reports. Written only by the iteration goroutine.
	metrics *obs.Registry
	dpWait  *obs.Counter
	iters   *obs.Counter
}

// traceTrack returns rank (d, s)'s engine span track (== the collective
// topology's Rank(d, s) — both are DP-major).
func (t *Trainer) traceTrack(d, s int) int { return d*t.cfg.Stages + s }

// traceWorkerBase/traceDriver/traceOpsBase locate the non-rank tracks.
func (t *Trainer) traceWorkerBase() int { return t.cfg.DPGroups * t.cfg.Stages }
func (t *Trainer) traceDriver() int     { return 2 * t.cfg.DPGroups * t.cfg.Stages }
func (t *Trainer) traceOpsBase() int    { return 2*t.cfg.DPGroups*t.cfg.Stages + 1 }

// execLog captures executed communication decisions: group 0's backward
// edge actions (identical across groups), the DP-sync stage selection,
// and the embedding strategy. bwd[s][mi] is written only by group 0's
// stage-s rank (distinct rows per goroutine), so no locking is needed.
type execLog struct {
	bwd [][]bool
	dp  []bool
	// dpBuckets[s][b] is the aggregate wire volume the runtime actually
	// moved for stage s's bucket b during the last DP sync (zero on the
	// reference engine, which has no transport). Rows are written by one
	// goroutine each — the stage's issuing/syncing goroutine — so no
	// locking is needed.
	dpBuckets [][]int64
	// dpRan reports whether a DP sync executed at all (DPGroups > 1).
	dpRan bool
	emb   plan.EmbeddingStrategy
	// embRan reports whether an embedding sync path executed.
	embRan bool
}

// New builds a trainer over the given corpus. The configuration is
// compiled into a *plan.Plan first (plan.Compile is where every
// placement and compressor-family decision is validated and resolved);
// the trainer then only executes what the plan says.
func New(cfg Config, corpus *data.Corpus) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if corpus.Vocab != cfg.Model.Vocab {
		return nil, fmt.Errorf("train: corpus vocab %d != model vocab %d", corpus.Vocab, cfg.Model.Vocab)
	}
	sched, err := pipeline.OneFOneB(cfg.Stages, cfg.MicroBatches)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:     cfg,
		engine:  cfg.ResolvedEngine(),
		corpus:  corpus,
		sched:   sched,
		opt:     model.NewSGD(cfg.LR, cfg.Momentum, cfg.Clip),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pool:    tensor.NewPool(),
		dpc:     make(map[[3]int]*compress.ErrorFeedback),
		embSkip: make(map[*tensor.Matrix]bool),
		metrics: obs.NewRegistry(),
	}
	t.dpWait = t.metrics.Counter("train.dp_sync_exposed_ns")
	t.iters = t.metrics.Counter("train.iterations")
	if cfg.TraceCapacity > 0 {
		// Built before the collective state and the compressors so both
		// can be wired to it at construction time.
		w := cfg.DPGroups * cfg.Stages
		names := make([]string, 0, 2*w+4)
		for r := 0; r < w; r++ {
			names = append(names, fmt.Sprintf("rank%d", r))
		}
		for r := 0; r < w; r++ {
			names = append(names, fmt.Sprintf("coll%d", r))
		}
		names = append(names, "driver", "ops/dp", "ops/pp", "ops/emb")
		t.rec = obs.NewRecorder(names, cfg.TraceCapacity)
	}
	for d := 0; d < cfg.DPGroups; d++ {
		stages, err := model.NewStages(cfg.Model, cfg.Stages)
		if err != nil {
			return nil, err
		}
		t.replicas = append(t.replicas, stages)
		gRow := make([][]*tensor.Matrix, cfg.Stages)
		pRow := make([][]*tensor.Matrix, cfg.Stages)
		for s, stage := range stages {
			gRow[s] = stage.Grads()
			pRow[s] = stage.Params()
			if eg := stage.EmbeddingGrad(); eg != nil {
				t.embSkip[eg] = true
			}
		}
		t.grads = append(t.grads, gRow)
		t.params = append(t.params, pRow)
	}
	// The run seed (cfg.Seed) drives every compressor sketch, as it
	// always has; the core.Config's own Seed field is normalized to it
	// so the compiled plan's specs carry the effective seed. The grid
	// carries the per-stage gradient channel sizes (embedding channels
	// zeroed — they belong to the §6 phase) so Compile can derive the
	// DP-sync bucket schedule; replicas are built first for exactly this
	// reason.
	opt := cfg.Opt
	opt.Seed = cfg.Seed
	sizes := make([][]int64, cfg.Stages)
	for s := 0; s < cfg.Stages; s++ {
		row := make([]int64, len(t.grads[0][s]))
		for gi, g := range t.grads[0][s] {
			if !t.embSkip[g] {
				row[gi] = g.SizeBytes(compress.ElemBytes)
			}
		}
		sizes[s] = row
	}
	pl, err := plan.Compile(opt, plan.Grid{
		Stages:         cfg.Stages,
		DPGroups:       cfg.DPGroups,
		MicroBatches:   cfg.MicroBatches,
		BoundaryRows:   cfg.MicroBatch,
		BoundaryCols:   cfg.Model.Hidden,
		StageGradBytes: sizes,
		BucketBytes:    cfg.BucketBytes,
	})
	if err != nil {
		return nil, err
	}
	t.plan = pl
	t.exec.bwd = make([][]bool, cfg.Stages)
	for s := range t.exec.bwd {
		t.exec.bwd[s] = make([]bool, cfg.MicroBatches)
	}
	t.exec.dp = make([]bool, cfg.Stages)
	t.exec.dpBuckets = make([][]int64, cfg.Stages)
	for s := range t.exec.dpBuckets {
		t.exec.dpBuckets[s] = make([]int64, pl.BucketCount(s))
	}
	if cfg.Opt.CompressBackprop {
		for d := 0; d < cfg.DPGroups; d++ {
			row := make([]*compress.ErrorFeedback, cfg.Stages)
			for s := 1; s < cfg.Stages; s++ {
				inner, err := compress.Build(pl.CBSpec(d, s))
				if err != nil {
					return nil, fmt.Errorf("train: boundary (%d,%d): %w", d, s, err)
				}
				ef := compress.NewErrorFeedback(inner)
				ef.SetEnabled(pl.LazyErrorPropagation())
				ef.SetPool(t.pool)
				// Backprop codec spans land on the sending rank's track —
				// boundary (d, s) compresses on rank (d, s)'s goroutine.
				ef.SetRecorder(t.rec, t.traceTrack(d, s))
				row[s] = ef
			}
			t.cb = append(t.cb, row)
		}
	}
	if cfg.CollectStats {
		t.stats = NewStats()
	}
	if t.engine != EngineReference && (cfg.DPGroups > 1 || cfg.Stages > 1 || cfg.Dist != nil) {
		t.coll = newCollectiveState(t)
		// A trainer that is dropped without Close (the experiment harness
		// creates dozens) must not pin its rank workers and pool forever:
		// when the trainer becomes unreachable, release the runtime. The
		// runtime never references the trainer, so the cleanup can fire;
		// Close stays the deterministic path and is idempotent.
		runtime.AddCleanup(t, func(rt *collective.Runtime) { rt.Close() }, t.coll.rt)
		if t.rec != nil {
			t.coll.rt.SetRecorder(t.rec, t.traceWorkerBase(), t.traceOpsBase())
			// Tag each stage's DP group so its op spans carry the stage
			// index (DP/<stage> in the trace, matching the simulator).
			for s, g := range t.coll.dp {
				g.SetTag(s)
			}
		}
		if cfg.DPGroups > 1 && cfg.ResolvedDPSync() == DPSyncOverlapped {
			t.ov = newDPOverlap(t)
		}
	}
	return t, nil
}

// Close releases the collective runtime's rank workers. Training must
// not be in flight. Safe on any trainer; idempotent.
func (t *Trainer) Close() {
	if t.coll != nil {
		t.coll.Close()
	}
}

// CollectiveStats snapshots the collective runtime's per-class executed
// traffic (bytes, messages, steps). ok is false when the trainer runs on
// the serial sync path (EngineReference, or a single-rank grid).
func (t *Trainer) CollectiveStats() (s collective.Stats, ok bool) {
	if t.coll == nil {
		return collective.Stats{}, false
	}
	return t.coll.rt.Stats(), true
}

// Stages returns replica 0's stage chain (for evaluation).
func (t *Trainer) Stages() []*model.Stage { return t.replicas[0] }

// Plan returns the compiled communication/compression plan the trainer
// executes.
func (t *Trainer) Plan() *plan.Plan { return t.plan }

// Engine returns the resolved execution engine.
func (t *Trainer) Engine() Engine { return t.engine }

// ExecutedBackwardActions returns the [stage][micro] compression grid
// the engine actually applied to group 0's backward sends during the
// last iteration (a copy; identical across groups by construction —
// the crosscheck tests compare it against the plan and the simulator).
func (t *Trainer) ExecutedBackwardActions() [][]bool {
	out := make([][]bool, len(t.exec.bwd))
	for s := range t.exec.bwd {
		out[s] = append([]bool(nil), t.exec.bwd[s]...)
	}
	return out
}

// ExecutedCompressedStages returns the per-stage DP-sync compression the
// engine actually applied (a copy), and whether a DP sync ran at all.
func (t *Trainer) ExecutedCompressedStages() ([]bool, bool) {
	return append([]bool(nil), t.exec.dp...), t.exec.dpRan
}

// ExecutedEmbedding returns the §6 strategy the engine actually ran,
// and whether an embedding sync executed.
func (t *Trainer) ExecutedEmbedding() (plan.EmbeddingStrategy, bool) {
	return t.exec.emb, t.exec.embRan
}

// ExecutedDPBuckets returns the aggregate wire volume the collective
// runtime actually moved per (stage, bucket) during the last DP sync (a
// copy, aligned with the plan's bucket schedule), and whether a
// runtime-accounted DP sync ran at all (false on the reference engine
// and on single-group grids).
func (t *Trainer) ExecutedDPBuckets() ([][]int64, bool) {
	out := make([][]int64, len(t.exec.dpBuckets))
	for s := range t.exec.dpBuckets {
		out[s] = append([]int64(nil), t.exec.dpBuckets[s]...)
	}
	return out, t.exec.dpRan && t.coll != nil
}

// DPSyncExposedNs returns the cumulative wall time TrainIteration spent
// blocked on data-parallel synchronization after the backward pass — the
// executed exposed communication. Under overlapped sync this is only the
// tail the backward compute could not hide; under blocking sync it is
// the whole synchronization.
func (t *Trainer) DPSyncExposedNs() int64 { return t.dpWait.Load() }

// Recorder returns the executed-run span recorder (nil unless tracing
// is enabled via Config.TraceCapacity).
func (t *Trainer) Recorder() *obs.Recorder { return t.rec }

// Metrics snapshots the trainer's counter registry, folding in the
// collective runtime's per-class traffic, the sparse-reduction
// accounting, and the recorder's span counts at call time.
func (t *Trainer) Metrics() *obs.Registry {
	m := t.metrics
	if t.coll != nil {
		st := t.coll.rt.Stats()
		for _, c := range collective.Classes() {
			cs := st.For(c)
			m.Set("collective."+c.String()+".bytes", cs.Bytes)
			m.Set("collective."+c.String()+".messages", cs.Messages)
			m.Set("collective."+c.String()+".steps", cs.Steps)
		}
		sp := t.coll.rt.SparseReduceStats()
		m.Set("collective.sparse_reduce.ops", sp.SparseOps)
		m.Set("collective.sparse_reduce.dense_fallbacks", sp.DenseFallbacks)
	}
	if t.rec != nil {
		m.Set("trace.spans", t.rec.Count())
		m.Set("trace.dropped", t.rec.Dropped())
	}
	return m
}

// DPSyncMode returns the resolved synchronization mode the trainer runs.
func (t *Trainer) DPSyncMode() DPSyncMode { return t.cfg.ResolvedDPSync() }

// Pool returns the trainer's workspace pool (exposed for benchmarks and
// pool-reuse assertions).
func (t *Trainer) Pool() *tensor.Pool { return t.pool }

// Config returns the trainer's configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Stats returns collected Fig. 11 statistics (nil unless enabled).
func (t *Trainer) Stats() *Stats { return t.stats }

// Iteration returns the number of completed training iterations.
func (t *Trainer) Iteration() int { return t.iter }

// TrainIteration runs one full iteration (all micro-batches on all DP
// groups, gradient synchronization, embedding sync, optimizer step) and
// returns the mean training loss.
func (t *Trainer) TrainIteration() float64 {
	cfg := t.cfg
	// Pre-sample every micro-batch in a fixed order so parallel and
	// sequential group execution see identical data.
	batches := make([][]microBatch, cfg.DPGroups)
	for d := 0; d < cfg.DPGroups; d++ {
		batches[d] = make([]microBatch, cfg.MicroBatches)
		for mi := 0; mi < cfg.MicroBatches; mi++ {
			ctx, tgt := t.corpus.SampleBatch(t.rng, cfg.MicroBatch, cfg.Model.Context)
			batches[d][mi] = microBatch{contexts: ctx, targets: tgt}
		}
	}
	losses := make([]float64, cfg.DPGroups)
	if t.ov != nil {
		t.ov.reset()
	}
	pipeStart := t.rec.Now()
	if t.pipelineActive() {
		t.runPipelined(batches, losses)
	} else {
		t.runSerial(batches, losses)
	}
	t.rec.Record(t.traceDriver(), obs.PhasePipeline, obs.LinkNone, pipeStart, 0, -1, -1, -1)
	var lossSum float64
	for _, l := range losses {
		lossSum += l
	}
	t.lastLossSum = lossSum
	t.syncDataParallel()
	embStart := t.rec.Now()
	t.syncEmbedding()
	t.rec.Record(t.traceDriver(), obs.PhaseEmbSync, obs.LinkEmb, embStart, 0, -1, -1, -1)
	if cfg.Schedule != nil {
		t.opt.LR = cfg.Schedule.LR(t.iter)
	}
	for d := 0; d < cfg.DPGroups; d++ {
		for s := range t.replicas[d] {
			// Under Dist only the local rank's gradients were produced and
			// synchronized; stepping a remote rank's replica would fold in
			// garbage. Every process steps exactly its own stage.
			if !t.localRank(d, s) {
				continue
			}
			optStart := t.rec.Now()
			t.opt.Step(t.params[d][s], t.grads[d][s])
			t.rec.Record(t.traceTrack(d, s), obs.PhaseOpt, obs.LinkNone, optStart, 0, s, d, -1)
		}
	}
	t.iter++
	t.iters.Add(1)
	return lossSum / float64(cfg.DPGroups*cfg.MicroBatches)
}

// pipelineActive reports whether micro-batches execute on the 1F1B
// pipeline executor (multi-stage grid, collective runtime available,
// engine not demoted to a serial loop).
func (t *Trainer) pipelineActive() bool {
	return t.coll != nil && t.cfg.Stages > 1 && t.engine == EnginePipelined
}

// localRank reports whether rank (d, s) executes in this process. Always
// true on in-process transports and the reference engine; under Dist
// exactly one (d, s) is local.
func (t *Trainer) localRank(d, s int) bool {
	if t.coll == nil {
		return true
	}
	return t.coll.rt.LocalRank(t.coll.topo.Rank(d, s))
}

// LastIterationLossSum returns the last iteration's raw (unnormalized)
// loss sum over the DP groups this process executed. In a single-process
// run this is the mean loss × DPGroups×MicroBatches; under Dist each
// process contributes its local group's sum and the launcher divides the
// aggregate by DPGroups×MicroBatches to recover the same mean.
func (t *Trainer) LastIterationLossSum() float64 { return t.lastLossSum }

// runSerial executes every group's micro-batches with the serial
// in-loop path — the pre-executor oracle the pipeline executor is pinned
// against bit for bit.
func (t *Trainer) runSerial(batches [][]microBatch, losses []float64) {
	cfg := t.cfg
	// Under Dist (single-stage grids only — Validate forces the pipelined
	// executor otherwise) each process runs just its own DP group; remote
	// groups' micro-batches execute in their own processes.
	local := make([]int, 0, cfg.DPGroups)
	for d := 0; d < cfg.DPGroups; d++ {
		if t.localRank(d, 0) {
			local = append(local, d)
		}
	}
	runGroup := func(d int) {
		for _, gs := range t.grads[d] {
			for _, g := range gs {
				g.Zero()
			}
		}
		for mi := 0; mi < cfg.MicroBatches; mi++ {
			losses[d] += t.runMicroBatch(d, mi, batches[d][mi])
		}
		// Average gradient over micro-batches (each micro's loss gradient
		// is already 1/MicroBatch). Stages finalize in reverse-backward
		// order — the order the last backward wave touched them — so
		// under overlapped DP sync each stage's buckets go on the wire
		// while the remaining stages are still being finalized.
		inv := 1.0 / float64(cfg.MicroBatches)
		for s := cfg.Stages - 1; s >= 0; s-- {
			for _, g := range t.grads[d][s] {
				g.Scale(inv)
			}
			t.dpStageReady(s)
		}
	}
	if cfg.ParallelGroups && len(local) > 1 {
		var wg sync.WaitGroup
		for _, d := range local {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				runGroup(d)
			}(d)
		}
		wg.Wait()
	} else {
		for _, d := range local {
			runGroup(d)
		}
	}
}

// microBatch is one pre-sampled (contexts, targets) pair.
type microBatch struct {
	contexts [][]int
	targets  []int
}

// runMicroBatch executes forward + backward for one micro-batch on one DP
// group, applying compressed backpropagation to the inter-stage backward
// traffic.
func (t *Trainer) runMicroBatch(d, mi int, mb microBatch) float64 {
	cfg := t.cfg
	stages := t.replicas[d]
	contexts, targets := mb.contexts, mb.targets

	// Forward wave (uncompressed: §5 notes compressing forward traffic
	// breaks convergence). Each boundary crossing is a real inter-stage
	// transfer and is accounted on the pipeline link class just like the
	// backward sends — the fwd+bwd sum is what the simnet prediction and
	// the executable 1F1B executor both count.
	acts := make([]*tensor.Matrix, cfg.Stages)
	fStart := t.rec.Now()
	h := stages[0].ForwardTokens(contexts)
	t.rec.Record(t.traceTrack(d, 0), obs.PhaseFwd, obs.LinkNone, fStart, 0, 0, d, mi)
	acts[0] = h
	for s := 1; s < cfg.Stages; s++ {
		t.accountForward(d, s, mi, h.SizeBytes(compress.ElemBytes))
		fStart = t.rec.Now()
		h = stages[s].ForwardHidden(h)
		t.rec.Record(t.traceTrack(d, s), obs.PhaseFwd, obs.LinkNone, fStart, 0, s, d, mi)
		acts[s] = h
	}
	last := stages[cfg.Stages-1]
	logits := last.Logits(h)
	loss, dLogits := model.CrossEntropy(logits, targets)

	// Backward wave with compressed backpropagation on each boundary.
	var g *tensor.Matrix
	bStart := t.rec.Now()
	if cfg.Stages == 1 {
		last.BackwardLogits(dLogits)
		t.rec.Record(t.traceTrack(d, 0), obs.PhaseBwd, obs.LinkNone, bStart, 0, 0, d, mi)
		return loss
	}
	g = last.BackwardLogits(dLogits)
	t.rec.Record(t.traceTrack(d, cfg.Stages-1), obs.PhaseBwd, obs.LinkNone, bStart, 0, cfg.Stages-1, d, mi)
	for s := cfg.Stages - 1; s >= 1; s-- {
		sent, pooled := t.transferBackward(d, s, mi, g, acts[s-1])
		bStart = t.rec.Now()
		if s-1 == 0 {
			stages[0].BackwardHidden(sent)
		} else {
			g = stages[s-1].BackwardHidden(sent)
		}
		t.rec.Record(t.traceTrack(d, s-1), obs.PhaseBwd, obs.LinkNone, bStart, 0, s-1, d, mi)
		if pooled {
			t.pool.Put(sent)
		}
	}
	return loss
}

// transferBackward ships the activation gradient g from stage s to s−1,
// compressing per the configuration. fwdAct is the forward activation at
// the boundary (for Fig. 11 statistics). The second result reports whether
// the returned matrix was borrowed from the trainer's pool — the caller
// must Put it back once the receiving stage has consumed it. (The lazy-
// error-propagation reconstruction is ErrorFeedback-owned scratch and must
// not be returned to the pool.)
func (t *Trainer) transferBackward(d, s, mi int, g, fwdAct *tensor.Matrix) (sent *tensor.Matrix, pooled bool) {
	compressed := t.plan.CompressBackward(s, mi)
	if d == 0 {
		t.exec.bwd[s][mi] = compressed
	}
	if !compressed {
		t.accountBackward(d, s, mi, g.SizeBytes(compress.ElemBytes))
		return g, false
	}
	ef := t.cb[d][s]
	var recon *tensor.Matrix
	if t.plan.LazyErrorPropagation() {
		var pl compress.Payload
		pl, recon = ef.CompressWithFeedback(g)
		t.accountBackward(d, s, mi, pl.WireBytes())
	} else {
		pl := ef.Inner().Compress(g)
		t.accountBackward(d, s, mi, pl.WireBytes())
		recon = t.pool.GetUninit(g.Rows, g.Cols) // DecompressInto writes every element
		pooled = true
		ef.Inner().DecompressInto(recon, pl)
	}
	if t.stats != nil && d == 0 && s == 1 {
		t.stats.Record(g, recon, fwdAct)
	}
	return recon, pooled
}

// accountBackward books one inter-stage backward transfer on the
// collective transport's pipeline class (no-op on the serial path) and
// records its wire mark: a zero-duration SendBwd span carrying the
// exact accounted bytes, so the trace's PP span sum reconciles with the
// transport counters byte-for-byte. Recorded only when a transport
// exists — the reference engine accounts nothing, so it records no
// wire-bearing spans either.
func (t *Trainer) accountBackward(d, s, mi int, bytes int64) {
	if t.coll != nil {
		t.coll.accountBackward(d, s, bytes)
		now := t.rec.Now()
		t.rec.RecordSpan(t.traceTrack(d, s), obs.PhaseSendBwd, obs.LinkPP, now, now, bytes, s, d, mi)
	}
}

// accountForward books one inter-stage forward activation transfer —
// stage s−1 to stage s — on the pipeline class (no-op on the serial
// path), recording the matching SendFwd wire mark. Forward traffic is
// never compressed (§5), so bytes is always the dense activation size.
func (t *Trainer) accountForward(d, s, mi int, bytes int64) {
	if t.coll != nil {
		t.coll.accountForward(d, s, bytes)
		now := t.rec.Now()
		t.rec.RecordSpan(t.traceTrack(d, s-1), obs.PhaseSendFwd, obs.LinkPP, now, now, bytes, s-1, d, mi)
	}
}
