package train

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// overlapOpts are the compression configurations of the overlap
// acceptance criterion: exact, compressed backprop, and the full
// Optimus-CC configuration (whose §7 selection compresses DP sync).
func overlapOpts() map[string]core.Config {
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	return map[string]core.Config{
		"baseline": core.Baseline(),
		"cb":       scaledCB(),
		"cbfesc":   full,
	}
}

// TestOverlappedDPSyncBitIdentical pins the tentpole acceptance
// criterion: bucketed DP synchronization issued during the backward pass
// — async handles in flight while other stages still compute — is
// bit-identical (tolerance 0) to the blocking barrier and to the fully
// serial reference oracle, across the acceptance grids and compression
// configurations, on both runtime engines. A deliberately tiny bucket
// budget forces multi-bucket schedules so the overlap machinery is
// genuinely exercised at test scale.
func TestOverlappedDPSyncBitIdentical(t *testing.T) {
	c := testCorpus(t)
	for name, opt := range overlapOpts() {
		for _, g := range executorGrids {
			for _, engine := range []Engine{EnginePipelined, EngineSerial} {
				mk := func(mode DPSyncMode, eng Engine) *Trainer {
					cfg := gridConfig(opt, g.dp, g.pp, g.micros)
					cfg.Engine = eng
					cfg.DPSync = mode
					cfg.BucketBytes = 512 // force several buckets per stage at ElemBytes=2
					tr, err := New(cfg, c)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(tr.Close)
					return tr
				}
				over := mk(DPSyncOverlapped, engine)
				block := mk(DPSyncBlocking, engine)
				ref := mk(DPSyncAuto, EngineReference)
				if g.dp > 1 && over.ov == nil {
					t.Fatalf("%s %v dp%d×pp%d: overlap not active", name, engine, g.dp, g.pp)
				}
				for i := 0; i < 3; i++ {
					lo, lb, lr := over.TrainIteration(), block.TrainIteration(), ref.TrainIteration()
					if lo != lb || lo != lr {
						t.Fatalf("%s %v dp%d×pp%d m=%d iter %d: losses diverged (overlapped %v, blocking %v, reference %v)",
							name, engine, g.dp, g.pp, g.micros, i, lo, lb, lr)
					}
				}
				assertSameWeights(t, over, block, name+"/overlapped-vs-blocking")
				assertSameWeights(t, over, ref, name+"/overlapped-vs-reference")
			}
		}
	}
}

// probeDPPayloadBytes returns the compressed payload size of gradient
// channel (s, gi), or 0 where the channel stays dense (incompressible
// shapes, unselected stages) — the shape-determined quantity
// sim.PredictDPBucketBytes needs from the caller.
func probeDPPayloadBytes(t *testing.T, tr *Trainer, s, gi int) int64 {
	t.Helper()
	g := tr.grads[0][s][gi]
	if !tr.Plan().DPCompressed(s) || !compressibleShape(g) {
		return 0
	}
	probe := tensor.New(g.Rows, g.Cols)
	for i := range probe.Data {
		probe.Data[i] = float64(i%7) / 7
	}
	c, err := compress.Build(tr.Plan().DPSpec(s, 0, gi))
	if err != nil {
		t.Fatal(err)
	}
	return c.Compress(probe).WireBytes()
}

// TestExecutedDPBucketsMatchPlanAndSim pins the per-bucket volume
// reconciliation: the wire bytes each bucket's collectives actually
// moved (tallied op-by-op on the transport sends) equal the simulator's
// plan-derived prediction exactly, on both sync modes and both runtime
// engines, and the transport's dp-class total equals their sum — so
// executed == plan == sim, bucket by bucket and in aggregate.
func TestExecutedDPBucketsMatchPlanAndSim(t *testing.T) {
	c := testCorpus(t)
	for name, opt := range overlapOpts() {
		for _, g := range executorGrids {
			for _, mode := range []DPSyncMode{DPSyncOverlapped, DPSyncBlocking} {
				cfg := gridConfig(opt, g.dp, g.pp, g.micros)
				cfg.DPSync = mode
				cfg.BucketBytes = 512
				tr, err := New(cfg, c)
				if err != nil {
					t.Fatal(err)
				}
				before, _ := tr.CollectiveStats()
				tr.TrainIteration()

				exec, ok := tr.ExecutedDPBuckets()
				if want := g.dp > 1; ok != want {
					t.Fatalf("%s %v dp%d×pp%d: bucket log ok=%v, want %v", name, mode, g.dp, g.pp, ok, want)
				}
				if !ok {
					tr.Close()
					continue
				}
				pred, err := sim.PredictDPBucketBytes(tr.Plan(), func(s, ch int) int64 {
					return probeDPPayloadBytes(t, tr, s, ch)
				})
				if err != nil {
					t.Fatal(err)
				}
				var total int64
				for s := range pred {
					if len(exec[s]) != len(pred[s]) {
						t.Fatalf("%s %v: stage %d has %d executed buckets, plan says %d",
							name, mode, s, len(exec[s]), len(pred[s]))
					}
					for bi := range pred[s] {
						if exec[s][bi] != pred[s][bi] {
							t.Fatalf("%s %v dp%d×pp%d: stage %d bucket %d executed %d B, predicted %d B",
								name, mode, g.dp, g.pp, s, bi, exec[s][bi], pred[s][bi])
						}
						total += exec[s][bi]
					}
				}
				// The dp link class carries exactly the buckets' sum.
				after, _ := tr.CollectiveStats()
				if dp := after.Sub(before).For(collective.ClassDP).Bytes; dp != total {
					t.Fatalf("%s %v: dp-class transport bytes %d != Σ buckets %d", name, mode, dp, total)
				}
				tr.Close()
			}
		}
	}
}

// TestOverlapBucketScheduleNonTrivial guards the acceptance setup
// itself: at the test scale with the tiny budget, at least one stage
// must split into more than one bucket — otherwise the tests above
// wouldn't exercise multi-bucket issue at all.
func TestOverlapBucketScheduleNonTrivial(t *testing.T) {
	cfg := gridConfig(core.Baseline(), 2, 4, 4)
	cfg.BucketBytes = 512
	tr, err := New(cfg, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	multi := false
	for s := 0; s < cfg.Stages; s++ {
		if tr.Plan().BucketCount(s) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("no stage has more than one bucket — acceptance tests degenerate")
	}
}
