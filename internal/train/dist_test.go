package train

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
)

// distTransports builds a fully rendezvoused world of in-process unix
// SocketTransports — one per rank, exactly what optcc-launch gives each
// OS process, minus the process boundary (which adds nothing the race
// detector and the transport do not already cover).
func distTransports(t *testing.T, world int) []*collective.SocketTransport {
	t.Helper()
	// Short paths: sun_path caps unix socket addresses at ~100 bytes, and
	// t.TempDir() grows with the test name.
	dir, err := os.MkdirTemp("", "occ")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	addrs := make([]string, world)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("r%d.sock", r))
	}
	trs := make([]*collective.SocketTransport, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = collective.NewSocketTransport(collective.SocketConfig{
				Network:     "unix",
				Rank:        r,
				World:       world,
				Addrs:       addrs,
				DialTimeout: 20 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d transport: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// TestDistTrainerMatchesInProcessOracle is the train-layer cross-transport
// oracle: the same configuration is trained three ways — the fully serial
// reference engine, the in-process runtime over MemTransport, and a
// process-per-rank grid where every rank is its own trainer over its own
// SocketTransport — and all three must agree bit for bit: every stage's
// weights at tolerance zero, the per-iteration loss, and (between the two
// transport-backed runs) the aggregated per-class byte/message/step
// accounting.
func TestDistTrainerMatchesInProcessOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank socket grids are not short")
	}
	const iters = 3

	cbfesc := core.CBFESC()
	cbfesc.CBRank = 2
	cbfesc.DPRank = 2
	cbTopK := scaledCB()
	cbTopK.CBAlg = core.CBTopK

	cases := []struct {
		name         string
		opt          core.Config
		microBatches int
	}{
		{"baseline-2x4", core.Baseline(), 4},
		{"cbfesc-2x4", cbfesc, 4},
		{"cbfesc-2x4-m2", cbfesc, 2},
		{"cb-topk-2x4", cbTopK, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(tc.opt)
			cfg.MicroBatches = tc.microBatches
			world := cfg.DPGroups * cfg.Stages
			corpus := testCorpus(t)

			run := func(c Config) (*Trainer, float64) {
				tr, err := New(c, corpus)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(tr.Close)
				var loss float64
				for i := 0; i < iters; i++ {
					loss = tr.TrainIteration()
				}
				return tr, loss
			}

			refCfg := cfg
			refCfg.Engine = EngineReference
			ref, refLoss := run(refCfg)
			mem, memLoss := run(cfg)
			if memLoss != refLoss {
				t.Fatalf("mem loss %g != reference loss %g", memLoss, refLoss)
			}

			// One trainer per rank, each over its own socket transport —
			// the in-process twin of the optcc-launch process grid.
			trs := distTransports(t, world)
			dist := make([]*Trainer, world)
			errs := make([]error, world)
			var wg sync.WaitGroup
			for r := 0; r < world; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					c := cfg
					c.Dist = &DistConfig{Transport: trs[r]}
					tr, err := New(c, corpus)
					if err != nil {
						errs[r] = err
						return
					}
					dist[r] = tr
					for i := 0; i < iters; i++ {
						tr.TrainIteration()
					}
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			defer func() {
				for _, tr := range dist {
					tr.Close()
				}
			}()

			// Every rank's local stage must match the in-process run (and
			// through it the serial reference) at tolerance zero.
			for d := 0; d < cfg.DPGroups; d++ {
				for s := 0; s < cfg.Stages; s++ {
					for pi, p := range mem.params[d][s] {
						if !p.Equal(ref.params[d][s][pi], 0) {
							t.Fatalf("mem (%d,%d) param %d differs from reference", d, s, pi)
						}
					}
					r := d*cfg.Stages + s
					for pi, p := range dist[r].params[d][s] {
						if !p.Equal(mem.params[d][s][pi], 0) {
							t.Fatalf("dist rank %d (%d,%d) param %d differs from mem run", r, d, s, pi)
						}
					}
				}
			}

			// The per-process loss sums aggregate to the single-process
			// mean exactly: one rank per DP group contributes, in group
			// order, so the float additions replay the in-process sum.
			var lossSum float64
			for _, tr := range dist {
				lossSum += tr.LastIterationLossSum()
			}
			denom := float64(cfg.DPGroups * cfg.MicroBatches)
			if got := lossSum / denom; got != memLoss {
				t.Fatalf("aggregated dist loss %g != mem loss %g", got, memLoss)
			}

			// Aggregated per-class executed traffic must equal the
			// in-process transport's, byte for byte.
			memStats, ok := mem.CollectiveStats()
			if !ok {
				t.Fatal("mem run has no collective stats")
			}
			var agg collective.Stats
			for _, tr := range trs {
				st := tr.Stats()
				for _, c := range collective.Classes() {
					agg[c].Bytes += st[c].Bytes
					agg[c].Messages += st[c].Messages
					agg[c].Steps += st[c].Steps
				}
			}
			if agg != memStats {
				t.Fatalf("aggregated dist stats %+v != mem stats %+v", agg, memStats)
			}
		})
	}
}

// TestDistConfigValidation pins the Dist configuration rules.
func TestDistConfigValidation(t *testing.T) {
	base := testConfig(core.Baseline())

	bad := base
	bad.Dist = &DistConfig{}
	if bad.Validate() == nil {
		t.Fatal("nil Dist transport accepted")
	}

	bad = base
	bad.Dist = &DistConfig{Transport: collective.NewMemTransport(8)}
	if bad.Validate() == nil {
		t.Fatal("non-remote Dist transport accepted")
	}

	trs := distTransports(t, 2)

	bad = base
	bad.Dist = &DistConfig{Transport: trs[0]}
	if bad.Validate() == nil {
		t.Fatal("Dist transport world 2 accepted for an 8-rank grid")
	}

	ok := base
	ok.Stages = 1
	ok.DPGroups = 2
	ok.Dist = &DistConfig{Transport: trs[0]}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid single-stage Dist config rejected: %v", err)
	}

	bad = ok
	bad.Engine = EngineReference
	if bad.Validate() == nil {
		t.Fatal("Dist with EngineReference accepted")
	}

	bad = base
	bad.Stages = 4
	bad.DPGroups = 2
	bad.Engine = EngineSerial
	bad.Dist = &DistConfig{Transport: trs[0]} // world check is moot: engine fails first
	if bad.Validate() == nil {
		t.Fatal("multi-stage Dist with the serial engine accepted")
	}
}
