package train

import (
	"runtime"
	"testing"
	"time"
)

func TestDroppedTrainersReleaseWorkers(t *testing.T) {
	c := testCorpus(t)
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		tr, err := New(testConfig(scaledCB()), c)
		if err != nil {
			t.Fatal(err)
		}
		tr.TrainIteration()
	}
	for i := 0; i < 5; i++ {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+16 {
		t.Fatalf("goroutines grew from %d to %d: dropped trainers kept their workers", base, n)
	}
}
