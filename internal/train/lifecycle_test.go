package train

import (
	"sync"
	"testing"
)

// TestCloseIdempotent pins the lifecycle contract: Close may be called
// any number of times, before or after training, without panicking —
// and a closed trainer still answers read-only queries.
func TestCloseIdempotent(t *testing.T) {
	tr, err := New(testConfig(scaledCB()), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainIteration()
	tr.Close()
	tr.Close()
	tr.Close()
	if _, ok := tr.CollectiveStats(); !ok {
		t.Fatal("stats unavailable after Close")
	}
	if tr.Plan() == nil || tr.Iteration() != 1 {
		t.Fatal("closed trainer lost state")
	}

	// A never-trained trainer closes cleanly too.
	tr2, err := New(testConfig(scaledCB()), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	tr2.Close()
	tr2.Close()
}

// TestCollectiveStatsConcurrentWithClose pins that snapshotting executed
// traffic races neither with Close nor with other readers — the -race
// build executes this test, so any unsynchronized access fails CI.
func TestCollectiveStatsConcurrentWithClose(t *testing.T) {
	tr, err := New(testConfig(scaledCB()), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainIteration()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				if _, ok := tr.CollectiveStats(); !ok {
					t.Error("stats unavailable")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		tr.Close()
	}()
	close(start)
	wg.Wait()
}
