package train

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

func benchTrainer(b *testing.B, workers int) *Trainer {
	b.Helper()
	corpus, err := data.Generate(data.Config{
		Vocab: 16, Length: 8000, ValFrac: 0.1, Peakiness: 0.8, Branch: 3, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	cfg := testConfig(opt)
	cfg.SyncWorkers = workers
	// The benchmarks drive syncDataParallel directly, outside an
	// iteration: blocking mode makes that the full issue+wait path
	// (under overlapped sync the work happens during backward).
	cfg.DPSync = DPSyncBlocking
	tr, err := New(cfg, corpus)
	if err != nil {
		b.Fatal(err)
	}
	// Two full iterations populate real gradients and warm every
	// workspace — including the error-feedback input buffers that only
	// exist once a residual is stored — so the benchmark measures steady
	// state.
	tr.TrainIteration()
	tr.TrainIteration()
	return tr
}

// BenchmarkSyncDataParallel measures the DP-group×stage gradient
// synchronization hot path in isolation — the path the pooled-workspace
// engine makes allocation-free (compare allocs/op against the
// pre-refactor ~60+ matrix allocations per call).
func BenchmarkSyncDataParallel(b *testing.B) {
	tr := benchTrainer(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.syncDataParallel()
	}
}

// BenchmarkSyncDataParallelWorkers measures the same path with the
// bounded worker pool fanning independent stages out.
func BenchmarkSyncDataParallelWorkers(b *testing.B) {
	tr := benchTrainer(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.syncDataParallel()
	}
}

// BenchmarkSyncEmbedding measures the §6 embedding-synchronization phase.
func BenchmarkSyncEmbedding(b *testing.B) {
	tr := benchTrainer(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.syncEmbedding()
	}
}
