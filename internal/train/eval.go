package train

import (
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tensor"
)

// ValidationPerplexity evaluates replica 0 on up to limit held-out windows
// and returns exp(mean NLL) — the metric of Table 2 and Fig. 9. Not
// meaningful under Config.Dist: a process-per-rank trainer holds current
// weights only for its local stage.
func (t *Trainer) ValidationPerplexity(limit int) float64 {
	contexts, targets := t.corpus.ValWindows(t.cfg.Model.Context, limit)
	if len(contexts) == 0 {
		return 0
	}
	logits := model.InferLogits(t.replicas[0], contexts)
	var nll float64
	for i := range targets {
		row := logits.Row(i)
		nll += tensor.LogSumExpRow(row) - row[targets[i]]
	}
	return model.Perplexity(nll / float64(len(targets)))
}

// TaskAccuracies evaluates replica 0 zero-shot on the given probe tasks
// (Table 3/4's substitute benchmarks) and returns name → accuracy.
func (t *Trainer) TaskAccuracies(tasks []*data.Task) map[string]float64 {
	inf := model.Inferencer{Stages: t.replicas[0]}
	out := make(map[string]float64, len(tasks))
	for _, task := range tasks {
		out[task.Name] = task.Accuracy(inf)
	}
	return out
}

// Train runs n iterations, invoking observe (if non-nil) after each with
// the iteration index and training loss. Returns the final loss.
func (t *Trainer) Train(n int, observe func(iter int, loss float64)) float64 {
	var loss float64
	for i := 0; i < n; i++ {
		loss = t.TrainIteration()
		if observe != nil {
			observe(t.iter, loss)
		}
	}
	return loss
}
