package train

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// gridConfig builds a DP×PP test configuration with micros micro-batches.
func gridConfig(opt core.Config, dp, pp, micros int) Config {
	cfg := testConfig(opt)
	cfg.DPGroups = dp
	cfg.Stages = pp
	cfg.MicroBatches = micros
	return cfg
}

// executorGrids are the DP×PP shapes the 1F1B executor is validated on:
// the minimal pipeline, a deep pipeline wider in data than in stages, and
// the transpose. micros=2 on the 4-stage grid makes every backward an
// epilogue backward (warmup w = min(p−s−1, m) caps at m), exercising the
// schedule's boundary micro-batches.
var executorGrids = []struct{ dp, pp, micros int }{
	{1, 2, 4},
	{2, 4, 4},
	{4, 2, 4},
	{2, 4, 2}, // m < p−1: the warmup cap / all-epilogue edge
}

// executorOpts are the compression configurations the executor must
// reproduce bit for bit: exact, compressed backprop on every send, and
// epilogue-only compression (§5.2 — scaledCB inherits it from core.CB),
// whose per-micro classification is exactly where an executor driving
// the schedule can drift from the serial loop.
func executorOpts() map[string]core.Config {
	cbFull := scaledCB()
	cbFull.EpilogueOnly = false
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	// Sparse-native CB: every compressed backward send on the executor
	// ships a TopK payload through SendCompressedSparse, so the three
	// executor pins (bit-identity vs the serial densified oracle, traffic
	// prediction, serial accounting) all cover the sparse p2p path.
	cbTopK := scaledCB()
	cbTopK.CBAlg = core.CBTopK
	cbTopK.EpilogueOnly = false
	return map[string]core.Config{
		"baseline":       core.Baseline(),
		"cb-full":        cbFull,
		"cb-epilogue":    scaledCB(),
		"cbfesc":         full,
		"cb-topk-sparse": cbTopK,
	}
}

// TestPipelineExecutorBitIdentical pins the tentpole acceptance
// criterion: the 1F1B executor — one goroutine per (dp, stage) rank,
// tensors shipped over the collective transport — reproduces the serial
// in-loop oracle bit for bit (tolerance 0) at every grid and compression
// configuration, including the EpilogueOnly boundary micro-batches.
func TestPipelineExecutorBitIdentical(t *testing.T) {
	c := testCorpus(t)
	for name, opt := range executorOpts() {
		for _, g := range executorGrids {
			sCfg := gridConfig(opt, g.dp, g.pp, g.micros)
			sCfg.Engine = EngineSerial
			pCfg := gridConfig(opt, g.dp, g.pp, g.micros)

			serial, err := New(sCfg, c)
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := New(pCfg, c)
			if err != nil {
				t.Fatal(err)
			}
			if !pipe.pipelineActive() {
				t.Fatalf("%s dp%d×pp%d: executor not active on default config", name, g.dp, g.pp)
			}
			for i := 0; i < 3; i++ {
				ls, lp := serial.TrainIteration(), pipe.TrainIteration()
				if ls != lp {
					t.Fatalf("%s dp%d×pp%d iteration %d: serial loss %v != executor %v",
						name, g.dp, g.pp, i, ls, lp)
				}
			}
			for dd := range serial.replicas {
				for s := range serial.replicas[dd] {
					ps, pp2 := serial.replicas[dd][s].Params(), pipe.replicas[dd][s].Params()
					for i := range ps {
						if !ps[i].Equal(pp2[i], 0) {
							t.Fatalf("%s dp%d×pp%d: replica %d stage %d param %d differs",
								name, g.dp, g.pp, dd, s, i)
						}
					}
				}
			}
			serial.Close()
			pipe.Close()
		}
	}
}

// probeCBWireBytes returns the wire size of one compressed backward
// payload for cfg's boundary shape, measured on a compressor built from
// the trainer's compiled plan spec through the registry (payload sizes
// are shape-determined, so one probe predicts every send). For low-rank
// configurations it also pins the measured size to core.LowRankWireBytes
// — the closed form the pipeline experiment and the quickstart price
// predictions with.
func probeCBWireBytes(t *testing.T, tr *Trainer) int64 {
	t.Helper()
	probe := tensor.New(tr.cfg.MicroBatch, tr.cfg.Model.Hidden)
	for i := range probe.Data {
		probe.Data[i] = float64(i%13) / 13
	}
	c, err := compress.Build(tr.Plan().CBSpec(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	wire := c.Compress(probe).WireBytes()
	if tr.Plan().CBFamily() == "powersgd" {
		if want := core.LowRankWireBytes(probe.Rows, probe.Cols, tr.cfg.Opt.CBRank, compress.ElemBytes); wire != want {
			t.Fatalf("measured PowerSGD payload %d bytes, closed form says %d", wire, want)
		}
	}
	return wire
}

// TestPipelineExecutorTrafficMatchesPrediction pins the wire-accounting
// acceptance criterion: the pp-class bytes, messages, and steps the
// executor puts on the transport equal the analytic inter-stage
// prediction (forward + backward) exactly — the fwd+bwd reconciliation
// that was impossible while forward activations went unaccounted.
func TestPipelineExecutorTrafficMatchesPrediction(t *testing.T) {
	c := testCorpus(t)
	const iters = 2
	for name, opt := range executorOpts() {
		for _, g := range executorGrids {
			cfg := gridConfig(opt, g.dp, g.pp, g.micros)
			tr, err := New(cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < iters; i++ {
				tr.TrainIteration()
			}
			st, ok := tr.CollectiveStats()
			if !ok {
				t.Fatalf("%s dp%d×pp%d: no collective stats", name, g.dp, g.pp)
			}
			exec := st.For(collective.ClassPP)

			dense := int64(cfg.MicroBatch*cfg.Model.Hidden) * compress.ElemBytes
			var cmp int64
			if opt.CompressBackprop {
				cmp = probeCBWireBytes(t, tr)
			}
			pred, err := sim.PredictInterStage(opt, cfg.Stages, cfg.MicroBatches, dense, cmp)
			if err != nil {
				t.Fatal(err)
			}
			scale := int64(cfg.DPGroups * iters)
			if exec.Bytes != pred.Bytes*scale {
				t.Fatalf("%s dp%d×pp%d: executed pp bytes %d, predicted %d",
					name, g.dp, g.pp, exec.Bytes, pred.Bytes*scale)
			}
			if exec.Messages != pred.Messages*scale {
				t.Fatalf("%s dp%d×pp%d: executed pp messages %d, predicted %d",
					name, g.dp, g.pp, exec.Messages, pred.Messages*scale)
			}
			if exec.Steps != pred.Steps*scale {
				t.Fatalf("%s dp%d×pp%d: executed pp steps %d, predicted %d",
					name, g.dp, g.pp, exec.Steps, pred.Steps*scale)
			}
			if want := int64(simnet.InterStageMessages(cfg.Stages, cfg.MicroBatches)) * scale; exec.Messages != want {
				t.Fatalf("%s dp%d×pp%d: executed pp messages %d, simnet says %d",
					name, g.dp, g.pp, exec.Messages, want)
			}
			tr.Close()
		}
	}
}

// TestPipelineSerialAccountingAgrees pins the satellite bugfix from the
// other side: the serial in-loop path (executor disabled, collective on)
// must book the same pp-class traffic the executor really moves —
// forward activations included.
func TestPipelineSerialAccountingAgrees(t *testing.T) {
	c := testCorpus(t)
	for name, opt := range executorOpts() {
		cfg := gridConfig(opt, 2, 4, 4)
		sCfg := cfg
		sCfg.Engine = EngineSerial
		serial, err := New(sCfg, c)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := New(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			serial.TrainIteration()
			pipe.TrainIteration()
		}
		ss, _ := serial.CollectiveStats()
		ps, _ := pipe.CollectiveStats()
		if ss.For(collective.ClassPP) != ps.For(collective.ClassPP) {
			t.Fatalf("%s: serial pp accounting %+v != executor %+v",
				name, ss.For(collective.ClassPP), ps.For(collective.ClassPP))
		}
		serial.Close()
		pipe.Close()
	}
}
