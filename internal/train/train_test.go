package train

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
)

func testCorpus(t *testing.T) *data.Corpus {
	t.Helper()
	c, err := data.Generate(data.Config{
		Vocab: 16, Length: 8000, ValFrac: 0.1, Peakiness: 0.8, Branch: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testConfig(opt core.Config) Config {
	return Config{
		Model:        model.Config{Vocab: 16, Hidden: 16, Context: 2, Blocks: 4, Seed: 3},
		Stages:       4,
		DPGroups:     2,
		MicroBatch:   8,
		MicroBatches: 4,
		Opt:          opt,
		LR:           0.3,
		Momentum:     0.9,
		Clip:         1.0,
		Seed:         3,
	}
}

// scaledCB returns the CB preset with a rank suited to the test-scale
// boundary matrices (8×16).
func scaledCB() core.Config {
	c := core.CB()
	c.CBRank = 2
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(core.Baseline()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig(core.Baseline())
	bad.Stages = 9
	if bad.Validate() == nil {
		t.Fatal("stages > blocks accepted")
	}
	bad = testConfig(core.Baseline())
	bad.LR = 0
	if bad.Validate() == nil {
		t.Fatal("LR=0 accepted")
	}
	bad = testConfig(core.Baseline())
	bad.DPGroups = 0
	if bad.Validate() == nil {
		t.Fatal("DPGroups=0 accepted")
	}
}

func TestNewRejectsVocabMismatch(t *testing.T) {
	c := testCorpus(t)
	cfg := testConfig(core.Baseline())
	cfg.Model.Vocab = 32
	if _, err := New(cfg, c); err == nil {
		t.Fatal("vocab mismatch accepted")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	tr, err := New(testConfig(core.Baseline()), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainIteration()
	last := tr.Train(80, nil)
	if last >= first {
		t.Fatalf("loss did not fall: %v → %v", first, last)
	}
	ppl := tr.ValidationPerplexity(200)
	if ppl >= 16 {
		t.Fatalf("PPL %v not below vocab size (no learning)", ppl)
	}
	if tr.Iteration() != 81 {
		t.Fatalf("iteration counter %d", tr.Iteration())
	}
}

func TestDeterministicTraining(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(scaledCB()), c)
	b, _ := New(testConfig(scaledCB()), c)
	la := a.Train(10, nil)
	lb := b.Train(10, nil)
	if la != lb {
		t.Fatalf("loss diverged: %v vs %v", la, lb)
	}
	if pa, pb := a.ValidationPerplexity(100), b.ValidationPerplexity(100); pa != pb {
		t.Fatalf("PPL diverged: %v vs %v", pa, pb)
	}
}

func TestDPReplicasStayIdentical(t *testing.T) {
	// The core data-parallel invariant: after every iteration, all DP
	// groups hold bit-identical weights (they apply the same averaged
	// gradient to the same initial weights).
	for _, opt := range []core.Config{core.Baseline(), scaledCB(), core.CBFESC()} {
		cfg := testConfig(opt)
		if cfg.Opt.DPCompress() {
			cfg.Opt.DPRank = 2
		}
		tr, err := New(cfg, testCorpus(t))
		if err != nil {
			t.Fatal(err)
		}
		tr.Train(5, nil)
		for s := 0; s < cfg.Stages; s++ {
			p0 := tr.replicas[0][s].Params()
			p1 := tr.replicas[1][s].Params()
			for i := range p0 {
				if !p0[i].Equal(p1[i], 1e-12) {
					t.Fatalf("%s: stage %d param %d diverged across DP groups", opt.Name(), s, i)
				}
			}
		}
	}
}

func TestTiedEmbeddingReplicasStayIdentical(t *testing.T) {
	// §6's correctness requirement: the first and last stages' embedding
	// tables remain identical after synchronized updates.
	tr, err := New(testConfig(core.Baseline()), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	tr.Train(5, nil)
	w0 := tr.replicas[0][0].EmbeddingWeight()
	wL := tr.replicas[0][3].EmbeddingWeight()
	if !w0.Equal(wL, 1e-12) {
		t.Fatal("tied embedding replicas diverged")
	}
}

func TestFusedEmbeddingMathematicallyIdentical(t *testing.T) {
	// Fused embedding synchronization must not change training at all
	// (§6: "without changing the mathematical outcome"). Verified to
	// floating-point reassociation tolerance over several iterations.
	c := testCorpus(t)
	base := testConfig(core.Baseline())
	fused := base
	fusedOpt := core.Baseline()
	fusedOpt.FuseEmbedding = true
	fused.Opt = fusedOpt

	a, _ := New(base, c)
	b, _ := New(fused, c)
	a.Train(5, nil)
	b.Train(5, nil)
	for s := 0; s < base.Stages; s++ {
		pa := a.replicas[0][s].Params()
		pb := b.replicas[0][s].Params()
		for i := range pa {
			if !pa[i].Equal(pb[i], 1e-9) {
				t.Fatalf("stage %d param %d differs between fused and two-phase sync", s, i)
			}
		}
	}
}

// TestCompressedBackpropQualityOrdering reproduces the central quality
// claim (Fig. 3 + §5): naive inter-stage compression (all micro-batches,
// no lazy error propagation) badly damages the model, while CB with lazy
// error propagation + epilogue-only compression stays close to baseline.
func TestCompressedBackpropQualityOrdering(t *testing.T) {
	corpus, err := data.Generate(data.Config{
		Vocab: 16, Length: 12000, ValFrac: 0.1, Peakiness: 0.8, Branch: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt core.Config) float64 {
		cfg := Config{
			Model:  model.Config{Vocab: 16, Hidden: 32, Context: 3, Blocks: 4, Seed: 7},
			Stages: 4, DPGroups: 2, MicroBatch: 16, MicroBatches: 4,
			Opt: opt, LR: 0.3, Momentum: 0.9, Clip: 1.0, Seed: 7,
		}
		tr, err := New(cfg, corpus)
		if err != nil {
			t.Fatal(err)
		}
		tr.Train(300, nil)
		return tr.ValidationPerplexity(300)
	}
	cb := core.CB()
	cb.CBRank = 1 // ~10× compression at this scale, like the paper's rank 16
	naive := core.NaiveCB()
	naive.CBRank = 1

	base := run(core.Baseline())
	withCB := run(cb)
	withNaive := run(naive)

	if withCB > base*1.3 {
		t.Fatalf("CB (LEP+epilogue-only) PPL %.3f too far above baseline %.3f", withCB, base)
	}
	if withNaive < base*1.4 {
		t.Fatalf("naive CB PPL %.3f should be much worse than baseline %.3f", withNaive, base)
	}
	if withCB >= withNaive {
		t.Fatalf("CB %.3f should beat naive CB %.3f", withCB, withNaive)
	}
}

func TestEpilogueOnlyCompressesLess(t *testing.T) {
	// With epilogue-only on, steady-phase sends bypass compression, so
	// quality is at least as good as compressing everything.
	c := testCorpus(t)
	mk := func(epilogueOnly bool) float64 {
		opt := scaledCB()
		opt.EpilogueOnly = epilogueOnly
		tr, err := New(testConfig(opt), c)
		if err != nil {
			t.Fatal(err)
		}
		tr.Train(100, nil)
		return tr.ValidationPerplexity(200)
	}
	epi := mk(true)
	all := mk(false)
	if epi > all+0.3 {
		t.Fatalf("epilogue-only PPL %.3f much worse than compress-all %.3f", epi, all)
	}
}

func TestStatsCollection(t *testing.T) {
	cfg := testConfig(scaledCB())
	cfg.CollectStats = true
	tr, err := New(cfg, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	tr.Train(20, nil)
	st := tr.Stats()
	if st == nil || len(st.EpsMean) == 0 || len(st.Cosine) == 0 {
		t.Fatal("stats not collected")
	}
	epsAbs, diffAbs, cosAbs := st.Summary()
	// Eq. 14's conditions: all three hover near zero. The thresholds are
	// generous — Fig. 11 only claims "mostly stays around zero".
	if epsAbs > 0.1 {
		t.Fatalf("Avg|ε| = %v too large", epsAbs)
	}
	if diffAbs > 0.5 {
		t.Fatalf("Avg|ΔY| = %v too large", diffAbs)
	}
	if cosAbs > 0.5 {
		t.Fatalf("Avg|cos| = %v — errors correlate with activations", cosAbs)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := testCorpus(t)
	base, _ := New(testConfig(core.Baseline()), c)
	cb, _ := New(testConfig(scaledCB()), c)
	cb.Train(2, nil)

	mbBase := base.MemoryPerStage()
	mbCB := cb.MemoryPerStage()
	for s := range mbBase {
		if mbBase[s].LowRankBytes != 0 || mbBase[s].ResidualBytes != 0 {
			t.Fatalf("baseline stage %d has compression buffers", s)
		}
		if mbBase[s].ParamBytes <= 0 || mbBase[s].ActivationBytes <= 0 {
			t.Fatalf("stage %d degenerate accounting: %+v", s, mbBase[s])
		}
	}
	// CB adds low-rank buffers on receiving stages (s ≥ 1) and LEP adds
	// residuals — Fig. 12's 5–10% and ~1% overheads respectively.
	if mbCB[1].LowRankBytes == 0 || mbCB[1].ResidualBytes == 0 {
		t.Fatalf("CB stage 1 missing compression buffers: %+v", mbCB[1])
	}
	if mbCB[1].ResidualBytes >= mbCB[1].Total()/2 {
		t.Fatal("LEP residual implausibly large")
	}
}

func TestTaskEvaluation(t *testing.T) {
	c := testCorpus(t)
	tr, _ := New(testConfig(core.Baseline()), c)
	tr.Train(60, nil)
	tasks := data.TaskSuite(c, 2, 50, 5)
	accs := tr.TaskAccuracies(tasks)
	if len(accs) != 5 {
		t.Fatalf("want 5 task accuracies, got %d", len(accs))
	}
	for name, a := range accs {
		if a < 0 || a > 1 {
			t.Fatalf("task %s accuracy %v out of range", name, a)
		}
	}
	// A trained model must beat chance on the in-distribution last-word
	// task (chance = 1/16).
	if accs["last-word"] < 0.2 {
		t.Fatalf("last-word accuracy %v barely above chance", accs["last-word"])
	}
}

func TestSingleStageAndSingleGroup(t *testing.T) {
	cfg := testConfig(core.Baseline())
	cfg.Stages = 1
	cfg.DPGroups = 1
	tr, err := New(cfg, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainIteration()
	last := tr.Train(40, nil)
	if last >= first {
		t.Fatalf("degenerate config did not learn: %v → %v", first, last)
	}
}

func TestPipelineEquivalentToSingleStage(t *testing.T) {
	// With no compression, splitting into stages must not change the math:
	// same seed, same data order → same loss trajectory as 1 stage.
	c := testCorpus(t)
	one := testConfig(core.Baseline())
	one.Stages = 1
	four := testConfig(core.Baseline())

	a, _ := New(one, c)
	b, _ := New(four, c)
	for i := 0; i < 5; i++ {
		la := a.TrainIteration()
		lb := b.TrainIteration()
		if math.Abs(la-lb) > 1e-9 {
			t.Fatalf("iteration %d: losses diverge (%v vs %v)", i, la, lb)
		}
	}
}

func TestInferMatchesTrainingForward(t *testing.T) {
	c := testCorpus(t)
	tr, _ := New(testConfig(core.Baseline()), c)
	tr.Train(3, nil)
	stages := tr.Stages()
	contexts, _ := c.ValWindows(2, 4)

	inferred := model.InferLogits(stages, contexts)

	h := stages[0].ForwardTokens(contexts)
	for _, s := range stages[1:] {
		h = s.ForwardHidden(h)
	}
	trained := stages[len(stages)-1].Logits(h)
	if !inferred.Equal(trained, 1e-9) {
		t.Fatal("inference path disagrees with training forward")
	}
}

func TestTopKCBVariantRuns(t *testing.T) {
	opt := scaledCB()
	opt.CBAlg = core.CBTopK
	tr, err := New(testConfig(opt), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainIteration()
	last := tr.Train(30, nil)
	if math.IsNaN(last) || last >= first*2 {
		t.Fatalf("top-k CB diverged: %v → %v", first, last)
	}
}

func TestSelectiveStageCompressionRuns(t *testing.T) {
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	tr, err := New(testConfig(opt), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainIteration()
	last := tr.Train(60, nil)
	if last >= first {
		t.Fatalf("full Optimus-CC config did not learn: %v → %v", first, last)
	}
}

func TestLRScheduleDrivesTraining(t *testing.T) {
	c := testCorpus(t)
	cfg := testConfig(core.Baseline())
	sched, err := model.NewWarmupCosine(0.3, 0.01, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schedule = sched
	tr, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainIteration()
	last := tr.Train(60, nil)
	if last >= first {
		t.Fatalf("scheduled training did not learn: %v → %v", first, last)
	}
	// The optimizer must be tracking the schedule, not the static LR.
	want := sched.LR(tr.Iteration() - 1)
	if got := tr.opt.LR; got != want {
		t.Fatalf("optimizer LR %v, schedule says %v", got, want)
	}
}

func TestDocumentCorpusTrains(t *testing.T) {
	// The §9.1 document pipeline's output must plug into the trainer.
	domains := []data.DocConfig{
		{Domain: "news", Count: 200, MinLen: 10, MaxLen: 60, Vocab: 16, Peakiness: 0.8, Branch: 3, Seed: 1},
		{Domain: "wiki", Count: 200, MinLen: 10, MaxLen: 60, Vocab: 16, Peakiness: 0.8, Branch: 3, Seed: 2},
	}
	c, err := data.BuildCorpusFromDocuments(domains, 12, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainIteration()
	last := tr.Train(40, nil)
	if last >= first {
		t.Fatalf("document corpus did not train: %v → %v", first, last)
	}
}
