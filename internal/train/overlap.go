package train

import (
	"sync/atomic"
	"time"

	"repro/internal/collective"
	"repro/internal/obs"
)

// Overlapped bucketed DP synchronization: the paper's headline property
// is that compressed communication hides under compute, and this file is
// where the trainer actually does it. The compiled plan carves each
// stage's gradients into buckets (reverse-backward order); during the
// backward pass, the moment a stage's gradients are final on every DP
// group, that stage's buckets are issued as asynchronous ring
// all-reduces on the collective runtime's rank workers — which are idle
// during the micro-batch phase — while other stages keep computing.
// TrainIteration waits on every handle just before the optimizer step.
//
// Bit-identity with the blocking and reference paths holds because
// overlap changes only *when* each channel's all-reduce is issued, never
// its deterministic flat-rank-order reduction, and each (stage, group,
// grad) error-feedback compressor is still driven exactly once per
// iteration.

// dpOverlap is the per-trainer coordination state.
type dpOverlap struct {
	// arrivals[s] counts the DP groups executing in this process whose
	// stage-s gradients are not yet final this iteration; the goroutine
	// that decrements it to zero issues the stage's buckets. Reset each
	// iteration from localGroups.
	arrivals []atomic.Int32
	// localGroups[s] is the number of stage-s DP ranks this process
	// executes — DPGroups in a single-process run, exactly one per local
	// stage under Dist, where the stage's buckets issue the moment its
	// sole local rank finishes (the remote members' zero-local-rank group
	// ops complete immediately, so issue order cannot deadlock).
	localGroups []int32
	// handles[s] holds stage s's in-flight handles, one per synchronized
	// gradient channel, in bucket-schedule order. Written by the stage's
	// issuing goroutine, read by waitDPSync after every engine goroutine
	// has joined — the engine's WaitGroup is the happens-before edge.
	handles [][]*collective.Pending
}

// newDPOverlap sizes the coordinator from the trainer's compiled plan.
func newDPOverlap(t *Trainer) *dpOverlap {
	ov := &dpOverlap{
		arrivals:    make([]atomic.Int32, t.cfg.Stages),
		localGroups: make([]int32, t.cfg.Stages),
		handles:     make([][]*collective.Pending, t.cfg.Stages),
	}
	for s := 0; s < t.cfg.Stages; s++ {
		var n int
		for _, b := range t.plan.Buckets(s) {
			n += len(b.Channels)
		}
		ov.handles[s] = make([]*collective.Pending, n)
		for d := 0; d < t.cfg.DPGroups; d++ {
			if t.localRank(d, s) {
				ov.localGroups[s]++
			}
		}
	}
	return ov
}

// reset re-arms the arrival counters for a new iteration.
func (ov *dpOverlap) reset() {
	for s := range ov.arrivals {
		ov.arrivals[s].Store(ov.localGroups[s])
	}
}

// dpStageReady marks one DP group's stage-s gradients final. The last
// group to arrive issues the stage's bucketed all-reduces. No-op unless
// overlapped sync is active.
func (t *Trainer) dpStageReady(s int) {
	if t.ov == nil {
		return
	}
	if t.ov.arrivals[s].Add(-1) == 0 {
		t.issueStageBuckets(s)
	}
}

// issueStageBuckets puts stage s's buckets on the wire, bucket by bucket
// in the plan's reverse-backward order, recording the in-flight handles
// for waitDPSync. Runs on whichever engine goroutine arrived last for
// this stage; stages issue on disjoint rank sets, so concurrent issuers
// never contend.
func (t *Trainer) issueStageBuckets(s int) {
	cs := t.coll
	compressed := t.plan.DPCompressed(s)
	t.exec.dp[s] = compressed
	k := 0
	for _, bucket := range cs.buckets[s] {
		for _, gi := range bucket {
			t.ov.handles[s][k] = cs.issueChannel(t, s, gi, compressed)
			k++
		}
	}
}

// waitDPSync drains every in-flight handle, charging each operation's
// executed wire volume to its bucket's slot in the exec log and the
// blocked wall time to the exposed-communication clock. Called from the
// iteration goroutine once the engines have joined.
func (t *Trainer) waitDPSync() {
	start := time.Now()
	cs := t.coll
	for s := range cs.buckets {
		k := 0
		for bi, bucket := range cs.buckets[s] {
			var wire int64
			for range bucket {
				if h := t.ov.handles[s][k]; h != nil {
					wire += h.WaitBytes()
					t.ov.handles[s][k] = nil
				}
				k++
			}
			t.exec.dpBuckets[s][bi] = wire
		}
	}
	t.recordDPDrain(time.Since(start).Nanoseconds())
}

// recordDPDrain charges blocked DP-sync wall time to the exposed-
// communication counter and records the matching drain span. One elapsed
// value feeds both — span end is recomputed as now and the start derived
// from it — so the trace's summed drain durations equal DPSyncExposedNs
// exactly, never merely approximately (the reconciliation's tol-0 pin).
func (t *Trainer) recordDPDrain(elapsedNs int64) {
	t.dpWait.Add(elapsedNs)
	if rec := t.rec; rec != nil {
		end := rec.Now()
		rec.RecordSpan(t.traceDriver(), obs.PhaseDPDrain, obs.LinkDP, end-elapsedNs, end, 0, -1, -1, -1)
	}
}
