package train

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
)

func TestCheckpointRoundTrip(t *testing.T) {
	c := testCorpus(t)
	a, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(10, nil)
	wantPPL := a.ValidationPerplexity(150)

	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if got := b.ValidationPerplexity(150); got != wantPPL {
		t.Fatalf("restored PPL %v != saved %v", got, wantPPL)
	}
	// All replicas must receive the broadcast.
	for s := 0; s < b.cfg.Stages; s++ {
		p0 := b.replicas[0][s].Params()
		p1 := b.replicas[1][s].Params()
		for i := range p0 {
			if !p0[i].Equal(p1[i], 0) {
				t.Fatalf("replica 1 stage %d param %d not broadcast", s, i)
			}
		}
	}
}

func TestCheckpointResumeTrainsOn(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(core.Baseline()), c)
	a.Train(20, nil)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(testConfig(core.Baseline()), c)
	if err := b.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	before := b.ValidationPerplexity(150)
	b.Train(30, nil)
	after := b.ValidationPerplexity(150)
	if after >= before {
		t.Fatalf("resumed training did not improve: %v → %v", before, after)
	}
}

// TestCheckpointResumeBitIdentical pins the v2 regression: version 1
// silently dropped every error-feedback residual (inter-stage lazy error
// propagation AND the per-(stage, group, grad) DP-sync compressor
// state), the PowerSGD warm-start factors, the optimizer momentum, and
// the data-stream position, so a restored compressed run diverged from
// an uninterrupted one. With v2, a trainer restored mid-run must produce
// the exact loss trajectory and weights the uninterrupted run produces.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	c := testCorpus(t)
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	topk := scaledCB()
	topk.CBAlg = core.CBTopK
	for name, opt := range map[string]core.Config{
		"baseline": core.Baseline(), // momentum + sampling-stream state
		"cbfesc":   full,            // every error-feedback residual + warm start
		"cb-topk":  topk,            // sparse compressor (residual-only state)
	} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(opt)
			a, err := New(cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			a.Train(6, nil)
			blob, err := a.CheckpointBytes()
			if err != nil {
				t.Fatal(err)
			}

			b, err := New(cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if err := b.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
				t.Fatal(err)
			}
			if b.Iteration() != a.Iteration() {
				t.Fatalf("restored iteration %d, saved %d", b.Iteration(), a.Iteration())
			}
			for i := 0; i < 4; i++ {
				la, lb := a.TrainIteration(), b.TrainIteration()
				if la != lb {
					t.Fatalf("iteration %d after restore: loss %v, uninterrupted %v", i, lb, la)
				}
			}
			for dd := range a.replicas {
				for s := range a.replicas[dd] {
					pa, pb := a.replicas[dd][s].Params(), b.replicas[dd][s].Params()
					for i := range pa {
						if !pa[i].Equal(pb[i], 0) {
							t.Fatalf("replica %d stage %d param %d diverged after restore", dd, s, i)
						}
					}
				}
			}
		})
	}
}

// TestCheckpointRestoreClearsPriorState: loading into a trainer that has
// already trained must not merge the two runs — state the checkpoint
// does not mention (momentum, residuals, warm factors accumulated before
// the load) has to be cleared, or the restored trajectory silently
// diverges from the saved one.
func TestCheckpointRestoreClearsPriorState(t *testing.T) {
	c := testCorpus(t)
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	cfg := testConfig(full)

	a, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Checkpoint the untrained state: it mentions no velocity, residual,
	// or warm-start entries at all, so everything a pre-trained loader
	// holds must be dropped rather than survive the restore.
	blob0, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	var aLosses []float64
	a.Train(5, func(_ int, l float64) { aLosses = append(aLosses, l) })

	b, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Train(3, nil) // dirty every state the checkpoint is silent about
	if err := b.LoadCheckpoint(bytes.NewReader(blob0)); err != nil {
		t.Fatal(err)
	}
	for i, la := range aLosses {
		if lb := b.TrainIteration(); lb != la {
			t.Fatalf("iteration %d after restore-over-trained-state: loss %v, fresh run %v", i, lb, la)
		}
	}
}

// TestCheckpointRejectsConfigMismatch: compressor state in the blob that
// the loading configuration cannot hold must error, on both the
// inter-stage (cb) and the DP-sync (dpc) sections.
func TestCheckpointRejectsConfigMismatch(t *testing.T) {
	c := testCorpus(t)
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	a, err := New(testConfig(full), c)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Train(3, nil) // populate cb and dpc state
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	// No compressed backprop at all → the cb section must be rejected.
	noCB, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	defer noCB.Close()
	if err := noCB.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("cb state accepted by a configuration without compressed backprop")
	}

	// CB but no selective stage compression → the dpc section must be
	// rejected instead of silently fabricating unused compressor state.
	cbOnly := core.CBFE()
	cbOnly.CBRank = 2
	noSC, err := New(testConfig(cbOnly), c)
	if err != nil {
		t.Fatal(err)
	}
	defer noSC.Close()
	if err := noSC.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("dpc state accepted by a configuration without selective stage compression")
	}
}

// TestCheckpointReadsV1 keeps the v1 weights-only format loadable: a v2
// writer must not orphan old checkpoints.
func TestCheckpointReadsV1(t *testing.T) {
	c := testCorpus(t)
	a, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(5, nil)

	// Write the legacy format by hand: header version 1, weights only.
	var buf bytes.Buffer
	mats := a.flatParams(0)
	if err := writeU32s(&buf, checkpointMagic, 1, uint32(len(mats))); err != nil {
		t.Fatal(err)
	}
	for _, m := range mats {
		if err := writeMat(&buf, m); err != nil {
			t.Fatal(err)
		}
	}

	b, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if b.Iteration() != 0 {
		t.Fatalf("v1 load set iteration %d, want 0 (weights only)", b.Iteration())
	}
	for i, m := range b.flatParams(0) {
		if !m.Equal(mats[i], 0) {
			t.Fatalf("v1 weights differ at matrix %d", i)
		}
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(core.Baseline()), c)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte{}, blob...)
	bad[0] ^= 0xff // break the magic
	if err := a.LoadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted magic accepted")
	}

	if err := a.LoadCheckpoint(bytes.NewReader(blob[:10])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestCheckpointRejectsCorruptV2Sections: a bit-flip in a v2 section's
// shape header must surface as an error, not a runtime panic or an
// attempted multi-gigabyte allocation (readMat validates dimensions).
func TestCheckpointRejectsCorruptV2Sections(t *testing.T) {
	c := testCorpus(t)
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	a, err := New(testConfig(full), c)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Train(3, nil)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Locate the first velocity entry's rows field: header (12 bytes) +
	// weights + iter (4) + velocity count (4) + index (4).
	off := 12
	for _, m := range a.flatParams(0) {
		off += 8 + 8*m.NumElements()
	}
	off += 4 + 4 + 4
	for _, bad := range []uint32{0, 0xffffffff, 1 << 24} {
		mut := append([]byte{}, blob...)
		binary.LittleEndian.PutUint32(mut[off:], bad)
		b, err := New(testConfig(full), c)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.LoadCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corrupt velocity shape %#x accepted", bad)
		}
		b.Close()
	}
}

func TestCheckpointRejectsArchitectureMismatch(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(core.Baseline()), c)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	other := testConfig(core.Baseline())
	other.Model.Hidden = 24
	b, err := New(other, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func TestParallelGroupsBitIdentical(t *testing.T) {
	c := testCorpus(t)
	seq := testConfig(core.CBFESC())
	seq.Opt.CBRank = 2
	seq.Opt.DPRank = 2
	par := seq
	par.ParallelGroups = true

	a, err := New(seq, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(par, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		la := a.TrainIteration()
		lb := b.TrainIteration()
		if la != lb {
			t.Fatalf("iteration %d: parallel loss %v != sequential %v", i, lb, la)
		}
	}
	for s := 0; s < seq.Stages; s++ {
		pa := a.replicas[0][s].Params()
		pb := b.replicas[0][s].Params()
		for i := range pa {
			if !pa[i].Equal(pb[i], 0) {
				t.Fatalf("stage %d param %d differs between parallel and sequential", s, i)
			}
		}
	}
}
