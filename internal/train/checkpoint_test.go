package train

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

func TestCheckpointRoundTrip(t *testing.T) {
	c := testCorpus(t)
	a, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(10, nil)
	wantPPL := a.ValidationPerplexity(150)

	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(testConfig(core.Baseline()), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if got := b.ValidationPerplexity(150); got != wantPPL {
		t.Fatalf("restored PPL %v != saved %v", got, wantPPL)
	}
	// All replicas must receive the broadcast.
	for s := 0; s < b.cfg.Stages; s++ {
		p0 := b.replicas[0][s].Params()
		p1 := b.replicas[1][s].Params()
		for i := range p0 {
			if !p0[i].Equal(p1[i], 0) {
				t.Fatalf("replica 1 stage %d param %d not broadcast", s, i)
			}
		}
	}
}

func TestCheckpointResumeTrainsOn(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(core.Baseline()), c)
	a.Train(20, nil)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(testConfig(core.Baseline()), c)
	if err := b.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	before := b.ValidationPerplexity(150)
	b.Train(30, nil)
	after := b.ValidationPerplexity(150)
	if after >= before {
		t.Fatalf("resumed training did not improve: %v → %v", before, after)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(core.Baseline()), c)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte{}, blob...)
	bad[0] ^= 0xff // break the magic
	if err := a.LoadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted magic accepted")
	}

	if err := a.LoadCheckpoint(bytes.NewReader(blob[:10])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointRejectsArchitectureMismatch(t *testing.T) {
	c := testCorpus(t)
	a, _ := New(testConfig(core.Baseline()), c)
	blob, err := a.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	other := testConfig(core.Baseline())
	other.Model.Hidden = 24
	b, err := New(other, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func TestParallelGroupsBitIdentical(t *testing.T) {
	c := testCorpus(t)
	seq := testConfig(core.CBFESC())
	seq.Opt.CBRank = 2
	seq.Opt.DPRank = 2
	par := seq
	par.ParallelGroups = true

	a, err := New(seq, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(par, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		la := a.TrainIteration()
		lb := b.TrainIteration()
		if la != lb {
			t.Fatalf("iteration %d: parallel loss %v != sequential %v", i, lb, la)
		}
	}
	for s := 0; s < seq.Stages; s++ {
		pa := a.replicas[0][s].Params()
		pb := b.replicas[0][s].Params()
		for i := range pa {
			if !pa[i].Equal(pb[i], 0) {
				t.Fatalf("stage %d param %d differs between parallel and sequential", s, i)
			}
		}
	}
}
