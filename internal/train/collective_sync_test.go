package train

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
)

// trainPair runs the same configuration on the serial sync path and the
// collective runtime and returns both trainers after iters iterations,
// asserting the loss trajectories stayed exactly equal.
func trainPair(t *testing.T, cfg Config, c *data.Corpus, iters int) (serial, coll *Trainer) {
	t.Helper()
	sCfg := cfg
	sCfg.Engine = EngineReference
	cCfg := cfg

	serial, err := New(sCfg, c)
	if err != nil {
		t.Fatal(err)
	}
	coll, err = New(cCfg, c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coll.Close)
	if coll.coll == nil {
		t.Fatal("collective runtime not active on default config")
	}
	for i := 0; i < iters; i++ {
		ls, lc := serial.TrainIteration(), coll.TrainIteration()
		if ls != lc {
			t.Fatalf("iteration %d: losses diverged (serial %v vs collective %v)", i, ls, lc)
		}
	}
	return serial, coll
}

// assertSameWeights compares every parameter of every replica at
// tolerance zero.
func assertSameWeights(t *testing.T, a, b *Trainer, label string) {
	t.Helper()
	for dd := range a.replicas {
		for s := range a.replicas[dd] {
			pa, pb := a.replicas[dd][s].Params(), b.replicas[dd][s].Params()
			for i := range pa {
				if !pa[i].Equal(pb[i], 0) {
					t.Fatalf("%s: replica %d stage %d param %d differs between serial and collective sync", label, dd, s, i)
				}
			}
		}
	}
}

// TestCollectiveBitIdenticalToSerial pins the acceptance criterion: the
// exact and compressed collective paths reproduce the pre-PR serial sync
// bit for bit, across baseline, fused-embedding, CB, and the full
// Optimus-CC configuration, at 2- and 3-way data parallelism (3 ways
// exercises >2-rank rings, where a textbook rotated-order ring would
// already diverge in the last ulp).
func TestCollectiveBitIdenticalToSerial(t *testing.T) {
	c := testCorpus(t)
	fe := core.Baseline()
	fe.FuseEmbedding = true
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	for name, opt := range map[string]core.Config{
		"baseline": core.Baseline(),
		"fe":       fe,
		"cb":       scaledCB(),
		"cbfesc":   full,
	} {
		for _, dp := range []int{2, 3} {
			cfg := testConfig(opt)
			cfg.DPGroups = dp
			serial, coll := trainPair(t, cfg, c, 4)
			assertSameWeights(t, serial, coll, name)
		}
	}
}

// TestCollectiveBitIdenticalOnQuickstartConfig runs the quickstart
// configuration (DefaultConfig + the scaled full Optimus-CC opt) on both
// paths at tolerance zero.
func TestCollectiveBitIdenticalOnQuickstartConfig(t *testing.T) {
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MicroBatch = 32
	opt := core.CBFESC()
	opt.CBRank = 3 // experiments.ScaledOpt's mapping of the paper ranks
	opt.DPRank = 4
	cfg.Opt = opt
	serial, coll := trainPair(t, cfg, corpus, 3)
	assertSameWeights(t, serial, coll, "quickstart")
}

// TestCollectiveSingleStageAndSingleGroup covers the degenerate grids:
// 1×N (pure DP) and N×1 (pure PP) must also match the serial path.
func TestCollectiveSingleStageAndSingleGroup(t *testing.T) {
	c := testCorpus(t)
	oneStage := testConfig(core.Baseline())
	oneStage.Stages = 1
	serial, coll := trainPair(t, oneStage, c, 4)
	assertSameWeights(t, serial, coll, "stages=1")

	oneGroup := testConfig(scaledCB())
	oneGroup.DPGroups = 1
	serial, coll = trainPair(t, oneGroup, c, 4)
	assertSameWeights(t, serial, coll, "dp=1")
}

// TestCollectiveEmbVolumeMatchesCostModel asserts the predicted-vs-
// executed contract end to end through the trainer: embedding-sync
// traffic measured by the transport equals the Eq. 15/16 factors times
// the table volume, exactly.
func TestCollectiveEmbVolumeMatchesCostModel(t *testing.T) {
	c := testCorpus(t)
	const iters = 3
	run := func(fuse bool) int64 {
		opt := core.Baseline()
		opt.FuseEmbedding = fuse
		tr, err := New(testConfig(opt), c)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for i := 0; i < iters; i++ {
			tr.TrainIteration()
		}
		st, ok := tr.CollectiveStats()
		if !ok {
			t.Fatal("no collective stats")
		}
		return st.For(collective.ClassEmb).Bytes
	}
	cfg := testConfig(core.Baseline())
	d := cfg.DPGroups
	emb := cfg.Model.Vocab * cfg.Model.Hidden
	v := int64(emb) * compress.ElemBytes
	ranks := int64(2 * d) // first- and last-stage ranks of every replica

	fused := run(true)
	if want := int64(core.EmbSyncFusedVolumeFactor(d)*float64(v)) * ranks * iters; fused != want {
		t.Fatalf("fused emb traffic %d bytes, Eq. 16 says %d", fused, want)
	}
	baseline := run(false)
	if want := int64(core.EmbSyncVolumeFactor(d)*float64(v)) * ranks * iters; baseline != want {
		t.Fatalf("baseline emb traffic %d bytes, Eq. 15 says %d", baseline, want)
	}
	if fused >= baseline {
		t.Fatal("fused embedding sync did not reduce executed volume")
	}
}

// TestCollectivePPAccounting checks the pipeline-class accounting: the
// uncompressed backward volume is exact, and compressed backpropagation
// strictly reduces it.
func TestCollectivePPAccounting(t *testing.T) {
	c := testCorpus(t)
	const iters = 2
	run := func(opt core.Config) int64 {
		tr, err := New(testConfig(opt), c)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for i := 0; i < iters; i++ {
			tr.TrainIteration()
		}
		st, _ := tr.CollectiveStats()
		return st.For(collective.ClassPP).Bytes
	}
	cfg := testConfig(core.Baseline())
	// One dense forward AND one dense backward send per boundary per
	// micro-batch per replica (forward activations used to go unbooked —
	// the wire-accounting bug this PR fixes).
	act := int64(cfg.MicroBatch*cfg.Model.Hidden) * compress.ElemBytes
	transfers := 2 * int64(cfg.DPGroups*cfg.MicroBatches*(cfg.Stages-1)*iters)
	dense := run(core.Baseline())
	if want := act * transfers; dense != want {
		t.Fatalf("dense PP traffic %d bytes, want %d (fwd+bwd)", dense, want)
	}
	if cb := run(scaledCB()); cb >= dense {
		t.Fatalf("compressed backprop PP traffic %d not below dense %d", cb, dense)
	}
}

// TestCollectiveSyncSteadyStateZeroAllocs pins the last acceptance
// criterion at the trainer level: after warm-up, a full DP+embedding
// sync pass over the collective runtime allocates nothing.
func TestCollectiveSyncSteadyStateZeroAllocs(t *testing.T) {
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	cfg := testConfig(opt)
	cfg.SyncWorkers = 1 // keep the fan-out goroutine spawns out of the count
	cfg.DPSync = DPSyncBlocking
	tr, err := New(cfg, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Train(3, nil) // warm every workspace, residual, and payload buffer
	if n := testing.AllocsPerRun(10, func() {
		tr.syncDataParallel()
		tr.syncEmbedding()
	}); n != 0 {
		t.Fatalf("steady-state collective sync allocates (%v allocs/op)", n)
	}
}

// TestOverlappedSyncSteadyStateZeroAllocs pins the same contract on the
// overlapped path: arming the arrival counters, issuing every stage's
// buckets through the async handles, draining them, and the embedding
// phase — the exact per-iteration sync work — allocates nothing once
// warm.
func TestOverlappedSyncSteadyStateZeroAllocs(t *testing.T) {
	opt := core.CBFESC()
	opt.CBRank = 2
	opt.DPRank = 2
	cfg := testConfig(opt)
	tr, err := New(cfg, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.ov == nil {
		t.Fatal("overlapped sync not active on the default config")
	}
	tr.Train(3, nil) // warm every workspace, residual, and payload buffer
	pass := func() {
		tr.ov.reset()
		for s := cfg.Stages - 1; s >= 0; s-- {
			for d := 0; d < cfg.DPGroups; d++ {
				tr.dpStageReady(s)
			}
		}
		tr.syncDataParallel()
		tr.syncEmbedding()
	}
	pass()
	if n := testing.AllocsPerRun(10, pass); n != 0 {
		t.Fatalf("steady-state overlapped sync allocates (%v allocs/op)", n)
	}
}
