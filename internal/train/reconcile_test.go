package train

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// traceConfig is gridConfig with tracing enabled at a capacity sized
// for the run — the TraceCapacityFor contract is itself under test: a
// capacity it returns must never drop spans.
func traceConfig(opt core.Config, dp, pp, micros, iters int) Config {
	cfg := gridConfig(opt, dp, pp, micros)
	cfg.TraceCapacity = TraceCapacityFor(cfg, iters)
	return cfg
}

// TestReconcileTraceExact pins the tentpole acceptance criterion: on
// the 2×4 grid with compressed backprop and compressed DP sync, the
// executed trace's wire-bearing spans reconcile against the transport's
// counters at tolerance zero (per link class), the summed DP-drain
// spans equal DPSyncExposedNs at tolerance zero, and the simulator's
// plan-derived predictions price the executed traffic exactly — all
// under both DP sync modes. Run with -race this also proves the
// recorder's hot paths are race-clean.
func TestReconcileTraceExact(t *testing.T) {
	c := testCorpus(t)
	const iters = 3
	for name, opt := range overlapOpts() {
		for _, mode := range []DPSyncMode{DPSyncOverlapped, DPSyncBlocking} {
			cfg := traceConfig(opt, 2, 4, 4, iters)
			cfg.DPSync = mode
			tr, err := New(cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(tr.Close)
			for i := 0; i < iters; i++ {
				tr.TrainIteration()
			}
			rep, err := tr.ReconcileTrace()
			if err != nil {
				t.Fatalf("%s %v: %v", name, mode, err)
			}
			if rep.Iterations != iters {
				t.Fatalf("%s %v: report covers %d iterations, want %d", name, mode, rep.Iterations, iters)
			}
			st, ok := tr.CollectiveStats()
			if !ok {
				t.Fatalf("%s %v: no collective stats", name, mode)
			}
			if got, want := rep.Links[obs.LinkDP].TracedBytes+rep.Links[obs.LinkPP].TracedBytes+rep.Links[obs.LinkEmb].TracedBytes, st.Total().Bytes; got != want {
				t.Fatalf("%s %v: traced total %d != transport total %d", name, mode, got, want)
			}
			for _, l := range rep.Links {
				if l.TracedBytes != l.PredictedBytes {
					t.Errorf("%s %v %s: traced %d bytes, predicted %d (Δ %d)",
						name, mode, l.Link, l.TracedBytes, l.PredictedBytes, l.TracedBytes-l.PredictedBytes)
				}
				if l.TracedBytes > 0 && l.WireSpans == 0 {
					t.Errorf("%s %v %s: %d traced bytes but no wire spans", name, mode, l.Link, l.TracedBytes)
				}
			}
			if rep.DrainNs != rep.ExposedNs {
				t.Fatalf("%s %v: drain %d ns != exposed %d ns", name, mode, rep.DrainNs, rep.ExposedNs)
			}
			if rep.WindowNs <= 0 || rep.BusyNs <= 0 {
				t.Fatalf("%s %v: degenerate pipeline accounting (window %d, busy %d)", name, mode, rep.WindowNs, rep.BusyNs)
			}
			if rep.BubbleFrac < 0 || rep.BubbleFrac >= 1 {
				t.Fatalf("%s %v: bubble fraction %v out of range", name, mode, rep.BubbleFrac)
			}
			for _, cat := range []string{obs.CatFwd, obs.CatBwd, obs.CatInterStage, obs.CatDP, obs.CatPipe} {
				if rep.CategoryNs[cat] <= 0 {
					t.Errorf("%s %v: no executed time in category %q", name, mode, cat)
				}
			}
			if out := rep.String(); !strings.Contains(out, "tol 0") {
				t.Errorf("%s %v: report rendering missing reconciliation line:\n%s", name, mode, out)
			}
		}
	}
}

// TestExecutedTraceRoundTrip pins the export format: a 2×4 executed
// trace serializes to Chrome trace-event JSON that round-trips through
// the validator, carries the executed-run pid, and names every span
// category the instrumentation emits.
func TestExecutedTraceRoundTrip(t *testing.T) {
	c := testCorpus(t)
	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	cfg := traceConfig(full, 2, 4, 4, 2)
	tr, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	tr.TrainIteration()
	tr.TrainIteration()

	var buf bytes.Buffer
	if err := obs.WriteRecorderTrace(&buf, tr.Recorder(), "executed 2×4"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exported trace is not valid JSON:\n%.200s", buf.String())
	}
	check, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if check.Events == 0 || check.Metas == 0 {
		t.Fatalf("empty trace: %+v", check)
	}
	if int64(check.Events) != tr.Recorder().Count() {
		t.Fatalf("exported %d events, recorder holds %d spans", check.Events, tr.Recorder().Count())
	}
	cats := "," + strings.Join(check.Categories, ",") + ","
	for _, cat := range []string{obs.CatFwd, obs.CatBwd, obs.CatInterStage, obs.CatDP, obs.CatEmb, obs.CatCodec, obs.CatOpt, obs.CatPipe} {
		if !strings.Contains(cats, ","+cat+",") {
			t.Errorf("trace missing category %q (have %q)", cat, check.Categories)
		}
	}

	// The executed pid must not collide with the simulator's, so merged
	// files render as two process lanes in Perfetto.
	if !bytes.Contains(buf.Bytes(), []byte(`"pid":2`)) {
		t.Error("trace events missing executed-run pid 2")
	}
}

// TestReconcileTraceRejects pins the failure modes: reconciliation must
// refuse untraced runs, un-run trainers, and — the one that would
// silently corrupt the byte totals — a ring that dropped spans.
func TestReconcileTraceRejects(t *testing.T) {
	c := testCorpus(t)

	t.Run("disabled", func(t *testing.T) {
		tr, err := New(gridConfig(scaledCB(), 2, 4, 4), c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		tr.TrainIteration()
		if _, err := tr.ReconcileTrace(); err == nil || !strings.Contains(err.Error(), "disabled") {
			t.Fatalf("want tracing-disabled error, got %v", err)
		}
	})

	t.Run("no-iterations", func(t *testing.T) {
		tr, err := New(traceConfig(scaledCB(), 2, 4, 4, 1), c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		if _, err := tr.ReconcileTrace(); err == nil || !strings.Contains(err.Error(), "no completed iterations") {
			t.Fatalf("want no-iterations error, got %v", err)
		}
	})

	t.Run("dropped", func(t *testing.T) {
		cfg := gridConfig(scaledCB(), 2, 4, 4)
		cfg.TraceCapacity = 2 // far below one iteration's span count
		tr, err := New(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		tr.TrainIteration()
		if _, err := tr.ReconcileTrace(); err == nil || !strings.Contains(err.Error(), "dropped") {
			t.Fatalf("want dropped-spans error, got %v", err)
		}
	})
}

// TestStatsWindowCap pins the bounded-memory satellite: the Fig. 11
// series retain at most the configured window while Count and Summary
// stay exact over the full history.
func TestStatsWindowCap(t *testing.T) {
	st := NewStats()
	st.SetWindow(8)
	var sum float64
	const n = 100
	for i := 0; i < n; i++ {
		v := float64(i%5) - 2 // mixed signs
		st.appendBounded(&st.EpsMean, v, &st.epsN, &st.epsSumAbs)
		if v < 0 {
			sum -= v
		} else {
			sum += v
		}
	}
	if len(st.EpsMean) != 8 {
		t.Fatalf("series holds %d samples, window is 8", len(st.EpsMean))
	}
	if cap(st.EpsMean) > 16 {
		t.Fatalf("series capacity %d grew past the window", cap(st.EpsMean))
	}
	// Window keeps the newest samples, oldest first.
	for j, want := range []float64{float64((n-8+0)%5) - 2, float64((n-8+1)%5) - 2} {
		if st.EpsMean[j] != want {
			t.Fatalf("window[%d] = %v, want %v", j, st.EpsMean[j], want)
		}
	}
	if st.Count() != n {
		t.Fatalf("Count %d, want %d", st.Count(), n)
	}
	eps, _, _ := st.Summary()
	if want := sum / n; eps != want {
		t.Fatalf("Summary over full history %v, want %v", eps, want)
	}
}

// TestTraceCapacityFor sanity-checks the sizing helper: positive,
// monotone in iterations, and capped.
func TestTraceCapacityFor(t *testing.T) {
	cfg := gridConfig(scaledCB(), 2, 4, 4)
	c1, c2 := TraceCapacityFor(cfg, 1), TraceCapacityFor(cfg, 10)
	if c1 <= 0 || c2 < c1 {
		t.Fatalf("capacities %d, %d not positive-monotone", c1, c2)
	}
	if got := TraceCapacityFor(cfg, 1<<30); got != 1<<17 {
		t.Fatalf("unbounded iteration count not capped: %d", got)
	}
}
