package train

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Executed-vs-predicted reconciliation: the executed-run trace, the
// collective transport's counters, and the simulator's plan-derived
// predictions describe the same run from three angles. ReconcileTrace
// cross-checks them — the first two must agree byte-for-byte and
// nanosecond-for-nanosecond (tolerance zero; any mismatch is a bug in
// the instrumentation or the accounting, and errors loudly), while the
// analytic prediction is reported alongside for the executed-vs-
// predicted deltas the paper's overlap analysis reasons about.

// LinkReconciliation compares one link class's wire volume across the
// three accountings.
type LinkReconciliation struct {
	Link obs.Link
	// TracedBytes sums the Bytes of every wire-bearing span on this
	// link; TransportBytes is the collective transport's counter. The
	// two must be equal — ReconcileTrace errors otherwise.
	TracedBytes    int64
	TransportBytes int64
	// PredictedBytes is the simulator's plan-derived prediction for the
	// run (per-iteration prediction × completed iterations).
	PredictedBytes int64
	// WireSpans counts the wire-bearing spans summed into TracedBytes.
	WireSpans int
}

// TraceReport is ReconcileTrace's result: exact cross-checks (already
// verified when the report exists) plus the executed-vs-predicted
// breakdown.
type TraceReport struct {
	Iterations int
	Links      [3]LinkReconciliation // indexed by obs.LinkDP/LinkPP/LinkEmb

	// DrainNs sums the driver track's DP-drain span durations; ExposedNs
	// is DPSyncExposedNs. Equal by construction (verified).
	DrainNs   int64
	ExposedNs int64

	// WindowNs sums the driver's pipeline-window spans; BusyNs the
	// fwd/bwd compute spans across all Ranks engine tracks. BubbleFrac =
	// 1 − Busy/(Window·Ranks) is the executed pipeline bubble;
	// IdealBubbleFrac = (p−1)/(m+p−1) is the 1F1B analytic bubble.
	WindowNs        int64
	BusyNs          int64
	Ranks           int
	BubbleFrac      float64
	IdealBubbleFrac float64

	// CategoryNs sums executed span durations per trace category.
	CategoryNs map[string]int64
	Spans      int64
}

// String renders the report as the optcc-train -reconcile output.
func (r *TraceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace reconciliation over %d iteration(s), %d spans\n", r.Iterations, r.Spans)
	fmt.Fprintf(&b, "  wire bytes (traced == transport, tol 0):\n")
	for _, l := range r.Links {
		fmt.Fprintf(&b, "    %-4s %14d bytes in %5d wire spans   predicted %14d\n",
			l.Link, l.TracedBytes, l.WireSpans, l.PredictedBytes)
	}
	fmt.Fprintf(&b, "  dp exposed: traced drain %d ns == counter %d ns (tol 0)\n", r.DrainNs, r.ExposedNs)
	fmt.Fprintf(&b, "  pipeline: window %d ns, busy %d ns over %d ranks — bubble %.3f (ideal 1F1B %.3f)\n",
		r.WindowNs, r.BusyNs, r.Ranks, r.BubbleFrac, r.IdealBubbleFrac)
	cats := make([]string, 0, len(r.CategoryNs))
	for c := range r.CategoryNs {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	fmt.Fprintf(&b, "  executed ns by category:")
	for _, c := range cats {
		fmt.Fprintf(&b, " %s=%d", c, r.CategoryNs[c])
	}
	b.WriteByte('\n')
	return b.String()
}

// ReconcileTrace aligns the executed-run trace against the collective
// transport's counters and the simulator's plan-derived predictions.
// The exact checks — per-class traced wire bytes == transport bytes,
// summed drain spans == DPSyncExposedNs, both at tolerance zero — are
// enforced here; an error means the trace cannot be trusted (or was
// incomplete: a recorder that dropped spans is rejected, as is a
// trainer without tracing or without a transport to reconcile against).
// Call between iterations, never while one is in flight.
func (t *Trainer) ReconcileTrace() (*TraceReport, error) {
	switch {
	case t.rec == nil:
		return nil, fmt.Errorf("train: tracing disabled (Config.TraceCapacity == 0)")
	case t.coll == nil:
		return nil, fmt.Errorf("train: no collective transport to reconcile against (reference engine or 1×1 grid)")
	case t.iter == 0:
		return nil, fmt.Errorf("train: no completed iterations to reconcile")
	}
	if d := t.rec.Dropped(); d > 0 {
		return nil, fmt.Errorf("train: recorder dropped %d spans (ring capacity %d too small — see TraceCapacityFor)", d, t.rec.Capacity())
	}

	rep := &TraceReport{
		Iterations: t.iter,
		Ranks:      t.cfg.DPGroups * t.cfg.Stages,
		CategoryNs: map[string]int64{},
		Spans:      t.rec.Count(),
	}
	for l := obs.LinkDP; l <= obs.LinkEmb; l++ {
		rep.Links[l].Link = l
	}
	t.rec.EachSpan(func(track int, s obs.Span) {
		rep.CategoryNs[s.Category()] += s.DurNs()
		if s.Phase.WireBearing() && s.Link >= obs.LinkDP && s.Link <= obs.LinkEmb {
			rep.Links[s.Link].TracedBytes += s.Bytes
			rep.Links[s.Link].WireSpans++
		}
		switch s.Phase {
		case obs.PhaseDPDrain:
			rep.DrainNs += s.DurNs()
		case obs.PhasePipeline:
			rep.WindowNs += s.DurNs()
		case obs.PhaseFwd, obs.PhaseBwd:
			rep.BusyNs += s.DurNs()
		}
	})

	stats := t.coll.rt.Stats()
	for cls, link := range map[collective.Class]obs.Link{
		collective.ClassDP:  obs.LinkDP,
		collective.ClassPP:  obs.LinkPP,
		collective.ClassEmb: obs.LinkEmb,
	} {
		rep.Links[link].TransportBytes = stats.For(cls).Bytes
		if got, want := rep.Links[link].TracedBytes, stats.For(cls).Bytes; got != want {
			return nil, fmt.Errorf("train: %s wire bytes diverge — trace %d, transport %d (Δ %d)",
				link, got, want, got-want)
		}
	}
	rep.ExposedNs = t.DPSyncExposedNs()
	if rep.DrainNs != rep.ExposedNs {
		return nil, fmt.Errorf("train: dp exposed time diverges — drain spans %d ns, counter %d ns (Δ %d)",
			rep.DrainNs, rep.ExposedNs, rep.DrainNs-rep.ExposedNs)
	}

	rep.Links[obs.LinkPP].PredictedBytes = t.predictPPBytes() * int64(t.iter)
	rep.Links[obs.LinkDP].PredictedBytes = t.predictDPBytes() * int64(t.iter)
	rep.Links[obs.LinkEmb].PredictedBytes = t.predictEmbBytes() * int64(t.iter)

	if rep.WindowNs > 0 && rep.Ranks > 0 {
		rep.BubbleFrac = 1 - float64(rep.BusyNs)/(float64(rep.WindowNs)*float64(rep.Ranks))
	}
	p, m := t.cfg.Stages, t.cfg.MicroBatches
	rep.IdealBubbleFrac = float64(p-1) / float64(m+p-1)
	return rep, nil
}

// predictPPBytes prices one iteration's pipeline-parallel traffic from
// the compiled plan — the per-replica inter-stage prediction times the
// replica count.
func (t *Trainer) predictPPBytes() int64 {
	dense := int64(t.cfg.MicroBatch*t.cfg.Model.Hidden) * compress.ElemBytes
	return sim.PredictInterStageFromPlan(t.plan, dense, t.probeCBWireBytes()).Bytes * int64(t.cfg.DPGroups)
}

// predictDPBytes prices one iteration's data-parallel sync traffic from
// the plan's bucket schedule (zero when no DP sync runs).
func (t *Trainer) predictDPBytes() int64 {
	if t.cfg.DPGroups <= 1 {
		return 0
	}
	buckets, err := sim.PredictDPBucketBytes(t.plan, t.probeDPPayloadBytes)
	if err != nil {
		return 0 // no bucket schedule compiled (never the case for trainer plans)
	}
	var total int64
	for _, row := range buckets {
		for _, b := range row {
			total += b
		}
	}
	return total
}

// predictEmbBytes prices one iteration's §6 embedding synchronization:
// a dense R-way ring all-reduce of a V-byte buffer moves 2·V·(R−1)
// aggregate, whatever the chunking (each of the 2(R−1) rounds moves V
// in total across the ring).
func (t *Trainer) predictEmbBytes() int64 {
	v := t.replicas[0][0].EmbeddingGrad().SizeBytes(compress.ElemBytes)
	d := int64(t.cfg.DPGroups)
	switch t.plan.Embedding() {
	case plan.EmbDPOnly, plan.EmbFused:
		r := int64(len(t.coll.topo.EmbGroup()))
		return 2 * v * (r - 1)
	case plan.EmbTwoPhase:
		var total int64
		if d > 1 {
			total += 2 * 2 * v * (d - 1) // phase 1: one D-way average per side
		}
		total += d * 2 * v // phase 2: D pairwise 2-way sums, 2V each
		return total
	}
	return 0 // EmbNone: single rank, in-place update
}

// probeCBWireBytes measures the wire size of one compressed backward
// payload on a compressor built from the plan's boundary spec (payload
// sizes are shape-determined, so one probe prices every send). Zero
// when backprop compression is off or there is no boundary.
func (t *Trainer) probeCBWireBytes() int64 {
	if !t.cfg.Opt.CompressBackprop || t.cfg.Stages < 2 {
		return 0
	}
	probe := tensor.New(t.cfg.MicroBatch, t.cfg.Model.Hidden)
	for i := range probe.Data {
		probe.Data[i] = float64(i%13) / 13
	}
	c, err := compress.Build(t.plan.CBSpec(0, 1))
	if err != nil {
		return 0 // unreachable: the spec was validated by plan.Compile
	}
	return c.Compress(probe).WireBytes()
}

// probeDPPayloadBytes measures the compressed payload size of gradient
// channel (s, gi), or 0 where the channel stays dense — the callback
// sim.PredictDPBucketBytes prices compressed channels with.
func (t *Trainer) probeDPPayloadBytes(s, gi int) int64 {
	g := t.grads[0][s][gi]
	if !t.plan.DPCompressed(s) || !compressibleShape(g) {
		return 0
	}
	probe := tensor.New(g.Rows, g.Cols)
	for i := range probe.Data {
		probe.Data[i] = float64(i%7) / 7
	}
	c, err := compress.Build(t.plan.DPSpec(s, 0, gi))
	if err != nil {
		return 0 // unreachable: the spec was validated by plan.Compile
	}
	return c.Compress(probe).WireBytes()
}

// TraceCapacityFor returns a per-track ring capacity that a run of
// `iters` iterations of cfg cannot overflow: a generous upper bound on
// spans per track per iteration (compute, sends, codec, per-op and
// per-exec collective spans all land on different tracks, so the
// busiest track bounds them all), with headroom for the driver spans
// and the warm-up iteration.
func TraceCapacityFor(cfg Config, iters int) int {
	// Busiest track candidates: an engine rank (fwd/bwd/send/codec —
	// ≤ ~12 spans per micro-batch), a collective worker (one exec plus
	// up to two codec spans per issued op, ops bounded by the per-stage
	// gradient channel count ≲ 4·Blocks+8), and the per-class op tracks
	// (one span per issued op across every group of the class). A loose
	// affine form dominates all of them.
	spans := 12*cfg.MicroBatches + 40*cfg.Model.Blocks + 64
	c := spans * (iters + 1)
	if c > 1<<17 {
		c = 1 << 17
	}
	return c
}
