// Package whatif is the high-QPS scenario-evaluation engine behind the
// what-if service (cmd/optcc-serve): a concurrency-safe front end over
// the frozen-sequence sim.Evaluator that answers "what would this
// placement cost?" queries at tens of thousands per second.
//
// A sim.Evaluator prices one candidate in ~120 µs but is strictly
// single-goroutine (it mutates its frozen sequence in place). The
// engine makes that primitive serveable with three layers:
//
//   - Evaluator pool. Each frozen scenario (grid + model shape + comm
//     constants — everything but the Optimus-CC config and the bucket
//     budget) owns a bounded pool of Evaluators. Checkout is one channel
//     receive, checkin one send; evaluators are built lazily up to
//     MaxEvaluators (default GOMAXPROCS), so the pool saturates every
//     core without ever sharing an Evaluator between goroutines.
//
//   - Plan-keyed LRU cache. Results are cached under a canonical key
//     covering every core.Config field plus the bucket budget
//     (autotune.Candidate.Key-style, but collision-free over the full
//     config space) prefixed by the scenario's identity. The cache-hit
//     path is allocation-free: the key renders into a pooled buffer and
//     the sharded LRU looks it up without materializing a string.
//
//   - Singleflight + batch drain. Concurrent identical queries collapse
//     onto one in-flight pricing (the rest attach as waiters); distinct
//     queries against one scenario queue up and are drained in batches
//     of up to MaxBatch through a single evaluator checkout, optionally
//     after a short BatchWindow that lets a burst accumulate. Under
//     saturation (all evaluators checked out) arrivals batch naturally.
//
// Every path — cached, uncached, coalesced, batched — returns estimates
// bit-identical to a direct sim.Evaluator.Price call on a private
// evaluator; the engine tests pin this under -race. Counters (requests,
// cache hits/misses, coalesced queries, batch drains) live in an
// obs.Registry, and an optional obs.Recorder captures one span per
// batch drain (PhasePrice, Bytes = batch size).
//
// Server wraps the engine in the std-lib net/http JSON API that
// cmd/optcc-serve exposes: POST /v1/price, POST /v1/autotune (the
// internal/autotune search over a pooled evaluator), GET /metrics.
package whatif
