package whatif

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// Models is the model menu the service prices, mirroring optcc-sim's
// -model flag.
var Models = map[string]cluster.GPTSpec{
	"2.5b": cluster.GPT25B,
	"8.3b": cluster.GPT83B,
	"9.2b": cluster.GPT92B,
	"39b":  cluster.GPT39B,
	"175b": cluster.GPT175B,
}

// Presets is the named-configuration menu, mirroring optcc-sim's
// -config flag.
var Presets = map[string]func() core.Config{
	"baseline": core.Baseline,
	"cb":       core.CB,
	"cbfe":     core.CBFE,
	"cbfesc":   core.CBFESC,
	"naivedp":  core.NaiveDP,
	"naivecb":  core.NaiveCB,
}

// GridSpec names the frozen scenario a request prices against: the
// model plus the parallel mapping. Zero fields take the paper defaults
// (2.5b on TP8/DP4/PP4, 16 nodes) — the same defaults optcc-sim uses,
// so a bare request and a bare optcc-sim run price the same scenario.
type GridSpec struct {
	Model string `json:"model,omitempty"`
	TP    int    `json:"tp,omitempty"`
	DP    int    `json:"dp,omitempty"`
	PP    int    `json:"pp,omitempty"`
	Nodes int    `json:"nodes,omitempty"`
}

// ConfigSpec selects an Optimus-CC configuration: a preset by name
// (default "baseline") plus optional per-field overrides. Pointer
// fields distinguish "absent" from a zero value, so {"preset":
// "cbfesc", "cb_rank": 4} changes only the rank.
type ConfigSpec struct {
	Preset                 string   `json:"preset,omitempty"`
	CompressBackprop       *bool    `json:"compress_backprop,omitempty"`
	CBRank                 *int     `json:"cb_rank,omitempty"`
	CBAlg                  *string  `json:"cb_alg,omitempty"`
	LazyErrorPropagation   *bool    `json:"lazy_error_propagation,omitempty"`
	EpilogueOnly           *bool    `json:"epilogue_only,omitempty"`
	FuseEmbedding          *bool    `json:"fuse_embedding,omitempty"`
	SelectiveStageFraction *float64 `json:"selective_stage_fraction,omitempty"`
	DPRank                 *int     `json:"dp_rank,omitempty"`
	DPAlg                  *string  `json:"dp_alg,omitempty"`
	Seed                   *int64   `json:"seed,omitempty"`
}

func (g GridSpec) resolve(eff float64) (sim.Scenario, cluster.GPTSpec, error) {
	model := strings.ToLower(g.Model)
	if model == "" {
		model = "2.5b"
	}
	spec, ok := Models[model]
	if !ok {
		return sim.Scenario{}, spec, fmt.Errorf("unknown model %q", g.Model)
	}
	sc := sim.PaperScenario(spec, core.Baseline())
	if g.TP != 0 || g.DP != 0 || g.PP != 0 {
		m := cluster.Mapping{TP: g.TP, DP: g.DP, PP: g.PP}
		if m.TP == 0 {
			m.TP = 1
		}
		if m.DP == 0 {
			m.DP = 1
		}
		if m.PP == 0 {
			m.PP = 1
		}
		sc.Map = m
	}
	if g.Nodes != 0 {
		sc.Topo.Nodes = g.Nodes
	}
	if eff > 0 {
		sc.Topo.Efficiency = eff
	}
	return sc, spec, nil
}

func (c ConfigSpec) resolve() (core.Config, error) {
	preset := strings.ToLower(c.Preset)
	if preset == "" {
		preset = "baseline"
	}
	mk, ok := Presets[preset]
	if !ok {
		return core.Config{}, fmt.Errorf("unknown preset %q", c.Preset)
	}
	cfg := mk()
	if c.CompressBackprop != nil {
		cfg.CompressBackprop = *c.CompressBackprop
	}
	if c.CBRank != nil {
		cfg.CBRank = *c.CBRank
	}
	if c.CBAlg != nil {
		cfg.CBAlg = core.CBAlgorithm(*c.CBAlg)
	}
	if c.LazyErrorPropagation != nil {
		cfg.LazyErrorPropagation = *c.LazyErrorPropagation
	}
	if c.EpilogueOnly != nil {
		cfg.EpilogueOnly = *c.EpilogueOnly
	}
	if c.FuseEmbedding != nil {
		cfg.FuseEmbedding = *c.FuseEmbedding
	}
	if c.SelectiveStageFraction != nil {
		cfg.SelectiveStageFraction = *c.SelectiveStageFraction
	}
	if c.DPRank != nil {
		cfg.DPRank = *c.DPRank
	}
	if c.DPAlg != nil {
		cfg.DPAlg = *c.DPAlg
	}
	if c.Seed != nil {
		cfg.Seed = *c.Seed
	}
	return cfg, nil
}

// PriceRequest is the POST /v1/price body.
type PriceRequest struct {
	Grid        GridSpec   `json:"grid"`
	Config      ConfigSpec `json:"config"`
	BucketBytes int64      `json:"bucket_bytes,omitempty"`
}

// PriceResponse is the POST /v1/price reply. Estimate is the exact
// sim.Estimate JSON — byte-comparable (after canonicalization) with
// optcc-sim -price output for the same scenario and config.
type PriceResponse struct {
	Model    string       `json:"model"`
	Mapping  string       `json:"mapping"`
	Config   string       `json:"config"`
	Cached   bool         `json:"cached"`
	Estimate sim.Estimate `json:"estimate"`
}

// AutotuneRequest is the POST /v1/autotune body. Zero values take
// optcc-sim -autotune's defaults (budget 0.10, seed 1, exhaustive limit
// 4096, top 12), so the returned table matches that CLI's bit for bit.
type AutotuneRequest struct {
	Grid            GridSpec `json:"grid"`
	Budget          float64  `json:"budget,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
	ExhaustiveLimit int      `json:"exhaustive_limit,omitempty"`
	Top             int      `json:"top,omitempty"`
}

// AutotuneResponse is the POST /v1/autotune reply.
type AutotuneResponse struct {
	Model      string  `json:"model"`
	Mapping    string  `json:"mapping"`
	Mode       string  `json:"mode"`
	Enumerated int     `json:"enumerated"`
	Admitted   int     `json:"admitted"`
	Priced     int     `json:"priced"`
	WinnerKey  string  `json:"winner_key"`
	WinnerSec  float64 `json:"winner_iteration_sec"`
	Table      string  `json:"table"`
}

// ServerOptions tunes the HTTP front end.
type ServerOptions struct {
	// Efficiency overrides the scenarios' link-efficiency constant
	// (optcc-serve passes experiments.CalibratedEfficiency; 0 keeps the
	// topology default).
	Efficiency float64
	// PriceTimeout bounds one /v1/price request's in-engine wait
	// (0 = 5s). Pricing itself is microseconds; the bound guards queue
	// waits under overload.
	PriceTimeout time.Duration
	// AutotuneTimeout bounds one /v1/autotune search (0 = 120s). On
	// expiry the request fails 503 while the search finishes in the
	// background and returns its evaluator to the pool.
	AutotuneTimeout time.Duration
}

// Server is the std-lib HTTP front end over an Engine: POST /v1/price,
// POST /v1/autotune, GET /metrics (the engine's obs registry), GET
// /healthz. It implements http.Handler.
type Server struct {
	eng  *Engine
	opts ServerOptions
	mux  *http.ServeMux
}

// NewServer wires the routes.
func NewServer(eng *Engine, opts ServerOptions) *Server {
	if opts.PriceTimeout <= 0 {
		opts.PriceTimeout = 5 * time.Second
	}
	if opts.AutotuneTimeout <= 0 {
		opts.AutotuneTimeout = 120 * time.Second
	}
	s := &Server{eng: eng, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/price", s.handlePrice)
	s.mux.HandleFunc("POST /v1/autotune", s.handleAutotune)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the server's engine (stats, tests).
func (s *Server) Engine() *Engine { return s.eng }

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // past WriteHeader; an encode/write failure has no channel left
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decode parses the request body strictly: unknown fields are 400s, so
// a typo'd knob ("bucketbytes") fails loudly instead of silently
// pricing the default.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	var req PriceRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	sc, spec, err := req.Grid.resolve(s.opts.Efficiency)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := req.Config.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.eng.Open(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.PriceTimeout)
	defer cancel()
	est, cached, err := h.Price(ctx, cfg, req.BucketBytes)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, PriceResponse{
		Model:    spec.Name,
		Mapping:  sc.Map.String(),
		Config:   cfg.Name(),
		Cached:   cached,
		Estimate: est,
	})
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	sc, spec, err := req.Grid.resolve(s.opts.Efficiency)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.eng.Open(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	qm := autotune.DefaultQualityModel()
	if req.Budget > 0 {
		qm.Budget = req.Budget
	}
	opts := autotune.Options{Seed: req.Seed, ExhaustiveLimit: req.ExhaustiveLimit, Top: req.Top}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ExhaustiveLimit == 0 {
		opts.ExhaustiveLimit = 4096
	}
	if opts.Top == 0 {
		opts.Top = 12
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.AutotuneTimeout)
	defer cancel()
	type searchOut struct {
		res *autotune.Result
		err error
	}
	done := make(chan searchOut, 1)
	go func() {
		res, err := h.Autotune(autotune.DefaultSpace(sc.Map.PP), qm, opts)
		done <- searchOut{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			writeError(w, http.StatusBadRequest, out.err)
			return
		}
		writeJSON(w, http.StatusOK, AutotuneResponse{
			Model:      spec.Name,
			Mapping:    sc.Map.String(),
			Mode:       out.res.Mode,
			Enumerated: out.res.Enumerated,
			Admitted:   out.res.Admitted,
			Priced:     out.res.Priced,
			WinnerKey:  out.res.Winner.Candidate.Key(),
			WinnerSec:  out.res.Winner.Estimate.IterationSec,
			Table:      out.res.Table(),
		})
	case <-ctx.Done():
		// The search keeps running and checks its evaluator back in; only
		// this response gives up on it.
		writeError(w, http.StatusServiceUnavailable, ctx.Err())
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.eng.Registry().WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.eng.Registry().WriteText(w)
}
