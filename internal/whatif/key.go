package whatif

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/sim"
)

// appendPlanKey appends the canonical identity of one (config, bucket
// budget) pair to b and returns the extended slice — the plan-keyed
// cache key, in the spirit of autotune.Candidate.Key but covering every
// core.Config field so two distinct configs can never collide. The
// rendering is append-only over a caller-pooled buffer: the hot
// (cache-hit) path never materializes a string.
func appendPlanKey(b []byte, cfg core.Config, bucketBytes int64) []byte {
	b = appendBool(b, cfg.CompressBackprop)
	b = strconv.AppendInt(b, int64(cfg.CBRank), 10)
	b = append(b, '|')
	b = append(b, cfg.CBAlg...)
	b = append(b, '|')
	b = appendBool(b, cfg.LazyErrorPropagation)
	b = appendBool(b, cfg.EpilogueOnly)
	b = appendBool(b, cfg.FuseEmbedding)
	b = append(b, '|')
	b = strconv.AppendFloat(b, cfg.SelectiveStageFraction, 'g', -1, 64)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(cfg.DPRank), 10)
	b = append(b, '|')
	b = append(b, cfg.DPAlg...)
	b = append(b, '|')
	b = strconv.AppendInt(b, cfg.Seed, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, bucketBytes, 10)
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// scenarioKey renders the frozen-scenario identity: everything the
// evaluator's task-graph skeleton and duration formulas depend on
// except the per-query knobs (Cfg, BucketBytes), which are zeroed out.
// Registration-path only — one fmt render per Engine.Open, never per
// query.
func scenarioKey(s sim.Scenario) string {
	s.Cfg = core.Config{}
	s.BucketBytes = 0
	return fmt.Sprintf("%+v|%+v|%+v|%d/%d/%d|%+v|%+v",
		s.Topo, s.Map, s.Spec, s.MicroBatch, s.GlobalBatch, s.Iterations, s.Comm, s.Cost)
}

// fnvBytes is 32-bit FNV-1a over a byte slice (shard selection).
func fnvBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// fnvString is fnvBytes over a string, avoiding a []byte conversion.
func fnvString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
