package whatif

import (
	"container/list"
	"sync"

	"repro/internal/sim"
)

// cacheShards is the shard count of the plan-keyed LRU. Sharding by key
// hash keeps GOMAXPROCS workers off one mutex; 16 shards hold lock
// contention far below the pricing cost even on the all-hits path.
const cacheShards = 16

// cache is a sharded LRU over canonical plan keys. Get takes the key as
// a []byte view so the hit path performs a map lookup without
// allocating a string (the map index expression m[string(b)] compiles
// to an allocation-free lookup); Put takes the owned string the miss
// path materialized anyway for its singleflight entry.
type cache struct {
	perShard int
	shards   [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*list.Element
	ll *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	est sim.Estimate
}

// newCache builds a cache bounded at ~entries total (entries/shards per
// shard, minimum one each).
func newCache(entries int) *cache {
	per := entries / cacheShards
	if per < 1 {
		per = 1
	}
	c := &cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].ll = list.New()
	}
	return c
}

// get returns the cached estimate for key, refreshing its recency. The
// returned Estimate shares its Buckets slice with the cache: read-only.
func (c *cache) get(key []byte) (sim.Estimate, bool) {
	sh := &c.shards[fnvBytes(key)%cacheShards]
	sh.mu.Lock()
	el, ok := sh.m[string(key)]
	if !ok {
		sh.mu.Unlock()
		return sim.Estimate{}, false
	}
	sh.ll.MoveToFront(el)
	est := el.Value.(*cacheEntry).est
	sh.mu.Unlock()
	return est, true
}

// put inserts (or refreshes) key's estimate, evicting the shard's least
// recently used entry when over capacity.
func (c *cache) put(key string, est sim.Estimate) {
	sh := &c.shards[fnvString(key)%cacheShards]
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		el.Value.(*cacheEntry).est = est
		sh.ll.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	sh.m[key] = sh.ll.PushFront(&cacheEntry{key: key, est: est})
	if sh.ll.Len() > c.perShard {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.m, back.Value.(*cacheEntry).key)
	}
	sh.mu.Unlock()
}

// len reports the total entry count (tests).
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
