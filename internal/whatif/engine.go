package whatif

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Defaults for Options' zero values.
const (
	DefaultCacheEntries = 1 << 16
	DefaultMaxBatch     = 64
)

// Options tunes the engine.
type Options struct {
	// CacheEntries bounds the plan-keyed LRU (0 = DefaultCacheEntries;
	// negative disables result caching entirely).
	CacheEntries int
	// MaxEvaluators bounds each frozen scenario's evaluator pool — and
	// therefore the number of concurrent batch drainers per scenario
	// (0 = GOMAXPROCS).
	MaxEvaluators int
	// BatchWindow is how long a drain waits before its first checkout so
	// a burst of queries accumulates into one batch (0 = drain
	// immediately; batching still emerges under saturation, when every
	// evaluator is checked out and arrivals queue behind the drains).
	BatchWindow time.Duration
	// MaxBatch caps the queries one evaluator checkout drains per loop
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// Registry receives the engine's counters (nil = a private registry;
	// reachable either way via Engine.Registry).
	Registry *obs.Registry
	// Recorder, when non-nil with at least one track, records one span
	// per batch drain on track 0: PhasePrice, Bytes = batch size.
	Recorder *obs.Recorder
}

// Engine is the concurrency-safe scenario-evaluation engine: a registry
// of frozen scenarios, each with a bounded sim.Evaluator pool, behind a
// shared plan-keyed LRU with singleflight collapse and batch draining.
// All methods are safe for concurrent use; every returned Estimate is
// bit-identical to a direct sim.Evaluator.Price on a private evaluator.
type Engine struct {
	opts     Options
	cache    *cache
	reg      *obs.Registry
	rec      *obs.Recorder
	maxBatch int

	mu        sync.Mutex
	scenarios map[string]*scenarioState
	nextID    int

	reqs, hits, misses, coalesced     *obs.Counter
	batches, batchedReqs, priced      *obs.Counter
	autotunes, evCreated, priceErrors *obs.Counter
}

// NewEngine builds an engine. The zero Options value gives the serving
// defaults: 64Ki-entry cache, GOMAXPROCS evaluators per scenario,
// immediate drains of up to 64 queries.
func NewEngine(opts Options) *Engine {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{opts: opts, reg: reg, scenarios: make(map[string]*scenarioState)}
	if opts.CacheEntries >= 0 {
		n := opts.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		e.cache = newCache(n)
	}
	e.maxBatch = opts.MaxBatch
	if e.maxBatch <= 0 {
		e.maxBatch = DefaultMaxBatch
	}
	if opts.Recorder != nil && opts.Recorder.Tracks() > 0 {
		e.rec = opts.Recorder
	}
	e.reqs = reg.Counter("whatif.requests")
	e.hits = reg.Counter("whatif.cache_hits")
	e.misses = reg.Counter("whatif.cache_misses")
	e.coalesced = reg.Counter("whatif.coalesced")
	e.batches = reg.Counter("whatif.batches")
	e.batchedReqs = reg.Counter("whatif.batched_requests")
	e.priced = reg.Counter("whatif.priced")
	e.autotunes = reg.Counter("whatif.autotunes")
	e.evCreated = reg.Counter("whatif.evaluators_created")
	e.priceErrors = reg.Counter("whatif.price_errors")
	return e
}

// Registry returns the engine's metrics registry (for /metrics export).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	Requests, CacheHits, CacheMisses, Coalesced int64
	Batches, BatchedRequests, Priced            int64
	Autotunes, EvaluatorsCreated, PriceErrors   int64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:          e.reqs.Load(),
		CacheHits:         e.hits.Load(),
		CacheMisses:       e.misses.Load(),
		Coalesced:         e.coalesced.Load(),
		Batches:           e.batches.Load(),
		BatchedRequests:   e.batchedReqs.Load(),
		Priced:            e.priced.Load(),
		Autotunes:         e.autotunes.Load(),
		EvaluatorsCreated: e.evCreated.Load(),
		PriceErrors:       e.priceErrors.Load(),
	}
}

// CacheLen reports the number of cached estimates (0 when caching is
// disabled).
func (e *Engine) CacheLen() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}

// scenarioState is one frozen scenario's serving state: the evaluator
// pool plus the singleflight/batch queue.
type scenarioState struct {
	eng  *Engine
	id   int // cache-key prefix, unique per scenario
	base sim.Scenario

	max     int64 // pool bound == max concurrent drainers
	created atomic.Int64
	pool    chan *sim.Evaluator

	mu       sync.Mutex
	pending  map[string]*call // in-flight queries by plan key
	queue    []*call          // FIFO drain queue
	drainers int
}

// call is one in-flight pricing: the query plus the completion channel
// its waiters block on.
type call struct {
	key    string
	cfg    core.Config
	bucket int64
	done   chan struct{}
	est    sim.Estimate
	err    error
}

func (c *call) wait(ctx context.Context) (sim.Estimate, error) {
	select {
	case <-c.done:
		return c.est, c.err
	case <-ctx.Done():
		return sim.Estimate{}, ctx.Err()
	}
}

// Handle is a registered frozen scenario — the hot-path entry point.
// Handles are cheap values; hold one per scenario and share it freely
// across goroutines.
type Handle struct {
	st *scenarioState
}

// Open registers (or finds) the frozen scenario and returns its handle.
// The scenario's Cfg and BucketBytes are templates only — every query
// supplies its own — so two scenarios differing only there share one
// state. The first evaluator is built eagerly: an unpriceable scenario
// fails here, never on the serving path.
func (e *Engine) Open(sc sim.Scenario) (*Handle, error) {
	base := sc
	base.Cfg = core.Baseline()
	base.BucketBytes = 0
	key := scenarioKey(base)
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.scenarios[key]; ok {
		return &Handle{st: st}, nil
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	ev, err := sim.NewEvaluator(base)
	if err != nil {
		return nil, err
	}
	max := e.opts.MaxEvaluators
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	st := &scenarioState{
		eng:     e,
		id:      e.nextID,
		base:    base,
		max:     int64(max),
		pool:    make(chan *sim.Evaluator, max),
		pending: make(map[string]*call),
	}
	e.nextID++
	st.created.Store(1)
	e.evCreated.Add(1)
	st.pool <- ev
	e.scenarios[key] = st
	return &Handle{st: st}, nil
}

// Scenario returns the handle's frozen base scenario.
func (h *Handle) Scenario() sim.Scenario { return h.st.base }

// keyBufPool recycles plan-key render buffers so the cache-hit path is
// allocation-free.
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// Price evaluates one configuration against the handle's scenario,
// returning the estimate and whether it was served from the cache. The
// result is bit-identical to sim.Evaluator.Price(cfg, bucketBytes) on
// an evaluator built from the same scenario. ctx bounds waiting (on a
// coalesced in-flight pricing or a saturated pool), not the ~120 µs
// pricing itself.
func (h *Handle) Price(ctx context.Context, cfg core.Config, bucketBytes int64) (sim.Estimate, bool, error) {
	st := h.st
	e := st.eng
	e.reqs.Add(1)
	bp := keyBufPool.Get().(*[]byte)
	buf := strconv.AppendInt((*bp)[:0], int64(st.id), 10)
	buf = append(buf, '#')
	buf = appendPlanKey(buf, cfg, bucketBytes)
	if e.cache != nil {
		if est, ok := e.cache.get(buf); ok {
			*bp = buf
			keyBufPool.Put(bp)
			e.hits.Add(1)
			return est, true, nil
		}
	}
	e.misses.Add(1)
	est, err := st.price(ctx, buf, cfg, bucketBytes)
	*bp = buf
	keyBufPool.Put(bp)
	return est, false, err
}

// price is the miss path: singleflight-collapse onto an in-flight call
// for the same key, or enqueue a new call and — when a drainer slot is
// free — become the drainer.
func (st *scenarioState) price(ctx context.Context, key []byte, cfg core.Config, bucketBytes int64) (sim.Estimate, error) {
	e := st.eng
	st.mu.Lock()
	if c, ok := st.pending[string(key)]; ok {
		st.mu.Unlock()
		e.coalesced.Add(1)
		return c.wait(ctx)
	}
	c := &call{key: string(key), cfg: cfg, bucket: bucketBytes, done: make(chan struct{})}
	st.pending[c.key] = c
	st.queue = append(st.queue, c)
	lead := st.drainers < int(st.max)
	if lead {
		st.drainers++
	}
	st.mu.Unlock()
	if lead {
		st.drain(ctx)
	}
	return c.wait(ctx)
}

// drain services the scenario's queue: optionally wait the batch
// window, check out one evaluator, then price batches of up to MaxBatch
// until the queue is empty. Results land in the cache before their
// calls complete, so a key is priced at most once even as waiters
// stream in. The drainer slot is released only under the queue lock
// with an empty queue — an enqueuer that finds every slot taken is
// guaranteed an active drainer will see its call.
func (st *scenarioState) drain(ctx context.Context) {
	e := st.eng
	if w := e.opts.BatchWindow; w > 0 {
		t := time.NewTimer(w)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop() // cancelled leader still drains: the queue may hold others' calls
		}
	}
	ev, evErr := st.checkout()
	var batch []*call
	for {
		st.mu.Lock()
		if len(st.queue) == 0 {
			st.drainers--
			st.mu.Unlock()
			break
		}
		n := len(st.queue)
		if n > e.maxBatch {
			n = e.maxBatch
		}
		batch = append(batch[:0], st.queue[:n]...)
		rest := copy(st.queue, st.queue[n:])
		for i := rest; i < len(st.queue); i++ {
			st.queue[i] = nil
		}
		st.queue = st.queue[:rest]
		st.mu.Unlock()

		start := e.rec.Now()
		for _, c := range batch {
			if evErr != nil {
				c.err = evErr
				e.priceErrors.Add(1)
				continue
			}
			c.est, c.err = ev.Price(c.cfg, c.bucket)
			e.priced.Add(1)
			if c.err != nil {
				e.priceErrors.Add(1)
			} else if e.cache != nil {
				e.cache.put(c.key, c.est)
			}
		}
		e.rec.Record(0, obs.PhasePrice, obs.LinkNone, start, int64(len(batch)), -1, -1, len(batch))
		e.batches.Add(1)
		e.batchedReqs.Add(int64(len(batch)))

		st.mu.Lock()
		for _, c := range batch {
			delete(st.pending, c.key)
		}
		st.mu.Unlock()
		for _, c := range batch {
			close(c.done)
		}
	}
	if ev != nil {
		st.pool <- ev
	}
}

// checkout acquires an evaluator: pooled if one is free, freshly built
// while under the bound, else it blocks for the next checkin. No ctx:
// the drain may be servicing other callers' queries, and evaluator
// turnaround is microseconds, so a bounded block beats failing someone
// else's request with this caller's deadline.
func (st *scenarioState) checkout() (*sim.Evaluator, error) {
	select {
	case ev := <-st.pool:
		return ev, nil
	default:
	}
	if st.created.Add(1) <= st.max {
		ev, err := sim.NewEvaluator(st.base)
		if err != nil {
			st.created.Add(-1)
			return nil, err
		}
		st.eng.evCreated.Add(1)
		return ev, nil
	}
	st.created.Add(-1)
	return <-st.pool, nil
}

// Autotune runs the plan-space search against this scenario on a
// checked-out evaluator — the /v1/autotune backend. Concurrent searches
// draw distinct evaluators from the same pool the price path uses.
func (h *Handle) Autotune(sp autotune.Space, qm autotune.QualityModel, opts autotune.Options) (*autotune.Result, error) {
	st := h.st
	ev, err := st.checkout()
	if err != nil {
		return nil, err
	}
	defer func() { st.pool <- ev }()
	st.eng.autotunes.Add(1)
	return autotune.Search(ev, sp, qm, opts)
}
