package whatif

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

func testScenario() sim.Scenario {
	return sim.PaperScenario(cluster.GPT25B, core.Baseline())
}

type query struct {
	name   string
	cfg    core.Config
	bucket int64
}

// testQueries is a spread of distinct (config, bucket) plans: every
// preset, plus bucket-budget variations that only differ in the key's
// bucket field.
func testQueries() []query {
	qs := []query{
		{"baseline", core.Baseline(), 0},
		{"cb", core.CB(), 0},
		{"cbfe", core.CBFE(), 0},
		{"cbfesc", core.CBFESC(), 0},
		{"naive-dp", core.NaiveDP(), 0},
		{"naive-cb", core.NaiveCB(), 0},
		{"cbfesc-bkt4M", core.CBFESC(), 4 << 20},
		{"cbfesc-bkt64M", core.CBFESC(), 64 << 20},
		{"baseline-bkt16M", core.Baseline(), 16 << 20},
	}
	return qs
}

// reference prices every query directly on a private evaluator built
// from the handle's own frozen scenario — the oracle all engine paths
// must match bit for bit.
func reference(t *testing.T, h *Handle) map[string]sim.Estimate {
	t.Helper()
	ev, err := sim.NewEvaluator(h.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]sim.Estimate)
	for _, q := range testQueries() {
		est, err := ev.Price(q.cfg, q.bucket)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		want[q.name] = est
	}
	return want
}

// TestPriceBitIdentical pins tolerance-zero equivalence with a direct
// sim.Evaluator on both the uncached (first call) and cached (second
// call) paths.
func TestPriceBitIdentical(t *testing.T) {
	e := NewEngine(Options{})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, h)
	ctx := context.Background()
	for round, wantCached := range []bool{false, true} {
		for _, q := range testQueries() {
			est, cached, err := h.Price(ctx, q.cfg, q.bucket)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, q.name, err)
			}
			if cached != wantCached {
				t.Errorf("round %d %s: cached = %v, want %v", round, q.name, cached, wantCached)
			}
			if !reflect.DeepEqual(est, want[q.name]) {
				t.Errorf("round %d %s: estimate diverged:\n got %+v\nwant %+v", round, q.name, est, want[q.name])
			}
		}
	}
	st := e.Stats()
	n := int64(len(testQueries()))
	if st.Requests != 2*n || st.CacheHits != n || st.Priced != n {
		t.Errorf("stats = %+v, want requests %d, hits %d, priced %d", st, 2*n, n, n)
	}
}

// TestConcurrentBitIdentical hammers one handle from GOMAXPROCS workers
// with overlapping queries, so results come back through every path —
// fresh pricing, cache hits, singleflight waiters, multi-query batch
// drains — and each must equal the serial reference exactly. Run under
// -race this is also the aliasing check at the engine level.
func TestConcurrentBitIdentical(t *testing.T) {
	e := NewEngine(Options{BatchWindow: 100 * time.Microsecond})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, h)
	qs := testQueries()

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				q := qs[(round+w)%len(qs)]
				est, _, err := h.Price(ctx, q.cfg, q.bucket)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(est, want[q.name]) {
					t.Errorf("worker %d round %d: %s diverged:\n got %+v\nwant %+v", w, round, q.name, est, want[q.name])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Priced != int64(len(qs)) {
		t.Errorf("priced %d distinct plans, want %d (singleflight + cache must collapse repeats)", st.Priced, len(qs))
	}
	if st.Requests != int64(workers*50) {
		t.Errorf("requests = %d, want %d", st.Requests, workers*50)
	}
}

// TestSingleflightCollapses pins that N concurrent identical queries
// price exactly once: every request either coalesces onto the in-flight
// call or hits the cache it filled.
func TestSingleflightCollapses(t *testing.T) {
	e := NewEngine(Options{BatchWindow: time.Millisecond})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	ests := make([]sim.Estimate, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ests[i], _, errs[i] = h.Price(context.Background(), core.CBFESC(), 4<<20)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(ests[i], ests[0]) {
			t.Fatalf("request %d saw a different estimate", i)
		}
	}
	if st := e.Stats(); st.Priced != 1 {
		t.Errorf("priced = %d, want 1 (n=%d identical concurrent queries)", st.Priced, n)
	}
}

// TestBatchDraining pins that queued distinct queries drain in batches
// through one evaluator checkout: with a single evaluator and a batch
// window, n queries produce far fewer drains than queries, and every
// query is accounted for in batched_requests.
func TestBatchDraining(t *testing.T) {
	e := NewEngine(Options{MaxEvaluators: 1, BatchWindow: 50 * time.Millisecond})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct plans: bucket budget is part of the key.
			if _, _, err := h.Price(context.Background(), core.CBFESC(), int64(i+1)<<20); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.Priced != n || st.BatchedRequests != n {
		t.Errorf("priced = %d, batched_requests = %d, want %d", st.Priced, st.BatchedRequests, n)
	}
	if st.Batches >= n {
		t.Errorf("batches = %d for %d queries: no batching happened", st.Batches, n)
	}
	if st.EvaluatorsCreated != 1 {
		t.Errorf("evaluators_created = %d, want 1", st.EvaluatorsCreated)
	}
}

// TestLRUEviction bounds the cache and pins that evicted plans re-price
// correctly: with capacity for 16 entries and 200 distinct plans, the
// second pass must re-price at least the evicted majority, and every
// estimate stays bit-identical.
func TestLRUEviction(t *testing.T) {
	e := NewEngine(Options{CacheEntries: 16})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sim.NewEvaluator(h.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 200
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			bucket := int64(i+1) << 16
			got, _, err := h.Price(ctx, core.CBFESC(), bucket)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ev.Price(core.CBFESC(), bucket)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d plan %d diverged after eviction churn", pass, i)
			}
		}
	}
	if got := e.CacheLen(); got > 16 {
		t.Errorf("cache holds %d entries, capacity 16", got)
	}
	st := e.Stats()
	if st.Priced < n+(n-16) {
		t.Errorf("priced = %d, want >= %d (second pass must re-price evicted plans)", st.Priced, n+(n-16))
	}
}

// TestCacheDisabled pins the CacheEntries<0 escape hatch: every request
// prices (modulo singleflight) and nothing reports as cached.
func TestCacheDisabled(t *testing.T) {
	e := NewEngine(Options{CacheEntries: -1})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_, cached, err := h.Price(ctx, core.CBFESC(), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("request %d reported cached with caching disabled", i)
		}
	}
	if st := e.Stats(); st.Priced != 3 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want priced 3, hits 0", st)
	}
}

// TestOpenDeduplicatesScenarios pins that Open keyed on the frozen
// scenario returns handles sharing one state: a plan priced through one
// handle is a cache hit through the other, and per-query fields
// (Cfg, BucketBytes) do not split the state.
func TestOpenDeduplicatesScenarios(t *testing.T) {
	e := NewEngine(Options{})
	sc1 := testScenario()
	sc2 := testScenario()
	sc2.Cfg = core.CBFESC() // per-query template differences must not matter
	sc2.BucketBytes = 4 << 20
	h1, err := e.Open(sc1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Open(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if h1.st != h2.st {
		t.Fatal("equal frozen scenarios opened distinct states")
	}
	ctx := context.Background()
	if _, cached, err := h1.Price(ctx, core.CB(), 0); err != nil || cached {
		t.Fatalf("first price: cached=%v err=%v", cached, err)
	}
	if _, cached, err := h2.Price(ctx, core.CB(), 0); err != nil || !cached {
		t.Fatalf("second price through other handle: cached=%v err=%v, want cache hit", cached, err)
	}

	sc3 := testScenario()
	sc3.MicroBatch = 4 // grid change: genuinely different scenario
	sc3.GlobalBatch = 256
	h3, err := e.Open(sc3)
	if err != nil {
		t.Fatal(err)
	}
	if h3.st == h1.st {
		t.Fatal("different grids opened the same state")
	}
	if _, cached, err := h3.Price(ctx, core.CB(), 0); err != nil || cached {
		t.Fatalf("other scenario's plan must not hit the shared cache: cached=%v err=%v", cached, err)
	}
}

// TestPriceErrorPropagates pins that an invalid config errors without
// poisoning the cache or wedging the drain loop.
func TestPriceErrorPropagates(t *testing.T) {
	e := NewEngine(Options{})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	bad := core.CBFESC()
	bad.CBAlg = "no-such-compressor"
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, cached, err := h.Price(ctx, bad, 0); err == nil || cached {
			t.Fatalf("attempt %d: invalid config priced without error (cached=%v)", i, cached)
		}
	}
	if _, _, err := h.Price(ctx, core.CBFESC(), 0); err != nil {
		t.Fatalf("engine wedged after config error: %v", err)
	}
	st := e.Stats()
	if st.PriceErrors != 2 {
		t.Errorf("price_errors = %d, want 2 (errors are never cached)", st.PriceErrors)
	}
}

// TestCacheHitPathAllocationFree pins the hot-path contract: a cache
// hit performs zero heap allocations (pooled key buffer, string-free
// map lookup).
func TestCacheHitPathAllocationFree(t *testing.T) {
	e := NewEngine(Options{})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := core.CBFESC()
	if _, _, err := h.Price(ctx, cfg, 4<<20); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, cached, err := h.Price(ctx, cfg, 4<<20); err != nil || !cached {
			t.Fatalf("cached=%v err=%v", cached, err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache-hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestContextCancellation pins that a cancelled waiter unblocks with
// ctx.Err while the drain (serving others) completes independently.
func TestContextCancellation(t *testing.T) {
	e := NewEngine(Options{})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := h.Price(ctx, core.CBFESC(), 8<<20); err == nil {
		// A pre-cancelled context may still win the race when pricing
		// finishes first; accept success but require the estimate then.
		t.Log("pre-cancelled request completed before cancellation was observed")
	}
	// The engine must still serve the same plan afterwards.
	if _, _, err := h.Price(context.Background(), core.CBFESC(), 8<<20); err != nil {
		t.Fatalf("engine unusable after cancelled request: %v", err)
	}
}

// TestRecorderSpans pins the per-drain span: track 0 gets one
// PhasePrice span per batch with Bytes = batch size.
func TestRecorderSpans(t *testing.T) {
	rec := obs.NewRecorder([]string{"whatif"}, 1024)
	e := NewEngine(Options{Recorder: rec})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range testQueries() {
		if _, _, err := h.Price(ctx, q.cfg, q.bucket); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if got := int64(rec.Len(0)); got != st.Batches {
		t.Fatalf("recorded %d spans, want one per batch (%d)", got, st.Batches)
	}
	var bytes int64
	rec.Spans(0, func(s obs.Span) {
		if s.Phase != obs.PhasePrice {
			t.Errorf("span phase = %v, want PhasePrice", s.Phase)
		}
		bytes += s.Bytes
	})
	if bytes != st.BatchedRequests {
		t.Errorf("span bytes total %d, want batched_requests %d", bytes, st.BatchedRequests)
	}
}

// TestAutotuneThroughHandle pins that the pooled-evaluator search is
// bit-identical to autotune.Search on a private evaluator (same space,
// model, seed → same table).
func TestAutotuneThroughHandle(t *testing.T) {
	e := NewEngine(Options{})
	h, err := e.Open(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	sp := autotune.Space{
		Stages:        4,
		CBFamilies:    []string{"powersgd"},
		CBRanks:       []int{4, 16},
		DPFamilies:    []string{"powersgd"},
		DPRanks:       []int{128},
		BucketBudgets: []int64{0, 4 << 20},
	}
	qm := autotune.DefaultQualityModel()
	opts := autotune.Options{Seed: 1, Top: 8}
	got, err := h.Autotune(sp, qm, opts)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sim.NewEvaluator(h.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	want, err := autotune.Search(ev, sp, qm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table() != want.Table() {
		t.Errorf("pooled-evaluator search table diverged from direct search:\n got:\n%s\nwant:\n%s", got.Table(), want.Table())
	}
	if e.Stats().Autotunes != 1 {
		t.Errorf("autotunes counter = %d, want 1", e.Stats().Autotunes)
	}
}
