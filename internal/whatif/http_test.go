package whatif

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewEngine(Options{}), ServerOptions{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestServePriceBitIdentical pins the full HTTP round trip against a
// direct evaluator: the served estimate must decode to the exact same
// sim.Estimate (JSON float64 encoding round-trips bit for bit).
func TestServePriceBitIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"grid":{"model":"2.5b"},"config":{"preset":"cbfesc"},"bucket_bytes":4194304}`

	ev, err := sim.NewEvaluator(sim.PaperScenario(cluster.GPT25B, core.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Price(core.CBFESC(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}

	for round, wantCached := range []bool{false, true} {
		resp, raw := post(t, ts, "/v1/price", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, raw)
		}
		var pr PriceResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if pr.Cached != wantCached {
			t.Errorf("round %d: cached = %v, want %v", round, pr.Cached, wantCached)
		}
		if pr.Config != "CB+FE+SC" && pr.Config == "" {
			t.Errorf("round %d: empty config name", round)
		}
		if pr.Mapping != "TP8/DP4/PP4" {
			t.Errorf("round %d: mapping = %q", round, pr.Mapping)
		}
		if !reflect.DeepEqual(pr.Estimate, want) {
			t.Errorf("round %d: served estimate diverged from direct evaluator:\n got %+v\nwant %+v",
				round, pr.Estimate, want)
		}
	}
}

// TestServePriceDefaults pins that an empty body prices the paper
// default: baseline 2.5b on TP8/DP4/PP4.
func TestServePriceDefaults(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := post(t, ts, "/v1/price", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var pr PriceResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Config != "Baseline" || pr.Mapping != "TP8/DP4/PP4" {
		t.Errorf("defaults resolved to config %q mapping %q", pr.Config, pr.Mapping)
	}
	if pr.Estimate.IterationSec <= 0 {
		t.Errorf("iteration_sec = %v, want > 0", pr.Estimate.IterationSec)
	}
}

// TestServePriceOverrides pins the pointer-field override semantics:
// only the named knob changes.
func TestServePriceOverrides(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := post(t, ts, "/v1/price",
		`{"config":{"preset":"cbfesc","cb_rank":4}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var pr PriceResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	cfg := core.CBFESC()
	cfg.CBRank = 4
	ev, err := sim.NewEvaluator(sim.PaperScenario(cluster.GPT25B, core.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Price(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr.Estimate, want) {
		t.Errorf("override estimate diverged:\n got %+v\nwant %+v", pr.Estimate, want)
	}
}

// TestServeBadRequests pins the 4xx surface: unknown model, unknown
// preset, unknown JSON field, invalid config, wrong method.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown model", `{"grid":{"model":"13b"}}`},
		{"unknown preset", `{"config":{"preset":"warp"}}`},
		{"unknown field", `{"bucketbytes":1}`},
		{"bad compressor", `{"config":{"preset":"cbfesc","cb_alg":"no-such"}}`},
		{"malformed", `{`},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts, "/v1/price", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/price")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/price: status %d, want 405", resp.StatusCode)
	}
}

// TestServeMetricsAndHealth pins the observability endpoints: healthz
// is 200, /metrics lists the engine counters as text and as JSON.
func TestServeMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts, "/v1/price", `{}`)

	resp, _ := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, text := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(string(text), "whatif.requests") {
		t.Errorf("text metrics missing whatif.requests:\n%s", text)
	}

	_, js := get(t, ts, "/metrics?format=json")
	var metrics []struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	}
	if err := json.Unmarshal(js, &metrics); err != nil {
		t.Fatalf("json metrics: %v\n%s", err, js)
	}
	found := false
	for _, m := range metrics {
		if m.Name == "whatif.requests" && m.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("json metrics missing whatif.requests >= 1: %v", metrics)
	}
}

// TestServeAutotuneMatchesDirectSearch pins that the served table is
// bit-identical to autotune.Search run directly with the CLI defaults
// on the same scenario — the equivalence the CI smoke checks over a
// real socket against optcc-sim -autotune.
func TestServeAutotuneMatchesDirectSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("prices the default space (~thousands of candidates)")
	}
	_, ts := newTestServer(t)
	resp, raw := post(t, ts, "/v1/autotune", `{"grid":{"tp":8,"dp":4,"pp":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var ar AutotuneResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}

	sc := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	sc.Map = cluster.Mapping{TP: 8, DP: 4, PP: 2}
	ev, err := sim.NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := autotune.Search(ev, autotune.DefaultSpace(2), autotune.DefaultQualityModel(),
		autotune.Options{Seed: 1, ExhaustiveLimit: 4096, Top: 12})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Table != want.Table() {
		t.Errorf("served table diverged from direct search:\n got:\n%s\nwant:\n%s", ar.Table, want.Table())
	}
	if ar.WinnerKey != want.Winner.Candidate.Key() {
		t.Errorf("winner key = %q, want %q", ar.WinnerKey, want.Winner.Candidate.Key())
	}
}
