// Package simnet provides the discrete-event substrate of the timing
// simulator: analytic cost models for point-to-point transfers and ring
// all-reduce (Thakur et al., the model the paper's §6 cost analysis uses),
// and a task-graph engine that resolves start/finish times for compute and
// communication tasks sharing exclusive resources.
package simnet

import "fmt"

// Link models one interconnect class by bandwidth and per-message latency.
type Link struct {
	Name         string
	BandwidthBps float64 // bits per second
	LatencySec   float64 // per-message latency (α term)
}

// TransferTime returns the time to move bytes over the link once.
func (l Link) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.LatencySec + float64(bytes*8)/l.BandwidthBps
}

// AllReduceSteps returns the latency-bearing step count of a ring
// all-reduce across ranks participants: 2(R−1) (Thakur et al.) — R−1
// reduce-scatter rounds plus R−1 all-gather rounds, including the R=2
// edge case (2 steps, not 1: the two ranks still exchange a half each
// way twice). The executable runtime in internal/collective follows the
// same schedule; a cross-check test pins the two to each other.
func AllReduceSteps(ranks int) int {
	if ranks <= 1 {
		return 0
	}
	return 2 * (ranks - 1)
}

// InterStageMessages returns the number of point-to-point messages one
// pipeline replica puts on its inter-stage links in one 1F1B iteration,
// both directions counted: each of the stages−1 boundaries carries one
// forward activation and one backward activation-gradient per
// micro-batch. Every message is one latency-bearing step, so this is
// also the predicted pp-class step count; the executable pipeline
// executor in internal/train is pinned to it by cross-check tests.
func InterStageMessages(stages, microBatches int) int {
	if stages <= 1 || microBatches < 1 {
		return 0
	}
	return 2 * (stages - 1) * microBatches
}

// AllReduceTime returns the ring all-reduce time for volume bytes across
// ranks participants: each rank sends/receives 2V·(R−1)/R bytes, in
// AllReduceSteps latency-bearing steps. This is exactly the cost model
// behind the paper's Eq. 15/16.
func (l Link) AllReduceTime(bytes int64, ranks int) float64 {
	if ranks <= 1 || bytes <= 0 {
		return 0
	}
	r := float64(ranks)
	vol := 2 * float64(bytes) * (r - 1) / r
	return float64(AllReduceSteps(ranks))*l.LatencySec + vol*8/l.BandwidthBps
}

// TimeForVolume prices an already-measured per-rank traffic profile —
// bytes moved in steps latency-bearing rounds — over the link. This is
// how the collective runtime's executed byte/step counts are fed back
// into the analytic model: AllReduceTime predicts, TimeForVolume prices
// what actually ran, and the two agree exactly when the runtime follows
// the Thakur schedule.
func (l Link) TimeForVolume(bytes int64, steps int) float64 {
	if bytes <= 0 && steps <= 0 {
		return 0
	}
	return float64(steps)*l.LatencySec + float64(bytes*8)/l.BandwidthBps
}

// ExposedCommTime returns the part of a communication phase's latency
// that remains on the critical path when hideSec seconds of independent
// compute are available to overlap it with: max(0, comm − hide). This is
// the overlap model the DP-sync prediction is built from — exposed
// communication is whatever the remaining backward compute cannot cover,
// derived from the schedule rather than assumed by a scalar.
func ExposedCommTime(commSec, hideSec float64) float64 {
	if commSec <= hideSec {
		return 0
	}
	return commSec - hideSec
}

// EmbSyncBaselineTime returns the §6 baseline embedding cost C_Emb =
// V·(3D−2)/D over the link: a D-way all-reduce (data parallel) followed by
// a 2-way all-reduce (first↔last stage), per Eq. 15.
func (l Link) EmbSyncBaselineTime(bytes int64, dataParallel int) float64 {
	return l.AllReduceTime(bytes, dataParallel) + l.AllReduceTime(bytes, 2)
}

// EmbSyncFusedTime returns the §6 fused cost C_Emb_fused = V·(2D−1)/D: a
// single 2D-way all-reduce, per Eq. 16.
func (l Link) EmbSyncFusedTime(bytes int64, dataParallel int) float64 {
	return l.AllReduceTime(bytes, 2*dataParallel)
}

// Validate reports malformed links.
func (l Link) Validate() error {
	if l.BandwidthBps <= 0 {
		return fmt.Errorf("simnet: link %q bandwidth %v <= 0", l.Name, l.BandwidthBps)
	}
	if l.LatencySec < 0 {
		return fmt.Errorf("simnet: link %q negative latency", l.Name)
	}
	return nil
}
