package simnet

import "fmt"

// Sequence is a graph's precedence structure frozen for repeated
// re-pricing: the topological order and the predecessor lists (explicit
// dependencies plus resource serialization) are computed once, so
// resolving the makespan after a round of duration updates is a single
// pass over pre-built index slices with no allocation. This is what lets
// a plan-space search price thousands of candidate configurations on one
// task graph in milliseconds — the graph's *structure* is fixed by the
// parallelism grid while only the durations vary with the candidate.
//
// The frozen structure aliases the graph's tasks: update durations by
// writing Task.Duration (or pass an override to Makespan) and re-solve.
// Adding tasks or dependencies to the graph after Freeze invalidates the
// sequence; Freeze again.
type Sequence struct {
	order []*Task // topological order
	// preds[i] indexes order: every predecessor (dependency or resource
	// neighbor) of order[i] appears earlier in the order.
	preds  [][]int32
	finish []float64 // scratch, reused across solves
}

// Freeze topologically sorts the graph once and returns the frozen
// sequence. Errors on dependency cycles, exactly like Solve.
func (g *Graph) Freeze() (*Sequence, error) {
	n := len(g.tasks)
	idx := make(map[*Task]int32, n)
	for i, t := range g.tasks {
		idx[t] = int32(i)
	}
	preds := make([][]int32, n)
	for i, t := range g.tasks {
		for _, d := range t.deps {
			preds[i] = append(preds[i], idx[d])
		}
	}
	for _, seq := range g.resSeq {
		for i := 1; i < len(seq); i++ {
			preds[idx[seq[i]]] = append(preds[idx[seq[i]]], idx[seq[i-1]])
		}
	}
	// Kahn's algorithm over the index form.
	indeg := make([]int32, n)
	succs := make([][]int32, n)
	for i, ps := range preds {
		indeg[i] = int32(len(ps))
		for _, p := range ps {
			succs[p] = append(succs[p], int32(i))
		}
	}
	order := make([]*Task, 0, n)
	pos := make([]int32, n) // position of task i in order
	var ready []int32
	for i := range indeg {
		if indeg[i] == 0 {
			ready = append(ready, int32(i))
		}
	}
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		pos[i] = int32(len(order))
		order = append(order, g.tasks[i])
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("simnet: dependency cycle (%d of %d tasks resolved)", len(order), n)
	}
	// Re-index predecessor lists into order positions so the solve pass
	// reads finish times of already-resolved entries only.
	seq := &Sequence{order: order, preds: make([][]int32, n), finish: make([]float64, n)}
	for i, t := range g.tasks {
		ps := make([]int32, len(preds[i]))
		for j, p := range preds[i] {
			ps[j] = pos[p]
		}
		seq.preds[pos[idx[t]]] = ps
	}
	return seq, nil
}

// Tasks returns the frozen tasks in topological order (aliased, not
// copied — write Task.Duration through them before re-solving).
func (s *Sequence) Tasks() []*Task { return s.order }

// Makespan resolves the frozen structure against the tasks' current
// durations and returns the makespan. dur, when non-nil, overrides a
// task's duration (return a negative value to keep Task.Duration) —
// zero-duration overrides implement the §3 CPI-stack "turn a component
// off" passes without touching the graph. No allocation.
func (s *Sequence) Makespan(dur func(*Task) float64) float64 {
	var makespan float64
	for i, t := range s.order {
		var start float64
		for _, p := range s.preds[i] {
			if f := s.finish[p]; f > start {
				start = f
			}
		}
		d := t.Duration
		if dur != nil {
			if o := dur(t); o >= 0 {
				d = o
			}
		}
		f := start + d
		s.finish[i] = f
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// MakespanWithout resolves the makespan with every task of the given
// label priced at zero — the breakdown pass. No allocation.
func (s *Sequence) MakespanWithout(label string) float64 {
	var makespan float64
	for i, t := range s.order {
		var start float64
		for _, p := range s.preds[i] {
			if f := s.finish[p]; f > start {
				start = f
			}
		}
		d := t.Duration
		if t.Label == label {
			d = 0
		}
		f := start + d
		s.finish[i] = f
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}
