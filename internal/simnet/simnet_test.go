package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func testLink() Link {
	return Link{Name: "ib", BandwidthBps: 200e9, LatencySec: 2e-6}
}

func TestTransferTime(t *testing.T) {
	l := testLink()
	// 25 GB/s effective: 25e9 bytes take 1s + latency.
	got := l.TransferTime(25e9)
	if math.Abs(got-(1+2e-6)) > 1e-9 {
		t.Fatalf("TransferTime=%v", got)
	}
	if l.TransferTime(0) != 0 {
		t.Fatal("zero bytes must be free")
	}
}

func TestAllReduceTimeFormula(t *testing.T) {
	l := Link{Name: "x", BandwidthBps: 8e9, LatencySec: 0} // 1 GB/s
	// V=1e9 bytes, R=4: vol = 2*1e9*3/4 = 1.5e9 bytes → 1.5 s.
	got := l.AllReduceTime(1e9, 4)
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("AllReduceTime=%v want 1.5", got)
	}
	if l.AllReduceTime(1e9, 1) != 0 {
		t.Fatal("single-rank all-reduce is free")
	}
}

func TestEmbSyncCostMatchesEq15And16(t *testing.T) {
	// §6: C_Emb = V(3D−2)/D, C_fused = V(2D−1)/D (in transfer units, no
	// latency). For D=4 the improvement is 42.9%.
	l := Link{Name: "x", BandwidthBps: 8, LatencySec: 0} // 1 byte/s
	V := int64(100)
	D := 4
	base := l.EmbSyncBaselineTime(V, D)
	fused := l.EmbSyncFusedTime(V, D)
	wantBase := float64(V) * float64(3*D-2) / float64(D)
	wantFused := float64(V) * float64(2*D-1) / float64(D)
	if math.Abs(base-wantBase) > 1e-9 {
		t.Fatalf("baseline %v want %v", base, wantBase)
	}
	if math.Abs(fused-wantFused) > 1e-9 {
		t.Fatalf("fused %v want %v", fused, wantFused)
	}
	// The paper reports improvement as a speedup: base/fused − 1 =
	// (D−1)/(2D−1), which is 3/7 ≈ 42.9% at D=4.
	improvement := base/fused - 1
	if math.Abs(improvement-3.0/7.0) > 1e-9 {
		t.Fatalf("D=4 improvement %v want 3/7", improvement)
	}
}

func TestEmbSyncImprovementApproaches50Percent(t *testing.T) {
	l := Link{Name: "x", BandwidthBps: 8, LatencySec: 0}
	prev := 0.0
	for _, d := range []int{2, 4, 8, 16, 64, 1024} {
		imp := l.EmbSyncBaselineTime(1000, d)/l.EmbSyncFusedTime(1000, d) - 1
		if imp < prev {
			t.Fatalf("improvement not monotone at D=%d", d)
		}
		prev = imp
	}
	if math.Abs(prev-0.5) > 0.01 {
		t.Fatalf("asymptotic improvement %v want →50%%", prev)
	}
}

func TestLinkValidate(t *testing.T) {
	if (Link{Name: "ok", BandwidthBps: 1}).Validate() != nil {
		t.Fatal("valid link rejected")
	}
	if (Link{Name: "bad", BandwidthBps: 0}).Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if (Link{Name: "bad", BandwidthBps: 1, LatencySec: -1}).Validate() == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestGraphChain(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "compute", 1, "dev0")
	b := g.Add("b", "compute", 2, "dev0")
	mk, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 3 {
		t.Fatalf("makespan %v want 3 (resource serialization)", mk)
	}
	if a.Finish() != 1 || b.Start() != 1 {
		t.Fatalf("resource order wrong: a=%v..%v b=%v..%v", a.Start(), a.Finish(), b.Start(), b.Finish())
	}
}

func TestGraphParallelResources(t *testing.T) {
	g := NewGraph()
	g.Add("a", "c", 5, "dev0")
	g.Add("b", "c", 3, "dev1")
	mk, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 5 {
		t.Fatalf("makespan %v want 5 (parallel devices)", mk)
	}
}

func TestGraphDependencyAcrossResources(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "c", 2, "dev0")
	x := g.Add("x", "comm", 1, "link0")
	b := g.Add("b", "c", 2, "dev1")
	g.Dep(a, x)
	g.Dep(x, b)
	mk, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 5 {
		t.Fatalf("makespan %v want 5 (2+1+2 chain)", mk)
	}
	if b.Start() != 3 {
		t.Fatalf("b starts at %v want 3", b.Start())
	}
}

func TestGraphOverlapCommWithCompute(t *testing.T) {
	// Device does two compute tasks; a transfer depending on the first
	// overlaps the second (the 1F1B hidden-communication situation).
	g := NewGraph()
	a := g.Add("a", "c", 2, "dev0")
	c2 := g.Add("c2", "c", 4, "dev0")
	x := g.Add("x", "comm", 3, "link0")
	g.Dep(a, x)
	mk, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	_ = c2
	if mk != 6 {
		t.Fatalf("makespan %v want 6 (comm hidden under compute)", mk)
	}
	if x.Start() != 2 || x.Finish() != 5 {
		t.Fatalf("transfer at %v..%v", x.Start(), x.Finish())
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "c", 1, "")
	b := g.Add("b", "c", 1, "")
	g.Dep(a, b)
	g.Dep(b, a)
	if _, err := g.Solve(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestGraphDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph()
	g.Add("a", "c", 1, "")
	g.Add("a", "c", 1, "")
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph().Add("a", "c", -1, "")
}

func TestTotalByLabel(t *testing.T) {
	g := NewGraph()
	g.Add("a", "fwd", 1, "d")
	g.Add("b", "fwd", 2, "d")
	g.Add("c", "bwd", 3, "d")
	sums := g.TotalByLabel()
	if sums["fwd"] != 3 || sums["bwd"] != 3 {
		t.Fatalf("label sums %v", sums)
	}
}

func TestResourceBusy(t *testing.T) {
	g := NewGraph()
	g.Add("a", "c", 1, "d0")
	g.Add("b", "c", 2, "d0")
	g.Add("c", "c", 4, "d1")
	busy := g.ResourceBusy()
	if busy["d0"] != 3 || busy["d1"] != 4 {
		t.Fatalf("busy %v", busy)
	}
}

func TestCriticalPath(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "c", 2, "dev0")
	x := g.Add("x", "comm", 1, "link0")
	b := g.Add("b", "c", 2, "dev1")
	g.Dep(a, x)
	g.Dep(x, b)
	if _, err := g.Solve(); err != nil {
		t.Fatal(err)
	}
	cp := g.CriticalPath()
	if len(cp) != 3 || cp[0] != a || cp[1] != x || cp[2] != b {
		ids := make([]string, len(cp))
		for i, t2 := range cp {
			ids[i] = t2.ID
		}
		t.Fatalf("critical path %v", ids)
	}
}

func TestResourceTimelineSorted(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "c", 1, "d0")
	b := g.Add("b", "c", 1, "d0")
	if _, err := g.Solve(); err != nil {
		t.Fatal(err)
	}
	tl := g.ResourceTimeline("d0")
	if len(tl) != 2 || tl[0] != a || tl[1] != b {
		t.Fatal("timeline wrong")
	}
}

// Property: makespan ≥ max resource busy time and ≥ longest single task.
func TestMakespanLowerBoundsProperty(t *testing.T) {
	f := func(durs [6]uint8) bool {
		g := NewGraph()
		var maxTask, busy0, busy1 float64
		for i, d8 := range durs {
			d := float64(d8%50) + 1
			res := "d0"
			if i%2 == 1 {
				res = "d1"
			}
			g.Add(string(rune('a'+i)), "c", d, res)
			if d > maxTask {
				maxTask = d
			}
			if res == "d0" {
				busy0 += d
			} else {
				busy1 += d
			}
		}
		mk, err := g.Solve()
		if err != nil {
			return false
		}
		lower := math.Max(maxTask, math.Max(busy0, busy1))
		return mk >= lower-1e-9 && mk <= busy0+busy1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: all-reduce time is monotone in volume and in ranks (for fixed
// volume, more ranks can only add latency steps and volume factor).
func TestAllReduceMonotoneProperty(t *testing.T) {
	l := testLink()
	f := func(v1, v2 uint32, r8 uint8) bool {
		r := int(r8%14) + 2
		lo, hi := int64(v1%1e6), int64(v2%1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		if l.AllReduceTime(lo, r) > l.AllReduceTime(hi, r)+1e-12 {
			return false
		}
		return l.AllReduceTime(hi, r) <= l.AllReduceTime(hi, r+1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
