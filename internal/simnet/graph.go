package simnet

import (
	"fmt"
	"sort"
)

// Task is one unit of simulated work: a compute op on a device or a
// transfer on a link. Tasks bound to the same Resource execute serially,
// in the order they were added to the graph (the schedule order).
type Task struct {
	ID       string
	Label    string // free-form grouping key for breakdown accounting
	Duration float64
	Resource string // "" means unconstrained (infinitely parallel)

	deps   []*Task
	start  float64
	finish float64
	solved bool
}

// Start returns the resolved start time (valid after Graph.Solve).
func (t *Task) Start() float64 { return t.start }

// Finish returns the resolved finish time (valid after Graph.Solve).
func (t *Task) Finish() float64 { return t.finish }

// Graph is a DAG of tasks plus resource serialization. Resource order is
// insertion order: adding tasks in schedule order encodes the per-device
// execution policy, exactly how 1F1B fixes each device's op sequence.
type Graph struct {
	tasks    []*Task
	byID     map[string]*Task
	resSeq   map[string][]*Task
	solved   bool
	makespan float64
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{byID: make(map[string]*Task), resSeq: make(map[string][]*Task)}
}

// Add registers a task. IDs must be unique; duration must be ≥ 0.
func (g *Graph) Add(id, label string, duration float64, resource string) *Task {
	if duration < 0 {
		panic(fmt.Sprintf("simnet: task %s negative duration %v", id, duration))
	}
	if _, dup := g.byID[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate task id %s", id))
	}
	t := &Task{ID: id, Label: label, Duration: duration, Resource: resource}
	g.tasks = append(g.tasks, t)
	g.byID[id] = t
	if resource != "" {
		g.resSeq[resource] = append(g.resSeq[resource], t)
	}
	g.solved = false
	return t
}

// Dep declares that after must not start before before finishes.
func (g *Graph) Dep(before, after *Task) {
	if before == nil || after == nil {
		panic("simnet: nil task in Dep")
	}
	after.deps = append(after.deps, before)
	g.solved = false
}

// Get returns a task by id, or nil.
func (g *Graph) Get(id string) *Task { return g.byID[id] }

// Tasks returns all tasks in insertion order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Solve resolves start/finish times: each task starts at the max of its
// dependencies' finish times and its resource predecessor's finish time.
// Returns the makespan. Errors on dependency cycles.
func (g *Graph) Solve() (float64, error) {
	// Materialize resource-precedence edges, then longest-path over the DAG.
	preds := make(map[*Task][]*Task, len(g.tasks))
	indeg := make(map[*Task]int, len(g.tasks))
	succs := make(map[*Task][]*Task, len(g.tasks))
	for _, t := range g.tasks {
		preds[t] = append(preds[t], t.deps...)
	}
	for _, seq := range g.resSeq {
		for i := 1; i < len(seq); i++ {
			preds[seq[i]] = append(preds[seq[i]], seq[i-1])
		}
	}
	for t, ps := range preds {
		indeg[t] = len(ps)
		for _, p := range ps {
			succs[p] = append(succs[p], t)
		}
	}
	var ready []*Task
	for _, t := range g.tasks {
		if indeg[t] == 0 {
			ready = append(ready, t)
		}
	}
	done := 0
	var makespan float64
	for len(ready) > 0 {
		t := ready[0]
		ready = ready[1:]
		var start float64
		for _, p := range preds[t] {
			if p.finish > start {
				start = p.finish
			}
		}
		t.start = start
		t.finish = start + t.Duration
		t.solved = true
		if t.finish > makespan {
			makespan = t.finish
		}
		done++
		for _, s := range succs[t] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if done != len(g.tasks) {
		return 0, fmt.Errorf("simnet: dependency cycle (%d of %d tasks resolved)", done, len(g.tasks))
	}
	g.solved = true
	g.makespan = makespan
	return makespan, nil
}

// Makespan returns the last Solve result.
func (g *Graph) Makespan() float64 { return g.makespan }

// TotalByLabel sums task durations per label — the raw material of the
// CPI-stack-style breakdown of Fig. 3/10.
func (g *Graph) TotalByLabel() map[string]float64 {
	out := make(map[string]float64)
	for _, t := range g.tasks {
		out[t.Label] += t.Duration
	}
	return out
}

// ResourceBusy returns per-resource busy time (Σ durations).
func (g *Graph) ResourceBusy() map[string]float64 {
	out := make(map[string]float64)
	for _, t := range g.tasks {
		if t.Resource != "" {
			out[t.Resource] += t.Duration
		}
	}
	return out
}

// CriticalPath returns the chain of tasks ending at the makespan,
// following, at each step, the predecessor (dependency or resource) whose
// finish time equals the task's start time.
func (g *Graph) CriticalPath() []*Task {
	if !g.solved {
		return nil
	}
	// Find the final task.
	var last *Task
	for _, t := range g.tasks {
		if last == nil || t.finish > last.finish {
			last = t
		}
	}
	resPrev := make(map[*Task]*Task)
	for _, seq := range g.resSeq {
		for i := 1; i < len(seq); i++ {
			resPrev[seq[i]] = seq[i-1]
		}
	}
	var path []*Task
	for t := last; t != nil; {
		path = append(path, t)
		if t.start == 0 {
			break
		}
		var next *Task
		cands := append([]*Task{}, t.deps...)
		if rp := resPrev[t]; rp != nil {
			cands = append(cands, rp)
		}
		for _, c := range cands {
			if c.finish == t.start {
				next = c
				break
			}
		}
		t = next
	}
	// Reverse to chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// ResourceTimeline returns the tasks of one resource sorted by start time,
// for rendering ASCII timing diagrams (Fig. 4).
func (g *Graph) ResourceTimeline(resource string) []*Task {
	seq := append([]*Task{}, g.resSeq[resource]...)
	sort.SliceStable(seq, func(i, j int) bool { return seq[i].start < seq[j].start })
	return seq
}
