package simnet

import (
	"fmt"
	"math"
	"testing"
)

// pipelineGraph builds a small graph exercising both explicit deps and
// resource serialization: two devices, a link between them, and a
// comm task hidden under compute (the 1F1B shape).
func pipelineGraph() *Graph {
	g := NewGraph()
	a := g.Add("a", "fwd", 2, "dev0")
	c2 := g.Add("c2", "fwd", 4, "dev0")
	x := g.Add("x", "comm", 3, "link0")
	b := g.Add("b", "bwd", 2, "dev1")
	g.Dep(a, x)
	g.Dep(x, b)
	_ = c2
	return g
}

func TestFreezeMakespanMatchesSolve(t *testing.T) {
	g := pipelineGraph()
	want, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Makespan(nil); math.Abs(got-want) > 1e-12 {
		t.Fatalf("frozen makespan %v want %v", got, want)
	}
	// Re-solving is idempotent.
	if got := seq.Makespan(nil); math.Abs(got-want) > 1e-12 {
		t.Fatalf("second solve %v want %v", got, want)
	}
}

func TestFreezeMakespanAfterDurationMutation(t *testing.T) {
	g := pipelineGraph()
	seq, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	seq.Makespan(nil)
	// Stretch the comm task so it no longer hides; compare against a
	// freshly built + solved graph with the same durations.
	g.Get("x").Duration = 10
	got := seq.Makespan(nil)

	g2 := pipelineGraph()
	g2.Get("x").Duration = 10
	want, err := g2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mutated makespan %v want %v", got, want)
	}
}

func TestMakespanOverrideFunc(t *testing.T) {
	g := pipelineGraph()
	seq, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	// Override x to 10 without touching Task.Duration; negative return
	// keeps the stored duration.
	got := seq.Makespan(func(tk *Task) float64 {
		if tk.ID == "x" {
			return 10
		}
		return -1
	})
	g2 := pipelineGraph()
	g2.Get("x").Duration = 10
	want, err := g2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("override makespan %v want %v", got, want)
	}
	// Task.Duration itself must be untouched.
	if g.Get("x").Duration != 3 {
		t.Fatalf("override mutated Task.Duration=%v", g.Get("x").Duration)
	}
}

func TestMakespanWithoutMatchesZeroedRebuild(t *testing.T) {
	g := pipelineGraph()
	seq, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"fwd", "bwd", "comm", "nosuch"} {
		got := seq.MakespanWithout(label)
		g2 := NewGraph()
		for _, tk := range g.Tasks() {
			d := tk.Duration
			if tk.Label == label {
				d = 0
			}
			g2.Add(tk.ID, tk.Label, d, tk.Resource)
		}
		for _, tk := range g.Tasks() {
			for _, dep := range tk.deps {
				g2.Dep(g2.Get(dep.ID), g2.Get(tk.ID))
			}
		}
		want, err := g2.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("MakespanWithout(%q)=%v want %v", label, got, want)
		}
	}
}

func TestFreezeCycleDetected(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "c", 1, "")
	b := g.Add("b", "c", 1, "")
	g.Dep(a, b)
	g.Dep(b, a)
	if _, err := g.Freeze(); err == nil {
		t.Fatal("cycle not detected by Freeze")
	}
}

func TestFreezeRespectsResourceOrder(t *testing.T) {
	// Insertion order on a shared resource must serialize in the frozen
	// sequence exactly as in Solve.
	g := NewGraph()
	for i := 0; i < 5; i++ {
		g.Add(fmt.Sprintf("t%d", i), "c", float64(i+1), "dev0")
	}
	want, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Makespan(nil); math.Abs(got-want) > 1e-12 {
		t.Fatalf("serialized makespan %v want %v (sum of durations)", got, want)
	}
}

func TestMakespanAllocationFree(t *testing.T) {
	g := pipelineGraph()
	seq, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	seq.Makespan(nil) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		seq.Makespan(nil)
		seq.MakespanWithout("comm")
	})
	if allocs != 0 {
		t.Fatalf("re-solve allocates %v per run, want 0", allocs)
	}
}
