package collective

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/tensor"
)

// flatRuntime returns a runtime over d ranks in a d×1 topology.
func flatRuntime(t testing.TB, d int) *Runtime {
	t.Helper()
	topo, err := NewTopology(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(topo, nil, nil)
	t.Cleanup(rt.Close)
	return rt
}

// randBufs returns d deterministic rows×cols matrices.
func randBufs(d, rows, cols int, seed int64) []*tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Matrix, d)
	for i := range out {
		out[i] = tensor.New(rows, cols)
		for j := range out[i].Data {
			out[i].Data[j] = rng.NormFloat64()
		}
	}
	return out
}

// serialReduce is the pre-PR reference: zero + ordered sum + scale.
func serialReduce(bufs []*tensor.Matrix, scale float64) *tensor.Matrix {
	ref := tensor.New(bufs[0].Rows, bufs[0].Cols)
	for _, b := range bufs {
		ref.Add(b)
	}
	ref.Scale(scale)
	return ref
}

// TestAllReduceMatchesDenseAverage pins the deterministic-reduction
// contract at tolerance zero: every chunk count (= rank count) 1..8, with
// odd sizes that leave uneven and empty chunks.
func TestAllReduceMatchesDenseAverage(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 3}, {3, 5}, {5, 13}, {7, 9}, {1, 2}, {16, 16}}
	for d := 1; d <= 8; d++ {
		rt := flatRuntime(t, d)
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
		for _, sh := range shapes {
			bufs := randBufs(d, sh[0], sh[1], int64(7*d+sh[0]))
			ref := serialReduce(bufs, 1/float64(d))
			grp.AllReduce(bufs, 1/float64(d))
			for i, b := range bufs {
				if !b.Equal(ref, 0) {
					t.Fatalf("d=%d shape %v: rank %d differs from serial average", d, sh, i)
				}
			}
		}
	}
}

// TestAllReduceSumScale covers the non-average scales the embedding paths
// use (scale 1 = plain sum).
func TestAllReduceSumScale(t *testing.T) {
	rt := flatRuntime(t, 3)
	grp := rt.NewGroup(ClassEmb, rt.Topology().DPGroup(0))
	bufs := randBufs(3, 4, 5, 99)
	ref := serialReduce(bufs, 1)
	grp.AllReduce(bufs, 1)
	for i, b := range bufs {
		if !b.Equal(ref, 0) {
			t.Fatalf("rank %d differs from serial sum", i)
		}
	}
}

// TestAllReduceTrafficAccounting pins the Thakur ring accounting: total
// bytes 2(D−1)·V (so per-rank volume is exactly 2V·(D−1)/D), D·2(D−1)
// messages, 2(D−1) steps — and cross-checks the per-rank volume against
// core.AllReduceVolumeFactor.
func TestAllReduceTrafficAccounting(t *testing.T) {
	for d := 2; d <= 8; d++ {
		rt := flatRuntime(t, d)
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
		rows, cols := 7, 13 // odd: chunks differ by one element
		bufs := randBufs(d, rows, cols, int64(d))
		before := rt.Stats().For(ClassDP)
		grp.AllReduce(bufs, 1/float64(d))
		got := rt.Stats().For(ClassDP)
		got.Bytes -= before.Bytes
		got.Messages -= before.Messages
		got.Steps -= before.Steps

		v := int64(rows*cols) * compress.ElemBytes
		if want := 2 * int64(d-1) * v; got.Bytes != want {
			t.Fatalf("d=%d: %d bytes, want %d", d, got.Bytes, want)
		}
		if want := int64(d * 2 * (d - 1)); got.Messages != want {
			t.Fatalf("d=%d: %d messages, want %d", d, got.Messages, want)
		}
		if want := int64(2 * (d - 1)); got.Steps != want {
			t.Fatalf("d=%d: %d steps, want %d", d, got.Steps, want)
		}
		perRank := float64(got.Bytes) / float64(d)
		if want := core.AllReduceVolumeFactor(d) * float64(v); math.Abs(perRank-want) > 1e-9*want {
			t.Fatalf("d=%d: per-rank volume %v, want %v (2V(D-1)/D)", d, perRank, want)
		}
	}
}

// TestAllReduceCompressedMatchesSerialSemantics pins the compressed
// collective to the pre-PR per-group PowerSGD semantics: same seeds, same
// residual trajectories, bit-identical averages over multiple rounds.
func TestAllReduceCompressedMatchesSerialSemantics(t *testing.T) {
	const d, rows, cols, rank = 3, 8, 6, 2
	mkEFs := func() []*compress.ErrorFeedback {
		efs := make([]*compress.ErrorFeedback, d)
		for i := range efs {
			efs[i] = compress.NewErrorFeedback(compress.NewPowerSGD(rank, int64(100+i)))
		}
		return efs
	}
	serialEFs, collEFs := mkEFs(), mkEFs()

	rt := flatRuntime(t, d)
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))

	for round := 0; round < 4; round++ {
		grads := randBufs(d, rows, cols, int64(40+round))

		// Serial reference: compress each group's gradient with feedback,
		// average the reconstructions in group order, give everyone the
		// average (train.syncStage's compressed path, pre-PR).
		serialBufs := make([]*tensor.Matrix, d)
		for i := range serialBufs {
			serialBufs[i] = grads[i].Clone()
		}
		ref := tensor.New(rows, cols)
		for i, ef := range serialEFs {
			_, recon := ef.CompressWithFeedback(serialBufs[i])
			ref.Add(recon)
		}
		ref.Scale(1 / float64(d))

		collBufs := make([]*tensor.Matrix, d)
		for i := range collBufs {
			collBufs[i] = grads[i].Clone()
		}
		grp.AllReduceCompressed(collBufs, collEFs, 1/float64(d))
		for i, b := range collBufs {
			if !b.Equal(ref, 0) {
				t.Fatalf("round %d: rank %d differs from serial compressed average", round, i)
			}
		}
	}
}

// TestAllReduceCompressedWireAccounting: the payload all-gather accounts
// compressed bytes, not dense bytes — D(D−1) payload messages, D−1 steps.
func TestAllReduceCompressedWireAccounting(t *testing.T) {
	const d, rows, cols, rank = 4, 10, 8, 2
	rt := flatRuntime(t, d)
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	efs := make([]*compress.ErrorFeedback, d)
	for i := range efs {
		efs[i] = compress.NewErrorFeedback(compress.NewPowerSGD(rank, int64(i)))
	}
	bufs := randBufs(d, rows, cols, 5)
	grp.AllReduceCompressed(bufs, efs, 1/float64(d))
	got := rt.Stats().For(ClassDP)

	wire := int64(rank*(rows+cols)) * compress.ElemBytes // one PowerSGD payload
	if want := int64(d*(d-1)) * wire; got.Bytes != want {
		t.Fatalf("%d wire bytes, want %d", got.Bytes, want)
	}
	dense := int64(rows*cols) * compress.ElemBytes
	if got.Bytes >= 2*int64(d-1)*dense {
		t.Fatal("compressed collective moved at least as many bytes as the dense ring")
	}
	if want := int64(d - 1); got.Steps != want {
		t.Fatalf("%d steps, want %d", got.Steps, want)
	}
}

// TestFusedEmbeddingAllReduceVolume executes the §6 fused 2D-way
// embedding all-reduce and checks the per-rank volume against the Eq. 16
// factor (2D−1)/D, and the baseline (two D-way averages + per-replica
// 2-way sums) against the Eq. 15 factor (3D−2)/D.
func TestFusedEmbeddingAllReduceVolume(t *testing.T) {
	const rows, cols = 6, 4
	v := float64(int64(rows*cols) * compress.ElemBytes)
	for _, d := range []int{2, 4, 8} {
		topo, _ := NewTopology(d, 3)
		rt := NewRuntime(topo, nil, nil)

		// Fused: one 2D-way all-reduce over (first, last) of every replica,
		// scaled 1/D (Σ over 2D tensors, averaged over D replicas).
		fused := rt.NewGroup(ClassEmb, topo.EmbGroup())
		bufs := randBufs(2*d, rows, cols, int64(d))
		ref := serialReduce(bufs, 1/float64(d))
		fused.AllReduce(bufs, 1/float64(d))
		for i, b := range bufs {
			if !b.Equal(ref, 0) {
				t.Fatalf("d=%d: fused rank %d differs from serial fused sum", d, i)
			}
		}
		perRank := float64(rt.Stats().For(ClassEmb).Bytes) / float64(2*d)
		if want := core.EmbSyncFusedVolumeFactor(d) * v; perRank != want {
			t.Fatalf("d=%d: fused per-rank volume %v, want Eq.16 %v", d, perRank, want)
		}
		rt.Close()

		// Baseline: per-side D-way averages, then per-replica 2-way sums.
		rt2 := NewRuntime(topo, nil, nil)
		side0 := rt2.NewGroup(ClassEmb, topo.DPGroup(0))
		sideL := rt2.NewGroup(ClassEmb, topo.DPGroup(topo.PP-1))
		b0 := randBufs(d, rows, cols, 21)
		bL := randBufs(d, rows, cols, 22)
		side0.AllReduce(b0, 1/float64(d))
		sideL.AllReduce(bL, 1/float64(d))
		for dd := 0; dd < d; dd++ {
			pair := rt2.NewGroup(ClassEmb, topo.EmbPair(dd))
			pair.AllReduce([]*tensor.Matrix{b0[dd], bL[dd]}, 1)
		}
		perRank = float64(rt2.Stats().For(ClassEmb).Bytes) / float64(2*d)
		if want := core.EmbSyncVolumeFactor(d) * v; perRank != want {
			t.Fatalf("d=%d: baseline per-rank volume %v, want Eq.15 %v", d, perRank, want)
		}
		rt2.Close()
	}
}

func TestBroadcast(t *testing.T) {
	const d, rows, cols = 5, 3, 7
	rt := flatRuntime(t, d)
	grp := rt.NewGroup(ClassPP, rt.Topology().DPGroup(0))
	bufs := randBufs(d, rows, cols, 3)
	root := 2
	want := bufs[root].Clone()
	grp.Broadcast(bufs, root)
	for i, b := range bufs {
		if !b.Equal(want, 0) {
			t.Fatalf("rank %d does not hold the root buffer", i)
		}
	}
	st := rt.Stats().For(ClassPP)
	v := int64(rows*cols) * compress.ElemBytes
	if wantB := int64(d-1) * v; st.Bytes != wantB {
		t.Fatalf("%d bytes, want %d", st.Bytes, wantB)
	}
	if st.Steps != d-1 || st.Messages != d-1 {
		t.Fatalf("steps %d messages %d, want %d each", st.Steps, st.Messages, d-1)
	}
}

// TestConcurrentPerGroupCollectives drives disjoint DP groups from
// separate goroutines on one runtime — the trainer's per-stage fan-out —
// and is the designated -race workout for the token happens-before
// edges.
func TestConcurrentPerGroupCollectives(t *testing.T) {
	const d, stages, rounds = 4, 3, 20
	topo, _ := NewTopology(d, stages)
	rt := NewRuntime(topo, nil, nil)
	defer rt.Close()

	groups := make([]*Group, stages)
	for s := range groups {
		groups[s] = rt.NewGroup(ClassDP, topo.DPGroup(s))
	}
	var wg sync.WaitGroup
	for s := 0; s < stages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				bufs := randBufs(d, 5, 9, int64(s*1000+round))
				ref := serialReduce(bufs, 1/float64(d))
				groups[s].AllReduce(bufs, 1/float64(d))
				for i, b := range bufs {
					if !b.Equal(ref, 0) {
						t.Errorf("stage %d round %d rank %d wrong", s, round, i)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestAllReduceSteadyStateZeroAllocs pins the acceptance criterion
// directly: after warm-up, a collective performs no allocations.
func TestAllReduceSteadyStateZeroAllocs(t *testing.T) {
	const d = 4
	rt := flatRuntime(t, d)
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	bufs := randBufs(d, 9, 11, 1)
	grp.AllReduce(bufs, 1/float64(d)) // warm the pool
	if n := testing.AllocsPerRun(50, func() { grp.AllReduce(bufs, 1/float64(d)) }); n != 0 {
		t.Fatalf("steady-state AllReduce allocates (%v allocs/op)", n)
	}
}

func TestGroupValidation(t *testing.T) {
	rt := flatRuntime(t, 3)
	for name, f := range map[string]func(){
		"empty group":    func() { rt.NewGroup(ClassDP, nil) },
		"duplicate rank": func() { rt.NewGroup(ClassDP, []int{0, 0}) },
		"rank outside":   func() { rt.NewGroup(ClassDP, []int{0, 9}) },
		"buf count":      func() { rt.NewGroup(ClassDP, []int{0, 1}).AllReduce(randBufs(1, 2, 2, 1), 1) },
		"shape mismatch": func() {
			rt.NewGroup(ClassDP, []int{0, 1}).AllReduce([]*tensor.Matrix{tensor.New(2, 2), tensor.New(2, 3)}, 1)
		},
		"ef count":        func() { rt.NewGroup(ClassDP, []int{0, 1}).AllReduceCompressed(randBufs(2, 2, 2, 1), nil, 1) },
		"broadcast root":  func() { rt.NewGroup(ClassDP, []int{0, 1}).Broadcast(randBufs(2, 2, 2, 1), 2) },
		"transport world": func() { NewMemTransport(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}
