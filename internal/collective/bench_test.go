package collective

import (
	"fmt"
	"testing"

	"repro/internal/compress"
)

// BenchmarkAllReduce measures the dense ring all-reduce at the trainer's
// DP widths. The acceptance bar is 0 allocs/op on steady state.
func BenchmarkAllReduce(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			rt := flatRuntime(b, d)
			grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
			bufs := randBufs(d, 48, 48, 1)
			grp.AllReduce(bufs, 1/float64(d))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grp.AllReduce(bufs, 1/float64(d))
			}
		})
	}
}

// BenchmarkAllReduceCompressed measures the PowerSGD+error-feedback
// collective (the §7 selective-stage DP path).
func BenchmarkAllReduceCompressed(b *testing.B) {
	const d = 4
	rt := flatRuntime(b, d)
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	efs := make([]*compress.ErrorFeedback, d)
	for i := range efs {
		efs[i] = compress.NewErrorFeedback(compress.NewPowerSGD(4, int64(i)))
		efs[i].SetPool(rt.Pool())
	}
	bufs := randBufs(d, 48, 48, 1)
	// Two warm-up rounds: the second faults in the error-feedback input
	// buffers that only exist once a residual is stored.
	grp.AllReduceCompressed(bufs, efs, 1/float64(d))
	grp.AllReduceCompressed(bufs, efs, 1/float64(d))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grp.AllReduceCompressed(bufs, efs, 1/float64(d))
	}
}

// BenchmarkFusedEmbeddingAllReduce measures the §6 fused 2D-way op.
func BenchmarkFusedEmbeddingAllReduce(b *testing.B) {
	const d = 4
	topo, _ := NewTopology(d, 4)
	rt := NewRuntime(topo, nil, nil)
	b.Cleanup(rt.Close)
	grp := rt.NewGroup(ClassEmb, topo.EmbGroup())
	bufs := randBufs(2*d, 32, 48, 1)
	grp.AllReduce(bufs, 1/float64(d))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grp.AllReduce(bufs, 1/float64(d))
	}
}

// BenchmarkBroadcast measures the ring pipeline broadcast.
func BenchmarkBroadcast(b *testing.B) {
	const d = 4
	rt := flatRuntime(b, d)
	grp := rt.NewGroup(ClassPP, rt.Topology().DPGroup(0))
	bufs := randBufs(d, 48, 48, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grp.Broadcast(bufs, 0)
	}
}
