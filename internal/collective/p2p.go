package collective

import (
	"repro/internal/compress"
	"repro/internal/tensor"
)

// Point-to-point primitives: the executable counterpart of the pipeline-
// parallel inter-stage transfers (§5). A forward activation or backward
// activation-gradient is shipped from one rank to its pipeline neighbour
// over the transport's point-to-point queue, which both moves the tensor
// (ownership transfers to the receiver) and accounts the wire traffic —
// bytes, one message, one latency-bearing step — on the link class.

// Send ships t from rank `from` to rank `to` on class c at dense wire
// width. Ownership of t transfers to the receiver: the sender must not
// mutate it afterwards (the channel handoff is the happens-before edge
// that makes the receiver's reads race-free).
func (r *Runtime) Send(c Class, from, to int, t *tensor.Matrix) {
	r.tr.SendP2P(c, from, to, Msg{Bytes: t.SizeBytes(compress.ElemBytes), Payload: t})
}

// SendCompressed compresses t through ef — the per-boundary error-
// feedback compressor whose residual is the paper's lazy error
// propagation (§5.1) — and ships the dense reconstruction to the
// receiver, accounting only the payload's wire bytes. The reconstruction
// travels in a buffer borrowed from the runtime's pool; Recv reports it
// as pooled and the receiver must Put it back once consumed. The second
// return value is ef's own reconstruction scratch (valid until ef's next
// same-shape compression), exposed so callers can record compression
// statistics without recomputing it.
func (r *Runtime) SendCompressed(c Class, from, to int, t *tensor.Matrix, ef *compress.ErrorFeedback) (wire int64, recon *tensor.Matrix) {
	pl, recon := ef.CompressWithFeedback(t)
	wire = pl.WireBytes()
	ship := r.pool.GetUninit(recon.Rows, recon.Cols) // CopyFrom writes every element
	ship.CopyFrom(recon)
	r.tr.SendP2P(c, from, to, Msg{Bytes: wire, Payload: ship, Pooled: true})
	return wire, recon
}

// SendCompressedSparse is the sparse-native twin of SendCompressed for
// sparse-marker families (TopK/RandomK): the compressed index/value
// payload ships as-is — no dense reconstruction is built on the send
// side, so the sender's cost scales with nnz beyond the selection pass.
// ok = false (nothing sent, no state touched) when ef's family is not
// sparse-native; callers fall back to SendCompressed. The error-feedback
// residual evolves bit-identically to the dense path, and Recv densifies
// the payload into a pooled buffer bit-identical to the reconstruction
// SendCompressed would have shipped.
func (r *Runtime) SendCompressedSparse(c Class, from, to int, t *tensor.Matrix, ef *compress.ErrorFeedback) (wire int64, ok bool) {
	pl, ok := ef.CompressWithFeedbackSparse(t)
	if !ok {
		return 0, false
	}
	// The payload aliases ef's scratch; ship a pooled copy (the
	// SendCompressed precedent). Recv returns it to the pool.
	ship := r.pool.GetSparse(t.Rows, t.Cols)
	ship.CopyFrom(&pl.Sparse)
	wire = pl.WireBytes()
	r.tr.SendP2P(c, from, to, Msg{Bytes: wire, Sparse: ship})
	return wire, true
}

// Recv blocks until the next point-to-point tensor from rank `from`
// arrives at rank `to` on class c. pooled reports that the tensor was
// borrowed from the runtime's pool (a SendCompressed reconstruction) and
// must be returned with Pool().Put once consumed. A sparse-native
// payload (SendCompressedSparse) is densified here into a pooled buffer
// — receivers see the identical dense tensor whichever path sent it.
func (r *Runtime) Recv(c Class, to, from int) (m *tensor.Matrix, pooled bool) {
	msg := r.tr.RecvP2P(c, to, from)
	if msg.Sparse != nil {
		dst := r.pool.GetUninit(msg.Sparse.Rows, msg.Sparse.Cols)
		msg.Sparse.DensifyInto(dst)
		r.pool.PutSparse(msg.Sparse)
		return dst, true
	}
	return msg.Payload, msg.Pooled
}
