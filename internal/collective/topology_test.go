package collective

import (
	"reflect"
	"testing"
)

func TestTopologyMapping(t *testing.T) {
	topo, err := NewTopology(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.World() != 12 {
		t.Fatalf("world %d", topo.World())
	}
	seen := make(map[int]bool)
	for d := 0; d < 3; d++ {
		for p := 0; p < 4; p++ {
			r := topo.Rank(d, p)
			if seen[r] {
				t.Fatalf("rank %d assigned twice", r)
			}
			seen[r] = true
			dd, pp := topo.Coords(r)
			if dd != d || pp != p {
				t.Fatalf("Coords(Rank(%d,%d)) = (%d,%d)", d, p, dd, pp)
			}
		}
	}
	// DP-major layout: one replica's stages are consecutive ranks.
	if got := topo.PPGroup(1); !reflect.DeepEqual(got, []int{4, 5, 6, 7}) {
		t.Fatalf("PPGroup(1) = %v", got)
	}
	if got := topo.DPGroup(2); !reflect.DeepEqual(got, []int{2, 6, 10}) {
		t.Fatalf("DPGroup(2) = %v", got)
	}
}

func TestTopologyEmbGroups(t *testing.T) {
	topo, _ := NewTopology(2, 4)
	// Fused §6 group: (replica, side) in the serial reduction order
	// Σ_d (first_d + last_d).
	if got := topo.EmbGroup(); !reflect.DeepEqual(got, []int{0, 3, 4, 7}) {
		t.Fatalf("EmbGroup = %v", got)
	}
	if got := topo.EmbPair(1); !reflect.DeepEqual(got, []int{4, 7}) {
		t.Fatalf("EmbPair(1) = %v", got)
	}
	// Single-stage pipelines share the table in place; the fused group
	// degenerates to the stage-0 DP group.
	topo1, _ := NewTopology(3, 1)
	if got := topo1.EmbGroup(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("PP=1 EmbGroup = %v", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(0, 4); err == nil {
		t.Fatal("empty DP axis accepted")
	}
	if _, err := NewTopology(2, 0); err == nil {
		t.Fatal("empty PP axis accepted")
	}
	topo, _ := NewTopology(2, 2)
	for _, f := range []func(){
		func() { topo.Rank(2, 0) },
		func() { topo.Rank(0, -1) },
		func() { topo.Coords(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range coordinates accepted")
				}
			}()
			f()
		}()
	}
}
