package collective

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Group is a set of ranks in ring order bound to a link class. All of its
// collectives operate on one buffer per member rank (bufs[i] belongs to
// ranks[i]) — the in-process stand-in for each rank's device memory.
//
// Collectives come in two flavours: the blocking methods (AllReduce,
// AllReduceCompressed, Broadcast) and their Async variants, which issue
// the operation and return a *Pending handle immediately. The blocking
// methods are issue+wait wrappers over the async ones, so both paths
// execute the identical deterministic schedule.
//
// A group may have several operations in flight at once (issued from one
// goroutine, so each rank's op queue sees them in issue order); their
// per-op descriptors are recycled through a free list, so the steady
// state allocates nothing.
type Group struct {
	rt    *Runtime
	class Class
	ranks []int

	// tag labels this group's trace spans (the trainer tags each DP group
	// with its stage index); −1 means untagged.
	tag int

	// denseReduce forces AllReduceCompressed to densify sparse payloads
	// and reduce through the dense reconstruction path even for
	// sparse-native families — the oracle knob the equivalence tests and
	// the sparse-vs-densified benchmarks flip.
	denseReduce bool

	// free recycles op descriptors between issues. Pending handles are
	// returned here by Wait; issue and wait may run on different
	// goroutines, hence the lock.
	mu   sync.Mutex
	free []*Pending
}

// SetDensifiedReduce toggles the densified oracle path for compressed
// all-reduces (off by default: sparse-native families reduce sparsely).
// Must not be called while operations are in flight.
func (g *Group) SetDensifiedReduce(on bool) { g.denseReduce = on }

// SetTag labels the group's trace spans with a stage index (−1 clears).
// Must not be called while operations are in flight.
func (g *Group) SetTag(tag int) { g.tag = tag }

type opKind int

const (
	opAllReduce opKind = iota
	opAllReduceCompressed
	opBroadcast
)

// Pending is one issued collective operation. Wait blocks until every
// member rank has finished its share and then recycles the descriptor:
// a handle is dead after Wait returns, and Wait must be called exactly
// once per issued operation (the blocking wrappers do so internally).
//
// The descriptor is written by the issuing goroutine and read by the
// rank workers after they receive their task — the op-queue channel
// receive is the happens-before edge, exactly as for the ring's step
// tokens.
type Pending struct {
	g     *Group
	kind  opKind
	bufs  []*tensor.Matrix
	efs   []*compress.ErrorFeedback
	scale float64
	root  int
	// opBytes is the dense wire size of one broadcast hop.
	opBytes int64
	offs    []int // chunk offsets, len(ranks)+1
	recons  []*tensor.Matrix
	// sparse marks a compressed op whose every compressor is sparse-native
	// (and the group's densified-oracle knob is off): members ship sparse
	// payload copies through spl instead of dense reconstructions.
	sparse bool
	spl    []*tensor.Sparse
	viewA  []tensor.Matrix // per-member destination view headers
	viewB  []tensor.Matrix // per-member source view headers
	wg     sync.WaitGroup

	// issueNs is the dispatch timestamp on the recorder's clock (only
	// stamped when a recorder is attached): the op's trace span runs
	// issue→last-member-finish, so queueing shows up as span length.
	issueNs int64

	// remaining counts member ranks still executing (Done polls it).
	remaining atomic.Int32
	// wire tallies the bytes this operation actually put on the
	// transport, summed over every member's sends — the executed
	// per-operation volume the bucket crosscheck tests reconcile
	// against plan and simulator predictions.
	wire atomic.Int64
}

// Size returns the number of member ranks.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the member ranks in ring (and reduction) order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Class returns the link class the group's traffic is accounted on.
func (g *Group) Class() Class { return g.class }

// AllReduce sets every buffer to scale·Σ bufs, element-wise: scale = 1/D
// is the data-parallel average, scale = 1 the §6 embedding sum. The
// schedule is the Thakur ring — reduce-scatter then all-gather over D
// chunk views, 2(D−1) steps, per-rank volume 2V·(D−1)/D — and the
// reduction applies in flat ring order, so the result is bit-identical to
// the serial reference sum at any rank count (see the package comment).
func (g *Group) AllReduce(bufs []*tensor.Matrix, scale float64) {
	g.AllReduceAsync(bufs, scale).Wait()
}

// AllReduceAsync issues AllReduce and returns immediately. The buffers
// must not be touched until the returned handle's Wait returns.
func (g *Group) AllReduceAsync(bufs []*tensor.Matrix, scale float64) *Pending {
	p := g.prep(opAllReduce, bufs, scale)
	if len(g.ranks) == 1 {
		if g.rt.local[g.ranks[0]] {
			if scale != 1 {
				bufs[0].Scale(scale)
			}
		}
		return p
	}
	g.accountSteps(2 * (len(g.ranks) - 1))
	p.dispatch()
	return p
}

// AllReduceCompressed is the lossy variant: each rank compresses its own
// buffer through its private error-feedback compressor (efs[i] belongs to
// ranks[i]; residuals carry across calls, §2.3), the compressed payloads
// ride a ring all-gather (D−1 steps, payload wire bytes accounted), and
// every rank reduces the reconstructions in flat ring order into its
// buffer. The result matches the serial per-group compress-then-average
// semantics bit for bit.
func (g *Group) AllReduceCompressed(bufs []*tensor.Matrix, efs []*compress.ErrorFeedback, scale float64) {
	g.AllReduceCompressedAsync(bufs, efs, scale).Wait()
}

// AllReduceCompressedAsync issues AllReduceCompressed and returns
// immediately. Buffers and compressors belong to the operation until the
// returned handle's Wait returns.
func (g *Group) AllReduceCompressedAsync(bufs []*tensor.Matrix, efs []*compress.ErrorFeedback, scale float64) *Pending {
	if len(efs) != len(g.ranks) {
		panic(fmt.Sprintf("collective: %d compressors for %d ranks", len(efs), len(g.ranks)))
	}
	p := g.prep(opAllReduceCompressed, bufs, scale)
	p.efs = efs
	// The whole op must pick one reduction representation: every member
	// reads every member's payload slot, so a mixed sparse/dense op would
	// read unset slots. Sparse-native only when every compressor is.
	p.sparse = !g.denseReduce
	for _, ef := range efs {
		if !ef.SparseNative() {
			p.sparse = false
			break
		}
	}
	if len(g.ranks) == 1 {
		// Degenerate ring: compress/reconstruct locally so the error-
		// feedback residual sequence matches the serial semantics.
		if !g.rt.local[g.ranks[0]] {
			return p
		}
		if p.sparse {
			pl, _ := efs[0].CompressWithFeedbackSparse(bufs[0])
			bufs[0].Zero()
			tensor.SpAxpyInto(bufs[0], scale, &pl.Sparse)
			g.rt.spOps.Add(1)
			return p
		}
		_, recon := efs[0].CompressWithFeedback(bufs[0])
		bufs[0].CopyFrom(recon)
		if scale != 1 {
			bufs[0].Scale(scale)
		}
		return p
	}
	g.accountSteps(len(g.ranks) - 1)
	p.dispatch()
	return p
}

// Broadcast copies the root member's buffer into every other member's
// buffer over a ring pipeline: D−1 messages of the full volume, D−1
// steps. root indexes the member (position in ring order), not the global
// rank.
func (g *Group) Broadcast(bufs []*tensor.Matrix, root int) {
	g.BroadcastAsync(bufs, root).Wait()
}

// BroadcastAsync issues Broadcast and returns immediately.
func (g *Group) BroadcastAsync(bufs []*tensor.Matrix, root int) *Pending {
	if root < 0 || root >= len(g.ranks) {
		panic(fmt.Sprintf("collective: broadcast root %d outside group of %d", root, len(g.ranks)))
	}
	p := g.prep(opBroadcast, bufs, 1)
	p.root = root
	p.opBytes = bufs[0].SizeBytes(compress.ElemBytes)
	if len(g.ranks) == 1 {
		return p
	}
	g.accountSteps(len(g.ranks) - 1)
	p.dispatch()
	return p
}

// accountSteps accounts an operation's synchronized steps exactly once
// per operation across the whole grid: steps are a per-op (not per-send)
// quantity, so in a process-per-rank run only the process owning the
// group's first member books them — the aggregate over processes then
// equals the in-process count.
func (g *Group) accountSteps(n int) {
	if g.rt.local[g.ranks[0]] {
		g.rt.tr.AddSteps(g.class, n)
	}
}

// getOp pops a recycled descriptor (or builds the group's next one).
func (g *Group) getOp() *Pending {
	g.mu.Lock()
	if n := len(g.free); n > 0 {
		p := g.free[n-1]
		g.free = g.free[:n-1]
		g.mu.Unlock()
		return p
	}
	g.mu.Unlock()
	d := len(g.ranks)
	return &Pending{
		g:      g,
		offs:   make([]int, d+1),
		recons: make([]*tensor.Matrix, d),
		spl:    make([]*tensor.Sparse, d),
		viewA:  make([]tensor.Matrix, d),
		viewB:  make([]tensor.Matrix, d),
	}
}

// putOp recycles a finished descriptor.
func (g *Group) putOp(p *Pending) {
	p.bufs = nil
	p.efs = nil
	g.mu.Lock()
	g.free = append(g.free, p)
	g.mu.Unlock()
}

// prep validates the buffers and loads a fresh op descriptor.
func (g *Group) prep(kind opKind, bufs []*tensor.Matrix, scale float64) *Pending {
	if len(bufs) != len(g.ranks) {
		panic(fmt.Sprintf("collective: %d buffers for %d ranks", len(bufs), len(g.ranks)))
	}
	r0, c0 := bufs[0].Shape()
	for _, b := range bufs[1:] {
		if r, c := b.Shape(); r != r0 || c != c0 {
			panic(fmt.Sprintf("collective: buffer shape %dx%d != %dx%d", r, c, r0, c0))
		}
	}
	p := g.getOp()
	p.kind = kind
	p.bufs = bufs
	p.efs = nil
	p.sparse = false
	p.scale = scale
	p.wire.Store(0)
	p.chunkOffsets(r0 * c0)
	return p
}

// chunkOffsets computes the balanced D-way partition of n elements:
// chunk c covers [offs[c], offs[c+1]), sizes differing by at most one
// element (odd sizes and n < D — empty chunks — are fine).
func (p *Pending) chunkOffsets(n int) {
	d := len(p.g.ranks)
	base, rem := n/d, n%d
	off := 0
	for c := 0; c < d; c++ {
		p.offs[c] = off
		off += base
		if c < rem {
			off++
		}
	}
	p.offs[d] = off
}

// dispatch hands one task per local member to the rank workers. Tasks
// enter each rank's op queue in issue order, so multiple in-flight
// operations of one group execute in the same order on every member —
// the property that keeps the flat-rank-order reduction deterministic
// with overlap. In a process-per-rank run the non-local members execute
// in their own processes (every process issues the same op sequence);
// here they simply have no worker, so Wait only tracks the local share.
// An op with no local member completes immediately as a no-op.
func (p *Pending) dispatch() {
	g := p.g
	p.issueNs = g.rt.rec.Now()
	local := 0
	for _, r := range g.ranks {
		if g.rt.work[r] != nil {
			local++
		}
	}
	p.wg.Add(local)
	p.remaining.Store(int32(local))
	for m, r := range g.ranks {
		if ch := g.rt.work[r]; ch != nil {
			ch <- task{p: p, member: m}
		}
	}
}

// Wait blocks until the operation has finished on every member rank,
// then recycles the descriptor. The handle must not be used afterwards.
func (p *Pending) Wait() { p.WaitBytes() }

// WaitBytes is Wait, additionally returning the operation's executed
// wire volume (see WireBytes) — the last moment it can be read, since
// waiting recycles the descriptor.
func (p *Pending) WaitBytes() int64 {
	p.wg.Wait()
	n := p.wire.Load()
	p.g.putOp(p)
	return n
}

// Done reports whether the operation has finished on every member rank
// (without blocking and without consuming the handle — Wait must still
// be called).
func (p *Pending) Done() bool { return p.remaining.Load() == 0 }

// WireBytes returns the bytes this operation has put on the transport so
// far, summed over every member's sends: 2V·(D−1) for a dense all-reduce
// of a V-byte buffer, (D−1)·Σ payloads for a compressed one, (D−1)·V for
// a broadcast. Only stable once Done reports true; callers that need the
// executed volume must read it between Done and Wait (or from the value
// Wait leaves behind — see the trainer's bucket log).
func (p *Pending) WireBytes() int64 { return p.wire.Load() }

// exec runs member m's share of the operation (called on rank workers).
// Remote runtimes execute the wire twins, which ship chunk and payload
// data inside messages instead of reading peer buffers.
func (p *Pending) exec(m int) {
	switch {
	case p.g.rt.remote:
		switch p.kind {
		case opAllReduce:
			p.runAllReduceWire(m)
		case opAllReduceCompressed:
			p.runAllReduceCompressedWire(m)
		case opBroadcast:
			p.runBroadcastWire(m)
		}
	case p.kind == opAllReduce:
		p.runAllReduce(m)
	case p.kind == opAllReduceCompressed:
		p.runAllReduceCompressed(m)
	case p.kind == opBroadcast:
		p.runBroadcast(m)
	}
	if p.remaining.Add(-1) == 0 {
		// Last member out: record the operation's issue→finish span — its
		// Bytes field carries the op's full executed wire volume, so the
		// per-link-class span sums reconcile exactly against the transport
		// counters — and, for compressed ops, return the reconstruction
		// (or sparse payload) copies to the pool; only now is every member
		// done reading them.
		g := p.g
		if rec := g.rt.rec; rec != nil {
			var ph obs.Phase
			switch p.kind {
			case opAllReduce:
				ph = obs.PhaseAllReduce
			case opAllReduceCompressed:
				ph = obs.PhaseAllReduceCompressed
			case opBroadcast:
				ph = obs.PhaseBroadcast
			}
			rec.RecordSpan(g.rt.recOpsBase+int(g.class), ph, linkOf(g.class),
				p.issueNs, rec.Now(), p.wire.Load(), g.tag, -1, -1)
		}
		if p.kind == opAllReduceCompressed {
			for i, r := range p.recons {
				if r != nil {
					g.rt.pool.Put(r)
					p.recons[i] = nil
				}
			}
			for i, s := range p.spl {
				if s != nil {
					g.rt.pool.PutSparse(s)
					p.spl[i] = nil
				}
			}
		}
	}
}

// chunkBytes returns chunk c's wire size at the dense element width.
func (p *Pending) chunkBytes(c int) int64 {
	return int64(p.offs[c+1]-p.offs[c]) * compress.ElemBytes
}

// send puts one step token on the transport and tallies the op's
// executed wire volume.
func (p *Pending) send(self, right int, bytes int64) {
	p.g.rt.tr.Send(p.g.class, self, right, Msg{Bytes: bytes})
	p.wire.Add(bytes)
}

// mod returns x mod d for possibly-negative x.
func mod(x, d int) int { return ((x % d) + d) % d }

// runAllReduce executes member m's ring schedule. Step tokens carry both
// the byte accounting and the happens-before edges that make the
// shared-memory reads race-free; the race-enabled equivalence tests
// execute exactly this path.
func (p *Pending) runAllReduce(m int) {
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	// Reduce-scatter rounds: at step t the ring forwards chunk (m−t).
	for t := 0; t < d-1; t++ {
		p.send(self, right, p.chunkBytes(mod(m-t, d)))
		tr.Recv(cls, self, left)
	}

	// Deterministic reduction of the owned segment (chunk m+1), in flat
	// ring order over every member's buffer. Writes stay inside this
	// member's segment; reads of other buffers touch only that segment,
	// which no other member writes before its all-gather token arrives.
	seg := mod(m+1, d)
	lo, hi := p.offs[seg], p.offs[seg+1]
	if hi > lo {
		sum := g.rt.pool.Get(1, hi-lo)
		vb := &p.viewB[m]
		for _, b := range p.bufs {
			b.SliceInto(vb, lo, hi)
			sum.Add(vb)
		}
		if p.scale != 1 {
			sum.Scale(p.scale)
		}
		va := &p.viewA[m]
		p.bufs[m].SliceInto(va, lo, hi)
		va.CopyFrom(sum)
		g.rt.pool.Put(sum)
	}

	// All-gather rounds: chunk (m+1−t) goes right, chunk (m−t) arrives
	// from the left member's buffer and is copied into ours.
	for t := 0; t < d-1; t++ {
		p.send(self, right, p.chunkBytes(mod(m+1-t, d)))
		tr.Recv(cls, self, left)
		c := mod(m-t, d)
		lo, hi := p.offs[c], p.offs[c+1]
		if hi > lo {
			va, vb := &p.viewA[m], &p.viewB[m]
			p.bufs[m].SliceInto(va, lo, hi)
			p.bufs[mod(m-1, d)].SliceInto(vb, lo, hi)
			va.CopyFrom(vb)
		}
	}
}

// runAllReduceCompressed executes member m's compressed schedule:
// compress locally, all-gather the payloads around the ring (each step
// forwards the payload received on the previous one, so variable payload
// sizes are accounted exactly), then reduce every rank's reconstruction
// in flat ring order into this member's buffer.
func (p *Pending) runAllReduceCompressed(m int) {
	if p.sparse {
		p.runAllReduceCompressedSparse(m)
		return
	}
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	// The reconstruction is the compressor's own scratch, overwritten by
	// its next same-shape compression — which an in-flight successor op
	// sharing this compressor may issue before every member here has
	// reduced it. Ship a pooled copy instead (the SendCompressed
	// precedent); the op's last member returns the copies to the pool.
	pl, recon := p.efs[m].CompressWithFeedback(p.bufs[m])
	ship := g.rt.pool.GetUninit(recon.Rows, recon.Cols) // CopyFrom writes every element
	ship.CopyFrom(recon)
	p.recons[m] = ship
	wire := pl.WireBytes()
	for t := 0; t < d-1; t++ {
		p.send(self, right, wire)
		wire = tr.Recv(cls, self, left).Bytes
	}

	buf := p.bufs[m]
	buf.Zero()
	for _, r := range p.recons {
		buf.Add(r)
	}
	if p.scale != 1 {
		buf.Scale(p.scale)
	}
}

// SparseReduceCapFraction is the density cap of the sparse merge-union
// reduction: when the payloads' summed nnz exceeds this fraction of the
// dense element count, the worst-case union is dense enough that the
// per-coordinate merge bookkeeping (a branchy two-pointer walk per
// operand pair) costs more than one streaming dense pass, so the
// reduction falls back to scatter-adding the payloads into the zeroed
// dense buffer. Either way the per-coordinate addition order is the
// flat ring order, so the crossover never changes results — only which
// loop produces them (the accounting lands in SparseReduceStats, and
// the crossover test drives an op across the cap to pin both sides).
const SparseReduceCapFraction = 0.5

// runAllReduceCompressedSparse is the sparse-native twin of
// runAllReduceCompressed: ship the compressed index/value payload
// itself (no dense reconstruction anywhere), then reduce by merge-union
// in flat ring order — per coordinate, the same left-to-right addition
// sequence as the densified oracle, hence bit-identical at tol 0.
func (p *Pending) runAllReduceCompressedSparse(m int) {
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	pool := g.rt.pool
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	// Like the dense path's reconstruction, the payload aliases the
	// compressor's scratch; ship a pooled copy so an in-flight successor
	// op on the same compressor cannot clobber it. The op's last member
	// returns the copies to the pool.
	pl, _ := p.efs[m].CompressWithFeedbackSparse(p.bufs[m])
	ship := pool.GetSparse(p.bufs[m].Rows, p.bufs[m].Cols)
	ship.CopyFrom(&pl.Sparse)
	p.spl[m] = ship
	wire := pl.WireBytes()
	for t := 0; t < d-1; t++ {
		p.send(self, right, wire)
		wire = tr.Recv(cls, self, left).Bytes
	}

	// After d−1 ring steps every member's payload write happens-before
	// this point (the same token chain the dense path relies on). All
	// members see the same payloads, so the cap decision is uniform.
	buf := p.bufs[m]
	total := 0
	for _, sp := range p.spl {
		total += sp.NNZ()
	}
	if float64(total) > SparseReduceCapFraction*float64(buf.NumElements()) {
		if m == 0 {
			g.rt.spFallbacks.Add(1)
		}
		buf.Zero()
		for _, sp := range p.spl {
			tensor.SpAxpyInto(buf, 1, sp)
		}
		if p.scale != 1 {
			buf.Scale(p.scale)
		}
		return
	}
	if m == 0 {
		g.rt.spOps.Add(1)
	}
	sa, sb := pool.GetSparse(buf.Rows, buf.Cols), pool.GetSparse(buf.Rows, buf.Cols)
	cur, next := p.spl[0], sa
	for i := 1; i < d; i++ {
		tensor.MergeUnionInto(next, cur, p.spl[i])
		if next == sa {
			cur, next = sa, sb
		} else {
			cur, next = sb, sa
		}
	}
	buf.Zero()
	tensor.SpAxpyInto(buf, p.scale, cur)
	pool.PutSparse(sa)
	pool.PutSparse(sb)
}

// runBroadcast executes member m's share of the ring pipeline rooted at
// member p.root.
func (p *Pending) runBroadcast(m int) {
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]
	rel := mod(m-p.root, d)
	if rel > 0 {
		tr.Recv(cls, self, left)
		p.bufs[m].CopyFrom(p.bufs[mod(m-1, d)])
	}
	if rel < d-1 {
		p.send(self, right, p.opBytes)
	}
}
