package collective

import (
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// Group is a set of ranks in ring order bound to a link class. All of its
// collectives operate on one buffer per member rank (bufs[i] belongs to
// ranks[i]) — the in-process stand-in for each rank's device memory.
//
// A Group runs one collective at a time; its op descriptor and per-member
// view headers are reused across calls so the steady state allocates
// nothing.
type Group struct {
	rt    *Runtime
	class Class
	ranks []int

	// Reused op descriptor: written by the submitting goroutine, read by
	// the rank workers after they receive their task (the channel receive
	// is the happens-before edge).
	kind    opKind
	bufs    []*tensor.Matrix
	efs     []*compress.ErrorFeedback
	scale   float64
	root    int
	opBytes int64
	offs    []int // chunk offsets, len(ranks)+1
	recons  []*tensor.Matrix
	viewA   []tensor.Matrix // per-member destination view headers
	viewB   []tensor.Matrix // per-member source view headers
	wg      sync.WaitGroup
}

type opKind int

const (
	opAllReduce opKind = iota
	opAllReduceCompressed
	opBroadcast
)

// Size returns the number of member ranks.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the member ranks in ring (and reduction) order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Class returns the link class the group's traffic is accounted on.
func (g *Group) Class() Class { return g.class }

// AllReduce sets every buffer to scale·Σ bufs, element-wise: scale = 1/D
// is the data-parallel average, scale = 1 the §6 embedding sum. The
// schedule is the Thakur ring — reduce-scatter then all-gather over D
// chunk views, 2(D−1) steps, per-rank volume 2V·(D−1)/D — and the
// reduction applies in flat ring order, so the result is bit-identical to
// the serial reference sum at any rank count (see the package comment).
func (g *Group) AllReduce(bufs []*tensor.Matrix, scale float64) {
	g.prep(opAllReduce, bufs, scale)
	if len(g.ranks) == 1 {
		if scale != 1 {
			bufs[0].Scale(scale)
		}
		return
	}
	g.dispatch()
	g.rt.tr.AddSteps(g.class, 2*(len(g.ranks)-1))
}

// AllReduceCompressed is the lossy variant: each rank compresses its own
// buffer through its private error-feedback compressor (efs[i] belongs to
// ranks[i]; residuals carry across calls, §2.3), the compressed payloads
// ride a ring all-gather (D−1 steps, payload wire bytes accounted), and
// every rank reduces the reconstructions in flat ring order into its
// buffer. The result matches the serial per-group compress-then-average
// semantics bit for bit.
func (g *Group) AllReduceCompressed(bufs []*tensor.Matrix, efs []*compress.ErrorFeedback, scale float64) {
	if len(efs) != len(g.ranks) {
		panic(fmt.Sprintf("collective: %d compressors for %d ranks", len(efs), len(g.ranks)))
	}
	g.prep(opAllReduceCompressed, bufs, scale)
	g.efs = efs
	g.dispatch()
	g.rt.tr.AddSteps(g.class, len(g.ranks)-1)
}

// Broadcast copies the root member's buffer into every other member's
// buffer over a ring pipeline: D−1 messages of the full volume, D−1
// steps. root indexes the member (position in ring order), not the global
// rank.
func (g *Group) Broadcast(bufs []*tensor.Matrix, root int) {
	if root < 0 || root >= len(g.ranks) {
		panic(fmt.Sprintf("collective: broadcast root %d outside group of %d", root, len(g.ranks)))
	}
	g.prep(opBroadcast, bufs, 1)
	g.root = root
	g.opBytes = bufs[0].SizeBytes(compress.ElemBytes)
	if len(g.ranks) == 1 {
		return
	}
	g.dispatch()
	g.rt.tr.AddSteps(g.class, len(g.ranks)-1)
}

// prep validates the buffers and loads the shared op descriptor.
func (g *Group) prep(kind opKind, bufs []*tensor.Matrix, scale float64) {
	if len(bufs) != len(g.ranks) {
		panic(fmt.Sprintf("collective: %d buffers for %d ranks", len(bufs), len(g.ranks)))
	}
	r0, c0 := bufs[0].Shape()
	for _, b := range bufs[1:] {
		if r, c := b.Shape(); r != r0 || c != c0 {
			panic(fmt.Sprintf("collective: buffer shape %dx%d != %dx%d", r, c, r0, c0))
		}
	}
	g.kind = kind
	g.bufs = bufs
	g.efs = nil
	g.scale = scale
	g.chunkOffsets(r0 * c0)
}

// chunkOffsets computes the balanced D-way partition of n elements:
// chunk c covers [offs[c], offs[c+1]), sizes differing by at most one
// element (odd sizes and n < D — empty chunks — are fine).
func (g *Group) chunkOffsets(n int) {
	d := len(g.ranks)
	base, rem := n/d, n%d
	off := 0
	for c := 0; c < d; c++ {
		g.offs[c] = off
		off += base
		if c < rem {
			off++
		}
	}
	g.offs[d] = off
}

// dispatch hands one task per member to the rank workers and waits.
func (g *Group) dispatch() {
	g.wg.Add(len(g.ranks))
	for m, r := range g.ranks {
		g.rt.work[r] <- task{g: g, member: m}
	}
	g.wg.Wait()
}

// exec runs member m's share of the current op (called on rank workers).
func (g *Group) exec(m int) {
	switch g.kind {
	case opAllReduce:
		g.runAllReduce(m)
	case opAllReduceCompressed:
		g.runAllReduceCompressed(m)
	case opBroadcast:
		g.runBroadcast(m)
	}
}

// chunkBytes returns chunk c's wire size at the dense element width.
func (g *Group) chunkBytes(c int) int64 {
	return int64(g.offs[c+1]-g.offs[c]) * compress.ElemBytes
}

// mod returns x mod d for possibly-negative x.
func mod(x, d int) int { return ((x % d) + d) % d }

// runAllReduce executes member m's ring schedule. Step tokens carry both
// the byte accounting and the happens-before edges that make the
// shared-memory reads race-free; the race-enabled equivalence tests
// execute exactly this path.
func (g *Group) runAllReduce(m int) {
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	// Reduce-scatter rounds: at step t the ring forwards chunk (m−t).
	for t := 0; t < d-1; t++ {
		tr.Send(cls, self, right, Msg{Bytes: g.chunkBytes(mod(m-t, d))})
		tr.Recv(cls, self, left)
	}

	// Deterministic reduction of the owned segment (chunk m+1), in flat
	// ring order over every member's buffer. Writes stay inside this
	// member's segment; reads of other buffers touch only that segment,
	// which no other member writes before its all-gather token arrives.
	seg := mod(m+1, d)
	lo, hi := g.offs[seg], g.offs[seg+1]
	if hi > lo {
		sum := g.rt.pool.Get(1, hi-lo)
		vb := &g.viewB[m]
		for _, b := range g.bufs {
			b.SliceInto(vb, lo, hi)
			sum.Add(vb)
		}
		if g.scale != 1 {
			sum.Scale(g.scale)
		}
		va := &g.viewA[m]
		g.bufs[m].SliceInto(va, lo, hi)
		va.CopyFrom(sum)
		g.rt.pool.Put(sum)
	}

	// All-gather rounds: chunk (m+1−t) goes right, chunk (m−t) arrives
	// from the left member's buffer and is copied into ours.
	for t := 0; t < d-1; t++ {
		tr.Send(cls, self, right, Msg{Bytes: g.chunkBytes(mod(m+1-t, d))})
		tr.Recv(cls, self, left)
		c := mod(m-t, d)
		lo, hi := g.offs[c], g.offs[c+1]
		if hi > lo {
			va, vb := &g.viewA[m], &g.viewB[m]
			g.bufs[m].SliceInto(va, lo, hi)
			g.bufs[mod(m-1, d)].SliceInto(vb, lo, hi)
			va.CopyFrom(vb)
		}
	}
}

// runAllReduceCompressed executes member m's compressed schedule:
// compress locally, all-gather the payloads around the ring (each step
// forwards the payload received on the previous one, so variable payload
// sizes are accounted exactly), then reduce every rank's reconstruction
// in flat ring order into this member's buffer.
func (g *Group) runAllReduceCompressed(m int) {
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	pl, recon := g.efs[m].CompressWithFeedback(g.bufs[m])
	g.recons[m] = recon
	wire := pl.WireBytes()
	for t := 0; t < d-1; t++ {
		tr.Send(cls, self, right, Msg{Bytes: wire})
		wire = tr.Recv(cls, self, left).Bytes
	}

	buf := g.bufs[m]
	buf.Zero()
	for _, r := range g.recons {
		buf.Add(r)
	}
	if g.scale != 1 {
		buf.Scale(g.scale)
	}
}

// runBroadcast executes member m's share of the ring pipeline rooted at
// member g.root.
func (g *Group) runBroadcast(m int) {
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]
	rel := mod(m-g.root, d)
	if rel > 0 {
		tr.Recv(cls, self, left)
		g.bufs[m].CopyFrom(g.bufs[mod(m-1, d)])
	}
	if rel < d-1 {
		tr.Send(cls, self, right, Msg{Bytes: g.opBytes})
	}
}
