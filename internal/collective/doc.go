// Package collective is the rank-based collective-communication runtime
// of the Optimus-CC reproduction. It gives the repo an *executable*
// counterpart to the analytic cost models in internal/simnet and
// internal/core: where simnet.Link.AllReduceTime predicts what a ring
// all-reduce costs, this package actually runs one — goroutine-per-rank,
// message-per-step — and the transport reports the bytes, messages, and
// steps that really moved, so experiments can put predicted and executed
// volume side by side (Eq. 15/16).
//
// The pieces:
//
//   - Topology maps flat ranks onto a DP×PP grid and derives the ring
//     orderings of every communication group: the per-stage data-parallel
//     groups, the per-replica pipeline groups, and the §6 fused embedding
//     group (first- and last-stage ranks of every DP replica).
//   - Transport moves step tokens between ranks and accounts traffic per
//     link class (ClassDP, ClassPP, ClassEmb). MemTransport is the
//     in-process implementation: one buffered channel per directed rank
//     pair, atomic counters per class.
//   - Runtime owns one long-lived worker goroutine per rank (so steady-
//     state collectives spawn nothing and allocate nothing) plus the
//     tensor.Pool that reduction scratch comes from. Close releases the
//     workers.
//   - Group is a set of ranks in ring order bound to a link class. Its
//     collectives — AllReduce, AllReduceCompressed, Broadcast — follow the
//     Thakur ring schedule: reduce-scatter + all-gather over chunk views
//     (tensor.Matrix.SliceInto), 2(R−1) steps, per-rank volume
//     2V·(R−1)/R. AllReduceCompressed runs a compress.Compressor with
//     per-rank error feedback inside the collective (ring all-gather of
//     the compressed payloads, then local reduction), which is exactly the
//     semantics of per-group PowerSGD gradient averaging.
//   - Point-to-point primitives (Runtime.Send, Recv, SendCompressed)
//     execute the pipeline-parallel inter-stage transfers of §5: a tensor
//     is handed to the neighbouring rank through a payload queue deep
//     enough for the 1F1B schedule's worst-case skew (deadlock-free by
//     construction), accounting its wire bytes, one message, and one
//     latency-bearing step on ClassPP. SendCompressed runs the boundary's
//     private error-feedback compressor — the residual is the paper's
//     lazy error propagation (§5.1) — and ships the reconstruction while
//     accounting only the payload bytes. internal/train's 1F1B executor
//     is built on these; simnet.InterStageMessages and
//     sim.PredictInterStage are their analytic twins.
//
// # Determinism
//
// A textbook ring reduce-scatter accumulates each chunk in a rotated rank
// order (chunk c starts at rank c), so different chunks reduce in
// different orders and the result is only reproducible up to floating-
// point reassociation. This runtime deliberately trades that artifact
// away: the message schedule, step count, and per-link byte accounting
// follow the ring exactly, but each chunk's owner applies the reduction
// in flat rank order over the (shared-memory) source buffers. Every
// collective is therefore bit-identical to the serial reference reduction
// at any rank count — the property the trainer's equivalence tests pin at
// tolerance zero — while the transport still observes genuine Thakur-ring
// traffic. The happens-before edges that make the shared-memory reads
// safe are carried by the step tokens themselves, which the race-enabled
// tests exercise.
//
// # Async handles
//
// Every collective also exists as an issued operation:
// AllReduceAsync/AllReduceCompressedAsync/BroadcastAsync return a
// *Pending handle immediately (Wait, Done, WaitBytes — the last also
// reporting the operation's executed wire volume, which the trainer's
// per-bucket crosschecks reconcile against plan and simulator
// predictions). The blocking methods are issue+wait wrappers, so both
// paths execute the identical deterministic schedule. Per-rank op
// queues run a group's in-flight operations in issue order on every
// member, preserving the flat-rank-order reduction with overlap; op
// descriptors are pooled, so issuing stays 0 allocs/op. This is what
// lets internal/train hide bucketed DP synchronization under the
// backward pass.
//
// # Concurrency contract
//
// Distinct Groups over disjoint rank sets may run collectives
// concurrently (the trainer fans per-stage DP groups out this way).
// A single Group's operations must all be issued from one goroutine at
// a time (in-flight operations are fine — they execute in issue
// order); two groups that share a rank must not run concurrently —
// each rank has one worker and op queues are per rank, so cross-group
// issue order would be racy.
package collective
