package collective

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Coordinator is the rendezvous and results service of a process-per-
// rank run. Every rank dials it over one control connection (JSON
// messages, std-lib only) and the run proceeds in two barriers:
//
//  1. join: each rank announces {rank, world, data address}; once all
//     world ranks are present the coordinator broadcasts the rank-ordered
//     peer address table, which is what lets TCP ranks listen on :0 and
//     still find each other (unix ranks could agree on paths, but flow
//     through the same barrier so a dead rank is caught before training).
//  2. report: after training, each rank submits its final-iteration loss
//     sum and transport stats; once all have reported the coordinator
//     acks every rank — the completion barrier that makes closing the
//     data sockets safe — and Wait returns the aggregate.
//
// Any protocol violation (duplicate rank, world mismatch) fails the run:
// every control connection closes, pending ranks error out, and Wait
// surfaces the cause.
type Coordinator struct {
	world int
	ln    net.Listener

	mu       sync.Mutex
	addrs    []string
	conns    []net.Conn
	joined   int
	reports  []RankReport
	reported int

	done chan struct{}
	fail chan struct{}
	err  error
	once sync.Once
	wg   sync.WaitGroup
}

// RankReport is one rank's end-of-run submission.
type RankReport struct {
	// LossSum is the rank's final-iteration micro-batch loss sum (nonzero
	// only on last-stage ranks); Σ over ranks / (DPGroups·MicroBatches)
	// is the run's final mean loss, bit-identical to the in-process
	// trainer's because ranks are summed in rank order.
	LossSum float64
	// Stats is the rank's transport snapshot; the per-class sum over
	// ranks equals the MemTransport totals of the same run.
	Stats Stats
	// FrameBytes is the rank's actual framed wire volume.
	FrameBytes int64
}

// Control messages.
type coordJoin struct {
	Rank  int    `json:"rank"`
	World int    `json:"world"`
	Addr  string `json:"addr"`
}

type coordPeers struct {
	Peers []string `json:"peers,omitempty"`
	Err   string   `json:"err,omitempty"`
}

type coordReport struct {
	Rank       int     `json:"rank"`
	LossSum    float64 `json:"loss_sum"`
	Stats      Stats   `json:"stats"`
	FrameBytes int64   `json:"frame_bytes"`
}

type coordAck struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// NewCoordinator serves a world-rank run on ln (owned by the coordinator
// from here on).
func NewCoordinator(world int, ln net.Listener) *Coordinator {
	c := &Coordinator{
		world:   world,
		ln:      ln,
		addrs:   make([]string, world),
		conns:   make([]net.Conn, world),
		reports: make([]RankReport, world),
		done:    make(chan struct{}),
		fail:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for i := 0; i < c.world; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			c.failWith(fmt.Errorf("collective: coordinator accept: %w", err))
			return
		}
		c.wg.Add(1)
		go c.serveRank(conn)
	}
}

// serveRank drives one rank's control connection through both barriers.
func (c *Coordinator) serveRank(conn net.Conn) {
	defer c.wg.Done()
	dec := json.NewDecoder(conn)

	var join coordJoin
	if err := dec.Decode(&join); err != nil {
		c.failWith(fmt.Errorf("collective: coordinator: bad join: %w", err))
		return
	}
	if join.World != c.world {
		c.failWith(fmt.Errorf("collective: coordinator: rank %d joined with world %d, want %d", join.Rank, join.World, c.world))
		return
	}
	if join.Rank < 0 || join.Rank >= c.world {
		c.failWith(fmt.Errorf("collective: coordinator: join from rank %d outside world %d", join.Rank, c.world))
		return
	}
	c.mu.Lock()
	if c.conns[join.Rank] != nil {
		c.mu.Unlock()
		c.failWith(fmt.Errorf("collective: coordinator: duplicate join from rank %d", join.Rank))
		return
	}
	c.conns[join.Rank] = conn
	c.addrs[join.Rank] = join.Addr
	c.joined++
	if c.joined == c.world {
		// Everyone is here: release the join barrier.
		peers := coordPeers{Peers: append([]string(nil), c.addrs...)}
		for _, cc := range c.conns {
			if err := json.NewEncoder(cc).Encode(peers); err != nil {
				c.mu.Unlock()
				c.failWith(fmt.Errorf("collective: coordinator: peer broadcast: %w", err))
				return
			}
		}
	}
	c.mu.Unlock()

	var rep coordReport
	if err := dec.Decode(&rep); err != nil {
		c.failWith(fmt.Errorf("collective: coordinator: rank %d report: %w", join.Rank, err))
		return
	}
	if rep.Rank != join.Rank {
		c.failWith(fmt.Errorf("collective: coordinator: rank %d reported as rank %d", join.Rank, rep.Rank))
		return
	}
	c.mu.Lock()
	c.reports[join.Rank] = RankReport{LossSum: rep.LossSum, Stats: rep.Stats, FrameBytes: rep.FrameBytes}
	c.reported++
	if c.reported == c.world {
		// Completion barrier: ack every rank, then signal Wait.
		for _, cc := range c.conns {
			if err := json.NewEncoder(cc).Encode(coordAck{OK: true}); err != nil {
				c.mu.Unlock()
				c.failWith(fmt.Errorf("collective: coordinator: ack broadcast: %w", err))
				return
			}
		}
		close(c.done)
	}
	c.mu.Unlock()
}

func (c *Coordinator) failWith(err error) {
	c.once.Do(func() {
		c.err = err
		close(c.fail)
		c.ln.Close()
		c.mu.Lock()
		for _, cc := range c.conns {
			if cc != nil {
				cc.Close()
			}
		}
		c.mu.Unlock()
	})
}

// Wait blocks until every rank has reported (returning the per-rank
// reports in rank order) or the run failed.
func (c *Coordinator) Wait() ([]RankReport, error) {
	select {
	case <-c.done:
		return append([]RankReport(nil), c.reports...), nil
	case <-c.fail:
		return nil, c.err
	}
}

// Close tears the coordinator down (normally after Wait).
func (c *Coordinator) Close() {
	c.failWith(fmt.Errorf("collective: coordinator closed"))
	c.wg.Wait()
}

// CoordPeer is a rank's client side of the coordinator protocol.
type CoordPeer struct {
	conn net.Conn
	dec  *json.Decoder
}

// JoinCoordinator dials the coordinator (retrying until timeout — the
// coordinator may not be listening yet when a rank process starts),
// announces this rank's data address, and blocks until the join barrier
// releases, returning the rank-ordered peer address table.
func JoinCoordinator(network, addr string, rank, world int, dataAddr string, timeout time.Duration) (*CoordPeer, []string, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	var conn net.Conn
	backoff := 2 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		var err error
		conn, err = d.Dial(network, addr)
		if err == nil {
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, nil, fmt.Errorf("collective: rank %d: dial coordinator (%s %s): %w", rank, network, addr, err)
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
	conn.SetDeadline(deadline)
	if err := json.NewEncoder(conn).Encode(coordJoin{Rank: rank, World: world, Addr: dataAddr}); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("collective: rank %d: coordinator join: %w", rank, err)
	}
	p := &CoordPeer{conn: conn, dec: json.NewDecoder(conn)}
	var peers coordPeers
	if err := p.dec.Decode(&peers); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("collective: rank %d: coordinator peers: %w", rank, err)
	}
	if peers.Err != "" {
		conn.Close()
		return nil, nil, fmt.Errorf("collective: rank %d: coordinator: %s", rank, peers.Err)
	}
	if len(peers.Peers) != world {
		conn.Close()
		return nil, nil, fmt.Errorf("collective: rank %d: coordinator sent %d peers for world %d", rank, len(peers.Peers), world)
	}
	conn.SetDeadline(time.Time{})
	return p, peers.Peers, nil
}

// Report submits this rank's results and blocks until every rank has
// reported (the completion barrier) or timeout passes. The control
// connection closes either way.
func (p *CoordPeer) Report(rank int, rep RankReport, timeout time.Duration) error {
	defer p.conn.Close()
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	p.conn.SetDeadline(time.Now().Add(timeout))
	msg := coordReport{Rank: rank, LossSum: rep.LossSum, Stats: rep.Stats, FrameBytes: rep.FrameBytes}
	if err := json.NewEncoder(p.conn).Encode(msg); err != nil {
		return fmt.Errorf("collective: rank %d: coordinator report: %w", rank, err)
	}
	var ack coordAck
	if err := p.dec.Decode(&ack); err != nil {
		return fmt.Errorf("collective: rank %d: coordinator ack: %w", rank, err)
	}
	if !ack.OK {
		return fmt.Errorf("collective: rank %d: coordinator: %s", rank, ack.Err)
	}
	return nil
}
