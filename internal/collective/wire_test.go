package collective

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/tensor"
)

// reframe re-encodes a decoded frame; a healthy codec reproduces the
// original frame bytes exactly.
func reframe(h frameHeader, m Msg) []byte {
	return appendFrame(nil, h.class, h.kind, h.from, h.to, m)
}

func testSparse(rows, cols int, indices []int, values []float64) *tensor.Sparse {
	s := tensor.NewSparse(rows, cols, len(indices))
	s.Reuse(len(indices), rows, cols)
	copy(s.Indices, indices)
	copy(s.Values, values)
	return s
}

func TestFrameRoundTrip(t *testing.T) {
	dense := tensor.New(2, 3)
	for i := range dense.Data {
		dense.Data[i] = float64(i) - 2.5
	}
	dense.Data[0] = math.Inf(-1)
	sparse := testSparse(2, 3, []int{0, 4}, []float64{1.5, math.Pi})

	cases := []struct {
		name string
		c    Class
		kind frameKind
		msg  Msg
	}{
		{"ring token", ClassDP, frameRing, Msg{Bytes: 4096}},
		{"dense pooled", ClassDP, frameRing, Msg{Bytes: 12, Payload: dense, Pooled: true}},
		{"dense retained", ClassPP, frameP2P, Msg{Bytes: 12, Payload: dense}},
		{"sparse", ClassEmb, frameP2P, Msg{Bytes: 20, Sparse: sparse}},
		{"zero bytes", ClassPP, frameRing, Msg{}},
	}
	for _, tc := range cases {
		frame := appendFrame(nil, tc.c, tc.kind, 3, 5, tc.msg)
		bodyLen := binary.LittleEndian.Uint32(frame)
		if int(bodyLen) != len(frame)-4 {
			t.Fatalf("%s: length prefix %d for %d body bytes", tc.name, bodyLen, len(frame)-4)
		}
		h, m, err := decodeFrameBody(frame[4:], 8, nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if h.class != tc.c || h.kind != tc.kind || h.from != 3 || h.to != 5 {
			t.Fatalf("%s: header %+v", tc.name, h)
		}
		if m.Bytes != tc.msg.Bytes || m.Pooled != tc.msg.Pooled {
			t.Fatalf("%s: msg fields %+v", tc.name, m)
		}
		if (m.Payload != nil) != (tc.msg.Payload != nil) || (m.Sparse != nil) != (tc.msg.Sparse != nil) {
			t.Fatalf("%s: payload presence mismatch", tc.name)
		}
		if !bytes.Equal(reframe(h, m), frame) {
			t.Fatalf("%s: re-encoded frame differs", tc.name)
		}
	}
}

func TestFrameDecodePool(t *testing.T) {
	pool := tensor.NewPool()
	dense := tensor.New(2, 2)
	dense.Fill(3)
	frame := appendFrame(nil, ClassDP, frameRing, 0, 1, Msg{Bytes: 8, Payload: dense, Pooled: true})
	_, m, err := decodeFrameBody(frame[4:], 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(m.Payload)
	// The pooled decode path must recycle: a second decode of the same
	// shape should reuse the matrix just returned.
	_, m2, err := decodeFrameBody(frame[4:], 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Payload != m.Payload {
		t.Fatal("pooled decode did not recycle the returned matrix")
	}
	// Non-pooled dense payloads may be retained by the receiver, so they
	// must NOT come from the pool even when one is supplied.
	pool.Put(m2.Payload)
	frame = appendFrame(nil, ClassDP, frameP2P, 0, 1, Msg{Bytes: 8, Payload: dense})
	_, m3, err := decodeFrameBody(frame[4:], 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Payload == m.Payload {
		t.Fatal("non-pooled decode returned a pooled matrix")
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid := appendFrame(nil, ClassDP, frameRing, 1, 2, Msg{Bytes: 64})
	body := valid[4:]

	for cut := 0; cut < len(body); cut++ {
		if _, _, err := decodeFrameBody(body[:cut], 4, nil); err == nil {
			t.Fatalf("truncated body (%d of %d) decoded without error", cut, len(body))
		}
	}

	corrupt := func(name string, mutate func(b []byte)) {
		t.Helper()
		b := append([]byte(nil), body...)
		mutate(b)
		if _, _, err := decodeFrameBody(b, 4, nil); err == nil {
			t.Fatalf("%s decoded without error", name)
		}
	}
	corrupt("bad version", func(b []byte) { b[0] = 9 })
	corrupt("bad class", func(b []byte) { b[1] = byte(numClasses) })
	corrupt("bad kind", func(b []byte) { b[2] = 7 })
	corrupt("unknown flag bits", func(b []byte) { b[3] = 0x80 })
	corrupt("dense and sparse", func(b []byte) { b[3] = flagDense | flagSparse })
	corrupt("pooled without dense", func(b []byte) { b[3] = flagPooled })
	corrupt("payload flag without payload", func(b []byte) { b[3] = flagDense })
	corrupt("from outside world", func(b []byte) { b[4] = 200 })
	corrupt("to outside world", func(b []byte) { b[8] = 200 })

	// Trailing bytes after a complete message.
	if _, _, err := decodeFrameBody(append(append([]byte(nil), body...), 0xEE), 4, nil); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}

	// Corrupt embedded payload surfaces the tensor codec's error.
	sp := testSparse(2, 2, []int{0, 3}, []float64{1, 2})
	spFrame := appendFrame(nil, ClassEmb, frameP2P, 0, 1, Msg{Bytes: 8, Sparse: sp})
	b := append([]byte(nil), spFrame[4:]...)
	b[frameHeaderLen+12] = 3 // first index == second index: breaks strict ascent
	if _, _, err := decodeFrameBody(b, 4, nil); err == nil {
		t.Fatal("corrupt sparse payload decoded without error")
	}
}

func FuzzDecodeFrameBody(f *testing.F) {
	dense := tensor.New(2, 3)
	for i := range dense.Data {
		dense.Data[i] = float64(i)
	}
	f.Add(appendFrame(nil, ClassDP, frameRing, 0, 1, Msg{Bytes: 128})[4:], 4)
	f.Add(appendFrame(nil, ClassPP, frameP2P, 2, 3, Msg{Bytes: 48, Payload: dense, Pooled: true})[4:], 4)
	f.Add(appendFrame(nil, ClassEmb, frameP2P, 1, 0, Msg{Bytes: 24, Sparse: testSparse(2, 3, []int{1, 4}, []float64{-1, 2})})[4:], 4)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, body []byte, world int) {
		if world <= 0 || world > 1<<20 {
			return
		}
		h, m, err := decodeFrameBody(body, world, nil) // must never panic
		if err != nil {
			return
		}
		if got := reframe(h, m); !bytes.Equal(got[4:], body) {
			t.Fatalf("re-encode mismatch: %d vs %d body bytes", len(got)-4, len(body))
		}
	})
}
