package collective

import "fmt"

// Topology maps flat ranks onto a DP×PP grid. Rank layout is DP-major
// (rank = dp·PP + pp), so the ranks of one data-parallel replica hold
// consecutive pipeline stages — the Megatron-LM convention the paper's
// cluster uses. A future tensor-parallel axis extends the same scheme.
type Topology struct {
	DP int // data-parallel group count
	PP int // pipeline-parallel stage count
}

// NewTopology validates and returns a DP×PP topology.
func NewTopology(dp, pp int) (Topology, error) {
	if dp < 1 || pp < 1 {
		return Topology{}, fmt.Errorf("collective: topology %d×%d has an empty axis", dp, pp)
	}
	return Topology{DP: dp, PP: pp}, nil
}

// World returns the total rank count DP·PP.
func (t Topology) World() int { return t.DP * t.PP }

// Rank returns the flat rank of grid coordinates (dp, pp).
func (t Topology) Rank(dp, pp int) int {
	if dp < 0 || dp >= t.DP || pp < 0 || pp >= t.PP {
		panic(fmt.Sprintf("collective: coords (%d,%d) outside %d×%d topology", dp, pp, t.DP, t.PP))
	}
	return dp*t.PP + pp
}

// Coords returns the grid coordinates of a flat rank.
func (t Topology) Coords(rank int) (dp, pp int) {
	if rank < 0 || rank >= t.World() {
		panic(fmt.Sprintf("collective: rank %d outside world %d", rank, t.World()))
	}
	return rank / t.PP, rank % t.PP
}

// DPGroup returns the data-parallel group of stage pp — the ranks holding
// that stage across all replicas — in ring order (ascending dp). This
// ordering is also the deterministic reduction order, matching the serial
// reference average.
func (t Topology) DPGroup(pp int) []int {
	out := make([]int, t.DP)
	for d := 0; d < t.DP; d++ {
		out[d] = t.Rank(d, pp)
	}
	return out
}

// PPGroup returns the pipeline group of replica dp — its stage chain in
// ring order (ascending pp).
func (t Topology) PPGroup(dp int) []int {
	out := make([]int, t.PP)
	for p := 0; p < t.PP; p++ {
		out[p] = t.Rank(dp, p)
	}
	return out
}

// EmbGroup returns the §6 fused embedding-synchronization group: the
// first- and last-stage ranks of every DP replica, 2·DP ranks in
// (replica-major, first-then-last) order. That order makes the fused
// 2D-way all-reduce's deterministic reduction identical to the serial
// fused sum Σ_d (first_d + last_d). With PP == 1 the two sides coincide
// and the group degenerates to the plain DP group of stage 0.
func (t Topology) EmbGroup() []int {
	if t.PP == 1 {
		return t.DPGroup(0)
	}
	last := t.PP - 1
	out := make([]int, 0, 2*t.DP)
	for d := 0; d < t.DP; d++ {
		out = append(out, t.Rank(d, 0), t.Rank(d, last))
	}
	return out
}

// EmbPair returns replica dp's two-rank embedding group {first stage,
// last stage}, the phase-2 sum of the §6 baseline (Fig. 7a).
func (t Topology) EmbPair(dp int) []int {
	return []int{t.Rank(dp, 0), t.Rank(dp, t.PP-1)}
}

// String renders the topology for logs and experiment tables.
func (t Topology) String() string { return fmt.Sprintf("dp%d×pp%d", t.DP, t.PP) }
