package collective

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// SocketTransport is the wire Transport: every rank is its own OS process
// (or, in tests, its own transport instance) and messages travel as
// length-prefixed frames over TCP or Unix-domain sockets. One framed
// stream exists per directed rank pair — rank r listens on Addrs[r] and
// dials every peer it sends to — opened during construction with a
// magic/version/world/from/to handshake, so a misconfigured grid fails at
// rendezvous, not mid-training.
//
// Send and SendP2P serialize the payload synchronously into a pooled
// byte buffer before returning: once a send call returns, the caller may
// reuse or mutate the tensors it passed (the same post-send freedom the
// MemTransport's chunk tokens imply for ring buffers), and a per-
// connection writer goroutine drains the queue so sends never block on
// the peer — the unbounded queue is what makes the wire schedules
// deadlock-free by construction. Inbound frames are decoded by one
// reader goroutine per stream and routed into unbounded per-(class,
// kind, sender) mailboxes, so a stream carrying several link classes
// cannot head-of-line block one class behind another.
//
// Per-class Stats count exactly what MemTransport counts — the modelled
// fp16 bytes, messages, and steps of each send — so a grid's aggregated
// socket Stats are bit-equal to the in-memory oracle's. FrameBytes
// separately tallies the bytes actually written to the wire (headers +
// float64 payload images).
type SocketTransport struct {
	cfg   SocketConfig
	rank  int
	world int

	ln   net.Listener
	out  []*sockWriter // per destination rank; nil for self
	mbox [numClasses][2][]*mailbox

	// inMu guards inConns, the accepted streams — closed on shutdown so
	// readers unblock promptly instead of waiting out a read deadline.
	inMu    sync.Mutex
	inConns []net.Conn

	// pool supplies decoded payload tensors (pooled dense and sparse
	// frames). Swapped by SetDecodePool while readers may be running,
	// hence atomic.
	pool atomic.Pointer[tensor.Pool]

	counters   [numClasses]classCounters
	frameBytes atomic.Int64

	bufs sync.Pool // *[]byte encode/decode scratch

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	failOnce  sync.Once
	failErr   error
}

// SocketConfig describes one rank's view of a socket grid.
type SocketConfig struct {
	// Network is "unix" or "tcp".
	Network string
	// Rank is the local rank; Addrs[Rank] is listened on, every other
	// entry dialed.
	Rank int
	// World is the total rank count; len(Addrs) must equal it.
	World int
	// Addrs holds every rank's data address (socket paths for "unix",
	// host:port for "tcp").
	Addrs []string
	// DialTimeout bounds the whole rendezvous (listen, dial-with-retry,
	// handshake, inbound registration). 0 means 30s.
	DialTimeout time.Duration
	// IOTimeout is the per-frame read/write deadline. It must exceed the
	// longest legitimate link-idle period (a rank's compute phase between
	// communication calls). 0 means 2 minutes.
	IOTimeout time.Duration
}

func (c *SocketConfig) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 30 * time.Second
}

func (c *SocketConfig) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return 2 * time.Minute
}

// Handshake: magic, version, then world/from/to as uint32 LE, answered
// with a single ack byte once the receiver has registered the stream.
var sockMagic = [4]byte{'O', 'C', 'C', '1'}

const (
	handshakeLen = 17
	handshakeAck = 0x06
)

// NewSocketTransport listens on cfg.Addrs[cfg.Rank] and completes the
// full-mesh rendezvous: it returns once every outbound stream is
// handshaken and every inbound stream registered, or fails after
// cfg.DialTimeout.
func NewSocketTransport(cfg SocketConfig) (*SocketTransport, error) {
	if cfg.Network != "unix" && cfg.Network != "tcp" {
		return nil, fmt.Errorf("collective: socket network %q (want unix or tcp)", cfg.Network)
	}
	ln, err := net.Listen(cfg.Network, cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("collective: rank %d listen: %w", cfg.Rank, err)
	}
	t, err := NewSocketTransportListener(cfg, ln)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return t, nil
}

// NewSocketTransportListener is NewSocketTransport over a listener the
// caller already opened — the TCP flow, where ranks listen on :0 first,
// learn their real addresses, exchange them through the coordinator, and
// only then build the transport. The listener is owned (and closed) by
// the transport from here on.
func NewSocketTransportListener(cfg SocketConfig, ln net.Listener) (*SocketTransport, error) {
	if cfg.World < 1 {
		return nil, fmt.Errorf("collective: socket world %d < 1", cfg.World)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return nil, fmt.Errorf("collective: socket rank %d outside world %d", cfg.Rank, cfg.World)
	}
	if len(cfg.Addrs) != cfg.World {
		return nil, fmt.Errorf("collective: %d addresses for world %d", len(cfg.Addrs), cfg.World)
	}
	t := &SocketTransport{
		cfg:   cfg,
		rank:  cfg.Rank,
		world: cfg.World,
		ln:    ln,
		out:   make([]*sockWriter, cfg.World),
		done:  make(chan struct{}),
	}
	for c := range t.mbox {
		for k := range t.mbox[c] {
			boxes := make([]*mailbox, cfg.World)
			for i := range boxes {
				boxes[i] = newMailbox()
			}
			t.mbox[c][k] = boxes
		}
	}
	deadline := time.Now().Add(cfg.dialTimeout())

	// Inbound half: accept world−1 streams, each announced by a
	// handshake naming its sender.
	registered := make(chan int, cfg.World)
	acceptErr := make(chan error, 1)
	t.wg.Add(1)
	go t.acceptLoop(registered, acceptErr)

	// Outbound half: dial every peer (with retry — their listeners may
	// not be up yet) and handshake. The constructor goroutine alone
	// assigns t.out, so an abort never races a late dialer.
	type dialRes struct {
		to   int
		conn net.Conn
		err  error
	}
	dialCh := make(chan dialRes, cfg.World)
	pendingDials := 0
	for to := 0; to < cfg.World; to++ {
		if to == t.rank {
			continue
		}
		pendingDials++
		go func(to int) {
			conn, err := t.dialPeer(to, deadline)
			dialCh <- dialRes{to: to, conn: conn, err: err}
		}(to)
	}
	abort := func(err error) (*SocketTransport, error) {
		// Late dialers respect the rendezvous deadline; reap their
		// connections in the background and shut down what exists now.
		go func(n int) {
			for i := 0; i < n; i++ {
				if r := <-dialCh; r.conn != nil {
					r.conn.Close()
				}
			}
		}(pendingDials)
		t.Close()
		return nil, err
	}

	seen := make(map[int]bool, cfg.World)
	needIn, needOut := cfg.World-1, cfg.World-1
	timeout := time.NewTimer(time.Until(deadline))
	defer timeout.Stop()
	for needIn > 0 || needOut > 0 {
		select {
		case from := <-registered:
			if seen[from] {
				return abort(fmt.Errorf("collective: rank %d: duplicate inbound stream from rank %d", t.rank, from))
			}
			seen[from] = true
			needIn--
		case r := <-dialCh:
			pendingDials--
			if r.err != nil {
				return abort(r.err)
			}
			t.out[r.to] = newSockWriter(t, r.conn)
			needOut--
		case err := <-acceptErr:
			return abort(err)
		case <-timeout.C:
			return abort(fmt.Errorf("collective: rank %d: rendezvous timed out (%d inbound, %d outbound streams missing)", t.rank, needIn, needOut))
		}
	}
	// Rendezvous complete: start the writer goroutines (queues may
	// already hold nothing — sends only begin after construction).
	for _, w := range t.out {
		if w != nil {
			w.mu.Lock()
			w.started = true
			w.mu.Unlock()
			t.wg.Add(1)
			go w.run()
		}
	}
	return t, nil
}

// dialPeer dials rank to's address until it answers or the rendezvous
// deadline passes, then performs the outbound handshake.
func (t *SocketTransport) dialPeer(to int, deadline time.Time) (net.Conn, error) {
	addr := t.cfg.Addrs[to]
	backoff := 2 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial(t.cfg.Network, addr)
		if err == nil {
			if err := t.handshakeOut(conn, to); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("collective: rank %d: dial rank %d (%s %s): %w", t.rank, to, t.cfg.Network, addr, err)
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// handshakeOut announces this rank on a freshly dialed stream and waits
// for the peer's ack.
func (t *SocketTransport) handshakeOut(conn net.Conn, to int) error {
	var hs [handshakeLen]byte
	copy(hs[:4], sockMagic[:])
	hs[4] = wireVersion
	binary.LittleEndian.PutUint32(hs[5:], uint32(t.world))
	binary.LittleEndian.PutUint32(hs[9:], uint32(t.rank))
	binary.LittleEndian.PutUint32(hs[13:], uint32(to))
	conn.SetDeadline(time.Now().Add(t.cfg.ioTimeout()))
	if _, err := conn.Write(hs[:]); err != nil {
		return fmt.Errorf("collective: rank %d: handshake write to rank %d: %w", t.rank, to, err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("collective: rank %d: handshake ack from rank %d: %w", t.rank, to, err)
	}
	if ack[0] != handshakeAck {
		return fmt.Errorf("collective: rank %d: bad handshake ack %#x from rank %d", t.rank, ack[0], to)
	}
	conn.SetDeadline(time.Time{})
	return nil
}

// acceptLoop registers inbound streams until the listener closes.
func (t *SocketTransport) acceptLoop(registered chan<- int, acceptErr chan<- error) {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
			default:
				select {
				case acceptErr <- err:
				default:
				}
			}
			return
		}
		from, err := t.handshakeIn(conn)
		if err != nil {
			conn.Close()
			select {
			case acceptErr <- err:
			default:
			}
			return
		}
		t.inMu.Lock()
		t.inConns = append(t.inConns, conn)
		t.inMu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn, from)
		registered <- from
	}
}

// handshakeIn validates a peer's announcement and acks it.
func (t *SocketTransport) handshakeIn(conn net.Conn) (from int, err error) {
	conn.SetDeadline(time.Now().Add(t.cfg.ioTimeout()))
	var hs [handshakeLen]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return 0, fmt.Errorf("collective: rank %d: handshake read: %w", t.rank, err)
	}
	if [4]byte(hs[:4]) != sockMagic {
		return 0, fmt.Errorf("collective: rank %d: bad handshake magic %q", t.rank, hs[:4])
	}
	if hs[4] != wireVersion {
		return 0, fmt.Errorf("collective: rank %d: handshake version %d, want %d", t.rank, hs[4], wireVersion)
	}
	world := int(binary.LittleEndian.Uint32(hs[5:]))
	from = int(binary.LittleEndian.Uint32(hs[9:]))
	to := int(binary.LittleEndian.Uint32(hs[13:]))
	if world != t.world {
		return 0, fmt.Errorf("collective: rank %d: handshake world %d, want %d", t.rank, world, t.world)
	}
	if from < 0 || from >= t.world || from == t.rank {
		return 0, fmt.Errorf("collective: rank %d: handshake from invalid rank %d", t.rank, from)
	}
	if to != t.rank {
		return 0, fmt.Errorf("collective: rank %d: handshake addressed to rank %d", t.rank, to)
	}
	if _, err := conn.Write([]byte{handshakeAck}); err != nil {
		return 0, fmt.Errorf("collective: rank %d: handshake ack write: %w", t.rank, err)
	}
	conn.SetDeadline(time.Time{})
	return from, nil
}

// readLoop decodes frames from one inbound stream and routes them to
// their mailboxes until the stream or transport closes.
func (t *SocketTransport) readLoop(conn net.Conn, from int) {
	defer t.wg.Done()
	defer conn.Close()
	var lenBuf [4]byte
	for {
		conn.SetReadDeadline(time.Now().Add(t.cfg.ioTimeout()))
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			if err != io.EOF {
				t.fail(fmt.Errorf("collective: rank %d: read from rank %d: %w", t.rank, from, err))
			}
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxFrameBody {
			t.fail(fmt.Errorf("collective: rank %d: frame of %d bytes from rank %d exceeds limit", t.rank, n, from))
			return
		}
		body := t.getBuf(int(n))
		conn.SetReadDeadline(time.Now().Add(t.cfg.ioTimeout()))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.fail(fmt.Errorf("collective: rank %d: frame body from rank %d: %w", t.rank, from, err))
			return
		}
		h, m, err := decodeFrameBody(body, t.world, t.pool.Load())
		t.putBuf(body)
		if err != nil {
			t.fail(fmt.Errorf("collective: rank %d: frame from rank %d: %w", t.rank, from, err))
			return
		}
		if h.from != from || h.to != t.rank {
			t.fail(fmt.Errorf("collective: rank %d: frame routed (%d→%d) on stream from rank %d", t.rank, h.from, h.to, from))
			return
		}
		t.mbox[h.class][h.kind][from].push(m)
	}
}

// fail records the first transport error and poisons every mailbox so
// blocked receivers surface it instead of hanging.
func (t *SocketTransport) fail(err error) {
	select {
	case <-t.done:
		return // shutting down: late stream errors are expected
	default:
	}
	t.failOnce.Do(func() {
		t.failErr = err
		for c := range t.mbox {
			for k := range t.mbox[c] {
				for _, b := range t.mbox[c][k] {
					b.fail(err)
				}
			}
		}
	})
}

// getBuf borrows a byte buffer of at least n bytes, length n.
func (t *SocketTransport) getBuf(n int) []byte {
	if p, ok := t.bufs.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

// putBuf returns a buffer for reuse.
func (t *SocketTransport) putBuf(b []byte) {
	b = b[:0]
	t.bufs.Put(&b)
}

// SetDecodePool routes decoded payload tensors (pooled dense frames,
// sparse frames) through p, so receivers that Put them back recycle the
// same buffers — the trainer points this at its workspace pool. A nil
// pool (the default) decodes into fresh allocations.
func (t *SocketTransport) SetDecodePool(p *tensor.Pool) { t.pool.Store(p) }

// World returns the rank count.
func (t *SocketTransport) World() int { return t.world }

// LocalRank returns the rank this transport sends as. The collective
// runtime uses it to spawn a worker for (and dispatch group work to)
// only the local rank.
func (t *SocketTransport) LocalRank() int { return t.rank }

// FrameBytes returns the total bytes actually framed onto the wire by
// this rank's sends (headers plus float64 payload images) — the
// transport-bench's honest wire volume, distinct from the modelled fp16
// Stats bytes.
func (t *SocketTransport) FrameBytes() int64 { return t.frameBytes.Load() }

func (t *SocketTransport) checkClass(c Class) {
	if c < 0 || c >= numClasses {
		panic(fmt.Sprintf("collective: class %d outside [0,%d)", int(c), int(numClasses)))
	}
}

func (t *SocketTransport) checkPair(from, to int) {
	if from < 0 || from >= t.world || to < 0 || to >= t.world {
		panic(fmt.Sprintf("collective: rank pair (%d,%d) outside world %d", from, to, t.world))
	}
}

// post frames m and hands it to the destination's writer (or loops it
// back through the codec for a self-send, keeping one code path).
func (t *SocketTransport) post(c Class, kind frameKind, from, to int, m Msg) {
	if from != t.rank {
		panic(fmt.Sprintf("collective: rank %d sending as rank %d", t.rank, from))
	}
	buf := t.getBuf(0)
	buf = appendFrame(buf, c, kind, from, to, m)
	t.frameBytes.Add(int64(len(buf)))
	if to == t.rank {
		h, dm, err := decodeFrameBody(buf[4:], t.world, t.pool.Load())
		if err != nil {
			panic(fmt.Sprintf("collective: self-send frame round-trip: %v", err))
		}
		t.putBuf(buf)
		t.mbox[h.class][h.kind][from].push(dm)
		return
	}
	t.out[to].enqueue(buf)
}

// Send implements Transport: the ring-step twin of MemTransport.Send,
// except the chunk data (when the wire schedules attach it) travels in
// the frame.
func (t *SocketTransport) Send(c Class, from, to int, m Msg) {
	t.checkClass(c)
	t.checkPair(from, to)
	t.counters[c].bytes.Add(m.Bytes)
	t.counters[c].messages.Add(1)
	t.post(c, frameRing, from, to, m)
}

// Recv implements Transport.
func (t *SocketTransport) Recv(c Class, to, from int) Msg {
	t.checkClass(c)
	t.checkPair(from, to)
	if to != t.rank {
		panic(fmt.Sprintf("collective: rank %d receiving as rank %d", t.rank, to))
	}
	return t.mbox[c][frameRing][from].pop()
}

// SendP2P implements Transport.
func (t *SocketTransport) SendP2P(c Class, from, to int, m Msg) {
	t.checkClass(c)
	t.checkPair(from, to)
	t.counters[c].bytes.Add(m.Bytes)
	t.counters[c].messages.Add(1)
	t.counters[c].steps.Add(1)
	t.post(c, frameP2P, from, to, m)
}

// RecvP2P implements Transport.
func (t *SocketTransport) RecvP2P(c Class, to, from int) Msg {
	t.checkClass(c)
	t.checkPair(from, to)
	if to != t.rank {
		panic(fmt.Sprintf("collective: rank %d receiving as rank %d", t.rank, to))
	}
	return t.mbox[c][frameP2P][from].pop()
}

// AddSteps implements Transport.
func (t *SocketTransport) AddSteps(c Class, n int) {
	t.checkClass(c)
	t.counters[c].steps.Add(int64(n))
}

// AccountP2P implements Transport (validated exactly like MemTransport's).
func (t *SocketTransport) AccountP2P(c Class, from, to int, bytes int64) {
	t.checkClass(c)
	t.checkPair(from, to)
	t.counters[c].bytes.Add(bytes)
	t.counters[c].messages.Add(1)
	t.counters[c].steps.Add(1)
}

// Remote implements Transport: payloads must ship in frames.
func (t *SocketTransport) Remote() bool { return true }

// Stats implements Transport. For a full grid's accounting, sum every
// rank's snapshot: each send is counted once, at its sender, so the
// aggregate equals the MemTransport totals of the same run.
func (t *SocketTransport) Stats() Stats {
	var s Stats
	for c := range t.counters {
		s[c] = ClassStats{
			Bytes:    t.counters[c].bytes.Load(),
			Messages: t.counters[c].messages.Load(),
			Steps:    t.counters[c].steps.Load(),
		}
	}
	return s
}

// Err returns the first transport failure (nil while healthy) — the
// error blocked receivers panic with.
func (t *SocketTransport) Err() error {
	select {
	case <-t.done:
	default:
	}
	if t.failErr != nil {
		return t.failErr
	}
	return nil
}

// Close shuts the transport down cleanly: outbound writers flush their
// queues and close their streams, the listener stops accepting, and
// reader goroutines drain to EOF. Collectives must not be in flight.
// Idempotent.
func (t *SocketTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		for _, w := range t.out {
			if w != nil {
				w.close()
			}
		}
		if t.ln != nil {
			t.ln.Close()
		}
		t.inMu.Lock()
		for _, c := range t.inConns {
			c.Close()
		}
		t.inMu.Unlock()
	})
	t.wg.Wait()
	return nil
}

var _ Transport = (*SocketTransport)(nil)

// sockWriter owns one outbound stream: an unbounded frame queue drained
// by a dedicated goroutine, so senders never block on the peer.
type sockWriter struct {
	t       *SocketTransport
	conn    net.Conn
	mu      sync.Mutex
	cond    *sync.Cond
	q       [][]byte
	closed  bool
	failed  bool
	started bool // run() owns the conn once started; close() owns it before
}

func newSockWriter(t *SocketTransport, conn net.Conn) *sockWriter {
	w := &sockWriter{t: t, conn: conn}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// enqueue appends one framed message. The buffer's ownership passes to
// the writer (it is recycled after the write).
func (w *sockWriter) enqueue(buf []byte) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		panic("collective: send on closed socket transport")
	}
	w.q = append(w.q, buf)
	w.mu.Unlock()
	w.cond.Signal()
}

// close marks the queue complete; the writer goroutine flushes what
// remains and closes the stream (or, if it never started — a rendezvous
// abort — the stream is closed here).
func (w *sockWriter) close() {
	w.mu.Lock()
	w.closed = true
	started := w.started
	w.mu.Unlock()
	w.cond.Broadcast()
	if !started {
		w.conn.Close()
	}
}

// run drains the queue until closed-and-empty (clean flush) or a write
// error (transport failure).
func (w *sockWriter) run() {
	defer w.t.wg.Done()
	defer w.conn.Close()
	for {
		w.mu.Lock()
		for len(w.q) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.q) == 0 {
			w.mu.Unlock()
			return
		}
		buf := w.q[0]
		w.q[0] = nil
		w.q = w.q[1:]
		failed := w.failed
		w.mu.Unlock()
		if failed {
			w.t.putBuf(buf)
			continue // drain without writing after a failure
		}
		w.conn.SetWriteDeadline(time.Now().Add(w.t.cfg.ioTimeout()))
		_, err := w.conn.Write(buf)
		w.t.putBuf(buf)
		if err != nil {
			w.mu.Lock()
			w.failed = true
			w.mu.Unlock()
			w.t.fail(fmt.Errorf("collective: rank %d: write: %w", w.t.rank, err))
		}
	}
}

// mailbox is an unbounded FIFO of decoded messages for one (class, kind,
// sender) key. Unbounded on purpose: inbound capacity can never be the
// edge that deadlocks a multiplexed stream.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []Msg
	err  error
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(m Msg) {
	b.mu.Lock()
	b.q = append(b.q, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// pop blocks for the next message; a poisoned mailbox panics with the
// transport's failure, mirroring the in-memory transport's fail-fast
// contract (a misrouted or corrupt stream is unrecoverable).
func (b *mailbox) pop() Msg {
	b.mu.Lock()
	for len(b.q) == 0 && b.err == nil {
		b.cond.Wait()
	}
	if len(b.q) == 0 {
		err := b.err
		b.mu.Unlock()
		panic(fmt.Sprintf("collective: receive on failed socket transport: %v", err))
	}
	m := b.q[0]
	b.q[0] = Msg{}
	b.q = b.q[1:]
	b.mu.Unlock()
	return m
}

func (b *mailbox) fail(err error) {
	b.mu.Lock()
	b.err = err
	b.mu.Unlock()
	b.cond.Broadcast()
}
