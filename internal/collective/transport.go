package collective

import (
	"fmt"
	"sync/atomic"
)

// Class is the link class a message travels on. The analytic cost models
// split traffic the same way: data-parallel gradient averaging (Eq. 4),
// inter-stage pipeline transfers (§5), and embedding synchronization
// (Eq. 15/16).
type Class int

// Link classes.
const (
	ClassDP  Class = iota // data-parallel gradient all-reduce
	ClassPP               // inter-stage (pipeline) point-to-point
	ClassEmb              // embedding synchronization (§6)
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassDP:
		return "dp"
	case ClassPP:
		return "pp"
	case ClassEmb:
		return "emb"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists every link class (for iteration in reports).
func Classes() []Class { return []Class{ClassDP, ClassPP, ClassEmb} }

// Msg is one transport message: a step token announcing that a chunk of
// the sender's buffer is final, sized as it would be on a wire. The data
// itself stays in shared memory; the token carries the accounting and —
// through the channel it travels on — the happens-before edge that makes
// reading the sender's buffer safe.
type Msg struct {
	Bytes int64 // wire size this message represents
}

// Transport moves step tokens between ranks and accounts the traffic per
// link class. Implementations must be safe for concurrent use by many
// rank goroutines.
type Transport interface {
	// Send delivers a token from rank `from` to rank `to` on class c,
	// accounting one message of m.Bytes. It must not block indefinitely
	// when each destination's in-flight token count stays at ring depth
	// (≤ 2 per directed pair).
	Send(c Class, from, to int, m Msg)
	// Recv blocks until the next token from rank `from` arrives at rank
	// `to` on class c, and returns it.
	Recv(c Class, to, from int) Msg
	// AddSteps accounts n synchronized collective steps on class c (a
	// step is one ring round in which every participant sends once).
	AddSteps(c Class, n int)
	// AccountP2P accounts a point-to-point transfer of bytes on class c
	// without moving a token — used where the payload is handed off
	// in-process but the traffic must still be measured (the trainer's
	// inter-stage backward sends).
	AccountP2P(c Class, from, to int, bytes int64)
	// Stats snapshots cumulative per-class traffic.
	Stats() Stats
}

// ClassStats is cumulative traffic on one link class.
type ClassStats struct {
	Bytes    int64 // payload bytes represented by all messages
	Messages int64 // individual sends
	Steps    int64 // synchronized collective steps
}

// Stats is a per-class traffic snapshot.
type Stats [numClasses]ClassStats

// For returns the stats of one class.
func (s Stats) For(c Class) ClassStats { return s[c] }

// Total returns traffic summed over every class.
func (s Stats) Total() ClassStats {
	var t ClassStats
	for _, cs := range s {
		t.Bytes += cs.Bytes
		t.Messages += cs.Messages
		t.Steps += cs.Steps
	}
	return t
}

// Sub returns s − o field-wise (for windowed measurements).
func (s Stats) Sub(o Stats) Stats {
	for c := range s {
		s[c].Bytes -= o[c].Bytes
		s[c].Messages -= o[c].Messages
		s[c].Steps -= o[c].Steps
	}
	return s
}

// classCounters is the atomic backing of one class's stats.
type classCounters struct {
	bytes    atomic.Int64
	messages atomic.Int64
	steps    atomic.Int64
}

// MemTransport is the in-process Transport: one buffered channel per
// directed rank pair per class, atomic traffic counters. The channel
// buffer depth of 2 absorbs the one-step skew the ring schedule can
// accumulate between neighbours without ever blocking the steady state.
type MemTransport struct {
	world    int
	chans    [numClasses][]chan Msg
	counters [numClasses]classCounters
}

// NewMemTransport returns a transport for ranks [0, world).
func NewMemTransport(world int) *MemTransport {
	if world < 1 {
		panic(fmt.Sprintf("collective: transport world %d < 1", world))
	}
	t := &MemTransport{world: world}
	for c := range t.chans {
		pairs := make([]chan Msg, world*world)
		for i := range pairs {
			pairs[i] = make(chan Msg, 2)
		}
		t.chans[c] = pairs
	}
	return t
}

// World returns the rank count.
func (t *MemTransport) World() int { return t.world }

func (t *MemTransport) pair(c Class, from, to int) chan Msg {
	if from < 0 || from >= t.world || to < 0 || to >= t.world {
		panic(fmt.Sprintf("collective: rank pair (%d,%d) outside world %d", from, to, t.world))
	}
	return t.chans[c][from*t.world+to]
}

// Send implements Transport.
func (t *MemTransport) Send(c Class, from, to int, m Msg) {
	t.counters[c].bytes.Add(m.Bytes)
	t.counters[c].messages.Add(1)
	t.pair(c, from, to) <- m
}

// Recv implements Transport.
func (t *MemTransport) Recv(c Class, to, from int) Msg {
	return <-t.pair(c, from, to)
}

// AddSteps implements Transport.
func (t *MemTransport) AddSteps(c Class, n int) {
	t.counters[c].steps.Add(int64(n))
}

// AccountP2P implements Transport.
func (t *MemTransport) AccountP2P(c Class, from, to int, bytes int64) {
	t.pair(c, from, to) // bounds check only; the payload moved in-process
	t.counters[c].bytes.Add(bytes)
	t.counters[c].messages.Add(1)
	t.counters[c].steps.Add(1)
}

// Stats implements Transport.
func (t *MemTransport) Stats() Stats {
	var s Stats
	for c := range t.counters {
		s[c] = ClassStats{
			Bytes:    t.counters[c].bytes.Load(),
			Messages: t.counters[c].messages.Load(),
			Steps:    t.counters[c].steps.Load(),
		}
	}
	return s
}

var _ Transport = (*MemTransport)(nil)
