package collective

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tensor"
)

// Class is the link class a message travels on. The analytic cost models
// split traffic the same way: data-parallel gradient averaging (Eq. 4),
// inter-stage pipeline transfers (§5), and embedding synchronization
// (Eq. 15/16).
type Class int

// Link classes.
const (
	ClassDP  Class = iota // data-parallel gradient all-reduce
	ClassPP               // inter-stage (pipeline) point-to-point
	ClassEmb              // embedding synchronization (§6)
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassDP:
		return "dp"
	case ClassPP:
		return "pp"
	case ClassEmb:
		return "emb"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists every link class (for iteration in reports).
func Classes() []Class { return []Class{ClassDP, ClassPP, ClassEmb} }

// Msg is one transport message. On the ring collectives it is a step
// token announcing that a chunk of the sender's buffer is final, sized as
// it would be on a wire: the data itself stays in shared memory, and the
// token carries the accounting and — through the channel it travels on —
// the happens-before edge that makes reading the sender's buffer safe.
// On point-to-point sends the message additionally hands the payload
// tensor itself to the receiver.
type Msg struct {
	Bytes int64 // wire size this message represents
	// Payload is the in-process tensor handed over on point-to-point
	// sends (nil on ring step tokens, where data moves through shared
	// buffers). Ownership transfers to the receiver.
	Payload *tensor.Matrix
	// Pooled marks a payload borrowed from the sender's workspace pool;
	// the receiver must Put it back once it has been consumed.
	Pooled bool
	// Sparse is the sparse-native point-to-point payload (SendCompressedSparse):
	// index/value pairs in place of a dense tensor, always borrowed from the
	// sender's pool. Runtime.Recv densifies it transparently, so receivers
	// see the same pooled dense tensor either way.
	Sparse *tensor.Sparse
}

// Transport moves step tokens between ranks and accounts the traffic per
// link class. Implementations must be safe for concurrent use by many
// rank goroutines.
type Transport interface {
	// Send delivers a token from rank `from` to rank `to` on class c,
	// accounting one message of m.Bytes. It must not block indefinitely
	// when each destination's in-flight token count stays at ring depth
	// (≤ 2 per directed pair).
	Send(c Class, from, to int, m Msg)
	// Recv blocks until the next token from rank `from` arrives at rank
	// `to` on class c, and returns it.
	Recv(c Class, to, from int) Msg
	// SendP2P delivers a payload-carrying point-to-point message from
	// rank `from` to rank `to` on class c, accounting one message of
	// m.Bytes and one latency-bearing step. Unlike the ring channels,
	// the point-to-point queue must absorb the worst-case skew of a
	// pipeline schedule (one message per micro-batch per direction per
	// boundary), so a stage running ahead never blocks the schedule.
	SendP2P(c Class, from, to int, m Msg)
	// RecvP2P blocks until the next point-to-point message from rank
	// `from` arrives at rank `to` on class c, and returns it.
	RecvP2P(c Class, to, from int) Msg
	// AddSteps accounts n synchronized collective steps on class c (a
	// step is one ring round in which every participant sends once).
	AddSteps(c Class, n int)
	// AccountP2P accounts a point-to-point transfer of bytes on class c
	// without moving a token — used where the payload is handed off
	// in-process but the traffic must still be measured (the trainer's
	// inter-stage backward sends).
	AccountP2P(c Class, from, to int, bytes int64)
	// Remote reports whether payload data must travel inside messages
	// (serialized onto a wire) rather than through shared memory. The
	// collective runtime selects the wire execution paths — which ship
	// chunk and payload data in the Msg — when this is true, and keeps
	// the zero-copy shared-buffer schedules when it is false.
	Remote() bool
	// Stats snapshots cumulative per-class traffic.
	Stats() Stats
}

// ClassStats is cumulative traffic on one link class.
type ClassStats struct {
	Bytes    int64 // payload bytes represented by all messages
	Messages int64 // individual sends
	Steps    int64 // synchronized collective steps
}

// Stats is a per-class traffic snapshot.
type Stats [numClasses]ClassStats

// For returns the stats of one class.
func (s Stats) For(c Class) ClassStats { return s[c] }

// Total returns traffic summed over every class.
func (s Stats) Total() ClassStats {
	var t ClassStats
	for _, cs := range s {
		t.Bytes += cs.Bytes
		t.Messages += cs.Messages
		t.Steps += cs.Steps
	}
	return t
}

// Sub returns s − o field-wise (for windowed measurements).
func (s Stats) Sub(o Stats) Stats {
	for c := range s {
		s[c].Bytes -= o[c].Bytes
		s[c].Messages -= o[c].Messages
		s[c].Steps -= o[c].Steps
	}
	return s
}

// classCounters is the atomic backing of one class's stats.
type classCounters struct {
	bytes    atomic.Int64
	messages atomic.Int64
	steps    atomic.Int64
}

// MemTransport is the in-process Transport: one buffered channel per
// directed rank pair per class for ring step tokens, one more per pair
// per class for point-to-point payloads, and atomic traffic counters.
// The ring channel depth of 2 absorbs the one-step skew the ring
// schedule can accumulate between neighbours without ever blocking the
// steady state; the point-to-point depth is configurable because a
// pipeline rank may legitimately run a whole schedule phase ahead of its
// neighbour (bounded by one message per micro-batch per direction).
type MemTransport struct {
	world    int
	chans    [numClasses][]chan Msg
	p2p      [numClasses][]chan Msg
	counters [numClasses]classCounters
}

// DefaultP2PDepth is the point-to-point queue depth of NewMemTransport,
// enough for the 1F1B skew of typical micro-batch counts. Callers that
// know their schedule (the trainer does) should size it explicitly with
// NewMemTransportDepth.
const DefaultP2PDepth = 16

// NewMemTransport returns a transport for ranks [0, world) with the
// default point-to-point queue depth.
func NewMemTransport(world int) *MemTransport {
	return NewMemTransportDepth(world, DefaultP2PDepth)
}

// NewMemTransportDepth returns a transport for ranks [0, world) whose
// point-to-point queues hold up to p2pDepth in-flight messages per
// directed pair. A depth of one message per micro-batch (the per-link
// message count of one 1F1B iteration) makes sends non-blocking and the
// executor trivially deadlock-free.
//
// p2pDepth values below 2 are silently clamped up to 2: a depth of one
// cannot absorb even a single send-ahead message per direction, and a
// depth of zero would turn every SendP2P into a rendezvous — both
// deadlock-prone regressions of the contract above. The clamp is pinned
// by TestMemTransportDepthClamp.
func NewMemTransportDepth(world, p2pDepth int) *MemTransport {
	if world < 1 {
		panic(fmt.Sprintf("collective: transport world %d < 1", world))
	}
	if p2pDepth < 2 {
		p2pDepth = 2
	}
	t := &MemTransport{world: world}
	for c := range t.chans {
		pairs := make([]chan Msg, world*world)
		deep := make([]chan Msg, world*world)
		for i := range pairs {
			pairs[i] = make(chan Msg, 2)
			deep[i] = make(chan Msg, p2pDepth)
		}
		t.chans[c] = pairs
		t.p2p[c] = deep
	}
	return t
}

// World returns the rank count.
func (t *MemTransport) World() int { return t.world }

func (t *MemTransport) pairIdx(from, to int) int {
	if from < 0 || from >= t.world || to < 0 || to >= t.world {
		panic(fmt.Sprintf("collective: rank pair (%d,%d) outside world %d", from, to, t.world))
	}
	return from*t.world + to
}

func (t *MemTransport) pair(c Class, from, to int) chan Msg {
	return t.chans[c][t.pairIdx(from, to)]
}

// Send implements Transport.
func (t *MemTransport) Send(c Class, from, to int, m Msg) {
	t.counters[c].bytes.Add(m.Bytes)
	t.counters[c].messages.Add(1)
	t.pair(c, from, to) <- m
}

// Recv implements Transport.
func (t *MemTransport) Recv(c Class, to, from int) Msg {
	return <-t.pair(c, from, to)
}

// SendP2P implements Transport.
func (t *MemTransport) SendP2P(c Class, from, to int, m Msg) {
	t.counters[c].bytes.Add(m.Bytes)
	t.counters[c].messages.Add(1)
	t.counters[c].steps.Add(1)
	t.p2p[c][t.pairIdx(from, to)] <- m
}

// RecvP2P implements Transport.
func (t *MemTransport) RecvP2P(c Class, to, from int) Msg {
	return <-t.p2p[c][t.pairIdx(from, to)]
}

// AddSteps implements Transport.
func (t *MemTransport) AddSteps(c Class, n int) {
	t.counters[c].steps.Add(int64(n))
}

// AccountP2P implements Transport. The payload moved in-process, so only
// the counters change — but the rank pair is still validated (panicking
// like every other misaddressed transport call) so a miscomputed route
// cannot silently account traffic on a link that does not exist.
func (t *MemTransport) AccountP2P(c Class, from, to int, bytes int64) {
	if c < 0 || c >= numClasses {
		panic(fmt.Sprintf("collective: class %d outside [0,%d)", int(c), int(numClasses)))
	}
	t.pairIdx(from, to)
	t.counters[c].bytes.Add(bytes)
	t.counters[c].messages.Add(1)
	t.counters[c].steps.Add(1)
}

// Remote implements Transport: payloads move through shared memory.
func (t *MemTransport) Remote() bool { return false }

// Stats implements Transport.
func (t *MemTransport) Stats() Stats {
	var s Stats
	for c := range t.counters {
		s[c] = ClassStats{
			Bytes:    t.counters[c].bytes.Load(),
			Messages: t.counters[c].messages.Load(),
			Steps:    t.counters[c].steps.Load(),
		}
	}
	return s
}

var _ Transport = (*MemTransport)(nil)
